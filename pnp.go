// Package pnp is a Go implementation of the Plug-and-Play architectural
// design and verification approach (Wang, Avrunin, Clarke — "Plug-and-Play
// Architectural Design and Verification").
//
// Connectors between components are composed from a library of reusable
// building blocks — send ports, receive ports, and channels — and can be
// swapped without touching component code, because components speak only
// the standard interfaces (send a message, await its SendStatus; request a
// message, await its RecvStatus). Every block ships with a pre-built
// formal model, so a composed design is immediately verifiable with the
// bundled explicit-state model checker (safety invariants, deadlocks,
// assertions, and LTL), and the same composition runs on goroutines via
// the runtime.
//
// Typical flow:
//
//	d := pnp.NewDesign("pipeline", componentModels)
//	d.AddConnector("Wire", pnp.ConnectorSpec{
//	    Send:    pnp.AsynBlockingSend,
//	    Channel: pnp.FIFOQueue, Size: 4,
//	    Recv:    pnp.BlockingRecv,
//	})
//	d.AddInstance("prod", "Producer", 1, pnp.SendTo("Wire"), pnp.IntArg(3))
//	d.AddInstance("cons", "Consumer", 1, pnp.RecvFrom("Wire"), pnp.IntArg(3))
//	d.AddInvariant("nothing-lost", "got <= sent")
//	results, err := d.Verify(nil, pnp.CheckOptions{})
//	// a violation? plug a different block and re-verify:
//	d2, _ := d.WithSendPort("Wire", pnp.SynBlockingSend)
//
// The subpackages can also be used directly: internal/pml (the Promela
// subset), internal/model (formal semantics), internal/checker (the
// verifier), internal/ltl (LTL-to-Büchi), internal/blocks (the block
// library and model composition), internal/pnprt (the executable runtime),
// internal/adl (the textual architecture description language), and
// internal/bridge (the paper's single-lane bridge case study).
package pnp

import (
	"context"
	"io"
	"net/http"

	"pnp/internal/adl"
	"pnp/internal/blocks"
	"pnp/internal/checker"
	"pnp/internal/cluster"
	"pnp/internal/core"
	"pnp/internal/faults"
	"pnp/internal/obs"
	"pnp/internal/obs/tracing"
	"pnp/internal/pnprt"
	"pnp/internal/sweep"
	"pnp/internal/trace"
	"pnp/internal/verifyd"
	"pnp/internal/verifyd/client"
)

// Design-level API.
type (
	// Design is a declarative Plug-and-Play system design.
	Design = core.Design
	// ConnectorSpec composes a connector from a send port, a channel, and
	// a receive port.
	ConnectorSpec = blocks.ConnectorSpec
	// SendPortKind selects a send-port building block.
	SendPortKind = blocks.SendPortKind
	// RecvPortKind selects a receive-port building block.
	RecvPortKind = blocks.RecvPortKind
	// ChannelKind selects a channel building block.
	ChannelKind = blocks.ChannelKind
	// InstanceArg is an argument of a component instance.
	InstanceArg = core.InstanceArg
	// BlockInfo describes one catalog entry.
	BlockInfo = core.BlockInfo
	// ModelCache memoizes compiled block and component models across
	// verification runs.
	ModelCache = blocks.Cache
)

// Send port kinds (the paper's Figure 1 catalog).
const (
	AsynNonblockingSend = blocks.AsynNonblockingSend
	AsynBlockingSend    = blocks.AsynBlockingSend
	AsynCheckingSend    = blocks.AsynCheckingSend
	SynBlockingSend     = blocks.SynBlockingSend
	SynCheckingSend     = blocks.SynCheckingSend
)

// Receive port kinds.
const (
	BlockingRecv    = blocks.BlockingRecv
	NonblockingRecv = blocks.NonblockingRecv
)

// Channel kinds.
const (
	SingleSlot     = blocks.SingleSlot
	FIFOQueue      = blocks.FIFOQueue
	PriorityQueue  = blocks.PriorityQueue
	DroppingBuffer = blocks.DroppingBuffer
	// LossyBuffer is the unreliable-medium adversary: any message may be
	// dropped or (given buffer room) duplicated in transit.
	LossyBuffer = blocks.LossyBuffer
)

// NewDesign creates an empty design over pml component models.
func NewDesign(name, componentSource string) *Design {
	return core.NewDesign(name, componentSource)
}

// NewCache creates a model cache for reuse across verification runs.
func NewCache() *ModelCache { return blocks.NewCache() }

// Catalog lists the building-block library.
func Catalog() []BlockInfo { return core.Catalog() }

// IntArg passes an integer parameter to a component instance.
func IntArg(v int64) InstanceArg { return core.IntArg(v) }

// SendTo attaches an instance as a sender on a connector.
func SendTo(conn string) InstanceArg { return core.SendTo(conn) }

// RecvFrom attaches an instance as a receiver on a connector.
func RecvFrom(conn string) InstanceArg { return core.RecvFrom(conn) }

// Verification API.
type (
	// CheckOptions configures verification runs.
	CheckOptions = checker.Options
	// CheckResult is a verification outcome with statistics and, on
	// failure, a counterexample trace.
	CheckResult = checker.Result
	// VerifyResults maps property names to outcomes.
	VerifyResults = core.VerifyResults
)

// Runtime API: the same blocks as executable goroutine assemblies.
type (
	// Connector is an executable connector.
	Connector = pnprt.Connector
	// Message is an application message.
	Message = pnprt.Message
	// RecvRequest is a receive request (selective / copy flags).
	RecvRequest = pnprt.RecvRequest
	// Status is a SendStatus or RecvStatus.
	Status = pnprt.Status
	// Sender is the component-side sending interface.
	Sender = pnprt.Sender
	// Receiver is the component-side receiving interface.
	Receiver = pnprt.Receiver
	// PubSub is the publish/subscribe connector extension.
	PubSub = pnprt.PubSub
	// RPC is the remote-procedure-call connector extension.
	RPC = pnprt.RPC
	// RuntimeSystem groups executable connectors under one lifecycle.
	RuntimeSystem = pnprt.System
	// ConnectorOption configures an executable connector (WithMetrics,
	// WithTrace, WithFaults).
	ConnectorOption = pnprt.Option
)

// Statuses.
const (
	SendSucc = pnprt.SendSucc
	SendFail = pnprt.SendFail
	RecvSucc = pnprt.RecvSucc
	RecvFail = pnprt.RecvFail
)

// NewConnector builds an executable connector from a spec.
func NewConnector(name string, spec ConnectorSpec, opts ...pnprt.Option) (*Connector, error) {
	return pnprt.NewConnector(name, spec, opts...)
}

// NewPubSub builds a publish/subscribe connector.
func NewPubSub(name string, queueSize int, opts ...pnprt.PubSubOption) (*PubSub, error) {
	return pnprt.NewPubSub(name, queueSize, opts...)
}

// NewRPC builds an RPC connector from two message-passing connectors.
func NewRPC(name string, queueSize int, opts ...pnprt.Option) (*RPC, error) {
	return pnprt.NewRPC(name, queueSize, opts...)
}

// NewRuntimeSystem creates an empty runtime system.
func NewRuntimeSystem(name string) *RuntimeSystem { return pnprt.NewSystem(name) }

// Fault-injection and supervision API: deterministic seeded fault plans
// applied to running connectors, and supervised component goroutines
// with restart policies.
type (
	// FaultPlan is a seeded, deterministic fault-injection plan; the same
	// plan and workload reproduce the same fault sequence.
	FaultPlan = faults.Plan
	// FaultRule is one injection rule of a plan.
	FaultRule = faults.Rule
	// FaultKind selects what a rule injects.
	FaultKind = faults.Kind
	// Supervisor runs one component function, restarting it per policy
	// when it fails or panics.
	Supervisor = pnprt.Supervisor
	// RestartPolicy bounds and paces a supervisor's restarts.
	RestartPolicy = pnprt.RestartPolicy
	// RestartMode selects a restart discipline.
	RestartMode = pnprt.RestartMode
	// SupervisedFunc is a component body run under a Supervisor.
	SupervisedFunc = pnprt.SupervisedFunc
)

// Fault kinds.
const (
	FaultDrop      = faults.Drop
	FaultDuplicate = faults.Duplicate
	FaultDelay     = faults.Delay
	FaultStall     = faults.Stall
	FaultCrash     = faults.Crash
)

// Restart modes.
const (
	RestartNever     = pnprt.RestartNever
	RestartImmediate = pnprt.RestartImmediate
	RestartBackoff   = pnprt.RestartBackoff
)

// WithFaults applies a fault plan's matching rules to an executable
// connector's channel.
func WithFaults(plan *FaultPlan) pnprt.Option { return pnprt.WithFaults(plan) }

// NewSupervisor wraps fn in a supervisor named name.
func NewSupervisor(name string, fn SupervisedFunc, policy RestartPolicy, opts ...pnprt.SupervisorOption) *Supervisor {
	return pnprt.NewSupervisor(name, fn, policy, opts...)
}

// SupervisorMetrics publishes restart counters to the registry.
func SupervisorMetrics(reg *MetricsRegistry) pnprt.SupervisorOption {
	return pnprt.SupervisorMetrics(reg)
}

// SupervisorFaults subjects the supervised component to the plan's
// crash rules.
func SupervisorFaults(plan *FaultPlan) pnprt.SupervisorOption {
	return pnprt.SupervisorFaults(plan)
}

// Observability API: metrics, live verification progress, and runtime
// event taps.
type (
	// MetricsRegistry collects counters, gauges, and histograms from
	// verification runs (CheckOptions.Metrics) and running connectors
	// (WithMetrics); expose it as Prometheus text, JSON, expvar, or over
	// HTTP with ServeMetrics.
	MetricsRegistry = obs.Registry
	// MetricsServer is a running HTTP exposition endpoint.
	MetricsServer = obs.Server
	// CheckProgress is one live snapshot of a running verification,
	// delivered to CheckOptions.Progress.
	CheckProgress = checker.Progress
	// LiveTrace is a bounded window of runtime protocol events,
	// renderable at any time as a listing or an ASCII MSC.
	LiveTrace = trace.Live
	// RuntimeEvent is one protocol-level occurrence in a running
	// connector (IN_OK, SEND_SUCC, ...).
	RuntimeEvent = pnprt.Event
	// TraceFunc observes runtime protocol events.
	TraceFunc = pnprt.TraceFunc
)

// NewMetricsRegistry creates an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// MetricsMount attaches an extra handler to a ServeMetrics mux (e.g. a
// TraceRecorder's Handler on /debug/trace).
type MetricsMount = obs.Mount

// ServeMetrics exposes the registry on addr (/metrics, /metrics.json,
// /healthz, plus any extra mounts) until the returned server is closed.
func ServeMetrics(r *MetricsRegistry, addr string, mounts ...MetricsMount) (*MetricsServer, error) {
	return obs.Serve(r, addr, mounts...)
}

// MetricLabels builds a labeled metric name: MetricLabels("x_total",
// "conn", "pipe") -> `x_total{conn="pipe"}`.
func MetricLabels(name string, kv ...string) string { return obs.Labels(name, kv...) }

// WithMetrics instruments an executable connector's ports and channel
// against the registry.
func WithMetrics(reg *MetricsRegistry) pnprt.Option { return pnprt.WithMetrics(reg) }

// WithTrace installs a protocol-event observer on an executable
// connector.
func WithTrace(fn TraceFunc) pnprt.Option { return pnprt.WithTrace(fn) }

// NewLiveTrace creates a live event window (capacity <= 0 selects the
// default).
func NewLiveTrace(capacity int) *LiveTrace { return trace.NewLive(capacity) }

// MSCTap streams a connector's protocol events into a live trace
// window, for rendering running systems as message sequence charts.
func MSCTap(live *LiveTrace) TraceFunc { return pnprt.MSCTap(live) }

// Tracing API: lightweight spans recorded into a bounded in-process
// flight recorder, exportable as NDJSON or Chrome trace_event JSON.
// CheckOptions.Tracer traces verification phases, WithSpans traces
// executable connectors, and the verification service propagates W3C
// traceparent headers so remote jobs join the caller's trace.
type (
	// TraceRecorder is a bounded ring of completed spans (the flight
	// recorder); its Handler serves /debug/trace.
	TraceRecorder = tracing.Recorder
	// TraceSpan is one in-flight span; End records it.
	TraceSpan = tracing.Span
	// TraceSpanData is one completed span as recorded and serialized.
	TraceSpanData = tracing.SpanData
)

// NewTraceRecorder creates a flight recorder holding up to capacity
// completed spans (capacity <= 0 selects the default).
func NewTraceRecorder(capacity int) *TraceRecorder { return tracing.NewRecorder(capacity) }

// WithSpans records an executable connector's lifecycle as a span with
// its protocol events attached.
func WithSpans(rec *TraceRecorder) pnprt.Option { return pnprt.WithSpans(rec) }

// WriteChromeTrace renders spans as Chrome trace_event JSON, viewable
// in chrome://tracing or Perfetto.
func WriteChromeTrace(w io.Writer, spans []TraceSpanData) error {
	return tracing.WriteChromeTrace(w, spans)
}

// ADL API.
type (
	// ADLSystem is a system loaded from the textual architecture
	// description language.
	ADLSystem = adl.System
	// ADLResolver loads component files referenced by an ADL source.
	ADLResolver = adl.Resolver
)

// LoadADL parses an architecture description and composes the system.
func LoadADL(src string, resolve ADLResolver, cache *ModelCache) (*ADLSystem, error) {
	return adl.Load(src, resolve, cache)
}

// Verification-service API: verification as a daemon with a
// content-addressed result cache (see cmd/pnpd for the CLI).
type (
	// VerifyServer runs verification jobs on a bounded worker pool,
	// serving repeat (model, property, options) submissions from its
	// result cache.
	VerifyServer = verifyd.Server
	// VerifyServerConfig parameterizes a VerifyServer.
	VerifyServerConfig = verifyd.Config
	// VerifyJob is one submitted verification task and its report.
	VerifyJob = verifyd.Job
	// VerifyReport is the complete verdict document for one system.
	VerifyReport = verifyd.Report
	// PropertyVerdict is the JSON verdict for one property.
	PropertyVerdict = verifyd.PropertyVerdict
	// ResultCache is a bounded LRU of content-addressed verdicts.
	ResultCache = verifyd.ResultCache
)

// NewVerifyServer starts a verification service (workers begin draining
// the queue immediately; use its Handler for the HTTP API and Shutdown
// to drain).
//
// Deprecated: use Serve, which assembles the verification server, the
// sweep routes, and the drain sequence behind one handler (since PR10).
// NewVerifyServer remains for callers that want the bare job API.
func NewVerifyServer(cfg VerifyServerConfig) *VerifyServer { return verifyd.NewServer(cfg) }

// NewResultCache creates a standalone content-addressed verdict cache.
func NewResultCache(maxEntries int, reg *MetricsRegistry) *ResultCache {
	return verifyd.NewResultCache(maxEntries, reg)
}

// Design-space sweep API: expand a base design and block-dimension sets
// into a cell matrix and verify every variant, deduping identical cells
// and reusing the verification service's result cache (see cmd/pnpsweep
// for the CLI).
type (
	// SweepSpec describes a sweep: a base ADL design, the connector to
	// vary, and the block sets forming the variant matrix.
	SweepSpec = sweep.Spec
	// SweepChannelVariant is one channel choice of a sweep dimension.
	SweepChannelVariant = sweep.ChannelVariant
	// SweepConfig parameterizes sweep execution (server, options,
	// metrics, streaming callback).
	SweepConfig = sweep.Config
	// SweepCell is one expanded point of the variant matrix.
	SweepCell = sweep.Cell
	// SweepCellResult is one cell's verdict and cost.
	SweepCellResult = sweep.CellResult
	// SweepResult aggregates a sweep's cells with dedup and cache
	// counters; Ranked orders cells best-first.
	SweepResult = sweep.Result
	// SweepService serves sweeps over HTTP on top of a VerifyServer
	// (POST /v1/sweeps, streaming NDJSON results).
	SweepService = sweep.Service
)

// Sweep expands spec and verifies every cell. A nil Server in cfg runs
// the sweep on a private in-process verification service.
func Sweep(ctx context.Context, spec SweepSpec, cfg SweepConfig) (*SweepResult, error) {
	return sweep.Run(ctx, spec, cfg)
}

// MatrixSweep is the paper's E12 connector-matrix experiment as a
// preset spec: every send-port x channel x receive-port composition of
// a producer/consumer system, each with its under-lossy companion.
func MatrixSweep(msgs, bufsize int) SweepSpec { return sweep.Matrix(msgs, bufsize) }

// NewSweepService layers sweep routes over a verification server's API.
//
// Deprecated: use Serve, which layers the sweep routes automatically
// and keeps their drain ordered after the job queue's (since PR10).
func NewSweepService(srv *VerifyServer, opts CheckOptions, reg *MetricsRegistry) *SweepService {
	return sweep.NewService(srv, opts, reg)
}

// Remote-client API: a typed client for the verification service's HTTP
// API, with retries and sweep streaming.
type (
	// Client talks to one verification service (pnpd) over HTTP.
	Client = client.Client
	// ClientOption configures a Client (retries, backoff, transport).
	ClientOption = client.Option
	// APIError is a service failure decoded from the uniform error
	// envelope.
	APIError = client.APIError
)

// NewClient builds a client for the verification service at base, e.g.
// "http://localhost:7447".
func NewClient(base string, opts ...ClientOption) *Client { return client.New(base, opts...) }

// Cluster API: a coordinator that fronts a fleet of verification
// services behind the same v1 wire contract, routing jobs and sweep
// cells over a consistent-hash ring keyed on each submission's content
// address, failing over past dead nodes, and answering repeats from a
// cluster-wide result cache (see cmd/pnpd --coordinator for the CLI
// and docs/CLUSTER.md for the design).
type (
	// Coordinator routes jobs and sweeps to a worker fleet.
	Coordinator = cluster.Coordinator
	// ClusterConfig parameterizes a Coordinator (nodes, probing,
	// failover bounds, cache size, observability).
	ClusterConfig = cluster.Config
	// ClusterInfo is a snapshot of cluster topology and node health,
	// served at GET /v1/cluster.
	ClusterInfo = cluster.ClusterInfo
	// HashRing is the consistent-hash ring the coordinator routes
	// with; usable standalone for other placement problems.
	HashRing = cluster.Ring
)

// NewCoordinator builds and starts a cluster coordinator fronting
// cfg.Nodes. Shut it down with Coordinator.Shutdown.
//
// Deprecated: use Serve with ServeOptions.Cluster set — one entry point
// covers both roles a pnpd process can play (since PR10).
func NewCoordinator(cfg ClusterConfig) (*Coordinator, error) { return cluster.New(cfg) }

// NewHashRing builds a consistent-hash ring with the given number of
// virtual nodes per member (0 = a sensible default).
func NewHashRing(replicas int) *HashRing { return cluster.NewRing(replicas) }

// Unified service entry point (since PR10). Serve assembles everything
// a pnpd process serves — the verification server, the sweep routes
// layered over it, or a cluster coordinator — behind one handler and
// one ordered shutdown, replacing the NewVerifyServer + NewSweepService
// + NewCoordinator wiring every embedder used to repeat.

// ServeOptions selects and parameterizes the service Serve assembles.
// Zero value: a memory-only single-node verification service with
// sweep routes.
type ServeOptions struct {
	// Verify parameterizes the local verification server (workers,
	// cache size, durable data dir, observability). Ignored when
	// Cluster is set.
	Verify VerifyServerConfig
	// Cluster, when non-nil, runs the service as a coordinator fronting
	// Cluster.Nodes instead of verifying locally — the same v1 wire
	// surface, routed to a fleet.
	Cluster *ClusterConfig
}

// Service is a running verification service assembled by Serve: either
// a verification server with sweep routes, or a cluster coordinator.
// Mount Handler on an http.Server and call Shutdown to drain.
type Service struct {
	srv   *VerifyServer
	swp   *SweepService
	coord *Coordinator
	h     http.Handler
}

// Serve builds and starts the service described by opts. The returned
// Service is live immediately: its workers (or node probes) are
// running, and Handler serves the full v1 API.
func Serve(opts ServeOptions) (*Service, error) {
	if opts.Cluster != nil {
		coord, err := cluster.New(*opts.Cluster)
		if err != nil {
			return nil, err
		}
		return &Service{coord: coord, h: coord.Handler()}, nil
	}
	srv, err := verifyd.OpenServer(opts.Verify)
	if err != nil {
		return nil, err
	}
	swp := sweep.NewService(srv, srv.Options(), opts.Verify.Registry)
	return &Service{srv: srv, swp: swp, h: swp.Handler(srv.Handler())}, nil
}

// Handler is the service's complete HTTP API (jobs, sweeps, artifacts,
// health, metrics routes as configured).
func (s *Service) Handler() http.Handler { return s.h }

// Shutdown drains the service: new submissions get 503 while in-flight
// work finishes (bounded by ctx), in the right order — the job queue
// first, then sweep aggregation. Callers owning an http.Server should
// close it after Shutdown returns, so clients can collect in-flight
// verdicts during the drain.
func (s *Service) Shutdown(ctx context.Context) error {
	if s.coord != nil {
		return s.coord.Shutdown(ctx)
	}
	if err := s.srv.Shutdown(ctx); err != nil {
		return err
	}
	s.swp.Wait()
	return nil
}

// VerifyServer returns the underlying verification server, nil in
// coordinator mode.
func (s *Service) VerifyServer() *VerifyServer { return s.srv }

// SweepService returns the sweep layer, nil in coordinator mode.
func (s *Service) SweepService() *SweepService { return s.swp }

// Coordinator returns the cluster coordinator, nil in single-node mode.
func (s *Service) Coordinator() *Coordinator { return s.coord }
