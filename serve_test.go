package pnp_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"pnp"
)

func loadExampleADL(t *testing.T, name string) string {
	t.Helper()
	b, err := os.ReadFile("examples/adl/" + name)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestServeSingleNode drives the PR10 unified entry point end to end:
// one Serve call yields a handler covering jobs, sweeps, artifacts, and
// health, and one Shutdown drains it in order.
func TestServeSingleNode(t *testing.T) {
	svc, err := pnp.Serve(pnp.ServeOptions{Verify: pnp.VerifyServerConfig{Workers: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if svc.VerifyServer() == nil || svc.SweepService() == nil || svc.Coordinator() != nil {
		t.Fatal("single-node service must expose server and sweep layer, no coordinator")
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	env := map[string]any{
		"adl":        loadExampleADL(t, "pingpong.pnp"),
		"components": map[string]string{"pingpong.pml": loadExampleADL(t, "pingpong.pml")},
	}
	body, _ := json.Marshal(env)
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	var job struct {
		ID           string `json:"id"`
		ModulesTotal int    `json:"modules_total"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || job.ID == "" {
		t.Fatalf("submit = %d %+v", resp.StatusCode, job)
	}
	if job.ModulesTotal == 0 {
		t.Fatal("the assembled handler must serve the PR10 module fields")
	}

	resp, err = http.Get(ts.URL + "/v1/jobs/" + job.ID + "/wait?timeout=60s")
	if err != nil {
		t.Fatal(err)
	}
	var done struct {
		State  string `json:"state"`
		Report *struct {
			OK bool `json:"ok"`
		} `json:"report"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&done); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if done.State != "done" || done.Report == nil || !done.Report.OK {
		t.Fatalf("pingpong must verify: %+v", done)
	}

	// The sweep routes are layered on the same handler.
	resp, err = http.Get(ts.URL + "/v1/sweeps")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/sweeps = %d, want 200", resp.StatusCode)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestServeCoordinator assembles the cluster role through the same
// entry point: a coordinator fronting one real single-node service.
func TestServeCoordinator(t *testing.T) {
	worker, err := pnp.Serve(pnp.ServeOptions{Verify: pnp.VerifyServerConfig{Workers: 2}})
	if err != nil {
		t.Fatal(err)
	}
	wts := httptest.NewServer(worker.Handler())
	defer wts.Close()

	svc, err := pnp.Serve(pnp.ServeOptions{Cluster: &pnp.ClusterConfig{Nodes: []string{wts.URL}}})
	if err != nil {
		t.Fatal(err)
	}
	if svc.Coordinator() == nil || svc.VerifyServer() != nil {
		t.Fatal("cluster service must expose the coordinator, not a local server")
	}
	cts := httptest.NewServer(svc.Handler())
	defer cts.Close()

	resp, err := http.Get(cts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Role string `json:"role"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Role != "coordinator" {
		t.Fatalf("role = %q, want coordinator", health.Role)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatalf("coordinator shutdown: %v", err)
	}
	if err := worker.Shutdown(ctx); err != nil {
		t.Fatalf("worker shutdown: %v", err)
	}
}
