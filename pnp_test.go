package pnp_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"pnp"
)

const facadeComponents = `
byte produced, consumed;
proctype Producer(chan esig; chan edat; byte n) {
	byte i;
	mtype st;
	do
	:: i < n ->
	   produced = produced + 1;
	   edat!i + 1,0,0,0,1;
	   esig?st,_;
	   i = i + 1
	:: else -> break
	od
}
proctype Consumer(chan rsig; chan rdat; byte n) {
	mtype st;
	byte d, sid, sd;
	bit sel, rem;
	do
	:: consumed < n ->
	   rdat!0,0,0,0,1;
	   rsig?st,_;
	   rdat?d,sid,sd,sel,rem;
	   if
	   :: st == RECV_SUCC -> consumed = consumed + 1
	   :: else
	   fi
	:: else -> break
	od
}
`

func facadeDesign() *pnp.Design {
	d := pnp.NewDesign("facade", facadeComponents)
	d.AddConnector("Wire", pnp.ConnectorSpec{
		Send: pnp.AsynBlockingSend, Channel: pnp.FIFOQueue, Size: 2, Recv: pnp.BlockingRecv,
	})
	d.AddInstance("p", "Producer", 1, pnp.SendTo("Wire"), pnp.IntArg(2))
	d.AddInstance("c", "Consumer", 1, pnp.RecvFrom("Wire"), pnp.IntArg(2))
	d.AddInvariant("bounded", "consumed <= produced")
	d.AddGoal("complete", "consumed == 2")
	return d
}

func TestFacadeVerify(t *testing.T) {
	results, err := facadeDesign().Verify(pnp.NewCache(), pnp.CheckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !results.AllOK() {
		for name, r := range results {
			if !r.OK {
				t.Errorf("%s: %s", name, r.Summary())
			}
		}
	}
}

func TestFacadePlugAndReverify(t *testing.T) {
	cache := pnp.NewCache()
	d := facadeDesign()
	if _, err := d.Verify(cache, pnp.CheckOptions{}); err != nil {
		t.Fatal(err)
	}
	d2, err := d.WithChannel("Wire", pnp.DroppingBuffer, 1)
	if err != nil {
		t.Fatal(err)
	}
	results, err := d2.Verify(cache, pnp.CheckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if results["complete"].OK {
		t.Error("the dropping buffer should break the delivery goal")
	}
	if !results["safety"].OK {
		t.Errorf("safety should still hold: %s", results["safety"].Summary())
	}
}

func TestFacadeCatalog(t *testing.T) {
	cat := pnp.Catalog()
	if len(cat) != 12 {
		t.Errorf("catalog has %d entries, want 12", len(cat))
	}
}

func TestFacadeRuntime(t *testing.T) {
	sys := pnp.NewRuntimeSystem("facade")
	conn, err := sys.AddConnector("wire", pnp.ConnectorSpec{
		Send: pnp.SynBlockingSend, Channel: pnp.SingleSlot, Recv: pnp.BlockingRecv,
	})
	if err != nil {
		t.Fatal(err)
	}
	snd, err := conn.NewSender()
	if err != nil {
		t.Fatal(err)
	}
	rcv, err := conn.NewReceiver()
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Stop)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	go func() {
		if _, err := snd.Send(ctx, pnp.Message{Data: 42}); err != nil {
			t.Errorf("send: %v", err)
		}
	}()
	st, m, err := rcv.Receive(ctx, pnp.RecvRequest{})
	if err != nil || st != pnp.RecvSucc || m.Data != 42 {
		t.Fatalf("receive = %v %v %v", st, m, err)
	}
}

func TestFacadeADL(t *testing.T) {
	src := `
system s {
    components "c.pml"
    connector W { send syn-blocking channel single-slot receive blocking }
    instance p = Producer(send W, 1)
    instance c = Consumer(recv W, 1)
    goal complete "consumed == 1"
}`
	sys, err := pnp.LoadADL(src, func(path string) (string, error) {
		return facadeComponents, nil
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	results := sys.VerifyAll(pnp.CheckOptions{})
	for name, r := range results {
		if !r.OK {
			t.Errorf("%s: %s", name, r.Summary())
		}
	}
}

func TestFacadeCounterexampleReadable(t *testing.T) {
	d := pnp.NewDesign("bad", `
byte hits;
proctype Bumper(chan esig; chan edat) {
	mtype st;
	edat!1,0,0,0,1;
	esig?st,_;
	hits = hits + 1
}`)
	d.AddConnector("W", pnp.ConnectorSpec{
		Send: pnp.AsynBlockingSend, Channel: pnp.FIFOQueue, Size: 2, Recv: pnp.BlockingRecv,
	})
	d.AddInstance("b", "Bumper", 2, pnp.SendTo("W"))
	d.AddInvariant("once", "hits <= 1")
	results, err := d.Verify(nil, pnp.CheckOptions{BFS: true})
	if err != nil {
		t.Fatal(err)
	}
	res := results["safety"]
	if res.OK {
		t.Fatal("two bumpers must exceed the invariant")
	}
	if res.Trace == nil || !strings.Contains(res.Trace.String(), "Bumper") {
		t.Errorf("counterexample unreadable:\n%v", res.Trace)
	}
}

// TestTutorialScenario keeps docs/TUTORIAL.md honest: the nonblocking
// send over a 1-slot FIFO loses jobs (goal fails); swapping to a blocking
// send fixes it with the same components.
func TestTutorialScenario(t *testing.T) {
	const componentModels = `
byte produced, done;
proctype Dispatcher(chan psig; chan pdat; byte jobs) {
	byte j;
	mtype st;
	do
	:: j < jobs ->
	   produced = produced + 1;
	   pdat!j + 1,0,0,0,1;
	   psig?st,_;
	   j = j + 1
	:: else -> break
	od
}
proctype Worker(chan rsig; chan rdat) {
	mtype st;
	byte d, sid, sd;
	bit sel, rem;
	end: do
	:: rdat!0,0,0,0,1;
	   rsig?st,_;
	   rdat?d,sid,sd,sel,rem;
	   if
	   :: st == RECV_SUCC -> done = done + 1
	   :: else
	   fi
	od
}`
	d := pnp.NewDesign("dispatcher", componentModels)
	d.AddConnector("Jobs", pnp.ConnectorSpec{
		Send:    pnp.AsynNonblockingSend,
		Channel: pnp.FIFOQueue, Size: 1,
		Recv: pnp.BlockingRecv,
	})
	d.AddInstance("dispatcher", "Dispatcher", 1, pnp.SendTo("Jobs"), pnp.IntArg(3))
	d.AddInstance("worker", "Worker", 2, pnp.RecvFrom("Jobs"))
	d.AddInvariant("no-invention", "done <= produced")
	d.AddGoal("all-jobs-done", "done == 3")

	cache := pnp.NewCache()
	results, err := d.Verify(cache, pnp.CheckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !results["safety"].OK {
		t.Errorf("safety should hold: %s", results["safety"].Summary())
	}
	if results["all-jobs-done"].OK {
		t.Error("tutorial claims the nonblocking send loses jobs; goal unexpectedly held")
	}

	fixed, err := d.WithSendPort("Jobs", pnp.AsynBlockingSend)
	if err != nil {
		t.Fatal(err)
	}
	results, err = fixed.Verify(cache, pnp.CheckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !results.AllOK() {
		for name, r := range results {
			if !r.OK {
				t.Errorf("fixed design: %s: %s", name, r.Summary())
			}
		}
	}
}

func TestFacadeObservability(t *testing.T) {
	// Verification side: progress snapshots and checker metrics.
	reg := pnp.NewMetricsRegistry()
	var finals int
	opts := pnp.CheckOptions{
		Metrics:          reg,
		ProgressInterval: time.Millisecond,
		Progress: func(p pnp.CheckProgress) {
			if p.Final {
				finals++
			}
		},
	}
	results, err := facadeDesign().Verify(nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	for name, r := range results {
		if !r.OK {
			t.Fatalf("%s: %s", name, r.Summary())
		}
	}
	if finals == 0 {
		t.Fatal("no final progress snapshot delivered")
	}
	if v := reg.Counter(pnp.MetricLabels("checker_states_stored_total", "phase", "safety-dfs")).Value(); v == 0 {
		t.Fatal("checker metrics not collected")
	}

	// Runtime side: instrumented connector plus a live MSC tap.
	live := pnp.NewLiveTrace(0)
	conn, err := pnp.NewConnector("wire", pnp.ConnectorSpec{
		Send: pnp.AsynBlockingSend, Channel: pnp.FIFOQueue, Size: 2, Recv: pnp.BlockingRecv,
	}, pnp.WithMetrics(reg), pnp.WithTrace(pnp.MSCTap(live)))
	if err != nil {
		t.Fatal(err)
	}
	snd, err := conn.NewSender()
	if err != nil {
		t.Fatal(err)
	}
	rcv, err := conn.NewReceiver()
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(conn.Stop)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := snd.Send(ctx, pnp.Message{Data: "ping"}); err != nil {
		t.Fatal(err)
	}
	if st, _, err := rcv.Receive(ctx, pnp.RecvRequest{}); err != nil || st != pnp.RecvSucc {
		t.Fatalf("receive = %v, %v", st, err)
	}
	if v := reg.Counter(pnp.MetricLabels("pnprt_port_sends_total", "connector", "wire", "port", "send0")).Value(); v != 1 {
		t.Fatalf("port sends = %d, want 1", v)
	}
	msc := live.MSC(nil)
	for _, want := range []string{"wire.send0", "SEND_SUCC", "ping"} {
		if !strings.Contains(msc, want) {
			t.Fatalf("live MSC missing %q:\n%s", want, msc)
		}
	}

	// Exposition carries both sides of the story.
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"checker_states_stored_total", "pnprt_channel_delivered_total"} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q", want)
		}
	}
}
