# Plug-and-Play architectural design and verification.

GO ?= go

.PHONY: all build test test-short race bench bench-json experiments matrix verify-examples clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./internal/faults/... ./internal/pnprt/... ./internal/obs/tracing/
	$(GO) test -race ./internal/bridge/ -run Runtime
	$(GO) test -race ./internal/blocks/ ./internal/verifyd/ -run 'Concurrent|Cache'
	$(GO) test -race ./internal/artifact/ ./internal/adl/
	$(GO) test -race -short ./internal/checker/ ./internal/model/
	$(GO) test -race ./internal/verifyd/ -run 'Budget|ServiceJob|Trace'
	$(GO) test -race -short ./internal/sweep/ ./internal/verifyd/client/
	$(GO) test -race ./internal/cluster/

bench:
	$(GO) test -bench=. -benchmem .

# Machine-readable benchmark records (name, ns/op, states/s) for the
# experiment benchmarks E8-E17, the verification-service cache, the
# fault-injection middleware overhead, the PR4 parallel-search scaling
# rows (ParallelSafety worker sweep + the sharded visited set vs the
# sequential map), the PR5 sweep-engine rows (cold in-process sweep
# vs fully cache-served re-sweep, plus spec expansion), the PR6
# tracing rows (span overhead with the recorder enabled vs the nil
# recorder's disabled path), the PR7 cluster rows (hash-ring lookup and
# the coordinator's per-job routing overhead), the PR9 visited-set
# storage rows (bytes/state for exact vs collapse-compressed vs
# spill-forced storage, on the micro workload and on the E9 bridge),
# and the PR10 incremental-recompile rows (cold modular compile vs a
# one-connector edit against a warm artifact store vs full reuse, with
# modules_compiled/modules_reused reported per row).
bench-json:
	($(GO) test -run '^$$' -bench 'E8|E9|E10|E11|E12|E13|E15|POR|VerifydCache|FaultMiddleware|ParallelSafety|ShardedVisitedBridge' -benchtime 1x . && \
	 $(GO) test -run '^$$' -bench 'ShardedVisited' -benchtime 1x ./internal/checker/ && \
	 $(GO) test -run '^$$' -bench 'SweepInProcess|SweepCacheReuse|ExpandMatrix' -benchtime 1x ./internal/sweep/ && \
	 $(GO) test -run '^$$' -bench 'SpanOverhead' -benchtime 1000x ./internal/obs/tracing/ && \
	 $(GO) test -run '^$$' -bench 'HashRing|ClusterRouteOverhead' -benchtime 1000x ./internal/cluster/ && \
	 $(GO) test -run '^$$' -bench 'IncrementalRecompile' -benchtime 1x ./internal/adl/) \
		| $(GO) run ./internal/tools/benchjson > BENCH_PR10.json
	@echo wrote BENCH_PR10.json

# Regenerate every EXPERIMENTS.md table.
experiments:
	$(GO) run ./cmd/pnpbridge
	$(GO) run ./cmd/pnpmatrix

matrix:
	$(GO) run ./cmd/pnpmatrix

verify-examples:
	$(GO) run ./cmd/pnpverify examples/adl/pingpong.pnp
	$(GO) run ./cmd/pnpverify examples/adl/bridge.pnp
	-$(GO) run ./cmd/pnpverify -bfs examples/adl/bridge-broken.pnp
	-$(GO) run ./cmd/pnpverify examples/adl/lossy.pnp

clean:
	$(GO) clean ./...
	rm -f test_output.txt bench_output.txt
