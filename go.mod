module pnp

go 1.22
