// Command pnpverify verifies a Plug-and-Play architecture description:
// it composes the system from the block library and the referenced
// component models, checks every declared property, and prints verdicts
// with counterexample traces (optionally as message sequence charts).
//
// Usage:
//
//	pnpverify [-bfs] [-max-states N] [-msc] system.pnp
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"pnp/internal/adl"
	"pnp/internal/checker"
)

func main() {
	os.Exit(run())
}

func run() int {
	bfs := flag.Bool("bfs", false, "breadth-first search (shortest counterexamples)")
	maxStates := flag.Int("max-states", 0, "state limit (0 = unlimited)")
	msc := flag.Bool("msc", false, "render counterexamples as message sequence charts")
	bitstate := flag.Bool("bitstate", false, "bitstate hashing (probabilistic, lower memory)")
	fair := flag.Bool("fair", false, "weak process fairness for LTL properties")
	strongFair := flag.Bool("strong-fair", false, "strong process fairness for LTL properties (fair-SCC search)")
	por := flag.Bool("por", false, "partial-order reduction for the safety search")
	unreached := flag.Bool("unreached", false, "report never-executed transitions (dead code)")
	dotFile := flag.String("dot", "", "write the state graph (<=500 states) to this DOT file")
	simulate := flag.Int("simulate", 0, "random-walk simulate N steps instead of verifying")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: pnpverify [flags] system.pnp\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		return 2
	}
	path := flag.Arg(0)
	src, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pnpverify: %v\n", err)
		return 1
	}
	dir := filepath.Dir(path)
	resolve := func(ref string) (string, error) {
		b, err := os.ReadFile(filepath.Join(dir, ref))
		return string(b), err
	}
	sys, err := adl.Load(string(src), resolve, nil)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pnpverify: %v\n", err)
		return 1
	}
	fmt.Printf("system %s: %d processes, %d channels\n",
		sys.Name, sys.Builder.System().NumInstances(), sys.Builder.System().NumChannels())

	if *dotFile != "" {
		f, err := os.Create(*dotFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pnpverify: %v\n", err)
			return 1
		}
		chk := checker.New(sys.Builder.System(), checker.Options{Invariants: sys.Invariants})
		werr := chk.WriteDOT(f, 500)
		cerr := f.Close()
		if werr != nil || cerr != nil {
			fmt.Fprintf(os.Stderr, "pnpverify: writing %s: %v %v\n", *dotFile, werr, cerr)
			return 1
		}
		fmt.Printf("state graph written to %s\n", *dotFile)
	}

	if *simulate > 0 {
		chk := checker.New(sys.Builder.System(), checker.Options{Invariants: sys.Invariants})
		res := chk.Simulate(*seed, *simulate)
		fmt.Println(res.Trace)
		if !res.OK {
			fmt.Printf("simulation hit: %s\n", res.Summary())
			return 1
		}
		return 0
	}

	results := sys.VerifyAll(checker.Options{
		BFS:             *bfs,
		MaxStates:       *maxStates,
		Bitstate:        *bitstate,
		WeakFairness:    *fair,
		StrongFairness:  *strongFair,
		PartialOrder:    *por,
		ReportUnreached: *unreached,
	})
	names := make([]string, 0, len(results))
	for name := range results {
		names = append(names, name)
	}
	sort.Strings(names)
	failed := 0
	for _, name := range names {
		res := results[name]
		fmt.Printf("  %-20s %s\n", name, res.Summary())
		if !res.OK {
			failed++
			if res.Trace != nil {
				fmt.Println(res.Trace)
				if *msc {
					fmt.Println(res.Trace.MSC(nil))
				}
			}
		}
	}
	if *unreached {
		if safety := results["safety"]; safety != nil && len(safety.Unreached) > 0 {
			fmt.Println("never-executed transitions:")
			for _, u := range safety.Unreached {
				fmt.Printf("  %s\n", u)
			}
		}
	}
	if failed > 0 {
		fmt.Printf("%d propert(y/ies) FAILED\n", failed)
		return 1
	}
	fmt.Println("all properties verified")
	return 0
}
