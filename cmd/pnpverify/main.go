// Command pnpverify verifies a Plug-and-Play architecture description:
// it composes the system from the block library and the referenced
// component models, checks every declared property, and prints verdicts
// with counterexample traces (optionally as message sequence charts).
//
// Usage:
//
//	pnpverify [-bfs] [-workers N] [-max-states N] [-msc] [-json]
//	          [-timeout 30s] [-progress] [-metrics-addr :8080]
//	          [-trace-out trace.json] [-checkpoint-dir DIR]
//	          [-visited collapse] [-mem-limit 2GiB] [-spill-dir DIR]
//	          system.pnp
//
// Big searches: -visited=collapse interns per-process and per-channel
// sub-vectors so each stored state costs a few bytes instead of its
// full encoding, and -mem-limit spills the visited set to disk segments
// when it outgrows the budget. Both change memory use only — verdicts,
// counterexamples, and state counts are identical to an exact run.
//
// With -checkpoint-dir the parallel searches snapshot their frontier
// and visited set into that directory at BFS level barriers, keyed by a
// content hash of the design; re-running the same command after an
// interruption resumes each property's search from its last snapshot
// instead of starting over.
//
// With -remote the design is submitted to a running verification
// service (pnpd) instead of being checked in-process: component files
// are inlined into the request, the job's verdict report is printed in
// the same format, and cached results come back in microseconds.
package main

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	"pnp/internal/adl"
	"pnp/internal/checker"
	"pnp/internal/obs"
	"pnp/internal/obs/tracing"
	"pnp/internal/verifyd"
	"pnp/internal/verifyd/client"
)

func main() {
	os.Exit(run())
}

func run() int {
	bfs := flag.Bool("bfs", false, "breadth-first search (shortest counterexamples)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "parallel search workers for safety/reachability (0 = classic sequential engines)")
	maxStates := flag.Int("max-states", 0, "state limit (0 = unlimited)")
	msc := flag.Bool("msc", false, "render counterexamples as message sequence charts")
	bitstate := flag.Bool("bitstate", false, "bitstate hashing (probabilistic, lower memory)")
	fair := flag.Bool("fair", false, "weak process fairness for LTL properties")
	strongFair := flag.Bool("strong-fair", false, "strong process fairness for LTL properties (fair-SCC search)")
	por := flag.Bool("por", false, "partial-order reduction for the safety search")
	visited := flag.String("visited", "", "visited-set storage for parallel searches: exact or collapse (collapse interns per-process/per-channel sub-vectors, Spin -DCOLLAPSE style)")
	memLimit := flag.String("mem-limit", "", "visited-set memory budget with an optional size suffix (e.g. 512MB, 2GiB); searches over budget spill visited states to disk and keep going")
	spillDir := flag.String("spill-dir", "", "parent directory for spill segment files (default: the OS temp dir)")
	ckptDir := flag.String("checkpoint-dir", "", "snapshot parallel searches into this directory at BFS level barriers and resume them on re-run (keyed by a content hash of the design)")
	ckptInterval := flag.Int("checkpoint-interval", 1, "completed BFS levels between snapshots (with -checkpoint-dir)")
	unreached := flag.Bool("unreached", false, "report never-executed transitions (dead code)")
	dotFile := flag.String("dot", "", "write the state graph (<=500 states) to this DOT file")
	simulate := flag.Int("simulate", 0, "random-walk simulate N steps instead of verifying")
	seed := flag.Int64("seed", 1, "simulation seed")
	jsonOut := flag.Bool("json", false, "emit the verdict report as JSON (same document the pnpd service serves)")
	timeout := flag.Duration("timeout", 0, "abort each property search after this long with a canceled verdict (0 = no limit)")
	progress := flag.Bool("progress", false, "print periodic search progress lines and a final stats table")
	progressInterval := flag.Duration("progress-interval", 200*time.Millisecond, "interval between progress lines")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /metrics.json, and /debug/trace on this address while verifying")
	remote := flag.String("remote", "", "submit to a verification service at this base URL instead of checking in-process")
	traceOut := flag.String("trace-out", "", "write a Chrome trace_event JSON file of the verification spans (view in chrome://tracing or Perfetto)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: pnpverify [flags] system.pnp\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		return 2
	}
	path := flag.Arg(0)
	switch *visited {
	case "", checker.VisitedExact, checker.VisitedCollapse:
	default:
		fmt.Fprintf(os.Stderr, "pnpverify: -visited=%s: want exact or collapse\n", *visited)
		return 2
	}
	memBudget, err := checker.ParseByteSize(*memLimit)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pnpverify: -mem-limit: %v\n", err)
		return 2
	}
	src, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pnpverify: %v\n", err)
		return 1
	}
	dir := filepath.Dir(path)
	resolve := func(ref string) (string, error) {
		b, err := os.ReadFile(filepath.Join(dir, ref))
		return string(b), err
	}
	if *remote != "" {
		return runRemote(*remote, string(src), dir, *bfs, *workers, *maxStates, *visited, memBudget, *timeout, *jsonOut, *msc, *traceOut)
	}
	sys, err := adl.Load(string(src), resolve, nil)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pnpverify: %v\n", err)
		return 1
	}
	if !*jsonOut {
		fmt.Printf("system %s: %d processes, %d channels\n",
			sys.Name, sys.Builder.System().NumInstances(), sys.Builder.System().NumChannels())
		if sys.Faults != nil {
			fmt.Printf("fault plan: %s (%d rule(s), applied at runtime; lossy channels model loss in the checker)\n",
				sys.Faults.Canonical(), len(sys.Faults.Rules))
		}
	}

	if *dotFile != "" {
		f, err := os.Create(*dotFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pnpverify: %v\n", err)
			return 1
		}
		chk := checker.New(sys.Builder.System(), checker.Options{Invariants: sys.Invariants})
		werr := chk.WriteDOT(f, 500)
		cerr := f.Close()
		if werr != nil || cerr != nil {
			fmt.Fprintf(os.Stderr, "pnpverify: writing %s: %v %v\n", *dotFile, werr, cerr)
			return 1
		}
		fmt.Printf("state graph written to %s\n", *dotFile)
	}

	if *simulate > 0 {
		chk := checker.New(sys.Builder.System(), checker.Options{Invariants: sys.Invariants})
		res := chk.Simulate(*seed, *simulate)
		fmt.Println(res.Trace)
		if !res.OK {
			fmt.Printf("simulation hit: %s\n", res.Summary())
			return 1
		}
		return 0
	}

	opts := checker.Options{
		BFS:             *bfs,
		Workers:         *workers,
		MaxStates:       *maxStates,
		Bitstate:        *bitstate,
		WeakFairness:    *fair,
		StrongFairness:  *strongFair,
		PartialOrder:    *por,
		ReportUnreached: *unreached,
		Visited:         *visited,
		MemLimit:        memBudget,
		SpillDir:        *spillDir,
	}
	if *ckptDir != "" {
		// The key is the design's content address; VerifyAll suffixes it
		// per property, so each search gets its own snapshot file.
		sum := sha256.Sum256(src)
		opts.Checkpoint = &checker.CheckpointOptions{
			Dir:      *ckptDir,
			Key:      hex.EncodeToString(sum[:]),
			Interval: *ckptInterval,
			Resume:   true,
		}
	}
	if *timeout > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		opts.Context = ctx
	}
	// VerifyAll runs properties sequentially, so the callback needs no lock.
	// Progress goes to stderr so it never corrupts -json output on stdout.
	var finals []checker.Progress
	if *progress {
		opts.ProgressInterval = *progressInterval
		opts.Progress = func(p checker.Progress) {
			if p.Final {
				finals = append(finals, p)
				return
			}
			fmt.Fprintf(os.Stderr, "  progress [%s] states %d (%d matched) trans %d depth %d %s heap %.1fMB\n",
				p.Phase, p.StatesStored, p.StatesMatched, p.Transitions, p.Depth,
				fmtRate(p.StatesPerSec), float64(p.HeapAlloc)/(1<<20))
		}
	}
	var rec *tracing.Recorder
	var rootSpan *tracing.Span
	if *traceOut != "" {
		rec = tracing.NewRecorder(tracing.DefaultRecorderCapacity)
		opts.Tracer = rec
		tctx := opts.Context
		if tctx == nil {
			tctx = context.Background()
		}
		tctx, rootSpan = rec.StartSpan(tctx, "pnpverify", tracing.A("system", path))
		opts.Context = tctx
	}
	if *metricsAddr != "" {
		reg := obs.NewRegistry()
		opts.Metrics = reg
		var mounts []obs.Mount
		if rec != nil {
			mounts = append(mounts, obs.Mount{Pattern: "/debug/trace", Handler: rec.Handler()})
		}
		srv, err := obs.Serve(reg, *metricsAddr, mounts...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pnpverify: %v\n", err)
			return 1
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "metrics: http://%s/metrics\n", srv.Addr())
	}

	results := sys.VerifyAll(opts)
	rootSpan.End()
	// Spill summary goes to stderr (like progress) so it never corrupts
	// -json output; the counter name matches the /metrics series.
	var spilledTotal int
	var peakBytes int64
	for _, res := range results {
		spilledTotal += res.Stats.SpilledStates
		if res.Stats.VisitedBytes > peakBytes {
			peakBytes = res.Stats.VisitedBytes
		}
	}
	if spilledTotal > 0 {
		fmt.Fprintf(os.Stderr, "visited storage: over budget, spilled to disk: visited_spilled_states_total %d (peak in-memory %.1fMB)\n",
			spilledTotal, float64(peakBytes)/(1<<20))
	}
	if rec != nil {
		if err := writeChromeFile(*traceOut, rec.Spans()); err != nil {
			fmt.Fprintf(os.Stderr, "pnpverify: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "trace written to %s\n", *traceOut)
	}
	if *jsonOut {
		rep := verifyd.NewReport(sys, results)
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintf(os.Stderr, "pnpverify: %v\n", err)
			return 1
		}
		if rep.OK {
			return 0
		}
		return 1
	}
	names := make([]string, 0, len(results))
	for name := range results {
		names = append(names, name)
	}
	sort.Strings(names)
	failed := 0
	for _, name := range names {
		res := results[name]
		fmt.Printf("  %-20s %s\n", name, res.Summary())
		if !res.OK {
			failed++
			if res.Trace != nil {
				fmt.Println(res.Trace)
				if *msc {
					fmt.Println(res.Trace.MSC(nil))
				}
			}
		}
	}
	if *unreached {
		if safety := results["safety"]; safety != nil && len(safety.Unreached) > 0 {
			fmt.Println("never-executed transitions:")
			for _, u := range safety.Unreached {
				fmt.Printf("  %s\n", u)
			}
		}
	}
	if *progress && len(finals) > 0 {
		fmt.Fprintln(os.Stderr, "search statistics:")
		fmt.Fprintf(os.Stderr, "  %-22s %10s %10s %12s %6s %12s %10s\n",
			"phase", "states", "matched", "transitions", "depth", "states/s", "elapsed")
		for _, p := range finals {
			fmt.Fprintf(os.Stderr, "  %-22s %10d %10d %12d %6d %12s %10s\n",
				p.Phase, p.StatesStored, p.StatesMatched, p.Transitions, p.Depth,
				fmtRate(p.StatesPerSec), p.Elapsed.Round(time.Millisecond))
		}
	}
	if failed > 0 {
		fmt.Printf("%d propert(y/ies) FAILED\n", failed)
		return 1
	}
	fmt.Println("all properties verified")
	return 0
}

// runRemote submits the design to a verification service and prints its
// verdict report. Component references are resolved locally and inlined
// into the request — the service never touches this machine's files.
// With traceOut set, the submission carries a traceparent so the job
// joins a locally-rooted trace; the server's spans are fetched back and
// written together with the local root as one Chrome trace file.
func runRemote(base, src, dir string, bfs bool, workers, maxStates int, visited string, memLimit int64, timeout time.Duration, jsonOut, msc bool, traceOut string) int {
	refs, err := adl.ComponentRefs(src)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pnpverify: %v\n", err)
		return 1
	}
	comps := make(map[string]string, len(refs))
	for _, ref := range refs {
		b, err := os.ReadFile(filepath.Join(dir, ref))
		if err != nil {
			fmt.Fprintf(os.Stderr, "pnpverify: component %q: %v\n", ref, err)
			return 1
		}
		comps[ref] = string(b)
	}

	req := client.JobRequest{ADL: src, Components: comps, TimeoutMS: int(timeout / time.Millisecond)}
	if bfs {
		req.BFS = &bfs
	}
	if workers > 0 {
		req.Workers = &workers
	}
	if maxStates > 0 {
		req.MaxStates = &maxStates
	}
	if visited != "" {
		req.Visited = &visited
	}
	if memLimit > 0 {
		req.MemLimitBytes = &memLimit
	}

	ctx := context.Background()
	var rec *tracing.Recorder
	var rootSpan *tracing.Span
	if traceOut != "" {
		rec = tracing.NewRecorder(tracing.DefaultRecorderCapacity)
		ctx, rootSpan = rec.StartSpan(ctx, "pnpverify", tracing.A("remote", base))
	}
	c := client.New(base)
	job, err := c.Submit(ctx, req)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pnpverify: %v\n", err)
		return 1
	}
	done, err := c.Wait(ctx, job.ID)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pnpverify: %v\n", err)
		return 1
	}
	if rec != nil {
		rootSpan.End()
		spans := rec.Spans()
		if remoteSpans, terr := c.JobTrace(ctx, job.ID); terr == nil {
			spans = append(spans, remoteSpans...)
		} else {
			fmt.Fprintf(os.Stderr, "pnpverify: fetching remote trace: %v (is pnpd running with --trace-entries > 0?)\n", terr)
		}
		if err := writeChromeFile(traceOut, spans); err != nil {
			fmt.Fprintf(os.Stderr, "pnpverify: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "trace written to %s\n", traceOut)
	}
	rep := done.Report
	if rep == nil {
		if done.Err != "" {
			fmt.Fprintf(os.Stderr, "pnpverify: job %s failed: %s\n", job.ID, done.Err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "pnpverify: job %s finished without a report\n", job.ID)
		return 1
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintf(os.Stderr, "pnpverify: %v\n", err)
			return 1
		}
		if rep.OK {
			return 0
		}
		return 1
	}
	// Against a cluster coordinator the final document names the worker
	// that served the job (or "coordinator" for cluster-cache answers).
	served := base
	if done.Node != "" {
		served = done.Node
	}
	fmt.Printf("system %s: %d processes, %d channels (remote %s, job %s, %d cached)\n",
		rep.System, rep.Processes, rep.Channels, served, job.ID, done.CacheHits)
	for _, p := range rep.Properties {
		fmt.Printf("  %-20s %s\n", p.Name, p.Summary)
		if !p.OK && p.Counterexample != "" {
			fmt.Println(p.Counterexample)
			if msc && p.MSC != "" {
				fmt.Println(p.MSC)
			}
		}
	}
	if rep.Failed > 0 {
		fmt.Printf("%d propert(y/ies) FAILED\n", rep.Failed)
		return 1
	}
	fmt.Println("all properties verified")
	return 0
}

// writeChromeFile writes spans to path as Chrome trace_event JSON.
func writeChromeFile(path string, spans []tracing.SpanData) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := tracing.WriteChromeTrace(f, spans)
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}

// fmtRate renders a states/second rate compactly (12345678 -> "12.3M/s").
func fmtRate(r float64) string {
	switch {
	case r >= 1e6:
		return fmt.Sprintf("%.3gM/s", r/1e6)
	case r >= 1e3:
		return fmt.Sprintf("%.3gk/s", r/1e3)
	default:
		return fmt.Sprintf("%.0f/s", r)
	}
}
