// Command pnpd is the Plug-and-Play verification daemon: it accepts
// architecture descriptions over HTTP, verifies them on a bounded worker
// pool, and serves verdicts — reusing content-addressed cached results
// for unchanged (model, property, options) combinations, so iterating on
// one connector port re-verifies in microseconds.
//
// Usage:
//
//	pnpd [--addr :7447] [--workers N] [--search-budget N]
//	     [--cache-entries N] [--job-timeout 30s] [--metrics-addr :8080]
//	     [--root DIR] [--trace-entries N] [--log-level info]
//	     [--data-dir DIR] [--checkpoint-interval N]
//	     [--visited collapse] [--mem-limit 2GiB] [--spill-dir DIR]
//	pnpd --coordinator --nodes=http://h1:7447,http://h2:7447 [--addr :7446]
//	     [--probe-interval 2s] [--cache-entries N]
//
// With --coordinator the process serves the same v1 API but routes
// every job and sweep cell to the worker fleet named by --nodes: a
// consistent-hash ring over the submission's content address picks the
// node (so repeats land where the answer is cached), health probes
// eject dead nodes, and placement fails over along the ring. See
// docs/CLUSTER.md.
//
// With --data-dir the daemon is crash-safe: every accepted submission
// is journaled to an append-only WAL before it is acknowledged, running
// searches snapshot their frontier at BFS level barriers, and a
// restarted daemon replays the journal — completed verdicts are served
// from disk, interrupted jobs are re-enqueued and resume from their
// last snapshot. kill -9 loses no acknowledged work. See docs/API.md.
//
// Every job and sweep is traced into a bounded in-process flight
// recorder: GET /v1/jobs/{id}/trace and /v1/sweeps/{id}/trace stream
// the spans as NDJSON, /debug/trace browses the ring, and submissions
// carrying a W3C traceparent header join the caller's trace. Job
// lifecycle events are logged with log/slog, each line carrying the
// job_id and trace_id.
//
// Submit a design and wait for its verdict:
//
//	curl -s --data-binary @examples/adl/bridge.pnp localhost:7447/v1/jobs
//	curl -s localhost:7447/v1/jobs/job-1/wait
//
// The daemon also serves design-space sweeps (POST /v1/sweeps): one
// request expands into a verification job per design variant, deduped
// against the shared result cache. pnpsweep -remote drives them.
//
// A SIGINT/SIGTERM drains the queue: running jobs finish, new
// submissions get 503, then the process exits. GET /healthz is the
// liveness probe (200 for the process lifetime) and GET /readyz the
// readiness probe (503 from the first drain instant), so orchestrators
// stop routing to a draining pod without killing its in-flight work.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"time"

	"pnp"
	"pnp/internal/checker"
	"pnp/internal/cluster"
	"pnp/internal/obs"
	"pnp/internal/obs/tracing"
	"pnp/internal/verifyd"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", ":7447", "HTTP listen address for the job API")
	coordinator := flag.Bool("coordinator", false, "run as a cluster coordinator fronting --nodes instead of verifying locally")
	nodes := flag.String("nodes", "", "comma-separated worker base URLs (coordinator mode)")
	probeInterval := flag.Duration("probe-interval", 2*time.Second, "health-probe period per node (coordinator mode)")
	workers := flag.Int("workers", 0, "concurrent checker runs (0 = GOMAXPROCS)")
	searchBudget := flag.Int("search-budget", 0, "total parallel search workers shared by running jobs (0 = GOMAXPROCS)")
	cacheEntries := flag.Int("cache-entries", 1024, "result cache capacity (verdicts)")
	jobTimeout := flag.Duration("job-timeout", 5*time.Minute, "per-property search timeout (0 = unlimited)")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics on a separate address (default: on --addr)")
	root := flag.String("root", "", "directory for resolving component references in raw ADL submissions")
	dataDir := flag.String("data-dir", "", "durable state directory (job journal + search checkpoints); submissions survive a crash and a restart resumes interrupted searches")
	visited := flag.String("visited", "", "default visited-set storage for parallel searches: exact or collapse (jobs may override per submission)")
	memLimit := flag.String("mem-limit", "", "default per-search visited-set memory budget (e.g. 2GiB); searches over budget spill visited states to disk")
	spillDir := flag.String("spill-dir", "", "parent directory for spill segment files (default: the OS temp dir); never wire-settable by clients")
	ckptInterval := flag.Int("checkpoint-interval", 1, "completed BFS levels between search snapshots (with --data-dir)")
	traceEntries := flag.Int("trace-entries", tracing.DefaultRecorderCapacity,
		"flight-recorder capacity in spans; jobs and sweeps record traces served on /v1/*/trace and /debug/trace (0 disables tracing)")
	logLevel := flag.String("log-level", "info", "structured log level: debug, info, warn, error")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: pnpd [flags]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 0 {
		flag.Usage()
		return 2
	}

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "pnpd: bad -log-level %q\n", *logLevel)
		return 2
	}
	switch *visited {
	case "", checker.VisitedExact, checker.VisitedCollapse:
	default:
		fmt.Fprintf(os.Stderr, "pnpd: --visited=%s: want exact or collapse\n", *visited)
		return 2
	}
	memBudget, err := checker.ParseByteSize(*memLimit)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pnpd: --mem-limit: %v\n", err)
		return 2
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	var rec *tracing.Recorder
	if *traceEntries > 0 {
		rec = tracing.NewRecorder(*traceEntries)
	}

	reg := obs.NewRegistry()
	if *coordinator {
		return runCoordinator(*addr, *nodes, *probeInterval, *cacheEntries, *metricsAddr, reg, rec, logger)
	}
	cfg := verifyd.Config{
		Workers:            *workers,
		SearchBudget:       *searchBudget,
		CacheEntries:       *cacheEntries,
		JobTimeout:         *jobTimeout,
		DataDir:            *dataDir,
		CheckpointInterval: *ckptInterval,
		Registry:           reg,
		Tracer:             rec,
		Logger:             logger,
		Options: checker.Options{
			Visited:  *visited,
			MemLimit: memBudget,
			SpillDir: *spillDir,
		},
	}
	if *root != "" {
		dir := *root
		cfg.Resolver = func(ref string) (string, error) {
			b, err := os.ReadFile(filepath.Join(dir, filepath.Clean(ref)))
			return string(b), err
		}
	}
	// pnp.Serve assembles the verification server with the /v1/sweeps
	// routes layered over it; every sweep fans out into jobs on this
	// server, sharing its result cache and search budget with direct
	// submissions. An explicit --data-dir that cannot be opened is a
	// configuration error the operator must see — unlike library
	// callers, the daemon refuses to silently degrade to memory-only.
	svc, err := pnp.Serve(pnp.ServeOptions{Verify: cfg})
	if err != nil {
		fmt.Fprintf(os.Stderr, "pnpd: data dir %s: %v\n", *dataDir, err)
		return 1
	}
	srv := svc.VerifyServer()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pnpd: %v\n", err)
		return 1
	}
	httpSrv := &http.Server{Handler: svc.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	fmt.Printf("pnpd: listening on http://%s (workers=%d, cache=%d, timeout=%s)\n",
		ln.Addr(), cfgWorkers(cfg), *cacheEntries, *jobTimeout)
	if *dataDir != "" {
		fmt.Printf("pnpd: durable state in %s (checkpoint every %d level(s))\n", *dataDir, *ckptInterval)
	}

	if *metricsAddr != "" {
		var mounts []obs.Mount
		if rec != nil {
			mounts = append(mounts, obs.Mount{Pattern: "/debug/trace", Handler: rec.Handler()})
		}
		msrv, err := obs.Serve(reg, *metricsAddr, mounts...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pnpd: metrics: %v\n", err)
			return 1
		}
		defer msrv.Close()
		fmt.Printf("pnpd: metrics on http://%s/metrics\n", msrv.Addr())
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Printf("pnpd: %s received, draining\n", sig)
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "pnpd: %v\n", err)
		return 1
	}

	// Drain the service first, HTTP second: the moment svc.Shutdown
	// begins, new submissions get 503 and /readyz reports draining —
	// but the listener stays up, so orchestrators can watch the drain
	// and clients can still collect verdicts for in-flight jobs. Only
	// once every accepted job has finished (and every sweep has
	// aggregated) does the HTTP server close.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "pnpd: drain: %v\n", err)
		return 1
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "pnpd: http shutdown: %v\n", err)
	}
	st := srv.Cache().Stats()
	fmt.Printf("pnpd: drained (cache: %d entries, %d hits, %d misses, %d evictions)\n",
		st.Entries, st.Hits, st.Misses, st.Evictions)
	return 0
}

// cfgWorkers mirrors the server's worker-count default for the banner.
func cfgWorkers(cfg verifyd.Config) int {
	if cfg.Workers > 0 {
		return cfg.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// runCoordinator is pnpd --coordinator: the same process image serving
// the same v1 API, but routing every job and sweep cell to the worker
// fleet named by --nodes instead of verifying locally.
func runCoordinator(addr, nodes string, probeInterval time.Duration, cacheEntries int,
	metricsAddr string, reg *obs.Registry, rec *tracing.Recorder, logger *slog.Logger) int {
	var nodeList []string
	for _, n := range strings.Split(nodes, ",") {
		if n = strings.TrimSpace(n); n != "" {
			nodeList = append(nodeList, n)
		}
	}
	if len(nodeList) == 0 {
		fmt.Fprintf(os.Stderr, "pnpd: --coordinator requires --nodes=url1,url2,...\n")
		return 2
	}
	svc, err := pnp.Serve(pnp.ServeOptions{Cluster: &cluster.Config{
		Nodes:         nodeList,
		ProbeInterval: probeInterval,
		CacheEntries:  cacheEntries,
		Registry:      reg,
		Tracer:        rec,
		Logger:        logger,
	}})
	if err != nil {
		fmt.Fprintf(os.Stderr, "pnpd: %v\n", err)
		return 1
	}
	coord := svc.Coordinator()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pnpd: %v\n", err)
		return 1
	}
	httpSrv := &http.Server{Handler: svc.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	fmt.Printf("pnpd: coordinator on http://%s (nodes=%d, cache=%d, probe=%s)\n",
		ln.Addr(), len(coord.Nodes()), cacheEntries, probeInterval)

	if metricsAddr != "" {
		var mounts []obs.Mount
		if rec != nil {
			mounts = append(mounts, obs.Mount{Pattern: "/debug/trace", Handler: rec.Handler()})
		}
		msrv, err := obs.Serve(reg, metricsAddr, mounts...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pnpd: metrics: %v\n", err)
			return 1
		}
		defer msrv.Close()
		fmt.Printf("pnpd: metrics on http://%s/metrics\n", msrv.Addr())
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Printf("pnpd: %s received, draining\n", sig)
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "pnpd: %v\n", err)
		return 1
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "pnpd: drain: %v\n", err)
		return 1
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "pnpd: http shutdown: %v\n", err)
	}
	fmt.Println("pnpd: coordinator drained")
	return 0
}
