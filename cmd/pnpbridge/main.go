// Command pnpbridge runs the paper's single-lane bridge experiments and
// prints the tables recorded in EXPERIMENTS.md:
//
//	E8  exactly-N bridge with asynchronous enter sends  -> safety violated
//	E9  same system, synchronous enter sends            -> verified
//	E10 at-most-N bridge (Fig. 14)                      -> verified
//	E11 model-construction reuse across the E8->E9 edit
//	E13 paper-literal vs optimized block models (state explosion)
//	E15 state-space scaling with buffer size
//
// Usage: pnpbridge [-quick] [-trace] [-metrics] [-trace-out FILE]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"pnp/internal/blocks"
	"pnp/internal/bridge"
	"pnp/internal/checker"
	"pnp/internal/model"
	"pnp/internal/obs"
	"pnp/internal/obs/tracing"
)

func main() {
	quick := flag.Bool("quick", false, "smaller sweeps (skips the slowest rows)")
	showTrace := flag.Bool("trace", false, "print the E8 counterexample trace and MSC")
	metrics := flag.Bool("metrics", false, "collect checker metrics and print a table per experiment")
	traceOut := flag.String("trace-out", "", "write a Chrome trace_event JSON file of the checker-phase spans")
	flag.Parse()
	var rec *tracing.Recorder
	if *traceOut != "" {
		rec = tracing.NewRecorder(tracing.DefaultRecorderCapacity)
	}
	if err := run(*quick, *showTrace, *metrics, rec); err != nil {
		fmt.Fprintf(os.Stderr, "pnpbridge: %v\n", err)
		os.Exit(1)
	}
	if rec != nil {
		if err := writeChromeFile(*traceOut, rec.Spans()); err != nil {
			fmt.Fprintf(os.Stderr, "pnpbridge: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "trace written to %s\n", *traceOut)
	}
}

// writeChromeFile writes spans to path as Chrome trace_event JSON.
func writeChromeFile(path string, spans []tracing.SpanData) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := tracing.WriteChromeTrace(f, spans)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// newRegistry returns a fresh registry when metrics are requested, nil
// otherwise (a nil registry disables all instrumentation).
func newRegistry(metrics bool) *obs.Registry {
	if !metrics {
		return nil
	}
	return obs.NewRegistry()
}

// dumpMetrics prints one experiment's collected metrics table.
func dumpMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	fmt.Println("-- metrics --")
	reg.Dump(os.Stdout)
}

// rate renders states per second of one verification run.
func rate(states int, d time.Duration) string {
	if d <= 0 {
		return "-"
	}
	r := float64(states) / d.Seconds()
	switch {
	case r >= 1e6:
		return fmt.Sprintf("%.3gM/s", r/1e6)
	case r >= 1e3:
		return fmt.Sprintf("%.3gk/s", r/1e3)
	default:
		return fmt.Sprintf("%.0f/s", r)
	}
}

func run(quick, showTrace, metrics bool, rec *tracing.Recorder) error {
	cache := blocks.NewCache()

	fmt.Println("== E8/E9/E10: bridge safety across connector choices ==")
	fmt.Printf("%-28s %-20s %-12s %10s %12s %8s %12s %10s\n",
		"design", "enter send port", "verdict", "states", "transitions", "depth", "states/s", "time")
	regSafety := newRegistry(metrics)

	type row struct {
		label string
		cfg   bridge.Config
		opts  checker.Options
	}
	rows := []row{
		{"exactly-N (Fig.13 initial)", bridge.Config{Variant: bridge.ExactlyN, EnterSend: blocks.AsynBlockingSend}, checker.Options{}},
		{"exactly-N (checking)", bridge.Config{Variant: bridge.ExactlyN, EnterSend: blocks.AsynCheckingSend}, checker.Options{}},
		{"exactly-N (fixed, E9)", bridge.Config{Variant: bridge.ExactlyN, EnterSend: blocks.SynBlockingSend}, checker.Options{}},
		{"exactly-N (syn-checking)", bridge.Config{Variant: bridge.ExactlyN, EnterSend: blocks.SynCheckingSend}, checker.Options{}},
		{"at-most-N (Fig.14, async)", bridge.Config{Variant: bridge.AtMostN, EnterSend: blocks.AsynBlockingSend}, checker.Options{}},
	}
	if !quick {
		rows = append(rows, row{"at-most-N (Fig.14, E10)",
			bridge.Config{Variant: bridge.AtMostN, EnterSend: blocks.SynBlockingSend}, checker.Options{}})
	}
	var e8 *checker.Result
	for _, r := range rows {
		r.opts.Metrics = regSafety
		r.opts.Tracer = rec
		res, err := bridge.Verify(r.cfg, cache, r.opts)
		if err != nil {
			return err
		}
		verdict := "VERIFIED"
		if !res.OK {
			verdict = res.Kind.String()
		}
		fmt.Printf("%-28s %-20s %-12s %10d %12d %8d %12s %10s\n",
			r.label, r.cfg.EnterSend, verdict,
			res.Stats.StatesStored, res.Stats.Transitions, res.Stats.MaxDepth,
			rate(res.Stats.StatesStored, res.Stats.Elapsed),
			res.Stats.Elapsed.Round(time.Millisecond))
		if e8 == nil && !res.OK {
			e8 = res
		}
	}
	dumpMetrics(regSafety)

	if showTrace && e8 != nil && e8.Trace != nil {
		fmt.Println("\n-- E8 counterexample (shortest, BFS re-run) --")
		resBFS, err := bridge.Verify(bridge.Config{
			Variant: bridge.ExactlyN, EnterSend: blocks.AsynBlockingSend,
		}, cache, checker.Options{BFS: true})
		if err != nil {
			return err
		}
		fmt.Println(resBFS.Trace)
		fmt.Println(resBFS.Trace.MSC(nil))
	}

	fmt.Println("\n== E11: model-construction reuse across the E8->E9 edit ==")
	if err := reuseExperiment(); err != nil {
		return err
	}

	fmt.Println("\n== E13: paper-literal vs optimized block models ==")
	if err := ablationExperiment(quick, metrics); err != nil {
		return err
	}

	fmt.Println("\n== E17: partial-order reduction on the E9 verification ==")
	fmt.Printf("%-28s %10s %12s %12s %10s\n", "search", "states", "transitions", "states/s", "time")
	regPOR := newRegistry(metrics)
	for _, por := range []bool{false, true} {
		label := "full"
		if por {
			label = "partial-order reduction"
		}
		res, err := bridge.Verify(bridge.Config{
			Variant: bridge.ExactlyN, EnterSend: blocks.SynBlockingSend,
		}, cache, checker.Options{PartialOrder: por, Metrics: regPOR, Tracer: rec})
		if err != nil {
			return err
		}
		fmt.Printf("%-28s %10d %12d %12s %10s\n",
			label, res.Stats.StatesStored, res.Stats.Transitions,
			rate(res.Stats.StatesStored, res.Stats.Elapsed),
			res.Stats.Elapsed.Round(time.Millisecond))
	}
	dumpMetrics(regPOR)

	fmt.Println("\n== E15: state-space scaling with the per-turn quota N ==")
	fmt.Printf("%-12s %10s %12s %12s %10s\n", "quota N", "states", "transitions", "states/s", "time")
	regScale := newRegistry(metrics)
	maxN := 4
	if quick {
		maxN = 2
	}
	for n := 1; n <= maxN; n++ {
		res, err := bridge.Verify(bridge.Config{
			Variant: bridge.ExactlyN, EnterSend: blocks.SynBlockingSend, N: n,
		}, cache, checker.Options{Metrics: regScale, Tracer: rec})
		if err != nil {
			return err
		}
		fmt.Printf("N=%-10d %10d %12d %12s %10s\n",
			n, res.Stats.StatesStored, res.Stats.Transitions,
			rate(res.Stats.StatesStored, res.Stats.Elapsed),
			res.Stats.Elapsed.Round(time.Millisecond))
	}
	dumpMetrics(regScale)
	return nil
}

// reuseExperiment measures the paper's central verification-cost claim:
// after the designer swaps a connector block, the component and library
// models are reused, so re-verification skips model construction.
func reuseExperiment() error {
	unsafeCfg := bridge.Config{Variant: bridge.ExactlyN, EnterSend: blocks.AsynBlockingSend}
	safeCfg := bridge.Config{Variant: bridge.ExactlyN, EnterSend: blocks.SynBlockingSend}

	// Without reuse: compile everything from scratch both times.
	t0 := time.Now()
	if _, err := bridge.Build(unsafeCfg, nil); err != nil {
		return err
	}
	scratch1 := time.Since(t0)
	t0 = time.Now()
	if _, err := bridge.Build(safeCfg, nil); err != nil {
		return err
	}
	scratch2 := time.Since(t0)

	// With reuse: the second build hits the model cache.
	cache := blocks.NewCache()
	t0 = time.Now()
	if _, err := bridge.Build(unsafeCfg, cache); err != nil {
		return err
	}
	first := time.Since(t0)
	t0 = time.Now()
	if _, err := bridge.Build(safeCfg, cache); err != nil {
		return err
	}
	reused := time.Since(t0)
	hits, misses := cache.Stats()

	fmt.Printf("%-44s %12s\n", "initial model construction (cold)", first.Round(time.Microsecond))
	fmt.Printf("%-44s %12s\n", "re-construction after port swap (cached)", reused.Round(time.Microsecond))
	fmt.Printf("%-44s %12s\n", "re-construction without reuse (scratch)", scratch2.Round(time.Microsecond))
	fmt.Printf("cache: %d hit(s), %d miss(es); scratch baseline first build %s\n",
		hits, misses, scratch1.Round(time.Microsecond))
	if reused > 0 {
		fmt.Printf("speedup from reuse: %.1fx\n", float64(scratch2)/float64(reused))
	}
	return nil
}

// ablationExperiment compares the paper-literal block models (every
// protocol step its own interleaving point) against the optimized ones on
// the same producer/consumer system.
func ablationExperiment(quick, metrics bool) error {
	const comp = `
byte done;
proctype Done() { done = 1 }
`
	reg := newRegistry(metrics)
	build := func(library string, msgs int) (*checker.Result, error) {
		b, err := blocks.NewBuilderWithLibrary(library, comp, nil)
		if err != nil {
			return nil, err
		}
		spec := blocks.ConnectorSpec{
			Send: blocks.AsynBlockingSend, Channel: blocks.SingleSlot, Recv: blocks.BlockingRecv,
		}
		conn, err := b.NewConnector("pipe", spec)
		if err != nil {
			return nil, err
		}
		snd, err := conn.AddSender("p")
		if err != nil {
			return nil, err
		}
		rcv, err := conn.AddReceiver("c")
		if err != nil {
			return nil, err
		}
		if _, err := b.Spawn("PnPSender", model.Chan(snd.Sig), model.Chan(snd.Dat), model.Int(int64(msgs)), model.Int(0)); err != nil {
			return nil, err
		}
		if _, err := b.Spawn("PnPReceiver", model.Chan(rcv.Sig), model.Chan(rcv.Dat), model.Int(int64(msgs))); err != nil {
			return nil, err
		}
		return checker.New(b.System(), checker.Options{Metrics: reg}).CheckSafety(), nil
	}

	msgs := 3
	if quick {
		msgs = 2
	}
	fmt.Printf("%-28s %10s %12s %12s %10s\n", "library", "states", "transitions", "states/s", "time")
	for _, lib := range []struct {
		name string
		src  string
	}{
		{"paper-literal (Figs. 5-11)", blocks.LibrarySourcePlain},
		{"optimized (Sec. 6)", blocks.LibrarySource},
	} {
		res, err := build(lib.src, msgs)
		if err != nil {
			return err
		}
		fmt.Printf("%-28s %10d %12d %12s %10s\n",
			lib.name, res.Stats.StatesStored, res.Stats.Transitions,
			rate(res.Stats.StatesStored, res.Stats.Elapsed),
			res.Stats.Elapsed.Round(time.Millisecond))
	}
	dumpMetrics(reg)
	return nil
}
