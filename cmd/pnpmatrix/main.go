// Command pnpmatrix sweeps the connector design space (experiment E12):
// every send-port kind x channel kind x receive-port kind is composed into
// a producer/consumer system and verified. For each cell it reports
// whether the system can deadlock, whether messages can be lost (the
// consumer's completion state is unreachable), and the state count —
// demonstrating the paper's claim that the small block library spans a
// wide range of observable interaction semantics.
//
// The under-lossy column re-verifies each cell under the standard fault
// plan — the same composition with its channel swapped for a lossy
// buffer that may drop or duplicate messages in transit. No plain
// composition survives it (delivery degrades to may-lose-messages),
// which is what motivates protocol blocks like internal/abp.
//
// pnpmatrix is a preset of the sweep engine: it expands sweep.Matrix and
// renders the result as the E12 table. cmd/pnpsweep runs the same preset
// against a remote verification service.
//
// Usage: pnpmatrix [-msgs N] [-bufsize N] [-workers N] [-metrics]
//
//	[-trace-out FILE]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"pnp/internal/checker"
	"pnp/internal/obs"
	"pnp/internal/obs/tracing"
	"pnp/internal/sweep"
)

func main() {
	msgs := flag.Int("msgs", 3, "messages the producer sends")
	bufsize := flag.Int("bufsize", 1, "size of sized channels")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "parallel search workers per cell (0 = sequential engines)")
	metrics := flag.Bool("metrics", false, "collect checker metrics across the sweep and print the table")
	traceOut := flag.String("trace-out", "", "write a Chrome trace_event JSON file of the sweep's spans")
	flag.Parse()
	if err := run(*msgs, *bufsize, *workers, *metrics, *traceOut); err != nil {
		fmt.Fprintf(os.Stderr, "pnpmatrix: %v\n", err)
		os.Exit(1)
	}
}

func run(msgs, bufsize, workers int, metrics bool, traceOut string) error {
	var reg *obs.Registry
	if metrics {
		reg = obs.NewRegistry()
	}
	var rec *tracing.Recorder
	if traceOut != "" {
		rec = tracing.NewRecorder(tracing.DefaultRecorderCapacity)
	}
	fmt.Printf("producer sends %d message(s); sized channels hold %d\n\n", msgs, bufsize)
	fmt.Printf("%-52s %-22s %-18s %8s %10s %10s\n", "connector", "verdict", "under-lossy", "states", "states/s", "time")

	res, err := sweep.Run(context.Background(), sweep.Matrix(msgs, bufsize), sweep.Config{
		SearchBudget: workers,
		Options:      checker.Options{Workers: workers},
		Registry:     reg,
		Tracer:       rec,
	})
	if err != nil {
		return err
	}
	if rec != nil {
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		werr := tracing.WriteChromeTrace(f, rec.Spans())
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return werr
		}
		fmt.Fprintf(os.Stderr, "trace written to %s\n", traceOut)
	}
	rows := sweep.MatrixRows(res)
	for _, row := range rows {
		if row.Cell.Err != "" {
			return fmt.Errorf("%s: %s", row.Cell.Connector, row.Cell.Err)
		}
		elapsed := time.Duration(row.Cell.ElapsedMS * float64(time.Millisecond))
		rate := "-"
		if elapsed > 0 {
			rate = fmt.Sprintf("%.3gk/s", float64(row.Cell.States)/elapsed.Seconds()/1e3)
		}
		fmt.Printf("%-52s %-22s %-18s %8d %10s %10s\n",
			row.Cell.Connector, row.Cell.Verdict, row.UnderLossy, row.Cell.States, rate,
			elapsed.Round(time.Millisecond))
	}

	counts := map[string]int{}
	faultSurvivors := 0
	for _, row := range rows {
		counts[row.Cell.Verdict]++
		if row.UnderLossy == "delivers-all" {
			faultSurvivors++
		}
	}
	fmt.Printf("\nsummary: %d compositions", len(rows))
	for _, v := range []string{"delivers-all", "may-lose-messages", "deadlock"} {
		if counts[v] > 0 {
			fmt.Printf(", %d %s", counts[v], v)
		}
	}
	fmt.Println()
	fmt.Printf("under lossy channels: %d of %d compositions still guarantee delivery\n", faultSurvivors, len(rows))
	if reg != nil {
		fmt.Println("-- checker metrics across the sweep --")
		reg.Dump(os.Stdout)
	}
	return nil
}
