// Command pnpmatrix sweeps the connector design space (experiment E12):
// every send-port kind x channel kind x receive-port kind is composed into
// a producer/consumer system and verified. For each cell it reports
// whether the system can deadlock, whether messages can be lost (the
// consumer's completion state is unreachable), and the state count —
// demonstrating the paper's claim that the small block library spans a
// wide range of observable interaction semantics.
//
// The under-lossy column re-verifies each cell under the standard fault
// plan — the same composition with its channel swapped for a lossy
// buffer that may drop or duplicate messages in transit. No plain
// composition survives it (delivery degrades to may-lose-messages),
// which is what motivates protocol blocks like internal/abp.
//
// Usage: pnpmatrix [-msgs N] [-bufsize N] [-workers N] [-metrics]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"pnp/internal/blocks"
	"pnp/internal/checker"
	"pnp/internal/model"
	"pnp/internal/obs"
)

// matrixComponents counts deliveries so message loss is observable.
const matrixComponents = `
byte got;
proctype Producer(chan esig; chan edat; byte n) {
	byte i;
	mtype st;
	do
	:: i < n ->
	   edat!i + 1,0,0,0,1;
	   esig?st,_;
	   i = i + 1
	:: else -> break
	od
}
proctype Consumer(chan rsig; chan rdat; byte n) {
	mtype st;
	byte d, sid, sd;
	bit sel, rem;
	do
	:: got < n ->
	   rdat!0,0,0,0,1;
	   rsig?st,_;
	   rdat?d,sid,sd,sel,rem;
	   if
	   :: st == RECV_SUCC -> got = got + 1
	   :: else
	   fi
	:: else -> break
	od
}
`

type cellResult struct {
	spec    blocks.ConnectorSpec
	verdict string
	states  int
	elapsed time.Duration
}

func main() {
	msgs := flag.Int("msgs", 3, "messages the producer sends")
	bufsize := flag.Int("bufsize", 1, "size of sized channels")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "parallel search workers per cell (0 = sequential engines)")
	metrics := flag.Bool("metrics", false, "collect checker metrics across the sweep and print the table")
	flag.Parse()
	if err := run(*msgs, *bufsize, *workers, *metrics); err != nil {
		fmt.Fprintf(os.Stderr, "pnpmatrix: %v\n", err)
		os.Exit(1)
	}
}

func run(msgs, bufsize, workers int, metrics bool) error {
	sends := []blocks.SendPortKind{
		blocks.AsynNonblockingSend, blocks.AsynBlockingSend, blocks.AsynCheckingSend,
		blocks.SynBlockingSend, blocks.SynCheckingSend,
	}
	channels := []blocks.ChannelKind{
		blocks.SingleSlot, blocks.FIFOQueue, blocks.PriorityQueue, blocks.DroppingBuffer,
		blocks.LossyBuffer,
	}
	recvs := []blocks.RecvPortKind{blocks.BlockingRecv, blocks.NonblockingRecv}

	cache := blocks.NewCache()
	var reg *obs.Registry
	if metrics {
		reg = obs.NewRegistry()
	}
	fmt.Printf("producer sends %d message(s); sized channels hold %d\n\n", msgs, bufsize)
	fmt.Printf("%-52s %-22s %-18s %8s %10s %10s\n", "connector", "verdict", "under-lossy", "states", "states/s", "time")

	var cells []cellResult
	faultSurvivors := 0
	for _, s := range sends {
		for _, ch := range channels {
			for _, r := range recvs {
				spec := blocks.ConnectorSpec{Send: s, Channel: ch, Size: bufsize, Recv: r}
				if ch == blocks.SingleSlot {
					spec.Size = 0
				}
				cell, err := evaluate(spec, msgs, workers, cache, reg)
				if err != nil {
					return err
				}
				// The fault column: the same composition with its channel
				// swapped for the lossy adversary (already lossy = itself).
				faultCell := cell
				if ch != blocks.LossyBuffer {
					fspec := spec
					fspec.Channel = blocks.LossyBuffer
					if fspec.Size == 0 {
						fspec.Size = bufsize
					}
					if faultCell, err = evaluate(fspec, msgs, workers, cache, reg); err != nil {
						return err
					}
				}
				if faultCell.verdict == "delivers-all" {
					faultSurvivors++
				}
				cells = append(cells, cell)
				rate := "-"
				if cell.elapsed > 0 {
					rate = fmt.Sprintf("%.3gk/s", float64(cell.states)/cell.elapsed.Seconds()/1e3)
				}
				fmt.Printf("%-52s %-22s %-18s %8d %10s %10s\n",
					cell.spec, cell.verdict, faultCell.verdict, cell.states, rate, cell.elapsed.Round(time.Millisecond))
			}
		}
	}

	counts := map[string]int{}
	for _, c := range cells {
		counts[c.verdict]++
	}
	fmt.Printf("\nsummary: %d compositions", len(cells))
	for _, v := range []string{"delivers-all", "may-lose-messages", "deadlock"} {
		if counts[v] > 0 {
			fmt.Printf(", %d %s", counts[v], v)
		}
	}
	fmt.Println()
	fmt.Printf("under lossy channels: %d of %d compositions still guarantee delivery\n", faultSurvivors, len(cells))
	if reg != nil {
		fmt.Println("-- checker metrics across the sweep --")
		reg.Dump(os.Stdout)
	}
	return nil
}

// evaluate composes and verifies one matrix cell.
func evaluate(spec blocks.ConnectorSpec, msgs, workers int, cache *blocks.Cache, reg *obs.Registry) (cellResult, error) {
	b, err := blocks.NewBuilder(matrixComponents, cache)
	if err != nil {
		return cellResult{}, err
	}
	conn, err := b.NewConnector("pipe", spec)
	if err != nil {
		return cellResult{}, err
	}
	snd, err := conn.AddSender("p")
	if err != nil {
		return cellResult{}, err
	}
	rcv, err := conn.AddReceiver("c")
	if err != nil {
		return cellResult{}, err
	}
	if _, err := b.Spawn("Producer", model.Chan(snd.Sig), model.Chan(snd.Dat), model.Int(int64(msgs))); err != nil {
		return cellResult{}, err
	}
	if _, err := b.Spawn("Consumer", model.Chan(rcv.Sig), model.Chan(rcv.Dat), model.Int(int64(msgs))); err != nil {
		return cellResult{}, err
	}

	t0 := time.Now()
	safety := checker.New(b.System(), checker.Options{Workers: workers, Metrics: reg}).CheckSafety()
	verdict := "delivers-all"
	switch {
	case !safety.OK && safety.Kind == checker.Deadlock:
		verdict = "deadlock"
	case !safety.OK:
		verdict = string(safety.Kind.String())
	default:
		// Delivery guarantee = AG EF (got == msgs): from every reachable
		// state, completing all deliveries must remain possible. A
		// composition that can irrecoverably drop a message fails this.
		target, err := b.Program().CompileGlobalExpr(fmt.Sprintf("got == %d", msgs))
		if err != nil {
			return cellResult{}, err
		}
		// AG-EF stays sequential (Workers is a no-op there), so the cell's
		// reachability half is unchanged by -workers.
		inev := checker.New(b.System(), checker.Options{Workers: workers, Metrics: reg}).CheckEventuallyReachable(target)
		if !inev.OK {
			verdict = "may-lose-messages"
		}
	}
	return cellResult{
		spec:    spec,
		verdict: verdict,
		states:  safety.Stats.StatesStored,
		elapsed: time.Since(t0),
	}, nil
}
