// Command pnpsweep drives design-space sweeps: it expands a base design
// and a set of block dimensions into a cell matrix and verifies every
// cell, either in-process or by submitting the sweep to a running
// verification service (pnpd) with -remote. Cells stream to the table
// as their verdicts arrive; identical cells run once.
//
//	pnpsweep -preset matrix -msgs 3 -bufsize 1
//	pnpsweep -adl design.adl -channels "fifo(1),fifo(4),single-slot"
//	pnpsweep -remote http://localhost:7447 -preset matrix
//
// Dimensions are ADL tokens: send kinds asyn-nonblocking, asyn-blocking,
// asyn-checking, syn-blocking, syn-checking; channels single-slot,
// fifo(N), priority(N), dropping(N), lossy(N); receive kinds blocking,
// nonblocking. -under-lossy adds each cell's lossy companion, the E12
// fault column.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"pnp/internal/adl"
	"pnp/internal/obs"
	"pnp/internal/obs/tracing"
	"pnp/internal/sweep"
	"pnp/internal/verifyd/client"
)

func main() {
	var (
		remote     = flag.String("remote", "", "verification service base URL (empty = run in-process)")
		adlPath    = flag.String("adl", "", "base design ADL file (custom sweeps)")
		connector  = flag.String("connector", "", "connector to vary (default: the design's only one)")
		sends      = flag.String("sends", "", "comma-separated send-port kinds")
		channels   = flag.String("channels", "", "comma-separated channel kinds, e.g. fifo(2),single-slot")
		recvs      = flag.String("recvs", "", "comma-separated receive-port kinds")
		underLossy = flag.Bool("under-lossy", false, "add each cell's lossy-channel companion")
		lossySize  = flag.Int("lossy-size", 0, "companion buffer size when the primary channel is unsized")
		preset     = flag.String("preset", "", `built-in sweep ("matrix")`)
		msgs       = flag.Int("msgs", 3, "matrix preset: messages the producer sends")
		bufsize    = flag.Int("bufsize", 1, "matrix preset: size of sized channels")
		name       = flag.String("name", "", "sweep name (defaults to the preset or design name)")
		workers    = flag.Int("workers", 0, "search workers per cell (0 = server default)")
		maxStates  = flag.Int("max-states", 0, "state limit per property (0 = unlimited)")
		timeout    = flag.Duration("timeout", 0, "per-cell verification timeout (0 = server default)")
		ranked     = flag.Int("ranked", 0, "after the table, print the N best cells")
		jsonOut    = flag.Bool("json", false, "emit the full result as JSON instead of the table")
		traceOut   = flag.String("trace-out", "", "write a Chrome trace_event JSON file of the sweep's spans (view in chrome://tracing or Perfetto)")
	)
	flag.Parse()

	ws := client.SweepSpec{
		Name:       *name,
		Connector:  *connector,
		Sends:      splitList(*sends),
		Channels:   splitList(*channels),
		Recvs:      splitList(*recvs),
		UnderLossy: *underLossy,
		LossySize:  *lossySize,
		Preset:     *preset,
		Msgs:       *msgs,
		BufSize:    *bufsize,
		MaxStates:  *maxStates,
		Workers:    *workers,
		TimeoutMS:  int(*timeout / time.Millisecond),
	}
	if err := run(ws, *adlPath, *remote, *ranked, *jsonOut, *traceOut); err != nil {
		fmt.Fprintf(os.Stderr, "pnpsweep: %v\n", err)
		os.Exit(1)
	}
}

func run(ws client.SweepSpec, adlPath, remote string, ranked int, jsonOut bool, traceOut string) error {
	if ws.Preset == "" && adlPath == "" {
		return fmt.Errorf("need -preset or -adl (see -h)")
	}
	if adlPath != "" {
		if ws.Preset != "" {
			return fmt.Errorf("-preset and -adl are mutually exclusive")
		}
		base, comps, err := loadDesign(adlPath)
		if err != nil {
			return err
		}
		ws.Base = base
		ws.Components = comps
		if ws.Name == "" {
			ws.Name = strings.TrimSuffix(filepath.Base(adlPath), filepath.Ext(adlPath))
		}
	}

	var res *sweep.Result
	var err error
	if remote != "" {
		res, err = runRemote(ws, remote, traceOut)
	} else {
		res, err = runLocal(ws, traceOut)
	}
	if err != nil {
		return err
	}

	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(res)
	}
	fmt.Printf("\nsweep %q: %d cells, %d passed, %d failed, %d deduped, result cache %d hits / %d misses, %s\n",
		res.Name, res.Total, res.Passed, res.Failed, res.DedupHits, res.CacheHits, res.CacheMisses,
		time.Duration(res.ElapsedMS*float64(time.Millisecond)).Round(time.Millisecond))
	if ranked > 0 {
		cells := res.Ranked()
		if ranked < len(cells) {
			cells = cells[:ranked]
		}
		fmt.Printf("\nbest cells:\n")
		for i, c := range cells {
			fmt.Printf("%2d. %-52s %-22s %8d states\n", i+1, c.Connector, c.Verdict, c.States)
		}
	}
	return nil
}

// loadDesign reads the base ADL and inlines the component files it
// references, resolved relative to the design's directory — a remote
// service has no access to the local filesystem.
func loadDesign(path string) (string, map[string]string, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return "", nil, err
	}
	base := string(raw)
	refs, err := adl.ComponentRefs(base)
	if err != nil {
		return "", nil, err
	}
	comps := make(map[string]string, len(refs))
	dir := filepath.Dir(path)
	for _, ref := range refs {
		text, err := os.ReadFile(filepath.Join(dir, ref))
		if err != nil {
			return "", nil, fmt.Errorf("component %q: %w", ref, err)
		}
		comps[ref] = string(text)
	}
	return base, comps, nil
}

func printHeader() {
	fmt.Printf("%-52s %-22s %8s %7s %10s\n", "connector", "verdict", "states", "cached", "time")
}

func printRow(connector, verdict string, states int, deduped bool, cacheMisses int, err string, elapsedMS float64) {
	if err != "" {
		fmt.Printf("%-52s %-22s %s\n", connector, "error", err)
		return
	}
	cached := "-"
	if deduped {
		cached = "dedup"
	} else if cacheMisses == 0 {
		cached = "hit"
	}
	fmt.Printf("%-52s %-22s %8d %7s %10s\n", connector, verdict, states, cached,
		time.Duration(elapsedMS*float64(time.Millisecond)).Round(time.Millisecond))
}

func runLocal(ws client.SweepSpec, traceOut string) (*sweep.Result, error) {
	spec, err := toWireSpec(ws).Compile()
	if err != nil {
		return nil, err
	}
	var rec *tracing.Recorder
	if traceOut != "" {
		rec = tracing.NewRecorder(tracing.DefaultRecorderCapacity)
	}
	printHeader()
	res, err := sweep.Run(context.Background(), spec, sweep.Config{
		Registry: obs.NewRegistry(),
		Tracer:   rec,
		OnCell: func(c sweep.CellResult) {
			printRow(c.Connector, c.Verdict, c.States, c.Deduped, c.CacheMisses, c.Err, c.ElapsedMS)
		},
	})
	if err != nil {
		return nil, err
	}
	if rec != nil {
		if werr := writeChromeFile(traceOut, rec.Spans()); werr != nil {
			return nil, werr
		}
		fmt.Fprintf(os.Stderr, "trace written to %s\n", traceOut)
	}
	return res, nil
}

func runRemote(ws client.SweepSpec, base, traceOut string) (*sweep.Result, error) {
	c := client.New(base)
	ctx := context.Background()
	// With -trace-out the submission carries a traceparent, so the remote
	// sweep, its cells, and their jobs all join this locally-rooted trace.
	var rec *tracing.Recorder
	var rootSpan *tracing.Span
	if traceOut != "" {
		rec = tracing.NewRecorder(tracing.DefaultRecorderCapacity)
		ctx, rootSpan = rec.StartSpan(ctx, "pnpsweep", tracing.A("remote", base))
	}
	st, err := c.SubmitSweep(ctx, ws)
	if err != nil {
		return nil, err
	}
	fmt.Printf("sweep %s: %d cells on %s\n", st.ID, st.Total, base)
	printHeader()
	final, err := c.StreamSweep(ctx, st.ID, func(cell client.SweepCell) {
		printRow(cell.Connector, cell.Verdict, cell.States, cell.Deduped, cell.CacheMisses, cell.Err, cell.ElapsedMS)
	})
	if err != nil {
		return nil, err
	}
	if final.Err != "" {
		return nil, fmt.Errorf("sweep failed: %s", final.Err)
	}
	if final.Result == nil {
		return nil, fmt.Errorf("sweep %s finished without a result", st.ID)
	}
	if rec != nil {
		rootSpan.End()
		spans := rec.Spans()
		if remoteSpans, terr := c.SweepTrace(ctx, st.ID); terr == nil {
			spans = append(spans, remoteSpans...)
		} else {
			fmt.Fprintf(os.Stderr, "pnpsweep: fetching remote trace: %v (is pnpd running with --trace-entries > 0?)\n", terr)
		}
		if werr := writeChromeFile(traceOut, spans); werr != nil {
			return nil, werr
		}
		fmt.Fprintf(os.Stderr, "trace written to %s\n", traceOut)
	}
	return fromWire(final.Result), nil
}

// writeChromeFile writes spans to path as Chrome trace_event JSON.
func writeChromeFile(path string, spans []tracing.SpanData) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := tracing.WriteChromeTrace(f, spans)
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}

// toWireSpec converts the client's spec to the engine's wire form. The
// two structs are the same shape on purpose; the copy keeps the CLI
// compiling when either side grows a field.
func toWireSpec(ws client.SweepSpec) sweep.WireSpec {
	return sweep.WireSpec{
		Name: ws.Name, Base: ws.Base, Components: ws.Components, Connector: ws.Connector,
		Sends: ws.Sends, Channels: ws.Channels, Recvs: ws.Recvs, FaultPlans: ws.FaultPlans,
		UnderLossy: ws.UnderLossy, LossySize: ws.LossySize,
		MaxStates: ws.MaxStates, Workers: ws.Workers, TimeoutMS: ws.TimeoutMS,
		Preset: ws.Preset, Msgs: ws.Msgs, BufSize: ws.BufSize,
	}
}

// fromWire converts a remote sweep result into the engine's result type
// so ranking and JSON output are mode-independent.
func fromWire(r *client.SweepResult) *sweep.Result {
	out := &sweep.Result{
		Name: r.Name, Total: r.Total, Passed: r.Passed, Failed: r.Failed,
		DedupHits: r.DedupHits, CacheHits: r.CacheHits, CacheMisses: r.CacheMisses,
		ElapsedMS: r.ElapsedMS,
	}
	for _, c := range r.Cells {
		out.Cells = append(out.Cells, sweep.CellResult{
			Index: c.Index, Connector: c.Connector,
			Send: c.Send, Channel: c.Channel, Size: c.Size, Recv: c.Recv,
			Faults: c.Faults, Companion: c.Companion, Primary: c.Primary,
			Verdict: c.Verdict, OK: c.OK, States: c.States,
			CacheHits: c.CacheHits, CacheMisses: c.CacheMisses, Deduped: c.Deduped,
			Node: c.Node, ElapsedMS: c.ElapsedMS, Err: c.Err,
		})
	}
	return out
}

func splitList(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
