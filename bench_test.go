// Benchmarks regenerating every experiment of DESIGN.md's index. Each
// benchmark reports domain metrics (states, states/sec) beyond wall time,
// so the EXPERIMENTS.md tables can be reproduced with
//
//	go test -bench=. -benchmem .
//
// The row/series *shapes* mirror the paper's claims: the async-enter
// bridge fails fast, the sync-enter bridge verifies, model reuse is an
// order of magnitude cheaper than reconstruction, and the paper-literal
// block models explode relative to the optimized ones.
package pnp_test

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"pnp"
	"pnp/internal/blocks"
	"pnp/internal/bridge"
	"pnp/internal/checker"
	"pnp/internal/ltl"
	"pnp/internal/model"
	"pnp/internal/pml"
)

// reportStates attaches checker statistics to a benchmark.
func reportStates(b *testing.B, res *checker.Result) {
	b.Helper()
	b.ReportMetric(float64(res.Stats.StatesStored), "states")
	if res.Stats.Elapsed > 0 {
		b.ReportMetric(float64(res.Stats.StatesStored)/res.Stats.Elapsed.Seconds(), "states/s")
	}
}

// BenchmarkE8BridgeViolation: time to find the Fig. 13 safety violation
// with asynchronous enter sends.
func BenchmarkE8BridgeViolation(b *testing.B) {
	cache := blocks.NewCache()
	var last *checker.Result
	for i := 0; i < b.N; i++ {
		res, err := bridge.Verify(bridge.Config{
			Variant: bridge.ExactlyN, EnterSend: blocks.AsynBlockingSend,
		}, cache, checker.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if res.OK {
			b.Fatal("expected violation")
		}
		last = res
	}
	reportStates(b, last)
}

// BenchmarkE9BridgeVerification: exhaustive verification of the fixed
// (synchronous enter) exactly-N bridge.
func BenchmarkE9BridgeVerification(b *testing.B) {
	cache := blocks.NewCache()
	var last *checker.Result
	for i := 0; i < b.N; i++ {
		res, err := bridge.Verify(bridge.Config{
			Variant: bridge.ExactlyN, EnterSend: blocks.SynBlockingSend,
		}, cache, checker.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if !res.OK {
			b.Fatal("expected verified")
		}
		last = res
	}
	reportStates(b, last)
}

// BenchmarkE10AtMostNBounded: bounded sweep of the Fig. 14 at-most-N
// design (the exhaustive 2.4M-state run lives in the bridge tests).
func BenchmarkE10AtMostNBounded(b *testing.B) {
	cache := blocks.NewCache()
	var last *checker.Result
	for i := 0; i < b.N; i++ {
		res, err := bridge.Verify(bridge.Config{
			Variant: bridge.AtMostN, EnterSend: blocks.SynBlockingSend,
		}, cache, checker.Options{MaxStates: 100000})
		if err != nil {
			b.Fatal(err)
		}
		if res.Kind == checker.InvariantViolation {
			b.Fatal("unexpected violation")
		}
		last = res
	}
	reportStates(b, last)
}

// BenchmarkE11ModelConstruction quantifies the paper's reuse claim: the
// cost of building the system model from scratch versus reusing the
// cached block and component models after a connector edit.
func BenchmarkE11ModelConstruction(b *testing.B) {
	cfg := bridge.Config{Variant: bridge.ExactlyN, EnterSend: blocks.SynBlockingSend}
	b.Run("Scratch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := bridge.Build(cfg, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Reused", func(b *testing.B) {
		cache := blocks.NewCache()
		if _, err := bridge.Build(cfg, cache); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := bridge.Build(cfg, cache); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// matrixBuild composes one E12 producer/consumer cell.
func matrixBuild(spec blocks.ConnectorSpec, msgs int, cache *blocks.Cache) (*blocks.Builder, error) {
	const comps = `
byte got;
proctype Producer(chan esig; chan edat; byte n) {
	byte i;
	mtype st;
	do
	:: i < n -> edat!i + 1,0,0,0,1; esig?st,_; i = i + 1
	:: else -> break
	od
}
proctype Consumer(chan rsig; chan rdat; byte n) {
	mtype st;
	byte d, sid, sd;
	bit sel, rem;
	do
	:: got < n ->
	   rdat!0,0,0,0,1; rsig?st,_; rdat?d,sid,sd,sel,rem;
	   if
	   :: st == RECV_SUCC -> got = got + 1
	   :: else
	   fi
	:: else -> break
	od
}`
	bld, err := blocks.NewBuilder(comps, cache)
	if err != nil {
		return nil, err
	}
	conn, err := bld.NewConnector("pipe", spec)
	if err != nil {
		return nil, err
	}
	snd, err := conn.AddSender("p")
	if err != nil {
		return nil, err
	}
	rcv, err := conn.AddReceiver("c")
	if err != nil {
		return nil, err
	}
	if _, err := bld.Spawn("Producer", model.Chan(snd.Sig), model.Chan(snd.Dat), model.Int(int64(msgs))); err != nil {
		return nil, err
	}
	if _, err := bld.Spawn("Consumer", model.Chan(rcv.Sig), model.Chan(rcv.Dat), model.Int(int64(msgs))); err != nil {
		return nil, err
	}
	return bld, nil
}

// BenchmarkE12MatrixCell verifies representative semantics-matrix cells.
func BenchmarkE12MatrixCell(b *testing.B) {
	cells := []blocks.ConnectorSpec{
		{Send: blocks.SynBlockingSend, Channel: blocks.SingleSlot, Recv: blocks.BlockingRecv},
		{Send: blocks.AsynBlockingSend, Channel: blocks.FIFOQueue, Size: 2, Recv: blocks.BlockingRecv},
		{Send: blocks.AsynNonblockingSend, Channel: blocks.DroppingBuffer, Size: 1, Recv: blocks.NonblockingRecv},
	}
	for _, spec := range cells {
		spec := spec
		b.Run(spec.String(), func(b *testing.B) {
			cache := blocks.NewCache()
			var last *checker.Result
			for i := 0; i < b.N; i++ {
				bld, err := matrixBuild(spec, 2, cache)
				if err != nil {
					b.Fatal(err)
				}
				last = checker.New(bld.System(), checker.Options{}).CheckSafety()
			}
			reportStates(b, last)
		})
	}
}

// BenchmarkE13Ablation compares the paper-literal block models against
// the optimized ones (the paper's Section 6 state-explosion discussion).
func BenchmarkE13Ablation(b *testing.B) {
	run := func(b *testing.B, library string) {
		cache := blocks.NewCache()
		var last *checker.Result
		for i := 0; i < b.N; i++ {
			bld, err := blocks.NewBuilderWithLibrary(library, `
byte got;
proctype Producer(chan esig; chan edat; byte n) {
	byte i;
	mtype st;
	do
	:: i < n -> edat!i + 1,0,0,0,1; esig?st,_; i = i + 1
	:: else -> break
	od
}
proctype Consumer(chan rsig; chan rdat; byte n) {
	mtype st;
	byte d, sid, sd;
	bit sel, rem;
	do
	:: got < n ->
	   rdat!0,0,0,0,1; rsig?st,_; rdat?d,sid,sd,sel,rem;
	   if
	   :: st == RECV_SUCC -> got = got + 1
	   :: else
	   fi
	:: else -> break
	od
}`, cache)
			if err != nil {
				b.Fatal(err)
			}
			conn, err := bld.NewConnector("pipe", blocks.ConnectorSpec{
				Send: blocks.AsynBlockingSend, Channel: blocks.SingleSlot, Recv: blocks.BlockingRecv,
			})
			if err != nil {
				b.Fatal(err)
			}
			snd, _ := conn.AddSender("p")
			rcv, _ := conn.AddReceiver("c")
			if _, err := bld.Spawn("Producer", model.Chan(snd.Sig), model.Chan(snd.Dat), model.Int(3)); err != nil {
				b.Fatal(err)
			}
			if _, err := bld.Spawn("Consumer", model.Chan(rcv.Sig), model.Chan(rcv.Dat), model.Int(3)); err != nil {
				b.Fatal(err)
			}
			last = checker.New(bld.System(), checker.Options{}).CheckSafety()
		}
		reportStates(b, last)
	}
	b.Run("PaperLiteral", func(b *testing.B) { run(b, blocks.LibrarySourcePlain) })
	b.Run("Optimized", func(b *testing.B) { run(b, blocks.LibrarySource) })
}

// BenchmarkPORAblation: the E9 bridge verification with and without
// partial-order reduction (the paper's Section 6 optimization request).
func BenchmarkPORAblation(b *testing.B) {
	for _, por := range []bool{false, true} {
		por := por
		name := "Full"
		if por {
			name = "PartialOrder"
		}
		b.Run(name, func(b *testing.B) {
			cache := blocks.NewCache()
			var last *checker.Result
			for i := 0; i < b.N; i++ {
				res, err := bridge.Verify(bridge.Config{
					Variant: bridge.ExactlyN, EnterSend: blocks.SynBlockingSend,
				}, cache, checker.Options{PartialOrder: por})
				if err != nil {
					b.Fatal(err)
				}
				if !res.OK {
					b.Fatal("expected verified")
				}
				last = res
			}
			reportStates(b, last)
		})
	}
}

// BenchmarkE15Scaling sweeps the per-turn quota N of the verified bridge.
func BenchmarkE15Scaling(b *testing.B) {
	for _, n := range []int{1, 2} {
		n := n
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			cache := blocks.NewCache()
			var last *checker.Result
			for i := 0; i < b.N; i++ {
				res, err := bridge.Verify(bridge.Config{
					Variant: bridge.ExactlyN, EnterSend: blocks.SynBlockingSend, N: n,
				}, cache, checker.Options{})
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			reportStates(b, last)
		})
	}
}

// BenchmarkE8ObservabilityOverhead re-runs the E8 search with the
// observability hooks disabled (the default: nil registry, no progress
// callback) and enabled. Disabled must track BenchmarkE8BridgeViolation
// within noise — the hot path pays only nil checks — while Enabled
// shows the true cost of live metrics collection.
func BenchmarkE8ObservabilityOverhead(b *testing.B) {
	run := func(b *testing.B, opts checker.Options) {
		cache := blocks.NewCache()
		var last *checker.Result
		for i := 0; i < b.N; i++ {
			res, err := bridge.Verify(bridge.Config{
				Variant: bridge.ExactlyN, EnterSend: blocks.AsynBlockingSend,
			}, cache, opts)
			if err != nil {
				b.Fatal(err)
			}
			if res.OK {
				b.Fatal("expected violation")
			}
			last = res
		}
		reportStates(b, last)
	}
	b.Run("Disabled", func(b *testing.B) { run(b, checker.Options{}) })
	b.Run("Enabled", func(b *testing.B) {
		run(b, checker.Options{
			Metrics:          pnp.NewMetricsRegistry(),
			ProgressInterval: 100 * time.Millisecond,
			Progress:         func(pnp.CheckProgress) {},
		})
	})
}

// BenchmarkRuntimeThroughput measures messages/second through executable
// connectors of different compositions.
func BenchmarkRuntimeThroughput(b *testing.B) {
	specs := []pnp.ConnectorSpec{
		{Send: pnp.SynBlockingSend, Channel: pnp.SingleSlot, Recv: pnp.BlockingRecv},
		{Send: pnp.AsynBlockingSend, Channel: pnp.SingleSlot, Recv: pnp.BlockingRecv},
		{Send: pnp.AsynBlockingSend, Channel: pnp.FIFOQueue, Size: 64, Recv: pnp.BlockingRecv},
		{Send: pnp.AsynBlockingSend, Channel: pnp.PriorityQueue, Size: 64, Recv: pnp.BlockingRecv},
	}
	for _, spec := range specs {
		spec := spec
		b.Run(spec.String(), func(b *testing.B) {
			conn, err := pnp.NewConnector("bench", spec)
			if err != nil {
				b.Fatal(err)
			}
			snd, err := conn.NewSender()
			if err != nil {
				b.Fatal(err)
			}
			rcv, err := conn.NewReceiver()
			if err != nil {
				b.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			if err := conn.Start(ctx); err != nil {
				b.Fatal(err)
			}
			defer conn.Stop()
			done := make(chan struct{})
			go func() {
				defer close(done)
				for i := 0; i < b.N; i++ {
					if _, err := snd.Send(ctx, pnp.Message{Data: i}); err != nil {
						return
					}
				}
			}()
			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				if _, _, err := rcv.Receive(ctx, pnp.RecvRequest{}); err != nil {
					b.Fatal(err)
				}
			}
			elapsed := time.Since(start)
			<-done
			if elapsed > 0 {
				b.ReportMetric(float64(b.N)/elapsed.Seconds(), "msgs/s")
			}
		})
	}
}

// BenchmarkFaultMiddleware measures what the fault-injection middleware
// costs a connector that isn't using it. NoPlan is the baseline;
// EmptyPlan attaches a plan with no matching rules (the injector
// collapses to nil, so the hot path pays one nil check); ZeroRateRule
// attaches a matching rule that never fires, paying the full per-message
// decision roll without altering delivery.
func BenchmarkFaultMiddleware(b *testing.B) {
	plans := []struct {
		name string
		plan *pnp.FaultPlan
	}{
		{"NoPlan", nil},
		{"EmptyPlan", &pnp.FaultPlan{Seed: 1}},
		{"ZeroRateRule", &pnp.FaultPlan{Seed: 1, Rules: []pnp.FaultRule{
			{Kind: pnp.FaultDrop, Target: "bench", Rate: 0},
		}}},
	}
	spec := pnp.ConnectorSpec{Send: pnp.AsynBlockingSend, Channel: pnp.FIFOQueue, Size: 64, Recv: pnp.BlockingRecv}
	for _, p := range plans {
		p := p
		b.Run(p.name, func(b *testing.B) {
			var opts []pnp.ConnectorOption
			if p.plan != nil {
				opts = append(opts, pnp.WithFaults(p.plan))
			}
			conn, err := pnp.NewConnector("bench", spec, opts...)
			if err != nil {
				b.Fatal(err)
			}
			snd, err := conn.NewSender()
			if err != nil {
				b.Fatal(err)
			}
			rcv, err := conn.NewReceiver()
			if err != nil {
				b.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			if err := conn.Start(ctx); err != nil {
				b.Fatal(err)
			}
			defer conn.Stop()
			done := make(chan struct{})
			go func() {
				defer close(done)
				for i := 0; i < b.N; i++ {
					if _, err := snd.Send(ctx, pnp.Message{Data: i}); err != nil {
						return
					}
				}
			}()
			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				if _, _, err := rcv.Receive(ctx, pnp.RecvRequest{}); err != nil {
					b.Fatal(err)
				}
			}
			elapsed := time.Since(start)
			<-done
			if elapsed > 0 {
				b.ReportMetric(float64(b.N)/elapsed.Seconds(), "msgs/s")
			}
		})
	}
}

// BenchmarkLTLTranslation: GPVW tableau construction for representative
// formulas.
func BenchmarkLTLTranslation(b *testing.B) {
	formulas := []string{
		"[] (p -> <> q)",
		"[] <> p && [] <> q",
		"(p U q) U r",
		"<> [] (p || X q)",
	}
	for _, src := range formulas {
		src := src
		b.Run(src, func(b *testing.B) {
			f, err := ltl.Parse(src)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				if _, err := ltl.Translate(ltl.Not(f)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCheckerStateRate: raw exploration speed on Peterson's mutual
// exclusion protocol (no connector machinery, pure checker).
func BenchmarkCheckerStateRate(b *testing.B) {
	const src = `
bool flag0, flag1;
byte turn, incrit;
active proctype P0() {
	do
	:: flag0 = 1; turn = 1;
	   (flag1 == 0 || turn == 0);
	   incrit = incrit + 1; assert(incrit == 1); incrit = incrit - 1;
	   flag0 = 0
	od
}
active proctype P1() {
	do
	:: flag1 = 1; turn = 0;
	   (flag0 == 0 || turn == 1);
	   incrit = incrit + 1; assert(incrit == 1); incrit = incrit - 1;
	   flag1 = 0
	od
}`
	prog, err := pml.CompileSource(src)
	if err != nil {
		b.Fatal(err)
	}
	var last *checker.Result
	for i := 0; i < b.N; i++ {
		sys := model.New(prog)
		if err := sys.SpawnActive(); err != nil {
			b.Fatal(err)
		}
		last = checker.New(sys, checker.Options{IgnoreDeadlock: true}).CheckSafety()
		if !last.OK {
			b.Fatal("Peterson violated?!")
		}
	}
	reportStates(b, last)
}

// BenchmarkPmlCompile: front-end cost of compiling the full block library.
func BenchmarkPmlCompile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := pml.CompileSource(blocks.LibrarySource); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStateKey: the state-encoding hot path of the explorer.
func BenchmarkStateKey(b *testing.B) {
	bld, err := matrixBuild(blocks.ConnectorSpec{
		Send: blocks.AsynBlockingSend, Channel: blocks.FIFOQueue, Size: 4, Recv: blocks.BlockingRecv,
	}, 3, nil)
	if err != nil {
		b.Fatal(err)
	}
	st := bld.System().InitialState()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = st.Key()
	}
}

// BenchmarkVerifydCache measures the verification service's
// content-addressed result cache. Miss is the full first-contact cost of
// a submission (compose the model, hash it, run every property); Hit
// re-submits the byte-identical design to a warm server and is answered
// from the cache without running the checker. The Hit/Miss gap is the
// E11 reuse claim promoted to the service layer.
func BenchmarkVerifydCache(b *testing.B) {
	src, err := os.ReadFile("examples/adl/pingpong.pnp")
	if err != nil {
		b.Fatal(err)
	}
	comp, err := os.ReadFile("examples/adl/pingpong.pml")
	if err != nil {
		b.Fatal(err)
	}
	comps := map[string]string{"pingpong.pml": string(comp)}
	submit := func(b *testing.B, s *pnp.VerifyServer) *pnp.VerifyJob {
		b.Helper()
		job, err := s.Submit(string(src), comps, pnp.CheckOptions{}, 0)
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Wait(context.Background(), job); err != nil {
			b.Fatal(err)
		}
		if job.Report == nil || !job.Report.OK {
			b.Fatal("pingpong must verify")
		}
		return job
	}

	b.Run("Miss", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := pnp.NewVerifyServer(pnp.VerifyServerConfig{Workers: 1})
			job := submit(b, s)
			if job.CacheHits != 0 {
				b.Fatal("cold server cannot serve from cache")
			}
			if err := s.Shutdown(context.Background()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Hit", func(b *testing.B) {
		s := pnp.NewVerifyServer(pnp.VerifyServerConfig{Workers: 1})
		defer s.Shutdown(context.Background())
		submit(b, s) // warm the cache
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			job := submit(b, s)
			if job.CacheMisses != 0 {
				b.Fatal("warm re-submission must not run the checker")
			}
		}
	})
}

// BenchmarkParallelSafety: the PR4 multi-core safety search on the E9
// bridge model at increasing worker counts. The Workers1 row is the
// parallel engine pinned to one goroutine (its scheduling overhead
// floor); the GOMAXPROCS row is the headline speedup. On a single-core
// host every row degenerates to the same schedule, so speedups only
// manifest with 2+ cores.
// BenchmarkShardedVisitedBridge measures visited-set storage cost on
// the E9 workload (exhaustive verification of the fixed exactly-N
// bridge): bytes/state for the exact tier versus collapse compression,
// and the throughput cost of running under a spill-forcing 1-byte
// memory budget. The verdict and StatesStored are identical across all
// three — storage is a memory knob, never a semantic one.
func BenchmarkShardedVisitedBridge(b *testing.B) {
	modes := []struct {
		name string
		opts checker.Options
	}{
		{"Exact", checker.Options{Workers: runtime.GOMAXPROCS(0), Visited: checker.VisitedExact}},
		{"Collapse", checker.Options{Workers: runtime.GOMAXPROCS(0), Visited: checker.VisitedCollapse}},
		{"CollapseSpill", checker.Options{Workers: runtime.GOMAXPROCS(0), Visited: checker.VisitedCollapse, MemLimit: 1}},
	}
	for _, m := range modes {
		m := m
		b.Run(m.name, func(b *testing.B) {
			if m.opts.MemLimit > 0 {
				m.opts.SpillDir = b.TempDir()
			}
			cache := blocks.NewCache()
			var last *checker.Result
			for i := 0; i < b.N; i++ {
				res, err := bridge.Verify(bridge.Config{
					Variant: bridge.ExactlyN, EnterSend: blocks.SynBlockingSend,
				}, cache, m.opts)
				if err != nil {
					b.Fatal(err)
				}
				if !res.OK {
					b.Fatal("expected verified")
				}
				last = res
			}
			reportStates(b, last)
			if last.Stats.StatesStored > 0 {
				b.ReportMetric(float64(last.Stats.VisitedBytes)/float64(last.Stats.StatesStored), "bytes/state")
			}
			if m.opts.MemLimit > 0 {
				b.ReportMetric(float64(last.Stats.SpilledStates), "spilled")
			}
		})
	}
}

func BenchmarkParallelSafety(b *testing.B) {
	counts := []int{1, 2, 4, runtime.GOMAXPROCS(0)}
	seen := map[int]bool{}
	for _, w := range counts {
		if seen[w] {
			continue
		}
		seen[w] = true
		w := w
		b.Run(fmt.Sprintf("Workers%d", w), func(b *testing.B) {
			cache := blocks.NewCache()
			var last *checker.Result
			for i := 0; i < b.N; i++ {
				res, err := bridge.Verify(bridge.Config{
					Variant: bridge.ExactlyN, EnterSend: blocks.SynBlockingSend,
				}, cache, checker.Options{Workers: w})
				if err != nil {
					b.Fatal(err)
				}
				if !res.OK {
					b.Fatal("expected verified")
				}
				last = res
			}
			reportStates(b, last)
		})
	}
}
