package pnprt

import (
	"fmt"

	"pnp/internal/obs"
	"pnp/internal/trace"
)

// WithMetrics instruments the connector's blocks against the registry.
// Every port and channel block gets its own counters (sends, receives,
// parked requests, drops, full-buffer rejections), the channel gets a
// queue-depth gauge, and every delivery is timed from buffer admission
// to receipt into a latency histogram.
//
// All instruments are nil-safe no-ops when this option is absent, so
// the uninstrumented hot path pays only nil checks.
func WithMetrics(reg *obs.Registry) Option {
	return func(c *Connector) { c.metrics = reg }
}

// portLabel names one port block instance, e.g. "send0" or "recv2".
func portLabel(kind string, id int) string {
	return fmt.Sprintf("%s%d", kind, id)
}

// instrumentSendPort attaches the per-block counters of one send port.
func (c *Connector) instrumentSendPort(p *sendPort) {
	if c.metrics == nil {
		return
	}
	lbl := portLabel("send", p.id)
	p.mSends = c.metrics.Counter(obs.Labels("pnprt_port_sends_total", "connector", c.name, "port", lbl))
	p.mFails = c.metrics.Counter(obs.Labels("pnprt_port_send_fails_total", "connector", c.name, "port", lbl))
}

// instrumentRecvPort attaches the per-block counters of one receive port.
func (c *Connector) instrumentRecvPort(p *recvPort) {
	if c.metrics == nil {
		return
	}
	lbl := portLabel("recv", p.id)
	p.mRecvs = c.metrics.Counter(obs.Labels("pnprt_port_receives_total", "connector", c.name, "port", lbl))
	p.mFails = c.metrics.Counter(obs.Labels("pnprt_port_recv_fails_total", "connector", c.name, "port", lbl))
}

// instrumentChan attaches the channel block's counters, queue-depth
// gauge, and admission-to-delivery latency histogram.
func (c *Connector) instrumentChan(p *chanProc) {
	if c.metrics == nil {
		return
	}
	kv := []string{"connector", c.name}
	p.mAccepted = c.metrics.Counter(obs.Labels("pnprt_channel_accepted_total", kv...))
	p.mRejected = c.metrics.Counter(obs.Labels("pnprt_channel_rejected_total", kv...))
	p.mDropped = c.metrics.Counter(obs.Labels("pnprt_channel_dropped_total", kv...))
	p.mDelivered = c.metrics.Counter(obs.Labels("pnprt_channel_delivered_total", kv...))
	p.mFailed = c.metrics.Counter(obs.Labels("pnprt_channel_recv_fails_total", kv...))
	p.mBlockedSends = c.metrics.Counter(obs.Labels("pnprt_channel_blocked_sends_total", kv...))
	p.mBlockedRecvs = c.metrics.Counter(obs.Labels("pnprt_channel_blocked_recvs_total", kv...))
	p.mDepth = c.metrics.Gauge(obs.Labels("pnprt_channel_queue_depth", kv...))
	p.mLatency = c.metrics.Histogram(obs.Labels("pnprt_channel_wait_seconds", kv...), obs.LatencyBuckets)
}

// MSCTap adapts a live trace window into a TraceFunc: every protocol
// event (IN_OK, SEND_SUCC, ...) becomes an MSC row with the emitting
// block as its lifeline, so a running system renders the same message
// sequence charts the checker produces for counterexamples.
//
//	live := trace.NewLive(0)
//	conn, _ := NewConnector("pipe", spec, WithTrace(MSCTap(live)))
//	...
//	fmt.Println(live.MSC(nil))
func MSCTap(live *trace.Live) TraceFunc {
	return func(e Event) { live.Append(tapEvent(e)) }
}

// tapEvent maps one runtime protocol event onto a trace event. Channel
// events that carry a message draw an arrow to the sending port's
// lifeline, mirroring the port<->channel signal flow of the models.
func tapEvent(e Event) trace.Event {
	te := trace.Event{Action: e.Signal}
	if e.Msg.Data != nil {
		te.Msg = fmt.Sprint(e.Msg.Data)
	}
	switch e.Source {
	case "send-port":
		te.Proc = fmt.Sprintf("%s.%s", e.Connector, portLabel("send", e.Port))
	case "recv-port":
		te.Proc = fmt.Sprintf("%s.%s", e.Connector, portLabel("recv", e.Port))
	default: // channel
		te.Proc = e.Connector + ".chan"
		if e.Port >= 0 {
			te.Partner = fmt.Sprintf("%s.%s", e.Connector, portLabel("send", e.Port))
		}
	}
	return te
}
