package pnprt

import (
	"context"
	"testing"

	"pnp/internal/blocks"
)

func TestSystemLifecycle(t *testing.T) {
	sys := NewSystem("app")
	spec := Spec{Send: blocks.AsynBlockingSend, Channel: blocks.FIFOQueue, Size: 4, Recv: blocks.BlockingRecv}
	front, err := sys.AddConnector("front", spec)
	if err != nil {
		t.Fatal(err)
	}
	back, err := sys.AddConnector("back", spec)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := NewPubSub("events", 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Add(ps); err != nil {
		t.Fatal(err)
	}

	fs, err := front.NewSender()
	if err != nil {
		t.Fatal(err)
	}
	fr, err := front.NewReceiver()
	if err != nil {
		t.Fatal(err)
	}
	bs, err := back.NewSender()
	if err != nil {
		t.Fatal(err)
	}
	br, err := back.NewReceiver()
	if err != nil {
		t.Fatal(err)
	}
	pub, err := ps.NewPublisher()
	if err != nil {
		t.Fatal(err)
	}
	sub, err := ps.NewSubscriber()
	if err != nil {
		t.Fatal(err)
	}

	if err := sys.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx := ctxShort(t)

	// A two-hop relay plus an event notification, all under one system.
	if _, err := fs.Send(ctx, Message{Data: "x"}); err != nil {
		t.Fatal(err)
	}
	_, m, err := fr.Receive(ctx, RecvRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bs.Send(ctx, m); err != nil {
		t.Fatal(err)
	}
	if _, m, err = br.Receive(ctx, RecvRequest{}); err != nil || m.Data != "x" {
		t.Fatalf("relay failed: %v %v", m, err)
	}
	if err := pub.Publish(ctx, Message{Data: "done"}); err != nil {
		t.Fatal(err)
	}
	if ev, err := sub.Next(ctx); err != nil || ev.Data != "done" {
		t.Fatalf("event failed: %v %v", ev, err)
	}

	sys.Stop()
	sys.Stop() // idempotent
	if _, err := fs.Send(context.Background(), Message{Data: "y"}); err != ErrStopped {
		t.Errorf("post-stop send error = %v, want ErrStopped", err)
	}
}

func TestSystemAddAfterStartRejected(t *testing.T) {
	sys := NewSystem("app")
	if err := sys.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Stop)
	if err := sys.Add(nil); err == nil {
		t.Error("Add after Start accepted")
	}
	if _, err := sys.AddConnector("late", Spec{
		Send: blocks.AsynBlockingSend, Channel: blocks.SingleSlot, Recv: blocks.BlockingRecv,
	}); err == nil {
		t.Error("AddConnector after Start accepted")
	}
	if err := sys.Start(context.Background()); err == nil {
		t.Error("double Start accepted")
	}
}
