package pnprt

import (
	"context"
	"sync/atomic"
	"time"

	"pnp/internal/blocks"
	"pnp/internal/faults"
	"pnp/internal/obs"
)

// Stats are cumulative counters of one connector's channel process. They
// are updated atomically and may be read at any time.
type Stats struct {
	// Accepted counts messages stored in the buffer (IN_OK with storage).
	Accepted int64
	// Rejected counts IN_FAIL replies (checking sends on a full buffer).
	Rejected int64
	// Dropped counts messages silently discarded by a dropping buffer.
	Dropped int64
	// Delivered counts successful deliveries to receive ports.
	Delivered int64
	// Failed counts OUT_FAIL replies (nonblocking receives on empty).
	Failed int64
}

// entry is one buffered message plus its delivery notification.
type entry struct {
	msg       Message
	delivered chan struct{}
	notified  bool
	// at is the admission time, stamped only when latency metrics are
	// enabled (zero otherwise).
	at time.Time
}

// chanProc is the channel (storage medium) process of a connector. All
// buffer state is confined to its goroutine; ports talk to it through the
// in and out channels.
type chanProc struct {
	conn *Connector
	kind blocks.ChannelKind
	size int
	in   chan inMsg
	out  chan outReq

	buf       []entry
	waitSends []inMsg
	waitRecvs []outReq

	// inj applies the connector's fault plan at message ingress; nil (a
	// no-op) unless WithFaults matched this connector. delayed holds
	// messages held in transit by Delay faults until the next channel
	// event releases them.
	inj     *faults.Injector
	delayed []entry

	accepted  atomic.Int64
	rejected  atomic.Int64
	dropped   atomic.Int64
	delivered atomic.Int64
	failed    atomic.Int64

	// Registry instruments; nil (no-op) unless WithMetrics was given.
	mAccepted, mRejected, mDropped *obs.Counter
	mDelivered, mFailed            *obs.Counter
	mBlockedSends, mBlockedRecvs   *obs.Counter
	mDepth                         *obs.Gauge
	mLatency                       *obs.Histogram
}

func newChanProc(c *Connector, spec Spec) *chanProc {
	size := spec.Size
	if spec.Channel == blocks.SingleSlot {
		size = 1
	}
	return &chanProc{
		conn: c,
		kind: spec.Channel,
		size: size,
		in:   make(chan inMsg),
		out:  make(chan outReq),
	}
}

func (p *chanProc) run(ctx context.Context) {
	for {
		select {
		case m := <-p.in:
			p.handleIn(m)
		case r := <-p.out:
			p.handleOut(r)
		case <-ctx.Done():
			return
		}
	}
}

func (p *chanProc) emit(signal string, port int, m Message) {
	p.conn.emit(Event{Source: "channel", Port: port, Signal: signal, Msg: m})
}

func (p *chanProc) handleIn(m inMsg) {
	d, faulted := p.inj.OnMessage()
	if faulted {
		switch d.Kind {
		case faults.Drop:
			// In-transit loss: the medium confirms IN_OK and the message
			// vanishes — invisible to the sender, exactly like the lossy
			// channel model's skip branch. (A SynBlocking sender tracking
			// delivery will wait forever; fault plans pair with
			// asynchronous sends, as ABP does.)
			p.dropped.Add(1)
			p.mDropped.Inc()
			p.emit("IN_OK", m.msg.Sender, m.msg)
			p.emit("FAULT_DROP", m.msg.Sender, m.msg)
			m.reply <- inOK
			p.flushDelayed()
			return
		case faults.Delay:
			// Held in transit: confirmed IN_OK now, admitted to the buffer
			// at the next channel event, so later sends can overtake it.
			p.emit("IN_OK", m.msg.Sender, m.msg)
			p.emit("FAULT_DELAY", m.msg.Sender, m.msg)
			m.reply <- inOK
			e := entry{msg: m.msg, delivered: m.delivered}
			if p.mLatency != nil {
				e.at = time.Now()
			}
			p.delayed = append(p.delayed, e)
			if len(p.waitRecvs) > 0 {
				// A parked receiver would starve if no further event ever
				// arrived; release immediately rather than deadlock.
				p.flushDelayed()
			}
			return
		case faults.Stall:
			// The channel process itself freezes: nothing is served while
			// the stall lasts, backpressuring every attached port.
			p.emit("FAULT_STALL", m.msg.Sender, m.msg)
			dur := d.Delay
			if dur <= 0 {
				dur = faults.DefaultStall
			}
			time.Sleep(dur)
		}
	}
	stored := p.admit(m)
	if faulted && d.Kind == faults.Duplicate && stored && len(p.buf) < p.size {
		// Duplicated in transit: a second copy enters the buffer right
		// behind the original (needs a spare slot, as in the model). The
		// copy shares no delivery notification — the sender only ever
		// tracked one message.
		p.emit("FAULT_DUP", m.msg.Sender, m.msg)
		p.insertEntry(entry{msg: m.msg})
		p.rebalance()
	}
	p.flushDelayed()
}

// admit runs the channel kind's normal admission protocol and reports
// whether the message entered the buffer.
func (p *chanProc) admit(m inMsg) bool {
	switch {
	case len(p.buf) < p.size:
		p.insert(m)
		p.accepted.Add(1)
		p.mAccepted.Inc()
		p.emit("IN_OK", m.msg.Sender, m.msg)
		m.reply <- inOK
		p.rebalance()
		return true
	case p.kind == blocks.DroppingBuffer:
		// Accept and silently discard, confirming IN_OK — the paper's
		// drop-when-full buffer. A tracked delivery never happens.
		p.dropped.Add(1)
		p.mDropped.Inc()
		p.emit("IN_OK", m.msg.Sender, m.msg)
		p.emit("DROPPED", m.msg.Sender, m.msg)
		m.reply <- inOK
	case m.wait:
		p.mBlockedSends.Inc()
		p.waitSends = append(p.waitSends, m)
	default:
		p.rejected.Add(1)
		p.mRejected.Inc()
		p.emit("IN_FAIL", m.msg.Sender, m.msg)
		m.reply <- inFail
	}
	return false
}

// flushDelayed admits as many delayed messages as fit the buffer, in
// their original order.
func (p *chanProc) flushDelayed() {
	for len(p.delayed) > 0 && len(p.buf) < p.size {
		e := p.delayed[0]
		p.delayed = p.delayed[1:]
		p.insertEntry(e)
		p.accepted.Add(1)
		p.mAccepted.Inc()
		p.emit("FAULT_RELEASE", e.msg.Sender, e.msg)
		p.rebalance()
	}
}

// insert stores the message respecting the channel kind's order.
func (p *chanProc) insert(m inMsg) {
	e := entry{msg: m.msg, delivered: m.delivered}
	if p.mLatency != nil {
		e.at = time.Now()
	}
	p.insertEntry(e)
}

// insertEntry places a prepared entry into the buffer.
func (p *chanProc) insertEntry(e entry) {
	p.mDepth.Set(int64(len(p.buf) + 1)) // depth once this insert lands
	if p.kind == blocks.PriorityQueue {
		pos := len(p.buf)
		for i := range p.buf {
			if e.msg.Tag < p.buf[i].msg.Tag {
				pos = i
				break
			}
		}
		p.buf = append(p.buf, entry{})
		copy(p.buf[pos+1:], p.buf[pos:])
		p.buf[pos] = e
		return
	}
	p.buf = append(p.buf, e)
}

// findMatch locates the first message satisfying the request.
func (p *chanProc) findMatch(req RecvRequest) int {
	for i := range p.buf {
		if !req.Selective || p.buf[i].msg.Tag == req.Tag {
			return i
		}
	}
	return -1
}

func (p *chanProc) handleOut(r outReq) {
	i := p.findMatch(r.req)
	if i < 0 && len(p.delayed) > 0 {
		// Nothing matches but messages are held in transit: their delay
		// ends now instead of starving the receiver.
		p.flushDelayed()
		i = p.findMatch(r.req)
	}
	if i < 0 {
		if r.wait {
			p.mBlockedRecvs.Inc()
			p.waitRecvs = append(p.waitRecvs, r)
			return
		}
		p.failed.Add(1)
		p.mFailed.Inc()
		p.emit("OUT_FAIL", -1, Message{})
		r.reply <- recvReply{status: RecvFail}
		return
	}
	p.deliver(i, r)
	p.rebalance()
}

func (p *chanProc) deliver(i int, r outReq) {
	e := &p.buf[i]
	p.delivered.Add(1)
	p.mDelivered.Inc()
	if p.mLatency != nil && !e.at.IsZero() {
		p.mLatency.Observe(time.Since(e.at).Seconds())
	}
	p.emit("OUT_OK", e.msg.Sender, e.msg)
	r.reply <- recvReply{status: RecvSucc, msg: e.msg}
	if e.delivered != nil && !e.notified {
		close(e.delivered)
		e.notified = true
	}
	p.emit("RECV_OK", e.msg.Sender, e.msg)
	if !r.req.Copy {
		p.buf = append(p.buf[:i], p.buf[i+1:]...)
		p.mDepth.Set(int64(len(p.buf)))
	}
}

// rebalance serves parked receivers and admits parked senders until no
// further progress is possible. Each iteration consumes a parked request
// or fills a buffer slot, so it terminates.
func (p *chanProc) rebalance() {
	for {
		progress := false
		for i := 0; i < len(p.waitRecvs); i++ {
			r := p.waitRecvs[i]
			j := p.findMatch(r.req)
			if j < 0 {
				continue
			}
			p.waitRecvs = append(p.waitRecvs[:i], p.waitRecvs[i+1:]...)
			p.deliver(j, r)
			progress = true
			break
		}
		if len(p.waitSends) > 0 && len(p.buf) < p.size {
			m := p.waitSends[0]
			p.waitSends = p.waitSends[1:]
			p.insert(m)
			p.accepted.Add(1)
			p.mAccepted.Inc()
			p.emit("IN_OK", m.msg.Sender, m.msg)
			m.reply <- inOK
			progress = true
		}
		if !progress {
			return
		}
	}
}
