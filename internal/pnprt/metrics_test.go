package pnprt

import (
	"strings"
	"testing"

	"pnp/internal/blocks"
	"pnp/internal/obs"
	"pnp/internal/trace"
)

func TestConnectorMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	spec := Spec{Send: blocks.AsynBlockingSend, Channel: blocks.FIFOQueue, Size: 4, Recv: blocks.BlockingRecv}
	_, snd, rcv := startConnector(t, spec, 1, 1, WithMetrics(reg))
	ctx := ctxShort(t)

	const n = 5
	for i := 0; i < n; i++ {
		if st, err := snd[0].Send(ctx, Message{Data: i}); err != nil || st != SendSucc {
			t.Fatalf("Send %d = %v, %v", i, st, err)
		}
		if st, _, err := rcv[0].Receive(ctx, RecvRequest{}); err != nil || st != RecvSucc {
			t.Fatalf("Receive %d = %v, %v", i, st, err)
		}
	}

	get := func(name string) int64 {
		t.Helper()
		return reg.Counter(name).Value()
	}
	sends := get(obs.Labels("pnprt_port_sends_total", "connector", "test", "port", "send0"))
	recvs := get(obs.Labels("pnprt_port_receives_total", "connector", "test", "port", "recv0"))
	accepted := get(obs.Labels("pnprt_channel_accepted_total", "connector", "test"))
	delivered := get(obs.Labels("pnprt_channel_delivered_total", "connector", "test"))
	if sends != n || recvs != n || accepted != n || delivered != n {
		t.Fatalf("sends=%d recvs=%d accepted=%d delivered=%d, want all %d",
			sends, recvs, accepted, delivered, n)
	}
	if depth := reg.Gauge(obs.Labels("pnprt_channel_queue_depth", "connector", "test")).Value(); depth != 0 {
		t.Fatalf("queue depth after drain = %d, want 0", depth)
	}
	// Every delivery was timed from admission to receipt.
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `pnprt_channel_wait_seconds_count{connector="test"} 5`
	if !strings.Contains(b.String(), want) {
		t.Fatalf("exposition missing %q:\n%s", want, b.String())
	}
}

func TestConnectorMetricsRejectedSend(t *testing.T) {
	reg := obs.NewRegistry()
	spec := Spec{Send: blocks.AsynCheckingSend, Channel: blocks.FIFOQueue, Size: 1, Recv: blocks.NonblockingRecv}
	_, snd, rcv := startConnector(t, spec, 1, 1, WithMetrics(reg))
	ctx := ctxShort(t)

	if st, _ := snd[0].Send(ctx, Message{Data: "a"}); st != SendSucc {
		t.Fatalf("first send = %v, want SEND_SUCC", st)
	}
	if st, _ := snd[0].Send(ctx, Message{Data: "b"}); st != SendFail {
		t.Fatalf("second send = %v, want SEND_FAIL", st)
	}
	// Drain, then a nonblocking receive on empty fails.
	if st, _, _ := rcv[0].Receive(ctx, RecvRequest{}); st != RecvSucc {
		t.Fatalf("drain receive = %v", st)
	}
	if st, _, _ := rcv[0].Receive(ctx, RecvRequest{}); st != RecvFail {
		t.Fatalf("empty receive = %v, want RECV_FAIL", st)
	}

	checks := []struct {
		name string
		want int64
	}{
		{obs.Labels("pnprt_port_send_fails_total", "connector", "test", "port", "send0"), 1},
		{obs.Labels("pnprt_channel_rejected_total", "connector", "test"), 1},
		{obs.Labels("pnprt_port_recv_fails_total", "connector", "test", "port", "recv0"), 1},
		{obs.Labels("pnprt_channel_recv_fails_total", "connector", "test"), 1},
	}
	for _, c := range checks {
		if got := reg.Counter(c.name).Value(); got != c.want {
			t.Errorf("%s = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestConnectorMetricsDropped(t *testing.T) {
	reg := obs.NewRegistry()
	spec := Spec{Send: blocks.AsynBlockingSend, Channel: blocks.DroppingBuffer, Size: 1, Recv: blocks.BlockingRecv}
	_, snd, _ := startConnector(t, spec, 1, 1, WithMetrics(reg))
	ctx := ctxShort(t)

	for i := 0; i < 3; i++ {
		if st, err := snd[0].Send(ctx, Message{Data: i}); err != nil || st != SendSucc {
			t.Fatalf("Send %d = %v, %v", i, st, err)
		}
	}
	if got := reg.Counter(obs.Labels("pnprt_channel_dropped_total", "connector", "test")).Value(); got != 2 {
		t.Fatalf("dropped = %d, want 2", got)
	}
}

func TestMSCTapLive(t *testing.T) {
	live := trace.NewLive(64)
	spec := Spec{Send: blocks.AsynBlockingSend, Channel: blocks.SingleSlot, Recv: blocks.BlockingRecv}
	_, snd, rcv := startConnector(t, spec, 1, 1, WithTrace(MSCTap(live)))
	ctx := ctxShort(t)

	if st, err := snd[0].Send(ctx, Message{Data: "ping"}); err != nil || st != SendSucc {
		t.Fatalf("Send = %v, %v", st, err)
	}
	if st, _, err := rcv[0].Receive(ctx, RecvRequest{}); err != nil || st != RecvSucc {
		t.Fatalf("Receive = %v, %v", st, err)
	}

	if live.Len() == 0 {
		t.Fatal("live window recorded no events")
	}
	msc := live.MSC(nil)
	for _, want := range []string{"test.send0", "test.chan", "test.recv0", "IN_OK", "SEND_SUCC", "RECV_SUCC", "ping"} {
		if !strings.Contains(msc, want) {
			t.Errorf("MSC missing %q:\n%s", want, msc)
		}
	}
	// Channel events carrying a message arrow back to the send port.
	var sawArrow bool
	for _, e := range live.Events() {
		if e.Proc == "test.chan" && e.Partner == "test.send0" {
			sawArrow = true
		}
	}
	if !sawArrow {
		t.Error("no channel event drew an arrow to the send port lifeline")
	}
}
