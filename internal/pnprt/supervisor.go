package pnprt

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"pnp/internal/faults"
	"pnp/internal/obs"
)

// SupervisedFunc is one run of a supervised component. It should return
// when ctx is cancelled; a nil return is a clean exit (no restart), a
// non-nil return or a panic is a failure the restart policy decides on.
type SupervisedFunc func(ctx context.Context) error

// RestartMode selects what the supervisor does when a run fails.
type RestartMode int

// Restart modes.
const (
	// RestartNever runs the component once; any failure is final.
	RestartNever RestartMode = iota
	// RestartImmediate restarts a failed run without delay.
	RestartImmediate
	// RestartBackoff restarts with exponentially growing, jittered
	// delays capped at MaxBackoff. The jitter is drawn from the
	// deterministic faults.Uniform hash, so a seeded fault scenario
	// replays its exact restart schedule.
	RestartBackoff
)

// RestartPolicy bounds and paces a supervisor's restarts.
type RestartPolicy struct {
	Mode RestartMode
	// MaxRestarts caps total restarts (0 = unlimited).
	MaxRestarts int
	// Backoff is the first RestartBackoff delay (default 1ms).
	Backoff time.Duration
	// MaxBackoff caps the grown delay (default 100ms).
	MaxBackoff time.Duration
}

// Policy defaults.
const (
	DefaultBackoff    = time.Millisecond
	DefaultMaxBackoff = 100 * time.Millisecond
)

// ErrInjectedCrash is the failure recorded when a fault plan's Crash rule
// kills a supervised run.
var ErrInjectedCrash = errors.New("pnprt: injected crash")

// Supervisor runs one component function under a restart policy. It is a
// Part, so it joins a System's lifecycle next to connectors. Crash rules
// of a fault plan targeting the supervisor's name kill individual runs by
// cancelling their context, exercising the restart path deterministically.
type Supervisor struct {
	name   string
	fn     SupervisedFunc
	policy RestartPolicy
	plan   *faults.Plan
	reg    *obs.Registry

	mu       sync.Mutex
	started  bool
	restarts int64
	lastErr  error

	cancel   context.CancelFunc
	done     chan struct{}
	stopOnce sync.Once

	mRestarts *obs.Counter
}

// SupervisorOption configures a Supervisor.
type SupervisorOption func(*Supervisor)

// SupervisorMetrics exports pnprt_supervisor_restarts_total{component=...}
// to the registry.
func SupervisorMetrics(reg *obs.Registry) SupervisorOption {
	return func(s *Supervisor) { s.reg = reg }
}

// SupervisorFaults arms the supervisor with a fault plan; Crash rules
// matching the supervisor's name are applied per run attempt.
func SupervisorFaults(plan *faults.Plan) SupervisorOption {
	return func(s *Supervisor) { s.plan = plan }
}

// NewSupervisor builds a supervisor for fn under the given policy.
func NewSupervisor(name string, fn SupervisedFunc, policy RestartPolicy, opts ...SupervisorOption) *Supervisor {
	if policy.Backoff <= 0 {
		policy.Backoff = DefaultBackoff
	}
	if policy.MaxBackoff <= 0 {
		policy.MaxBackoff = DefaultMaxBackoff
	}
	s := &Supervisor{name: name, fn: fn, policy: policy, done: make(chan struct{})}
	for _, o := range opts {
		o(s)
	}
	if s.reg != nil {
		s.mRestarts = s.reg.Counter(obs.Labels("pnprt_supervisor_restarts_total", "component", name))
	}
	return s
}

// Name returns the supervised component's name.
func (s *Supervisor) Name() string { return s.name }

// Start launches the supervision loop.
func (s *Supervisor) Start(ctx context.Context) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return errors.New("pnprt: supervisor already started")
	}
	s.started = true
	ctx, cancel := context.WithCancel(ctx)
	s.cancel = cancel
	go s.loop(ctx, s.plan.Injector(s.name, s.reg))
	return nil
}

// Stop cancels the current run and waits for the loop to exit. It is
// idempotent and safe for concurrent callers.
func (s *Supervisor) Stop() {
	s.mu.Lock()
	started := s.started
	cancel := s.cancel
	s.mu.Unlock()
	if !started {
		return
	}
	s.stopOnce.Do(cancel)
	<-s.done
}

// Restarts returns how many times the component has been restarted.
func (s *Supervisor) Restarts() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.restarts
}

// Err returns the most recent run failure (nil after a clean exit).
func (s *Supervisor) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastErr
}

// Wait blocks until the supervision loop has ended (clean exit, policy
// giving up, or Stop).
func (s *Supervisor) Wait() { <-s.done }

func (s *Supervisor) loop(ctx context.Context, inj *faults.Injector) {
	defer close(s.done)
	for run := 0; ; run++ {
		if ctx.Err() != nil {
			return
		}
		err := s.runOnce(ctx, inj, run)
		if ctx.Err() != nil {
			return // shutting down; the run's error is not a failure
		}
		s.mu.Lock()
		s.lastErr = err
		s.mu.Unlock()
		if err == nil {
			return // clean exit
		}
		if s.policy.Mode == RestartNever {
			return
		}
		s.mu.Lock()
		if s.policy.MaxRestarts > 0 && s.restarts >= int64(s.policy.MaxRestarts) {
			s.mu.Unlock()
			return
		}
		s.restarts++
		n := s.restarts
		s.mu.Unlock()
		s.mRestarts.Inc()
		if s.policy.Mode == RestartBackoff {
			if !sleepCtx(ctx, s.backoff(n)) {
				return
			}
		}
	}
}

// runOnce executes one run attempt with panic recovery and, when the
// fault plan says so, an injected crash that cancels the run's context
// after the rule's Delay.
func (s *Supervisor) runOnce(ctx context.Context, inj *faults.Injector, run int) (err error) {
	runCtx := ctx
	crashed := false
	if d, ok := inj.OnRun(run); ok {
		crashed = true
		var cancel context.CancelFunc
		runCtx, cancel = context.WithCancel(ctx)
		if d.Delay > 0 {
			t := time.AfterFunc(d.Delay, cancel)
			defer t.Stop()
		} else {
			cancel()
		}
		defer cancel()
	}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("pnprt: supervised %s panicked: %v", s.name, r)
		}
		if err == nil && crashed && ctx.Err() == nil {
			// The component swallowed the injected cancellation; the crash
			// still counts as a failure so the restart path is exercised.
			err = ErrInjectedCrash
		}
	}()
	return s.fn(runCtx)
}

// backoff computes the nth restart delay: exponential growth from
// policy.Backoff, capped at MaxBackoff, with deterministic jitter in
// [50%, 100%] of the grown delay.
func (s *Supervisor) backoff(n int64) time.Duration {
	d := s.policy.Backoff
	for i := int64(1); i < n && d < s.policy.MaxBackoff; i++ {
		d *= 2
	}
	if d > s.policy.MaxBackoff {
		d = s.policy.MaxBackoff
	}
	var seed uint64
	if s.plan != nil {
		seed = s.plan.Seed
	}
	jitter := 0.5 + 0.5*faults.Uniform(seed, faults.Hash(s.name), uint64(n))
	return time.Duration(float64(d) * jitter)
}

// sleepCtx pauses for d, reporting false when ctx ended first.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// Supervise builds a supervisor and registers it with the system.
func (s *System) Supervise(name string, fn SupervisedFunc, policy RestartPolicy, opts ...SupervisorOption) (*Supervisor, error) {
	sup := NewSupervisor(name, fn, policy, opts...)
	if err := s.Add(sup); err != nil {
		return nil, err
	}
	return sup, nil
}
