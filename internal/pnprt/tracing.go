package pnprt

import (
	"context"
	"strconv"

	"pnp/internal/obs/tracing"
)

// WithSpans ties the connector to a flight recorder: Start opens a
// "connector:<name>" lifecycle span (parented from Start's context),
// and every protocol event — the same IN_OK/SEND_SUCC/... stream an
// MSCTap sees — lands on it as a span event, so a live run and a
// checker counterexample speak the same alphabet. The span closes with
// the final channel counters when the last goroutine exits.
//
// Span events are capped per span (the recorder notes the overflow in
// a dropped_events attribute); for full-fidelity protocol logs keep
// using WithTrace/MSCTap, which this option composes with.
func WithSpans(rec *tracing.Recorder) Option {
	return func(c *Connector) { c.tracer = rec }
}

// startSpan opens the lifecycle span at Start time; a nil tracer
// leaves the atomic pointer empty and every other hook a no-op.
func (c *Connector) startSpan(ctx context.Context) {
	if c.tracer == nil {
		return
	}
	_, span := c.tracer.StartSpan(ctx, "connector:"+c.name,
		tracing.A("spec", c.spec.String()),
		tracing.A("senders", strconv.Itoa(len(c.senders))),
		tracing.A("receivers", strconv.Itoa(len(c.receivers))))
	c.span.Store(span)
}

// endSpan stamps the final counters and closes the lifecycle span.
func (c *Connector) endSpan() {
	s := c.span.Load()
	if s == nil {
		return
	}
	st := c.Stats()
	s.SetAttr("accepted", strconv.FormatInt(st.Accepted, 10))
	s.SetAttr("rejected", strconv.FormatInt(st.Rejected, 10))
	s.SetAttr("dropped", strconv.FormatInt(st.Dropped, 10))
	s.SetAttr("delivered", strconv.FormatInt(st.Delivered, 10))
	s.SetAttr("failed", strconv.FormatInt(st.Failed, 10))
	s.End()
}

// spanEvent records one protocol event on the lifecycle span. Safe
// before Start (no span yet) and from any port or channel goroutine.
func (c *Connector) spanEvent(e Event) {
	s := c.span.Load()
	if s == nil {
		return
	}
	s.AddEvent(e.Signal,
		tracing.A("source", e.Source),
		tracing.A("port", strconv.Itoa(e.Port)))
}
