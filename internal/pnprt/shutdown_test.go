package pnprt

import (
	"context"
	"errors"
	"sync"
	"testing"

	"pnp/internal/blocks"
)

// TestConnectorStopConcurrent is the -race regression for idempotent
// shutdown: many goroutines race Stop while senders are mid-flight;
// every Stop call must return only after the connector is fully down,
// and endpoints must fail with ErrStopped afterwards.
func TestConnectorStopConcurrent(t *testing.T) {
	spec := Spec{Send: blocks.AsynBlockingSend, Channel: blocks.FIFOQueue, Size: 2, Recv: blocks.BlockingRecv}
	conn, err := NewConnector("wire", spec)
	if err != nil {
		t.Fatal(err)
	}
	snd, err := conn.NewSender()
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var senders sync.WaitGroup
	for i := 0; i < 4; i++ {
		senders.Add(1)
		go func() {
			defer senders.Done()
			for j := 0; ; j++ {
				if _, err := snd.Send(ctx, Message{Data: j}); err != nil {
					return // connector stopped underneath us
				}
			}
		}()
	}
	var stops sync.WaitGroup
	for i := 0; i < 8; i++ {
		stops.Add(1)
		go func() {
			defer stops.Done()
			conn.Stop()
		}()
	}
	stops.Wait()
	senders.Wait()
	conn.Stop() // again, sequentially
	if _, err := snd.Send(ctx, Message{Data: 0}); !errors.Is(err, ErrStopped) {
		t.Fatalf("Send after Stop = %v, want ErrStopped", err)
	}
}

func TestConnectorStopBeforeStartIsNoOp(t *testing.T) {
	spec := Spec{Send: blocks.AsynBlockingSend, Channel: blocks.SingleSlot, Recv: blocks.BlockingRecv}
	conn, err := NewConnector("wire", spec)
	if err != nil {
		t.Fatal(err)
	}
	conn.Stop()
	conn.Stop()
	// Still startable after premature Stops.
	if err := conn.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	conn.Stop()
}

func TestSystemStopConcurrent(t *testing.T) {
	sys := NewSystem("app")
	spec := Spec{Send: blocks.AsynBlockingSend, Channel: blocks.FIFOQueue, Size: 2, Recv: blocks.BlockingRecv}
	if _, err := sys.AddConnector("a", spec); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.AddConnector("b", spec); err != nil {
		t.Fatal(err)
	}
	sup, err := sys.Supervise("svc", func(ctx context.Context) error {
		<-ctx.Done()
		return ctx.Err()
	}, RestartPolicy{Mode: RestartImmediate})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sys.Stop()
		}()
	}
	wg.Wait()
	sys.Stop()
	// Every caller returned only after teardown finished, so the
	// supervised loop must already be done.
	select {
	case <-sup.done:
	default:
		t.Fatal("System.Stop returned before its parts finished stopping")
	}
}

func TestPubSubStopConcurrent(t *testing.T) {
	ps, err := NewPubSub("bus", 2)
	if err != nil {
		t.Fatal(err)
	}
	pub, err := ps.NewPublisher()
	if err != nil {
		t.Fatal(err)
	}
	if err := ps.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	go func() {
		for i := 0; ; i++ {
			if err := pub.Publish(ctx, Message{Data: i}); err != nil {
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ps.Stop()
		}()
	}
	wg.Wait()
	if err := pub.Publish(ctx, Message{}); !errors.Is(err, ErrStopped) {
		t.Fatalf("Publish after Stop = %v, want ErrStopped", err)
	}
}
