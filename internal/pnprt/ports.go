package pnprt

import (
	"context"

	"pnp/internal/blocks"
	"pnp/internal/obs"
)

// sendPort mediates between one sending component and the channel,
// implementing one of the five send-port semantics.
type sendPort struct {
	id    int
	kind  blocks.SendPortKind
	conn  *Connector
	calls chan sendCall

	// Registry instruments; nil (no-op) unless WithMetrics was given.
	mSends, mFails *obs.Counter
}

func (p *sendPort) emit(signal string, m Message) {
	p.conn.emit(Event{Source: "send-port", Port: p.id, Signal: signal, Msg: m})
}

func (p *sendPort) run(ctx context.Context) {
	for {
		select {
		case c := <-p.calls:
			p.serve(ctx, c)
		case <-ctx.Done():
			return
		}
	}
}

// forward hands the message to the channel process and returns its IN
// status; ok=false means the context was cancelled.
func (p *sendPort) forward(ctx context.Context, m inMsg) (inStatus, bool) {
	select {
	case p.conn.ch.in <- m:
	case <-ctx.Done():
		return 0, false
	}
	select {
	case st := <-m.reply:
		return st, true
	case <-ctx.Done():
		return 0, false
	}
}

func (p *sendPort) serve(ctx context.Context, c sendCall) {
	m := c.msg
	m.Sender = p.id
	p.mSends.Inc()
	switch p.kind {
	case blocks.AsynNonblockingSend:
		// Confirm first, then forward; a full non-dropping buffer loses
		// the message silently (the model ignores IN_FAIL the same way).
		p.emit("SEND_SUCC", m)
		c.reply <- SendSucc
		p.forward(ctx, inMsg{msg: m, reply: make(chan inStatus, 1)})
	case blocks.AsynBlockingSend:
		if _, ok := p.forward(ctx, inMsg{msg: m, wait: true, reply: make(chan inStatus, 1)}); !ok {
			return
		}
		p.emit("SEND_SUCC", m)
		c.reply <- SendSucc
	case blocks.AsynCheckingSend:
		st, ok := p.forward(ctx, inMsg{msg: m, reply: make(chan inStatus, 1)})
		if !ok {
			return
		}
		if st == inOK {
			p.emit("SEND_SUCC", m)
			c.reply <- SendSucc
		} else {
			p.mFails.Inc()
			p.emit("SEND_FAIL", m)
			c.reply <- SendFail
		}
	case blocks.SynBlockingSend:
		delivered := make(chan struct{})
		if _, ok := p.forward(ctx, inMsg{msg: m, wait: true, delivered: delivered, reply: make(chan inStatus, 1)}); !ok {
			return
		}
		select {
		case <-delivered:
		case <-ctx.Done():
			return
		}
		p.emit("SEND_SUCC", m)
		c.reply <- SendSucc
	case blocks.SynCheckingSend:
		delivered := make(chan struct{})
		st, ok := p.forward(ctx, inMsg{msg: m, delivered: delivered, reply: make(chan inStatus, 1)})
		if !ok {
			return
		}
		if st == inFail {
			p.mFails.Inc()
			p.emit("SEND_FAIL", m)
			c.reply <- SendFail
			return
		}
		select {
		case <-delivered:
		case <-ctx.Done():
			return
		}
		p.emit("SEND_SUCC", m)
		c.reply <- SendSucc
	}
}

// recvPort mediates between one receiving component and the channel.
type recvPort struct {
	id    int
	kind  blocks.RecvPortKind
	conn  *Connector
	calls chan recvCall

	// Registry instruments; nil (no-op) unless WithMetrics was given.
	mRecvs, mFails *obs.Counter
}

func (p *recvPort) emit(signal string, m Message) {
	p.conn.emit(Event{Source: "recv-port", Port: p.id, Signal: signal, Msg: m})
}

func (p *recvPort) run(ctx context.Context) {
	for {
		select {
		case c := <-p.calls:
			p.serve(ctx, c)
		case <-ctx.Done():
			return
		}
	}
}

func (p *recvPort) serve(ctx context.Context, c recvCall) {
	p.mRecvs.Inc()
	r := outReq{
		req:   c.req,
		wait:  p.kind == blocks.BlockingRecv,
		sub:   p.id,
		reply: make(chan recvReply, 1),
	}
	select {
	case p.conn.ch.out <- r:
	case <-ctx.Done():
		return
	}
	select {
	case rep := <-r.reply:
		if rep.status == RecvFail {
			p.mFails.Inc()
		}
		p.emit(rep.status.String(), rep.msg)
		c.reply <- rep
	case <-ctx.Done():
	}
}

// SenderEndpoint is the component-side handle implementing Sender.
type SenderEndpoint struct {
	port *sendPort
	conn *Connector
}

var _ Sender = (*SenderEndpoint)(nil)

// Send implements the paper's sending interface: hand the message to the
// port, then block until the SendStatus arrives.
func (e *SenderEndpoint) Send(ctx context.Context, m Message) (Status, error) {
	call := sendCall{msg: m, reply: make(chan Status, 1)}
	select {
	case e.port.calls <- call:
	case <-ctx.Done():
		return 0, ctx.Err()
	case <-e.conn.stopCh:
		return 0, ErrStopped
	}
	select {
	case st := <-call.reply:
		return st, nil
	case <-ctx.Done():
		return 0, ctx.Err()
	case <-e.conn.stopCh:
		return 0, ErrStopped
	}
}

// ReceiverEndpoint is the component-side handle implementing Receiver.
type ReceiverEndpoint struct {
	port *recvPort
	conn *Connector
}

var _ Receiver = (*ReceiverEndpoint)(nil)

// Receive implements the paper's receiving interface: issue the request,
// wait for the RecvStatus, and take the (possibly empty) message.
func (e *ReceiverEndpoint) Receive(ctx context.Context, req RecvRequest) (Status, Message, error) {
	call := recvCall{req: req, reply: make(chan recvReply, 1)}
	select {
	case e.port.calls <- call:
	case <-ctx.Done():
		return 0, Message{}, ctx.Err()
	case <-e.conn.stopCh:
		return 0, Message{}, ErrStopped
	}
	select {
	case rep := <-call.reply:
		return rep.status, rep.msg, nil
	case <-ctx.Done():
		return 0, Message{}, ctx.Err()
	case <-e.conn.stopCh:
		return 0, Message{}, ErrStopped
	}
}
