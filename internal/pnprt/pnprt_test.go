package pnprt

import (
	"context"
	"sync"
	"testing"
	"time"

	"pnp/internal/blocks"
)

func startConnector(t *testing.T, spec Spec, nSend, nRecv int, opts ...Option) (*Connector, []*SenderEndpoint, []*ReceiverEndpoint) {
	t.Helper()
	c, err := NewConnector("test", spec, opts...)
	if err != nil {
		t.Fatal(err)
	}
	senders := make([]*SenderEndpoint, nSend)
	for i := range senders {
		s, err := c.NewSender()
		if err != nil {
			t.Fatal(err)
		}
		senders[i] = s
	}
	receivers := make([]*ReceiverEndpoint, nRecv)
	for i := range receivers {
		r, err := c.NewReceiver()
		if err != nil {
			t.Fatal(err)
		}
		receivers[i] = r
	}
	if err := c.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	return c, senders, receivers
}

func ctxShort(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestBasicSendReceive(t *testing.T) {
	spec := Spec{Send: blocks.AsynBlockingSend, Channel: blocks.SingleSlot, Recv: blocks.BlockingRecv}
	_, snd, rcv := startConnector(t, spec, 1, 1)
	ctx := ctxShort(t)

	st, err := snd[0].Send(ctx, Message{Data: "hello"})
	if err != nil || st != SendSucc {
		t.Fatalf("Send = %v, %v", st, err)
	}
	st, m, err := rcv[0].Receive(ctx, RecvRequest{})
	if err != nil || st != RecvSucc {
		t.Fatalf("Receive = %v, %v", st, err)
	}
	if m.Data != "hello" {
		t.Errorf("Data = %v", m.Data)
	}
}

func TestFIFOOrderPreserved(t *testing.T) {
	spec := Spec{Send: blocks.AsynBlockingSend, Channel: blocks.FIFOQueue, Size: 8, Recv: blocks.BlockingRecv}
	_, snd, rcv := startConnector(t, spec, 1, 1)
	ctx := ctxShort(t)
	for i := 0; i < 8; i++ {
		if st, err := snd[0].Send(ctx, Message{Data: i}); err != nil || st != SendSucc {
			t.Fatalf("send %d: %v %v", i, st, err)
		}
	}
	for i := 0; i < 8; i++ {
		_, m, err := rcv[0].Receive(ctx, RecvRequest{})
		if err != nil {
			t.Fatal(err)
		}
		if m.Data != i {
			t.Errorf("message %d = %v, want %d", i, m.Data, i)
		}
	}
}

func TestSynBlockingSendWaitsForDelivery(t *testing.T) {
	spec := Spec{Send: blocks.SynBlockingSend, Channel: blocks.SingleSlot, Recv: blocks.BlockingRecv}
	_, snd, rcv := startConnector(t, spec, 1, 1)
	ctx := ctxShort(t)

	sent := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if st, err := snd[0].Send(ctx, Message{Data: 1}); err != nil || st != SendSucc {
			t.Errorf("Send = %v, %v", st, err)
		}
		close(sent)
	}()

	// The sync sender must not complete before the receiver takes the
	// message.
	select {
	case <-sent:
		t.Fatal("sync send completed before delivery")
	case <-time.After(50 * time.Millisecond):
	}
	if st, _, err := rcv[0].Receive(ctx, RecvRequest{}); err != nil || st != RecvSucc {
		t.Fatalf("Receive = %v, %v", st, err)
	}
	select {
	case <-sent:
	case <-time.After(2 * time.Second):
		t.Fatal("sync send did not complete after delivery")
	}
	wg.Wait()
}

func TestAsynBlockingSendCompletesWithoutReceiver(t *testing.T) {
	spec := Spec{Send: blocks.AsynBlockingSend, Channel: blocks.SingleSlot, Recv: blocks.BlockingRecv}
	_, snd, _ := startConnector(t, spec, 1, 1)
	ctx := ctxShort(t)
	// Async send completes once stored, with nobody receiving.
	if st, err := snd[0].Send(ctx, Message{Data: 1}); err != nil || st != SendSucc {
		t.Fatalf("Send = %v, %v", st, err)
	}
}

func TestAsynBlockingSendBlocksWhenFull(t *testing.T) {
	spec := Spec{Send: blocks.AsynBlockingSend, Channel: blocks.SingleSlot, Recv: blocks.BlockingRecv}
	_, snd, rcv := startConnector(t, spec, 1, 1)
	ctx := ctxShort(t)
	if _, err := snd[0].Send(ctx, Message{Data: 1}); err != nil {
		t.Fatal(err)
	}
	second := make(chan struct{})
	go func() {
		if st, err := snd[0].Send(ctx, Message{Data: 2}); err != nil || st != SendSucc {
			t.Errorf("second send = %v, %v", st, err)
		}
		close(second)
	}()
	select {
	case <-second:
		t.Fatal("send into full single-slot buffer did not block")
	case <-time.After(50 * time.Millisecond):
	}
	if _, _, err := rcv[0].Receive(ctx, RecvRequest{}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-second:
	case <-time.After(2 * time.Second):
		t.Fatal("parked send was not woken by the freed slot")
	}
}

func TestCheckingSendReportsFull(t *testing.T) {
	spec := Spec{Send: blocks.AsynCheckingSend, Channel: blocks.SingleSlot, Recv: blocks.BlockingRecv}
	_, snd, _ := startConnector(t, spec, 1, 1)
	ctx := ctxShort(t)
	if st, err := snd[0].Send(ctx, Message{Data: 1}); err != nil || st != SendSucc {
		t.Fatalf("first send = %v, %v", st, err)
	}
	st, err := snd[0].Send(ctx, Message{Data: 2})
	if err != nil || st != SendFail {
		t.Fatalf("second send = %v, %v; want SEND_FAIL", st, err)
	}
}

func TestNonblockingReceiveFailsWhenEmpty(t *testing.T) {
	spec := Spec{Send: blocks.AsynBlockingSend, Channel: blocks.SingleSlot, Recv: blocks.NonblockingRecv}
	_, snd, rcv := startConnector(t, spec, 1, 1)
	ctx := ctxShort(t)
	st, _, err := rcv[0].Receive(ctx, RecvRequest{})
	if err != nil || st != RecvFail {
		t.Fatalf("Receive on empty = %v, %v; want RECV_FAIL", st, err)
	}
	if _, err := snd[0].Send(ctx, Message{Data: 9}); err != nil {
		t.Fatal(err)
	}
	st, m, err := rcv[0].Receive(ctx, RecvRequest{})
	if err != nil || st != RecvSucc || m.Data != 9 {
		t.Fatalf("Receive = %v, %v, %v", st, m, err)
	}
}

func TestDroppingChannelDropsWhenFull(t *testing.T) {
	spec := Spec{Send: blocks.AsynBlockingSend, Channel: blocks.DroppingBuffer, Size: 1, Recv: blocks.BlockingRecv}
	_, snd, rcv := startConnector(t, spec, 1, 1)
	ctx := ctxShort(t)
	for i := 0; i < 3; i++ {
		if st, err := snd[0].Send(ctx, Message{Data: i}); err != nil || st != SendSucc {
			t.Fatalf("send %d = %v, %v", i, st, err)
		}
	}
	// Only the first message survived.
	_, m, err := rcv[0].Receive(ctx, RecvRequest{})
	if err != nil || m.Data != 0 {
		t.Fatalf("Receive = %v, %v", m, err)
	}
	// The dropped messages never arrive: a blocking receive parks until
	// its (short) deadline.
	shortCtx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if st, _, err := rcv[0].Receive(shortCtx, RecvRequest{}); err == nil {
		t.Errorf("dropped message was delivered with status %v", st)
	}
}

func TestDroppingReceiveIsNonblockingViaPortKind(t *testing.T) {
	spec := Spec{Send: blocks.AsynBlockingSend, Channel: blocks.DroppingBuffer, Size: 1, Recv: blocks.NonblockingRecv}
	_, _, rcv := startConnector(t, spec, 1, 1)
	st, _, err := rcv[0].Receive(ctxShort(t), RecvRequest{})
	if err != nil || st != RecvFail {
		t.Fatalf("empty dropping buffer receive = %v, %v", st, err)
	}
}

func TestPriorityChannelDeliversUrgentFirst(t *testing.T) {
	spec := Spec{Send: blocks.AsynBlockingSend, Channel: blocks.PriorityQueue, Size: 4, Recv: blocks.BlockingRecv}
	_, snd, rcv := startConnector(t, spec, 1, 1)
	ctx := ctxShort(t)
	for _, prio := range []int{3, 1, 2} {
		if _, err := snd[0].Send(ctx, Message{Data: prio, Tag: prio}); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range []int{1, 2, 3} {
		_, m, err := rcv[0].Receive(ctx, RecvRequest{})
		if err != nil {
			t.Fatal(err)
		}
		if m.Data != want {
			t.Errorf("delivery = %v, want %d", m.Data, want)
		}
	}
}

func TestSelectiveReceive(t *testing.T) {
	spec := Spec{Send: blocks.AsynBlockingSend, Channel: blocks.FIFOQueue, Size: 4, Recv: blocks.BlockingRecv}
	_, snd, rcv := startConnector(t, spec, 1, 1)
	ctx := ctxShort(t)
	if _, err := snd[0].Send(ctx, Message{Data: "a", Tag: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := snd[0].Send(ctx, Message{Data: "b", Tag: 2}); err != nil {
		t.Fatal(err)
	}
	_, m, err := rcv[0].Receive(ctx, RecvRequest{Selective: true, Tag: 2})
	if err != nil || m.Data != "b" {
		t.Fatalf("selective receive = %v, %v", m, err)
	}
	_, m, err = rcv[0].Receive(ctx, RecvRequest{})
	if err != nil || m.Data != "a" {
		t.Fatalf("remaining receive = %v, %v", m, err)
	}
}

func TestCopyReceiveLeavesMessage(t *testing.T) {
	spec := Spec{Send: blocks.AsynBlockingSend, Channel: blocks.SingleSlot, Recv: blocks.BlockingRecv}
	_, snd, rcv := startConnector(t, spec, 1, 1)
	ctx := ctxShort(t)
	if _, err := snd[0].Send(ctx, Message{Data: 7}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		_, m, err := rcv[0].Receive(ctx, RecvRequest{Copy: true})
		if err != nil || m.Data != 7 {
			t.Fatalf("copy receive %d = %v, %v", i, m, err)
		}
	}
	_, m, err := rcv[0].Receive(ctx, RecvRequest{})
	if err != nil || m.Data != 7 {
		t.Fatalf("remove receive = %v, %v", m, err)
	}
	// After the remove-receive the buffer is empty again.
	shortCtx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, _, err := rcv[0].Receive(shortCtx, RecvRequest{Copy: true}); err == nil {
		t.Error("buffer should be empty after the remove receive")
	}
}

func TestConnectorStats(t *testing.T) {
	spec := Spec{Send: blocks.AsynBlockingSend, Channel: blocks.DroppingBuffer, Size: 1, Recv: blocks.BlockingRecv}
	conn, snd, rcv := func() (*Connector, *SenderEndpoint, *ReceiverEndpoint) {
		c, s, r := startConnector(t, spec, 1, 1)
		return c, s[0], r[0]
	}()
	ctx := ctxShort(t)
	for i := 0; i < 3; i++ {
		if _, err := snd.Send(ctx, Message{Data: i}); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := rcv.Receive(ctx, RecvRequest{}); err != nil {
		t.Fatal(err)
	}
	st := conn.Stats()
	if st.Accepted != 1 || st.Dropped != 2 || st.Delivered != 1 {
		t.Errorf("stats = %+v; want 1 accepted, 2 dropped, 1 delivered", st)
	}
	// A checking send on the (now empty, then full) buffer adds counters.
	spec2 := Spec{Send: blocks.AsynCheckingSend, Channel: blocks.SingleSlot, Recv: blocks.NonblockingRecv}
	conn2, snd2, rcv2 := func() (*Connector, *SenderEndpoint, *ReceiverEndpoint) {
		c, s, r := startConnector(t, spec2, 1, 1)
		return c, s[0], r[0]
	}()
	if _, err := snd2.Send(ctx, Message{Data: 0}); err != nil {
		t.Fatal(err)
	}
	if st, err := snd2.Send(ctx, Message{Data: 1}); err != nil || st != SendFail {
		t.Fatalf("second send = %v %v", st, err)
	}
	if _, _, err := rcv2.Receive(ctx, RecvRequest{}); err != nil {
		t.Fatal(err)
	}
	if st, _, err := rcv2.Receive(ctx, RecvRequest{}); err != nil || st != RecvFail {
		t.Fatalf("empty receive = %v %v", st, err)
	}
	s2 := conn2.Stats()
	if s2.Rejected != 1 || s2.Failed != 1 {
		t.Errorf("stats = %+v; want 1 rejected, 1 failed", s2)
	}
}

func TestManySendersManyReceivers(t *testing.T) {
	const nSenders, nReceivers, perSender = 4, 4, 25
	spec := Spec{Send: blocks.AsynBlockingSend, Channel: blocks.FIFOQueue, Size: 8, Recv: blocks.BlockingRecv}
	_, snd, rcv := startConnector(t, spec, nSenders, nReceivers)
	ctx := ctxShort(t)

	var wg sync.WaitGroup
	for i, s := range snd {
		i, s := i, s
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perSender; j++ {
				if _, err := s.Send(ctx, Message{Data: i*1000 + j}); err != nil {
					t.Errorf("sender %d: %v", i, err)
					return
				}
			}
		}()
	}
	got := make(chan int, nSenders*perSender)
	for _, r := range rcv {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case got <- 0:
				default:
					return
				}
				if _, _, err := r.Receive(ctx, RecvRequest{}); err != nil {
					t.Errorf("receive: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestStopUnblocksEndpoints(t *testing.T) {
	spec := Spec{Send: blocks.SynBlockingSend, Channel: blocks.SingleSlot, Recv: blocks.BlockingRecv}
	c, snd, rcv := startConnector(t, spec, 1, 1)
	errs := make(chan error, 2)
	go func() {
		_, err := snd[0].Send(context.Background(), Message{Data: 1})
		errs <- err
	}()
	go func() {
		_, _, err := rcv[0].Receive(context.Background(), RecvRequest{Selective: true, Tag: 99})
		errs <- err
	}()
	time.Sleep(20 * time.Millisecond)
	c.Stop()
	for i := 0; i < 2; i++ {
		select {
		case err := <-errs:
			if err == nil {
				// The send may legitimately succeed if delivery won the race;
				// only a hang is a failure.
				continue
			}
			if err != ErrStopped && err != context.Canceled {
				t.Errorf("unexpected error: %v", err)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("endpoint did not unblock on Stop")
		}
	}
}

func TestContextCancelUnblocksSend(t *testing.T) {
	spec := Spec{Send: blocks.SynBlockingSend, Channel: blocks.SingleSlot, Recv: blocks.BlockingRecv}
	_, snd, _ := startConnector(t, spec, 1, 1)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := snd[0].Send(ctx, Message{Data: 1})
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Error("expected context error")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Send did not honor context cancellation")
	}
}

func TestEndpointCreationAfterStartFails(t *testing.T) {
	spec := Spec{Send: blocks.AsynBlockingSend, Channel: blocks.SingleSlot, Recv: blocks.BlockingRecv}
	c, _, _ := startConnector(t, spec, 1, 1)
	if _, err := c.NewSender(); err == nil {
		t.Error("NewSender after Start accepted")
	}
	if _, err := c.NewReceiver(); err == nil {
		t.Error("NewReceiver after Start accepted")
	}
}

func TestInvalidSpecRejected(t *testing.T) {
	if _, err := NewConnector("x", Spec{}); err == nil {
		t.Error("zero spec accepted")
	}
	if _, err := NewConnector("x", Spec{
		Send: blocks.AsynBlockingSend, Channel: blocks.FIFOQueue, Size: 0, Recv: blocks.BlockingRecv,
	}); err == nil {
		t.Error("sized channel with size 0 accepted")
	}
}

func TestLargeBufferBeyondModelCeiling(t *testing.T) {
	// The runtime is not bound by the models' static capacity of 8.
	spec := Spec{Send: blocks.AsynBlockingSend, Channel: blocks.FIFOQueue, Size: 64, Recv: blocks.BlockingRecv}
	_, snd, rcv := startConnector(t, spec, 1, 1)
	ctx := ctxShort(t)
	for i := 0; i < 64; i++ {
		if st, err := snd[0].Send(ctx, Message{Data: i}); err != nil || st != SendSucc {
			t.Fatalf("send %d = %v %v", i, st, err)
		}
	}
	for i := 0; i < 64; i++ {
		_, m, err := rcv[0].Receive(ctx, RecvRequest{})
		if err != nil || m.Data != i {
			t.Fatalf("recv %d = %v %v", i, m, err)
		}
	}
}

// TestFig4RuntimeOrdering mirrors the model-level Figure 4 conformance on
// the runtime: a synchronous send's SEND_SUCC must come after the
// channel's RECV_OK for that message; an asynchronous send's SEND_SUCC
// must come after IN_OK but may precede RECV_OK.
func TestFig4RuntimeOrdering(t *testing.T) {
	run := func(kind blocks.SendPortKind) []string {
		var mu sync.Mutex
		var events []string
		spec := Spec{Send: kind, Channel: blocks.SingleSlot, Recv: blocks.BlockingRecv}
		_, snd, rcv := startConnector(t, spec, 1, 1, WithTrace(func(e Event) {
			mu.Lock()
			events = append(events, e.Signal)
			mu.Unlock()
		}))
		ctx := ctxShort(t)
		done := make(chan struct{})
		go func() {
			defer close(done)
			if _, err := snd[0].Send(ctx, Message{Data: 1}); err != nil {
				t.Errorf("send: %v", err)
			}
		}()
		if kind == blocks.AsynBlockingSend {
			// Async: the send completes with no receiver involved.
			<-done
		}
		if _, _, err := rcv[0].Receive(ctx, RecvRequest{}); err != nil {
			t.Errorf("receive: %v", err)
		}
		<-done
		mu.Lock()
		defer mu.Unlock()
		return append([]string(nil), events...)
	}

	indexOf := func(events []string, sig string) int {
		for i, e := range events {
			if e == sig {
				return i
			}
		}
		return -1
	}

	async := run(blocks.AsynBlockingSend)
	if i, j := indexOf(async, "SEND_SUCC"), indexOf(async, "RECV_OK"); i < 0 || j >= 0 && i > j {
		t.Errorf("async ordering: SEND_SUCC at %d, RECV_OK at %d in %v", i, j, async)
	}
	sync1 := run(blocks.SynBlockingSend)
	if i, j := indexOf(sync1, "SEND_SUCC"), indexOf(sync1, "RECV_OK"); i < 0 || j < 0 || i < j {
		t.Errorf("sync ordering violated: SEND_SUCC at %d, RECV_OK at %d in %v", i, j, sync1)
	}
}
