package pnprt

import (
	"pnp/internal/faults"
)

// WithFaults arms the connector with a deterministic fault plan (package
// faults): message-kind rules whose target matches the connector's name
// are applied as middleware at channel ingress. Injected faults surface
// as FAULT_* trace events on the channel lifeline and as
// faults_injected_total counters when WithMetrics is also given.
//
// The injector is derived at Start, so WithFaults and WithMetrics
// compose in either order. A nil plan (or one with no matching rule) is
// a no-op.
func WithFaults(plan *faults.Plan) Option {
	return func(c *Connector) { c.faults = plan }
}

// FaultsInjected reports how many faults the connector's plan has fired
// (0 without a plan).
func (c *Connector) FaultsInjected() int64 { return c.ch.inj.Injected() }
