package pnprt

import (
	"context"
	"strings"
	"testing"

	"pnp/internal/blocks"
	"pnp/internal/obs/tracing"
	"pnp/internal/trace"
)

// TestConnectorSpan: WithSpans records one lifecycle span per run
// whose events mirror the protocol stream the MSC tap sees, parented
// from the Start context.
func TestConnectorSpan(t *testing.T) {
	rec := tracing.NewRecorder(64)
	live := trace.NewLive(0)
	parent := tracing.NewRecorder(64)
	ctx, root := parent.StartSpan(context.Background(), "run")

	spec := Spec{Send: blocks.AsynBlockingSend, Channel: blocks.FIFOQueue, Size: 2, Recv: blocks.BlockingRecv}
	c, err := NewConnector("wire", spec, WithSpans(rec), WithTrace(MSCTap(live)))
	if err != nil {
		t.Fatal(err)
	}
	snd, err := c.NewSender()
	if err != nil {
		t.Fatal(err)
	}
	rcv, err := c.NewReceiver()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(ctx); err != nil {
		t.Fatal(err)
	}
	cctx := ctxShort(t)
	if st, err := snd.Send(cctx, Message{Data: "m"}); err != nil || st != SendSucc {
		t.Fatalf("Send = %v, %v", st, err)
	}
	if st, _, err := rcv.Receive(cctx, RecvRequest{}); err != nil || st != RecvSucc {
		t.Fatalf("Receive = %v, %v", st, err)
	}
	c.Stop()
	root.End()

	spans := rec.Spans()
	if len(spans) != 1 {
		t.Fatalf("spans = %d, want 1 lifecycle span", len(spans))
	}
	d := spans[0]
	if d.Name != "connector:wire" {
		t.Fatalf("span name = %q", d.Name)
	}
	if d.TraceID != root.TraceID().String() || d.Parent != root.SpanID().String() {
		t.Fatalf("span not parented to the Start context: %+v", d)
	}
	attrs := map[string]string{}
	for _, a := range d.Attrs {
		attrs[a.Key] = a.Value
	}
	if attrs["delivered"] != "1" || attrs["accepted"] != "1" {
		t.Fatalf("final counters missing: %v", attrs)
	}
	if !strings.Contains(attrs["spec"], "FifoChannel") {
		t.Fatalf("spec attr = %q", attrs["spec"])
	}
	var sigs []string
	for _, e := range d.Events {
		sigs = append(sigs, e.Name)
	}
	joined := strings.Join(sigs, " ")
	for _, want := range []string{"IN_OK", "SEND_SUCC", "RECV_OK"} {
		if !strings.Contains(joined, want) {
			t.Errorf("span events missing %s: %v", want, sigs)
		}
	}
	// The MSC tap saw the same protocol alphabet.
	msc := live.MSC(nil)
	if !strings.Contains(msc, "SEND_SUCC") {
		t.Errorf("MSC tap missing SEND_SUCC:\n%s", msc)
	}
}

// TestConnectorSpanDisabled: without WithSpans the connector records
// nothing and pays only nil checks.
func TestConnectorSpanDisabled(t *testing.T) {
	spec := Spec{Send: blocks.AsynBlockingSend, Channel: blocks.SingleSlot, Recv: blocks.BlockingRecv}
	c, snd, rcv := startConnector(t, spec, 1, 1)
	cctx := ctxShort(t)
	if st, err := snd[0].Send(cctx, Message{Data: "m"}); err != nil || st != SendSucc {
		t.Fatalf("Send = %v, %v", st, err)
	}
	if st, _, err := rcv[0].Receive(cctx, RecvRequest{}); err != nil || st != RecvSucc {
		t.Fatalf("Receive = %v, %v", st, err)
	}
	if s := c.span.Load(); s != nil {
		t.Fatal("untraced connector grew a span")
	}
}
