package pnprt

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// Part is anything with the connector lifecycle: plain connectors,
// pub/sub pools, and RPC bundles all qualify.
type Part interface {
	Start(ctx context.Context) error
	Stop()
}

var (
	_ Part = (*Connector)(nil)
	_ Part = (*PubSub)(nil)
	_ Part = (*RPC)(nil)
)

// System groups the executable connectors of one application under a
// single lifecycle: Start launches every part (rolling back on failure),
// Stop shuts them down in reverse order and waits for every goroutine.
type System struct {
	name string

	mu       sync.Mutex
	parts    []Part
	started  bool
	stopOnce sync.Once
}

// NewSystem creates an empty runtime system.
func NewSystem(name string) *System { return &System{name: name} }

// Name returns the system's name.
func (s *System) Name() string { return s.name }

// Add registers parts; must be called before Start.
func (s *System) Add(parts ...Part) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return errors.New("pnprt: Add after Start")
	}
	s.parts = append(s.parts, parts...)
	return nil
}

// AddConnector builds a connector from a spec, registers it, and returns
// it for endpoint creation.
func (s *System) AddConnector(name string, spec Spec, opts ...Option) (*Connector, error) {
	c, err := NewConnector(name, spec, opts...)
	if err != nil {
		return nil, err
	}
	if err := s.Add(c); err != nil {
		return nil, err
	}
	return c, nil
}

// Start launches every part. If any part fails to start, the already
// started ones are stopped and the error returned.
func (s *System) Start(ctx context.Context) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return errors.New("pnprt: system already started")
	}
	s.started = true
	for i, p := range s.parts {
		if err := p.Start(ctx); err != nil {
			for j := i - 1; j >= 0; j-- {
				s.parts[j].Stop()
			}
			return fmt.Errorf("pnprt: system %s: part %d: %w", s.name, i, err)
		}
	}
	return nil
}

// Stop shuts every part down in reverse registration order. It is
// idempotent and safe for concurrent callers: the teardown runs exactly
// once, and every caller (including latecomers) returns only after it
// has completed — sync.Once.Do blocks concurrent callers until the
// winning call finishes.
func (s *System) Stop() {
	s.mu.Lock()
	started := s.started
	parts := append([]Part(nil), s.parts...)
	s.mu.Unlock()
	if !started {
		return
	}
	s.stopOnce.Do(func() {
		for i := len(parts) - 1; i >= 0; i-- {
			parts[i].Stop()
		}
	})
}
