package pnprt

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestPubSubFanout(t *testing.T) {
	ps, err := NewPubSub("events", 4)
	if err != nil {
		t.Fatal(err)
	}
	pub, err := ps.NewPublisher()
	if err != nil {
		t.Fatal(err)
	}
	subA, err := ps.NewSubscriber()
	if err != nil {
		t.Fatal(err)
	}
	subB, err := ps.NewSubscriber()
	if err != nil {
		t.Fatal(err)
	}
	if err := ps.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ps.Stop)
	ctx := ctxShort(t)

	if err := pub.Publish(ctx, Message{Data: "boom", Tag: 1}); err != nil {
		t.Fatal(err)
	}
	for i, sub := range []*Subscriber{subA, subB} {
		m, err := sub.Next(ctx)
		if err != nil || m.Data != "boom" {
			t.Errorf("subscriber %d: %v, %v", i, m, err)
		}
	}
}

func TestPubSubSubscriptionFilter(t *testing.T) {
	ps, err := NewPubSub("events", 4)
	if err != nil {
		t.Fatal(err)
	}
	pub, _ := ps.NewPublisher()
	only2, err := ps.NewSubscriber(2)
	if err != nil {
		t.Fatal(err)
	}
	all, err := ps.NewSubscriber()
	if err != nil {
		t.Fatal(err)
	}
	if err := ps.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ps.Stop)
	ctx := ctxShort(t)

	for tag := 1; tag <= 3; tag++ {
		if err := pub.Publish(ctx, Message{Data: tag, Tag: tag}); err != nil {
			t.Fatal(err)
		}
	}
	m, err := only2.Next(ctx)
	if err != nil || m.Tag != 2 {
		t.Errorf("filtered subscriber got %v, %v", m, err)
	}
	if _, ok, err := only2.TryNext(ctx); err != nil || ok {
		t.Errorf("filtered subscriber has extra events (ok=%v, err=%v)", ok, err)
	}
	count := 0
	for {
		_, ok, err := all.TryNext(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		count++
	}
	if count != 3 {
		t.Errorf("unfiltered subscriber got %d events, want 3", count)
	}
}

func TestPubSubQueueOverflowDropsForSlowSubscriberOnly(t *testing.T) {
	ps, err := NewPubSub("events", 2)
	if err != nil {
		t.Fatal(err)
	}
	pub, _ := ps.NewPublisher()
	slow, _ := ps.NewSubscriber()
	if err := ps.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ps.Stop)
	ctx := ctxShort(t)

	for i := 0; i < 5; i++ {
		if err := pub.Publish(ctx, Message{Data: i}); err != nil {
			t.Fatal(err)
		}
	}
	got := 0
	for {
		_, ok, err := slow.TryNext(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		got++
	}
	if got != 2 {
		t.Errorf("slow subscriber kept %d events, want queue size 2", got)
	}
}

func TestPubSubBlockingNextWakesOnPublish(t *testing.T) {
	ps, err := NewPubSub("events", 2)
	if err != nil {
		t.Fatal(err)
	}
	pub, _ := ps.NewPublisher()
	sub, _ := ps.NewSubscriber()
	if err := ps.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ps.Stop)
	ctx := ctxShort(t)

	got := make(chan Message, 1)
	go func() {
		m, err := sub.Next(ctx)
		if err != nil {
			t.Errorf("Next: %v", err)
			return
		}
		got <- m
	}()
	time.Sleep(20 * time.Millisecond)
	if err := pub.Publish(ctx, Message{Data: 42}); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-got:
		if m.Data != 42 {
			t.Errorf("got %v", m)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("parked subscriber never woke")
	}
}

func TestRPCRoundTrip(t *testing.T) {
	rpc, err := NewRPC("math", 4)
	if err != nil {
		t.Fatal(err)
	}
	client, err := rpc.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	server, err := rpc.NewServer()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := rpc.Start(ctx); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rpc.Stop)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := server.Serve(ctx, func(in any) any {
			return in.(int) * 2
		}); err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()

	for i := 1; i <= 5; i++ {
		out, err := client.Call(ctxShort(t), i)
		if err != nil {
			t.Fatalf("Call(%d): %v", i, err)
		}
		if out != i*2 {
			t.Errorf("Call(%d) = %v, want %d", i, out, i*2)
		}
	}
	cancel()
	rpc.Stop()
	wg.Wait()
}

func TestRPCConcurrentClients(t *testing.T) {
	rpc, err := NewRPC("math", 8)
	if err != nil {
		t.Fatal(err)
	}
	const nClients = 4
	clients := make([]*RPCClient, nClients)
	for i := range clients {
		c, err := rpc.NewClient()
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = c
	}
	server, err := rpc.NewServer()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := rpc.Start(ctx); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rpc.Stop)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = server.Serve(ctx, func(in any) any { return fmt.Sprintf("r:%v", in) })
	}()

	var cwg sync.WaitGroup
	for i, c := range clients {
		i, c := i, c
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			for j := 0; j < 10; j++ {
				arg := fmt.Sprintf("%d-%d", i, j)
				out, err := c.Call(ctxShort(t), arg)
				if err != nil {
					t.Errorf("client %d: %v", i, err)
					return
				}
				if out != "r:"+arg {
					t.Errorf("client %d call %d: got %v", i, j, out)
				}
			}
		}()
	}
	cwg.Wait()
	cancel()
	rpc.Stop()
	wg.Wait()
}

func TestRPCAttachAfterStartFails(t *testing.T) {
	rpc, err := NewRPC("x", 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rpc.NewClient(); err != nil {
		t.Fatal(err)
	}
	if _, err := rpc.NewServer(); err != nil {
		t.Fatal(err)
	}
	if err := rpc.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rpc.Stop)
	if _, err := rpc.NewClient(); err == nil {
		t.Error("NewClient after Start accepted")
	}
	if _, err := rpc.NewServer(); err == nil {
		t.Error("NewServer after Start accepted")
	}
}
