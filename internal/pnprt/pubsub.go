package pnprt

import (
	"context"
	"errors"
	"sync"
)

// PubSub is a publish/subscribe connector (the paper's Section 6
// extension): publishers push events into an event-pool channel, which
// fans each event out to the private queue of every subscriber whose
// subscription matches the event's tag. Publishing is nonblocking (the
// asynchronous nonblocking send semantics); a full subscriber queue drops
// the newest event for that subscriber only.
type PubSub struct {
	name  string
	qsize int
	trace TraceFunc

	pub chan pubMsg
	req chan outReq

	subs []*subscription

	mu       sync.Mutex
	started  bool
	cancel   context.CancelFunc
	stopOnce sync.Once
	done     chan struct{}
	stopCh   chan struct{}
	wg       sync.WaitGroup
}

type pubMsg struct {
	msg Message
	ack chan struct{}
}

type subscription struct {
	id     int
	tags   map[int]bool // nil = all events
	queue  []Message
	parked []outReq
}

// PubSubOption configures a PubSub connector.
type PubSubOption func(*PubSub)

// WithPubSubTrace installs a protocol-event observer.
func WithPubSubTrace(fn TraceFunc) PubSubOption {
	return func(p *PubSub) { p.trace = fn }
}

// NewPubSub creates a publish/subscribe connector whose subscriber queues
// hold up to queueSize events each.
func NewPubSub(name string, queueSize int, opts ...PubSubOption) (*PubSub, error) {
	if queueSize < 1 {
		return nil, errors.New("pnprt: pubsub queue size must be >= 1")
	}
	p := &PubSub{
		name:   name,
		qsize:  queueSize,
		pub:    make(chan pubMsg),
		req:    make(chan outReq),
		done:   make(chan struct{}),
		stopCh: make(chan struct{}),
	}
	for _, o := range opts {
		o(p)
	}
	return p, nil
}

func (p *PubSub) emit(e Event) {
	if p.trace != nil {
		e.Connector = p.name
		p.trace(e)
	}
}

// Publisher is the publishing endpoint.
type Publisher struct{ ps *PubSub }

// Subscriber is one subscriber's receiving endpoint.
type Subscriber struct {
	ps *PubSub
	id int
}

// NewPublisher attaches a publishing endpoint. Must precede Start.
func (p *PubSub) NewPublisher() (*Publisher, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.started {
		return nil, errors.New("pnprt: NewPublisher after Start")
	}
	return &Publisher{ps: p}, nil
}

// NewSubscriber attaches a subscriber; it receives events whose Tag is in
// tags, or every event when tags is empty. Must precede Start.
func (p *PubSub) NewSubscriber(tags ...int) (*Subscriber, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.started {
		return nil, errors.New("pnprt: NewSubscriber after Start")
	}
	s := &subscription{id: len(p.subs)}
	if len(tags) > 0 {
		s.tags = make(map[int]bool, len(tags))
		for _, t := range tags {
			s.tags[t] = true
		}
	}
	p.subs = append(p.subs, s)
	return &Subscriber{ps: p, id: s.id}, nil
}

// Start launches the event pool.
func (p *PubSub) Start(ctx context.Context) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.started {
		return errors.New("pnprt: pubsub already started")
	}
	p.started = true
	ctx, cancel := context.WithCancel(ctx)
	p.cancel = cancel
	go func() {
		<-ctx.Done()
		close(p.stopCh)
	}()
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		p.run(ctx)
	}()
	go func() {
		p.wg.Wait()
		close(p.done)
	}()
	return nil
}

// Stop cancels the pool and waits for it to exit. Idempotent and safe
// for concurrent callers, like Connector.Stop.
func (p *PubSub) Stop() {
	p.mu.Lock()
	cancel := p.cancel
	started := p.started
	p.mu.Unlock()
	if !started {
		return
	}
	p.stopOnce.Do(func() { cancel() })
	<-p.done
}

func (p *PubSub) run(ctx context.Context) {
	for {
		select {
		case m := <-p.pub:
			p.fanout(m.msg)
			close(m.ack)
		case r := <-p.req:
			p.serveSub(r)
		case <-ctx.Done():
			return
		}
	}
}

func (s *subscription) matches(m Message) bool {
	return s.tags == nil || s.tags[m.Tag]
}

func (p *PubSub) fanout(m Message) {
	p.emit(Event{Source: "event-pool", Signal: "PUBLISH", Msg: m})
	for _, s := range p.subs {
		if !s.matches(m) {
			continue
		}
		// A parked receiver takes the event directly.
		if len(s.parked) > 0 {
			r := s.parked[0]
			s.parked = s.parked[1:]
			p.emit(Event{Source: "event-pool", Port: s.id, Signal: "NOTIFY", Msg: m})
			r.reply <- recvReply{status: RecvSucc, msg: m}
			continue
		}
		if len(s.queue) >= p.qsize {
			p.emit(Event{Source: "event-pool", Port: s.id, Signal: "DROPPED", Msg: m})
			continue
		}
		s.queue = append(s.queue, m)
	}
}

func (p *PubSub) serveSub(r outReq) {
	s := p.subs[r.sub]
	if len(s.queue) > 0 {
		m := s.queue[0]
		s.queue = s.queue[1:]
		p.emit(Event{Source: "event-pool", Port: s.id, Signal: "NOTIFY", Msg: m})
		r.reply <- recvReply{status: RecvSucc, msg: m}
		return
	}
	if r.wait {
		s.parked = append(s.parked, r)
		return
	}
	r.reply <- recvReply{status: RecvFail}
}

// Publish pushes an event to all matching subscribers. It returns once
// the pool has accepted the event (nonblocking with respect to
// subscribers).
func (pub *Publisher) Publish(ctx context.Context, m Message) error {
	pm := pubMsg{msg: m, ack: make(chan struct{})}
	select {
	case pub.ps.pub <- pm:
	case <-ctx.Done():
		return ctx.Err()
	case <-pub.ps.stopCh:
		return ErrStopped
	}
	select {
	case <-pm.ack:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-pub.ps.stopCh:
		return ErrStopped
	}
}

// Next blocks until an event is available for this subscriber.
func (s *Subscriber) Next(ctx context.Context) (Message, error) {
	m, _, err := s.receive(ctx, true)
	return m, err
}

// TryNext returns immediately: ok=false when no event is queued.
func (s *Subscriber) TryNext(ctx context.Context) (Message, bool, error) {
	return s.receive(ctx, false)
}

func (s *Subscriber) receive(ctx context.Context, wait bool) (Message, bool, error) {
	r := outReq{wait: wait, sub: s.id, reply: make(chan recvReply, 1)}
	select {
	case s.ps.req <- r:
	case <-ctx.Done():
		return Message{}, false, ctx.Err()
	case <-s.ps.stopCh:
		return Message{}, false, ErrStopped
	}
	select {
	case rep := <-r.reply:
		if rep.status == RecvFail {
			return Message{}, false, nil
		}
		return rep.msg, true, nil
	case <-ctx.Done():
		return Message{}, false, ctx.Err()
	case <-s.ps.stopCh:
		return Message{}, false, ErrStopped
	}
}
