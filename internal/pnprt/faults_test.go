package pnprt

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"pnp/internal/blocks"
	"pnp/internal/faults"
	"pnp/internal/obs"
)

// faultyConn builds a started asyn-blocking/fifo/blocking connector under
// the given plan, recording every FAULT_* trace event in order.
func faultyConn(t *testing.T, size int, plan *faults.Plan, opts ...Option) (*Connector, *SenderEndpoint, *ReceiverEndpoint, func() []string) {
	t.Helper()
	var mu sync.Mutex
	var seq []string
	tap := func(e Event) {
		if strings.HasPrefix(e.Signal, "FAULT_") {
			mu.Lock()
			seq = append(seq, fmt.Sprintf("%s:%v", e.Signal, e.Msg.Data))
			mu.Unlock()
		}
	}
	spec := Spec{Send: blocks.AsynBlockingSend, Channel: blocks.FIFOQueue, Size: size, Recv: blocks.BlockingRecv}
	conn, err := NewConnector("wire", spec, append([]Option{WithTrace(tap), WithFaults(plan)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	snd, err := conn.NewSender()
	if err != nil {
		t.Fatal(err)
	}
	rcv, err := conn.NewReceiver()
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(conn.Stop)
	events := func() []string {
		mu.Lock()
		defer mu.Unlock()
		return append([]string(nil), seq...)
	}
	return conn, snd, rcv, events
}

// TestFaultSequenceIsDeterministic is the runtime half of the E12
// acceptance criterion: the same seeded plan applied to the same message
// stream injects the identical fault sequence on consecutive runs, and a
// different seed injects a different one.
func TestFaultSequenceIsDeterministic(t *testing.T) {
	const n = 60
	run := func(seed uint64) []string {
		plan := &faults.Plan{Seed: seed, Rules: []faults.Rule{
			{Kind: faults.Drop, Target: "wire", Rate: 0.2},
			{Kind: faults.Duplicate, Target: "wire", Rate: 0.1},
			{Kind: faults.Delay, Target: "wire", Rate: 0.1},
		}}
		// Buffer big enough to never fill: every fault can manifest, and
		// the event order is fixed by the single producer's send order.
		conn, snd, _, events := faultyConn(t, 4*n, plan)
		ctx := context.Background()
		for i := 0; i < n; i++ {
			if st, err := snd.Send(ctx, Message{Data: i}); err != nil || st != SendSucc {
				t.Fatalf("send %d: %v %v", i, st, err)
			}
		}
		conn.Stop()
		return events()
	}
	a, b := run(7), run(7)
	if len(a) == 0 {
		t.Fatal("plan injected no faults over 60 messages")
	}
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("two runs under one seed diverge:\n%v\n%v", a, b)
	}
	if fmt.Sprint(run(8)) == fmt.Sprint(a) {
		t.Fatal("different seeds produced identical fault sequences")
	}
}

func TestFaultDropLosesMessageInTransit(t *testing.T) {
	plan := &faults.Plan{Rules: []faults.Rule{{Kind: faults.Drop, Target: "*", Rate: 1, Count: 1}}}
	conn, snd, rcv, events := faultyConn(t, 4, plan)
	ctx := context.Background()
	for i := 1; i <= 2; i++ {
		if st, err := snd.Send(ctx, Message{Data: i}); err != nil || st != SendSucc {
			t.Fatalf("send %d: %v %v (drop must be invisible to the sender)", i, st, err)
		}
	}
	st, m, err := rcv.Receive(ctx, RecvRequest{})
	if err != nil || st != RecvSucc || m.Data != 2 {
		t.Fatalf("Receive = %v %v %v, want message 2 (1 lost in transit)", st, m.Data, err)
	}
	if got := conn.Stats().Dropped; got != 1 {
		t.Errorf("Stats.Dropped = %d, want 1", got)
	}
	if got := conn.FaultsInjected(); got != 1 {
		t.Errorf("FaultsInjected = %d, want 1", got)
	}
	if ev := events(); len(ev) != 1 || ev[0] != "FAULT_DROP:1" {
		t.Errorf("events = %v, want [FAULT_DROP:1]", ev)
	}
}

func TestFaultDuplicateDeliversTwice(t *testing.T) {
	plan := &faults.Plan{Rules: []faults.Rule{{Kind: faults.Duplicate, Target: "wire", Rate: 1, Count: 1}}}
	_, snd, rcv, events := faultyConn(t, 4, plan)
	ctx := context.Background()
	if st, err := snd.Send(ctx, Message{Data: "m"}); err != nil || st != SendSucc {
		t.Fatalf("send: %v %v", st, err)
	}
	for i := 0; i < 2; i++ {
		st, m, err := rcv.Receive(ctx, RecvRequest{})
		if err != nil || st != RecvSucc || m.Data != "m" {
			t.Fatalf("receive %d = %v %v %v, want the duplicated message", i, st, m.Data, err)
		}
	}
	if ev := events(); len(ev) != 1 || ev[0] != "FAULT_DUP:m" {
		t.Errorf("events = %v, want [FAULT_DUP:m]", ev)
	}
}

func TestFaultDelayReordersMessages(t *testing.T) {
	plan := &faults.Plan{Rules: []faults.Rule{{Kind: faults.Delay, Target: "wire", Rate: 1, Count: 1}}}
	_, snd, rcv, _ := faultyConn(t, 4, plan)
	ctx := context.Background()
	if st, err := snd.Send(ctx, Message{Data: "first"}); err != nil || st != SendSucc {
		t.Fatalf("send: %v %v", st, err)
	}
	if st, err := snd.Send(ctx, Message{Data: "second"}); err != nil || st != SendSucc {
		t.Fatalf("send: %v %v", st, err)
	}
	var got []any
	for i := 0; i < 2; i++ {
		st, m, err := rcv.Receive(ctx, RecvRequest{})
		if err != nil || st != RecvSucc {
			t.Fatalf("receive %d: %v %v", i, st, err)
		}
		got = append(got, m.Data)
	}
	if got[0] != "second" || got[1] != "first" {
		t.Fatalf("delivery order %v, want the delayed first message overtaken", got)
	}
}

func TestFaultDelayReleasedToParkedReceiver(t *testing.T) {
	// A blocking receiver already waiting must not starve when the only
	// remaining message is delayed: the delay collapses instead.
	plan := &faults.Plan{Rules: []faults.Rule{{Kind: faults.Delay, Target: "wire", Rate: 1}}}
	_, snd, rcv, _ := faultyConn(t, 4, plan)
	ctx := context.Background()
	done := make(chan Message, 1)
	go func() {
		_, m, _ := rcv.Receive(ctx, RecvRequest{})
		done <- m
	}()
	if st, err := snd.Send(ctx, Message{Data: "x"}); err != nil || st != SendSucc {
		t.Fatalf("send: %v %v", st, err)
	}
	// Either order works: a receiver parked first gets the flush at
	// ingress; a receiver arriving second flushes the delayed message
	// itself when its request finds nothing buffered.
	if m := <-done; m.Data != "x" {
		t.Fatalf("parked receiver got %v, want x", m.Data)
	}
}

func TestFaultStallPausesChannel(t *testing.T) {
	plan := &faults.Plan{Rules: []faults.Rule{{Kind: faults.Stall, Target: "wire", Rate: 1, Count: 1}}}
	_, snd, _, events := faultyConn(t, 4, plan)
	ctx := context.Background()
	if st, err := snd.Send(ctx, Message{Data: 1}); err != nil || st != SendSucc {
		t.Fatalf("send through a stalled channel should still succeed: %v %v", st, err)
	}
	if ev := events(); len(ev) != 1 || ev[0] != "FAULT_STALL:1" {
		t.Errorf("events = %v, want [FAULT_STALL:1]", ev)
	}
}

func TestFaultMetricsExported(t *testing.T) {
	reg := obs.NewRegistry()
	plan := &faults.Plan{Rules: []faults.Rule{{Kind: faults.Drop, Target: "wire", Rate: 1, Count: 2}}}
	_, snd, rcv, _ := faultyConn(t, 4, plan, WithMetrics(reg))
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := snd.Send(ctx, Message{Data: i}); err != nil {
			t.Fatal(err)
		}
	}
	if st, m, err := rcv.Receive(ctx, RecvRequest{}); err != nil || st != RecvSucc || m.Data != 2 {
		t.Fatalf("survivor = %v %v %v", st, m.Data, err)
	}
	c := reg.Counter(obs.Labels("faults_injected_total", "kind", "drop", "target", "wire"))
	if c.Value() != 2 {
		t.Errorf("faults_injected_total = %d, want 2", c.Value())
	}
}

func TestWithFaultsRejectsInvalidPlan(t *testing.T) {
	bad := &faults.Plan{Rules: []faults.Rule{{Kind: faults.Drop, Rate: 2}}}
	spec := Spec{Send: blocks.AsynBlockingSend, Channel: blocks.FIFOQueue, Size: 2, Recv: blocks.BlockingRecv}
	if _, err := NewConnector("w", spec, WithFaults(bad)); err == nil {
		t.Fatal("invalid plan accepted")
	}
}

func TestNonMatchingPlanIsNoOp(t *testing.T) {
	plan := &faults.Plan{Rules: []faults.Rule{{Kind: faults.Drop, Target: "elsewhere", Rate: 1}}}
	conn, snd, rcv, events := faultyConn(t, 4, plan)
	ctx := context.Background()
	if _, err := snd.Send(ctx, Message{Data: 1}); err != nil {
		t.Fatal(err)
	}
	if st, m, err := rcv.Receive(ctx, RecvRequest{}); err != nil || st != RecvSucc || m.Data != 1 {
		t.Fatalf("message perturbed by a non-matching plan: %v %v %v", st, m.Data, err)
	}
	if conn.FaultsInjected() != 0 || len(events()) != 0 {
		t.Errorf("non-matching plan injected: %d, %v", conn.FaultsInjected(), events())
	}
}
