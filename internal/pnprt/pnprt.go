// Package pnprt is the executable runtime of the Plug-and-Play building
// blocks: every port and channel of the library (blocks package) is
// implemented as a goroutine speaking the same two-phase protocols as the
// formal models, so a design that was verified with the checker can be run
// directly.
//
// Components interact only through the standard interfaces of the paper's
// Figure 3: a Sender sends a message and waits for its SendStatus; a
// Receiver issues a receive request, waits for the RecvStatus, and then
// takes the (possibly empty) message. Because these interfaces never
// change, ports and channels can be swapped without touching component
// code — the same plug-and-play property the models have.
//
// One deliberate runtime refinement: where the models implement blocking
// via busy retry loops (IN_FAIL then resend), the runtime parks blocked
// requests inside the channel process and wakes them when space or
// messages become available. The observable protocol (statuses, orderings,
// loss behavior) is identical; the CPU is just not burned.
package pnprt

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"pnp/internal/blocks"
	"pnp/internal/faults"
	"pnp/internal/obs"
	"pnp/internal/obs/tracing"
)

// Status is a SendStatus or RecvStatus delivered to a component through
// the standard interface.
type Status int

// Statuses.
const (
	SendSucc Status = iota + 1
	SendFail
	RecvSucc
	RecvFail
)

var statusNames = map[Status]string{
	SendSucc: "SEND_SUCC",
	SendFail: "SEND_FAIL",
	RecvSucc: "RECV_SUCC",
	RecvFail: "RECV_FAIL",
}

// String returns the paper's signal name for the status.
func (s Status) String() string { return statusNames[s] }

// Message is an application message. Tag doubles as the selective-receive
// key and, for priority channels, the priority (lower is more urgent),
// matching the models' selectiveData field.
type Message struct {
	Data   any
	Tag    int
	Sender int // filled in by the send port
}

// RecvRequest is the receive-side request of the standard interface.
type RecvRequest struct {
	Selective bool
	Tag       int
	Copy      bool // leave the message in the buffer (copy receive)
}

// Sender is the component-side sending interface (paper Fig. 3a).
type Sender interface {
	Send(ctx context.Context, m Message) (Status, error)
}

// Receiver is the component-side receiving interface (paper Fig. 3b).
type Receiver interface {
	Receive(ctx context.Context, req RecvRequest) (Status, Message, error)
}

// ErrStopped is returned when an endpoint is used after its connector
// stopped.
var ErrStopped = errors.New("pnprt: connector stopped")

// Event is one protocol-level occurrence, reported to the connector's
// trace function. Signal uses the models' alphabet (IN_OK, OUT_FAIL,
// RECV_OK, SEND_SUCC, ...).
type Event struct {
	Connector string
	Source    string // "send-port", "recv-port", "channel"
	Port      int
	Signal    string
	Msg       Message
}

// TraceFunc observes protocol events. It is called from port and channel
// goroutines; implementations must be safe for concurrent use.
type TraceFunc func(Event)

// Spec aliases the block library's connector specification; the runtime
// implements the same catalog.
type Spec = blocks.ConnectorSpec

// validateSpec checks a spec for the runtime, which does not share the
// models' static buffer-size ceiling.
func validateSpec(spec Spec) error {
	base := spec
	if base.Size > blocks.MaxBufSize {
		base.Size = blocks.MaxBufSize // size ceiling applies to models only
	}
	if err := base.Validate(); err != nil {
		return err
	}
	if spec.Channel != blocks.SingleSlot && spec.Size < 1 {
		return fmt.Errorf("pnprt: channel size %d must be >= 1", spec.Size)
	}
	return nil
}

// --- internal protocol messages ---

type sendCall struct {
	msg   Message
	reply chan Status
}

type inStatus int

const (
	inOK inStatus = iota + 1
	inFail
)

type inMsg struct {
	msg       Message
	wait      bool          // park until space rather than failing
	reply     chan inStatus // IN_OK / IN_FAIL
	delivered chan struct{} // closed on first delivery; nil if not tracked
}

type recvReply struct {
	status Status
	msg    Message
}

type recvCall struct {
	req   RecvRequest
	reply chan recvReply
}

type outReq struct {
	req   RecvRequest
	wait  bool
	sub   int // subscriber index for event pools; unused otherwise
	reply chan recvReply
}

// Connector assembles a channel process with send and receive ports and
// manages their goroutines' lifecycle.
type Connector struct {
	name    string
	spec    Spec
	trace   TraceFunc
	metrics *obs.Registry
	faults  *faults.Plan
	tracer  *tracing.Recorder
	span    atomic.Pointer[tracing.Span] // lifecycle span, set at Start

	ch        *chanProc
	senders   []*sendPort
	receivers []*recvPort

	mu       sync.Mutex
	started  bool
	cancel   context.CancelFunc
	stopOnce sync.Once
	done     chan struct{} // closed when every goroutine has exited
	stopCh   chan struct{} // closed at cancel time; unblocks endpoints
	wg       sync.WaitGroup
}

// Option configures a Connector.
type Option func(*Connector)

// WithTrace installs a protocol-event observer.
func WithTrace(fn TraceFunc) Option {
	return func(c *Connector) { c.trace = fn }
}

// NewConnector builds a connector from a spec. Endpoints must be created
// before Start.
func NewConnector(name string, spec Spec, opts ...Option) (*Connector, error) {
	if err := validateSpec(spec); err != nil {
		return nil, err
	}
	c := &Connector{
		name:   name,
		spec:   spec,
		done:   make(chan struct{}),
		stopCh: make(chan struct{}),
	}
	for _, o := range opts {
		o(c)
	}
	if err := c.faults.Validate(); err != nil {
		return nil, err
	}
	c.ch = newChanProc(c, spec)
	c.instrumentChan(c.ch)
	return c, nil
}

// Name returns the connector's name.
func (c *Connector) Name() string { return c.name }

// Spec returns the connector's specification.
func (c *Connector) Spec() Spec { return c.spec }

// Stats returns a snapshot of the connector's channel counters.
func (c *Connector) Stats() Stats {
	return Stats{
		Accepted:  c.ch.accepted.Load(),
		Rejected:  c.ch.rejected.Load(),
		Dropped:   c.ch.dropped.Load(),
		Delivered: c.ch.delivered.Load(),
		Failed:    c.ch.failed.Load(),
	}
}

func (c *Connector) emit(e Event) {
	if c.trace == nil && c.tracer == nil {
		return
	}
	e.Connector = c.name
	if c.trace != nil {
		c.trace(e)
	}
	c.spanEvent(e)
}

// NewSender attaches a sending endpoint (and its send port). Must be
// called before Start.
func (c *Connector) NewSender() (*SenderEndpoint, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.started {
		return nil, errors.New("pnprt: NewSender after Start")
	}
	p := &sendPort{
		id:    len(c.senders),
		kind:  c.spec.Send,
		conn:  c,
		calls: make(chan sendCall),
	}
	c.instrumentSendPort(p)
	c.senders = append(c.senders, p)
	return &SenderEndpoint{port: p, conn: c}, nil
}

// NewReceiver attaches a receiving endpoint (and its receive port). Must
// be called before Start.
func (c *Connector) NewReceiver() (*ReceiverEndpoint, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.started {
		return nil, errors.New("pnprt: NewReceiver after Start")
	}
	p := &recvPort{
		id:    len(c.receivers),
		kind:  c.spec.Recv,
		conn:  c,
		calls: make(chan recvCall),
	}
	c.instrumentRecvPort(p)
	c.receivers = append(c.receivers, p)
	return &ReceiverEndpoint{port: p, conn: c}, nil
}

// Start launches the channel process and all port goroutines. The
// connector runs until Stop is called or ctx is cancelled.
func (c *Connector) Start(ctx context.Context) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.started {
		return errors.New("pnprt: connector already started")
	}
	c.started = true
	c.ch.inj = c.faults.Injector(c.name, c.metrics)
	c.startSpan(ctx)
	ctx, cancel := context.WithCancel(ctx)
	c.cancel = cancel

	// Unblock endpoint callers the moment the connector is cancelled; this
	// goroutine exits right after cancellation.
	go func() {
		<-ctx.Done()
		close(c.stopCh)
	}()

	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		c.ch.run(ctx)
	}()
	for _, p := range c.senders {
		p := p
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			p.run(ctx)
		}()
	}
	for _, p := range c.receivers {
		p := p
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			p.run(ctx)
		}()
	}
	go func() {
		c.wg.Wait()
		c.endSpan()
		close(c.done)
	}()
	return nil
}

// Stop cancels the connector and waits for every goroutine to exit. It
// is idempotent and safe for concurrent callers: the cancellation fires
// exactly once (sync.Once) and every caller returns only after shutdown
// completed. Stopping a never-started connector is a no-op.
func (c *Connector) Stop() {
	c.mu.Lock()
	cancel := c.cancel
	started := c.started
	c.mu.Unlock()
	if !started {
		return
	}
	c.stopOnce.Do(func() { cancel() })
	<-c.done
}
