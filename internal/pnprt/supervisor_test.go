package pnprt

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pnp/internal/faults"
	"pnp/internal/obs"
)

func TestSupervisorCleanExitDoesNotRestart(t *testing.T) {
	var runs atomic.Int64
	sup := NewSupervisor("w", func(ctx context.Context) error {
		runs.Add(1)
		return nil
	}, RestartPolicy{Mode: RestartImmediate})
	if err := sup.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	sup.Wait()
	if runs.Load() != 1 || sup.Restarts() != 0 || sup.Err() != nil {
		t.Fatalf("runs=%d restarts=%d err=%v, want one clean run", runs.Load(), sup.Restarts(), sup.Err())
	}
}

func TestSupervisorNeverModeGivesUp(t *testing.T) {
	boom := errors.New("boom")
	sup := NewSupervisor("w", func(ctx context.Context) error { return boom }, RestartPolicy{Mode: RestartNever})
	if err := sup.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	sup.Wait()
	if sup.Restarts() != 0 || !errors.Is(sup.Err(), boom) {
		t.Fatalf("restarts=%d err=%v, want 0 restarts and the failure recorded", sup.Restarts(), sup.Err())
	}
}

func TestSupervisorRestartsUntilSuccess(t *testing.T) {
	var runs atomic.Int64
	sup := NewSupervisor("w", func(ctx context.Context) error {
		if runs.Add(1) < 3 {
			return errors.New("transient")
		}
		return nil
	}, RestartPolicy{Mode: RestartImmediate})
	if err := sup.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	sup.Wait()
	if runs.Load() != 3 || sup.Restarts() != 2 || sup.Err() != nil {
		t.Fatalf("runs=%d restarts=%d err=%v, want recovery on the third run", runs.Load(), sup.Restarts(), sup.Err())
	}
}

func TestSupervisorMaxRestartsBound(t *testing.T) {
	sup := NewSupervisor("w", func(ctx context.Context) error { return errors.New("always") },
		RestartPolicy{Mode: RestartImmediate, MaxRestarts: 3})
	if err := sup.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	sup.Wait()
	if sup.Restarts() != 3 {
		t.Fatalf("restarts=%d, want exactly MaxRestarts=3", sup.Restarts())
	}
}

func TestSupervisorRecoversPanic(t *testing.T) {
	var runs atomic.Int64
	sup := NewSupervisor("w", func(ctx context.Context) error {
		if runs.Add(1) == 1 {
			panic("kaboom")
		}
		return nil
	}, RestartPolicy{Mode: RestartImmediate})
	if err := sup.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	sup.Wait()
	if runs.Load() != 2 || sup.Restarts() != 1 {
		t.Fatalf("runs=%d restarts=%d, want the panic restarted once", runs.Load(), sup.Restarts())
	}
}

func TestSupervisorCrashInjection(t *testing.T) {
	// A seeded Crash rule kills the first two run attempts by cancelling
	// their contexts; the third run is left alone. Restarts and the
	// exported counter both see exactly two failures.
	reg := obs.NewRegistry()
	plan := &faults.Plan{Seed: 11, Rules: []faults.Rule{
		{Kind: faults.Crash, Target: "worker", Rate: 1, Count: 2},
	}}
	var clean atomic.Int64
	sup := NewSupervisor("worker", func(ctx context.Context) error {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(50 * time.Millisecond):
			clean.Add(1)
			return nil
		}
	}, RestartPolicy{Mode: RestartImmediate}, SupervisorFaults(plan), SupervisorMetrics(reg))
	if err := sup.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	sup.Wait()
	if sup.Restarts() != 2 || clean.Load() != 1 {
		t.Fatalf("restarts=%d clean=%d, want 2 injected crashes then a clean run", sup.Restarts(), clean.Load())
	}
	c := reg.Counter(obs.Labels("pnprt_supervisor_restarts_total", "component", "worker"))
	if c.Value() != 2 {
		t.Errorf("pnprt_supervisor_restarts_total = %d, want 2", c.Value())
	}
}

func TestSupervisorCrashCountsEvenIfErrorSwallowed(t *testing.T) {
	// A component that returns nil despite cancellation must still
	// register the injected crash as a failure.
	plan := &faults.Plan{Rules: []faults.Rule{{Kind: faults.Crash, Target: "w", Rate: 1, Count: 1}}}
	var runs atomic.Int64
	sup := NewSupervisor("w", func(ctx context.Context) error {
		if runs.Add(1) == 1 {
			<-ctx.Done() // the injected crash fires here
		}
		return nil // swallows the cancellation
	}, RestartPolicy{Mode: RestartImmediate}, SupervisorFaults(plan))
	if err := sup.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	sup.Wait()
	if sup.Restarts() != 1 || runs.Load() != 2 {
		t.Fatalf("restarts=%d runs=%d, want the swallowed crash restarted", sup.Restarts(), runs.Load())
	}
}

func TestSupervisorBackoffDeterministicAndCapped(t *testing.T) {
	plan := &faults.Plan{Seed: 5}
	sup := NewSupervisor("w", nil, RestartPolicy{
		Mode: RestartBackoff, Backoff: time.Millisecond, MaxBackoff: 8 * time.Millisecond,
	}, SupervisorFaults(plan))
	sup2 := NewSupervisor("w", nil, RestartPolicy{
		Mode: RestartBackoff, Backoff: time.Millisecond, MaxBackoff: 8 * time.Millisecond,
	}, SupervisorFaults(plan))
	prev := time.Duration(0)
	for n := int64(1); n <= 8; n++ {
		d := sup.backoff(n)
		if d != sup2.backoff(n) {
			t.Fatalf("backoff(%d) differs between identically seeded supervisors", n)
		}
		if d > 8*time.Millisecond {
			t.Fatalf("backoff(%d) = %s exceeds the cap", n, d)
		}
		if d < time.Millisecond/2 {
			t.Fatalf("backoff(%d) = %s below half the base", n, d)
		}
		if n <= 4 && d < prev/2 {
			t.Fatalf("backoff(%d) = %s does not grow (prev %s)", n, d, prev)
		}
		prev = d
	}
}

func TestSupervisorStopIsConcurrentSafe(t *testing.T) {
	sup := NewSupervisor("w", func(ctx context.Context) error {
		<-ctx.Done()
		return ctx.Err()
	}, RestartPolicy{Mode: RestartImmediate})
	if err := sup.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sup.Stop()
		}()
	}
	wg.Wait()
	sup.Stop() // and again, after everyone
	if sup.Restarts() != 0 {
		t.Fatalf("shutdown cancellation counted as a failure: %d restarts", sup.Restarts())
	}
}

func TestSystemSupervise(t *testing.T) {
	sys := NewSystem("app")
	started := make(chan struct{})
	sup, err := sys.Supervise("svc", func(ctx context.Context) error {
		close(started)
		<-ctx.Done()
		return ctx.Err()
	}, RestartPolicy{Mode: RestartImmediate})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	select {
	case <-started:
	case <-time.After(2 * time.Second):
		t.Fatal("supervised component never started")
	}
	sys.Stop()
	sup.Wait() // Stop must have ended the loop
}
