package pnprt

import (
	"context"
	"sync"
	"testing"
)

// TestPubSubOverflowUnderConcurrentPublishers hammers one slow
// subscriber from several publishers at once: every publish must be
// accepted (nonblocking semantics), and once the subscriber's queue is
// full each further matching event is dropped for it — never queued,
// never blocking a publisher. Run with -race: the event pool confines
// all queue state to its goroutine.
func TestPubSubOverflowUnderConcurrentPublishers(t *testing.T) {
	const (
		qsize      = 3
		publishers = 4
		perPub     = 50
	)
	var mu sync.Mutex
	dropped := 0
	tap := func(e Event) {
		if e.Signal == "DROPPED" {
			mu.Lock()
			dropped++
			mu.Unlock()
		}
	}
	ps, err := NewPubSub("bus", qsize, WithPubSubTrace(tap))
	if err != nil {
		t.Fatal(err)
	}
	pubs := make([]*Publisher, publishers)
	for i := range pubs {
		if pubs[i], err = ps.NewPublisher(); err != nil {
			t.Fatal(err)
		}
	}
	slow, err := ps.NewSubscriber()
	if err != nil {
		t.Fatal(err)
	}
	if err := ps.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer ps.Stop()

	ctx := context.Background()
	var wg sync.WaitGroup
	for _, pub := range pubs {
		pub := pub
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perPub; i++ {
				if err := pub.Publish(ctx, Message{Data: i}); err != nil {
					t.Errorf("publish into a full subscriber queue failed: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()

	// The slow subscriber never consumed: exactly qsize events survive.
	got := 0
	for {
		_, ok, err := slow.TryNext(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		got++
	}
	total := publishers * perPub
	mu.Lock()
	defer mu.Unlock()
	if got != qsize {
		t.Errorf("slow subscriber drained %d events, want queue capacity %d", got, qsize)
	}
	if dropped != total-qsize {
		t.Errorf("dropped = %d, want %d (every overflow event)", dropped, total-qsize)
	}
}

// TestPubSubConcurrentPublishAndDrain races publishers against a
// consuming subscriber; conservation must hold: every published event is
// either delivered or dropped, nothing is duplicated or lost in between.
func TestPubSubConcurrentPublishAndDrain(t *testing.T) {
	const (
		publishers = 4
		perPub     = 50
	)
	var mu sync.Mutex
	dropped := 0
	tap := func(e Event) {
		if e.Signal == "DROPPED" {
			mu.Lock()
			dropped++
			mu.Unlock()
		}
	}
	ps, err := NewPubSub("bus", 2, WithPubSubTrace(tap))
	if err != nil {
		t.Fatal(err)
	}
	pubs := make([]*Publisher, publishers)
	for i := range pubs {
		if pubs[i], err = ps.NewPublisher(); err != nil {
			t.Fatal(err)
		}
	}
	sub, err := ps.NewSubscriber()
	if err != nil {
		t.Fatal(err)
	}
	if err := ps.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer ps.Stop()

	ctx := context.Background()
	var wg sync.WaitGroup
	for _, pub := range pubs {
		pub := pub
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perPub; i++ {
				if err := pub.Publish(ctx, Message{Data: i}); err != nil {
					t.Errorf("publish: %v", err)
					return
				}
			}
		}()
	}
	pubsDone := drainDone(&wg)
	delivered := 0
	drain := make(chan struct{})
	go func() {
		defer close(drain)
		for {
			_, ok, err := sub.TryNext(ctx)
			if err != nil {
				t.Errorf("TryNext: %v", err)
				return
			}
			if ok {
				delivered++
				continue
			}
			select {
			case <-pubsDone:
				// Publishers finished and the queue is empty: done.
				return
			default:
			}
		}
	}()
	wg.Wait()
	<-drain

	// One final sweep for events that landed after the last TryNext.
	for {
		_, ok, err := sub.TryNext(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		delivered++
	}
	mu.Lock()
	defer mu.Unlock()
	if total := publishers * perPub; delivered+dropped != total {
		t.Errorf("delivered %d + dropped %d != published %d", delivered, dropped, total)
	}
}

// drainDone adapts a WaitGroup to a select-able channel.
func drainDone(wg *sync.WaitGroup) <-chan struct{} {
	ch := make(chan struct{})
	go func() {
		wg.Wait()
		close(ch)
	}()
	return ch
}
