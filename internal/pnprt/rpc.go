package pnprt

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"pnp/internal/blocks"
)

// RPC is a remote-procedure-call connector composed, per the paper's
// Section 6, from two message-passing connectors built out of the same
// block library: a request connector (client -> server) and a reply
// connector (server -> client). Replies are matched to calls with
// selective receives on a per-call tag — no new interaction primitive is
// needed.
type RPC struct {
	req *Connector
	rep *Connector

	nextCall atomic.Int64

	mu      sync.Mutex
	clients []rpcClientPorts
	servers []rpcServerPorts
	started bool
}

type rpcClientPorts struct {
	send *SenderEndpoint
	recv *ReceiverEndpoint
}

type rpcServerPorts struct {
	recv *ReceiverEndpoint
	send *SenderEndpoint
}

// NewRPC creates an RPC connector whose request and reply queues hold up
// to queueSize in-flight messages each.
func NewRPC(name string, queueSize int, opts ...Option) (*RPC, error) {
	spec := Spec{
		Send:    blocks.AsynBlockingSend,
		Channel: blocks.FIFOQueue,
		Size:    queueSize,
		Recv:    blocks.BlockingRecv,
	}
	req, err := NewConnector(name+".request", spec, opts...)
	if err != nil {
		return nil, err
	}
	rep, err := NewConnector(name+".reply", spec, opts...)
	if err != nil {
		return nil, err
	}
	return &RPC{req: req, rep: rep}, nil
}

// RPCClient issues calls.
type RPCClient struct {
	rpc   *RPC
	ports rpcClientPorts
}

// RPCServer serves calls.
type RPCServer struct {
	rpc   *RPC
	ports rpcServerPorts
}

// NewClient attaches a client. Must precede Start.
func (r *RPC) NewClient() (*RPCClient, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.started {
		return nil, fmt.Errorf("pnprt: NewClient after Start")
	}
	snd, err := r.req.NewSender()
	if err != nil {
		return nil, err
	}
	rcv, err := r.rep.NewReceiver()
	if err != nil {
		return nil, err
	}
	p := rpcClientPorts{send: snd, recv: rcv}
	r.clients = append(r.clients, p)
	return &RPCClient{rpc: r, ports: p}, nil
}

// NewServer attaches a server. Must precede Start.
func (r *RPC) NewServer() (*RPCServer, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.started {
		return nil, fmt.Errorf("pnprt: NewServer after Start")
	}
	rcv, err := r.req.NewReceiver()
	if err != nil {
		return nil, err
	}
	snd, err := r.rep.NewSender()
	if err != nil {
		return nil, err
	}
	p := rpcServerPorts{recv: rcv, send: snd}
	r.servers = append(r.servers, p)
	return &RPCServer{rpc: r, ports: p}, nil
}

// Start launches both underlying connectors.
func (r *RPC) Start(ctx context.Context) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.started {
		return fmt.Errorf("pnprt: rpc already started")
	}
	r.started = true
	if err := r.req.Start(ctx); err != nil {
		return err
	}
	if err := r.rep.Start(ctx); err != nil {
		r.req.Stop()
		return err
	}
	return nil
}

// Stop stops both underlying connectors.
func (r *RPC) Stop() {
	r.req.Stop()
	r.rep.Stop()
}

// Call sends the argument to a server and blocks until the matching reply
// arrives (selective receive on the call's tag).
func (c *RPCClient) Call(ctx context.Context, arg any) (any, error) {
	id := int(c.rpc.nextCall.Add(1))
	st, err := c.ports.send.Send(ctx, Message{Data: arg, Tag: id})
	if err != nil {
		return nil, err
	}
	if st != SendSucc {
		return nil, fmt.Errorf("pnprt: rpc request not accepted: %v", st)
	}
	st, reply, err := c.ports.recv.Receive(ctx, RecvRequest{Selective: true, Tag: id})
	if err != nil {
		return nil, err
	}
	if st != RecvSucc {
		return nil, fmt.Errorf("pnprt: rpc reply failed: %v", st)
	}
	return reply.Data, nil
}

// Serve handles calls with the given handler until ctx is cancelled or
// the connector stops. It returns nil on clean shutdown.
func (s *RPCServer) Serve(ctx context.Context, handler func(any) any) error {
	for {
		st, req, err := s.ports.recv.Receive(ctx, RecvRequest{})
		if err != nil {
			if err == ErrStopped || ctx.Err() != nil {
				return nil
			}
			return err
		}
		if st != RecvSucc {
			continue
		}
		out := handler(req.Data)
		if _, err := s.ports.send.Send(ctx, Message{Data: out, Tag: req.Tag}); err != nil {
			if err == ErrStopped || ctx.Err() != nil {
				return nil
			}
			return err
		}
	}
}
