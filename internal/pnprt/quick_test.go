package pnprt

import (
	"context"
	"testing"
	"testing/quick"
	"time"

	"pnp/internal/blocks"
)

// TestQuickPerSenderFIFOOrder: for any batch of payloads, a single
// sender's messages arrive in send order through a FIFO connector.
func TestQuickPerSenderFIFOOrder(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) > 40 {
			raw = raw[:40]
		}
		spec := Spec{Send: blocks.AsynBlockingSend, Channel: blocks.FIFOQueue, Size: 4, Recv: blocks.BlockingRecv}
		conn, err := NewConnector("q", spec)
		if err != nil {
			return false
		}
		snd, err := conn.NewSender()
		if err != nil {
			return false
		}
		rcv, err := conn.NewReceiver()
		if err != nil {
			return false
		}
		if err := conn.Start(context.Background()); err != nil {
			return false
		}
		defer conn.Stop()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()

		go func() {
			for _, v := range raw {
				if _, err := snd.Send(ctx, Message{Data: int(v)}); err != nil {
					return
				}
			}
		}()
		for i, want := range raw {
			_, m, err := rcv.Receive(ctx, RecvRequest{})
			if err != nil || m.Data != int(want) {
				t.Logf("position %d: got %v want %d (err %v)", i, m.Data, want, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestQuickPriorityOrder: whatever the send order, with all messages
// buffered before the first receive, deliveries come out in
// nondecreasing tag order.
func TestQuickPriorityOrder(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 16 {
			raw = raw[:16]
		}
		spec := Spec{Send: blocks.AsynBlockingSend, Channel: blocks.PriorityQueue, Size: 16, Recv: blocks.BlockingRecv}
		conn, err := NewConnector("pq", spec)
		if err != nil {
			return false
		}
		snd, err := conn.NewSender()
		if err != nil {
			return false
		}
		rcv, err := conn.NewReceiver()
		if err != nil {
			return false
		}
		if err := conn.Start(context.Background()); err != nil {
			return false
		}
		defer conn.Stop()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()

		// Buffer everything first (blocking sends, buffer big enough).
		for _, v := range raw {
			if _, err := snd.Send(ctx, Message{Data: int(v), Tag: int(v % 8)}); err != nil {
				return false
			}
		}
		prev := -1
		for range raw {
			_, m, err := rcv.Receive(ctx, RecvRequest{})
			if err != nil {
				return false
			}
			if m.Tag < prev {
				t.Logf("priority inversion: %d after %d", m.Tag, prev)
				return false
			}
			prev = m.Tag
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestQuickSelectiveNeverDeliversWrongTag: a selective receive only ever
// yields messages with the requested tag.
func TestQuickSelectiveNeverDeliversWrongTag(t *testing.T) {
	f := func(raw []uint8, want uint8) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 12 {
			raw = raw[:12]
		}
		spec := Spec{Send: blocks.AsynBlockingSend, Channel: blocks.FIFOQueue, Size: 16, Recv: blocks.NonblockingRecv}
		conn, err := NewConnector("sel", spec)
		if err != nil {
			return false
		}
		snd, err := conn.NewSender()
		if err != nil {
			return false
		}
		rcv, err := conn.NewReceiver()
		if err != nil {
			return false
		}
		if err := conn.Start(context.Background()); err != nil {
			return false
		}
		defer conn.Stop()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()

		tag := int(want % 4)
		expect := 0
		for _, v := range raw {
			if _, err := snd.Send(ctx, Message{Data: int(v), Tag: int(v % 4)}); err != nil {
				return false
			}
			if int(v%4) == tag {
				expect++
			}
		}
		got := 0
		for {
			st, m, err := rcv.Receive(ctx, RecvRequest{Selective: true, Tag: tag})
			if err != nil {
				return false
			}
			if st != RecvSucc {
				break
			}
			if m.Tag != tag {
				t.Logf("selective receive delivered tag %d, wanted %d", m.Tag, tag)
				return false
			}
			got++
		}
		return got == expect
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
