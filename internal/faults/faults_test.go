package faults

import (
	"strings"
	"testing"
	"time"

	"pnp/internal/obs"
)

func TestNilPlanAndInjectorAreNoOps(t *testing.T) {
	var p *Plan
	if err := p.Validate(); err != nil {
		t.Fatalf("nil plan Validate: %v", err)
	}
	if got := p.Canonical(); got != "" {
		t.Fatalf("nil plan Canonical = %q, want empty", got)
	}
	in := p.Injector("X", nil)
	if in != nil {
		t.Fatalf("nil plan should yield nil injector")
	}
	if _, ok := in.OnMessage(); ok {
		t.Fatal("nil injector injected a message fault")
	}
	if _, ok := in.OnRun(0); ok {
		t.Fatal("nil injector injected a crash")
	}
	if in.Injected() != 0 {
		t.Fatal("nil injector reported injections")
	}
}

func TestPlanValidate(t *testing.T) {
	bad := []Plan{
		{Rules: []Rule{{Kind: 99, Rate: 0.5}}},
		{Rules: []Rule{{Kind: Drop, Rate: -0.1}}},
		{Rules: []Rule{{Kind: Drop, Rate: 1.5}}},
		{Rules: []Rule{{Kind: Drop, Rate: 0.5, After: -1}}},
		{Rules: []Rule{{Kind: Drop, Rate: 0.5, Count: -2}}},
		{Rules: []Rule{{Kind: Stall, Rate: 0.5, Delay: -time.Second}}},
	}
	for i := range bad {
		if err := bad[i].Validate(); err == nil {
			t.Errorf("plan %d should fail validation", i)
		}
	}
	ok := Plan{Seed: 7, Rules: []Rule{
		{Kind: Drop, Target: "Data", Rate: 0.25},
		{Kind: Crash, Target: "worker", Rate: 1, Count: 2},
	}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
}

func TestCanonicalDistinguishesPlans(t *testing.T) {
	base := &Plan{Seed: 1, Rules: []Rule{{Kind: Drop, Target: "Data", Rate: 0.3}}}
	same := &Plan{Seed: 1, Rules: []Rule{{Kind: Drop, Target: "Data", Rate: 0.3}}}
	if base.Canonical() != same.Canonical() {
		t.Fatal("equal plans must encode equally")
	}
	variants := []*Plan{
		{Seed: 2, Rules: base.Rules},
		{Seed: 1, Rules: []Rule{{Kind: Duplicate, Target: "Data", Rate: 0.3}}},
		{Seed: 1, Rules: []Rule{{Kind: Drop, Target: "Ack", Rate: 0.3}}},
		{Seed: 1, Rules: []Rule{{Kind: Drop, Target: "Data", Rate: 0.4}}},
		{Seed: 1, Rules: []Rule{{Kind: Drop, Target: "Data", Rate: 0.3, Count: 1}}},
		{Seed: 1},
	}
	for i, v := range variants {
		if v.Canonical() == base.Canonical() {
			t.Errorf("variant %d encodes identically to base: %s", i, v.Canonical())
		}
	}
	if !strings.Contains(base.Canonical(), "drop(Data") {
		t.Fatalf("canonical form unreadable: %s", base.Canonical())
	}
}

// TestDeterministicDecisions is the core contract: two injectors derived
// from the same plan produce identical decision streams, and a different
// seed produces a different one.
func TestDeterministicDecisions(t *testing.T) {
	plan := &Plan{Seed: 42, Rules: []Rule{
		{Kind: Drop, Target: "Data", Rate: 0.3},
		{Kind: Duplicate, Target: "Data", Rate: 0.2},
	}}
	stream := func(p *Plan) []Decision {
		in := p.Injector("Data", nil)
		var out []Decision
		for i := 0; i < 200; i++ {
			if d, ok := in.OnMessage(); ok {
				out = append(out, d)
			}
		}
		return out
	}
	a, b := stream(plan), stream(plan)
	if len(a) == 0 {
		t.Fatal("plan injected nothing over 200 messages")
	}
	if len(a) != len(b) {
		t.Fatalf("runs differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	kinds := map[Kind]bool{}
	for _, d := range a {
		kinds[d.Kind] = true
	}
	if !kinds[Drop] || !kinds[Duplicate] {
		t.Fatalf("expected both drop and duplicate decisions, got %v", kinds)
	}
	other := stream(&Plan{Seed: 43, Rules: plan.Rules})
	if len(other) == len(a) {
		same := true
		for i := range a {
			if a[i] != other[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical decision streams")
		}
	}
}

func TestRuleAfterAndCount(t *testing.T) {
	plan := &Plan{Seed: 9, Rules: []Rule{{Kind: Drop, Target: "*", Rate: 1, After: 3, Count: 2}}}
	in := plan.Injector("pipe", nil)
	var seqs []int
	for i := 0; i < 10; i++ {
		if d, ok := in.OnMessage(); ok {
			seqs = append(seqs, d.Seq)
		}
	}
	if len(seqs) != 2 || seqs[0] != 3 || seqs[1] != 4 {
		t.Fatalf("after=3 count=2 rate=1 should fire on events 3 and 4, got %v", seqs)
	}
	if in.Injected() != 2 {
		t.Fatalf("Injected = %d, want 2", in.Injected())
	}
}

func TestInjectorTargetMatching(t *testing.T) {
	plan := &Plan{Seed: 1, Rules: []Rule{{Kind: Drop, Target: "Data", Rate: 1}}}
	if in := plan.Injector("Ack", nil); in != nil {
		t.Fatal("non-matching target should yield nil injector")
	}
	if in := plan.Injector("Data", nil); in == nil {
		t.Fatal("matching target should yield an injector")
	}
	wild := &Plan{Seed: 1, Rules: []Rule{{Kind: Drop, Target: "*", Rate: 1}}}
	if in := wild.Injector("anything", nil); in == nil {
		t.Fatal("wildcard target should match every target")
	}
}

func TestCrashSiteSeparateFromMessages(t *testing.T) {
	plan := &Plan{Seed: 5, Rules: []Rule{
		{Kind: Crash, Target: "worker", Rate: 1, Count: 2},
	}}
	in := plan.Injector("worker", nil)
	if _, ok := in.OnMessage(); ok {
		t.Fatal("crash rule must not fire at the message site")
	}
	if d, ok := in.OnRun(0); !ok || d.Kind != Crash {
		t.Fatalf("run 0 should crash, got %v %v", d, ok)
	}
	if _, ok := in.OnRun(1); !ok {
		t.Fatal("run 1 should crash (count=2)")
	}
	if _, ok := in.OnRun(2); ok {
		t.Fatal("run 2 should survive (count exhausted)")
	}
}

func TestInjectorMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	plan := &Plan{Seed: 3, Rules: []Rule{{Kind: Drop, Target: "pipe", Rate: 1, Count: 4}}}
	in := plan.Injector("pipe", reg)
	for i := 0; i < 6; i++ {
		in.OnMessage()
	}
	c := reg.Counter(obs.Labels("faults_injected_total", "kind", "drop", "target", "pipe"))
	if c.Value() != 4 {
		t.Fatalf("faults_injected_total{kind=drop} = %d, want 4", c.Value())
	}
}

func TestUniformStability(t *testing.T) {
	// The decision hash must never drift: freeze a few known values.
	v := Uniform(42, hashString("Data"), 0, 0)
	if v < 0 || v >= 1 {
		t.Fatalf("Uniform out of range: %g", v)
	}
	if Uniform(42, hashString("Data"), 0, 0) != v {
		t.Fatal("Uniform is not pure")
	}
	if Uniform(42, hashString("Data"), 0, 1) == v && Uniform(42, hashString("Ack"), 0, 0) == v {
		t.Fatal("Uniform ignores its dimensions")
	}
}

func TestKindNames(t *testing.T) {
	for _, k := range []Kind{Drop, Duplicate, Delay, Stall, Crash} {
		name := k.String()
		back, ok := KindFromString(name)
		if !ok || back != k {
			t.Fatalf("kind %d round-trip failed via %q", k, name)
		}
	}
	if _, ok := KindFromString("nope"); ok {
		t.Fatal("unknown kind name parsed")
	}
}
