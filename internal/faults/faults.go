// Package faults makes failure a first-class building block: a Plan is a
// deterministic, seeded schedule of injectable faults — message drop,
// duplication, delay/reorder, channel stall, and component crash — that
// the pnprt runtime applies as middleware inside its channel processes
// and supervisors. The same fault classes exist as nondeterministic
// formal blocks (the lossy channel of package blocks), so a design is
// verified and executed under one fault model.
//
// Determinism is the load-bearing property: whether message n at target
// T is faulted is a pure function of (plan seed, target, rule, n), never
// of wall-clock time or goroutine interleaving. Two runs of the same
// system with the same plan therefore inject the same loss/duplication
// sequence, which makes fault scenarios reproducible in tests and bug
// reports.
package faults

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"pnp/internal/obs"
)

// Kind is one injectable fault class.
type Kind uint8

// Fault kinds. Drop, Duplicate, Delay, and Stall apply to messages
// entering a connector's channel process; Crash applies to runs of a
// supervised component.
const (
	Drop Kind = iota + 1
	Duplicate
	Delay
	Stall
	Crash
)

var kindNames = map[Kind]string{
	Drop:      "drop",
	Duplicate: "duplicate",
	Delay:     "delay",
	Stall:     "stall",
	Crash:     "crash",
}

// String returns the kind's plan-syntax name.
func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("kind(%d)", k)
}

// KindFromString parses a plan-syntax kind name.
func KindFromString(s string) (Kind, bool) {
	for k, n := range kindNames {
		if n == s {
			return k, true
		}
	}
	return 0, false
}

// messageKind reports whether the kind applies at the channel-ingress
// site (as opposed to the supervisor's run site).
func (k Kind) messageKind() bool { return k != Crash }

// Rule schedules one fault class against one target. Eligible events are
// counted per target: messages arriving at a connector's channel for the
// message kinds, run attempts of a supervised component for Crash.
type Rule struct {
	Kind Kind
	// Target names the connector (message kinds) or supervised component
	// (Crash) the rule applies to; "*" or "" matches every target.
	Target string
	// Rate is the fraction of eligible events faulted, in [0,1]. The
	// decision for event n is deterministic in (seed, target, rule, n).
	Rate float64
	// After skips the first After eligible events.
	After int
	// Count bounds the total injections of this rule per target
	// (0 = unlimited).
	Count int
	// Delay is the Stall pause or the grace before an injected Crash
	// cancels the component's context (default: DefaultStall / none).
	Delay time.Duration
}

// DefaultStall is the pause applied by a Stall rule with zero Delay.
const DefaultStall = time.Millisecond

// Plan is a seeded, deterministic fault schedule. The zero value (and a
// nil *Plan) injects nothing. Plans are immutable once handed to the
// runtime; Injector derives per-target injectors from them.
type Plan struct {
	Seed  uint64
	Rules []Rule
}

// Validate checks every rule for a known kind and sane parameters.
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	for i, r := range p.Rules {
		if _, ok := kindNames[r.Kind]; !ok {
			return fmt.Errorf("faults: rule %d: unknown kind %d", i, r.Kind)
		}
		if r.Rate < 0 || r.Rate > 1 {
			return fmt.Errorf("faults: rule %d: rate %g out of range [0,1]", i, r.Rate)
		}
		if r.After < 0 {
			return fmt.Errorf("faults: rule %d: negative after %d", i, r.After)
		}
		if r.Count < 0 {
			return fmt.Errorf("faults: rule %d: negative count %d", i, r.Count)
		}
		if r.Delay < 0 {
			return fmt.Errorf("faults: rule %d: negative delay %s", i, r.Delay)
		}
	}
	return nil
}

// Canonical renders the plan as a stable text encoding: equal plans have
// equal encodings and unequal plans differ. The verification service
// hashes it into the content-addressed result-cache key, so a design
// re-submitted under a different fault plan is never served a stale
// verdict. A nil plan encodes as "".
func (p *Plan) Canonical() string {
	if p == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d", p.Seed)
	for _, r := range p.Rules {
		fmt.Fprintf(&b, ";%s(%s,rate=%g,after=%d,count=%d,delay=%s)",
			r.Kind, r.Target, r.Rate, r.After, r.Count, r.Delay)
	}
	return b.String()
}

// String is Canonical (for logs).
func (p *Plan) String() string { return p.Canonical() }

// Decision is one injected fault.
type Decision struct {
	Kind Kind
	// Seq is the eligible-event index the decision fired on.
	Seq int
	// Delay carries the rule's Delay (Stall pause, Crash grace).
	Delay time.Duration
}

// Injector applies a plan to one target. Methods on a nil *Injector
// report no faults, so the uninstrumented hot path pays one nil check —
// the same convention as package obs.
type Injector struct {
	seed   uint64
	target string

	mu    sync.Mutex
	msg   []injRule // rules for the message site, in plan order
	crash []injRule // rules for the run site
	seq   int       // eligible messages seen so far

	reg      *obs.Registry
	mByKind  map[Kind]*obs.Counter
	injected int64
}

type injRule struct {
	rule Rule
	idx  int // rule index in the plan (part of the decision hash)
	used int // injections so far (Count bookkeeping)
}

// Injector derives the per-target injector, instrumented against reg
// (nil disables metrics). It returns nil — a valid, no-op injector —
// when the plan is nil or no rule matches the target.
func (p *Plan) Injector(target string, reg *obs.Registry) *Injector {
	if p == nil {
		return nil
	}
	in := &Injector{seed: p.Seed, target: target, reg: reg, mByKind: make(map[Kind]*obs.Counter)}
	for i, r := range p.Rules {
		if r.Target != "" && r.Target != "*" && r.Target != target {
			continue
		}
		ir := injRule{rule: r, idx: i}
		if r.Kind.messageKind() {
			in.msg = append(in.msg, ir)
		} else {
			in.crash = append(in.crash, ir)
		}
	}
	if len(in.msg) == 0 && len(in.crash) == 0 {
		return nil
	}
	return in
}

// OnMessage decides the fate of the next message entering the target's
// channel process. The eligible-event counter advances on every call, so
// the decision stream depends only on message arrival order at this
// target — not on other connectors or goroutine scheduling.
func (in *Injector) OnMessage() (Decision, bool) {
	if in == nil {
		return Decision{}, false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	n := in.seq
	in.seq++
	return in.decide(in.msg, n)
}

// OnRun decides whether run attempt `run` of a supervised component is
// crash-injected.
func (in *Injector) OnRun(run int) (Decision, bool) {
	if in == nil {
		return Decision{}, false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.decide(in.crash, run)
}

// decide evaluates the site's rules in plan order; the first rule that
// fires wins. Each rule rolls independently (its index is part of the
// hash), so reordering unrelated rules does not perturb decisions.
func (in *Injector) decide(rules []injRule, n int) (Decision, bool) {
	for i := range rules {
		r := &rules[i]
		if n < r.rule.After {
			continue
		}
		if r.rule.Count > 0 && r.used >= r.rule.Count {
			continue
		}
		if Uniform(in.seed, hashString(in.target), uint64(r.idx), uint64(n)) >= r.rule.Rate {
			continue
		}
		r.used++
		in.injected++
		in.counter(r.rule.Kind).Inc()
		return Decision{Kind: r.rule.Kind, Seq: n, Delay: r.rule.Delay}, true
	}
	return Decision{}, false
}

// counter returns the per-kind injection counter, creating it lazily.
func (in *Injector) counter(k Kind) *obs.Counter {
	c, ok := in.mByKind[k]
	if !ok {
		c = in.reg.Counter(obs.Labels("faults_injected_total", "kind", k.String(), "target", in.target))
		in.mByKind[k] = c
	}
	return c
}

// Injected returns how many faults this injector has fired (0 for nil).
func (in *Injector) Injected() int64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.injected
}

// --- deterministic hashing ---

// Uniform maps (seed, dims...) to a uniform float64 in [0,1) with a
// splitmix64-style mix. It is the plan's only randomness source: pure,
// platform-independent, and stable across runs, so every fault decision
// (and the supervisor's backoff jitter) is reproducible from the seed.
func Uniform(seed uint64, dims ...uint64) float64 {
	h := mix(seed ^ 0x9e3779b97f4a7c15)
	for _, d := range dims {
		h = mix(h ^ d)
	}
	return float64(h>>11) / (1 << 53)
}

func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Hash folds a string into a Uniform dimension; it is the same stable
// hash the injector uses for targets, exported for callers that derive
// their own deterministic draws (the supervisor's backoff jitter).
func Hash(s string) uint64 { return hashString(s) }

// hashString is FNV-1a, fixed here rather than imported so the decision
// function can never drift with a library change.
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
