// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON array on stdout: one record per benchmark with
// its name, iteration count, ns/op, states/s, and any other custom
// metrics the benchmark reported.
//
// Usage:
//
//	go test -bench 'E8|E9' -run '^$' . | go run ./internal/tools/benchjson > BENCH.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type record struct {
	Name         string             `json:"name"`
	Iterations   int64              `json:"iterations"`
	NsPerOp      float64            `json:"ns_per_op"`
	StatesPerSec float64            `json:"states_per_sec,omitempty"`
	Metrics      map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	recs := []record{} // empty input encodes as [], not null
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if r, ok := parse(sc.Text()); ok {
			recs = append(recs, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(recs); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// parse reads one result line, e.g.
//
//	BenchmarkE8BridgeViolation-8  12  98765432 ns/op  6657 states  67400 states/s
func parse(line string) (record, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return record{}, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return record{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	// Strip the -GOMAXPROCS suffix, which is absent on single-proc runs.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return record{}, false
	}
	r := record{Name: name, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "states/s":
			r.StatesPerSec = v
		default:
			r.Metrics[unit] = v
		}
	}
	if len(r.Metrics) == 0 {
		r.Metrics = nil
	}
	return r, true
}
