// Package core is the design-level heart of the Plug-and-Play approach:
// a declarative Design holds component models, connectors composed from
// the block library, instances, and properties. Connector blocks are
// swapped with one-call plug operations that leave components untouched;
// the same Design verifies through the model checker and instantiates
// executable connectors through the runtime.
package core

import (
	"fmt"

	"pnp/internal/blocks"
	"pnp/internal/checker"
	"pnp/internal/model"
	"pnp/internal/pnprt"
)

// BlockInfo is one catalog entry: a reusable building block with the
// paper's Figure 1 description.
type BlockInfo struct {
	Name        string
	Kind        string // "send-port", "recv-port", "channel"
	Description string
}

// Catalog returns the paper's Figure 1 building-block catalog as shipped
// in this library.
func Catalog() []BlockInfo {
	return []BlockInfo{
		{Name: "AsynNbSendPort", Kind: "send-port", Description: "Asynchronous nonblocking send: confirms immediately; the message may or may not be accepted by the channel."},
		{Name: "AsynBlSendPort", Kind: "send-port", Description: "Asynchronous blocking send: confirms after the message has been accepted by the channel."},
		{Name: "AsynCheckSendPort", Kind: "send-port", Description: "Asynchronous checking send: notifies the sender when the channel cannot accept the message, otherwise confirms once stored."},
		{Name: "SynBlSendPort", Kind: "send-port", Description: "Synchronous blocking send: confirms only after the message has been received by the receiver."},
		{Name: "SynCheckSendPort", Kind: "send-port", Description: "Synchronous checking send: like checking send, but when accepted it blocks until the message is received by the receiver."},
		{Name: "BlRecvPort", Kind: "recv-port", Description: "Blocking receive (copy/remove): blocks until a desired message is retrieved from the channel."},
		{Name: "NbRecvPort", Kind: "recv-port", Description: "Nonblocking receive (copy/remove): returns immediately with a notification and an empty message when nothing can be retrieved."},
		{Name: "SingleSlotChannel", Kind: "channel", Description: "1-slot buffer: a buffer of size 1."},
		{Name: "FifoChannel", Kind: "channel", Description: "FIFO queue: a first-in-first-out queue of size N."},
		{Name: "PriorityChannel", Kind: "channel", Description: "Priority queue: a priority queue of size N (lower tag = higher priority)."},
		{Name: "DroppingChannel", Kind: "channel", Description: "Dropping buffer: silently drops messages that arrive while full."},
		{Name: "LossyChannel", Kind: "channel", Description: "Lossy buffer: an unreliable medium that may drop or duplicate any message in transit (fault-injection block)."},
	}
}

// ArgKind classifies an instance argument.
type ArgKind int

// Instance argument kinds.
const (
	ArgInt ArgKind = iota + 1
	ArgSend
	ArgRecv
)

// InstanceArg is one argument of a component instance: an integer or an
// attachment to a connector endpoint (which expands to the endpoint's
// signal and data channels).
type InstanceArg struct {
	Kind ArgKind
	N    int64
	Conn string
}

// IntArg passes an integer parameter.
func IntArg(v int64) InstanceArg { return InstanceArg{Kind: ArgInt, N: v} }

// SendTo attaches the instance as a sender on the named connector.
func SendTo(conn string) InstanceArg { return InstanceArg{Kind: ArgSend, Conn: conn} }

// RecvFrom attaches the instance as a receiver on the named connector.
func RecvFrom(conn string) InstanceArg { return InstanceArg{Kind: ArgRecv, Conn: conn} }

// NamedConnector pairs a connector name with its block composition.
type NamedConnector struct {
	Name string
	Spec blocks.ConnectorSpec
}

// Instance declares component instances of a proctype.
type Instance struct {
	Name  string
	Proc  string
	Count int
	Args  []InstanceArg
}

// Property declarations.
type invariantDecl struct {
	Name string
	Expr string
}

type goalDecl struct {
	Name string
	Expr string
}

type ltlDecl struct {
	Name    string
	Formula string
	Props   map[string]string
}

// Design is a complete Plug-and-Play system design. Designs are value-ish:
// the With* plug operations return modified copies so alternatives can be
// explored side by side (the paper's design-space experimentation).
type Design struct {
	Name       string
	Components string // pml source of the component models
	Connectors []NamedConnector
	Instances  []Instance
	invariants []invariantDecl
	goals      []goalDecl
	ltls       []ltlDecl
}

// NewDesign creates an empty design over the given component models.
func NewDesign(name, componentSource string) *Design {
	return &Design{Name: name, Components: componentSource}
}

// AddConnector declares a connector composed from library blocks.
func (d *Design) AddConnector(name string, spec blocks.ConnectorSpec) *Design {
	d.Connectors = append(d.Connectors, NamedConnector{Name: name, Spec: spec})
	return d
}

// AddInstance declares count instances of a component proctype.
func (d *Design) AddInstance(name, proc string, count int, args ...InstanceArg) *Design {
	d.Instances = append(d.Instances, Instance{Name: name, Proc: proc, Count: count, Args: args})
	return d
}

// AddInvariant declares a global safety invariant.
func (d *Design) AddInvariant(name, expr string) *Design {
	d.invariants = append(d.invariants, invariantDecl{Name: name, Expr: expr})
	return d
}

// AddGoal declares a delivery goal: from every reachable state it must
// remain possible to reach a state satisfying expr (AG EF expr). Unlike an
// LTL eventuality, a goal is insensitive to scheduler fairness, so it is
// the right way to state "no message is ever permanently lost".
func (d *Design) AddGoal(name, expr string) *Design {
	d.goals = append(d.goals, goalDecl{Name: name, Expr: expr})
	return d
}

// AddLTL declares an LTL property with its atomic propositions.
func (d *Design) AddLTL(name, formula string, props map[string]string) *Design {
	d.ltls = append(d.ltls, ltlDecl{Name: name, Formula: formula, Props: props})
	return d
}

// clone copies the design (slices copied, component source shared).
func (d *Design) clone() *Design {
	n := *d
	n.Connectors = append([]NamedConnector(nil), d.Connectors...)
	n.Instances = append([]Instance(nil), d.Instances...)
	n.invariants = append([]invariantDecl(nil), d.invariants...)
	n.goals = append([]goalDecl(nil), d.goals...)
	n.ltls = append([]ltlDecl(nil), d.ltls...)
	return &n
}

func (d *Design) connectorIndex(name string) (int, error) {
	for i, c := range d.Connectors {
		if c.Name == name {
			return i, nil
		}
	}
	return -1, fmt.Errorf("core: design %s has no connector %q", d.Name, name)
}

// WithSendPort returns a copy of the design with the named connector's
// send port replaced — the paper's plug-and-play edit. Components are
// untouched.
func (d *Design) WithSendPort(conn string, k blocks.SendPortKind) (*Design, error) {
	i, err := d.connectorIndex(conn)
	if err != nil {
		return nil, err
	}
	n := d.clone()
	n.Connectors[i].Spec = n.Connectors[i].Spec.WithSend(k)
	return n, nil
}

// WithRecvPort returns a copy with the named connector's receive port
// replaced.
func (d *Design) WithRecvPort(conn string, k blocks.RecvPortKind) (*Design, error) {
	i, err := d.connectorIndex(conn)
	if err != nil {
		return nil, err
	}
	n := d.clone()
	n.Connectors[i].Spec = n.Connectors[i].Spec.WithRecv(k)
	return n, nil
}

// WithChannel returns a copy with the named connector's channel replaced.
func (d *Design) WithChannel(conn string, k blocks.ChannelKind, size int) (*Design, error) {
	i, err := d.connectorIndex(conn)
	if err != nil {
		return nil, err
	}
	n := d.clone()
	n.Connectors[i].Spec = n.Connectors[i].Spec.WithChannel(k, size)
	return n, nil
}

// Build composes the design into a verifiable model system.
func (d *Design) Build(cache *blocks.Cache) (*blocks.Builder, error) {
	b, err := blocks.NewBuilder(d.Components, cache)
	if err != nil {
		return nil, err
	}
	conns := make(map[string]*blocks.Connector, len(d.Connectors))
	for _, nc := range d.Connectors {
		if _, dup := conns[nc.Name]; dup {
			return nil, fmt.Errorf("core: duplicate connector %q", nc.Name)
		}
		c, err := b.NewConnector(nc.Name, nc.Spec)
		if err != nil {
			return nil, fmt.Errorf("core: connector %s: %w", nc.Name, err)
		}
		conns[nc.Name] = c
	}
	for _, in := range d.Instances {
		count := in.Count
		if count < 1 {
			count = 1
		}
		for k := 0; k < count; k++ {
			label := in.Name
			if count > 1 {
				label = fmt.Sprintf("%s%d", in.Name, k)
			}
			args := make([]model.Arg, 0, 2*len(in.Args))
			for ai, a := range in.Args {
				switch a.Kind {
				case ArgInt:
					args = append(args, model.Int(a.N))
				case ArgSend, ArgRecv:
					c, ok := conns[a.Conn]
					if !ok {
						return nil, fmt.Errorf("core: instance %s references unknown connector %q", in.Name, a.Conn)
					}
					var ep blocks.Endpoint
					var err error
					epName := fmt.Sprintf("%s.a%d", label, ai)
					if a.Kind == ArgSend {
						ep, err = c.AddSender(epName)
					} else {
						ep, err = c.AddReceiver(epName)
					}
					if err != nil {
						return nil, fmt.Errorf("core: instance %s: %w", in.Name, err)
					}
					args = append(args, model.Chan(ep.Sig), model.Chan(ep.Dat))
				default:
					return nil, fmt.Errorf("core: instance %s: bad argument kind", in.Name)
				}
			}
			if _, err := b.Spawn(in.Proc, args...); err != nil {
				return nil, fmt.Errorf("core: instance %s: %w", in.Name, err)
			}
		}
	}
	return b, nil
}

// VerifyResults holds per-property verification outcomes; "safety" is the
// combined invariant/deadlock/assertion search.
type VerifyResults map[string]*checker.Result

// AllOK reports whether every property verified.
func (v VerifyResults) AllOK() bool {
	for _, r := range v {
		if !r.OK {
			return false
		}
	}
	return true
}

// Verify builds the design and checks every declared property.
func (d *Design) Verify(cache *blocks.Cache, opts checker.Options) (VerifyResults, error) {
	b, err := d.Build(cache)
	if err != nil {
		return nil, err
	}
	out := make(VerifyResults, 1+len(d.ltls))
	safetyOpts := opts
	for _, inv := range d.invariants {
		ci, err := checker.InvariantFromSource(b.Program(), inv.Name, inv.Expr)
		if err != nil {
			return nil, err
		}
		safetyOpts.Invariants = append(safetyOpts.Invariants, ci)
	}
	out["safety"] = checker.New(b.System(), safetyOpts).CheckSafety()
	for _, g := range d.goals {
		expr, err := b.Program().CompileGlobalExpr(g.Expr)
		if err != nil {
			return nil, fmt.Errorf("core: goal %s: %w", g.Name, err)
		}
		out[g.Name] = checker.New(b.System(), opts).CheckEventuallyReachable(expr)
	}
	for _, l := range d.ltls {
		props, err := checker.PropsFromSource(b.Program(), l.Props)
		if err != nil {
			return nil, err
		}
		out[l.Name] = checker.New(b.System(), opts).CheckLTL(l.Formula, props)
	}
	return out, nil
}

// RuntimeConnector instantiates the named connector as an executable
// pnprt connector — the same spec that was verified now runs on
// goroutines.
func (d *Design) RuntimeConnector(name string, opts ...pnprt.Option) (*pnprt.Connector, error) {
	i, err := d.connectorIndex(name)
	if err != nil {
		return nil, err
	}
	return pnprt.NewConnector(name, d.Connectors[i].Spec, opts...)
}
