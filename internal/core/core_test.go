package core

import (
	"context"
	"strings"
	"testing"
	"time"

	"pnp/internal/blocks"
	"pnp/internal/checker"
	"pnp/internal/pnprt"
)

func TestCatalogMatchesPaperFigure1(t *testing.T) {
	cat := Catalog()
	byKind := map[string]int{}
	names := map[string]bool{}
	for _, b := range cat {
		byKind[b.Kind]++
		names[b.Name] = true
		if b.Description == "" {
			t.Errorf("%s has no description", b.Name)
		}
	}
	if byKind["send-port"] != 5 {
		t.Errorf("send ports = %d, want 5 (Fig. 1)", byKind["send-port"])
	}
	if byKind["recv-port"] != 2 {
		t.Errorf("recv ports = %d, want 2", byKind["recv-port"])
	}
	if byKind["channel"] != 5 {
		t.Errorf("channels = %d, want 5 (1-slot, FIFO, priority, dropping + lossy)", byKind["channel"])
	}
	// Every cataloged block must exist as a compiled model in the library.
	b, err := blocks.NewBuilder("", nil)
	if err != nil {
		t.Fatal(err)
	}
	for name := range names {
		if b.Program().Proc(name) == nil {
			t.Errorf("catalog entry %s has no library model", name)
		}
	}
}

const counterComponents = `
byte sent, got;
proctype Producer(chan esig; chan edat; byte n) {
	byte i;
	mtype st;
	do
	:: i < n ->
	   sent = sent + 1;
	   edat!i + 1,0,0,0,1;
	   esig?st,_;
	   i = i + 1
	:: else -> break
	od
}
proctype Consumer(chan rsig; chan rdat; byte n) {
	mtype st;
	byte d, sid, sd;
	bit sel, rem;
	do
	:: got < n ->
	   rdat!0,0,0,0,1;
	   rsig?st,_;
	   rdat?d,sid,sd,sel,rem;
	   if
	   :: st == RECV_SUCC -> got = got + 1
	   :: else
	   fi
	:: else -> break
	od
}
`

func pipeline() *Design {
	d := NewDesign("pipeline", counterComponents)
	d.AddConnector("Wire", blocks.ConnectorSpec{
		Send: blocks.AsynBlockingSend, Channel: blocks.FIFOQueue, Size: 2, Recv: blocks.BlockingRecv,
	})
	d.AddInstance("prod", "Producer", 1, SendTo("Wire"), IntArg(2))
	d.AddInstance("cons", "Consumer", 1, RecvFrom("Wire"), IntArg(2))
	d.AddInvariant("conservation", "got <= sent")
	return d
}

func TestDesignVerify(t *testing.T) {
	res, err := pipeline().Verify(nil, checker.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllOK() {
		for name, r := range res {
			if !r.OK {
				t.Errorf("%s: %s", name, r.Summary())
			}
		}
	}
}

func TestPlugOperationsDoNotMutateOriginal(t *testing.T) {
	d := pipeline()
	d2, err := d.WithSendPort("Wire", blocks.SynBlockingSend)
	if err != nil {
		t.Fatal(err)
	}
	if d.Connectors[0].Spec.Send != blocks.AsynBlockingSend {
		t.Error("WithSendPort mutated the original design")
	}
	if d2.Connectors[0].Spec.Send != blocks.SynBlockingSend {
		t.Error("WithSendPort did not apply")
	}
	d3, err := d2.WithChannel("Wire", blocks.SingleSlot, 0)
	if err != nil {
		t.Fatal(err)
	}
	d4, err := d3.WithRecvPort("Wire", blocks.NonblockingRecv)
	if err != nil {
		t.Fatal(err)
	}
	if d4.Connectors[0].Spec.Channel != blocks.SingleSlot ||
		d4.Connectors[0].Spec.Recv != blocks.NonblockingRecv {
		t.Errorf("chained plugs = %+v", d4.Connectors[0].Spec)
	}
	if _, err := d.WithSendPort("NoSuch", blocks.SynBlockingSend); err == nil {
		t.Error("unknown connector accepted")
	}
}

func TestDesignSwappedVariantStillVerifies(t *testing.T) {
	cache := blocks.NewCache()
	d := pipeline()
	if _, err := d.Verify(cache, checker.Options{}); err != nil {
		t.Fatal(err)
	}
	d2, err := d.WithSendPort("Wire", blocks.SynBlockingSend)
	if err != nil {
		t.Fatal(err)
	}
	res, err := d2.Verify(cache, checker.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllOK() {
		t.Fatalf("swapped design failed: %v", res["safety"].Summary())
	}
	hits, misses := cache.Stats()
	if misses != 1 || hits != 1 {
		t.Errorf("cache stats = %d hits / %d misses; component models should be reused", hits, misses)
	}
}

func TestDesignLTL(t *testing.T) {
	d := pipeline()
	d.AddLTL("monotone", "[] (some -> X (some || true))", map[string]string{"some": "sent > 0"})
	res, err := d.Verify(nil, checker.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r := res["monotone"]; !r.OK {
		t.Errorf("monotone: %s", r.Summary())
	}
}

func TestDesignErrors(t *testing.T) {
	d := NewDesign("bad", "")
	d.AddConnector("C", blocks.ConnectorSpec{})
	if _, err := d.Build(nil); err == nil {
		t.Error("invalid connector spec accepted")
	}

	d2 := NewDesign("bad2", "")
	d2.AddConnector("C", blocks.ConnectorSpec{
		Send: blocks.AsynBlockingSend, Channel: blocks.SingleSlot, Recv: blocks.BlockingRecv,
	})
	d2.AddInstance("x", "NoProc", 1, SendTo("C"))
	if _, err := d2.Build(nil); err == nil || !strings.Contains(err.Error(), "NoProc") {
		t.Errorf("err = %v", err)
	}

	d3 := NewDesign("bad3", "")
	d3.AddConnector("C", blocks.ConnectorSpec{
		Send: blocks.AsynBlockingSend, Channel: blocks.SingleSlot, Recv: blocks.BlockingRecv,
	})
	d3.AddInstance("x", "PnPSender", 1, SendTo("Nowhere"), IntArg(1), IntArg(0))
	if _, err := d3.Build(nil); err == nil || !strings.Contains(err.Error(), "Nowhere") {
		t.Errorf("err = %v", err)
	}
}

func TestRuntimeConnectorFromDesign(t *testing.T) {
	d := pipeline()
	conn, err := d.RuntimeConnector("Wire")
	if err != nil {
		t.Fatal(err)
	}
	snd, err := conn.NewSender()
	if err != nil {
		t.Fatal(err)
	}
	rcv, err := conn.NewReceiver()
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(conn.Stop)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if st, err := snd.Send(ctx, pnprt.Message{Data: "x"}); err != nil || st != pnprt.SendSucc {
		t.Fatalf("Send = %v, %v", st, err)
	}
	if st, m, err := rcv.Receive(ctx, pnprt.RecvRequest{}); err != nil || st != pnprt.RecvSucc || m.Data != "x" {
		t.Fatalf("Receive = %v, %v, %v", st, m, err)
	}
	if _, err := d.RuntimeConnector("NoSuch"); err == nil {
		t.Error("unknown connector accepted")
	}
}
