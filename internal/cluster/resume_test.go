package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"testing"

	"pnp/internal/verifyd/client"
)

// captureStub is stubNode plus a record of the submission it accepted —
// the probe that proves the coordinator hands replicas a resume token
// when it re-places a job off a dead node.
type captureStub struct {
	*stubNode
	reqMu sync.Mutex
	req   client.JobRequest
}

func newCaptureStub() *captureStub {
	return &captureStub{stubNode: newStubNode()}
}

func (s *captureStub) lastReq() client.JobRequest {
	s.reqMu.Lock()
	defer s.reqMu.Unlock()
	return s.req
}

func (s *captureStub) handler() http.Handler {
	base := s.stubNode.handler()
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && r.URL.Path == "/v1/jobs" {
			var req client.JobRequest
			if err := json.NewDecoder(r.Body).Decode(&req); err == nil {
				s.reqMu.Lock()
				s.req = req
				s.reqMu.Unlock()
			}
		}
		base.ServeHTTP(w, r)
	})
}

// routeThrough finds a message count whose failover sequence starts at
// first and then second — deterministic, because node names are fixed.
func routeThrough(t *testing.T, c *Coordinator, first, second string) int {
	t.Helper()
	for msgs := 1; msgs <= 256; msgs++ {
		key := submissionKey(pingRequest(msgs))
		owners := c.ring.Owners(key[:], 2)
		if len(owners) == 2 && owners[0] == first && owners[1] == second {
			return msgs
		}
	}
	t.Fatalf("no ping variant walks the ring %s -> %s (hash or ring changed?)", first, second)
	return 0
}

// TestClusterDoubleFailoverCarriesResumeToken kills the first replica
// mid-job and then the second: each re-placement must carry a resume
// token pointing at the node that just died, and the job must still
// finish — on the only real worker — with the full failover history in
// its document.
func TestClusterDoubleFailoverCarriesResumeToken(t *testing.T) {
	f := newFabric()
	s1 := newCaptureStub()
	s2 := newCaptureStub()
	f.add(t, "s1", s1.handler())
	f.add(t, "s2", s2.handler())
	newWorker(t, f, "w1")
	hosts := []string{"http://s1", "http://s2", "http://w1"}
	c, reg := newTestCluster(t, f, hosts, nil)

	msgs := routeThrough(t, c, "http://s1", "http://s2")
	go func() {
		<-s1.submitted
		f.drop("s1")
		close(s1.die)
		<-s2.submitted
		f.drop("s2")
		close(s2.die)
	}()
	st, err := c.SubmitJob(context.Background(), pingRequest(msgs))
	if err != nil {
		t.Fatal(err)
	}
	done := waitJobStatus(t, c, st.ID)
	if done.Err != "" || done.Report == nil || !done.Report.OK {
		t.Fatalf("job lost in double failover: %+v", done)
	}
	if done.Node != "http://w1" {
		t.Fatalf("job finished on %s, want the surviving worker http://w1", done.Node)
	}
	if done.Failovers < 2 {
		t.Fatalf("failovers = %d, want >= 2", done.Failovers)
	}
	if done.Attempt != 3 {
		t.Fatalf("attempt = %d, want 3 (one run per node)", done.Attempt)
	}
	if done.ResumedFrom != "http://s2" {
		t.Fatalf("resumed_from = %q, want the second dead node http://s2", done.ResumedFrom)
	}

	// The original placement carries no token; the first re-placement
	// names the node that just died.
	if first := s1.lastReq(); first.Attempt != 0 || first.ResumeFrom != "" {
		t.Fatalf("fresh submission carried a resume token: attempt=%d resume_from=%q",
			first.Attempt, first.ResumeFrom)
	}
	second := s2.lastReq()
	if second.Attempt != 2 {
		t.Fatalf("re-placed submission attempt = %d, want 2", second.Attempt)
	}
	if second.ResumeFrom != "http://s1" {
		t.Fatalf("re-placed submission resume_from = %q, want http://s1", second.ResumeFrom)
	}

	if got := reg.Counter("cluster_failovers_total").Value(); got < 2 {
		t.Fatalf("cluster_failovers_total = %d, want >= 2", got)
	}
	for _, dead := range []string{"http://s1", "http://s2"} {
		if c.nodes[dead].healthy.Load() {
			t.Fatalf("dead node %s was not ejected", dead)
		}
	}
	if got := c.HealthyNodes(); got != 1 {
		t.Fatalf("HealthyNodes = %d, want 1", got)
	}
}
