package cluster

import (
	"pnp/internal/verifyd"
	"pnp/internal/verifyd/client"
)

// toReport converts the client's wire mirror of a report back into the
// server-side type the coordinator re-serves and caches. The two types
// are field-for-field mirrors of the same JSON document (the client
// deliberately avoids importing server packages); this copy crosses
// that boundary once, at the coordinator, instead of forcing every
// consumer to care.
func toReport(r *client.Report) *verifyd.Report {
	if r == nil {
		return nil
	}
	out := &verifyd.Report{
		System:    r.System,
		Processes: r.Processes,
		Channels:  r.Channels,
		OK:        r.OK,
		Failed:    r.Failed,
	}
	for _, p := range r.Properties {
		out.Properties = append(out.Properties, verifyd.PropertyVerdict{
			Name:           p.Name,
			Kind:           p.Kind,
			OK:             p.OK,
			Verdict:        p.Verdict,
			Message:        p.Message,
			Summary:        p.Summary,
			States:         p.States,
			Matched:        p.Matched,
			Transitions:    p.Transitions,
			Depth:          p.Depth,
			Reduced:        p.Reduced,
			Truncated:      p.Truncated,
			ElapsedMS:      p.ElapsedMS,
			Counterexample: p.Counterexample,
			MSC:            p.MSC,
			Unreached:      p.Unreached,
			Cached:         p.Cached,
		})
	}
	return out
}
