package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"pnp/internal/obs"
	"pnp/internal/sweep"
	"pnp/internal/verifyd"
	"pnp/internal/verifyd/client"
)

// pingPML is a minimal one-shot producer/consumer so cells verify in
// milliseconds (the same design the sweep tests use).
const pingPML = `
byte got;
proctype Producer(chan esig; chan edat; byte n) {
	byte i;
	mtype st;
	do
	:: i < n ->
	   edat!i + 1,0,0,0,1;
	   esig?st,_;
	   i = i + 1
	:: else -> break
	od
}
proctype Consumer(chan rsig; chan rdat; byte n) {
	mtype st;
	byte d, sid, sd;
	bit sel, rem;
	do
	:: got < n ->
	   rdat!0,0,0,0,1;
	   rsig?st,_;
	   rdat?d,sid,sd,sel,rem;
	   if
	   :: st == RECV_SUCC -> got = got + 1
	   :: else
	   fi
	:: else -> break
	od
}
`

func pingADL(msgs int) string {
	return fmt.Sprintf(`system ping {
    components "ping.pml"

    connector pipe {
        send    syn-blocking
        channel fifo(1)
        receive blocking
    }

    instance p = Producer(send pipe, %d)
    instance c = Consumer(recv pipe, %d)

    invariant safety "got >= 0"
    goal delivered "got == %d"
}
`, msgs, msgs, msgs)
}

func pingComponents() map[string]string {
	return map[string]string{"ping.pml": pingPML}
}

func pingRequest(msgs int) client.JobRequest {
	return client.JobRequest{ADL: pingADL(msgs), Components: pingComponents()}
}

func pingWire(channels []string) sweep.WireSpec {
	return sweep.WireSpec{
		Name:       "ping",
		Base:       pingADL(1),
		Components: pingComponents(),
		Connector:  "pipe",
		Channels:   channels,
	}
}

// fabric maps fixed logical hosts ("w1") to live httptest backends, so
// node names — and with them ring placement — are identical on every
// run regardless of which ports the OS hands out. Dropping a host
// severs it mid-flight: in-flight and future requests fail with a
// transport error, exactly what a killed worker looks like.
type fabric struct {
	mu      sync.Mutex
	targets map[string]string // logical host -> real host:port
}

func newFabric() *fabric { return &fabric{targets: make(map[string]string)} }

func (f *fabric) add(t *testing.T, host string, h http.Handler) {
	t.Helper()
	hs := httptest.NewServer(h)
	t.Cleanup(hs.Close)
	f.mu.Lock()
	f.targets[host] = hs.Listener.Addr().String()
	f.mu.Unlock()
}

func (f *fabric) drop(host string) {
	f.mu.Lock()
	delete(f.targets, host)
	f.mu.Unlock()
}

func (f *fabric) RoundTrip(req *http.Request) (*http.Response, error) {
	f.mu.Lock()
	real, ok := f.targets[req.URL.Host]
	f.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("fabric: no route to %s", req.URL.Host)
	}
	r2 := req.Clone(req.Context())
	r2.URL.Host = real
	return http.DefaultTransport.RoundTrip(r2)
}

// newWorker starts a real verification server behind the given logical
// host name.
func newWorker(t *testing.T, f *fabric, host string) {
	t.Helper()
	srv := verifyd.NewServer(verifyd.Config{Workers: 2, Registry: obs.NewRegistry()})
	t.Cleanup(func() { srv.Shutdown(context.Background()) })
	f.add(t, host, srv.Handler())
}

func newTestCluster(t *testing.T, f *fabric, hosts []string, mutate func(*Config)) (*Coordinator, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	cfg := Config{
		Nodes:         hosts,
		ProbeInterval: time.Minute, // probes fire once at startup, then stay out of the test's way
		Registry:      reg,
		ClientOptions: []client.Option{client.WithHTTPClient(&http.Client{Transport: f})},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		c.Shutdown(ctx)
	})
	return c, reg
}

func waitJobStatus(t *testing.T, c *Coordinator, id string) JobStatus {
	t.Helper()
	j, ok := c.lookupJob(id)
	if !ok {
		t.Fatalf("job %s not registered", id)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := c.WaitJob(ctx, j); err != nil {
		t.Fatalf("waiting for %s: %v", id, err)
	}
	return j.snapshot()
}

func TestClusterRoutesJobAndCachesResult(t *testing.T) {
	f := newFabric()
	workers := []string{"http://w1", "http://w2", "http://w3"}
	for _, w := range workers {
		newWorker(t, f, w[len("http://"):])
	}
	c, reg := newTestCluster(t, f, workers, nil)

	st, err := c.SubmitJob(context.Background(), pingRequest(2))
	if err != nil {
		t.Fatal(err)
	}
	done := waitJobStatus(t, c, st.ID)
	if done.Err != "" || done.Report == nil || !done.Report.OK {
		t.Fatalf("job did not pass: %+v", done)
	}
	if done.ClusterCached || done.Failovers != 0 {
		t.Fatalf("fresh job should run on a node: %+v", done)
	}
	key := submissionKey(pingRequest(2))
	owner := c.ring.Owner(key[:])
	if done.Node != owner {
		t.Fatalf("job ran on %s, ring owner is %s", done.Node, owner)
	}

	// A repeat of the same submission is answered by the coordinator's
	// own cache without touching any worker.
	st2, err := c.SubmitJob(context.Background(), pingRequest(2))
	if err != nil {
		t.Fatal(err)
	}
	done2 := waitJobStatus(t, c, st2.ID)
	if !done2.ClusterCached || done2.Node != "coordinator" {
		t.Fatalf("repeat not served from coordinator cache: %+v", done2)
	}
	if done2.Report == nil || !done2.Report.OK {
		t.Fatalf("cached report wrong: %+v", done2)
	}
	if got := reg.Counter("cluster_cache_hits_total").Value(); got < 1 {
		t.Fatalf("cluster_cache_hits_total = %d, want >= 1", got)
	}
}

// TestClusterPeeksWorkerCache: a fresh coordinator (empty LRU) over
// workers that already hold the answer serves the repeat from the ring
// owner's report cache — the peek that makes worker caches
// cluster-wide.
func TestClusterPeeksWorkerCache(t *testing.T) {
	f := newFabric()
	workers := []string{"http://w1", "http://w2", "http://w3"}
	for _, w := range workers {
		newWorker(t, f, w[len("http://"):])
	}
	a, _ := newTestCluster(t, f, workers, nil)
	st, err := a.SubmitJob(context.Background(), pingRequest(3))
	if err != nil {
		t.Fatal(err)
	}
	first := waitJobStatus(t, a, st.ID)
	if first.Err != "" || first.Report == nil {
		t.Fatalf("seed job failed: %+v", first)
	}

	b, reg := newTestCluster(t, f, workers, nil)
	st2, err := b.SubmitJob(context.Background(), pingRequest(3))
	if err != nil {
		t.Fatal(err)
	}
	done := waitJobStatus(t, b, st2.ID)
	if !done.ClusterCached {
		t.Fatalf("repeat should be cache-served: %+v", done)
	}
	if done.Node == "coordinator" || done.Node != first.Node {
		t.Fatalf("peek should hit the node that ran the job (%s), got %s", first.Node, done.Node)
	}
	if got := reg.Counter("cluster_cache_hits_total").Value(); got != 1 {
		t.Fatalf("cluster_cache_hits_total = %d, want 1", got)
	}
}

// stubNode accepts submissions and then hangs their waits until killed:
// the deterministic stand-in for a worker that dies mid-job.
type stubNode struct {
	mu        sync.Mutex
	submitted chan struct{} // closed on first accepted job
	die       chan struct{} // closed to abort every in-flight wait
}

func newStubNode() *stubNode {
	return &stubNode{submitted: make(chan struct{}), die: make(chan struct{})}
}

func (s *stubNode) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, client.Health{Status: "ok", Version: "stub"})
	})
	mux.HandleFunc("GET /v1/cache/", func(w http.ResponseWriter, r *http.Request) {
		verifyd.WriteError(w, http.StatusNotFound, verifyd.CodeNotFound, "stub holds nothing")
	})
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		select {
		case <-s.submitted:
		default:
			close(s.submitted)
		}
		s.mu.Unlock()
		writeJSON(w, http.StatusAccepted, client.Job{ID: "stub-job", State: "queued"})
	})
	mux.HandleFunc("GET /v1/jobs/", func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-s.die:
		case <-r.Context().Done():
		}
		panic(http.ErrAbortHandler) // sever the connection: the node "died"
	})
	return mux
}

// routeToStub finds a message count whose submission key the ring
// assigns to the stub — deterministic, because node names are fixed.
func routeToStub(t *testing.T, c *Coordinator, stub string) int {
	t.Helper()
	for msgs := 1; msgs <= 64; msgs++ {
		key := submissionKey(pingRequest(msgs))
		if c.ring.Owner(key[:]) == stub {
			return msgs
		}
	}
	t.Fatal("no ping variant routes to the stub (hash or ring changed?)")
	return 0
}

func TestClusterFailsOverWhenNodeDies(t *testing.T) {
	f := newFabric()
	stub := newStubNode()
	f.add(t, "stub", stub.handler())
	newWorker(t, f, "w1")
	newWorker(t, f, "w2")
	hosts := []string{"http://stub", "http://w1", "http://w2"}
	c, reg := newTestCluster(t, f, hosts, nil)

	msgs := routeToStub(t, c, "http://stub")
	go func() {
		<-stub.submitted
		f.drop("stub") // retries and probes now fail too
		close(stub.die)
	}()
	st, err := c.SubmitJob(context.Background(), pingRequest(msgs))
	if err != nil {
		t.Fatal(err)
	}
	done := waitJobStatus(t, c, st.ID)
	if done.Err != "" || done.Report == nil || !done.Report.OK {
		t.Fatalf("job lost in failover: %+v", done)
	}
	if done.Node == "http://stub" || done.Node == "" {
		t.Fatalf("job still attributed to the dead node: %+v", done)
	}
	if done.Failovers < 1 {
		t.Fatalf("failovers = %d, want >= 1", done.Failovers)
	}
	if got := reg.Counter("cluster_failovers_total").Value(); got < 1 {
		t.Fatalf("cluster_failovers_total = %d, want >= 1", got)
	}
	if n := c.nodes["http://stub"]; n.healthy.Load() {
		t.Fatal("dead node was not ejected")
	}
	if got := c.HealthyNodes(); got != 2 {
		t.Fatalf("HealthyNodes = %d, want 2", got)
	}
}

// waitSweepDone polls the coordinator's sweep resource until it
// finishes.
func waitSweepDone(t *testing.T, c *Coordinator, id string) sweep.Status {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		sj, ok := c.lookupSweep(id)
		if !ok {
			t.Fatalf("sweep %s not registered", id)
		}
		if st := sj.status(true); st.State == "done" {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("sweep did not finish in time")
	return sweep.Status{}
}

// sweepChannels is the dimension pool for cluster sweep tests: eight
// distinct cells, so placement touches every node of a small fleet.
var sweepChannels = []string{
	"fifo(1)", "single-slot", "fifo(2)", "fifo(3)",
	"fifo(4)", "fifo(5)", "priority(1)", "priority(2)",
	"dropping(1)", "dropping(2)", "lossy(1)", "lossy(2)",
}

// localVerdicts runs the same sweep in-process — the single-node ground
// truth the cluster must reproduce byte-for-byte.
func localVerdicts(t *testing.T, ws sweep.WireSpec) map[int]string {
	t.Helper()
	spec, err := ws.Compile()
	if err != nil {
		t.Fatal(err)
	}
	res, err := sweep.Run(context.Background(), spec, sweep.Config{})
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[int]string, len(res.Cells))
	for _, cell := range res.Cells {
		out[cell.Index] = cell.Verdict
	}
	return out
}

func TestClusterSweepMatchesSingleNode(t *testing.T) {
	f := newFabric()
	workers := []string{"http://w1", "http://w2", "http://w3"}
	for _, w := range workers {
		newWorker(t, f, w[len("http://"):])
	}
	c, _ := newTestCluster(t, f, workers, nil)

	ws := pingWire(sweepChannels)
	want := localVerdicts(t, ws)

	st, err := c.StartSweep(context.Background(), ws)
	if err != nil {
		t.Fatal(err)
	}
	final := waitSweepDone(t, c, st.ID)
	if final.Result == nil || final.Err != "" {
		t.Fatalf("sweep failed: %+v", final)
	}
	if len(final.Result.Cells) != len(want) {
		t.Fatalf("cells: got %d, want %d", len(final.Result.Cells), len(want))
	}
	nodes := make(map[string]bool)
	for _, cell := range final.Result.Cells {
		if cell.Verdict != want[cell.Index] {
			t.Errorf("cell %d (%s): verdict %q, single-node says %q",
				cell.Index, cell.Connector, cell.Verdict, want[cell.Index])
		}
		if cell.Node == "" {
			t.Errorf("cell %d has no node attribution", cell.Index)
		}
		nodes[cell.Node] = true
	}
	if len(nodes) < 2 {
		t.Errorf("all cells on %v — hash routing should spread 8 cells over 3 nodes", nodes)
	}

	// Resubmitting the identical sweep is answered from the cluster
	// cache: zero misses, every non-deduped cell a hit.
	st2, err := c.StartSweep(context.Background(), ws)
	if err != nil {
		t.Fatal(err)
	}
	final2 := waitSweepDone(t, c, st2.ID)
	if final2.Result == nil {
		t.Fatalf("resubmit failed: %+v", final2)
	}
	if final2.Result.CacheMisses != 0 {
		t.Fatalf("resubmit missed the cache %d times", final2.Result.CacheMisses)
	}
	if final2.Result.CacheHits == 0 {
		t.Fatal("resubmit recorded no cache hits")
	}
	for _, cell := range final2.Result.Cells {
		if cell.Verdict != want[cell.Index] {
			t.Errorf("cached cell %d: verdict %q, want %q", cell.Index, cell.Verdict, want[cell.Index])
		}
	}
}

func TestClusterSweepSurvivesWorkerKill(t *testing.T) {
	f := newFabric()
	stub := newStubNode()
	f.add(t, "stub", stub.handler())
	newWorker(t, f, "w1")
	newWorker(t, f, "w2")
	c, reg := newTestCluster(t, f, []string{"http://stub", "http://w1", "http://w2"}, nil)

	ws := pingWire(sweepChannels)
	want := localVerdicts(t, ws)

	// Confirm the ring sends at least one cell to the stub, so the kill
	// below actually interrupts the sweep. Deterministic: names fixed.
	spec, err := ws.Compile()
	if err != nil {
		t.Fatal(err)
	}
	cells, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	stubOwned := 0
	for _, cell := range cells {
		key := submissionKey(client.JobRequest{ADL: cell.Source, Components: spec.Components})
		if c.ring.Owner(key[:]) == "http://stub" {
			stubOwned++
		}
	}
	if stubOwned == 0 {
		t.Fatal("no cell routes to the stub; widen sweepChannels")
	}

	go func() {
		<-stub.submitted
		f.drop("stub")
		close(stub.die)
	}()
	st, err := c.StartSweep(context.Background(), ws)
	if err != nil {
		t.Fatal(err)
	}
	final := waitSweepDone(t, c, st.ID)
	if final.Result == nil || final.Err != "" {
		t.Fatalf("sweep failed: %+v", final)
	}
	for _, cell := range final.Result.Cells {
		if cell.Err != "" {
			t.Errorf("cell %d errored after failover: %s", cell.Index, cell.Err)
		}
		if cell.Verdict != want[cell.Index] {
			t.Errorf("cell %d: verdict %q, single-node says %q", cell.Index, cell.Verdict, want[cell.Index])
		}
		if cell.Node == "http://stub" {
			t.Errorf("cell %d attributed to the killed node", cell.Index)
		}
	}
	if got := reg.Counter("cluster_failovers_total").Value(); got < 1 {
		t.Fatalf("cluster_failovers_total = %d, want >= 1 (stub owned %d cells)", got, stubOwned)
	}
}

func TestClusterBadSubmissionFailsFast(t *testing.T) {
	f := newFabric()
	newWorker(t, f, "w1")
	newWorker(t, f, "w2")
	c, _ := newTestCluster(t, f, []string{"http://w1", "http://w2"}, nil)

	_, err := c.SubmitJob(context.Background(), client.JobRequest{ADL: "system broken {"})
	var ae *client.APIError
	if !errors.As(err, &ae) {
		t.Fatalf("want a relayed *APIError, got %v", err)
	}
	if ae.Status < 400 || ae.Status >= 500 {
		t.Fatalf("bad ADL should be a 4xx, got %d", ae.Status)
	}
	if ae.Line == 0 {
		t.Fatalf("ADL error lost its source position: %+v", ae)
	}
	c.mu.Lock()
	orphans := len(c.jobs)
	c.mu.Unlock()
	if orphans != 0 {
		t.Fatalf("failed submission left %d orphan jobs", orphans)
	}
}

func TestClusterDrainingRejectsSubmissions(t *testing.T) {
	f := newFabric()
	newWorker(t, f, "w1")
	c, _ := newTestCluster(t, f, []string{"http://w1"}, nil)
	if err := c.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := c.SubmitJob(context.Background(), pingRequest(1)); !errors.Is(err, verifyd.ErrDraining) {
		t.Fatalf("submit while draining: %v, want ErrDraining", err)
	}
	if _, err := c.StartSweep(context.Background(), pingWire([]string{"fifo(1)"})); !errors.Is(err, verifyd.ErrDraining) {
		t.Fatalf("sweep while draining: %v, want ErrDraining", err)
	}
}

// TestCoordinatorServesV1Contract drives the coordinator through the
// same typed client pnpverify -remote and pnpsweep -remote use — the
// wire-compatibility claim, end to end.
func TestCoordinatorServesV1Contract(t *testing.T) {
	f := newFabric()
	workers := []string{"http://w1", "http://w2", "http://w3"}
	for _, w := range workers {
		newWorker(t, f, w[len("http://"):])
	}
	c, _ := newTestCluster(t, f, workers, nil)
	hs := httptest.NewServer(c.Handler())
	t.Cleanup(hs.Close)

	cc := client.New(hs.URL, client.WithRetries(0))
	ctx := context.Background()

	job, err := cc.Submit(ctx, pingRequest(2))
	if err != nil {
		t.Fatal(err)
	}
	done, err := cc.Wait(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done.Report == nil || !done.Report.OK {
		t.Fatalf("remote job did not pass: %+v", done)
	}
	if done.Node == "" {
		t.Fatal("job document lost its node attribution over the wire")
	}

	sst, err := cc.SubmitSweep(ctx, client.SweepSpec{
		Name: "ping", Base: pingADL(1), Components: pingComponents(),
		Connector: "pipe", Channels: []string{"fifo(1)", "single-slot"},
	})
	if err != nil {
		t.Fatal(err)
	}
	var streamed []client.SweepCell
	final, err := cc.StreamSweep(ctx, sst.ID, func(cell client.SweepCell) {
		streamed = append(streamed, cell)
	})
	if err != nil {
		t.Fatal(err)
	}
	if final.Result == nil || final.Result.Total != 2 || len(streamed) != 2 {
		t.Fatalf("sweep stream: final=%+v streamed=%d", final, len(streamed))
	}
	for _, cell := range streamed {
		if cell.Node == "" {
			t.Errorf("streamed cell %d has no node", cell.Index)
		}
	}

	h, err := cc.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Fatalf("healthz: %+v", h)
	}
	if err := cc.Ready(ctx); err != nil {
		t.Fatalf("readyz: %v", err)
	}

	// Draining flips readyz to a Temporary 503, like a single pnpd.
	if err := c.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	err = cc.Ready(ctx)
	var ae *client.APIError
	if !errors.As(err, &ae) || !ae.Temporary() {
		t.Fatalf("readyz while draining: %v, want Temporary 503", err)
	}
}

// BenchmarkClusterRouteOverhead measures the coordinator's per-job
// routing cost — content hash plus ring walk plus health triage — the
// fixed tax a job pays before any network I/O.
func BenchmarkClusterRouteOverhead(b *testing.B) {
	reg := obs.NewRegistry()
	hosts := make([]string, 8)
	for i := range hosts {
		hosts[i] = fmt.Sprintf("http://worker-%d:7447", i)
	}
	c, err := New(Config{Nodes: hosts, ProbeInterval: time.Hour, Registry: reg})
	if err != nil {
		b.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		c.Shutdown(ctx)
	}()
	req := pingRequest(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := submissionKey(req)
		if len(c.route(key)) == 0 {
			b.Fatal("no candidates")
		}
	}
}
