package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"time"

	"pnp/internal/obs/tracing"
	"pnp/internal/verifyd"
	"pnp/internal/verifyd/client"
	"sync"
)

// cjob is one job as the coordinator tracks it: the submission (kept
// for re-placement), where it currently runs, and eventually its
// report.
type cjob struct {
	id        string
	submitted time.Time
	key       verifyd.CacheKey
	req       client.JobRequest
	traceID   string
	span      *tracing.Span

	mu            sync.Mutex
	state         string // "running" or "done"
	report        *verifyd.Report
	node          string
	remoteID      string
	failovers     int
	attempt       int    // executions so far (0 = served from cache)
	resumedFrom   string // node whose checkpoint the current attempt resumes
	clusterCached bool
	cacheHits     int
	cacheMisses   int
	modules       []client.ModuleInfo
	modReused     int
	modCompiled   int
	workers       int
	errMsg        string
	done          chan struct{} // closed once state is "done"
}

// JobStatus is the coordinator's job resource — the single-node job
// document extended with placement fields (node, remote_id, failovers,
// cluster_cached), so existing clients decode it unchanged and
// cluster-aware ones see the routing.
type JobStatus struct {
	ID          string          `json:"id"`
	State       string          `json:"state"`
	Submitted   time.Time       `json:"submitted"`
	Report      *verifyd.Report `json:"report,omitempty"`
	CacheHits   int             `json:"cache_hits"`
	CacheMisses int             `json:"cache_misses"`
	Workers     int             `json:"workers,omitempty"`
	TraceID     string          `json:"trace_id,omitempty"`

	// Module accounting forwarded from the worker that ran the job
	// (since PR10); zero/empty when a cache tier answered.
	Modules         []client.ModuleInfo `json:"modules,omitempty"`
	ModulesTotal    int                 `json:"modules_total,omitempty"`
	ModulesReused   int                 `json:"modules_reused,omitempty"`
	ModulesCompiled int                 `json:"modules_compiled,omitempty"`

	Node     string `json:"node,omitempty"`
	RemoteID string `json:"remote_id,omitempty"`
	// Failovers counts re-placements; Attempt counts executions (one
	// more than failovers that actually re-ran, zero when the job was
	// served from a cache tier); ResumedFrom names the node whose search
	// checkpoint the current attempt picked up, empty for fresh runs.
	Failovers     int    `json:"failovers,omitempty"`
	Attempt       int    `json:"attempt,omitempty"`
	ResumedFrom   string `json:"resumed_from,omitempty"`
	ClusterCached bool   `json:"cluster_cached,omitempty"`
	Err           string `json:"err,omitempty"`
}

func (j *cjob) snapshot() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobStatus{
		ID:              j.id,
		State:           j.state,
		Submitted:       j.submitted,
		Report:          j.report,
		CacheHits:       j.cacheHits,
		CacheMisses:     j.cacheMisses,
		Modules:         j.modules,
		ModulesTotal:    len(j.modules),
		ModulesReused:   j.modReused,
		ModulesCompiled: j.modCompiled,
		Workers:         j.workers,
		TraceID:         j.traceID,
		Node:            j.node,
		RemoteID:        j.remoteID,
		Failovers:       j.failovers,
		Attempt:         j.attempt,
		ResumedFrom:     j.resumedFrom,
		ClusterCached:   j.clusterCached,
		Err:             j.errMsg,
	}
}

func (j *cjob) setPlacement(node, remoteID string, attempt int, resumedFrom string) {
	j.mu.Lock()
	j.node, j.remoteID = node, remoteID
	j.attempt, j.resumedFrom = attempt, resumedFrom
	j.mu.Unlock()
}

func (j *cjob) bumpFailover() {
	j.mu.Lock()
	j.failovers++
	j.mu.Unlock()
}

// placement reads the node/remoteID pair for trace fetches.
func (j *cjob) placement() (node, remoteID string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.node, j.remoteID
}

// fatalSubmitErr reports whether a submission failure would repeat on
// every node: a 4xx that is not a drain signal (bad ADL, oversized
// body). Such errors surface to the caller instead of failing over.
func fatalSubmitErr(err error) bool {
	var ae *client.APIError
	return errors.As(err, &ae) && ae.Status < 500 && !ae.Temporary() &&
		ae.Status != http.StatusNotFound
}

// transportErr reports whether err carries no API envelope at all — the
// node is unreachable, the "dead, eject" signal (a Temporary APIError
// means the opposite: alive, telling us to go elsewhere).
func transportErr(err error) bool {
	var ae *client.APIError
	return !errors.As(err, &ae)
}

// SubmitJob routes one job into the cluster and returns its
// coordinator-side status. Placement is synchronous — a bad submission
// (ADL error) fails here with the worker's envelope, line and column
// included — while waiting and failover run in the background.
//
// The placement sequence per job: coordinator result cache, then the
// ring walk from the key's owner — each candidate first peeked for a
// cached report, then handed the job. A transport failure ejects the
// candidate and moves on; a drain (503) just moves on.
func (c *Coordinator) SubmitJob(ctx context.Context, req client.JobRequest) (JobStatus, error) {
	j, err := c.submitJob(ctx, req)
	if err != nil {
		return JobStatus{}, err
	}
	return j.snapshot(), nil
}

// submitJob is SubmitJob returning the live job handle; the sweep
// fan-out holds it to wait on cells without racing job-table eviction.
func (c *Coordinator) submitJob(ctx context.Context, req client.JobRequest) (*cjob, error) {
	if c.draining.Load() {
		return nil, verifyd.ErrDraining
	}
	key := submissionKey(req)
	jctx, span := c.tracer.StartSpan(ctx, "cluster-job", tracing.A("key", key.String()[:12]))
	j := &cjob{
		submitted: time.Now(),
		key:       key,
		req:       req,
		span:      span,
		state:     "running",
		done:      make(chan struct{}),
	}
	if span != nil {
		j.traceID = span.TraceID().String()
	}

	// Tier 1: the coordinator's own result cache.
	if rep, _, ok := c.cache.Get(key); ok {
		c.mCacheHits.Inc()
		c.register(j)
		c.finishCached(j, "coordinator", rep)
		return j, nil
	}

	cands := c.route(key)
	if len(cands) == 0 {
		c.closeSpan(j, "error", "no nodes on ring")
		return nil, fmt.Errorf("cluster: no nodes available")
	}
	var lastErr error
	for i, n := range cands {
		if i > 0 {
			j.bumpFailover()
			c.mFailovers.Inc()
		}
		// Tier 2: the candidate's report cache. The first candidate is
		// the ring owner — the node a repeat of this key was routed to
		// before — so this peek is what makes worker caches cluster-wide.
		rep, err := n.pc.CachePeek(ctx, key.String())
		switch {
		case err == nil && rep != nil:
			c.mCacheHits.Inc()
			c.register(j)
			c.finishCached(j, n.name, toReport(rep))
			return j, nil
		case err != nil && transportErr(err):
			c.eject(n, err)
			lastErr = err
			continue
		}
		rjob, err := n.rc.Submit(ctx, req)
		if err != nil {
			if fatalSubmitErr(err) {
				c.closeSpan(j, "error", err.Error())
				return nil, err
			}
			if transportErr(err) {
				c.eject(n, err)
			}
			lastErr = err
			continue
		}
		j.setPlacement(n.name, rjob.ID, 1, "")
		n.routed.Inc()
		if span != nil {
			span.SetAttr("node", n.name)
		}
		c.register(j)
		c.wg.Add(1)
		go c.driveJob(jctx, j, cands, i)
		return j, nil
	}
	c.closeSpan(j, "error", fmt.Sprintf("no node accepted the job: %v", lastErr))
	return nil, fmt.Errorf("cluster: no node accepted the job: %w", lastErr)
}

// driveJob waits for a placed job and fails it over along the remaining
// candidates when its node dies or drains mid-run. Re-submission
// carries a resume token — the attempt count and the previous node's
// URL — so the replica can fetch the interrupted search's checkpoint
// and continue it instead of re-exploring; when the previous node is
// truly dead (fetch fails) the replica degrades to a fresh search, and
// the content-addressed caches still make the retry cheap when the
// node got far enough to publish.
func (c *Coordinator) driveJob(ctx context.Context, j *cjob, cands []*node, idx int) {
	defer c.wg.Done()
	n := cands[idx]
	attempt := 1
	for {
		_, remoteID := j.placement()
		rjob, err := n.rc.Wait(ctx, remoteID)
		if err == nil {
			c.finishJob(j, n.name, rjob)
			return
		}
		if fatalSubmitErr(err) {
			c.failJob(j, err)
			return
		}
		if transportErr(err) {
			c.eject(n, err)
		}
		// A 404 also lands here: the node restarted and lost the job —
		// re-place it like any other failover.
		prev := n.name
		placed := false
		for idx++; idx < len(cands); idx++ {
			n = cands[idx]
			j.bumpFailover()
			c.mFailovers.Inc()
			req := j.req
			req.Attempt = attempt + 1
			req.ResumeFrom = prev
			rjob, serr := n.rc.Submit(ctx, req)
			if serr != nil {
				if fatalSubmitErr(serr) {
					c.failJob(j, serr)
					return
				}
				if transportErr(serr) {
					c.eject(n, serr)
				}
				err = serr
				continue
			}
			attempt++
			j.setPlacement(n.name, rjob.ID, attempt, prev)
			n.routed.Inc()
			c.logger.Warn("cluster: job failed over", "job_id", j.id, "node", n.name,
				"attempt", attempt, "resume_from", prev)
			placed = true
			break
		}
		if !placed {
			c.failJob(j, err)
			return
		}
	}
}

// register inserts the job into the coordinator's table under a fresh
// id.
func (c *Coordinator) register(j *cjob) {
	c.mu.Lock()
	c.nextJob++
	j.id = fmt.Sprintf("job-%d", c.nextJob)
	c.jobs[j.id] = j
	c.mu.Unlock()
	if j.span != nil {
		j.span.SetAttr("job_id", j.id)
	}
}

// retire records a completed job and evicts the oldest beyond the
// retention bound.
func (c *Coordinator) retire(id string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.jobOrder = append(c.jobOrder, id)
	for len(c.jobOrder) > c.cfg.RetainJobs {
		delete(c.jobs, c.jobOrder[0])
		c.jobOrder = c.jobOrder[1:]
	}
}

func (c *Coordinator) lookupJob(id string) (*cjob, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[id]
	return j, ok
}

// finishCached completes a job from a cache tier without running
// anything. node is "coordinator" for LRU hits, the worker's name for
// peek hits.
func (c *Coordinator) finishCached(j *cjob, node string, rep *verifyd.Report) {
	if node != "coordinator" && verifyd.Cacheable(rep) {
		c.cache.Put(j.key, rep, node)
	}
	j.mu.Lock()
	j.state = "done"
	j.report = rep
	j.node = node
	j.clusterCached = true
	if rep != nil {
		j.cacheHits = len(rep.Properties)
	}
	close(j.done)
	j.mu.Unlock()
	c.closeSpan(j, "cache", node)
	c.retire(j.id)
}

// finishJob completes a job from its node's final document and
// publishes the report into the coordinator cache.
func (c *Coordinator) finishJob(j *cjob, node string, rjob *client.Job) {
	rep := toReport(rjob.Report)
	if verifyd.Cacheable(rep) {
		c.cache.Put(j.key, rep, node)
	}
	j.mu.Lock()
	j.state = "done"
	j.report = rep
	j.node = node
	j.cacheHits = rjob.CacheHits
	j.cacheMisses = rjob.CacheMisses
	j.modules = rjob.Modules
	j.modReused = rjob.ModulesReused
	j.modCompiled = rjob.ModulesCompiled
	j.workers = rjob.Workers
	close(j.done)
	j.mu.Unlock()
	c.closeSpan(j, "node", node)
	c.retire(j.id)
}

// failJob completes a job with an error after every candidate refused
// it.
func (c *Coordinator) failJob(j *cjob, err error) {
	j.mu.Lock()
	j.state = "done"
	j.errMsg = err.Error()
	close(j.done)
	j.mu.Unlock()
	c.logger.Warn("cluster: job failed", "job_id", j.id, "err", err)
	c.closeSpan(j, "error", err.Error())
	c.retire(j.id)
}

func (c *Coordinator) closeSpan(j *cjob, attr, val string) {
	if j.span == nil {
		return
	}
	j.span.SetAttr(attr, val)
	j.span.End()
}

// WaitJob blocks until the job completes or ctx expires, returning the
// job's current status either way (nil error only on completion).
func (c *Coordinator) WaitJob(ctx context.Context, j *cjob) error {
	select {
	case <-j.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
