package cluster

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pnp/internal/obs"
	"pnp/internal/obs/tracing"
	"pnp/internal/verifyd"
	"pnp/internal/verifyd/client"
)

// Config parameterizes a cluster coordinator.
type Config struct {
	// Nodes are the worker base URLs (e.g. "http://10.0.0.1:7447").
	// At least one is required; duplicates are dropped.
	Nodes []string

	// Replicas is the virtual-node count per worker on the hash ring
	// (<= 0 selects DefaultReplicas).
	Replicas int

	// ProbeInterval is the health-probe period per node (default 2s);
	// ProbeTimeout bounds one probe (default 1s).
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration

	// FailAfter is the consecutive probe failures that eject a node
	// (default 2). A routing transport error ejects immediately — the
	// probe loop readmits the node when it answers again.
	FailAfter int

	// MaxAttempts bounds placement attempts per job across ring replicas
	// (<= 0 tries every node once).
	MaxAttempts int

	// CacheEntries bounds the coordinator-side result cache (reports by
	// submission key; default 1024).
	CacheEntries int

	// RetainJobs bounds completed coordinator jobs kept queryable
	// (default 256); RetainSweeps likewise for sweeps (default 64).
	RetainJobs   int
	RetainSweeps int

	// Registry receives the cluster metric families; nil disables them.
	Registry *obs.Registry
	// Tracer records coordinator spans; nil disables tracing.
	Tracer *tracing.Recorder
	// Logger receives lifecycle events; nil discards them.
	Logger *slog.Logger

	// ClientOptions are appended to every node client's options (tests
	// substitute transports; deployments tune retries).
	ClientOptions []client.Option
}

// node is one worker as the coordinator sees it.
type node struct {
	name string         // base URL, also the ring and metrics identity
	rc   *client.Client // routing client: 1 in-place retry, then failover
	pc   *client.Client // probe client: no retries

	healthy  atomic.Bool
	draining atomic.Bool

	mu      sync.Mutex
	last    *client.Health // most recent successful probe
	lastErr string         // most recent failure, for /v1/cluster

	routed *obs.Counter // cluster_jobs_routed_total{node}
}

func (n *node) noteHealth(h *client.Health) {
	n.mu.Lock()
	n.last, n.lastErr = h, ""
	n.mu.Unlock()
}

func (n *node) noteErr(err error) {
	n.mu.Lock()
	n.lastErr = err.Error()
	n.mu.Unlock()
}

// Coordinator fronts a fleet of pnpd workers behind the v1 wire
// contract. See the package comment for the routing and caching model.
type Coordinator struct {
	cfg    Config
	ring   *Ring
	nodes  map[string]*node
	order  []string // sorted node names
	logger *slog.Logger
	tracer *tracing.Recorder
	reg    *obs.Registry

	cache *reportLRU

	mNodesHealthy *obs.Gauge
	mFailovers    *obs.Counter
	mCacheHits    *obs.Counter

	mu         sync.Mutex
	jobs       map[string]*cjob
	jobOrder   []string // completed-job eviction order
	nextJob    int
	sweeps     map[string]*csweep
	sweepOrder []string
	nextSweep  int

	draining atomic.Bool
	stop     chan struct{}
	probeWG  sync.WaitGroup
	wg       sync.WaitGroup // job drivers and sweep runners
}

// New builds a coordinator over cfg.Nodes and starts its health-probe
// loops. Nodes start healthy — the optimistic default lets the first
// submission route immediately; the first probe round corrects it.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("cluster: no nodes configured")
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 2 * time.Second
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = time.Second
	}
	if cfg.FailAfter <= 0 {
		cfg.FailAfter = 2
	}
	if cfg.RetainJobs <= 0 {
		cfg.RetainJobs = 256
	}
	if cfg.RetainSweeps <= 0 {
		cfg.RetainSweeps = 64
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	c := &Coordinator{
		cfg:           cfg,
		ring:          NewRing(cfg.Replicas),
		nodes:         make(map[string]*node),
		logger:        logger,
		tracer:        cfg.Tracer,
		reg:           cfg.Registry,
		cache:         newReportLRU(cfg.CacheEntries, cfg.Registry),
		mNodesHealthy: cfg.Registry.Gauge("cluster_nodes_healthy"),
		mFailovers:    cfg.Registry.Counter("cluster_failovers_total"),
		mCacheHits:    cfg.Registry.Counter("cluster_cache_hits_total"),
		jobs:          make(map[string]*cjob),
		sweeps:        make(map[string]*csweep),
		stop:          make(chan struct{}),
	}
	for _, raw := range cfg.Nodes {
		name := normalizeNode(raw)
		if _, dup := c.nodes[name]; dup {
			continue
		}
		// Routing keeps one in-place retry: a blip is worth one revisit,
		// anything worse fails fast so placement moves to the next
		// replica instead of backing off against a dead node.
		rcOpts := append([]client.Option{client.WithRetries(1)}, cfg.ClientOptions...)
		pcOpts := append([]client.Option{client.WithRetries(0)}, cfg.ClientOptions...)
		n := &node{
			name:   name,
			rc:     client.New(name, rcOpts...),
			pc:     client.New(name, pcOpts...),
			routed: cfg.Registry.Counter(obs.Labels("cluster_jobs_routed_total", "node", name)),
		}
		n.healthy.Store(true)
		c.nodes[name] = n
		c.order = append(c.order, name)
		c.ring.Add(name)
	}
	sort.Strings(c.order)
	c.mNodesHealthy.Set(int64(len(c.nodes)))
	for _, name := range c.order {
		c.probeWG.Add(1)
		go c.probeLoop(c.nodes[name])
	}
	c.logger.Info("cluster: coordinator up", "nodes", len(c.nodes), "replicas", c.ring.replicas)
	return c, nil
}

// normalizeNode canonicalizes a node URL ("host:port" gains http://).
func normalizeNode(raw string) string {
	if len(raw) >= 7 && (raw[:7] == "http://" || (len(raw) >= 8 && raw[:8] == "https://")) {
		for len(raw) > 0 && raw[len(raw)-1] == '/' {
			raw = raw[:len(raw)-1]
		}
		return raw
	}
	return "http://" + raw
}

// Nodes lists the configured node names in sorted order.
func (c *Coordinator) Nodes() []string { return append([]string(nil), c.order...) }

// Draining reports whether Shutdown has begun.
func (c *Coordinator) Draining() bool { return c.draining.Load() }

// Shutdown stops accepting submissions, stops the probe loops, and
// waits (bounded by ctx) for in-flight jobs and sweeps to finish.
func (c *Coordinator) Shutdown(ctx context.Context) error {
	if !c.draining.CompareAndSwap(false, true) {
		return nil
	}
	close(c.stop)
	c.probeWG.Wait()
	done := make(chan struct{})
	go func() { c.wg.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// --- health probing ---

func (c *Coordinator) probeLoop(n *node) {
	defer c.probeWG.Done()
	fails := 0
	t := time.NewTicker(c.cfg.ProbeInterval)
	defer t.Stop()
	for {
		c.probeOnce(n, &fails)
		select {
		case <-c.stop:
			return
		case <-t.C:
		}
	}
}

func (c *Coordinator) probeOnce(n *node, fails *int) {
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.ProbeTimeout)
	defer cancel()
	h, err := n.pc.Health(ctx)
	if err != nil {
		*fails++
		n.noteErr(err)
		if *fails >= c.cfg.FailAfter {
			c.eject(n, err)
		}
		return
	}
	*fails = 0
	n.noteHealth(h)
	n.draining.Store(h.Draining)
	if n.healthy.CompareAndSwap(false, true) {
		c.logger.Info("cluster: node readmitted", "node", n.name, "version", h.Version)
		c.updateHealthyGauge()
	}
}

// eject marks a node unhealthy (no-op if it already is). Routing skips
// ejected nodes; the ring is untouched, so key ownership — and with it
// every healthy node's cache locality — survives the outage.
func (c *Coordinator) eject(n *node, err error) {
	n.noteErr(err)
	if n.healthy.CompareAndSwap(true, false) {
		c.logger.Warn("cluster: node ejected", "node", n.name, "err", err)
		c.updateHealthyGauge()
	}
}

func (c *Coordinator) updateHealthyGauge() {
	healthy := 0
	for _, n := range c.nodes {
		if n.healthy.Load() {
			healthy++
		}
	}
	c.mNodesHealthy.Set(int64(healthy))
}

// HealthyNodes reports how many nodes are currently admitted.
func (c *Coordinator) HealthyNodes() int {
	healthy := 0
	for _, name := range c.order {
		if c.nodes[name].healthy.Load() {
			healthy++
		}
	}
	return healthy
}

// --- routing ---

// route returns the placement sequence for a key: the ring-walk owners
// reordered so healthy non-draining nodes come first, then draining
// ones (alive, finishing in-flight work), and ejected nodes last — a
// final resort in case every probe verdict is stale. MaxAttempts caps
// the sequence.
func (c *Coordinator) route(key verifyd.CacheKey) []*node {
	names := c.ring.Owners(key[:], 0)
	var ready, draining, dead []*node
	for _, name := range names {
		n := c.nodes[name]
		switch {
		case !n.healthy.Load():
			dead = append(dead, n)
		case n.draining.Load():
			draining = append(draining, n)
		default:
			ready = append(ready, n)
		}
	}
	out := append(append(ready, draining...), dead...)
	if c.cfg.MaxAttempts > 0 && len(out) > c.cfg.MaxAttempts {
		out = out[:c.cfg.MaxAttempts]
	}
	return out
}

// submissionKey computes the cluster-wide content address of a job
// request — the same hash the worker computes on arrival (see
// verifyd.Submission), so ring placement, the coordinator cache, and
// worker cache peeks all speak one key.
func submissionKey(req client.JobRequest) verifyd.CacheKey {
	return verifyd.Submission{
		ADL:            req.ADL,
		Components:     req.Components,
		MaxStates:      req.MaxStates,
		MaxDepth:       req.MaxDepth,
		BFS:            req.BFS,
		IgnoreDeadlock: req.IgnoreDeadlock,
		PartialOrder:   req.PartialOrder,
		WeakFairness:   req.WeakFairness,
		StrongFairness: req.StrongFairness,
	}.Key()
}

// NodeInfo is one node's row in the GET /v1/cluster document.
type NodeInfo struct {
	Name     string         `json:"name"`
	Healthy  bool           `json:"healthy"`
	Draining bool           `json:"draining,omitempty"`
	Health   *client.Health `json:"health,omitempty"`
	Err      string         `json:"err,omitempty"`
}

// ClusterInfo is the GET /v1/cluster document.
type ClusterInfo struct {
	Nodes        []NodeInfo         `json:"nodes"`
	NodesHealthy int                `json:"nodes_healthy"`
	RingReplicas int                `json:"ring_replicas"`
	Cache        verifyd.CacheStats `json:"cache"`
}

// Info snapshots the cluster's state for GET /v1/cluster.
func (c *Coordinator) Info() ClusterInfo {
	ci := ClusterInfo{RingReplicas: c.ring.replicas, Cache: c.cache.Stats()}
	for _, name := range c.order {
		n := c.nodes[name]
		n.mu.Lock()
		ni := NodeInfo{
			Name:     n.name,
			Healthy:  n.healthy.Load(),
			Draining: n.draining.Load(),
			Health:   n.last,
			Err:      n.lastErr,
		}
		n.mu.Unlock()
		ci.Nodes = append(ci.Nodes, ni)
		if ni.Healthy {
			ci.NodesHealthy++
		}
	}
	return ci
}
