package cluster

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"time"

	"pnp/internal/adl"
	"pnp/internal/blocks"
	"pnp/internal/obs/tracing"
	"pnp/internal/sweep"
	"pnp/internal/verifyd"
	"pnp/internal/verifyd/client"
)

// csweep is one sweep as the coordinator tracks it: the wire-compatible
// twin of the single-node sweep service's job, with cells executed on
// ring-routed cluster jobs instead of an in-process server.
type csweep struct {
	id      string
	name    string
	started time.Time
	total   int
	traceID string

	mu         sync.Mutex
	cells      []sweep.CellResult
	result     *sweep.Result
	errMsg     string
	done       bool
	notify     chan struct{}       // closed and replaced on every update
	placements map[string][]string // node -> remote job ids (for trace merge)
}

func (sj *csweep) status(withResult bool) sweep.Status {
	sj.mu.Lock()
	defer sj.mu.Unlock()
	st := sweep.Status{
		ID: sj.id, Name: sj.name, State: "running", Started: sj.started,
		Total: sj.total, Done: len(sj.cells), TraceID: sj.traceID, Err: sj.errMsg,
	}
	if sj.done {
		st.State = "done"
		if withResult {
			st.Result = sj.result
		}
	}
	return st
}

func (sj *csweep) notePlacement(node, remoteID string) {
	if node == "" || node == "coordinator" || remoteID == "" {
		return
	}
	sj.mu.Lock()
	defer sj.mu.Unlock()
	for _, id := range sj.placements[node] {
		if id == remoteID {
			return
		}
	}
	sj.placements[node] = append(sj.placements[node], remoteID)
}

// StartSweep validates a sweep and launches its cluster fan-out in the
// background, returning the initial status. Cells are deduplicated by
// generated source (like the single-node engine) and each distinct cell
// becomes one cluster job, routed and failed over individually — so a
// node dying mid-sweep costs re-placing its in-flight cells, not the
// sweep.
func (c *Coordinator) StartSweep(ctx context.Context, ws sweep.WireSpec) (sweep.Status, error) {
	if c.draining.Load() {
		return sweep.Status{}, verifyd.ErrDraining
	}
	spec, err := ws.Compile()
	if err != nil {
		return sweep.Status{}, err
	}
	cells, err := spec.Expand()
	if err != nil {
		return sweep.Status{}, err
	}
	// Compose the first cell locally so bad designs fail the submission
	// with a 4xx (line/col included), not a background error on a worker.
	if _, err := adl.Load(cells[0].Source, func(path string) (string, error) {
		if text, ok := spec.Components[path]; ok {
			return text, nil
		}
		return "", fmt.Errorf("unknown component %q", path)
	}, blocks.NewCache()); err != nil {
		return sweep.Status{}, err
	}

	_, sspan := c.tracer.StartSpan(ctx, "sweep",
		tracing.A("name", spec.Name), tracing.A("cells", strconv.Itoa(len(cells))))

	c.mu.Lock()
	c.nextSweep++
	sj := &csweep{
		id:         fmt.Sprintf("sweep-%d", c.nextSweep),
		name:       spec.Name,
		started:    time.Now(),
		total:      len(cells),
		notify:     make(chan struct{}),
		placements: make(map[string][]string),
	}
	if sspan != nil {
		sj.traceID = sspan.TraceID().String()
		sspan.SetAttr("sweep_id", sj.id)
	}
	c.sweeps[sj.id] = sj
	c.mu.Unlock()
	c.logger.Info("cluster: sweep started", "sweep_id", sj.id, "name", spec.Name,
		"cells", len(cells), "trace_id", sj.traceID)

	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		runCtx := context.Background()
		if sspan != nil {
			runCtx = tracing.ContextWithSpan(runCtx, sspan)
		}
		res := c.runSweep(runCtx, sj, spec, cells)
		sj.mu.Lock()
		sj.result = res
		sj.done = true
		close(sj.notify)
		sj.notify = make(chan struct{})
		sj.mu.Unlock()
		if sspan != nil {
			sspan.SetAttr("passed", strconv.Itoa(res.Passed))
			sspan.SetAttr("failed", strconv.Itoa(res.Failed))
			sspan.End()
		}
		c.logger.Info("cluster: sweep done", "sweep_id", sj.id, "trace_id", sj.traceID,
			"passed", res.Passed, "failed", res.Failed, "dedup_hits", res.DedupHits)
		c.retireSweep(sj.id)
	}()
	return sj.status(false), nil
}

// runSweep executes the expanded cells as cluster jobs and aggregates
// the result exactly like the single-node engine: dedup by source,
// submit leaders, collect in index order. Per-cell failures (a cell no
// node would accept) land in the cell's Err; the sweep always
// completes.
func (c *Coordinator) runSweep(ctx context.Context, sj *csweep, spec sweep.Spec, cells []sweep.Cell) *sweep.Result {
	base := client.JobRequest{
		Components: spec.Components,
		TimeoutMS:  int(spec.Timeout / time.Millisecond),
	}
	if spec.MaxStates > 0 {
		ms := spec.MaxStates
		base.MaxStates = &ms
	}
	if spec.Workers > 0 {
		w := spec.Workers
		base.Workers = &w
	}

	type submission struct {
		job  *cjob
		err  error
		span *tracing.Span
	}
	leaders := make(map[string]int, len(cells))
	subs := make(map[int]*submission, len(cells))
	for _, cell := range cells {
		if _, ok := leaders[cell.Source]; ok {
			continue
		}
		leaders[cell.Source] = cell.Index
		cctx, cspan := c.tracer.StartSpan(ctx, "cell:"+strconv.Itoa(cell.Index),
			tracing.A("connector", cell.Connector))
		req := base
		req.ADL = cell.Source
		job, err := c.submitJob(cctx, req)
		subs[cell.Index] = &submission{job: job, err: err, span: cspan}
		if err != nil {
			cspan.SetAttr("error", err.Error())
			cspan.End()
		}
	}

	res := &sweep.Result{Name: spec.Name, Total: len(cells)}
	start := time.Now()
	for _, cell := range cells {
		leader := leaders[cell.Source]
		sub := subs[leader]
		cr := sweep.CellResult{
			Index:     cell.Index,
			Connector: cell.Connector,
			Send:      cell.Spec.Send.Token(),
			Channel:   cell.Spec.Channel.Token(),
			Size:      cell.Spec.Size,
			Recv:      cell.Spec.Recv.Token(),
			Faults:    cell.Faults,
			Companion: cell.Companion,
			Primary:   cell.Primary,
			Deduped:   leader != cell.Index,
		}
		switch {
		case sub.err != nil:
			cr.Verdict = "error"
			cr.Err = sub.err.Error()
		default:
			c.WaitJob(ctx, sub.job)
			snap := sub.job.snapshot()
			sj.notePlacement(snap.Node, snap.RemoteID)
			cr.Node = snap.Node
			if snap.Err != "" {
				cr.Verdict = "error"
				cr.Err = snap.Err
			} else {
				sweep.Classify(&cr, snap.Report)
			}
			if !cr.Deduped {
				cr.CacheHits = snap.CacheHits
				cr.CacheMisses = snap.CacheMisses
				cr.ModulesReused = snap.ModulesReused
				cr.ModulesCompiled = snap.ModulesCompiled
				if sub.span != nil {
					sub.span.SetAttr("verdict", cr.Verdict)
					sub.span.SetAttr("node", snap.Node)
					sub.span.SetAttr("job_id", snap.ID)
					sub.span.End()
				}
			}
		}
		// The single-node engine's cache accounting, plus the cluster
		// tier: a cell is cache-served when it deduped into another cell,
		// never missed (its node answered from caches), or was answered
		// by a cluster cache tier without running at all.
		if cr.Deduped {
			res.DedupHits++
		}
		res.CacheHits += cr.CacheHits
		res.CacheMisses += cr.CacheMisses
		res.ModulesReused += cr.ModulesReused
		res.ModulesCompiled += cr.ModulesCompiled
		if cr.Err == "" && cr.OK {
			res.Passed++
		} else {
			res.Failed++
		}
		res.Cells = append(res.Cells, cr)
		sj.mu.Lock()
		sj.cells = append(sj.cells, cr)
		close(sj.notify)
		sj.notify = make(chan struct{})
		sj.mu.Unlock()
	}
	res.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)
	return res
}

// retireSweep records a completed sweep and evicts the oldest beyond
// the retention bound.
func (c *Coordinator) retireSweep(id string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sweepOrder = append(c.sweepOrder, id)
	for len(c.sweepOrder) > c.cfg.RetainSweeps {
		delete(c.sweeps, c.sweepOrder[0])
		c.sweepOrder = c.sweepOrder[1:]
	}
}

func (c *Coordinator) lookupSweep(id string) (*csweep, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	sj, ok := c.sweeps[id]
	return sj, ok
}
