package cluster

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"

	"pnp/internal/artifact"
	"pnp/internal/obs/tracing"
	"pnp/internal/sweep"
	"pnp/internal/verifyd"
	"pnp/internal/verifyd/client"
)

// Handler returns the coordinator's HTTP API — the same v1 surface a
// single pnpd serves, so pnpverify -remote and pnpsweep -remote work
// against a cluster unchanged:
//
//	POST /v1/jobs               submit ADL (raw text or JSON envelope)
//	GET  /v1/jobs               list jobs
//	GET  /v1/jobs/{id}          job status (node/failovers included)
//	GET  /v1/jobs/{id}/wait     long-poll until done (or ?timeout=30s)
//	GET  /v1/jobs/{id}/trace    coordinator + worker spans as NDJSON
//	POST /v1/sweeps             submit a sweep -> cluster fan-out
//	GET  /v1/sweeps/{id}        sweep status; cells carry "node"
//	GET  /v1/sweeps/{id}/stream NDJSON cell stream
//	GET  /v1/sweeps/{id}/trace  coordinator + worker spans as NDJSON
//	GET  /v1/cluster            node table, ring shape, cache stats
//	GET  /v1/cache              coordinator result-cache statistics
//	GET  /v1/cache/{key}        peek the coordinator cache by key
//	GET  /v1/artifacts/{hash}   peek a module artifact on any healthy node
//	GET  /healthz               liveness + coordinator identity (JSON)
//	GET  /readyz                200 with >= 1 healthy node, else 503
//	GET  /metrics               Prometheus exposition (and /metrics.json)
//	GET  /debug/trace           flight-recorder listing
//
// Failure responses reuse the uniform verifyd error envelope; a worker
// 4xx (bad ADL) is relayed verbatim, line and column included.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", c.handleSubmitJob)
	mux.HandleFunc("GET /v1/jobs", c.handleJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", c.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/wait", c.handleJobWait)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", c.handleJobTrace)
	mux.HandleFunc("POST /v1/sweeps", c.handleSubmitSweep)
	mux.HandleFunc("GET /v1/sweeps", c.handleSweeps)
	mux.HandleFunc("GET /v1/sweeps/{id}", c.handleSweep)
	mux.HandleFunc("GET /v1/sweeps/{id}/stream", c.handleSweepStream)
	mux.HandleFunc("GET /v1/sweeps/{id}/trace", c.handleSweepTrace)
	mux.HandleFunc("GET /v1/cluster", c.handleCluster)
	mux.HandleFunc("GET /v1/cache", c.handleCacheStats)
	mux.HandleFunc("GET /v1/cache/{key}", c.handleCachePeek)
	mux.HandleFunc("GET /v1/artifacts/{hash}", c.handleArtifactPeek)
	mux.HandleFunc("GET /healthz", c.handleHealthz)
	mux.HandleFunc("GET /readyz", c.handleReadyz)
	if c.reg != nil {
		mux.Handle("/metrics", c.reg.Handler())
		mux.Handle("/metrics.json", c.reg.Handler())
	}
	if c.tracer != nil {
		mux.Handle("GET /debug/trace", c.tracer.Handler())
	}
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		verifyd.WriteError(w, http.StatusNotFound, verifyd.CodeNotFound, "no such route: "+r.URL.Path)
	})
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// relayErr maps a submission failure onto the uniform envelope: a
// worker's APIError is relayed verbatim (the coordinator is a proxy,
// not a translator), a drain is 503, and anything else — placement
// exhausted every node — is 503 unavailable, since the submission
// itself was never judged.
func relayErr(w http.ResponseWriter, err error) {
	var ae *client.APIError
	if errors.As(err, &ae) {
		if ae.Status == http.StatusServiceUnavailable {
			w.Header().Set("Retry-After", "1")
		}
		writeJSON(w, ae.Status, verifyd.ErrorBody{Error: verifyd.ErrorInfo{
			Code: ae.Code, Message: ae.Message, Line: ae.Line, Col: ae.Col}})
		return
	}
	if errors.Is(err, verifyd.ErrDraining) {
		verifyd.WriteError(w, http.StatusServiceUnavailable, verifyd.CodeUnavailable, err.Error())
		return
	}
	verifyd.WriteError(w, http.StatusServiceUnavailable, verifyd.CodeUnavailable, err.Error())
}

func (c *Coordinator) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			verifyd.WriteError(w, http.StatusRequestEntityTooLarge, verifyd.CodeTooLarge, "body exceeds 1MiB")
			return
		}
		verifyd.WriteError(w, http.StatusBadRequest, verifyd.CodeInvalidArgument, "reading body: "+err.Error())
		return
	}
	var req client.JobRequest
	trimmed := strings.TrimSpace(string(body))
	if strings.HasPrefix(trimmed, "{") {
		if err := json.Unmarshal(body, &req); err != nil {
			verifyd.WriteError(w, http.StatusBadRequest, verifyd.CodeInvalidArgument, "bad JSON envelope: "+err.Error())
			return
		}
	} else {
		req.ADL = trimmed
	}
	if strings.TrimSpace(req.ADL) == "" {
		verifyd.WriteError(w, http.StatusBadRequest, verifyd.CodeInvalidArgument, "empty ADL source")
		return
	}
	// Trace parenting from the request's traceparent over a background
	// context: the job outlives the 202.
	tctx := tracing.ContextWithRemote(context.Background(), tracing.Extract(r))
	st, err := c.SubmitJob(tctx, req)
	if err != nil {
		relayErr(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

func (c *Coordinator) handleJobs(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	jobs := make([]*cjob, 0, len(c.jobs))
	for _, j := range c.jobs {
		jobs = append(jobs, j)
	}
	c.mu.Unlock()
	out := struct {
		Jobs []JobStatus `json:"jobs"`
	}{Jobs: make([]JobStatus, 0, len(jobs))}
	for _, j := range jobs {
		st := j.snapshot()
		st.Report = nil // list view stays light, like the single-node API
		out.Jobs = append(out.Jobs, st)
	}
	sort.Slice(out.Jobs, func(i, k int) bool { return out.Jobs[i].Submitted.Before(out.Jobs[k].Submitted) })
	writeJSON(w, http.StatusOK, out)
}

func (c *Coordinator) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := c.lookupJob(r.PathValue("id"))
	if !ok {
		verifyd.WriteError(w, http.StatusNotFound, verifyd.CodeNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, j.snapshot())
}

func (c *Coordinator) handleJobWait(w http.ResponseWriter, r *http.Request) {
	j, ok := c.lookupJob(r.PathValue("id"))
	if !ok {
		verifyd.WriteError(w, http.StatusNotFound, verifyd.CodeNotFound, "no such job")
		return
	}
	ctx := r.Context()
	timeout := 30 * time.Second
	if ts := r.URL.Query().Get("timeout"); ts != "" {
		d, err := time.ParseDuration(ts)
		if err != nil || d <= 0 {
			verifyd.WriteError(w, http.StatusBadRequest, verifyd.CodeInvalidArgument, "bad timeout")
			return
		}
		timeout = d
	}
	var cancel context.CancelFunc
	ctx, cancel = context.WithTimeout(ctx, timeout)
	defer cancel()
	c.WaitJob(ctx, j) // expiry falls through: report current state
	writeJSON(w, http.StatusOK, j.snapshot())
}

// handleJobTrace streams the job's coordinator spans merged with the
// spans its worker recorded — the traceparent the coordinator forwards
// makes them one trace, so the merged stream renders as a single
// timeline covering routing and the remote search.
func (c *Coordinator) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := c.lookupJob(r.PathValue("id"))
	if !ok {
		verifyd.WriteError(w, http.StatusNotFound, verifyd.CodeNotFound, "no such job")
		return
	}
	if c.tracer == nil || j.traceID == "" {
		verifyd.WriteError(w, http.StatusNotFound, verifyd.CodeNotFound, "tracing disabled")
		return
	}
	spans := c.tracer.TraceHex(j.traceID)
	node, remoteID := j.placement()
	if n := c.nodes[node]; n != nil && remoteID != "" {
		if ws, err := n.rc.JobTrace(r.Context(), remoteID); err == nil {
			spans = mergeSpans(spans, ws)
		}
	}
	w.Header().Set("Content-Type", tracing.NDJSONContentType)
	tracing.WriteNDJSON(w, spans)
}

func (c *Coordinator) handleSubmitSweep(w http.ResponseWriter, r *http.Request) {
	var ws sweep.WireSpec
	body := http.MaxBytesReader(w, r.Body, 1<<20)
	if err := json.NewDecoder(body).Decode(&ws); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			verifyd.WriteError(w, http.StatusRequestEntityTooLarge, verifyd.CodeTooLarge, "body exceeds 1MiB")
			return
		}
		verifyd.WriteError(w, http.StatusBadRequest, verifyd.CodeInvalidArgument, "bad sweep spec: "+err.Error())
		return
	}
	tctx := tracing.ContextWithRemote(context.Background(), tracing.Extract(r))
	st, err := c.StartSweep(tctx, ws)
	if err != nil {
		verifyd.WriteADLError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

func (c *Coordinator) handleSweeps(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	sweeps := make([]*csweep, 0, len(c.sweeps))
	for _, sj := range c.sweeps {
		sweeps = append(sweeps, sj)
	}
	c.mu.Unlock()
	out := struct {
		Sweeps []sweep.Status `json:"sweeps"`
	}{Sweeps: make([]sweep.Status, 0, len(sweeps))}
	for _, sj := range sweeps {
		out.Sweeps = append(out.Sweeps, sj.status(false))
	}
	sort.Slice(out.Sweeps, func(i, k int) bool { return out.Sweeps[i].Started.Before(out.Sweeps[k].Started) })
	writeJSON(w, http.StatusOK, out)
}

func (c *Coordinator) handleSweep(w http.ResponseWriter, r *http.Request) {
	sj, ok := c.lookupSweep(r.PathValue("id"))
	if !ok {
		verifyd.WriteError(w, http.StatusNotFound, verifyd.CodeNotFound, "no such sweep")
		return
	}
	writeJSON(w, http.StatusOK, sj.status(true))
}

// streamLine mirrors the single-node sweep stream's line shape.
type streamLine struct {
	Cell  *sweep.CellResult `json:"cell,omitempty"`
	Sweep *sweep.Status     `json:"sweep,omitempty"`
}

func (c *Coordinator) handleSweepStream(w http.ResponseWriter, r *http.Request) {
	sj, ok := c.lookupSweep(r.PathValue("id"))
	if !ok {
		verifyd.WriteError(w, http.StatusNotFound, verifyd.CodeNotFound, "no such sweep")
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	seen := 0
	for {
		sj.mu.Lock()
		pending := append([]sweep.CellResult(nil), sj.cells[seen:]...)
		done := sj.done
		notify := sj.notify
		sj.mu.Unlock()
		for i := range pending {
			enc.Encode(streamLine{Cell: &pending[i]})
			seen++
		}
		if done {
			st := sj.status(true)
			enc.Encode(streamLine{Sweep: &st})
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
		select {
		case <-notify:
		case <-r.Context().Done():
			return
		}
	}
}

// handleSweepTrace merges the coordinator's sweep spans with every
// worker-side job trace the sweep touched.
func (c *Coordinator) handleSweepTrace(w http.ResponseWriter, r *http.Request) {
	sj, ok := c.lookupSweep(r.PathValue("id"))
	if !ok {
		verifyd.WriteError(w, http.StatusNotFound, verifyd.CodeNotFound, "no such sweep")
		return
	}
	if c.tracer == nil || sj.traceID == "" {
		verifyd.WriteError(w, http.StatusNotFound, verifyd.CodeNotFound, "tracing disabled")
		return
	}
	spans := c.tracer.TraceHex(sj.traceID)
	sj.mu.Lock()
	placements := make(map[string][]string, len(sj.placements))
	for node, ids := range sj.placements {
		placements[node] = append([]string(nil), ids...)
	}
	sj.mu.Unlock()
	for node, ids := range placements {
		n := c.nodes[node]
		if n == nil {
			continue
		}
		for _, id := range ids {
			if ws, err := n.rc.JobTrace(r.Context(), id); err == nil {
				spans = mergeSpans(spans, ws)
			}
		}
	}
	w.Header().Set("Content-Type", tracing.NDJSONContentType)
	tracing.WriteNDJSON(w, spans)
}

// mergeSpans appends remote spans, dropping ids already present, and
// keeps the stream in start order.
func mergeSpans(have, more []tracing.SpanData) []tracing.SpanData {
	seen := make(map[string]bool, len(have))
	for _, s := range have {
		seen[s.SpanID] = true
	}
	for _, s := range more {
		if !seen[s.SpanID] {
			seen[s.SpanID] = true
			have = append(have, s)
		}
	}
	sort.SliceStable(have, func(i, j int) bool { return have[i].Start.Before(have[j].Start) })
	return have
}

func (c *Coordinator) handleCluster(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.Info())
}

func (c *Coordinator) handleCacheStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Coordinator verifyd.CacheStats `json:"coordinator"`
	}{c.cache.Stats()})
}

// handleCachePeek answers from the coordinator tier only — peeking
// workers is the coordinator's job on submission, not the client's.
func (c *Coordinator) handleCachePeek(w http.ResponseWriter, r *http.Request) {
	raw := r.PathValue("key")
	b, err := hex.DecodeString(raw)
	if err != nil || len(b) != sha256.Size {
		verifyd.WriteError(w, http.StatusBadRequest, verifyd.CodeInvalidArgument,
			"cache key must be 64 hex characters")
		return
	}
	var key verifyd.CacheKey
	copy(key[:], b)
	rep, node, ok := c.cache.Get(key)
	if !ok {
		verifyd.WriteError(w, http.StatusNotFound, verifyd.CodeNotFound, "no cached report for key "+raw)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Key    string          `json:"key"`
		Node   string          `json:"node"`
		Report *verifyd.Report `json:"report"`
	}{raw, node, rep})
}

// handleArtifactPeek resolves a module artifact by fanning the peek out
// across healthy nodes (since PR10). Artifacts are content-addressed,
// so any node's copy is the copy — the first hit answers; a miss
// everywhere is a plain 404. Unlike /v1/cache/{key}, the coordinator
// holds no artifact tier of its own: modules live where compilation
// happened.
func (c *Coordinator) handleArtifactPeek(w http.ResponseWriter, r *http.Request) {
	raw := r.PathValue("hash")
	if _, err := artifact.ParseHash(raw); err != nil {
		verifyd.WriteError(w, http.StatusBadRequest, verifyd.CodeInvalidArgument,
			"artifact hash must be 64 hex characters")
		return
	}
	for _, name := range c.Nodes() {
		n := c.nodes[name]
		if n == nil || !n.healthy.Load() {
			continue
		}
		art, err := n.rc.Artifact(r.Context(), raw)
		if err != nil || art == nil {
			continue
		}
		writeJSON(w, http.StatusOK, art)
		return
	}
	verifyd.WriteError(w, http.StatusNotFound, verifyd.CodeNotFound, "no artifact for hash "+raw)
}

// CoordinatorHealth is the coordinator's GET /healthz body.
type CoordinatorHealth struct {
	Status       string `json:"status"`
	Role         string `json:"role"`
	Version      string `json:"version"`
	Nodes        int    `json:"nodes"`
	NodesHealthy int    `json:"nodes_healthy"`
	CacheEntries int    `json:"cache_entries"`
	Jobs         int    `json:"jobs"`
	Draining     bool   `json:"draining,omitempty"`
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	jobs := len(c.jobs)
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, CoordinatorHealth{
		Status:       "ok",
		Role:         "coordinator",
		Version:      verifyd.Version,
		Nodes:        len(c.nodes),
		NodesHealthy: c.HealthyNodes(),
		CacheEntries: c.cache.Stats().Entries,
		Jobs:         jobs,
		Draining:     c.draining.Load(),
	})
}

func (c *Coordinator) handleReadyz(w http.ResponseWriter, r *http.Request) {
	switch {
	case c.draining.Load():
		verifyd.WriteError(w, http.StatusServiceUnavailable, verifyd.CodeUnavailable, "draining")
	case c.HealthyNodes() == 0:
		verifyd.WriteError(w, http.StatusServiceUnavailable, verifyd.CodeUnavailable, "no healthy nodes")
	default:
		writeJSON(w, http.StatusOK, struct {
			Status string `json:"status"`
		}{"ready"})
	}
}
