package cluster

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"

	"pnp/internal/verifyd/client"
)

// TestCoordinatorArtifactPeek: after a job runs on some node, the
// coordinator resolves any of its module artifacts by fanning the peek
// across the fleet — the caller does not need to know which node
// compiled the module. Module accounting flows through the coordinator
// job document on the way.
func TestCoordinatorArtifactPeek(t *testing.T) {
	f := newFabric()
	workers := []string{"http://w1", "http://w2"}
	for _, w := range workers {
		newWorker(t, f, w[len("http://"):])
	}
	c, _ := newTestCluster(t, f, workers, nil)
	hs := httptest.NewServer(c.Handler())
	t.Cleanup(hs.Close)
	cc := client.New(hs.URL, client.WithRetries(0))
	ctx := context.Background()

	job, err := cc.Submit(ctx, pingRequest(2))
	if err != nil {
		t.Fatal(err)
	}
	done, err := cc.Wait(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(done.Modules) == 0 || done.ModulesTotal != len(done.Modules) {
		t.Fatalf("coordinator job document must carry the module DAG: %+v", done)
	}

	// Every module of the job resolves through the coordinator route.
	for _, m := range done.Modules {
		art, err := cc.Artifact(ctx, m.Hash)
		if err != nil {
			t.Fatalf("artifact %s: %v", m.Hash, err)
		}
		if art == nil {
			t.Fatalf("artifact %s must be resolvable somewhere in the fleet", m.Hash)
		}
		if art.Hash != m.Hash || art.Kind != m.Kind {
			t.Fatalf("artifact %s came back as %+v", m.Hash, art)
		}
	}

	// Absent hash: 404 mapped to (nil, nil) by the typed client.
	if art, err := cc.Artifact(ctx, strings.Repeat("0", 64)); err != nil || art != nil {
		t.Fatalf("absent artifact = (%+v, %v), want (nil, nil)", art, err)
	}
}
