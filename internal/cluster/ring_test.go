package cluster

import (
	"fmt"
	"testing"
)

// ringKeys generates n distinct synthetic content-address keys.
func ringKeys(n int) [][]byte {
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key-%d", i))
	}
	return keys
}

// ownerMap snapshots every key's owner.
func ownerMap(r *Ring, keys [][]byte) map[string]string {
	m := make(map[string]string, len(keys))
	for _, k := range keys {
		m[string(k)] = r.Owner(k)
	}
	return m
}

func TestRingDeterministicAcrossInsertionOrder(t *testing.T) {
	keys := ringKeys(2000)
	a := NewRing(0)
	for _, n := range []string{"http://w1", "http://w2", "http://w3"} {
		a.Add(n)
	}
	b := NewRing(0)
	for _, n := range []string{"http://w3", "http://w1", "http://w2"} {
		b.Add(n)
	}
	am, bm := ownerMap(a, keys), ownerMap(b, keys)
	for k, owner := range am {
		if bm[k] != owner {
			t.Fatalf("key %q: owner %q vs %q under different insertion order", k, owner, bm[k])
		}
	}
}

func TestRingBalance(t *testing.T) {
	r := NewRing(0)
	nodes := []string{"http://w1", "http://w2", "http://w3", "http://w4"}
	for _, n := range nodes {
		r.Add(n)
	}
	keys := ringKeys(20000)
	counts := make(map[string]int)
	for _, k := range keys {
		counts[r.Owner(k)]++
	}
	fair := len(keys) / len(nodes)
	for _, n := range nodes {
		if c := counts[n]; c < fair/2 || c > fair*2 {
			t.Errorf("node %s owns %d keys, fair share %d — load ratio out of band", n, c, fair)
		}
	}
}

// TestRingMinimalDisruptionJoin is the consistent-hashing contract: a
// node joining an N-node ring moves ~1/(N+1) of the key space and
// every moved key moves TO the new node — no key shuffles between
// surviving nodes, so their caches stay warm.
func TestRingMinimalDisruptionJoin(t *testing.T) {
	keys := ringKeys(20000)
	r := NewRing(0)
	for _, n := range []string{"http://w1", "http://w2", "http://w3"} {
		r.Add(n)
	}
	before := ownerMap(r, keys)
	r.Add("http://w4")
	after := ownerMap(r, keys)

	moved := 0
	for k, prev := range before {
		if now := after[k]; now != prev {
			moved++
			if now != "http://w4" {
				t.Fatalf("key %q moved %s -> %s, not to the joining node", k, prev, now)
			}
		}
	}
	frac := float64(moved) / float64(len(keys))
	// Expected 1/4; allow a generous band around it.
	if frac < 0.10 || frac > 0.45 {
		t.Fatalf("join moved %.1f%% of keys, want ~25%%", 100*frac)
	}
}

// TestRingMinimalDisruptionLeave: a leaving node's keys redistribute
// over the survivors; keys it did not own stay put.
func TestRingMinimalDisruptionLeave(t *testing.T) {
	keys := ringKeys(20000)
	r := NewRing(0)
	for _, n := range []string{"http://w1", "http://w2", "http://w3", "http://w4"} {
		r.Add(n)
	}
	before := ownerMap(r, keys)
	r.Remove("http://w2")
	after := ownerMap(r, keys)

	moved := 0
	for k, prev := range before {
		if prev == "http://w2" {
			moved++
			if after[k] == "http://w2" {
				t.Fatalf("key %q still owned by removed node", k)
			}
			continue
		}
		if after[k] != prev {
			t.Fatalf("key %q moved %s -> %s though its owner never left", k, prev, after[k])
		}
	}
	frac := float64(moved) / float64(len(keys))
	if frac < 0.10 || frac > 0.45 {
		t.Fatalf("leave moved %.1f%% of keys, want ~25%%", 100*frac)
	}
}

// TestRingReaddRestoresOwnership: remove + re-add is an identity — the
// vnode positions depend only on the node name, so a node returning
// after an outage reclaims exactly its old key space (and finds its
// cache still relevant).
func TestRingReaddRestoresOwnership(t *testing.T) {
	keys := ringKeys(5000)
	r := NewRing(0)
	for _, n := range []string{"http://w1", "http://w2", "http://w3"} {
		r.Add(n)
	}
	before := ownerMap(r, keys)
	r.Remove("http://w2")
	r.Add("http://w2")
	after := ownerMap(r, keys)
	for k, prev := range before {
		if after[k] != prev {
			t.Fatalf("key %q: owner %s before remove, %s after re-add", k, prev, after[k])
		}
	}
}

func TestRingOwnersWalk(t *testing.T) {
	r := NewRing(0)
	nodes := []string{"http://w1", "http://w2", "http://w3"}
	for _, n := range nodes {
		r.Add(n)
	}
	key := []byte("some-key")

	// n <= 0 and n > fleet both return every node, each exactly once,
	// starting at the owner.
	for _, n := range []int{0, -1, 5} {
		owners := r.Owners(key, n)
		if len(owners) != len(nodes) {
			t.Fatalf("Owners(key, %d) = %v, want all %d nodes", n, owners, len(nodes))
		}
		seen := make(map[string]bool)
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("Owners(key, %d) repeats %s: %v", n, o, owners)
			}
			seen[o] = true
		}
		if owners[0] != r.Owner(key) {
			t.Fatalf("Owners starts at %s, Owner is %s", owners[0], r.Owner(key))
		}
	}

	if got := r.Owners(key, 2); len(got) != 2 {
		t.Fatalf("Owners(key, 2) = %v, want 2 nodes", got)
	}

	empty := NewRing(0)
	if empty.Owner(key) != "" || empty.Owners(key, 3) != nil {
		t.Fatal("empty ring should own nothing")
	}
}

func TestRingAddRemoveIdempotent(t *testing.T) {
	r := NewRing(16)
	r.Add("http://w1")
	points := len(r.points)
	r.Add("http://w1")
	if len(r.points) != points {
		t.Fatalf("double Add grew the ring: %d -> %d points", points, len(r.points))
	}
	r.Remove("http://absent")
	if len(r.points) != points {
		t.Fatal("removing an absent node changed the ring")
	}
	r.Remove("http://w1")
	if r.Len() != 0 || len(r.points) != 0 {
		t.Fatalf("remove left residue: %d nodes, %d points", r.Len(), len(r.points))
	}
}

func BenchmarkHashRing(b *testing.B) {
	r := NewRing(0)
	for i := 0; i < 8; i++ {
		r.Add(fmt.Sprintf("http://worker-%d:7447", i))
	}
	keys := ringKeys(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r.Owner(keys[i%len(keys)]) == "" {
			b.Fatal("no owner")
		}
	}
}
