// Package cluster turns a fleet of pnpd workers into one verification
// service. A Coordinator fronts the fleet behind the same v1 wire
// contract a single pnpd speaks — pnpverify -remote and pnpsweep
// -remote work against it unchanged — routing each job to a node chosen
// by consistent hashing over the submission's content address, so
// repeat submissions land on the node whose caches already hold the
// answer. Health probes eject unreachable nodes and readmit them when
// they return; placement fails over along the ring, so a killed worker
// mid-sweep costs a re-submit, not the sweep.
//
// Results are cached at two tiers keyed on the same submission hash:
// each worker publishes completed reports into its own report cache
// (peekable at GET /v1/cache/{key}), and the coordinator keeps a
// cluster-wide LRU of reports so a repeat submission is answered
// without touching any worker at all.
package cluster

import (
	"fmt"
	"sort"
)

// Ring is a consistent-hash ring mapping content-address keys to node
// names. Each node occupies many virtual points (replicas) so keys
// spread evenly and a membership change moves only ~1/N of the key
// space — the property that keeps per-node caches warm across
// join/leave. The zero Ring is empty; Add populates it.
//
// Lookups are safe for concurrent use; Add/Remove are not and belong to
// setup and tests (the Coordinator's ring is immutable after
// construction — node failure is handled by skipping unhealthy owners
// at route time, not by mutating the ring, so a flapping node does not
// churn key ownership).
type Ring struct {
	replicas int
	nodes    map[string]bool
	points   []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	node string
}

// DefaultReplicas is the virtual-node count per physical node. 128
// points keeps the max/min load ratio within a few percent for small
// fleets while the full ring stays a few KiB.
const DefaultReplicas = 128

// NewRing builds an empty ring with the given virtual-node count per
// node (<= 0 selects DefaultReplicas).
func NewRing(replicas int) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	return &Ring{replicas: replicas, nodes: make(map[string]bool)}
}

// fnv1a64 is FNV-1a with a splitmix64-style finalizer: FNV alone
// clusters for short, similar inputs (vnode labels differ in one
// digit), and the mix spreads those into the full 64-bit space.
func fnv1a64(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// Add inserts a node's virtual points. Adding a present node is a
// no-op.
func (r *Ring) Add(node string) {
	if r.nodes[node] {
		return
	}
	r.nodes[node] = true
	for i := 0; i < r.replicas; i++ {
		label := fmt.Sprintf("%s\x00%d", node, i)
		r.points = append(r.points, ringPoint{hash: fnv1a64([]byte(label)), node: node})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove deletes a node's virtual points. Removing an absent node is a
// no-op.
func (r *Ring) Remove(node string) {
	if !r.nodes[node] {
		return
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Len reports the number of physical nodes on the ring.
func (r *Ring) Len() int { return len(r.nodes) }

// Nodes lists the physical nodes in sorted order.
func (r *Ring) Nodes() []string {
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Owner returns the node owning key: the first virtual point at or
// clockwise after the key's hash. Empty ring returns "".
func (r *Ring) Owner(key []byte) string {
	owners := r.Owners(key, 1)
	if len(owners) == 0 {
		return ""
	}
	return owners[0]
}

// Owners returns up to n distinct nodes in ring-walk order starting at
// the key's owner — the failover sequence for the key. n <= 0 (or n
// beyond the fleet) returns every node.
func (r *Ring) Owners(key []byte, n int) []string {
	if len(r.points) == 0 {
		return nil
	}
	if n <= 0 || n > len(r.nodes) {
		n = len(r.nodes)
	}
	h := fnv1a64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}
