package cluster

import (
	"container/list"
	"sync"

	"pnp/internal/obs"
	"pnp/internal/verifyd"
)

// reportLRU is the coordinator-side tier of the cluster result cache: a
// bounded LRU from submission keys to completed reports, annotated with
// the node that computed each. A hit answers a repeat submission
// without touching any worker; a miss falls through to a cache peek on
// the key's ring owner (the worker-side tier) and only then to real
// work.
type reportLRU struct {
	mu      sync.Mutex
	max     int
	ll      *list.List
	entries map[verifyd.CacheKey]*list.Element

	hits, misses int64

	mEntries *obs.Gauge
}

type lruEntry struct {
	key  verifyd.CacheKey
	rep  *verifyd.Report
	node string // node that computed the report
}

func newReportLRU(maxEntries int, reg *obs.Registry) *reportLRU {
	if maxEntries <= 0 {
		maxEntries = 1024
	}
	return &reportLRU{
		max:      maxEntries,
		ll:       list.New(),
		entries:  make(map[verifyd.CacheKey]*list.Element),
		mEntries: reg.Gauge("cluster_cache_entries"),
	}
}

// Get looks a report up by submission key. The report is shared —
// callers must treat it as immutable.
func (c *reportLRU) Get(k verifyd.CacheKey) (rep *verifyd.Report, node string, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, found := c.entries[k]
	if !found {
		c.misses++
		return nil, "", false
	}
	c.hits++
	c.ll.MoveToFront(el)
	e := el.Value.(*lruEntry)
	return e.rep, e.node, true
}

// Put stores a completed report under its submission key.
func (c *reportLRU) Put(k verifyd.CacheKey, rep *verifyd.Report, node string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[k]; ok {
		e := el.Value.(*lruEntry)
		e.rep, e.node = rep, node
		c.ll.MoveToFront(el)
		return
	}
	if c.ll.Len() >= c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.entries, oldest.Value.(*lruEntry).key)
	}
	c.entries[k] = c.ll.PushFront(&lruEntry{key: k, rep: rep, node: node})
	c.mEntries.Set(int64(c.ll.Len()))
}

// Stats snapshots the cache counters.
func (c *reportLRU) Stats() verifyd.CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return verifyd.CacheStats{Entries: c.ll.Len(), Hits: c.hits, Misses: c.misses}
}
