package verifyd

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"pnp/internal/adl"
	"pnp/internal/blocks"
	"pnp/internal/checker"
	"pnp/internal/obs"
)

// durableADL is the ping-pong system scaled deep enough (40 rounds,
// hundreds of BFS levels) that a search killed mid-way has real work
// left to resume.
const durableADL = `
system counters {
    components "pingpong.pml"

    connector W {
        send    syn-blocking
        channel fifo(2)
        receive blocking
    }

    instance ping = Ping(send W, 40)
    instance pong = Pong(recv W, 40)

    invariant conservation "got <= sent"
}`

func durableComponents(t testing.TB) map[string]string {
	return map[string]string{"pingpong.pml": loadExample(t, "pingpong.pml")}
}

// submitHTTP posts the JSON envelope (the path that journals on a
// durable server) and returns the accepted job's ID.
func submitHTTP(t *testing.T, url string, req jobRequest) string {
	t.Helper()
	env, _ := json.Marshal(req)
	resp, err := http.Post(url+"/v1/jobs", "application/json", bytes.NewReader(env))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /v1/jobs status = %d: %s", resp.StatusCode, b)
	}
	var job Job
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	return job.ID
}

func shutdownServer(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// readJournal parses every intact record from a server's journal dir.
func readJournal(t *testing.T, dataDir string) []journalRecord {
	t.Helper()
	dir := filepath.Join(dataDir, "journal")
	segs, err := journalSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	var recs []journalRecord
	for _, seg := range segs {
		data, err := os.ReadFile(filepath.Join(dir, segmentName(seg)))
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, decodeRecords(data)...)
	}
	return recs
}

// TestJournalRoundTrip: records appended (and group-fsynced) by one
// journal instance replay intact, in order, from a fresh open.
func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, recs, err := openJournal(dir, journalSegmentBytes, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(recs))
	}
	want := []journalRecord{
		{Type: recAccepted, ID: "job-1", Seq: 1, Key: "k1", Req: &jobRequest{ADL: "system x {}"}},
		{Type: recStarted, ID: "job-1", Seq: 1, Attempt: 1},
		{Type: recCheckpoint, ID: "job-1", Seq: 1, Key: "k1-safety", File: "f.ckpt", Depth: 12},
		{Type: recCompleted, ID: "job-1", Seq: 1, Key: "k1", Report: &Report{System: "x", OK: true}},
	}
	for _, rec := range want {
		if err := j.append(rec); err != nil {
			t.Fatal(err)
		}
	}
	j.close()

	_, got, err := openJournal(dir, journalSegmentBytes, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Type != want[i].Type || got[i].ID != want[i].ID || got[i].Key != want[i].Key {
			t.Errorf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if got[2].Depth != 12 || got[2].File != "f.ckpt" {
		t.Errorf("checkpoint record lost fields: %+v", got[2])
	}
	if got[3].Report == nil || !got[3].Report.OK {
		t.Errorf("completed record lost its report: %+v", got[3])
	}
	if got[0].Req == nil || got[0].Req.ADL != "system x {}" {
		t.Errorf("accepted record lost its request: %+v", got[0])
	}
}

// TestJournalTornTail: a partial final frame — what kill -9 mid-write
// leaves — is dropped without poisoning the intact records before it.
func TestJournalTornTail(t *testing.T) {
	dir := t.TempDir()
	j, _, err := openJournal(dir, journalSegmentBytes, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := j.append(journalRecord{Type: recStarted, ID: "job-1", Attempt: i + 1}); err != nil {
			t.Fatal(err)
		}
	}
	j.close()

	// A torn frame: a length prefix promising more bytes than exist.
	seg := filepath.Join(dir, segmentName(1))
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{200, 0, 0, 0, 1, 2, 3, 4, 'p', 'a', 'r', 't'})
	f.Close()

	_, recs, err := openJournal(dir, journalSegmentBytes, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("replayed %d records past a torn tail, want 3", len(recs))
	}

	// A corrupted byte inside a frame truncates replay at that frame.
	data, _ := os.ReadFile(seg)
	data[10] ^= 0xff
	if got := decodeRecords(data); len(got) != 0 {
		t.Fatalf("corrupt first frame replayed %d records, want 0", len(got))
	}
}

// TestJournalCompaction: compacting rewrites only the live records into
// a single fresh segment and deletes the history.
func TestJournalCompaction(t *testing.T) {
	dir := t.TempDir()
	j, _, err := openJournal(dir, 64, nil) // tiny limit: a record or two trips it
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := j.append(journalRecord{Type: recStarted, ID: "job-1", Attempt: i}); err != nil {
			t.Fatal(err)
		}
	}
	if !j.overLimit() {
		t.Fatal("journal under limit after 10 records with a 64-byte cap")
	}
	live := []journalRecord{{Type: recCompleted, ID: "job-1", Key: "k1", Report: &Report{OK: true}}}
	if err := j.compact(func() []journalRecord { return live }); err != nil {
		t.Fatal(err)
	}
	segs, _ := journalSegments(dir)
	if len(segs) != 1 {
		t.Fatalf("%d segments after compaction, want 1", len(segs))
	}
	// The compacted journal stays appendable and replays live + new.
	if err := j.append(journalRecord{Type: recAccepted, ID: "job-2"}); err != nil {
		t.Fatal(err)
	}
	j.close()
	_, recs, err := openJournal(dir, 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Type != recCompleted || recs[1].ID != "job-2" {
		t.Fatalf("post-compaction replay = %+v", recs)
	}
}

// TestServerReplayCompleted: a restarted durable server re-serves
// completed verdicts from disk — job lookup, report cache, and a fully
// cache-served resubmission — without re-running anything.
func TestServerReplayCompleted(t *testing.T) {
	dataDir := t.TempDir()
	req := jobRequest{ADL: durableADL, Components: durableComponents(t)}

	s1, err := OpenServer(Config{Workers: 2, DataDir: dataDir})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	id := submitHTTP(t, ts1.URL, req)
	job1, ok := s1.Job(id)
	if !ok {
		t.Fatalf("submitted job %s not found", id)
	}
	done1 := waitDone(t, s1, job1)
	if done1.Report == nil || !done1.Report.OK {
		t.Fatalf("job must verify: %+v", done1.Report)
	}
	ts1.Close()
	shutdownServer(t, s1)

	reg := obs.NewRegistry()
	s2, err := OpenServer(Config{Workers: 2, DataDir: dataDir, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdownServer(t, s2)
	if got := reg.Counter("verifyd_jobs_recovered_total").Value(); got != 1 {
		t.Errorf("jobs_recovered_total = %d, want 1", got)
	}
	job2, ok := s2.Job(id)
	if !ok {
		t.Fatalf("restarted server lost job %s", id)
	}
	snap := s2.Snapshot(job2)
	if snap.State != JobDone || snap.Report == nil || !snap.Report.OK {
		t.Fatalf("recovered job not done: %+v", snap)
	}
	if snap.Report.Properties[0].States != done1.Report.Properties[0].States {
		t.Errorf("recovered report stats differ: %d != %d",
			snap.Report.Properties[0].States, done1.Report.Properties[0].States)
	}

	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()

	// The report cache was rebuilt from the journal: the submission key
	// peeks, and an identical resubmission is answered without search.
	key := Submission{ADL: req.ADL, Components: req.Components}.Key()
	resp, err := http.Get(ts2.URL + "/v1/cache/" + key.String())
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("cache peek after restart = %d, want 200", resp.StatusCode)
	}
	id2 := submitHTTP(t, ts2.URL, req)
	jobAgain, _ := s2.Job(id2)
	again := waitDone(t, s2, jobAgain)
	if again.CacheMisses != 0 {
		t.Errorf("resubmission after restart searched %d properties, want 0", again.CacheMisses)
	}
}

// TestServerReplayIncompleteResumes is the kill -9 scenario end to end:
// a journal holding an acknowledged-but-unfinished job plus the
// checkpoint its search wrote. The restarted server re-enqueues the
// job, resumes the search from the snapshot (proven by the first
// checkpoint record of the new attempt landing past the stolen depth),
// and delivers the identical verdict.
func TestServerReplayIncompleteResumes(t *testing.T) {
	comps := durableComponents(t)
	subKey := Submission{ADL: durableADL, Components: comps}.Key()
	// The server checks all invariants as one merged property named
	// "safety" — the checkpoint key follows that property name.
	ckptKey := subKey.String() + "-safety"

	resolve := func(path string) (string, error) { return comps[path], nil }
	sys, err := adl.Load(durableADL, resolve, blocks.NewCache())
	if err != nil {
		t.Fatal(err)
	}

	// Reference run: uninterrupted, and steal the snapshot written at
	// the barrier past depth 30 — the file a process killed there would
	// leave behind.
	const stealDepth = 30
	var stolen []byte
	refOpts := checker.Options{Workers: 2}
	refOpts.Invariants = append([]checker.Invariant(nil), sys.Invariants...)
	refOpts.Checkpoint = &checker.CheckpointOptions{
		Dir: t.TempDir(), Key: ckptKey, Interval: 1,
		OnWrite: func(file string, depth, states int) {
			if stolen == nil && depth >= stealDepth {
				stolen, _ = os.ReadFile(file)
			}
		},
	}
	ref := checker.New(sys.Builder.System(), refOpts).CheckSafety()
	if !ref.OK {
		t.Fatalf("reference run must verify: %+v", ref)
	}
	if stolen == nil {
		t.Fatalf("search never reached depth %d; deepen the model", stealDepth)
	}

	// Fabricate the crashed server's disk: the accepted record in the
	// journal, the mid-search snapshot in the checkpoint dir.
	dataDir := t.TempDir()
	ckptDir := filepath.Join(dataDir, "checkpoints")
	if err := os.MkdirAll(ckptDir, 0o755); err != nil {
		t.Fatal(err)
	}
	ckptFile := filepath.Join(ckptDir, checker.CheckpointFileName(ckptKey))
	if err := os.WriteFile(ckptFile, stolen, 0o644); err != nil {
		t.Fatal(err)
	}
	j, _, err := openJournal(filepath.Join(dataDir, "journal"), journalSegmentBytes, nil)
	if err != nil {
		t.Fatal(err)
	}
	err = j.append(journalRecord{
		Type: recAccepted, ID: "job-1", Seq: 1, Time: time.Now(), Key: subKey.String(),
		Req: &jobRequest{ADL: durableADL, Components: comps}, Attempt: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	j.close()

	reg := obs.NewRegistry()
	s, err := OpenServer(Config{Workers: 2, DataDir: dataDir, CheckpointInterval: 1, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdownServer(t, s)
	job, ok := s.Job("job-1")
	if !ok {
		t.Fatal("replayed job not registered")
	}
	done := waitDone(t, s, job)
	if done.Report == nil || !done.Report.OK {
		t.Fatalf("recovered job must verify: %+v", done.Report)
	}
	if done.Attempt != 2 || done.ResumedFrom != "journal" {
		t.Errorf("attempt=%d resumed_from=%q, want 2/journal", done.Attempt, done.ResumedFrom)
	}
	// The resumed verdict is bit-identical to the uninterrupted one.
	if got, want := done.Report.Properties[0].States, ref.Stats.StatesStored; got != want {
		t.Errorf("resumed StatesStored = %d, uninterrupted = %d", got, want)
	}
	if got := reg.Counter("verifyd_jobs_recovered_total").Value(); got != 1 {
		t.Errorf("jobs_recovered_total = %d, want 1", got)
	}
	// Resume proof: the new attempt's first snapshot is past the stolen
	// depth — a from-scratch search would checkpoint at the first barrier.
	var ckRec *journalRecord
	for _, rec := range readJournal(t, dataDir) {
		if rec.Type == recCheckpoint && rec.Attempt == 2 {
			ckRec = &rec
			break
		}
	}
	if ckRec == nil {
		t.Fatal("resumed attempt journaled no checkpoint record")
	}
	if ckRec.Depth <= stealDepth {
		t.Errorf("first checkpoint of resumed attempt at depth %d — search restarted from scratch", ckRec.Depth)
	}
	// The checkpoint is consumed with the verdict.
	if _, err := os.Stat(ckptFile); !os.IsNotExist(err) {
		t.Errorf("checkpoint file survives the verdict: %v", err)
	}
}

// TestServerReplayDedupesSameKey: two journaled incomplete jobs with the
// same submission key execute once — the second becomes a follower of
// the first and mirrors its report.
func TestServerReplayDedupesSameKey(t *testing.T) {
	comps := durableComponents(t)
	subKey := Submission{ADL: durableADL, Components: comps}.Key()
	dataDir := t.TempDir()
	j, _, err := openJournal(filepath.Join(dataDir, "journal"), journalSegmentBytes, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range []string{"job-1", "job-2"} {
		err := j.append(journalRecord{
			Type: recAccepted, ID: id, Seq: i + 1, Time: time.Now(), Key: subKey.String(),
			Req: &jobRequest{ADL: durableADL, Components: comps}, Attempt: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	// A third with bad ADL: replay drops it without failing startup.
	err = j.append(journalRecord{
		Type: recAccepted, ID: "job-3", Seq: 3, Time: time.Now(),
		Req: &jobRequest{ADL: "system broken {"},
	})
	if err != nil {
		t.Fatal(err)
	}
	j.close()

	s, err := OpenServer(Config{Workers: 2, DataDir: dataDir})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdownServer(t, s)
	if _, ok := s.Job("job-3"); ok {
		t.Error("non-composing journaled job must be dropped")
	}
	leaderJob, ok1 := s.Job("job-1")
	followerJob, ok2 := s.Job("job-2")
	if !ok1 || !ok2 {
		t.Fatal("replayed jobs not registered")
	}
	leader := waitDone(t, s, leaderJob)
	follower := waitDone(t, s, followerJob)
	if leader.Report == nil || follower.Report == nil || !leader.Report.OK || !follower.Report.OK {
		t.Fatalf("both recovered jobs must verify: %+v / %+v", leader.Report, follower.Report)
	}
	// Zero duplicate execution: the leader searched, the follower served.
	if leader.CacheMisses == 0 {
		t.Error("leader must actually search")
	}
	if follower.CacheMisses != 0 {
		t.Errorf("follower searched %d properties — duplicate execution", follower.CacheMisses)
	}
}

// TestServerMemoryOnlyUnchanged pins the default: with DataDir unset
// nothing is journaled, no checkpoint options reach the checker, and
// the server behaves exactly as before this feature existed.
func TestServerMemoryOnlyUnchanged(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	if s.journal != nil || s.ckptDir != "" {
		t.Fatal("memory-only server armed durability state")
	}
	if s.HealthInfo().Durable {
		t.Error("memory-only server reports durable")
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	id := submitHTTP(t, ts.URL, jobRequest{ADL: loadExample(t, "pingpong.pnp"),
		Components: map[string]string{"pingpong.pml": loadExample(t, "pingpong.pml")}})
	job, _ := s.Job(id)
	done := waitDone(t, s, job)
	if done.Report == nil || !done.Report.OK {
		t.Fatalf("job must verify: %+v", done.Report)
	}
	if done.Attempt != 1 || done.ResumedFrom != "" {
		t.Errorf("fresh job attempt=%d resumed_from=%q", done.Attempt, done.ResumedFrom)
	}

	// No checkpoint endpoint content either.
	resp, err := http.Get(ts.URL + "/v1/checkpoints/anything")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("checkpoint peek on memory-only server = %d, want 404", resp.StatusCode)
	}
}

// TestCheckpointPeekAndFetch: a durable server serves its live
// checkpoint files over GET /v1/checkpoints/{key}, and a peer pulls
// them into its own checkpoint dir via fetchCheckpoint.
func TestCheckpointPeekAndFetch(t *testing.T) {
	src, err := OpenServer(Config{Workers: 1, DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdownServer(t, src)
	payload := []byte("PNPCKPT1 not really, but bytes round-trip")
	if err := os.WriteFile(filepath.Join(src.ckptDir, checker.CheckpointFileName("k1")), payload, 0o644); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(src.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/checkpoints/k1")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Equal(body, payload) {
		t.Fatalf("checkpoint peek = %d (%d bytes), want 200 with %d bytes",
			resp.StatusCode, len(body), len(payload))
	}
	resp, err = http.Get(ts.URL + "/v1/checkpoints/absent")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing checkpoint = %d, want 404", resp.StatusCode)
	}

	reg := obs.NewRegistry()
	dst, err := OpenServer(Config{Workers: 1, DataDir: t.TempDir(), Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdownServer(t, dst)
	dst.fetchCheckpoint(context.Background(), ts.URL, "k1")
	got, err := os.ReadFile(filepath.Join(dst.ckptDir, checker.CheckpointFileName("k1")))
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("fetched checkpoint = %q, %v", got, err)
	}
	if n := reg.Counter("verifyd_checkpoints_fetched_total").Value(); n != 1 {
		t.Errorf("checkpoints_fetched_total = %d, want 1", n)
	}
	// A dead peer degrades to a fresh search, never an error.
	dst.fetchCheckpoint(context.Background(), "http://127.0.0.1:1", "k2")
	if _, err := os.Stat(filepath.Join(dst.ckptDir, checker.CheckpointFileName("k2"))); !os.IsNotExist(err) {
		t.Error("failed fetch left a checkpoint file")
	}
}

// TestServerDurableJobJournals: the happy path writes accepted, started,
// and completed records, and the health body reports durable.
func TestServerDurableJobJournals(t *testing.T) {
	dataDir := t.TempDir()
	s, err := OpenServer(Config{Workers: 1, DataDir: dataDir})
	if err != nil {
		t.Fatal(err)
	}
	if !s.HealthInfo().Durable {
		t.Error("durable server must report durable")
	}
	ts := httptest.NewServer(s.Handler())
	id := submitHTTP(t, ts.URL, jobRequest{ADL: durableADL, Components: durableComponents(t)})
	job, _ := s.Job(id)
	waitDone(t, s, job)
	ts.Close()
	shutdownServer(t, s)

	types := make(map[string]int)
	for _, rec := range readJournal(t, dataDir) {
		if rec.ID == id {
			types[rec.Type]++
		}
	}
	for _, want := range []string{recAccepted, recStarted, recCompleted} {
		if types[want] == 0 {
			t.Errorf("journal has no %s record for %s (got %v)", want, id, types)
		}
	}
}
