package verifyd

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"pnp/internal/checker"
	"pnp/internal/faults"
	"pnp/internal/obs"
)

// loadExample reads one of the repository's example ADL/pml files.
func loadExample(t testing.TB, name string) string {
	t.Helper()
	b, err := os.ReadFile("../../examples/adl/" + name)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func bridgeComponents(t testing.TB) map[string]string {
	return map[string]string{"bridge.pml": loadExample(t, "bridge.pml")}
}

func newTestServer(t testing.TB, cfg Config) *Server {
	t.Helper()
	s := NewServer(cfg)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s
}

func waitDone(t testing.TB, s *Server, job *Job) Job {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Wait(ctx, job); err != nil {
		t.Fatalf("waiting for %s: %v", job.ID, err)
	}
	return s.snapshotJob(job)
}

// TestServiceBridgeLifecycle replays the paper's E8/E9 iteration loop
// through the service: the broken bridge yields a safety violation with
// a counterexample MSC; the repaired bridge verifies; re-submitting the
// repaired bridge is answered entirely from the result cache with zero
// new checker work.
func TestServiceBridgeLifecycle(t *testing.T) {
	reg := obs.NewRegistry()
	s := newTestServer(t, Config{Workers: 2, Registry: reg})
	comps := bridgeComponents(t)

	// E8: the all-asynchronous bridge violates mutual exclusion.
	broken, err := s.Submit(loadExample(t, "bridge-broken.pnp"), comps, checker.Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	bj := waitDone(t, s, broken)
	if bj.Report == nil || bj.Report.OK {
		t.Fatalf("broken bridge must fail, got %+v", bj.Report)
	}
	var safety *PropertyVerdict
	for i := range bj.Report.Properties {
		if bj.Report.Properties[i].Name == "safety" {
			safety = &bj.Report.Properties[i]
		}
	}
	if safety == nil || safety.OK {
		t.Fatalf("want safety violation, got %+v", safety)
	}
	if safety.Verdict != "invariant violation" {
		t.Errorf("verdict = %q, want invariant violation", safety.Verdict)
	}
	if safety.Counterexample == "" || safety.MSC == "" {
		t.Error("violation must carry a counterexample trace and MSC")
	}
	if !strings.Contains(safety.MSC, "Car[") {
		t.Errorf("MSC should name the processes:\n%s", safety.MSC)
	}

	// E9: swapping the enter send ports to syn-blocking repairs it.
	fixed, err := s.Submit(loadExample(t, "bridge.pnp"), comps, checker.Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	fj := waitDone(t, s, fixed)
	if fj.Report == nil || !fj.Report.OK {
		t.Fatalf("fixed bridge must verify, got %+v", fj.Report)
	}
	if fj.CacheHits != 0 {
		t.Errorf("first verification of the fixed bridge cannot hit the cache (hits=%d)", fj.CacheHits)
	}
	searched := fj.Report.Properties[0].States

	// E11: the unchanged design re-verifies from the cache alone.
	hitsBefore := reg.Counter("verifyd_cache_hits_total").Value()
	again, err := s.Submit(loadExample(t, "bridge.pnp"), comps, checker.Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	aj := waitDone(t, s, again)
	if aj.Report == nil || !aj.Report.OK {
		t.Fatalf("re-submission must verify, got %+v", aj.Report)
	}
	if aj.CacheHits != len(aj.Report.Properties) || aj.CacheMisses != 0 {
		t.Fatalf("re-submission must be fully cache-served: hits=%d misses=%d", aj.CacheHits, aj.CacheMisses)
	}
	for _, p := range aj.Report.Properties {
		if !p.Cached {
			t.Errorf("property %s not marked cached", p.Name)
		}
		if p.States != searched {
			t.Errorf("cached verdict must report the original search stats (%d != %d)", p.States, searched)
		}
	}
	if got := reg.Counter("verifyd_cache_hits_total").Value(); got != hitsBefore+1 {
		t.Errorf("obs cache-hit counter = %d, want %d", got, hitsBefore+1)
	}

	// Compiled modules were shared across all three jobs (per-module
	// granularity since PR10): the identical re-submission reused every
	// module of its DAG, and across the whole test the store served
	// more module lookups from cache than it compiled.
	if aj.ModulesTotal == 0 || aj.ModulesReused != aj.ModulesTotal || aj.ModulesCompiled != 0 {
		t.Errorf("re-submission must reuse every module: total=%d reused=%d compiled=%d",
			aj.ModulesTotal, aj.ModulesReused, aj.ModulesCompiled)
	}
	if mh, mm := s.ModelCacheStats(); mm == 0 || mh <= mm {
		t.Errorf("artifact store hits=%d misses=%d, want module reuse to dominate compiles", mh, mm)
	}
}

// TestServiceConcurrentJobs hammers the pool with eight simultaneous
// submissions (under -race this exercises the cache and job table
// locking). The two designs are small enough to finish quickly even
// with the race detector's slowdown: the pingpong system verifies and
// the broken bridge fails fast. Both verdicts are primed first, so
// every concurrent job must be answered from the cache.
func TestServiceConcurrentJobs(t *testing.T) {
	s := newTestServer(t, Config{Workers: 4})
	comps := bridgeComponents(t)
	comps["pingpong.pml"] = loadExample(t, "pingpong.pml")
	okSrc := loadExample(t, "pingpong.pnp")
	brokenSrc := loadExample(t, "bridge-broken.pnp")

	// Prime the cache with one verdict per design.
	for _, src := range []string{okSrc, brokenSrc} {
		job, err := s.Submit(src, comps, checker.Options{}, 0)
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, s, job)
	}

	const n = 8
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		src := okSrc
		wantOK := true
		if i%2 == 1 {
			src = brokenSrc
			wantOK = false
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			job, err := s.Submit(src, comps, checker.Options{}, 0)
			if err != nil {
				errs <- fmt.Errorf("job %d: %v", i, err)
				return
			}
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			if err := s.Wait(ctx, job); err != nil {
				errs <- fmt.Errorf("job %d: %v", i, err)
				return
			}
			snap := s.snapshotJob(job)
			if snap.Report == nil || snap.Report.OK != wantOK {
				errs <- fmt.Errorf("job %d: ok=%v, want %v", i, snap.Report != nil && snap.Report.OK, wantOK)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if st := s.Cache().Stats(); st.Hits == 0 {
		t.Errorf("identical concurrent jobs should share cached verdicts: %+v", st)
	}
}

// TestServiceHTTP walks the HTTP API end to end: submit a JSON envelope,
// poll status, long-poll the result, read cache stats and metrics.
func TestServiceHTTP(t *testing.T) {
	reg := obs.NewRegistry()
	s := newTestServer(t, Config{Workers: 2, Registry: reg})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	env, _ := json.Marshal(jobRequest{
		ADL:        loadExample(t, "bridge.pnp"),
		Components: bridgeComponents(t),
	})
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(string(env)))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST status = %d", resp.StatusCode)
	}
	var job Job
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if job.ID == "" || (job.State != JobQueued && job.State != JobRunning) {
		t.Fatalf("bad submit response: %+v", job)
	}

	// GET status is always well-formed, regardless of phase.
	resp, err = http.Get(ts.URL + "/v1/jobs/" + job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET status = %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Long-poll until done.
	resp, err = http.Get(ts.URL + "/v1/jobs/" + job.ID + "/wait?timeout=60s")
	if err != nil {
		t.Fatal(err)
	}
	var done Job
	if err := json.NewDecoder(resp.Body).Decode(&done); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if done.State != JobDone || done.Report == nil || !done.Report.OK {
		t.Fatalf("wait did not return a verified report: %+v", done)
	}

	// Unknown jobs are 404 with a JSON error body.
	resp, err = http.Get(ts.URL + "/v1/jobs/job-999")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing job status = %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Cache stats endpoint.
	resp, err = http.Get(ts.URL + "/v1/cache")
	if err != nil {
		t.Fatal(err)
	}
	var cacheBody struct {
		Results CacheStats `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&cacheBody); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if cacheBody.Results.Entries == 0 {
		t.Errorf("cache should hold the verified verdicts: %+v", cacheBody.Results)
	}

	// Metrics exposition includes the service counters.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	resp.Body.Close()
	if !strings.Contains(sb.String(), "verifyd_jobs_submitted_total") {
		t.Errorf("metrics exposition missing service counters:\n%s", sb.String())
	}
}

// TestServiceBadADL: syntax and composition errors become HTTP 400 with
// line/column positions, and never reach the queue.
func TestServiceBadADL(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/jobs", "text/plain",
		strings.NewReader("system s {\n    blueprint C {}\n}"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	var e ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if e.Error.Line != 2 || e.Error.Col != 5 {
		t.Errorf("error position = %d:%d, want 2:5 (%+v)", e.Error.Line, e.Error.Col, e)
	}
	if e.Error.Code != CodeInvalidArgument {
		t.Errorf("error code = %q, want %q", e.Error.Code, CodeInvalidArgument)
	}
	if !strings.Contains(e.Error.Message, "unknown declaration") {
		t.Errorf("error = %q", e.Error.Message)
	}
}

// TestServiceJobTimeout: a job whose state space cannot be exhausted in
// the configured timeout reports a canceled (truncated) verdict, and
// that verdict is not cached.
func TestServiceJobTimeout(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, JobTimeout: 50 * time.Millisecond})
	// Three free-running byte counters: ~16M states.
	src := `system huge {
    components "counters.pml"
    instance pa = A()
    instance pb = B()
    instance pc = C()
    invariant bound "a < 255"
}`
	comps := map[string]string{"counters.pml": `
byte a, b, c;
proctype A() { do :: a < 254 -> a = a + 1 od }
proctype B() { do :: b = b + 1 od }
proctype C() { do :: c = c + 1 od }
`}
	job, err := s.Submit(src, comps, checker.Options{IgnoreDeadlock: true}, 0)
	if err != nil {
		t.Fatal(err)
	}
	j := waitDone(t, s, job)
	if j.Report == nil || j.Report.OK {
		t.Fatalf("timed-out job must not verify: %+v", j.Report)
	}
	v := j.Report.Properties[0]
	if v.Verdict != checker.Canceled.String() || !v.Truncated {
		t.Fatalf("want canceled+truncated verdict, got %+v", v)
	}
	if n := s.Cache().Len(); n != 0 {
		t.Errorf("canceled verdicts must not be cached (entries=%d)", n)
	}
}

// TestServiceDrain: Shutdown finishes queued work and rejects new
// submissions.
func TestServiceDrain(t *testing.T) {
	s := NewServer(Config{Workers: 1})
	comps := bridgeComponents(t)
	job, err := s.Submit(loadExample(t, "bridge.pnp"), comps, checker.Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	snap := s.snapshotJob(job)
	if snap.State != JobDone || snap.Report == nil || !snap.Report.OK {
		t.Fatalf("drain must finish the queued job: %+v", snap)
	}
	if _, err := s.Submit(loadExample(t, "bridge.pnp"), comps, checker.Options{}, 0); err != ErrDraining {
		t.Fatalf("submit after shutdown = %v, want ErrDraining", err)
	}
}

// TestServiceDrainRace: submissions racing Shutdown must either be
// accepted (and then finish) or get ErrDraining — never panic on a
// closed channel.
func TestServiceDrainRace(t *testing.T) {
	src := loadExample(t, "bridge.pnp")
	comps := bridgeComponents(t)
	s := NewServer(Config{Workers: 2})
	// Truncated searches keep each job cheap; drain semantics are the
	// same either way.
	opts := checker.Options{MaxStates: 500, IgnoreDeadlock: true}
	accepted := make(chan *Job, 64)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 4; j++ {
				job, err := s.Submit(src, comps, opts, 0)
				if err != nil {
					if err != ErrDraining {
						t.Errorf("submit: %v", err)
					}
					return
				}
				accepted <- job
			}
		}()
	}
	// Guarantee the drain overlaps live submissions: at least one job is
	// in flight when Shutdown begins.
	first := <-accepted
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	wg.Wait()
	close(accepted)
	if snap := s.snapshotJob(first); snap.State != JobDone {
		t.Fatalf("job accepted before drain not finished: %+v", snap)
	}
	for job := range accepted {
		if snap := s.snapshotJob(job); snap.State != JobDone {
			t.Fatalf("accepted job %s not finished after drain: %+v", job.ID, snap)
		}
	}
}

// TestServiceRetainJobs: completed jobs beyond RetainJobs are evicted
// oldest-first from the lookup map, the evicted caller's own handle
// keeps its report, and the composed system is released on completion.
func TestServiceRetainJobs(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, RetainJobs: 2})
	comps := bridgeComponents(t)
	src := loadExample(t, "bridge.pnp")
	var jobs []*Job
	for i := 0; i < 4; i++ {
		job, err := s.Submit(src, comps, checker.Options{}, 0)
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, s, job)
		jobs = append(jobs, job)
	}
	for i, job := range jobs {
		_, ok := s.Job(job.ID)
		if want := i >= 2; ok != want {
			t.Errorf("job %s retained=%v, want %v", job.ID, ok, want)
		}
	}
	if snap := s.snapshotJob(jobs[0]); snap.Report == nil {
		t.Error("evicted job's own handle must keep its report")
	}
	if jobs[3].sys != nil {
		t.Error("completed job must release its composed system")
	}
}

// TestServicePerJobTimeout: a submission-supplied timeout overrides the
// server default and is measured from worker pickup, reporting a
// canceled verdict rather than hanging.
func TestServicePerJobTimeout(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	src := `system huge {
    components "counters.pml"
    instance pa = A()
    instance pb = B()
    instance pc = C()
    invariant bound "a < 255"
}`
	comps := map[string]string{"counters.pml": `
byte a, b, c;
proctype A() { do :: a < 254 -> a = a + 1 od }
proctype B() { do :: b = b + 1 od }
proctype C() { do :: c = c + 1 od }
`}
	job, err := s.Submit(src, comps, checker.Options{IgnoreDeadlock: true}, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	j := waitDone(t, s, job)
	if j.Report == nil || j.Report.OK {
		t.Fatalf("timed-out job must not verify: %+v", j.Report)
	}
	if v := j.Report.Properties[0]; v.Verdict != checker.Canceled.String() || !v.Truncated {
		t.Fatalf("want canceled+truncated verdict, got %+v", v)
	}
}

// TestCacheKeySensitivity: the content address must change whenever the
// model, the property, or a verdict-relevant option changes — and must
// not change for byte-identical re-submissions.
func TestCacheKeySensitivity(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	comps := bridgeComponents(t)
	load := func(src string) *Job {
		t.Helper()
		job, err := s.Submit(src, comps, checker.Options{}, 0)
		if err != nil {
			t.Fatal(err)
		}
		return job
	}
	fixed := load(loadExample(t, "bridge.pnp"))
	broken := load(loadExample(t, "bridge-broken.pnp"))
	again := load(loadExample(t, "bridge.pnp"))

	hFixed := ModelHash(fixed.sys.Builder)
	hBroken := ModelHash(broken.sys.Builder)
	hAgain := ModelHash(again.sys.Builder)
	if hFixed == hBroken {
		t.Error("one-token port swap must change the model hash")
	}
	if hFixed != hAgain {
		t.Error("identical submissions must hash identically")
	}

	ps := fixed.sys.Sources[0]
	base := Key(hFixed, ps, checker.Options{}, "")
	if base != Key(hFixed, ps, checker.Options{}, "") {
		t.Error("key must be deterministic")
	}
	if base == Key(hFixed, ps, checker.Options{BFS: true}, "") {
		t.Error("search options must be part of the key")
	}
	if base == Key(hFixed, ps, checker.Options{MaxStates: 10}, "") {
		t.Error("state limits must be part of the key")
	}
	other := ps
	other.Text += "x"
	if base == Key(hFixed, other, checker.Options{}, "") {
		t.Error("property text must be part of the key")
	}
	// Callback fields must NOT affect the key.
	withCtx := checker.Options{Context: context.Background(), Metrics: obs.NewRegistry()}
	if base != Key(hFixed, ps, withCtx, "") {
		t.Error("plumbing fields (Context, Metrics) must not affect the key")
	}
	// Fault plans are part of the verification task's identity.
	dropPlan := (&faults.Plan{Seed: 1, Rules: []faults.Rule{{Kind: faults.Drop, Target: "*", Rate: 0.5}}}).Canonical()
	dupPlan := (&faults.Plan{Seed: 1, Rules: []faults.Rule{{Kind: faults.Duplicate, Target: "*", Rate: 0.5}}}).Canonical()
	if base == Key(hFixed, ps, checker.Options{}, dropPlan) {
		t.Error("a fault plan must change the key")
	}
	if Key(hFixed, ps, checker.Options{}, dropPlan) == Key(hFixed, ps, checker.Options{}, dupPlan) {
		t.Error("different fault plans must produce different keys")
	}
	if Key(hFixed, ps, checker.Options{}, dropPlan) != Key(hFixed, ps, checker.Options{}, dropPlan) {
		t.Error("equal fault plans must produce equal keys")
	}
}

// TestServiceReadinessFlipsDuringDrain: /healthz answers 200 for the
// process lifetime, while /readyz flips to 503 the moment Shutdown
// begins — observable while a queued job is still draining, so load
// balancers stop routing before the listener goes away.
func TestServiceReadinessFlipsDuringDrain(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	status := func(path string) int {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := status("/healthz"); got != http.StatusOK {
		t.Fatalf("/healthz = %d, want 200", got)
	}
	if got := status("/readyz"); got != http.StatusOK {
		t.Fatalf("/readyz before drain = %d, want 200", got)
	}

	// Occupy the lone worker so the drain is observable in flight. The
	// unbounded counter model cannot finish on its own; the per-job
	// timeout bounds the test.
	src := `system slow {
    components "spin.pml"
    instance p = P()
    invariant bound "x < 255"
}`
	comps := map[string]string{"spin.pml": "byte x;\nproctype P() { do :: x = x + 1 od }"}
	job, err := s.Submit(src, comps, checker.Options{IgnoreDeadlock: true}, 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}

	drained := make(chan struct{})
	go func() {
		defer close(drained)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()
	// Shutdown flips readiness synchronously before waiting on jobs, but
	// give the goroutine a moment to have entered it.
	deadline := time.Now().Add(5 * time.Second)
	for !s.Draining() {
		if time.Now().After(deadline) {
			t.Fatal("server never started draining")
		}
		time.Sleep(time.Millisecond)
	}
	if got := status("/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("/readyz during drain = %d, want 503", got)
	}
	if got := status("/healthz"); got != http.StatusOK {
		t.Fatalf("/healthz during drain = %d, want 200 (liveness is not readiness)", got)
	}
	<-drained
	waitDone(t, s, job)
	if got := status("/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("/readyz after drain = %d, want 503", got)
	}
}

// TestResultCacheLRU: the LRU bound evicts the oldest entry and the
// counters track it.
func TestResultCacheLRU(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewResultCache(2, reg)
	k := func(i byte) CacheKey { var key CacheKey; key[0] = i; return key }
	c.Put(k(1), PropertyVerdict{Name: "a"})
	c.Put(k(2), PropertyVerdict{Name: "b"})
	if _, ok := c.Get(k(1)); !ok { // touch 1 -> 2 becomes LRU
		t.Fatal("entry 1 missing")
	}
	c.Put(k(3), PropertyVerdict{Name: "c"}) // evicts 2
	if _, ok := c.Get(k(2)); ok {
		t.Error("entry 2 should have been evicted")
	}
	if _, ok := c.Get(k(1)); !ok {
		t.Error("recently used entry 1 must survive")
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 2 {
		t.Errorf("stats = %+v, want 1 eviction, 2 entries", st)
	}
	if reg.Counter("verifyd_cache_evictions_total").Value() != 1 {
		t.Error("eviction counter not mirrored into the registry")
	}
	if reg.Gauge("verifyd_cache_entries").Value() != 2 {
		t.Error("entries gauge not mirrored into the registry")
	}
}
