package verifyd

import (
	"sync"

	"pnp/internal/obs"
)

// workerBudget is the pool of checker search workers shared by all
// running jobs. Job-level parallelism (Config.Workers) and search-level
// parallelism (checker.Options.Workers) draw from different resources
// but the same cores, so the budget keeps their product bounded: a job
// is granted as many idle tokens as it may use, and a saturated pool
// degrades to one search worker per job instead of oversubscribing.
type workerBudget struct {
	mu    sync.Mutex
	total int
	inUse int
	gauge *obs.Gauge // verifyd_search_workers_in_use; nil-safe
}

func newWorkerBudget(total int, gauge *obs.Gauge) *workerBudget {
	if total < 1 {
		total = 1
	}
	return &workerBudget{total: total, gauge: gauge}
}

// acquire grants up to want search workers (want <= 0 asks for the
// whole budget), never more than are idle and never fewer than one, so
// every job makes progress even when the pool is oversubscribed. The
// caller must release exactly the granted count.
func (b *workerBudget) acquire(want int) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	if want <= 0 || want > b.total {
		want = b.total
	}
	grant := b.total - b.inUse
	if grant > want {
		grant = want
	}
	if grant < 1 {
		grant = 1
	}
	b.inUse += grant
	b.gauge.Set(int64(b.inUse))
	return grant
}

// release returns granted tokens to the pool.
func (b *workerBudget) release(n int) {
	b.mu.Lock()
	b.inUse -= n
	b.gauge.Set(int64(b.inUse))
	b.mu.Unlock()
}

// snapshot reports the pool size and the tokens currently granted — the
// numbers /healthz exposes so a coordinator can see a node's headroom.
func (b *workerBudget) snapshot() (total, inUse int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.total, b.inUse
}
