package verifyd

import (
	"sync"
	"testing"

	"pnp/internal/checker"
)

func TestWorkerBudgetGrantAndRelease(t *testing.T) {
	b := newWorkerBudget(4, nil)
	if g := b.acquire(0); g != 4 {
		t.Fatalf("idle budget grant = %d, want all 4", g)
	}
	// Pool exhausted: every job still gets one worker.
	if g := b.acquire(0); g != 1 {
		t.Fatalf("oversubscribed grant = %d, want floor 1", g)
	}
	b.release(1)
	b.release(4)
	if g := b.acquire(2); g != 2 {
		t.Fatalf("capped grant = %d, want requested 2", g)
	}
	if g := b.acquire(0); g != 2 {
		t.Fatalf("remaining grant = %d, want idle 2", g)
	}
	b.release(2)
	b.release(2)
	if g := b.acquire(100); g != 4 {
		t.Fatalf("over-asking grant = %d, want total 4", g)
	}
}

func TestWorkerBudgetConcurrent(t *testing.T) {
	b := newWorkerBudget(8, nil)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				g := b.acquire(3)
				if g < 1 || g > 3 {
					t.Errorf("grant %d outside [1,3]", g)
					return
				}
				b.release(g)
			}
		}()
	}
	wg.Wait()
	if g := b.acquire(0); g != 8 {
		t.Errorf("budget leaked: final idle grant = %d, want 8", g)
	}
}

// A lone job on an idle server is granted the whole search budget; the
// grant is recorded on the job and drives checker.Options.Workers.
func TestServiceJobUsesIdleSearchBudget(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2, SearchBudget: 4})
	job, err := s.Submit(loadExample(t, "bridge.pnp"), bridgeComponents(t), checker.Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	snap := waitDone(t, s, job)
	if snap.Report == nil || !snap.Report.OK {
		t.Fatalf("bridge should verify: %+v", snap.Report)
	}
	if snap.Workers != 4 {
		t.Errorf("job granted %d search workers, want the full budget 4", snap.Workers)
	}
}

// A submission's workers override caps the grant.
func TestServiceJobWorkersCap(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2, SearchBudget: 4})
	job, err := s.Submit(loadExample(t, "bridge.pnp"), bridgeComponents(t), checker.Options{Workers: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	snap := waitDone(t, s, job)
	if snap.Workers != 1 {
		t.Errorf("job granted %d search workers, want the requested cap 1", snap.Workers)
	}
}

// The cache key normalizes Workers to the engine it selects, so a
// verdict computed under one grant is served for any other.
func TestOptionsKeyNormalizesWorkers(t *testing.T) {
	k1 := OptionsKey(checker.Options{Workers: 1})
	k8 := OptionsKey(checker.Options{Workers: 8})
	if k1 != k8 {
		t.Errorf("worker counts fragment the cache key: %q vs %q", k1, k8)
	}
	seq := OptionsKey(checker.Options{})
	if k1 == seq {
		t.Errorf("parallel and sequential engines must not share a key: %q", k1)
	}
	// Workers with POR falls back to the sequential DFS, same as no
	// Workers at all.
	if OptionsKey(checker.Options{Workers: 8, PartialOrder: true}) !=
		OptionsKey(checker.Options{PartialOrder: true}) {
		t.Error("POR fallback should normalize to the sequential key")
	}
}

// Visited-set storage trades memory for time without changing
// membership, so every storage configuration must share one cache key.
func TestOptionsKeyIgnoresVisitedStorage(t *testing.T) {
	base := OptionsKey(checker.Options{Workers: 1})
	for name, o := range map[string]checker.Options{
		"collapse":  {Workers: 1, Visited: checker.VisitedCollapse},
		"mem-limit": {Workers: 1, MemLimit: 64 << 20},
		"spill":     {Workers: 1, Visited: checker.VisitedCollapse, MemLimit: 1, SpillDir: "/tmp/x"},
	} {
		if OptionsKey(o) != base {
			t.Errorf("%s storage fragments the cache key: %q vs %q", name, OptionsKey(o), base)
		}
	}
}

// The wire overrides for visited storage overlay server defaults; an
// unknown storage name keeps the default, and SpillDir has no wire
// field at all (clients must not control server paths).
func TestJobOptionsVisitedStorageOverrides(t *testing.T) {
	s := &Server{cfg: Config{Options: checker.Options{Visited: checker.VisitedExact, SpillDir: "/srv/spill"}}}
	o := s.jobOptions(jobRequest{Visited: ptrTo(checker.VisitedCollapse), MemLimitBytes: ptrTo(int64(1 << 20))})
	if o.Visited != checker.VisitedCollapse || o.MemLimit != 1<<20 {
		t.Errorf("overrides not applied: %+v", o)
	}
	if o.SpillDir != "/srv/spill" {
		t.Errorf("SpillDir changed by wire request: %q", o.SpillDir)
	}
	o = s.jobOptions(jobRequest{Visited: ptrTo("bogus"), MemLimitBytes: ptrTo(int64(-5))})
	if o.Visited != checker.VisitedExact || o.MemLimit != 0 {
		t.Errorf("invalid overrides should keep defaults: %+v", o)
	}
}
