package verifyd

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pnp/internal/adl"
	"pnp/internal/artifact"
	"pnp/internal/checker"
	"pnp/internal/obs"
	"pnp/internal/obs/tracing"
)

// Version identifies the build in /healthz responses and cluster node
// listings. Override at link time with
// -ldflags "-X pnp/internal/verifyd.Version=...".
var Version = "0.7.0-dev"

// Config parameterizes a verification server.
type Config struct {
	// Workers is the number of concurrent checker runs (default
	// GOMAXPROCS). Each worker runs at most one search at a time.
	Workers int
	// SearchBudget is the total number of checker search workers
	// (checker.Options.Workers tokens) shared by all running jobs
	// (default GOMAXPROCS). Each job acquires as many idle tokens as it
	// may use when a worker picks it up — so one big job on an otherwise
	// idle server searches on every core, while a full pool degrades
	// gracefully to one search worker per job — and releases them when
	// it finishes. Every job is granted at least one token.
	SearchBudget int
	// CacheEntries bounds the result cache (default 1024).
	CacheEntries int
	// RetainJobs bounds how many completed jobs stay queryable via
	// Job/GET /v1/jobs/{id} (default 1024). Older completed jobs are
	// evicted FIFO; queued and running jobs are never evicted.
	RetainJobs int
	// JobTimeout bounds each property search; an expired job reports a
	// Canceled verdict instead of hanging a worker forever. Zero means
	// no timeout.
	JobTimeout time.Duration
	// DataDir, when set, makes the server crash-safe: HTTP submissions
	// are journaled to an append-only WAL under DataDir/journal before
	// they are acknowledged, long searches snapshot their frontier to
	// DataDir/checkpoints at BFS level barriers, and a restarted server
	// replays the journal — completed verdicts are re-served, incomplete
	// jobs re-enqueued and resumed from their last checkpoint. Empty
	// (the default) keeps the server exactly as before: memory-only,
	// nothing written to disk.
	DataDir string
	// CheckpointInterval is the number of completed BFS levels between
	// search snapshots when DataDir is set (default 1: every barrier).
	CheckpointInterval int
	// Resolver loads component files referenced by raw ADL submissions.
	// JSON submissions can inline components instead; inline components
	// shadow the resolver.
	Resolver adl.Resolver
	// Registry receives service and cache metrics; nil disables them.
	Registry *obs.Registry
	// Tracer, when non-nil, is the flight recorder every job records
	// spans into: submit/compose, queue wait, run, per-property checker
	// phases. Submissions carrying a traceparent join the caller's
	// trace; others root their own. Nil disables tracing entirely.
	Tracer *tracing.Recorder
	// Logger receives structured job-lifecycle logs (submitted, running,
	// done) carrying job_id and trace_id fields; nil discards them.
	Logger *slog.Logger
	// Options is the base checker configuration applied to every job;
	// submissions may override the search-shape fields per job.
	Options checker.Options
}

// JobState is the lifecycle phase of a submitted job.
type JobState string

// Job lifecycle states.
const (
	JobQueued  JobState = "queued"
	JobRunning JobState = "running"
	JobDone    JobState = "done"
)

// Job is one submitted verification task and, eventually, its report.
type Job struct {
	ID        string    `json:"id"`
	State     JobState  `json:"state"`
	Submitted time.Time `json:"submitted"`
	// Report is present once State is "done".
	Report *Report `json:"report,omitempty"`
	// CacheHits counts properties of this job served from the result
	// cache; CacheMisses counts properties actually searched.
	CacheHits   int `json:"cache_hits"`
	CacheMisses int `json:"cache_misses"`
	// Workers is the number of search workers granted from the server's
	// SearchBudget while the job ran (0 until it starts).
	Workers int `json:"workers,omitempty"`
	// TraceID is the hex trace this job records spans into (empty when
	// the server runs without a Tracer). GET /v1/jobs/{id}/trace streams
	// the spans.
	TraceID string `json:"trace_id,omitempty"`
	// Attempt counts executions of this submission across crashes and
	// failovers: 1 for a first run, incremented by a cluster
	// coordinator's re-placement or a journal replay.
	Attempt int `json:"attempt,omitempty"`
	// ResumedFrom records where this attempt's search checkpoints came
	// from: a peer worker's base URL (cluster re-drive) or "journal"
	// (re-enqueued by replay on restart). Empty for a fresh run.
	ResumedFrom string `json:"resumed_from,omitempty"`
	// Modules is the submission's module DAG in compilation order —
	// block library, component files, linked program, connectors — each
	// with its content address and whether composition found it already
	// in the artifact store (since PR10). The counters summarize the
	// list: a warm one-connector edit shows ModulesReused ==
	// ModulesTotal-1. The slice is immutable once set.
	Modules         []artifact.Info `json:"modules,omitempty"`
	ModulesTotal    int             `json:"modules_total,omitempty"`
	ModulesReused   int             `json:"modules_reused,omitempty"`
	ModulesCompiled int             `json:"modules_compiled,omitempty"`

	sys     *adl.System
	opts    checker.Options
	timeout time.Duration
	done    chan struct{}
	seq     int // submission order, the cursor GET /v1/jobs pages over
	// subKey, when non-nil, is the submission's content address: the
	// completed report is published into the report cache under it, so
	// GET /v1/cache/{key} can answer an identical future submission.
	// Only HTTP submissions carry one — the key hashes wire fields.
	subKey *CacheKey

	// tctx carries the job span for children started by run(); qspan is
	// the open queue-wait span, ended at worker pickup.
	tctx  context.Context
	span  *tracing.Span
	qspan *tracing.Span

	// jreq retains the wire request for journal compaction until the job
	// completes (nil on journal-less servers and in-process submissions);
	// resumeFrom is the peer base URL to fetch search checkpoints from.
	jreq       *jobRequest
	resumeFrom string
}

// jobRequest is the JSON submission envelope. Raw (non-JSON) bodies are
// treated as bare ADL source with no overrides.
type jobRequest struct {
	ADL string `json:"adl"`
	// Components maps referenced component paths to inline pml source.
	Components map[string]string `json:"components,omitempty"`
	// Search-shape overrides; nil fields keep the server's defaults.
	MaxStates      *int  `json:"max_states,omitempty"`
	MaxDepth       *int  `json:"max_depth,omitempty"`
	BFS            *bool `json:"bfs,omitempty"`
	IgnoreDeadlock *bool `json:"ignore_deadlock,omitempty"`
	PartialOrder   *bool `json:"partial_order,omitempty"`
	WeakFairness   *bool `json:"weak_fairness,omitempty"`
	StrongFairness *bool `json:"strong_fairness,omitempty"`
	// Workers caps the search workers granted to this job from the
	// server's SearchBudget (0 or absent = as many as are idle).
	Workers *int `json:"workers,omitempty"`
	// Visited and MemLimitBytes tune visited-set storage (see
	// checker.Options.Visited/MemLimit). They change memory footprint,
	// never the verdict, so they are excluded from the submission key —
	// a budgeted run shares its cache entry with an unbudgeted one.
	// SpillDir is deliberately NOT wire-settable: clients must not
	// control server filesystem paths. Spilling uses the server's
	// configured SpillDir (or the OS temp dir).
	Visited       *string `json:"visited,omitempty"`
	MemLimitBytes *int64  `json:"mem_limit_bytes,omitempty"`
	// TimeoutMS overrides the server's per-job timeout (0 keeps it).
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// Attempt and ResumeFrom are the cluster re-drive resume token: a
	// coordinator re-placing a job after a mid-run worker death sets
	// Attempt to the execution count and ResumeFrom to the dead (or
	// draining) worker's base URL, so the replica fetches the search
	// checkpoint via GET /v1/checkpoints/{key} instead of re-exploring
	// from state zero. Neither field enters the submission content
	// address — they change where a verdict is computed, never what it
	// is.
	Attempt    int    `json:"attempt,omitempty"`
	ResumeFrom string `json:"resume_from,omitempty"`
}

// Server runs verification jobs on a bounded worker pool with a shared
// compiled-model cache and a content-addressed result cache.
type Server struct {
	cfg     Config
	reg     *obs.Registry
	cache   *ResultCache
	reports *reportCache
	// artifacts is the content-addressed store of compiled modules —
	// library, component, program, and connector artifacts shared across
	// jobs and sweep cells (and, on a DataDir server, across restarts
	// via DataDir/artifacts).
	artifacts *artifact.Store

	budget *workerBudget

	mu      sync.Mutex
	jobs    map[string]*Job
	doneIDs []string // completed-job eviction order (FIFO)
	nextID  int
	closed  bool

	// draining flips when Shutdown begins; /readyz reads it lock-free so
	// load balancers see 503 while queued jobs finish.
	draining atomic.Bool

	// queue is never closed: workers exit via stop, which Shutdown
	// closes only after every accepted job has run, so a Submit racing
	// shutdown (or blocked on a full queue) can never panic on a closed
	// channel.
	queue    chan *Job
	stop     chan struct{}
	stopOnce sync.Once
	jobsWG   sync.WaitGroup // accepted-but-unfinished jobs
	wg       sync.WaitGroup // worker goroutines

	tracer *tracing.Recorder
	log    *slog.Logger

	// journal and ckptDir are the durability state of a DataDir server;
	// both zero on a memory-only one.
	journal *journal
	ckptDir string

	mSubmitted *obs.Counter
	mCompleted *obs.Counter
	mRejected  *obs.Counter
	mRunning   *obs.Gauge
	mQueued    *obs.Gauge
	hWait      *obs.Histogram
	cRecovered *obs.Counter
	cCkptFetch *obs.Counter

	cModReused   *obs.Counter
	cModCompiled *obs.Counter
}

// queueWaitBuckets span sub-millisecond pickups on an idle pool out to
// minute-long waits behind a saturated one — a wider range than the
// default LatencyBuckets, which top out at one second.
var queueWaitBuckets = []float64{
	0.0001, 0.001, 0.004, 0.016, 0.064, 0.256, 1, 4, 16, 64,
}

// NewServer builds a verification server and starts its workers. A
// Config.DataDir that cannot be opened (or whose journal fails to
// replay) is reported through the logger and durability is disabled;
// servers that must not degrade silently use OpenServer.
func NewServer(cfg Config) *Server {
	s, err := OpenServer(cfg)
	if err != nil {
		log := cfg.Logger
		if log == nil {
			log = slog.New(slog.NewTextHandler(io.Discard, nil))
		}
		log.Error("data dir unusable; running memory-only", "data_dir", cfg.DataDir, "err", err.Error())
		cfg.DataDir = ""
		s, _ = OpenServer(cfg)
	}
	return s
}

// OpenServer builds a verification server and starts its workers,
// reporting durability failures instead of masking them. With
// Config.DataDir set it opens (or creates) the job journal, replays it
// — re-registering completed jobs with their verdicts and re-enqueuing
// incomplete ones — and arms search checkpointing; re-enqueued jobs
// resume their searches from the last snapshot in
// DataDir/checkpoints. Without DataDir it is identical to NewServer.
func OpenServer(cfg Config) (*Server, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.RetainJobs <= 0 {
		cfg.RetainJobs = 1024
	}
	if cfg.SearchBudget <= 0 {
		cfg.SearchBudget = runtime.GOMAXPROCS(0)
	}
	log := cfg.Logger
	if log == nil {
		log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	// Compiled-module artifacts share the result cache's entry bound; on
	// a DataDir server they are also mirrored to DataDir/artifacts, so
	// module identity — and the what-needs-recompiling decision —
	// survives restarts.
	artDir := ""
	if cfg.DataDir != "" {
		artDir = filepath.Join(cfg.DataDir, "artifacts")
	}
	artifacts, err := artifact.NewStore(cfg.CacheEntries, artDir, cfg.Registry)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:        cfg,
		reg:        cfg.Registry,
		cache:      NewResultCache(cfg.CacheEntries, cfg.Registry),
		reports:    newReportCache(cfg.CacheEntries, cfg.Registry),
		artifacts:  artifacts,
		jobs:       make(map[string]*Job),
		queue:      make(chan *Job, 64),
		stop:       make(chan struct{}),
		tracer:     cfg.Tracer,
		log:        log,
		mSubmitted: cfg.Registry.Counter("verifyd_jobs_submitted_total"),
		mCompleted: cfg.Registry.Counter("verifyd_jobs_completed_total"),
		mRejected:  cfg.Registry.Counter("verifyd_jobs_rejected_total"),
		mRunning:   cfg.Registry.Gauge("verifyd_jobs_running"),
		mQueued:    cfg.Registry.Gauge("verifyd_jobs_queued"),
		hWait:      cfg.Registry.Histogram("verifyd_queue_wait_seconds", queueWaitBuckets),

		cModReused:   cfg.Registry.Counter("jobs_modules_reused_total"),
		cModCompiled: cfg.Registry.Counter("jobs_modules_compiled_total"),
	}
	s.budget = newWorkerBudget(cfg.SearchBudget, cfg.Registry.Gauge("verifyd_search_workers_in_use"))

	var requeue []*Job
	if cfg.DataDir != "" {
		s.ckptDir = filepath.Join(cfg.DataDir, "checkpoints")
		if err := os.MkdirAll(s.ckptDir, 0o755); err != nil {
			return nil, err
		}
		j, recs, err := openJournal(filepath.Join(cfg.DataDir, "journal"), journalSegmentBytes, cfg.Registry)
		if err != nil {
			return nil, err
		}
		s.journal = j
		s.cRecovered = cfg.Registry.Counter("verifyd_jobs_recovered_total")
		s.cCkptFetch = cfg.Registry.Counter("verifyd_checkpoints_fetched_total")
		// Replay before the workers start, so recovered jobs hold their
		// original IDs and no new submission can race into them.
		requeue = s.replay(recs)
	}

	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	if len(requeue) > 0 {
		// The queue holds 64; re-enqueue from a goroutine so a journal
		// with hundreds of incomplete jobs cannot deadlock startup.
		go func() {
			for _, job := range requeue {
				s.mQueued.Add(1)
				s.queue <- job
			}
		}()
	}
	return s, nil
}

// replay folds journal records back into server state: completed jobs
// are re-registered done (verdicts served from disk), incomplete jobs
// are rebuilt from their journaled wire requests and returned for
// re-enqueueing. Incomplete jobs sharing a submission key are deduped —
// the first becomes the leader and actually runs; followers wait for
// its report, so a crash can never cause duplicate execution of one
// submission. Runs before the worker pool starts; no locking needed.
func (s *Server) replay(recs []journalRecord) []*Job {
	type replayJob struct {
		accepted  *journalRecord
		completed *journalRecord
		attempts  int
	}
	byID := make(map[string]*replayJob)
	var order []string
	for i := range recs {
		rec := &recs[i]
		rj := byID[rec.ID]
		if rj == nil {
			rj = &replayJob{}
			byID[rec.ID] = rj
			order = append(order, rec.ID)
		}
		switch rec.Type {
		case recAccepted:
			rj.accepted = rec
		case recStarted:
			if rec.Attempt > rj.attempts {
				rj.attempts = rec.Attempt
			}
		case recCompleted:
			rj.completed = rec
		}
		if rec.Seq > s.nextID {
			s.nextID = rec.Seq
		}
	}

	closedCh := make(chan struct{})
	close(closedCh)
	var requeue []*Job
	leaders := make(map[string]*Job) // submission key -> re-enqueued leader
	for _, id := range order {
		rj := byID[id]
		switch {
		case rj.completed != nil:
			rec := rj.completed
			job := &Job{
				ID: id, State: JobDone, Submitted: rec.Time, Report: rec.Report,
				CacheHits: rec.CacheHits, CacheMisses: rec.CacheMisses,
				Modules: rec.Modules, ModulesTotal: len(rec.Modules),
				ModulesReused: rec.ModulesReused, ModulesCompiled: rec.ModulesCompiled,
				Attempt: max(rec.Attempt, 1), done: closedCh, seq: rec.Seq,
			}
			s.jobs[id] = job
			s.doneIDs = append(s.doneIDs, id)
			if key, ok := parseCacheKey(rec.Key); ok && rec.Report != nil && Cacheable(rec.Report) {
				s.reports.Put(key, rec.Report)
			}
			s.cRecovered.Add(1)
		case rj.accepted != nil && rj.accepted.Req != nil:
			rec := rj.accepted
			req := rec.Req
			resolve := s.resolver(req.Components)
			sys, err := adl.LoadModular(req.ADL, resolve, s.artifacts)
			if err != nil {
				s.log.Error("journal replay: job no longer composes; dropping",
					"job_id", id, "err", err.Error())
				continue
			}
			job := &Job{
				ID: id, State: JobQueued, Submitted: rec.Time,
				Attempt: max(rj.attempts, rec.Attempt) + 1, ResumedFrom: "journal",
				Modules: sys.Modules, ModulesTotal: len(sys.Modules),
				ModulesReused: sys.ModulesReused, ModulesCompiled: sys.ModulesCompiled,
				sys: sys, opts: s.jobOptions(*req),
				timeout: time.Duration(req.TimeoutMS) * time.Millisecond,
				done:    make(chan struct{}), seq: rec.Seq, jreq: req,
				tctx: context.Background(),
			}
			if key, ok := parseCacheKey(rec.Key); ok {
				job.subKey = &key
			}
			s.jobs[id] = job
			s.jobsWG.Add(1)
			s.cRecovered.Add(1)
			if job.subKey != nil {
				if leader, dup := leaders[rec.Key]; dup {
					// Follower: mirror the leader's report when it lands.
					go s.finishFollower(job, leader)
					s.log.Info("job recovered (deduped onto leader)",
						"job_id", id, "leader", leader.ID, "attempt", job.Attempt)
					continue
				}
				leaders[rec.Key] = job
			}
			requeue = append(requeue, job)
			s.log.Info("job recovered; re-enqueued", "job_id", id, "attempt", job.Attempt)
		}
	}
	for len(s.doneIDs) > s.cfg.RetainJobs {
		delete(s.jobs, s.doneIDs[0])
		s.doneIDs = s.doneIDs[1:]
	}
	return requeue
}

// resolver builds the component-resolution closure submissions use:
// inline components shadow the configured resolver.
func (s *Server) resolver(components map[string]string) adl.Resolver {
	return func(path string) (string, error) {
		if text, ok := components[path]; ok {
			return text, nil
		}
		if s.cfg.Resolver != nil {
			return s.cfg.Resolver(path)
		}
		return "", fmt.Errorf("unknown component %q (no resolver configured)", path)
	}
}

// parseCacheKey decodes a hex submission key from a journal record.
func parseCacheKey(hexKey string) (CacheKey, bool) {
	var key CacheKey
	b, err := hex.DecodeString(hexKey)
	if err != nil || len(b) != sha256.Size {
		return key, false
	}
	copy(key[:], b)
	return key, true
}

// finishFollower completes a replayed duplicate submission from its
// leader's report — zero duplicate execution for same-key submissions.
func (s *Server) finishFollower(job *Job, leader *Job) {
	<-leader.done
	snap := s.snapshotJob(leader)
	rep := snap.Report
	hits := 0
	if rep != nil {
		hits = len(rep.Properties)
	}
	s.mu.Lock()
	job.Report = rep
	job.CacheHits = hits
	job.State = JobDone
	job.sys = nil
	job.opts = checker.Options{}
	job.jreq = nil
	s.doneIDs = append(s.doneIDs, job.ID)
	for len(s.doneIDs) > s.cfg.RetainJobs {
		delete(s.jobs, s.doneIDs[0])
		s.doneIDs = s.doneIDs[1:]
	}
	s.mu.Unlock()
	if s.journal != nil && rep != nil {
		s.appendJournal(journalRecord{
			Type: recCompleted, ID: job.ID, Seq: job.seq, Time: time.Now(),
			Key: subKeyHex(job), Report: rep, Attempt: job.Attempt, CacheHits: hits,
		})
	}
	s.log.Info("job done (follower of "+leader.ID+")", "job_id", job.ID)
	s.mCompleted.Inc()
	close(job.done)
	s.jobsWG.Done()
}

// subKeyHex renders a job's submission key ("" when it has none).
func subKeyHex(job *Job) string {
	if job.subKey == nil {
		return ""
	}
	return job.subKey.String()
}

// appendJournal journals one record, logging (never failing the job) on
// error: a full disk degrades durability, not availability.
func (s *Server) appendJournal(rec journalRecord) {
	if err := s.journal.append(rec); err != nil {
		s.log.Error("journal append failed", "job_id", rec.ID, "type", rec.Type, "err", err.Error())
	}
}

// Cache exposes the result cache (for stats endpoints and tests).
func (s *Server) Cache() *ResultCache { return s.cache }

// Options returns the server's base checker configuration. Embedders
// that submit on behalf of clients (the sweep service) start from it so
// their jobs hash into the same cache entries as direct submissions.
func (s *Server) Options() checker.Options { return s.cfg.Options }

// ModelCacheStats reports compiled-module reuse across jobs: artifact
// store hits (modules served without compiling) and misses (modules
// compiled and stored). Granularity changed in PR10 from whole programs
// to modules — a design now accounts one entry per library, component,
// program, and connector module.
func (s *Server) ModelCacheStats() (hits, misses int) {
	st := s.artifacts.Stats()
	return int(st.Hits), int(st.Misses)
}

// ArtifactStore exposes the compiled-module store (for embedders like
// the sweep service, the cluster coordinator's peeks, and tests).
func (s *Server) ArtifactStore() *artifact.Store { return s.artifacts }

// Tracer returns the server's flight recorder (nil when tracing is
// disabled). Embedders like the sweep service record their own spans
// into it so one trace spans sweep and jobs.
func (s *Server) Tracer() *tracing.Recorder { return s.tracer }

// Logger returns the server's structured logger (never nil; a discard
// logger when none was configured).
func (s *Server) Logger() *slog.Logger { return s.log }

// Submit parses and composes src (resolving component references against
// inline components first, then the configured resolver), queues the
// verification, and returns the job. Composition errors surface
// immediately — with ADL line/column positions — rather than from
// inside the queue. A positive timeout overrides the server's
// JobTimeout for this job; the clock starts when a worker picks the
// job up, not while it waits in the queue.
func (s *Server) Submit(src string, components map[string]string, opts checker.Options, timeout time.Duration) (*Job, error) {
	return s.SubmitContext(context.Background(), src, components, opts, timeout)
}

// SubmitContext is Submit with trace propagation: if ctx carries a span
// or an extracted traceparent, the job's spans join that trace; the job
// otherwise roots a fresh one. ctx is used only for trace parenting —
// job cancellation stays governed by the timeout, so a caller
// disconnecting cannot kill a queued job another client is awaiting.
func (s *Server) SubmitContext(ctx context.Context, src string, components map[string]string, opts checker.Options, timeout time.Duration) (*Job, error) {
	return s.submitKeyed(ctx, src, components, opts, timeout, nil, nil)
}

// submitKeyed is SubmitContext carrying an optional submission key and,
// for HTTP submissions on a durable server, the wire request to
// journal; the key must be attached before the job is queued, because a
// cache-served job can complete within microseconds of the queue send.
func (s *Server) submitKeyed(ctx context.Context, src string, components map[string]string, opts checker.Options, timeout time.Duration, subKey *CacheKey, wire *jobRequest) (*Job, error) {
	jctx, jspan := s.tracer.StartSpan(ctx, "job")
	resolve := s.resolver(components)
	_, cspan := s.tracer.StartSpan(jctx, "compose")
	sys, err := adl.LoadModular(src, resolve, s.artifacts)
	cspan.End()
	if err != nil {
		s.mRejected.Inc()
		jspan.SetAttr("error", err.Error())
		jspan.End()
		return nil, err
	}
	jspan.SetAttr("system", sys.Name)

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.mRejected.Inc()
		jspan.SetAttr("error", ErrDraining.Error())
		jspan.End()
		return nil, ErrDraining
	}
	s.nextID++
	job := &Job{
		ID:        fmt.Sprintf("job-%d", s.nextID),
		State:     JobQueued,
		Submitted: time.Now(),
		sys:       sys,
		opts:      opts,
		timeout:   timeout,
		done:      make(chan struct{}),
		seq:       s.nextID,
		subKey:    subKey,
		tctx:      jctx,
		span:      jspan,
		Attempt:   1,

		Modules:         sys.Modules,
		ModulesTotal:    len(sys.Modules),
		ModulesReused:   sys.ModulesReused,
		ModulesCompiled: sys.ModulesCompiled,
	}
	if wire != nil {
		job.Attempt = max(wire.Attempt, 1)
		if wire.ResumeFrom != "" {
			job.resumeFrom = wire.ResumeFrom
			job.ResumedFrom = wire.ResumeFrom
		}
		if s.journal != nil {
			job.jreq = wire
		}
	}
	if jspan != nil {
		job.TraceID = jspan.TraceID().String()
		jspan.SetAttr("job_id", job.ID)
	}
	_, job.qspan = s.tracer.StartSpan(jctx, "queue")
	s.jobs[job.ID] = job
	// Registered under the same lock as the closed check, so Shutdown's
	// drain wait observes every accepted job.
	s.jobsWG.Add(1)
	s.mu.Unlock()

	// The accepted record is durable before the job is queued (and so
	// before the caller's 202): an acknowledged submission survives
	// kill -9 from this point on.
	if s.journal != nil && job.jreq != nil {
		s.appendJournal(journalRecord{
			Type: recAccepted, ID: job.ID, Seq: job.seq, Time: job.Submitted,
			Key: subKeyHex(job), Req: job.jreq, Attempt: job.Attempt,
		})
	}

	s.cModReused.Add(int64(job.ModulesReused))
	s.cModCompiled.Add(int64(job.ModulesCompiled))
	s.log.Info("job submitted", "job_id", job.ID, "system", sys.Name, "trace_id", job.TraceID,
		"modules_reused", job.ModulesReused, "modules_compiled", job.ModulesCompiled)
	s.mSubmitted.Inc()
	s.mQueued.Add(1)
	s.queue <- job
	return job, nil
}

// ErrDraining is returned for submissions after Shutdown has begun.
var ErrDraining = errors.New("verifyd: server is draining")

// Job looks up a job by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Wait blocks until the job finishes or ctx is done.
func (s *Server) Wait(ctx context.Context, job *Job) error {
	select {
	case <-job.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Shutdown drains the server: new submissions are rejected, queued and
// running jobs finish (subject to ctx), and workers exit. It returns
// ctx.Err() if the context expires first; the drain then continues in
// the background.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	finished := make(chan struct{})
	go func() {
		// All accepted jobs first — including one whose Submit is still
		// blocked on a full queue — then the workers, who only see stop
		// once the queue is provably empty.
		s.jobsWG.Wait()
		s.stopOnce.Do(func() { close(s.stop) })
		s.wg.Wait()
		if s.journal != nil {
			s.journal.close()
		}
		close(finished)
	}()
	select {
	case <-finished:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stop:
			return
		case job := <-s.queue:
			s.mQueued.Add(-1)
			s.mRunning.Add(1)
			// Queue wait is submission to pickup — the latency PR2's
			// timeout fix deliberately excludes from the search clock,
			// invisible until now.
			s.hWait.Observe(time.Since(job.Submitted).Seconds())
			job.qspan.End()
			s.run(job)
			s.mRunning.Add(-1)
			s.mCompleted.Inc()
			s.jobsWG.Done()
		}
	}
}

// run executes (or cache-serves) every property of one job.
func (s *Server) run(job *Job) {
	s.setState(job, JobRunning)
	s.log.Info("job running", "job_id", job.ID, "trace_id", job.TraceID)
	// Whole-report fast path: an identical submission already completed
	// here (possibly in a previous process — replay rebuilds this cache
	// from the journal), so serve it without composing a search.
	if job.subKey != nil {
		if cached, ok := s.reports.Get(*job.subKey); ok {
			rep := new(Report)
			*rep = *cached
			rep.Properties = append([]PropertyVerdict(nil), cached.Properties...)
			for i := range rep.Properties {
				rep.Properties[i].Cached = true
			}
			s.finishJob(job, rep, len(rep.Properties), 0)
			return
		}
	}
	if s.journal != nil && job.jreq != nil {
		s.appendJournal(journalRecord{
			Type: recStarted, ID: job.ID, Seq: job.seq, Time: time.Now(), Attempt: job.Attempt,
		})
	}
	sys := job.sys
	mh := ModelHash(sys.Builder)

	opts := job.opts
	opts.Metrics = s.reg
	opts.Tracer = s.tracer

	// Claim search workers for the whole job: up to the requested count
	// (0 = all that are idle), at least one. The grant is the job's
	// checker.Options.Workers, so one big job on an idle server runs its
	// safety searches on every budgeted core.
	granted := s.budget.acquire(opts.Workers)
	defer s.budget.release(granted)
	opts.Workers = granted
	s.mu.Lock()
	job.Workers = granted
	s.mu.Unlock()

	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	// The clock starts here, not at submission, so time spent queued
	// never counts against the search budget. A per-job timeout
	// overrides the server default.
	timeout := s.cfg.JobTimeout
	if job.timeout > 0 {
		timeout = job.timeout
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	// The run span parents to the job span (via job.tctx) but lives on
	// the cancellation context, so checker phases nest under it and stop
	// with it.
	_, rspan := s.tracer.StartSpan(job.tctx, "run")
	if rspan != nil {
		rspan.SetAttr("workers", strconv.Itoa(granted))
		ctx = tracing.ContextWithSpan(ctx, rspan)
	}
	opts.Context = ctx

	m := sys.Builder.System()
	procs := make([]string, 0, m.NumInstances())
	for _, in := range m.Instances() {
		procs = append(procs, in.Name)
	}

	rep := &Report{
		System:    sys.Name,
		Processes: m.NumInstances(),
		Channels:  m.NumChannels(),
		OK:        true,
	}
	fc := sys.Faults.Canonical()
	hits, misses := 0, 0
	for _, ps := range sys.Sources {
		key := Key(mh, ps, opts, fc)
		if v, ok := s.cache.Get(key); ok {
			v.Cached = true
			rep.Properties = append(rep.Properties, v)
			hits++
			rspan.AddEvent("cache-hit", tracing.A("property", ps.Name))
			if !v.OK {
				rep.OK = false
				rep.Failed++
			}
			continue
		}
		misses++
		popts := opts
		if ck := s.checkpointFor(job, ps); ck != nil {
			if job.resumeFrom != "" {
				s.fetchCheckpoint(ctx, job.resumeFrom, ck.Key)
			}
			popts.Checkpoint = ck
		}
		pctx, pspan := s.tracer.StartSpan(ctx, "property:"+ps.Name, tracing.A("kind", ps.Kind))
		popts.Context = pctx
		res := s.checkProperty(sys, ps, popts)
		v := NewPropertyVerdict(ps.Name, ps.Kind, res, procs)
		pspan.SetAttr("verdict", v.Verdict)
		pspan.End()
		// Truncated searches (limits, timeouts, cancellation) are not
		// verdicts about the model and must never be served as such.
		if !res.Stats.Truncated && res.Kind != checker.Canceled {
			s.cache.Put(key, v)
		}
		rep.Properties = append(rep.Properties, v)
		if !v.OK {
			rep.OK = false
			rep.Failed++
		}
	}
	if rspan != nil {
		rspan.SetAttr("cache_hits", strconv.Itoa(hits))
		rspan.SetAttr("cache_misses", strconv.Itoa(misses))
		rspan.End()
	}

	s.finishJob(job, rep, hits, misses)
}

// finishJob publishes a job's report: report cache, job table (with
// FIFO eviction of old completed jobs), journal (a self-contained
// completed record, making every earlier record of this job dead weight
// for compaction), span, and done signal.
func (s *Server) finishJob(job *Job, rep *Report, hits, misses int) {
	if job.subKey != nil && Cacheable(rep) {
		s.reports.Put(*job.subKey, rep)
	}
	journaled := s.journal != nil && job.jreq != nil
	s.mu.Lock()
	job.Report = rep
	job.CacheHits = hits
	job.CacheMisses = misses
	job.State = JobDone
	// The composed system (and any per-job options) are dead weight once
	// the report is published; drop them so retained jobs cost only
	// their report.
	job.sys = nil
	job.opts = checker.Options{}
	job.jreq = nil
	s.doneIDs = append(s.doneIDs, job.ID)
	for len(s.doneIDs) > s.cfg.RetainJobs {
		delete(s.jobs, s.doneIDs[0])
		s.doneIDs = s.doneIDs[1:]
	}
	s.mu.Unlock()
	if journaled {
		s.appendJournal(journalRecord{
			Type: recCompleted, ID: job.ID, Seq: job.seq, Time: time.Now(),
			Key: subKeyHex(job), Report: rep, Attempt: job.Attempt,
			CacheHits: hits, CacheMisses: misses,
			Modules:       job.Modules,
			ModulesReused: job.ModulesReused, ModulesCompiled: job.ModulesCompiled,
		})
		if s.journal.overLimit() {
			if err := s.journal.compact(s.journalLive); err != nil {
				s.log.Error("journal compaction failed", "err", err.Error())
			}
		}
	}
	if job.span != nil {
		job.span.SetAttr("ok", strconv.FormatBool(rep.OK))
		job.span.End()
	}
	s.log.Info("job done", "job_id", job.ID, "trace_id", job.TraceID,
		"ok", rep.OK, "failed", rep.Failed, "cache_hits", hits, "cache_misses", misses,
		"elapsed", time.Since(job.Submitted).Round(time.Millisecond).String())
	close(job.done)
}

// checkpointFor builds one property's checkpoint options on a durable
// server (nil on a memory-only one, or for jobs without a submission
// key). The checkpoint key is the submission content address plus the
// property name, so a resumed attempt — locally after a restart, or on
// a cluster replica that fetched the file — finds exactly its own
// frontier. One checkpoint journal record is written per property per
// attempt (the file path never changes, so later snapshots add nothing).
func (s *Server) checkpointFor(job *Job, ps adl.PropertySource) *checker.CheckpointOptions {
	if s.ckptDir == "" || job.subKey == nil {
		return nil
	}
	key := job.subKey.String() + "-" + ps.Name
	var once sync.Once
	return &checker.CheckpointOptions{
		Dir:      s.ckptDir,
		Key:      key,
		Interval: s.cfg.CheckpointInterval,
		Resume:   true,
		OnWrite: func(file string, depth, states int) {
			once.Do(func() {
				// Depth doubles as the resume proof: a search resumed from
				// a checkpoint writes its first snapshot past the restored
				// depth, a fresh one at the first barrier.
				s.appendJournal(journalRecord{
					Type: recCheckpoint, ID: job.ID, Seq: job.seq, Time: time.Now(),
					Key: key, File: filepath.Base(file), Depth: depth, Attempt: job.Attempt,
				})
			})
		},
	}
}

// fetchCheckpoint pulls a search snapshot from a peer worker's
// GET /v1/checkpoints/{key} into this server's checkpoint dir, so a
// re-driven attempt continues the previous node's search instead of
// restarting from state zero. Every failure path (peer already dead —
// the common cause of the re-drive — no snapshot, bad local write)
// degrades to a fresh search; resume is an optimization, never a
// correctness dependency.
func (s *Server) fetchCheckpoint(ctx context.Context, base, key string) {
	fctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	u := strings.TrimRight(base, "/") + "/v1/checkpoints/" + url.PathEscape(key)
	req, err := http.NewRequestWithContext(fctx, http.MethodGet, u, nil)
	if err != nil {
		return
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		s.log.Info("checkpoint fetch failed; searching from scratch",
			"peer", base, "key", key, "err", err.Error())
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		s.log.Info("peer has no checkpoint; searching from scratch",
			"peer", base, "key", key, "status", strconv.Itoa(resp.StatusCode))
		return
	}
	dst := filepath.Join(s.ckptDir, checker.CheckpointFileName(key))
	tmp := dst + ".fetch"
	f, err := os.Create(tmp)
	if err != nil {
		return
	}
	if _, err = io.Copy(f, resp.Body); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, dst)
	}
	if err != nil {
		os.Remove(tmp)
		s.log.Info("checkpoint fetch failed; searching from scratch",
			"peer", base, "key", key, "err", err.Error())
		return
	}
	s.cCkptFetch.Add(1)
	s.log.Info("checkpoint fetched from peer", "peer", base, "key", key)
}

// journalLive snapshots the records compaction must keep: one
// self-contained completed record per retained done job, the accepted
// record for every job still queued or running. The journal calls it
// under its own lock; it takes s.mu — safe because no code path appends
// to the journal while holding s.mu.
func (s *Server) journalLive() []journalRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	sort.Slice(jobs, func(i, k int) bool { return jobs[i].seq < jobs[k].seq })
	var recs []journalRecord
	for _, j := range jobs {
		switch {
		case j.State == JobDone:
			if j.Report == nil {
				continue
			}
			recs = append(recs, journalRecord{
				Type: recCompleted, ID: j.ID, Seq: j.seq, Time: j.Submitted,
				Key: subKeyHex(j), Report: j.Report, Attempt: j.Attempt,
				CacheHits: j.CacheHits, CacheMisses: j.CacheMisses,
				Modules:       j.Modules,
				ModulesReused: j.ModulesReused, ModulesCompiled: j.ModulesCompiled,
			})
		case j.jreq != nil:
			recs = append(recs, journalRecord{
				Type: recAccepted, ID: j.ID, Seq: j.seq, Time: j.Submitted,
				Key: subKeyHex(j), Req: j.jreq, Attempt: j.Attempt,
			})
		}
	}
	return recs
}

// checkProperty runs the checker for one declared property, mirroring
// System.VerifyAll's per-property semantics.
func (s *Server) checkProperty(sys *adl.System, ps adl.PropertySource, opts checker.Options) *checker.Result {
	switch ps.Kind {
	case "invariant":
		safetyOpts := opts
		safetyOpts.Invariants = append(append([]checker.Invariant(nil), opts.Invariants...), sys.Invariants...)
		return checker.New(sys.Builder.System(), safetyOpts).CheckSafety()
	case "goal":
		for _, g := range sys.Goals {
			if g.Name == ps.Name {
				return checker.New(sys.Builder.System(), opts).CheckEventuallyReachable(g.Expr)
			}
		}
	case "ltl":
		for _, p := range sys.LTL {
			if p.Name == ps.Name {
				return checker.New(sys.Builder.System(), opts).CheckLTL(p.Formula, p.Props)
			}
		}
	}
	return &checker.Result{OK: false, Kind: checker.RuntimeError,
		Message: fmt.Sprintf("unknown property %s %q", ps.Kind, ps.Name)}
}

func (s *Server) setState(job *Job, st JobState) {
	s.mu.Lock()
	job.State = st
	s.mu.Unlock()
}

// snapshotJob copies a job's externally visible fields under the lock so
// handlers never race with run().
func (s *Server) snapshotJob(job *Job) Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Job{
		ID:          job.ID,
		State:       job.State,
		Submitted:   job.Submitted,
		Report:      job.Report,
		CacheHits:   job.CacheHits,
		CacheMisses: job.CacheMisses,
		Workers:     job.Workers,
		TraceID:     job.TraceID,
		Attempt:     job.Attempt,
		ResumedFrom: job.ResumedFrom,
		// The modules slice is written once at compose time and never
		// mutated, so sharing it across snapshots is race-free.
		Modules:         job.Modules,
		ModulesTotal:    job.ModulesTotal,
		ModulesReused:   job.ModulesReused,
		ModulesCompiled: job.ModulesCompiled,
		seq:             job.seq,
	}
}

// Snapshot returns a race-free copy of a job's externally visible
// fields. The sweep engine and other in-process embedders read results
// through it instead of touching the live job.
func (s *Server) Snapshot(job *Job) Job { return s.snapshotJob(job) }

// --- HTTP API ---

// Handler returns the service's HTTP API:
//
//	POST /v1/jobs            submit ADL (raw text or JSON envelope) -> job
//	GET  /v1/jobs            list jobs (?status=, ?cursor=, ?limit=)
//	GET  /v1/jobs/{id}       job status; report included when done
//	GET  /v1/jobs/{id}/wait  long-poll until done (or ?timeout=30s)
//	GET  /v1/jobs/{id}/trace the job's spans as NDJSON (404 w/o tracing)
//	GET  /v1/cache           result-cache statistics
//	GET  /v1/cache/{key}     peek a cached report by submission key (hex)
//	GET  /v1/artifacts/{hash} peek a compiled-module artifact by its
//	                         module fingerprint (hex; since PR10)
//	GET  /v1/checkpoints/{key} fetch a live search checkpoint (durable
//	                         servers only; cluster replicas resume from it)
//	GET  /healthz            liveness: 200 while the process runs
//	GET  /readyz             readiness: 200 accepting jobs, 503 draining
//	GET  /metrics            Prometheus exposition (plus /metrics.json)
//	GET  /debug/trace        flight-recorder listing (?id= for one trace)
//
// A submission carrying a W3C traceparent header joins the caller's
// trace. Every failure response is the uniform JSON envelope
// {"error":{"code","message"}} (see WriteError); unknown paths get an
// enveloped 404 so the whole surface fails uniformly.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/wait", s.handleWait)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleJobTrace)
	mux.HandleFunc("GET /v1/cache", s.handleCache)
	mux.HandleFunc("GET /v1/cache/{key}", s.handleCachePeek)
	mux.HandleFunc("GET /v1/artifacts/{hash}", s.handleArtifactPeek)
	mux.HandleFunc("GET /v1/checkpoints/{key}", s.handleCheckpointPeek)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	if s.reg != nil {
		mux.Handle("/metrics", s.reg.Handler())
		mux.Handle("/metrics.json", s.reg.Handler())
	}
	if s.tracer != nil {
		mux.Handle("GET /debug/trace", s.tracer.Handler())
	}
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		WriteError(w, http.StatusNotFound, CodeNotFound, "no such route: "+r.URL.Path)
	})
	return mux
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// Health is the GET /healthz response body: liveness plus enough
// identity and load detail for a cluster coordinator (or a human) to
// tell nodes apart — build version, worker-pool shape, search-budget
// occupancy, and cache sizes. The status code stays a plain 200 for the
// process lifetime, so probes that only check the code (load balancers,
// PR3-era scripts) keep working unchanged.
type Health struct {
	Status             string `json:"status"`
	Version            string `json:"version"`
	Workers            int    `json:"workers"`
	SearchBudget       int    `json:"search_budget"`
	SearchWorkersInUse int    `json:"search_workers_in_use"`
	ResultCacheEntries int    `json:"result_cache_entries"`
	ReportCacheEntries int    `json:"report_cache_entries"`
	Jobs               int    `json:"jobs"`
	// Durable reports whether the server journals jobs to a data dir —
	// a coordinator may prefer durable nodes for long searches.
	Durable  bool `json:"durable,omitempty"`
	Draining bool `json:"draining,omitempty"`
}

// handleHealthz is liveness: the process is up and serving HTTP. It
// stays 200 through a drain — a draining server is unhealthy only to
// new traffic, which is readiness' job to signal; the body's draining
// field lets a single probe see both.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.HealthInfo())
}

// HealthInfo snapshots the /healthz body (for embedders and tests).
func (s *Server) HealthInfo() Health {
	budget, inUse := s.budget.snapshot()
	s.mu.Lock()
	jobs := len(s.jobs)
	s.mu.Unlock()
	return Health{
		Status:             "ok",
		Version:            Version,
		Workers:            s.cfg.Workers,
		SearchBudget:       budget,
		SearchWorkersInUse: inUse,
		ResultCacheEntries: s.cache.Len(),
		ReportCacheEntries: s.reports.Len(),
		Jobs:               jobs,
		Durable:            s.journal != nil,
		Draining:           s.draining.Load(),
	}
}

// handleReadyz is readiness: 503 once Shutdown begins, so orchestrators
// stop routing new submissions while queued jobs finish.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, struct {
			Status string `json:"status"`
		}{"draining"})
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Status string `json:"status"`
	}{"ready"})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			WriteError(w, http.StatusRequestEntityTooLarge, CodeTooLarge, "body exceeds 1MiB")
			return
		}
		WriteError(w, http.StatusBadRequest, CodeInvalidArgument, "reading body: "+err.Error())
		return
	}
	var req jobRequest
	trimmed := strings.TrimSpace(string(body))
	if strings.HasPrefix(trimmed, "{") {
		if err := json.Unmarshal(body, &req); err != nil {
			WriteError(w, http.StatusBadRequest, CodeInvalidArgument, "bad JSON envelope: "+err.Error())
			return
		}
	} else {
		req.ADL = trimmed
	}
	if strings.TrimSpace(req.ADL) == "" {
		WriteError(w, http.StatusBadRequest, CodeInvalidArgument, "empty ADL source")
		return
	}

	opts := s.jobOptions(req)
	// The submission key is computed from the wire fields, exactly as a
	// cluster coordinator computes it, so the completed report is
	// peekable at GET /v1/cache/{key} under the address the coordinator
	// already knows.
	key := Submission{
		ADL: req.ADL, Components: req.Components,
		MaxStates: req.MaxStates, MaxDepth: req.MaxDepth,
		BFS: req.BFS, IgnoreDeadlock: req.IgnoreDeadlock, PartialOrder: req.PartialOrder,
		WeakFairness: req.WeakFairness, StrongFairness: req.StrongFairness,
	}.Key()
	// Trace parenting comes from the request's traceparent header, over a
	// background context: the job must not inherit the HTTP request's
	// cancellation, which fires as soon as the 202 is written.
	tctx := tracing.ContextWithRemote(context.Background(), tracing.Extract(r))
	job, err := s.submitKeyed(tctx, req.ADL, req.Components, opts, time.Duration(req.TimeoutMS)*time.Millisecond, &key, &req)
	if err != nil {
		WriteADLError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, s.snapshotJob(job))
}

// handleJobTrace streams one job's recorded spans as NDJSON. Spans may
// still be arriving while the job runs; clients wanting the complete
// trace should wait for the job first. 404 when the server runs without
// a Tracer.
func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		WriteError(w, http.StatusNotFound, CodeNotFound, "no such job")
		return
	}
	snap := s.snapshotJob(job)
	if s.tracer == nil || snap.TraceID == "" {
		WriteError(w, http.StatusNotFound, CodeNotFound, "tracing disabled")
		return
	}
	w.Header().Set("Content-Type", tracing.NDJSONContentType)
	tracing.WriteNDJSON(w, s.tracer.TraceHex(snap.TraceID))
}

// jobOptions overlays a submission's overrides onto the server defaults.
func (s *Server) jobOptions(req jobRequest) checker.Options {
	opts := s.cfg.Options
	if req.MaxStates != nil {
		opts.MaxStates = *req.MaxStates
	}
	if req.MaxDepth != nil {
		opts.MaxDepth = *req.MaxDepth
	}
	if req.BFS != nil {
		opts.BFS = *req.BFS
	}
	if req.IgnoreDeadlock != nil {
		opts.IgnoreDeadlock = *req.IgnoreDeadlock
	}
	if req.PartialOrder != nil {
		opts.PartialOrder = *req.PartialOrder
	}
	if req.WeakFairness != nil {
		opts.WeakFairness = *req.WeakFairness
	}
	if req.StrongFairness != nil {
		opts.StrongFairness = *req.StrongFairness
	}
	if req.Workers != nil {
		opts.Workers = *req.Workers
	}
	if req.Visited != nil {
		// Unknown storage names fall back to the server default rather
		// than failing the job: the knob is advisory, not semantic.
		switch *req.Visited {
		case checker.VisitedExact, checker.VisitedCollapse:
			opts.Visited = *req.Visited
		}
	}
	if req.MemLimitBytes != nil && *req.MemLimitBytes >= 0 {
		opts.MemLimit = *req.MemLimitBytes
	}
	return opts
}

// jobSummary is the GET /v1/jobs list element: everything a dashboard
// needs without the (potentially large) verdict report.
type jobSummary struct {
	ID          string    `json:"id"`
	State       JobState  `json:"state"`
	Submitted   time.Time `json:"submitted"`
	CacheHits   int       `json:"cache_hits"`
	CacheMisses int       `json:"cache_misses"`
	Workers     int       `json:"workers,omitempty"`
	TraceID     string    `json:"trace_id,omitempty"`
	// OK is present once the job is done.
	OK *bool `json:"ok,omitempty"`
}

// handleJobs lists jobs in submission order with optional status
// filtering and cursor pagination: ?status=queued|running|done,
// ?cursor=<opaque, from the previous page's next_cursor>, ?limit=N
// (default 100, max 1000). Evicted jobs are absent; the cursor remains
// valid across evictions because it encodes a submission sequence
// number, not an offset.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var filter JobState
	switch st := q.Get("status"); st {
	case "":
	case string(JobQueued), string(JobRunning), string(JobDone):
		filter = JobState(st)
	default:
		WriteError(w, http.StatusBadRequest, CodeInvalidArgument,
			fmt.Sprintf("bad status %q: want queued, running, or done", st))
		return
	}
	limit := 100
	if ls := q.Get("limit"); ls != "" {
		n, err := strconv.Atoi(ls)
		if err != nil || n < 1 {
			WriteError(w, http.StatusBadRequest, CodeInvalidArgument, "bad limit: "+ls)
			return
		}
		limit = min(n, 1000)
	}
	after := 0
	if cs := q.Get("cursor"); cs != "" {
		n, err := strconv.Atoi(cs)
		if err != nil || n < 0 {
			WriteError(w, http.StatusBadRequest, CodeInvalidArgument, "bad cursor: "+cs)
			return
		}
		after = n
	}

	s.mu.Lock()
	all := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		if j.seq > after && (filter == "" || j.State == filter) {
			all = append(all, j)
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].seq < all[j].seq })
	more := len(all) > limit
	if more {
		all = all[:limit]
	}
	out := struct {
		Jobs       []jobSummary `json:"jobs"`
		NextCursor string       `json:"next_cursor,omitempty"`
	}{Jobs: make([]jobSummary, 0, len(all))}
	for _, j := range all {
		js := jobSummary{
			ID: j.ID, State: j.State, Submitted: j.Submitted,
			CacheHits: j.CacheHits, CacheMisses: j.CacheMisses, Workers: j.Workers,
			TraceID: j.TraceID,
		}
		if j.State == JobDone && j.Report != nil {
			ok := j.Report.OK
			js.OK = &ok
		}
		out.Jobs = append(out.Jobs, js)
	}
	if more {
		out.NextCursor = strconv.Itoa(all[len(all)-1].seq)
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		WriteError(w, http.StatusNotFound, CodeNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, s.snapshotJob(job))
}

func (s *Server) handleWait(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		WriteError(w, http.StatusNotFound, CodeNotFound, "no such job")
		return
	}
	ctx := r.Context()
	if tm := r.URL.Query().Get("timeout"); tm != "" {
		d, err := time.ParseDuration(tm)
		if err != nil {
			WriteError(w, http.StatusBadRequest, CodeInvalidArgument, "bad timeout: "+err.Error())
			return
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	if err := s.Wait(ctx, job); err != nil {
		// Long-poll expired: report current state so clients can retry.
		writeJSON(w, http.StatusOK, s.snapshotJob(job))
		return
	}
	writeJSON(w, http.StatusOK, s.snapshotJob(job))
}

func (s *Server) handleCache(w http.ResponseWriter, r *http.Request) {
	mh, mm := s.ModelCacheStats()
	writeJSON(w, http.StatusOK, struct {
		Results CacheStats `json:"results"`
		Reports CacheStats `json:"reports"`
		// Models keeps its PR2 shape for old clients; since PR10 it
		// mirrors the artifact store, which Artifacts reports in full.
		Models struct {
			Hits   int `json:"hits"`
			Misses int `json:"misses"`
		} `json:"models"`
		Artifacts artifact.Stats `json:"artifacts"`
	}{
		Results: s.cache.Stats(),
		Reports: s.reports.Stats(),
		Models: struct {
			Hits   int `json:"hits"`
			Misses int `json:"misses"`
		}{mh, mm},
		Artifacts: s.artifacts.Stats(),
	})
}

// CachedReport is the GET /v1/cache/{key} hit body: the submission key
// echoed back plus the completed report it addresses.
type CachedReport struct {
	Key    string  `json:"key"`
	Report *Report `json:"report"`
}

// handleCachePeek answers "has this node already completed exactly this
// submission?" — the worker-side read path of the cluster result cache.
// The key is a Submission.Key in hex; a miss is an enveloped 404, so a
// coordinator can treat it exactly like an unknown job id.
func (s *Server) handleCachePeek(w http.ResponseWriter, r *http.Request) {
	raw := r.PathValue("key")
	b, err := hex.DecodeString(raw)
	if err != nil || len(b) != sha256.Size {
		WriteError(w, http.StatusBadRequest, CodeInvalidArgument,
			"cache key must be 64 hex characters")
		return
	}
	var key CacheKey
	copy(key[:], b)
	rep, ok := s.reports.Get(key)
	if !ok {
		WriteError(w, http.StatusNotFound, CodeNotFound, "no cached report for key "+raw)
		return
	}
	writeJSON(w, http.StatusOK, CachedReport{Key: raw, Report: rep})
}

// handleArtifactPeek answers "does this node hold this compiled
// module?" — the artifact-store sibling of handleCachePeek. The hash is
// a model.ModuleFingerprint in hex; a hit returns the artifact's
// envelope (hash, kind, name, deps, canonical source), a miss an
// enveloped 404. A cluster coordinator fans this peek across its fleet
// so any node's compilation work is visible cluster-wide.
func (s *Server) handleArtifactPeek(w http.ResponseWriter, r *http.Request) {
	h, err := artifact.ParseHash(r.PathValue("hash"))
	if err != nil {
		WriteError(w, http.StatusBadRequest, CodeInvalidArgument,
			"artifact hash must be 64 hex characters")
		return
	}
	body, ok := s.artifacts.Peek(h)
	if !ok {
		WriteError(w, http.StatusNotFound, CodeNotFound, "no artifact for hash "+h.String())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

// handleCheckpointPeek serves a live search checkpoint file to a
// cluster replica resuming this node's job. 404 on a memory-only server
// and once the search has delivered a verdict (the checkpoint is
// removed with it) — the replica then searches from scratch, which is
// always correct. CheckpointFileName sanitizes the key, so the path
// cannot escape the checkpoint dir.
func (s *Server) handleCheckpointPeek(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if s.ckptDir == "" {
		WriteError(w, http.StatusNotFound, CodeNotFound, "server runs without a data dir")
		return
	}
	f, err := os.Open(filepath.Join(s.ckptDir, checker.CheckpointFileName(key)))
	if err != nil {
		WriteError(w, http.StatusNotFound, CodeNotFound, "no checkpoint for key "+key)
		return
	}
	defer f.Close()
	w.Header().Set("Content-Type", "application/octet-stream")
	io.Copy(w, f)
}
