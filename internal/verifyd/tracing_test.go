package verifyd

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"pnp/internal/checker"
	"pnp/internal/obs"
	"pnp/internal/obs/tracing"
)

// pingpongComponents returns the pingpong example's component map.
func pingpongComponents(t testing.TB) map[string]string {
	return map[string]string{"pingpong.pml": loadExample(t, "pingpong.pml")}
}

// TestJobTrace runs one job on a traced server and checks the full span
// hierarchy: job → {compose, queue, run} → property → checker phase,
// all under one TraceID that also shows up in the job snapshot, the
// structured log, and GET /v1/jobs/{id}/trace.
func TestJobTrace(t *testing.T) {
	rec := tracing.NewRecorder(256)
	reg := obs.NewRegistry()
	var logBuf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&logBuf, nil))
	s := newTestServer(t, Config{Workers: 1, Registry: reg, Tracer: rec, Logger: logger})

	job, err := s.Submit(loadExample(t, "bridge.pnp"), bridgeComponents(t), checker.Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	snap := waitDone(t, s, job)
	if snap.TraceID == "" {
		t.Fatal("traced job has no TraceID")
	}
	if !snap.Report.OK {
		t.Fatalf("bridge must verify: %+v", snap.Report)
	}

	spans := rec.TraceHex(snap.TraceID)
	byName := map[string]tracing.SpanData{}
	for _, d := range spans {
		byName[d.Name] = d
	}
	for _, want := range []string{"job", "compose", "queue", "run"} {
		if _, ok := byName[want]; !ok {
			t.Fatalf("trace missing %q span; have %d spans", want, len(spans))
		}
	}
	jobSpan := byName["job"]
	if jobSpan.Parent != "" {
		t.Errorf("job span should be the root, parent=%q", jobSpan.Parent)
	}
	for _, child := range []string{"compose", "queue", "run"} {
		if byName[child].Parent != jobSpan.SpanID {
			t.Errorf("%s span parent = %q, want job %q", child, byName[child].Parent, jobSpan.SpanID)
		}
	}
	// Each property span parents to run; checker phases parent to their
	// property span.
	runSpan := byName["run"]
	var propSpans, phaseSpans int
	propIDs := map[string]bool{}
	for _, d := range spans {
		if strings.HasPrefix(d.Name, "property:") {
			propSpans++
			propIDs[d.SpanID] = true
			if d.Parent != runSpan.SpanID {
				t.Errorf("%s parent = %q, want run %q", d.Name, d.Parent, runSpan.SpanID)
			}
		}
	}
	for _, d := range spans {
		if strings.HasPrefix(d.Name, "checker:") {
			phaseSpans++
			if !propIDs[d.Parent] {
				t.Errorf("%s parent = %q is not a property span", d.Name, d.Parent)
			}
		}
	}
	if propSpans == 0 || phaseSpans == 0 {
		t.Fatalf("want property and checker-phase spans, got %d/%d", propSpans, phaseSpans)
	}

	// The TraceID appears in the structured log for every lifecycle line.
	logs := logBuf.String()
	for _, line := range []string{"job submitted", "job running", "job done"} {
		if !strings.Contains(logs, line) {
			t.Errorf("log missing %q:\n%s", line, logs)
		}
	}
	if !strings.Contains(logs, "trace_id="+snap.TraceID) {
		t.Errorf("log missing trace_id=%s:\n%s", snap.TraceID, logs)
	}

	// GET /v1/jobs/{id}/trace streams the same spans as NDJSON.
	h := s.Handler()
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest(http.MethodGet, "/v1/jobs/"+job.ID+"/trace", nil))
	if rw.Code != http.StatusOK {
		t.Fatalf("trace endpoint status = %d", rw.Code)
	}
	got, err := tracing.ReadNDJSON(rw.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(spans) {
		t.Fatalf("endpoint spans = %d, ring spans = %d", len(got), len(spans))
	}

	// /debug/trace lists the trace.
	rw = httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest(http.MethodGet, "/debug/trace?id="+snap.TraceID, nil))
	if rw.Code != http.StatusOK {
		t.Fatalf("/debug/trace status = %d", rw.Code)
	}
}

// TestTraceparentPropagation submits over HTTP with a fixed traceparent
// and checks the job joins the caller's trace: same TraceID in the 202
// response and in the recorded spans, with the job span parented to the
// caller's span ID.
func TestTraceparentPropagation(t *testing.T) {
	rec := tracing.NewRecorder(256)
	s := newTestServer(t, Config{Workers: 1, Tracer: rec})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	const parent = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	body, _ := json.Marshal(map[string]any{
		"adl":        loadExample(t, "pingpong.pnp"),
		"components": pingpongComponents(t),
	})
	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/jobs", bytes.NewReader(body))
	req.Header.Set("traceparent", parent)
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var snap Job
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	if snap.TraceID != "0af7651916cd43dd8448eb211c80319c" {
		t.Fatalf("job TraceID = %q, want the propagated one", snap.TraceID)
	}

	jb, ok := s.Job(snap.ID)
	if !ok {
		t.Fatal("job vanished")
	}
	waitDone(t, s, jb)
	spans := rec.TraceHex(snap.TraceID)
	if len(spans) == 0 {
		t.Fatal("no spans recorded under the propagated TraceID")
	}
	if spans[0].Name != "job" || spans[0].Parent != "b7ad6b7169203331" {
		t.Fatalf("job span = %+v, want parent b7ad6b7169203331", spans[0])
	}
}

// TestQueueWaitHistogram checks the submission→pickup histogram records
// one observation per job.
func TestQueueWaitHistogram(t *testing.T) {
	reg := obs.NewRegistry()
	s := newTestServer(t, Config{Workers: 1, Registry: reg})
	for i := 0; i < 3; i++ {
		job, err := s.Submit(loadExample(t, "pingpong.pnp"), pingpongComponents(t), checker.Options{}, 0)
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, s, job)
	}
	h := reg.Histogram("verifyd_queue_wait_seconds", nil)
	if h.Count() != 3 {
		t.Fatalf("queue-wait observations = %d, want 3", h.Count())
	}
}

// TestTraceDisabled: without a Tracer, jobs carry no TraceID and the
// trace endpoint 404s.
func TestTraceDisabled(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	job, err := s.Submit(loadExample(t, "pingpong.pnp"), pingpongComponents(t), checker.Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	snap := waitDone(t, s, job)
	if snap.TraceID != "" {
		t.Fatalf("untraced job has TraceID %q", snap.TraceID)
	}
	rw := httptest.NewRecorder()
	s.Handler().ServeHTTP(rw, httptest.NewRequest(http.MethodGet, "/v1/jobs/"+job.ID+"/trace", nil))
	if rw.Code != http.StatusNotFound {
		t.Fatalf("trace endpoint status = %d, want 404", rw.Code)
	}
}
