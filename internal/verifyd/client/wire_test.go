package client_test

// Wire-compatibility tests: the client's mirrored types against the
// real service over real HTTP. If a server payload shape drifts, these
// fail before any external consumer notices.

import (
	"context"
	"net/http/httptest"
	"testing"

	"pnp/internal/sweep"
	"pnp/internal/verifyd"
	"pnp/internal/verifyd/client"
)

const wireADL = `system wire {
    components "wire.pml"

    connector pipe {
        send    syn-blocking
        channel fifo(1)
        receive blocking
    }

    instance p = Producer(send pipe, 1)
    instance c = Consumer(recv pipe, 1)

    invariant safety "got >= 0"
    goal delivered "got == 1"
}
`

const wirePML = `
byte got;
proctype Producer(chan esig; chan edat; byte n) {
	byte i;
	mtype st;
	do
	:: i < n ->
	   edat!i + 1,0,0,0,1;
	   esig?st,_;
	   i = i + 1
	:: else -> break
	od
}
proctype Consumer(chan rsig; chan rdat; byte n) {
	mtype st;
	byte d, sid, sd;
	bit sel, rem;
	do
	:: got < n ->
	   rdat!0,0,0,0,1;
	   rsig?st,_;
	   rdat?d,sid,sd,sel,rem;
	   if
	   :: st == RECV_SUCC -> got = got + 1
	   :: else
	   fi
	:: else -> break
	od
}
`

func newWireServer(t *testing.T) *client.Client {
	t.Helper()
	srv := verifyd.NewServer(verifyd.Config{Workers: 2})
	sv := sweep.NewService(srv, srv.Options(), nil)
	hs := httptest.NewServer(sv.Handler(srv.Handler()))
	t.Cleanup(func() {
		hs.Close()
		srv.Shutdown(context.Background())
		sv.Wait()
	})
	return client.New(hs.URL)
}

func TestWireJobRoundTrip(t *testing.T) {
	c := newWireServer(t)
	ctx := context.Background()
	job, err := c.Submit(ctx, client.JobRequest{
		ADL:        wireADL,
		Components: map[string]string{"wire.pml": wirePML},
	})
	if err != nil {
		t.Fatal(err)
	}
	done, err := c.Wait(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != "done" || done.Report == nil {
		t.Fatalf("job %+v", done)
	}
	if !done.Report.OK || len(done.Report.Properties) != 2 {
		t.Fatalf("report %+v", done.Report)
	}
	if done.Report.Properties[0].Name != "safety" || done.Report.Properties[0].States == 0 {
		t.Fatalf("safety verdict %+v", done.Report.Properties[0])
	}

	list, err := c.Jobs(ctx, "done", "", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 1 || list.Jobs[0].ID != job.ID || list.Jobs[0].OK == nil || !*list.Jobs[0].OK {
		t.Fatalf("list %+v", list)
	}

	if _, err := c.Job(ctx, "job-999"); err == nil {
		t.Fatal("missing job: want error")
	}
}

func TestWireSweepRoundTrip(t *testing.T) {
	c := newWireServer(t)
	ctx := context.Background()
	st, err := c.SubmitSweep(ctx, client.SweepSpec{
		Name:       "wire",
		Base:       wireADL,
		Components: map[string]string{"wire.pml": wirePML},
		Connector:  "pipe",
		Channels:   []string{"fifo(1)", "fifo(1)", "single-slot"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Total != 3 {
		t.Fatalf("total = %d, want 3", st.Total)
	}
	var cells []client.SweepCell
	final, err := c.StreamSweep(ctx, st.ID, func(cell client.SweepCell) {
		cells = append(cells, cell)
	})
	if err != nil {
		t.Fatal(err)
	}
	if final.State != "done" || final.Result == nil {
		t.Fatalf("final %+v", final)
	}
	if len(cells) != 3 {
		t.Fatalf("streamed %d cells, want 3", len(cells))
	}
	// Cells 0 and 1 share a source: exactly one dedup hit.
	if final.Result.DedupHits != 1 {
		t.Fatalf("dedup_hits = %d, want 1", final.Result.DedupHits)
	}
	if cells[1].Verdict != cells[0].Verdict || cells[1].States != cells[0].States || !cells[1].Deduped {
		t.Fatalf("deduped cell diverges: %+v vs %+v", cells[1], cells[0])
	}

	got, err := c.Sweep(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Result == nil || got.Result.Total != 3 {
		t.Fatalf("sweep status %+v", got)
	}
}
