// Package client is the typed Go client of the verification service's
// v1 HTTP API. It deliberately imports nothing from the server packages:
// the wire types below mirror the documented JSON shapes (docs/API.md),
// so the client compiles against the protocol, not the implementation —
// the same position an external consumer of the API is in.
//
// Transient failures — connection errors and 5xx responses on
// idempotent requests — are retried with capped exponential backoff;
// API failures surface as *APIError carrying the uniform error
// envelope's code and message.
//
// Every request carries a W3C traceparent header when the context
// holds a span (tracing.StartSpan / tracing.ContextWithSpan), so a
// remote job or sweep joins the caller's trace; JobTrace and
// SweepTrace pull the server's recorded spans back for local export.
// The tracing package is shared protocol vocabulary, not server
// implementation — the no-server-imports rule above still holds.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"pnp/internal/obs/tracing"
)

// Job mirrors the service's job resource. Node, Failovers, and
// ClusterCached are populated only by a cluster coordinator; a single
// pnpd leaves them zero.
type Job struct {
	ID          string    `json:"id"`
	State       string    `json:"state"` // "queued", "running", "done"
	Submitted   time.Time `json:"submitted"`
	Report      *Report   `json:"report,omitempty"`
	CacheHits   int       `json:"cache_hits"`
	CacheMisses int       `json:"cache_misses"`
	Workers     int       `json:"workers,omitempty"`
	TraceID     string    `json:"trace_id,omitempty"`
	// Attempt counts executions across crashes and failovers (1 for a
	// fresh run); ResumedFrom records where this attempt's search
	// checkpoints came from — a peer node's base URL (cluster re-drive)
	// or "journal" (restart recovery). Both zero on an undisturbed job.
	Attempt     int    `json:"attempt,omitempty"`
	ResumedFrom string `json:"resumed_from,omitempty"`
	// Modules is the submission's module DAG — block library, component
	// files, linked program, connectors — with per-module content
	// addresses and reuse flags; the counters summarize it (since PR10).
	Modules         []ModuleInfo `json:"modules,omitempty"`
	ModulesTotal    int          `json:"modules_total,omitempty"`
	ModulesReused   int          `json:"modules_reused,omitempty"`
	ModulesCompiled int          `json:"modules_compiled,omitempty"`

	Node          string `json:"node,omitempty"`
	Failovers     int    `json:"failovers,omitempty"`
	ClusterCached bool   `json:"cluster_cached,omitempty"`
	Err           string `json:"err,omitempty"`
}

// ModuleInfo mirrors one entry of a job's module DAG: the module's
// content address, its kind ("library", "component", "program",
// "connector"), the fingerprints it was compiled against, and whether
// the server reused a stored artifact instead of compiling (since
// PR10).
type ModuleInfo struct {
	Hash   string   `json:"hash"`
	Kind   string   `json:"kind"`
	Name   string   `json:"name,omitempty"`
	Deps   []string `json:"deps,omitempty"`
	Reused bool     `json:"reused,omitempty"`
}

// Artifact mirrors the GET /v1/artifacts/{hash} hit body: a compiled
// module's envelope — identity plus the canonical source the
// fingerprint covers (since PR10). Deterministic compilation makes the
// source a faithful serialization of the compiled module.
type Artifact struct {
	Hash   string   `json:"hash"`
	Kind   string   `json:"kind"`
	Name   string   `json:"name,omitempty"`
	Deps   []string `json:"deps,omitempty"`
	Source string   `json:"source"`
}

// Report mirrors the service's verdict document.
type Report struct {
	System     string            `json:"system"`
	Processes  int               `json:"processes"`
	Channels   int               `json:"channels"`
	OK         bool              `json:"ok"`
	Failed     int               `json:"failed"`
	Properties []PropertyVerdict `json:"properties"`
}

// PropertyVerdict mirrors one property's verdict.
type PropertyVerdict struct {
	Name    string `json:"name"`
	Kind    string `json:"kind"`
	OK      bool   `json:"ok"`
	Verdict string `json:"verdict"`
	Message string `json:"message,omitempty"`
	Summary string `json:"summary"`

	States      int     `json:"states"`
	Matched     int     `json:"matched"`
	Transitions int     `json:"transitions"`
	Depth       int     `json:"depth"`
	Reduced     int     `json:"reduced,omitempty"`
	Truncated   bool    `json:"truncated,omitempty"`
	ElapsedMS   float64 `json:"elapsed_ms"`

	Counterexample string   `json:"counterexample,omitempty"`
	MSC            string   `json:"msc,omitempty"`
	Unreached      []string `json:"unreached,omitempty"`
	Cached         bool     `json:"cached"`
}

// JobRequest is the submission envelope for Submit.
type JobRequest struct {
	ADL        string            `json:"adl"`
	Components map[string]string `json:"components,omitempty"`

	MaxStates      *int  `json:"max_states,omitempty"`
	MaxDepth       *int  `json:"max_depth,omitempty"`
	BFS            *bool `json:"bfs,omitempty"`
	IgnoreDeadlock *bool `json:"ignore_deadlock,omitempty"`
	PartialOrder   *bool `json:"partial_order,omitempty"`
	WeakFairness   *bool `json:"weak_fairness,omitempty"`
	StrongFairness *bool `json:"strong_fairness,omitempty"`
	Workers        *int  `json:"workers,omitempty"`
	TimeoutMS      int   `json:"timeout_ms,omitempty"`

	// Visited ("exact" or "collapse") and MemLimitBytes tune the
	// server's visited-set storage for this job. Speed/memory knobs
	// only — they never change the verdict and do not enter the
	// submission's content address. There is deliberately no spill-dir
	// field: spill paths are server configuration.
	Visited       *string `json:"visited,omitempty"`
	MemLimitBytes *int64  `json:"mem_limit_bytes,omitempty"`

	// Attempt and ResumeFrom form the resume token a cluster coordinator
	// attaches when re-placing a job after a worker died mid-run: the
	// replica fetches the dead node's search checkpoint (GET
	// /v1/checkpoints/{key}) and continues instead of re-exploring.
	// Neither field enters the submission's content address.
	Attempt    int    `json:"attempt,omitempty"`
	ResumeFrom string `json:"resume_from,omitempty"`
}

// JobSummary mirrors a GET /v1/jobs list element.
type JobSummary struct {
	ID          string    `json:"id"`
	State       string    `json:"state"`
	Submitted   time.Time `json:"submitted"`
	CacheHits   int       `json:"cache_hits"`
	CacheMisses int       `json:"cache_misses"`
	Workers     int       `json:"workers,omitempty"`
	OK          *bool     `json:"ok,omitempty"`
}

// JobList is one page of GET /v1/jobs.
type JobList struct {
	Jobs       []JobSummary `json:"jobs"`
	NextCursor string       `json:"next_cursor,omitempty"`
}

// SweepSpec mirrors the sweep submission (ADL-token dimensions).
type SweepSpec struct {
	Name       string            `json:"name,omitempty"`
	Base       string            `json:"base,omitempty"`
	Components map[string]string `json:"components,omitempty"`
	Connector  string            `json:"connector,omitempty"`

	Sends      []string `json:"sends,omitempty"`
	Channels   []string `json:"channels,omitempty"`
	Recvs      []string `json:"recvs,omitempty"`
	FaultPlans []string `json:"fault_plans,omitempty"`

	UnderLossy bool `json:"under_lossy,omitempty"`
	LossySize  int  `json:"lossy_size,omitempty"`

	MaxStates int `json:"max_states,omitempty"`
	Workers   int `json:"workers,omitempty"`
	TimeoutMS int `json:"timeout_ms,omitempty"`

	Preset  string `json:"preset,omitempty"`
	Msgs    int    `json:"msgs,omitempty"`
	BufSize int    `json:"buf_size,omitempty"`
}

// SweepCell mirrors one sweep cell's result.
type SweepCell struct {
	Index     int    `json:"index"`
	Connector string `json:"connector"`
	Send      string `json:"send"`
	Channel   string `json:"channel"`
	Size      int    `json:"size,omitempty"`
	Recv      string `json:"recv"`
	Faults    string `json:"faults,omitempty"`
	Companion bool   `json:"companion,omitempty"`
	Primary   int    `json:"primary"`

	Verdict    string            `json:"verdict"`
	OK         bool              `json:"ok"`
	States     int               `json:"states"`
	Properties []PropertyVerdict `json:"properties,omitempty"`

	CacheHits   int  `json:"cache_hits"`
	CacheMisses int  `json:"cache_misses"`
	Deduped     bool `json:"deduped,omitempty"`

	// Module accounting of the cell's job (since PR10).
	ModulesReused   int `json:"modules_reused,omitempty"`
	ModulesCompiled int `json:"modules_compiled,omitempty"`

	// Node names the cluster node that served this cell ("coordinator"
	// for cluster-cache hits); empty on a single-node sweep.
	Node string `json:"node,omitempty"`

	ElapsedMS float64 `json:"elapsed_ms"`
	Err       string  `json:"err,omitempty"`
}

// SweepResult mirrors a completed sweep's aggregate.
type SweepResult struct {
	Name  string      `json:"name"`
	Cells []SweepCell `json:"cells"`

	Total       int `json:"total"`
	Passed      int `json:"passed"`
	Failed      int `json:"failed"`
	DedupHits   int `json:"dedup_hits"`
	CacheHits   int `json:"cache_hits"`
	CacheMisses int `json:"cache_misses"`
	// Summed module accounting across the sweep's executed jobs (since
	// PR10).
	ModulesReused   int     `json:"modules_reused,omitempty"`
	ModulesCompiled int     `json:"modules_compiled,omitempty"`
	ElapsedMS       float64 `json:"elapsed_ms"`
}

// SweepStatus mirrors a sweep resource.
type SweepStatus struct {
	ID      string       `json:"id"`
	Name    string       `json:"name"`
	State   string       `json:"state"` // "running" or "done"
	Started time.Time    `json:"started"`
	Total   int          `json:"total_cells"`
	Done    int          `json:"done_cells"`
	Result  *SweepResult `json:"result,omitempty"`
	Err     string       `json:"err,omitempty"`
	TraceID string       `json:"trace_id,omitempty"`
}

// APIError is a non-2xx response decoded from the uniform error
// envelope {"error":{"code","message"}}.
type APIError struct {
	Status  int    // HTTP status
	Code    string // machine-readable code ("invalid_argument", ...)
	Message string
	Line    int // source position, set on ADL errors
	Col     int

	// RetryAfter is the Retry-After header in seconds (0 if absent).
	// A draining pnpd sends it on every 503.
	RetryAfter int
}

// Error implements the error interface.
func (e *APIError) Error() string {
	if e.Line > 0 {
		return fmt.Sprintf("verifyd: %s (%d): %s (line %d, col %d)", e.Code, e.Status, e.Message, e.Line, e.Col)
	}
	return fmt.Sprintf("verifyd: %s (%d): %s", e.Code, e.Status, e.Message)
}

// Temporary reports whether the node said "alive but not serving right
// now" — a 503 (draining, overloaded), a 429, or any response carrying
// Retry-After. A cluster coordinator reroutes Temporary failures to the
// next ring replica without ejecting the node; everything else on the
// 5xx side means the node itself misbehaved. Transport errors (the node
// is unreachable) never produce an APIError at all — they are the
// "dead, eject" signal.
func (e *APIError) Temporary() bool {
	return e.Status == http.StatusServiceUnavailable ||
		e.Status == http.StatusTooManyRequests ||
		e.RetryAfter > 0
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports, test doubles).
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithRetries bounds transient-failure retries per request (default 3;
// 0 disables retrying).
func WithRetries(n int) Option { return func(c *Client) { c.retries = n } }

// WithBackoff sets the initial and maximum retry backoff (defaults
// 100ms and 2s). The delay doubles per attempt, capped at max.
func WithBackoff(initial, max time.Duration) Option {
	return func(c *Client) { c.backoff, c.maxBackoff = initial, max }
}

// WithJitterSeed pins the backoff jitter's random seed, making retry
// timing reproducible (tests, deterministic simulations). Without it
// each client seeds from the clock.
func WithJitterSeed(seed int64) Option {
	return func(c *Client) { c.rng = rand.New(rand.NewSource(seed)) }
}

// Client talks to one verification service.
type Client struct {
	base       string
	hc         *http.Client
	retries    int
	backoff    time.Duration
	maxBackoff time.Duration

	rngMu sync.Mutex
	rng   *rand.Rand
}

// New builds a client for the service at base (e.g.
// "http://localhost:7447").
func New(base string, opts ...Option) *Client {
	c := &Client{
		base:       strings.TrimRight(base, "/"),
		hc:         &http.Client{},
		retries:    3,
		backoff:    100 * time.Millisecond,
		maxBackoff: 2 * time.Second,
		rng:        rand.New(rand.NewSource(time.Now().UnixNano())),
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// jitter spreads a retry delay over [delay/2, delay] (equal jitter), so
// a fleet of clients retrying against a just-recovered server does not
// stampede it in lockstep. Mutex-guarded: one client may retry from
// many goroutines.
func (c *Client) jitter(delay time.Duration) time.Duration {
	half := delay / 2
	if half <= 0 {
		return delay
	}
	c.rngMu.Lock()
	defer c.rngMu.Unlock()
	return half + time.Duration(c.rng.Int63n(int64(half)+1))
}

// do issues one request with retries. body is re-sent on each attempt;
// non-2xx responses decode into *APIError. 5xx responses and transport
// errors are retried (the API's mutating requests are safe to repeat:
// re-submitting content-addressed work is how the cache earns its keep);
// 4xx responses are not.
func (c *Client) do(ctx context.Context, method, path string, body []byte, out any) error {
	delay := c.backoff
	var lastErr error
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, method, c.base+path, bytes.NewReader(body))
		if err != nil {
			return err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		tracing.Inject(req, tracing.Current(ctx))
		resp, err := c.hc.Do(req)
		switch {
		case err != nil:
			lastErr = err
		default:
			retry, err := c.decode(resp, out)
			if !retry {
				return err
			}
			lastErr = err
		}
		if attempt >= c.retries {
			return lastErr
		}
		select {
		case <-time.After(c.jitter(delay)):
		case <-ctx.Done():
			return ctx.Err()
		}
		delay *= 2
		if delay > c.maxBackoff {
			delay = c.maxBackoff
		}
	}
}

// decode consumes one response; retry reports whether the failure is
// transient. out is normally a JSON destination; an out of type
// func(io.Reader) error consumes the success body itself (the NDJSON
// trace endpoints are not single JSON documents).
func (c *Client) decode(resp *http.Response, out any) (retry bool, err error) {
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		switch dst := out.(type) {
		case nil:
			return false, nil
		case func(io.Reader) error:
			return false, dst(resp.Body)
		default:
			return false, json.NewDecoder(resp.Body).Decode(out)
		}
	}
	ae := &APIError{Status: resp.StatusCode}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, perr := strconv.Atoi(ra); perr == nil && secs > 0 {
			ae.RetryAfter = secs
		}
	}
	var eb struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
			Line    int    `json:"line"`
			Col     int    `json:"col"`
		} `json:"error"`
	}
	if derr := json.NewDecoder(resp.Body).Decode(&eb); derr == nil {
		ae.Code, ae.Message, ae.Line, ae.Col = eb.Error.Code, eb.Error.Message, eb.Error.Line, eb.Error.Col
	}
	if ae.Message == "" {
		ae.Message = http.StatusText(resp.StatusCode)
	}
	// Temporary failures (503 drain, 429) are not retried here: the server
	// is telling us to go away for a while, and the right reaction differs
	// by caller — a CLI backs off and resubmits, a coordinator reroutes to
	// another node immediately. Blind in-place retry would just re-ask the
	// same draining node.
	return resp.StatusCode >= 500 && !ae.Temporary(), ae
}

// Submit submits a verification job and returns its initial state.
func (c *Client) Submit(ctx context.Context, req JobRequest) (*Job, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	var job Job
	if err := c.do(ctx, http.MethodPost, "/v1/jobs", body, &job); err != nil {
		return nil, err
	}
	return &job, nil
}

// Job fetches a job by ID.
func (c *Client) Job(ctx context.Context, id string) (*Job, error) {
	var job Job
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id), nil, &job); err != nil {
		return nil, err
	}
	return &job, nil
}

// Jobs lists jobs. status filters by lifecycle state (""= all); cursor
// continues a previous page; limit caps the page size (0 = server
// default).
func (c *Client) Jobs(ctx context.Context, status, cursor string, limit int) (*JobList, error) {
	q := url.Values{}
	if status != "" {
		q.Set("status", status)
	}
	if cursor != "" {
		q.Set("cursor", cursor)
	}
	if limit > 0 {
		q.Set("limit", strconv.Itoa(limit))
	}
	path := "/v1/jobs"
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	var list JobList
	if err := c.do(ctx, http.MethodGet, path, nil, &list); err != nil {
		return nil, err
	}
	return &list, nil
}

// Wait long-polls until the job completes or ctx expires. Each poll
// rides the server's /wait endpoint so waiting costs one slow request,
// not a busy loop.
func (c *Client) Wait(ctx context.Context, id string) (*Job, error) {
	for {
		var job Job
		err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id)+"/wait?timeout=30s", nil, &job)
		if err != nil {
			return nil, err
		}
		if job.State == "done" {
			return &job, nil
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
}

// Health mirrors the GET /healthz body: liveness plus node identity
// (build version) and load (worker pool, search-budget occupancy, cache
// sizes, queue depth).
type Health struct {
	Status             string `json:"status"`
	Version            string `json:"version"`
	Workers            int    `json:"workers"`
	SearchBudget       int    `json:"search_budget"`
	SearchWorkersInUse int    `json:"search_workers_in_use"`
	ResultCacheEntries int    `json:"result_cache_entries"`
	ReportCacheEntries int    `json:"report_cache_entries"`
	Jobs               int    `json:"jobs"`
	// Durable reports whether the node journals jobs to a data dir and
	// can therefore survive kill -9 without losing accepted work.
	Durable  bool `json:"durable,omitempty"`
	Draining bool `json:"draining,omitempty"`
}

// Health fetches the node's /healthz document.
func (c *Client) Health(ctx context.Context) (*Health, error) {
	var h Health
	if err := c.do(ctx, http.MethodGet, "/healthz", nil, &h); err != nil {
		return nil, err
	}
	return &h, nil
}

// Ready probes /readyz: nil means the node accepts new work; a
// *APIError with Temporary() true means it is up but draining.
func (c *Client) Ready(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/readyz", nil, nil)
}

// CachePeek asks the node whether it has already completed the
// submission addressed by key (a Submission hash in hex, as computed by
// a coordinator). A miss returns (nil, nil) — it is an expected answer,
// not a failure.
func (c *Client) CachePeek(ctx context.Context, key string) (*Report, error) {
	var hit struct {
		Key    string  `json:"key"`
		Report *Report `json:"report"`
	}
	err := c.do(ctx, http.MethodGet, "/v1/cache/"+url.PathEscape(key), nil, &hit)
	var ae *APIError
	if errors.As(err, &ae) && ae.Status == http.StatusNotFound {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	return hit.Report, nil
}

// Artifact asks the node whether it holds the compiled module
// addressed by hash (a module fingerprint in hex, as listed in a job's
// modules section). A miss returns (nil, nil) — like CachePeek, a miss
// is an expected answer, not a failure.
func (c *Client) Artifact(ctx context.Context, hash string) (*Artifact, error) {
	var art Artifact
	err := c.do(ctx, http.MethodGet, "/v1/artifacts/"+url.PathEscape(hash), nil, &art)
	var ae *APIError
	if errors.As(err, &ae) && ae.Status == http.StatusNotFound {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	return &art, nil
}

// JobTrace fetches a job's recorded spans (GET /v1/jobs/{id}/trace).
// It fails with a not_found *APIError when the server runs without a
// flight recorder or the trace has been evicted from its ring.
func (c *Client) JobTrace(ctx context.Context, id string) ([]tracing.SpanData, error) {
	return c.trace(ctx, "/v1/jobs/"+url.PathEscape(id)+"/trace")
}

// SweepTrace fetches a sweep's recorded spans (GET /v1/sweeps/{id}/trace).
func (c *Client) SweepTrace(ctx context.Context, id string) ([]tracing.SpanData, error) {
	return c.trace(ctx, "/v1/sweeps/"+url.PathEscape(id)+"/trace")
}

func (c *Client) trace(ctx context.Context, path string) ([]tracing.SpanData, error) {
	var spans []tracing.SpanData
	read := func(r io.Reader) error {
		var err error
		spans, err = tracing.ReadNDJSON(r)
		return err
	}
	if err := c.do(ctx, http.MethodGet, path, nil, read); err != nil {
		return nil, err
	}
	return spans, nil
}

// SubmitSweep submits a design-space sweep.
func (c *Client) SubmitSweep(ctx context.Context, spec SweepSpec) (*SweepStatus, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	var st SweepStatus
	if err := c.do(ctx, http.MethodPost, "/v1/sweeps", body, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Sweep fetches a sweep's status (result included once done).
func (c *Client) Sweep(ctx context.Context, id string) (*SweepStatus, error) {
	var st SweepStatus
	if err := c.do(ctx, http.MethodGet, "/v1/sweeps/"+url.PathEscape(id), nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// StreamSweep follows a sweep's NDJSON stream, invoking onCell for each
// cell line, and returns the final status. A dropped connection
// reconnects (with the usual backoff) and replays; cells already seen
// are skipped, so onCell observes each index exactly once, in order.
func (c *Client) StreamSweep(ctx context.Context, id string, onCell func(SweepCell)) (*SweepStatus, error) {
	delay := c.backoff
	seen := 0
	var lastErr error
	for attempt := 0; ; attempt++ {
		st, err := c.streamOnce(ctx, id, &seen, onCell)
		if err == nil {
			return st, nil
		}
		var ae *APIError
		if errors.As(err, &ae) && (ae.Status < 500 || ae.Temporary()) {
			// 4xx won't improve on retry, and a Temporary 5xx (drain) is a
			// routing decision for the caller, not a backoff-and-rehash.
			return nil, err
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		lastErr = err
		if attempt >= c.retries {
			return nil, lastErr
		}
		select {
		case <-time.After(c.jitter(delay)):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		delay *= 2
		if delay > c.maxBackoff {
			delay = c.maxBackoff
		}
	}
}

// streamOnce consumes one stream connection, advancing *seen past
// replayed cells.
func (c *Client) streamOnce(ctx context.Context, id string, seen *int, onCell func(SweepCell)) (*SweepStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.base+"/v1/sweeps/"+url.PathEscape(id)+"/stream", nil)
	if err != nil {
		return nil, err
	}
	tracing.Inject(req, tracing.Current(ctx))
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		_, err := c.decode(resp, nil)
		return nil, err
	}
	sc := bufio.NewScanner(resp.Body)
	// Cell lines carry full property verdicts (counterexamples included),
	// which overflow bufio's default 64KiB line limit on real designs.
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var line struct {
		Cell  *SweepCell   `json:"cell"`
		Sweep *SweepStatus `json:"sweep"`
	}
	for sc.Scan() {
		line.Cell, line.Sweep = nil, nil
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			return nil, fmt.Errorf("bad stream line: %w", err)
		}
		switch {
		case line.Cell != nil:
			if line.Cell.Index < *seen {
				continue // replayed after a reconnect
			}
			*seen = line.Cell.Index + 1
			if onCell != nil {
				onCell(*line.Cell)
			}
		case line.Sweep != nil:
			return line.Sweep, nil
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return nil, fmt.Errorf("stream ended without a sweep line")
}
