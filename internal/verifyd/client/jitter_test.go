package client

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestJitterBounds: jittered delays stay within the equal-jitter window
// [delay/2, delay] and never collapse to zero.
func TestJitterBounds(t *testing.T) {
	c := New("http://unused", WithJitterSeed(7))
	for _, delay := range []time.Duration{100 * time.Millisecond, time.Second, 2 * time.Second} {
		for i := 0; i < 200; i++ {
			got := c.jitter(delay)
			if got < delay/2 || got > delay {
				t.Fatalf("jitter(%v) = %v, want within [%v, %v]", delay, got, delay/2, delay)
			}
		}
	}
	// Degenerate tiny delays pass through rather than panicking.
	if got := c.jitter(1); got != 1 {
		t.Errorf("jitter(1ns) = %v, want 1ns", got)
	}
}

// TestJitterSeededDeterminism: two clients with the same seed produce
// identical jitter sequences — retry timing is reproducible — and a
// different seed diverges.
func TestJitterSeededDeterminism(t *testing.T) {
	a := New("http://unused", WithJitterSeed(42))
	b := New("http://unused", WithJitterSeed(42))
	other := New("http://unused", WithJitterSeed(43))
	diverged := false
	for i := 0; i < 100; i++ {
		av, bv := a.jitter(time.Second), b.jitter(time.Second)
		if av != bv {
			t.Fatalf("same-seed clients diverged at draw %d: %v != %v", i, av, bv)
		}
		if av != other.jitter(time.Second) {
			diverged = true
		}
	}
	if !diverged {
		t.Error("different seeds never diverged — jitter is not actually random")
	}
}

// TestRetryBackoffJittered: a retried request sleeps the jittered
// delays of the fixed seed, not the raw exponential schedule.
func TestRetryBackoffJittered(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 3 {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		w.Write([]byte(`{"status":"ok"}`))
	}))
	defer ts.Close()

	const seed = 99
	c := New(ts.URL, WithJitterSeed(seed),
		WithBackoff(20*time.Millisecond, 100*time.Millisecond), WithRetries(4))
	// The expected schedule, drawn from an identical generator.
	ref := New("http://unused", WithJitterSeed(seed),
		WithBackoff(20*time.Millisecond, 100*time.Millisecond))
	expected := ref.jitter(20*time.Millisecond) + ref.jitter(40*time.Millisecond)

	start := time.Now()
	if _, err := c.Health(context.Background()); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if n := calls.Load(); n != 3 {
		t.Fatalf("server saw %d calls, want 3", n)
	}
	if elapsed < expected {
		t.Errorf("retries returned in %v, faster than the jittered schedule %v", elapsed, expected)
	}
	if elapsed > expected+2*time.Second {
		t.Errorf("retries took %v, way past the jittered schedule %v", elapsed, expected)
	}
}
