package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
)

func TestAPIErrorTemporary(t *testing.T) {
	cases := []struct {
		name string
		err  APIError
		want bool
	}{
		{"503 drain", APIError{Status: http.StatusServiceUnavailable}, true},
		{"429 throttle", APIError{Status: http.StatusTooManyRequests}, true},
		{"retry-after on any status", APIError{Status: http.StatusInternalServerError, RetryAfter: 3}, true},
		{"plain 500", APIError{Status: http.StatusInternalServerError}, false},
		{"bad request", APIError{Status: http.StatusBadRequest}, false},
		{"not found", APIError{Status: http.StatusNotFound}, false},
	}
	for _, tc := range cases {
		if got := tc.err.Temporary(); got != tc.want {
			t.Errorf("%s: Temporary() = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestNoRetryOn503Drain: a 503 is the server saying "go elsewhere" —
// retrying in place would re-ask the draining node, so the client must
// fail fast and surface the drain distinctly from transport errors.
func TestNoRetryOn503Drain(t *testing.T) {
	var calls atomic.Int32
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "7")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprint(w, `{"error":{"code":"unavailable","message":"draining"}}`)
	}))
	defer hs.Close()

	c := New(hs.URL, WithRetries(3))
	_, err := c.Submit(context.Background(), JobRequest{ADL: "system x {}"})
	var ae *APIError
	if !errors.As(err, &ae) {
		t.Fatalf("want *APIError, got %v", err)
	}
	if ae.Status != http.StatusServiceUnavailable || ae.RetryAfter != 7 {
		t.Fatalf("decoded envelope: %+v", ae)
	}
	if !ae.Temporary() {
		t.Fatal("a 503 with Retry-After must be Temporary")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("client called the draining server %d times, want 1", got)
	}
}

func TestHealthReadyAndCachePeek(t *testing.T) {
	const key = "0000000000000000000000000000000000000000000000000000000000000000"
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"status":"ok","version":"1.2.3","workers":4,"search_budget":8,"result_cache_entries":2}`)
	})
	ready := &atomic.Bool{}
	ready.Store(true)
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if !ready.Load() {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprint(w, `{"error":{"code":"unavailable","message":"draining"}}`)
			return
		}
		fmt.Fprint(w, `{"status":"ready"}`)
	})
	mux.HandleFunc("GET /v1/cache/{key}", func(w http.ResponseWriter, r *http.Request) {
		if r.PathValue("key") != key {
			w.WriteHeader(http.StatusNotFound)
			fmt.Fprint(w, `{"error":{"code":"not_found","message":"miss"}}`)
			return
		}
		fmt.Fprintf(w, `{"key":%q,"report":{"system":"ping","ok":true}}`, key)
	})
	hs := httptest.NewServer(mux)
	defer hs.Close()

	c := New(hs.URL, WithRetries(0))
	ctx := context.Background()

	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Version != "1.2.3" || h.Workers != 4 || h.SearchBudget != 8 {
		t.Fatalf("health document: %+v", h)
	}

	if err := c.Ready(ctx); err != nil {
		t.Fatalf("ready: %v", err)
	}
	ready.Store(false)
	err = c.Ready(ctx)
	var ae *APIError
	if !errors.As(err, &ae) || !ae.Temporary() {
		t.Fatalf("draining readyz should be a Temporary APIError, got %v", err)
	}

	rep, err := c.CachePeek(ctx, key)
	if err != nil || rep == nil || !rep.OK || rep.System != "ping" {
		t.Fatalf("cache hit: rep=%+v err=%v", rep, err)
	}
	miss, err := c.CachePeek(ctx, "ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff")
	if err != nil || miss != nil {
		t.Fatalf("cache miss must be (nil, nil), got rep=%+v err=%v", miss, err)
	}
}
