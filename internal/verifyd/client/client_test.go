package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func TestRetryOn5xxThenSuccess(t *testing.T) {
	var calls atomic.Int32
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 3 {
			w.WriteHeader(http.StatusBadGateway)
			fmt.Fprint(w, `{"error":{"code":"internal","message":"flaky"}}`)
			return
		}
		fmt.Fprint(w, `{"id":"job-1","state":"queued"}`)
	}))
	defer hs.Close()

	c := New(hs.URL, WithRetries(5), WithBackoff(time.Millisecond, 4*time.Millisecond))
	job, err := c.Submit(context.Background(), JobRequest{ADL: "system x {}"})
	if err != nil {
		t.Fatal(err)
	}
	if job.ID != "job-1" || calls.Load() != 3 {
		t.Fatalf("job %+v after %d calls", job, calls.Load())
	}
}

func TestNoRetryOn4xx(t *testing.T) {
	var calls atomic.Int32
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		fmt.Fprint(w, `{"error":{"code":"invalid_argument","message":"bad ADL","line":2,"col":5}}`)
	}))
	defer hs.Close()

	c := New(hs.URL, WithRetries(5), WithBackoff(time.Millisecond, 4*time.Millisecond))
	_, err := c.Submit(context.Background(), JobRequest{ADL: "junk"})
	var ae *APIError
	if !errors.As(err, &ae) {
		t.Fatalf("want *APIError, got %v", err)
	}
	if ae.Status != 400 || ae.Code != "invalid_argument" || ae.Line != 2 || ae.Col != 5 {
		t.Fatalf("APIError %+v", ae)
	}
	if calls.Load() != 1 {
		t.Fatalf("4xx retried: %d calls", calls.Load())
	}
}

func TestRetriesExhausted(t *testing.T) {
	var calls atomic.Int32
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusInternalServerError)
		fmt.Fprint(w, `{"error":{"code":"internal","message":"down"}}`)
	}))
	defer hs.Close()

	c := New(hs.URL, WithRetries(2), WithBackoff(time.Millisecond, 2*time.Millisecond))
	_, err := c.Job(context.Background(), "job-1")
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != 500 {
		t.Fatalf("want 500 *APIError, got %v", err)
	}
	if calls.Load() != 3 { // initial + 2 retries
		t.Fatalf("got %d calls, want 3", calls.Load())
	}
}

func TestRetryOnConnectionError(t *testing.T) {
	// A server that dies after the first (failed) response: the client
	// must survive the dead address until it gives up.
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	addr := hs.URL
	hs.Close()

	c := New(addr, WithRetries(2), WithBackoff(time.Millisecond, 2*time.Millisecond))
	start := time.Now()
	_, err := c.Job(context.Background(), "job-1")
	if err == nil {
		t.Fatal("want connection error")
	}
	var ae *APIError
	if errors.As(err, &ae) {
		t.Fatalf("connection failure surfaced as APIError: %v", ae)
	}
	// Backoff 1ms + 2ms must have elapsed.
	if elapsed := time.Since(start); elapsed < 3*time.Millisecond {
		t.Fatalf("no backoff observed: %v", elapsed)
	}
}

func TestBackoffHonorsContext(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer hs.Close()

	c := New(hs.URL, WithRetries(10), WithBackoff(time.Hour, time.Hour))
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := c.Job(ctx, "job-1")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded from backoff sleep, got %v", err)
	}
}

func TestJobsPagination(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		if q.Get("status") != "done" || q.Get("limit") != "2" {
			t.Errorf("query = %v", q)
		}
		switch q.Get("cursor") {
		case "":
			fmt.Fprint(w, `{"jobs":[{"id":"job-1"},{"id":"job-2"}],"next_cursor":"2"}`)
		case "2":
			fmt.Fprint(w, `{"jobs":[{"id":"job-3"}]}`)
		default:
			t.Errorf("cursor = %q", q.Get("cursor"))
		}
	}))
	defer hs.Close()

	c := New(hs.URL)
	var ids []string
	cursor := ""
	for {
		page, err := c.Jobs(context.Background(), "done", cursor, 2)
		if err != nil {
			t.Fatal(err)
		}
		for _, j := range page.Jobs {
			ids = append(ids, j.ID)
		}
		if page.NextCursor == "" {
			break
		}
		cursor = page.NextCursor
	}
	if len(ids) != 3 || ids[0] != "job-1" || ids[2] != "job-3" {
		t.Fatalf("ids = %v", ids)
	}
}

func TestStreamSweepReconnectSkipsSeenCells(t *testing.T) {
	var conns atomic.Int32
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := conns.Add(1)
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		enc.Encode(map[string]any{"cell": map[string]any{"index": 0, "connector": "a"}})
		if n == 1 {
			enc.Encode(map[string]any{"cell": map[string]any{"index": 1, "connector": "b"}})
			// Drop the connection mid-stream: the client must reconnect
			// and not replay cells 0 and 1 to the callback.
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Fatal("no hijacker")
			}
			conn, _, _ := hj.Hijack()
			conn.Close()
			return
		}
		enc.Encode(map[string]any{"cell": map[string]any{"index": 1, "connector": "b"}})
		enc.Encode(map[string]any{"cell": map[string]any{"index": 2, "connector": "c"}})
		enc.Encode(map[string]any{"sweep": map[string]any{"id": "sweep-1", "state": "done"}})
	}))
	defer hs.Close()

	c := New(hs.URL, WithRetries(3), WithBackoff(time.Millisecond, 4*time.Millisecond))
	var got []int
	st, err := c.StreamSweep(context.Background(), "sweep-1", func(cell SweepCell) {
		got = append(got, cell.Index)
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "done" {
		t.Fatalf("final status %+v", st)
	}
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("cells seen = %v, want [0 1 2]", got)
	}
	if conns.Load() != 2 {
		t.Fatalf("connections = %d, want 2", conns.Load())
	}
}

func TestStreamSweepNotFound(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNotFound)
		fmt.Fprint(w, `{"error":{"code":"not_found","message":"no such sweep"}}`)
	}))
	defer hs.Close()
	c := New(hs.URL, WithBackoff(time.Millisecond, time.Millisecond))
	_, err := c.StreamSweep(context.Background(), "nope", nil)
	var ae *APIError
	if !errors.As(err, &ae) || ae.Code != "not_found" {
		t.Fatalf("want not_found APIError, got %v", err)
	}
}
