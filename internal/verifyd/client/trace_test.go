package client

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"pnp/internal/obs/tracing"
)

// TestTraceparentInjected: a context carrying a span stamps every
// request with its traceparent; a bare context sends none.
func TestTraceparentInjected(t *testing.T) {
	var gotHeader atomic.Value
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotHeader.Store(r.Header.Get(tracing.Header))
		w.Write([]byte(`{"id":"job-1","state":"queued"}`))
	}))
	defer hs.Close()
	c := New(hs.URL)

	rec := tracing.NewRecorder(16)
	ctx, span := rec.StartSpan(context.Background(), "cli")
	if _, err := c.Submit(ctx, JobRequest{ADL: "system x {}"}); err != nil {
		t.Fatal(err)
	}
	want := tracing.FormatTraceparent(span.Context())
	if h := gotHeader.Load().(string); h != want {
		t.Fatalf("traceparent = %q, want %q", h, want)
	}
	sc, ok := tracing.ParseTraceparent(gotHeader.Load().(string))
	if !ok || sc.TraceID != span.TraceID() || sc.SpanID != span.SpanID() {
		t.Fatalf("header %q does not round-trip to the client span", gotHeader.Load())
	}
	span.End()

	if _, err := c.Job(context.Background(), "job-1"); err != nil {
		t.Fatal(err)
	}
	if h := gotHeader.Load().(string); h != "" {
		t.Fatalf("bare context sent traceparent %q", h)
	}
}

// TestJobTraceFetch decodes the NDJSON trace endpoint into spans, and
// surfaces not_found as an *APIError without retrying.
func TestJobTraceFetch(t *testing.T) {
	rec := tracing.NewRecorder(16)
	_, root := rec.StartSpan(context.Background(), "job")
	root.SetAttr("job_id", "job-1")
	root.End()
	spans := rec.Spans()

	var calls atomic.Int32
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		switch r.URL.Path {
		case "/v1/jobs/job-1/trace":
			w.Header().Set("Content-Type", tracing.NDJSONContentType)
			tracing.WriteNDJSON(w, spans)
		default:
			w.WriteHeader(http.StatusNotFound)
			w.Write([]byte(`{"error":{"code":"not_found","message":"no trace"}}`))
		}
	}))
	defer hs.Close()

	c := New(hs.URL, WithRetries(2), WithBackoff(time.Millisecond, time.Millisecond))
	got, err := c.JobTrace(context.Background(), "job-1")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Name != "job" || got[0].TraceID != root.TraceID().String() {
		t.Fatalf("fetched spans = %+v", got)
	}

	calls.Store(0)
	if _, err := c.SweepTrace(context.Background(), "missing"); err == nil {
		t.Fatal("want not_found error")
	}
	if calls.Load() != 1 {
		t.Fatalf("404 retried: %d calls", calls.Load())
	}
}
