package verifyd

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"

	"pnp/internal/adl"
	"pnp/internal/blocks"
	"pnp/internal/checker"
)

// CacheKey content-addresses one (compiled model, property, options)
// verification task: equal keys mean the checker would explore the same
// state space for the same property under the same search options, so
// the verdict can be reused.
type CacheKey [sha256.Size]byte

// String renders the key as hex (for logs and debug endpoints).
func (k CacheKey) String() string { return hex.EncodeToString(k[:]) }

// ModelHash digests the composed system: the full pml source the program
// was compiled from (compilation is deterministic, so source text is a
// faithful address of the compiled program) plus the structural
// fingerprint of the instantiated model — channels, process instances,
// and their bindings. Swapping a single port kind in the ADL changes the
// spawned block proctypes and therefore the hash; re-submitting an
// unchanged design does not.
func ModelHash(b *blocks.Builder) [sha256.Size]byte {
	h := sha256.New()
	io.WriteString(h, b.Source())
	h.Write([]byte{0})
	b.System().WriteFingerprint(h)
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}

// OptionsKey canonicalizes the verdict-relevant checker options into a
// stable string. Callback and plumbing fields (Progress, Metrics,
// Context) do not influence verdicts and are excluded; Invariants are
// covered by the property's own source text. Workers is normalized to
// the engine it selects ("par"), not the count: the parallel engine's
// verdicts and stats are identical at every worker count, and hashing
// the dynamically granted count would fragment the cache for no reason.
func OptionsKey(o checker.Options) string {
	par := o.Workers >= 1 && !o.PartialOrder && !o.ReportUnreached
	return fmt.Sprintf("ms=%d;md=%d;bfs=%t;id=%t;ru=%t;po=%t;wf=%t;sf=%t;bs=%t;bb=%d;par=%t",
		o.MaxStates, o.MaxDepth, o.BFS, o.IgnoreDeadlock, o.ReportUnreached,
		o.PartialOrder, o.WeakFairness, o.StrongFairness, o.Bitstate, o.BitstateBits, par)
}

// Key combines a model hash, one property's canonical source, the
// canonicalized options, and the system's fault plan into the
// result-cache key. The fault plan joins the key even though today's
// checker explores the lossy adversary structurally (via the model
// hash): a design resubmitted with a different `faults` block is a
// different verification task, and its cached verdict must not be
// served for another plan. faultsCanon is faults.Plan.Canonical() —
// empty for a system with no fault plan.
func Key(model [sha256.Size]byte, prop adl.PropertySource, opts checker.Options, faultsCanon string) CacheKey {
	h := sha256.New()
	h.Write(model[:])
	io.WriteString(h, "\x00"+prop.Kind+"\x00"+prop.Name+"\x00"+prop.Text+"\x00")
	io.WriteString(h, OptionsKey(opts))
	io.WriteString(h, "\x00"+faultsCanon)
	var out CacheKey
	h.Sum(out[:0])
	return out
}
