package verifyd

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sort"

	"pnp/internal/adl"
	"pnp/internal/blocks"
	"pnp/internal/checker"
)

// CacheKey content-addresses one (compiled model, property, options)
// verification task: equal keys mean the checker would explore the same
// state space for the same property under the same search options, so
// the verdict can be reused.
type CacheKey [sha256.Size]byte

// String renders the key as hex (for logs and debug endpoints).
func (k CacheKey) String() string { return hex.EncodeToString(k[:]) }

// ModelHash digests the composed system: the full pml source the program
// was compiled from (compilation is deterministic, so source text is a
// faithful address of the compiled program) plus the structural
// fingerprint of the instantiated model — channels, process instances,
// and their bindings. Swapping a single port kind in the ADL changes the
// spawned block proctypes and therefore the hash; re-submitting an
// unchanged design does not.
func ModelHash(b *blocks.Builder) [sha256.Size]byte {
	h := sha256.New()
	io.WriteString(h, b.Source())
	h.Write([]byte{0})
	b.System().WriteFingerprint(h)
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}

// OptionsKey canonicalizes the verdict-relevant checker options into a
// stable string. Options are normalized first (checker.Options
// Normalized), so the nested Storage group and its deprecated flat
// aliases hash identically — the pin test for the PR10 options
// redesign. Callback and plumbing fields (Progress, Metrics, Context)
// do not influence verdicts and are excluded; Invariants are covered by
// the property's own source text. Workers is normalized to the engine
// it selects ("par"), not the count: the parallel engine's verdicts and
// stats are identical at every worker count, and hashing the
// dynamically granted count would fragment the cache for no reason.
// Storage.Visited, Storage.MemLimit, and Storage.SpillDir are likewise
// excluded: visited-set storage (exact, collapse-compressed, or
// disk-spilled) trades memory for time without ever changing
// membership, so every storage mode computes the same verdict and
// shares one cache entry. Bitstate is included — it genuinely changes
// coverage. Durability never influences verdicts and is excluded.
func OptionsKey(o checker.Options) string {
	o = o.Normalized()
	par := o.Workers >= 1 && !o.PartialOrder && !o.ReportUnreached
	return fmt.Sprintf("ms=%d;md=%d;bfs=%t;id=%t;ru=%t;po=%t;wf=%t;sf=%t;bs=%t;bb=%d;par=%t",
		o.MaxStates, o.MaxDepth, o.BFS, o.IgnoreDeadlock, o.ReportUnreached,
		o.PartialOrder, o.WeakFairness, o.StrongFairness, o.Storage.Bitstate, o.Storage.BitstateBits, par)
}

// Submission is the wire-visible content of one job submission that
// determines its verdict: the ADL source, the inlined components, and
// the verdict-relevant search-shape overrides, exactly as they appear
// in the POST /v1/jobs envelope. Workers and timeout are deliberately
// absent — they change how fast a verdict is computed, never what it
// is — so resubmitting with a different worker cap still hits.
//
// Its Key content-addresses whole job reports the way CacheKey
// addresses single property verdicts. The cluster coordinator hashes
// its routing ring and its cluster-wide result cache on it, and GET
// /v1/cache/{key} on a worker answers by it; both sides compute the key
// from the wire fields alone — before any server-side defaulting — so
// they always agree.
type Submission struct {
	ADL        string
	Components map[string]string

	MaxStates      *int
	MaxDepth       *int
	BFS            *bool
	IgnoreDeadlock *bool
	PartialOrder   *bool
	WeakFairness   *bool
	StrongFairness *bool
}

// Key digests the submission into its content address.
func (s Submission) Key() CacheKey {
	h := sha256.New()
	io.WriteString(h, s.ADL)
	h.Write([]byte{0})
	names := make([]string, 0, len(s.Components))
	for name := range s.Components {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		io.WriteString(h, name+"\x00"+s.Components[name]+"\x00")
	}
	opt := func(tag string, v any) {
		// Absent overrides hash differently from explicit zero values:
		// "max_states absent" means "the server's default", which need
		// not be zero.
		io.WriteString(h, tag+"=")
		switch p := v.(type) {
		case *int:
			if p != nil {
				fmt.Fprintf(h, "%d", *p)
			}
		case *bool:
			if p != nil {
				fmt.Fprintf(h, "%t", *p)
			}
		}
		h.Write([]byte{0})
	}
	opt("ms", s.MaxStates)
	opt("md", s.MaxDepth)
	opt("bfs", s.BFS)
	opt("id", s.IgnoreDeadlock)
	opt("po", s.PartialOrder)
	opt("wf", s.WeakFairness)
	opt("sf", s.StrongFairness)
	var out CacheKey
	h.Sum(out[:0])
	return out
}

// Key combines a model hash, one property's canonical source, the
// canonicalized options, and the system's fault plan into the
// result-cache key. The fault plan joins the key even though today's
// checker explores the lossy adversary structurally (via the model
// hash): a design resubmitted with a different `faults` block is a
// different verification task, and its cached verdict must not be
// served for another plan. faultsCanon is faults.Plan.Canonical() —
// empty for a system with no fault plan.
func Key(model [sha256.Size]byte, prop adl.PropertySource, opts checker.Options, faultsCanon string) CacheKey {
	h := sha256.New()
	h.Write(model[:])
	io.WriteString(h, "\x00"+prop.Kind+"\x00"+prop.Name+"\x00"+prop.Text+"\x00")
	io.WriteString(h, OptionsKey(opts))
	io.WriteString(h, "\x00"+faultsCanon)
	var out CacheKey
	h.Sum(out[:0])
	return out
}
