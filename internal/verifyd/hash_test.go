package verifyd

import (
	"testing"

	"pnp/internal/checker"
)

// TestOptionsKeyPinsSpellings is the pin test for the PR10 options
// redesign: the deprecated flat storage fields and the nested Storage
// group must hash to the identical key string, so cached verdicts
// survive callers migrating from one spelling to the other.
func TestOptionsKeyPinsSpellings(t *testing.T) {
	flat := checker.Options{
		MaxStates: 1000, MaxDepth: 50, BFS: true,
		Bitstate: true, BitstateBits: 24,
		Visited: checker.VisitedCollapse, MemLimit: 1 << 20,
	}
	nested := checker.Options{
		MaxStates: 1000, MaxDepth: 50, BFS: true,
		Storage: checker.StorageOptions{
			Bitstate: true, BitstateBits: 24,
			Visited: checker.VisitedCollapse, MemLimit: 1 << 20,
		},
	}
	if fk, nk := OptionsKey(flat), OptionsKey(nested); fk != nk {
		t.Fatalf("flat and nested spellings must hash identically:\n  flat   %s\n  nested %s", fk, nk)
	}
}

// TestOptionsKeyFormatStable pins the key's literal format: changing it
// silently invalidates every durable cached verdict.
func TestOptionsKeyFormatStable(t *testing.T) {
	got := OptionsKey(checker.Options{MaxStates: 10, Workers: 2})
	want := "ms=10;md=0;bfs=false;id=false;ru=false;po=false;wf=false;sf=false;bs=false;bb=0;par=true"
	if got != want {
		t.Fatalf("OptionsKey format drifted:\n  got  %s\n  want %s", got, want)
	}
}

// TestOptionsKeyExcludesStorageMode: visited-set storage trades memory
// for time without changing membership, so exact, collapse, and spilled
// searches must share one cache entry; bitstate genuinely changes
// coverage and must not.
func TestOptionsKeyExcludesStorageMode(t *testing.T) {
	base := OptionsKey(checker.Options{MaxStates: 10})
	collapse := OptionsKey(checker.Options{MaxStates: 10,
		Storage: checker.StorageOptions{Visited: checker.VisitedCollapse, MemLimit: 1 << 20}})
	if base != collapse {
		t.Fatal("storage mode must not influence the options key")
	}
	bitstate := OptionsKey(checker.Options{MaxStates: 10,
		Storage: checker.StorageOptions{Bitstate: true, BitstateBits: 20}})
	if base == bitstate {
		t.Fatal("bitstate changes coverage and must change the key")
	}
}
