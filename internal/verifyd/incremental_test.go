package verifyd

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"pnp/internal/checker"
	"pnp/internal/obs"
)

func mustSubmit(t *testing.T, s *Server, src string, comps map[string]string, opts checker.Options) *Job {
	t.Helper()
	job, err := s.Submit(src, comps, opts, 0)
	if err != nil {
		t.Fatal(err)
	}
	return job
}

// TestIncrementalReverification pins the PR10 acceptance path: a
// one-connector edit to a warm multi-module design recompiles only the
// changed module (modules_reused == modules_total - 1), and the warm
// verdict is identical — per property: verdict, stored states,
// counterexample — to a cold run of the same edited design, at both
// worker counts.
func TestIncrementalReverification(t *testing.T) {
	src := loadExample(t, "bridge.pnp")
	edited := strings.Replace(src, "channel single-slot", "channel fifo(1)", 1)
	if edited == src {
		t.Fatal("edit did not apply")
	}
	comps := bridgeComponents(t)

	for _, workers := range []int{1, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			opts := checker.Options{Workers: workers}

			// Cold baseline: a fresh server sees the edited design first.
			cold := newTestServer(t, Config{Workers: 2})
			cj := waitDone(t, cold, mustSubmit(t, cold, edited, comps, opts))
			if cj.Report == nil {
				t.Fatalf("cold run produced no report: %+v", cj)
			}
			if cj.ModulesCompiled == 0 || cj.ModulesReused+cj.ModulesCompiled != cj.ModulesTotal {
				t.Fatalf("cold module accounting inconsistent: %+v of %d", cj.Modules, cj.ModulesTotal)
			}

			// Warm path: verify the base design first, then resubmit with
			// exactly one connector edited.
			warm := newTestServer(t, Config{Workers: 2})
			waitDone(t, warm, mustSubmit(t, warm, src, comps, opts))
			wj := waitDone(t, warm, mustSubmit(t, warm, edited, comps, opts))
			if wj.Report == nil {
				t.Fatalf("warm run produced no report: %+v", wj)
			}
			if wj.ModulesTotal == 0 || wj.ModulesReused != wj.ModulesTotal-1 || wj.ModulesCompiled != 1 {
				t.Fatalf("one-connector edit: total=%d reused=%d compiled=%d, want N-1 reused, 1 compiled",
					wj.ModulesTotal, wj.ModulesReused, wj.ModulesCompiled)
			}

			// Verdict parity, property by property.
			if cj.Report.OK != wj.Report.OK || len(cj.Report.Properties) != len(wj.Report.Properties) {
				t.Fatalf("cold/warm reports diverge: ok=%v/%v props=%d/%d",
					cj.Report.OK, wj.Report.OK, len(cj.Report.Properties), len(wj.Report.Properties))
			}
			for i := range cj.Report.Properties {
				cp, wp := cj.Report.Properties[i], wj.Report.Properties[i]
				if cp.Name != wp.Name || cp.OK != wp.OK || cp.Verdict != wp.Verdict ||
					cp.States != wp.States || cp.Counterexample != wp.Counterexample {
					t.Errorf("property %s: cold (%s, %d states) != warm (%s, %d states)",
						cp.Name, cp.Verdict, cp.States, wp.Verdict, wp.States)
				}
			}
		})
	}
}

// TestJobModulesOnWire checks the additive v1 surface: the job document
// carries the module DAG, and GET /v1/artifacts/{hash} peeks any listed
// module's envelope.
func TestJobModulesOnWire(t *testing.T) {
	reg := obs.NewRegistry()
	s := newTestServer(t, Config{Workers: 2, Registry: reg})
	tsrv := httptest.NewServer(s.Handler())
	defer tsrv.Close()
	ts := tsrv.URL

	env, _ := json.Marshal(jobRequest{
		ADL:        loadExample(t, "bridge.pnp"),
		Components: bridgeComponents(t),
	})
	resp, err := http.Post(ts+"/v1/jobs", "application/json", strings.NewReader(string(env)))
	if err != nil {
		t.Fatal(err)
	}
	var job Job
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(job.Modules) == 0 || job.ModulesTotal != len(job.Modules) {
		t.Fatalf("job document must list its modules: %+v", job)
	}
	if job.ModulesReused+job.ModulesCompiled != job.ModulesTotal {
		t.Fatalf("module counters inconsistent: %+v", job)
	}

	// Peek the first module over the wire.
	resp, err = http.Get(ts + "/v1/artifacts/" + job.Modules[0].Hash)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("artifact peek = %d, want 200", resp.StatusCode)
	}
	var art struct {
		Hash   string `json:"hash"`
		Kind   string `json:"kind"`
		Source string `json:"source"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&art); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if art.Hash != job.Modules[0].Hash || art.Kind != job.Modules[0].Kind || art.Source == "" {
		t.Fatalf("artifact envelope = %+v, want module %+v", art, job.Modules[0])
	}

	// An absent (but well-formed) hash is 404; a malformed one is 400.
	resp, err = http.Get(ts + "/v1/artifacts/" + strings.Repeat("0", 64))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("absent artifact = %d, want 404", resp.StatusCode)
	}
	resp, err = http.Get(ts + "/v1/artifacts/not-a-hash")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed hash = %d, want 400", resp.StatusCode)
	}

	// The ISSUE's metric names are live on the registry.
	if reg.Counter("artifact_store_misses_total").Value() == 0 {
		t.Error("artifact_store_misses_total must count the cold compile")
	}
	if reg.Counter("jobs_modules_compiled_total").Value() == 0 {
		t.Error("jobs_modules_compiled_total must count compiled modules")
	}
}
