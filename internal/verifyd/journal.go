package verifyd

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"pnp/internal/artifact"
	"pnp/internal/obs"
)

// The job journal is the durability backbone of a --data-dir server: an
// append-only write-ahead log of job lifecycle records under
// <data-dir>/journal. Every accepted HTTP submission is journaled
// before its 202 is written; on startup the journal is replayed —
// completed jobs are re-registered with their verdicts, incomplete jobs
// are re-enqueued — so kill -9 loses nothing.
//
// Frame format, one record: [u32 payload length][u32 CRC-32 (IEEE) of
// payload][JSON payload]. A torn tail (partial final record after a
// crash) fails its CRC or length check and replay stops there — exactly
// the records that were never acknowledged.
//
// Appends are group-committed: writers queue behind one fsync performed
// by a dedicated flusher goroutine, so a burst of submissions pays one
// disk flush, not one each. Segments rotate once the live segment
// passes journalSegmentBytes; rotation compacts — only records of jobs
// the server still retains are rewritten, so journal size is bounded by
// RetainJobs, not by history.
const (
	recAccepted   = "accepted"
	recStarted    = "started"
	recCheckpoint = "checkpoint"
	recCompleted  = "completed"
)

// journalSegmentBytes is the rotation threshold of the live segment.
const journalSegmentBytes = 4 << 20

// journalRecord is one WAL entry. Fields beyond Type/ID are
// type-dependent: accepted carries the full wire request (everything
// needed to re-run the job), started the attempt number, checkpoint a
// search-snapshot file reference, completed the final report. Completed
// records are self-contained (seq + key + report), so compaction keeps
// only them for done jobs.
type journalRecord struct {
	Type    string      `json:"type"`
	ID      string      `json:"id"`
	Seq     int         `json:"seq,omitempty"`
	Time    time.Time   `json:"time"`
	Key     string      `json:"key,omitempty"`
	Req     *jobRequest `json:"req,omitempty"`
	Attempt int         `json:"attempt,omitempty"`
	File    string      `json:"file,omitempty"`
	Depth   int         `json:"depth,omitempty"`
	Report  *Report     `json:"report,omitempty"`

	CacheHits   int `json:"cache_hits,omitempty"`
	CacheMisses int `json:"cache_misses,omitempty"`

	// Module accounting of the completed job (since PR10), so a
	// replayed verdict keeps reporting what its compilation reused.
	Modules         []artifact.Info `json:"modules,omitempty"`
	ModulesReused   int             `json:"modules_reused,omitempty"`
	ModulesCompiled int             `json:"modules_compiled,omitempty"`
}

// journalFsyncBuckets resolve sub-millisecond SSD flushes out to
// second-class spinning-rust outliers.
var journalFsyncBuckets = []float64{
	0.0001, 0.0005, 0.001, 0.004, 0.016, 0.064, 0.256, 1, 4,
}

type journal struct {
	dir      string
	segLimit int64

	hFsync   *obs.Histogram
	cRecords *obs.Counter

	mu      sync.Mutex
	f       *os.File
	size    int64
	seg     int
	waiters []chan error
	closed  bool

	flushC chan struct{}
	quit   chan struct{}
	done   chan struct{}
}

// openJournal opens (creating if needed) the journal under dir, replays
// every intact record from its segments in order, and starts the fsync
// flusher. The returned records are in append order across segments.
func openJournal(dir string, segLimit int64, reg *obs.Registry) (*journal, []journalRecord, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	segs, err := journalSegments(dir)
	if err != nil {
		return nil, nil, err
	}
	var recs []journalRecord
	last := 0
	for _, seg := range segs {
		data, err := os.ReadFile(filepath.Join(dir, segmentName(seg)))
		if err != nil {
			return nil, nil, err
		}
		recs = append(recs, decodeRecords(data)...)
		last = seg
	}
	j := &journal{
		dir:      dir,
		segLimit: segLimit,
		hFsync:   reg.Histogram("verifyd_journal_fsync_seconds", journalFsyncBuckets),
		cRecords: reg.Counter("verifyd_journal_records_total"),
		seg:      last + 1,
		flushC:   make(chan struct{}, 1),
		quit:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	j.f, err = os.OpenFile(filepath.Join(dir, segmentName(j.seg)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, err
	}
	go j.flusher()
	return j, recs, nil
}

func segmentName(seg int) string { return fmt.Sprintf("wal-%08d.log", seg) }

// journalSegments lists segment sequence numbers in ascending order.
func journalSegments(dir string) ([]int, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []int
	for _, e := range ents {
		var n int
		if _, err := fmt.Sscanf(e.Name(), "wal-%08d.log", &n); err == nil {
			segs = append(segs, n)
		}
	}
	sort.Ints(segs)
	return segs, nil
}

// decodeRecords parses framed records until the data ends or a frame
// fails validation — a torn tail from a crash mid-append truncates
// there, never poisoning earlier records.
func decodeRecords(data []byte) []journalRecord {
	var recs []journalRecord
	for len(data) >= 8 {
		n := binary.LittleEndian.Uint32(data[0:4])
		sum := binary.LittleEndian.Uint32(data[4:8])
		if n == 0 || uint32(len(data)-8) < n {
			break
		}
		payload := data[8 : 8+n]
		if crc32.ChecksumIEEE(payload) != sum {
			break
		}
		var rec journalRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			break
		}
		recs = append(recs, rec)
		data = data[8+n:]
	}
	return recs
}

// append writes one record and blocks until it is durable (group
// fsync). Safe for concurrent callers; callers must not hold locks the
// flusher's compaction callbacks need.
func (j *journal) append(rec journalRecord) error {
	frame, err := encodeRecord(rec)
	if err != nil {
		return err
	}
	w := make(chan error, 1)
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return fmt.Errorf("verifyd: journal closed")
	}
	if _, err := j.f.Write(frame); err != nil {
		j.mu.Unlock()
		return err
	}
	j.size += int64(len(frame))
	j.waiters = append(j.waiters, w)
	j.mu.Unlock()
	select {
	case j.flushC <- struct{}{}:
	default:
	}
	j.cRecords.Add(1)
	return <-w
}

func encodeRecord(rec journalRecord) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	frame := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[8:], payload)
	return frame, nil
}

// flusher performs the group commits: every wakeup syncs once and
// releases every writer that queued since the previous sync.
func (j *journal) flusher() {
	defer close(j.done)
	for {
		select {
		case <-j.quit:
			j.flush()
			return
		case <-j.flushC:
			j.flush()
		}
	}
}

func (j *journal) flush() {
	j.mu.Lock()
	ws := j.waiters
	j.waiters = nil
	f := j.f
	j.mu.Unlock()
	if len(ws) == 0 {
		return
	}
	t0 := time.Now()
	err := f.Sync()
	j.hFsync.Observe(time.Since(t0).Seconds())
	for _, w := range ws {
		w <- err
	}
}

// overLimit reports whether the live segment has outgrown the rotation
// threshold.
func (j *journal) overLimit() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.size > j.segLimit
}

// compact rewrites the journal down to the live records — the callback
// runs under the journal lock, so no append can slip between the live
// snapshot and the segment swap. The new segment is fully written and
// fsynced before old segments are removed; a crash mid-compaction
// leaves either the old segments or the complete new one.
func (j *journal) compact(live func() []journalRecord) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	recs := live()
	next := j.seg + 1
	path := filepath.Join(j.dir, segmentName(next))
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	var size int64
	for _, rec := range recs {
		frame, err := encodeRecord(rec)
		if err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
		if _, err := f.Write(frame); err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
		size += int64(len(frame))
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	old, _ := journalSegments(j.dir)
	j.f.Close()
	j.f, err = os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	j.size = size
	j.seg = next
	for _, seg := range old {
		if seg < next {
			os.Remove(filepath.Join(j.dir, segmentName(seg)))
		}
	}
	return nil
}

// close stops the flusher after a final flush. Outstanding appends are
// released; further appends fail.
func (j *journal) close() {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return
	}
	j.closed = true
	j.mu.Unlock()
	close(j.quit)
	<-j.done
}
