package verifyd

import (
	"errors"
	"net/http"

	"pnp/internal/adl"
)

// Error codes of the v1 HTTP API. Every failure response across every
// /v1 route (including the sweep routes layered on by internal/sweep)
// carries the same JSON envelope:
//
//	{"error": {"code": "invalid_argument", "message": "...", "line": 2, "col": 5}}
//
// line/col appear only on ADL parse and composition errors.
const (
	CodeInvalidArgument = "invalid_argument"
	CodeNotFound        = "not_found"
	CodeTooLarge        = "too_large"
	CodeUnavailable     = "unavailable"
	CodeInternal        = "internal"
)

// ErrorInfo is the body of the uniform v1 error envelope.
type ErrorInfo struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	Line    int    `json:"line,omitempty"`
	Col     int    `json:"col,omitempty"`
}

// ErrorBody is the uniform v1 error envelope.
type ErrorBody struct {
	Error ErrorInfo `json:"error"`
}

// WriteError writes the uniform error envelope. It is exported so every
// handler layered onto the service's HTTP surface (the sweep service,
// the cluster coordinator, future route groups) fails with the same
// shape. A 503 carries Retry-After: 1 so clients (and the coordinator's
// APIError.Temporary) can tell "busy or draining, come back" apart from
// a dead transport.
func WriteError(w http.ResponseWriter, status int, code, msg string) {
	if status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, ErrorBody{Error: ErrorInfo{Code: code, Message: msg}})
}

// WriteADLError writes err as the uniform envelope, carrying source
// positions for ADL errors and mapping ErrDraining to 503/unavailable.
func WriteADLError(w http.ResponseWriter, err error) {
	var ae *adl.Error
	switch {
	case errors.As(err, &ae):
		writeJSON(w, http.StatusBadRequest, ErrorBody{Error: ErrorInfo{
			Code: CodeInvalidArgument, Message: ae.Error(), Line: ae.Line, Col: ae.Col}})
	case errors.Is(err, ErrDraining):
		WriteError(w, http.StatusServiceUnavailable, CodeUnavailable, err.Error())
	default:
		WriteError(w, http.StatusBadRequest, CodeInvalidArgument, err.Error())
	}
}
