package verifyd

import (
	"container/list"
	"sync"

	"pnp/internal/obs"
)

// ResultCache is a bounded LRU map from content-address keys to property
// verdicts. It is safe for concurrent use by the service's workers.
// Counters (hits, misses, evictions) and the current entry count are
// mirrored into an obs registry when one is attached.
type ResultCache struct {
	mu      sync.Mutex
	max     int
	ll      *list.List // front = most recently used
	entries map[CacheKey]*list.Element

	hits, misses, evictions int64

	mHits, mMisses, mEvictions *obs.Counter
	mEntries                   *obs.Gauge
}

type cacheEntry struct {
	key     CacheKey
	verdict PropertyVerdict
}

// CacheStats is a point-in-time snapshot of cache effectiveness.
type CacheStats struct {
	Entries   int   `json:"entries"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

// NewResultCache creates a cache bounded to maxEntries verdicts
// (maxEntries <= 0 selects the default of 1024). A nil registry is
// fine; counters then live only in the cache itself.
func NewResultCache(maxEntries int, reg *obs.Registry) *ResultCache {
	if maxEntries <= 0 {
		maxEntries = 1024
	}
	return &ResultCache{
		max:        maxEntries,
		ll:         list.New(),
		entries:    make(map[CacheKey]*list.Element),
		mHits:      reg.Counter("verifyd_cache_hits_total"),
		mMisses:    reg.Counter("verifyd_cache_misses_total"),
		mEvictions: reg.Counter("verifyd_cache_evictions_total"),
		mEntries:   reg.Gauge("verifyd_cache_entries"),
	}
}

// Get looks up a verdict, marking it most recently used on a hit.
func (c *ResultCache) Get(k CacheKey) (PropertyVerdict, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[k]
	if !ok {
		c.misses++
		c.mMisses.Inc()
		return PropertyVerdict{}, false
	}
	c.hits++
	c.mHits.Inc()
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).verdict, true
}

// Put stores a verdict, evicting the least recently used entry when the
// cache is full. Storing an existing key refreshes its verdict and
// recency.
func (c *ResultCache) Put(k CacheKey, v PropertyVerdict) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[k]; ok {
		el.Value.(*cacheEntry).verdict = v
		c.ll.MoveToFront(el)
		return
	}
	if c.ll.Len() >= c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		c.evictions++
		c.mEvictions.Inc()
	}
	c.entries[k] = c.ll.PushFront(&cacheEntry{key: k, verdict: v})
	c.mEntries.Set(int64(c.ll.Len()))
}

// Len reports the current number of cached verdicts.
func (c *ResultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats snapshots the cache counters.
func (c *ResultCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:   c.ll.Len(),
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
}
