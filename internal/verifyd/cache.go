package verifyd

import (
	"container/list"
	"sync"

	"pnp/internal/checker"
	"pnp/internal/obs"
)

// ResultCache is a bounded LRU map from content-address keys to property
// verdicts. It is safe for concurrent use by the service's workers.
// Counters (hits, misses, evictions) and the current entry count are
// mirrored into an obs registry when one is attached.
type ResultCache struct {
	mu      sync.Mutex
	max     int
	ll      *list.List // front = most recently used
	entries map[CacheKey]*list.Element

	hits, misses, evictions int64

	mHits, mMisses, mEvictions *obs.Counter
	mEntries                   *obs.Gauge
}

type cacheEntry struct {
	key     CacheKey
	verdict PropertyVerdict
}

// CacheStats is a point-in-time snapshot of cache effectiveness.
type CacheStats struct {
	Entries   int   `json:"entries"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

// NewResultCache creates a cache bounded to maxEntries verdicts
// (maxEntries <= 0 selects the default of 1024). A nil registry is
// fine; counters then live only in the cache itself.
func NewResultCache(maxEntries int, reg *obs.Registry) *ResultCache {
	if maxEntries <= 0 {
		maxEntries = 1024
	}
	return &ResultCache{
		max:        maxEntries,
		ll:         list.New(),
		entries:    make(map[CacheKey]*list.Element),
		mHits:      reg.Counter("verifyd_cache_hits_total"),
		mMisses:    reg.Counter("verifyd_cache_misses_total"),
		mEvictions: reg.Counter("verifyd_cache_evictions_total"),
		mEntries:   reg.Gauge("verifyd_cache_entries"),
	}
}

// Get looks up a verdict, marking it most recently used on a hit.
func (c *ResultCache) Get(k CacheKey) (PropertyVerdict, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[k]
	if !ok {
		c.misses++
		c.mMisses.Inc()
		return PropertyVerdict{}, false
	}
	c.hits++
	c.mHits.Inc()
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).verdict, true
}

// Put stores a verdict, evicting the least recently used entry when the
// cache is full. Storing an existing key refreshes its verdict and
// recency.
func (c *ResultCache) Put(k CacheKey, v PropertyVerdict) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[k]; ok {
		el.Value.(*cacheEntry).verdict = v
		c.ll.MoveToFront(el)
		return
	}
	if c.ll.Len() >= c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		c.evictions++
		c.mEvictions.Inc()
	}
	c.entries[k] = c.ll.PushFront(&cacheEntry{key: k, verdict: v})
	c.mEntries.Set(int64(c.ll.Len()))
}

// Len reports the current number of cached verdicts.
func (c *ResultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats snapshots the cache counters.
func (c *ResultCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:   c.ll.Len(),
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
}

// reportCache is a bounded LRU from submission keys to completed job
// reports — the worker-side tier of the cluster result cache. Where
// ResultCache addresses single property verdicts by compiled model, this
// cache addresses whole reports by the wire content of the submission
// (Submission.Key), so a coordinator can ask any node "have you already
// answered exactly this request?" with one GET /v1/cache/{key} and no
// composition work on either side.
type reportCache struct {
	mu      sync.Mutex
	max     int
	ll      *list.List
	entries map[CacheKey]*list.Element

	hits, misses int64

	mHits, mMisses *obs.Counter
	mEntries       *obs.Gauge
}

type reportEntry struct {
	key CacheKey
	rep *Report
}

func newReportCache(maxEntries int, reg *obs.Registry) *reportCache {
	if maxEntries <= 0 {
		maxEntries = 1024
	}
	return &reportCache{
		max:      maxEntries,
		ll:       list.New(),
		entries:  make(map[CacheKey]*list.Element),
		mHits:    reg.Counter("verifyd_report_cache_hits_total"),
		mMisses:  reg.Counter("verifyd_report_cache_misses_total"),
		mEntries: reg.Gauge("verifyd_report_cache_entries"),
	}
}

// Get looks a report up by submission key. The returned report is
// shared — callers must treat it as immutable.
func (c *reportCache) Get(k CacheKey) (*Report, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[k]
	if !ok {
		c.misses++
		c.mMisses.Inc()
		return nil, false
	}
	c.hits++
	c.mHits.Inc()
	c.ll.MoveToFront(el)
	return el.Value.(*reportEntry).rep, true
}

// Put stores a completed report, evicting LRU past the bound.
func (c *reportCache) Put(k CacheKey, rep *Report) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[k]; ok {
		el.Value.(*reportEntry).rep = rep
		c.ll.MoveToFront(el)
		return
	}
	if c.ll.Len() >= c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.entries, oldest.Value.(*reportEntry).key)
	}
	c.entries[k] = c.ll.PushFront(&reportEntry{key: k, rep: rep})
	c.mEntries.Set(int64(c.ll.Len()))
}

// Len reports the number of cached reports.
func (c *reportCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats snapshots the report-cache counters.
func (c *reportCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Entries: c.ll.Len(), Hits: c.hits, Misses: c.misses}
}

// Cacheable reports whether rep may be served for a future identical
// submission: truncated or canceled searches are not verdicts about the
// model and must never be replayed as such — the same rule the property
// cache applies, lifted to the report level.
func Cacheable(rep *Report) bool {
	if rep == nil {
		return false
	}
	for _, p := range rep.Properties {
		if p.Truncated || p.Verdict == checker.Canceled.String() {
			return false
		}
	}
	return true
}
