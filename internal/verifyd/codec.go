// Package verifyd implements verification as a service: a bounded worker
// pool draining a job queue of composed Plug-and-Play systems, with a
// content-addressed result cache so that re-verifying an unchanged
// (model, property, options) triple is a lookup instead of a search.
// This is the paper's E11 reuse claim promoted to a daemon: architects
// iterate on one port kind at a time, so most of each re-submission's
// properties hash to results the service has already computed.
package verifyd

import (
	"sort"
	"time"

	"pnp/internal/adl"
	"pnp/internal/checker"
)

// PropertyVerdict is the JSON verdict for one property of one system.
// It is the unit stored in the result cache and the element of a
// Report's properties array; pnpverify --json emits the same shape.
type PropertyVerdict struct {
	Name    string `json:"name"`
	Kind    string `json:"kind"` // "invariant", "goal", or "ltl"
	OK      bool   `json:"ok"`
	Verdict string `json:"verdict"` // "verified" or the violation kind
	Message string `json:"message,omitempty"`
	Summary string `json:"summary"`

	States      int     `json:"states"`
	Matched     int     `json:"matched"`
	Transitions int     `json:"transitions"`
	Depth       int     `json:"depth"`
	Reduced     int     `json:"reduced,omitempty"`
	Truncated   bool    `json:"truncated,omitempty"`
	ElapsedMS   float64 `json:"elapsed_ms"`

	// Counterexample is the violating trace listing; MSC renders the
	// same trace as a message sequence chart over the system's
	// processes. Both are empty for verified properties.
	Counterexample string   `json:"counterexample,omitempty"`
	MSC            string   `json:"msc,omitempty"`
	Unreached      []string `json:"unreached,omitempty"`

	// Cached is true when this verdict was served from the result cache
	// without running the checker.
	Cached bool `json:"cached"`
}

// Report is the complete verdict document for one verified system.
type Report struct {
	System     string            `json:"system"`
	Processes  int               `json:"processes"`
	Channels   int               `json:"channels"`
	OK         bool              `json:"ok"`
	Failed     int               `json:"failed"`
	Properties []PropertyVerdict `json:"properties"`
}

// NewPropertyVerdict converts one checker result into its JSON verdict.
// procs supplies process names for the MSC rendering; nil suppresses the
// per-process columns.
func NewPropertyVerdict(name, kind string, res *checker.Result, procs []string) PropertyVerdict {
	v := PropertyVerdict{
		Name:        name,
		Kind:        kind,
		OK:          res.OK,
		Verdict:     "verified",
		Message:     res.Message,
		Summary:     res.Summary(),
		States:      res.Stats.StatesStored,
		Matched:     res.Stats.StatesMatched,
		Transitions: res.Stats.Transitions,
		Depth:       res.Stats.MaxDepth,
		Reduced:     res.Stats.Reduced,
		Truncated:   res.Stats.Truncated,
		ElapsedMS:   float64(res.Stats.Elapsed) / float64(time.Millisecond),
		Unreached:   res.Unreached,
	}
	if !res.OK {
		v.Verdict = res.Kind.String()
	}
	if res.Trace != nil {
		v.Counterexample = res.Trace.String()
		v.MSC = res.Trace.MSC(procs)
	}
	return v
}

// NewReport assembles the full verdict document for a system from the
// VerifyAll result map, with properties sorted by name. This is the
// codec behind both GET /v1/jobs/{id} and pnpverify --json.
func NewReport(sys *adl.System, results map[string]*checker.Result) Report {
	kinds := make(map[string]string, len(sys.Sources))
	for _, ps := range sys.Sources {
		kinds[ps.Name] = ps.Kind
	}
	m := sys.Builder.System()
	procs := make([]string, 0, m.NumInstances())
	for _, in := range m.Instances() {
		procs = append(procs, in.Name)
	}
	rep := Report{
		System:    sys.Name,
		Processes: m.NumInstances(),
		Channels:  m.NumChannels(),
		OK:        true,
	}
	names := make([]string, 0, len(results))
	for name := range results {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		v := NewPropertyVerdict(name, kinds[name], results[name], procs)
		rep.Properties = append(rep.Properties, v)
		if !v.OK {
			rep.OK = false
			rep.Failed++
		}
	}
	return rep
}
