package verifyd

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"pnp/internal/checker"
	"pnp/internal/obs"
)

// TestHealthzDocument: /healthz stays a plain 200 but its body is now a
// load document — build version, worker pool, search-budget occupancy,
// cache sizes — enough for a coordinator to triage the node with one
// probe.
func TestHealthzDocument(t *testing.T) {
	s := newTestServer(t, Config{Workers: 3, Registry: obs.NewRegistry()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz = %d, want 200", resp.StatusCode)
	}
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Version != Version {
		t.Fatalf("identity: %+v", h)
	}
	if h.Workers != 3 || h.SearchBudget <= 0 {
		t.Fatalf("load fields: %+v", h)
	}
	if h.Draining {
		t.Fatalf("fresh server reports draining: %+v", h)
	}
}

// TestCachePeekRoundtrip: a completed job's report is retrievable at
// GET /v1/cache/{key} under the submission's content address — the
// worker-side half of the cluster cache.
func TestCachePeekRoundtrip(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2, Registry: obs.NewRegistry()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	adl := loadExample(t, "bridge.pnp")
	comps := bridgeComponents(t)
	env, _ := json.Marshal(jobRequest{ADL: adl, Components: comps})
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(string(env)))
	if err != nil {
		t.Fatal(err)
	}
	var job Job
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	resp, err = http.Get(ts.URL + "/v1/jobs/" + job.ID + "/wait?timeout=60s")
	if err != nil {
		t.Fatal(err)
	}
	var done Job
	if err := json.NewDecoder(resp.Body).Decode(&done); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if done.State != JobDone || done.Report == nil {
		t.Fatalf("job did not finish: %+v", done)
	}

	// The key is computed from the wire fields alone — exactly what a
	// coordinator that never saw this server derives.
	key := Submission{ADL: adl, Components: comps}.Key()
	resp, err = http.Get(ts.URL + "/v1/cache/" + key.String())
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("peek = %d, want 200", resp.StatusCode)
	}
	var hit CachedReport
	if err := json.NewDecoder(resp.Body).Decode(&hit); err != nil {
		t.Fatal(err)
	}
	if hit.Key != key.String() || hit.Report == nil || hit.Report.System != done.Report.System {
		t.Fatalf("peeked report mismatch: %+v", hit)
	}

	// Unknown key: a 404 miss. Malformed key: 400.
	for _, tc := range []struct {
		path string
		want int
	}{
		{"/v1/cache/" + strings.Repeat("f", 64), http.StatusNotFound},
		{"/v1/cache/nothex", http.StatusBadRequest},
	} {
		resp, err := http.Get(ts.URL + tc.path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("GET %s = %d, want %d", tc.path, resp.StatusCode, tc.want)
		}
	}
}

// TestSubmissionKeyDiscriminates: the content address must separate
// what changes the verdict and ignore what only changes the speed.
func TestSubmissionKeyDiscriminates(t *testing.T) {
	base := Submission{ADL: "system x {}", Components: map[string]string{"a.pml": "byte b;"}}
	if base.Key() != base.Key() {
		t.Fatal("key is not deterministic")
	}

	limit := 100
	variants := []Submission{
		{ADL: "system y {}", Components: base.Components},
		{ADL: base.ADL, Components: map[string]string{"a.pml": "byte c;"}},
		{ADL: base.ADL, Components: map[string]string{"b.pml": "byte b;"}},
		{ADL: base.ADL, Components: base.Components, MaxStates: &limit},
		{ADL: base.ADL, Components: base.Components, BFS: ptrTo(true)},
		{ADL: base.ADL, Components: base.Components, IgnoreDeadlock: ptrTo(true)},
	}
	seen := map[CacheKey]int{base.Key(): -1}
	for i, v := range variants {
		k := v.Key()
		if prev, dup := seen[k]; dup {
			t.Errorf("variant %d collides with variant %d", i, prev)
		}
		seen[k] = i
	}

	// An explicit zero differs from an absent option (the server would
	// apply a default for the absent one)...
	zero := 0
	withZero := Submission{ADL: base.ADL, Components: base.Components, MaxStates: &zero}
	if withZero.Key() == base.Key() {
		t.Error("explicit MaxStates=0 and absent MaxStates share a key")
	}
}

func ptrTo[T any](v T) *T { return &v }

func TestCacheable(t *testing.T) {
	ok := &Report{OK: true, Properties: []PropertyVerdict{{Name: "p", Verdict: "holds"}}}
	if !Cacheable(ok) {
		t.Error("clean report must be cacheable")
	}
	if Cacheable(nil) {
		t.Error("nil report must not be cacheable")
	}
	trunc := &Report{Properties: []PropertyVerdict{{Name: "p", Truncated: true}}}
	if Cacheable(trunc) {
		t.Error("truncated search is not a verdict; must not be cacheable")
	}
	canceled := &Report{Properties: []PropertyVerdict{{Name: "p", Verdict: checker.Canceled.String()}}}
	if Cacheable(canceled) {
		t.Error("canceled search must not be cacheable")
	}
}

// TestWriteErrorRetryAfter: every 503 carries Retry-After, the header
// clients and coordinators key their "alive but unavailable" handling
// on.
func TestWriteErrorRetryAfter(t *testing.T) {
	rr := httptest.NewRecorder()
	WriteError(rr, http.StatusServiceUnavailable, CodeUnavailable, "draining")
	if rr.Header().Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	rr = httptest.NewRecorder()
	WriteError(rr, http.StatusBadRequest, CodeInvalidArgument, "nope")
	if rr.Header().Get("Retry-After") != "" {
		t.Fatal("4xx must not advertise Retry-After")
	}
}
