// Package bridge implements the paper's evaluation case study (Section 4):
// the single-lane bridge controlled by two controllers, in both the
// "exactly-N-cars-per-turn" (Fig. 13) and "at-most-N-cars-per-turn"
// (Fig. 14) variants.
//
// Cars and controllers are pml component models using the standard
// interfaces; every interaction goes through connectors composed from the
// block library, so the experiments of the paper are reproduced by
// swapping ports:
//
//   - E8: exactly-N with asynchronous blocking enter sends -> the bridge
//     safety invariant is violated (a car drives on before its request is
//     processed).
//   - E9: replace the enter send ports with synchronous blocking ones —
//     the car components are untouched — and the invariant holds.
//   - E10: at-most-N adds controller-to-controller yield connectors
//     (synchronous blocking send, single-slot buffer, nonblocking receive)
//     and nonblocking receives on the car connectors; the invariant holds.
package bridge

import (
	"fmt"

	"pnp/internal/blocks"
	"pnp/internal/checker"
	"pnp/internal/model"
)

// Variant selects the traffic-control protocol.
type Variant int

// Bridge variants.
const (
	ExactlyN Variant = iota + 1
	AtMostN
)

// String names the variant.
func (v Variant) String() string {
	if v == ExactlyN {
		return "exactly-N-cars-per-turn"
	}
	return "at-most-N-cars-per-turn"
}

// CarSource is the pml model of a car component. It is shared verbatim by
// both bridge variants and by both the safe and unsafe connector choices —
// the paper's standard-interface claim (E9) is that connector changes do
// not touch this text.
const CarSource = `
byte blueOn, redOn;

/* A car: requests entry, drives onto the bridge once the SendStatus
 * arrives, crosses, leaves, and notifies the far-side controller. */
proctype Car(chan esig; chan edat; chan xsig; chan xdat; bit color) {
	mtype st;
	end: do
	:: edat!1,0,0,0,1;
	   esig?st,_;
	   if
	   :: color == 0 -> blueOn = blueOn + 1
	   :: else -> redOn = redOn + 1
	   fi;
	   if
	   :: color == 0 -> blueOn = blueOn - 1
	   :: else -> redOn = redOn - 1
	   fi;
	   xdat!1,0,0,0,1;
	   xsig?st,_
	od
}
`

// exactlyNControllers is the controller model for the Fig. 13 design: the
// controllers alternate turns implicitly by counting exit notifications.
const exactlyNControllers = `
/* Exactly-N controller: admit n enter requests, then wait for n exit
 * notifications (produced by the other side's cars) before admitting the
 * next batch. The side that starts passive waits for exits first. */
proctype TurnController(chan ensig; chan endat; chan exsig; chan exdat;
                        byte n; bit startsActive) {
	byte i;
	mtype st;
	byte d, sid, sd;
	bit sel, rem;
	if
	:: startsActive -> skip
	:: else ->
	   i = 0;
	   do
	   :: i < n ->
	      exdat!0,0,0,0,1;
	      exsig?st,_;
	      exdat?d,sid,sd,sel,rem;
	      i = i + 1
	   :: else -> break
	   od
	fi;
	end: do
	:: i = 0;
	   do
	   :: i < n ->
	      endat!0,0,0,0,1;
	      ensig?st,_;
	      endat?d,sid,sd,sel,rem;
	      i = i + 1
	   :: else -> break
	   od;
	   i = 0;
	   do
	   :: i < n ->
	      exdat!0,0,0,0,1;
	      exsig?st,_;
	      exdat?d,sid,sd,sel,rem;
	      i = i + 1
	   :: else -> break
	   od
	od
}
`

// atMostNControllers is the controller model for the Fig. 14 design: a
// controller polls for enter requests with nonblocking receives, yields
// the turn (with the count of cars in flight) as soon as no car is
// waiting or the quota is reached, and while passive waits for the yield
// message and then for that many exit notifications.
const atMostNControllers = `
proctype YieldController(chan ensig; chan endat; chan exsig; chan exdat;
                         chan ysig; chan ydat; chan osig; chan odat;
                         byte n; bit startsActive) {
	byte admitted, k;
	mtype st;
	byte d, sid, sd;
	bit sel, rem;
	if
	:: startsActive -> goto turn_active
	:: else -> goto turn_passive
	fi;
turn_active:
	admitted = 0;
	do
	:: admitted < n ->
	   endat!0,0,0,0,1;
	   ensig?st,_;
	   endat?d,sid,sd,sel,rem;
	   if
	   :: st == RECV_SUCC -> admitted = admitted + 1
	   :: else -> break
	   fi
	:: else -> break
	od;
	odat!admitted,0,0,0,1;
	osig?st,_;
	goto turn_passive;
turn_passive:
	end: do
	:: ydat!0,0,0,0,1;
	   ysig?st,_;
	   ydat?d,sid,sd,sel,rem;
	   if
	   :: st == RECV_SUCC -> break
	   :: else
	   fi
	od;
	k = d;
	do
	:: k > 0 ->
	   exdat!0,0,0,0,1;
	   exsig?st,_;
	   exdat?d,sid,sd,sel,rem;
	   if
	   :: st == RECV_SUCC -> k = k - 1
	   :: else
	   fi
	:: else -> break
	od;
	goto turn_active
}
`

// Config describes one bridge system to build and verify.
type Config struct {
	Variant     Variant
	CarsPerSide int
	N           int // per-turn quota
	// EnterSend is the send-port kind of the car->controller enter
	// connectors: the design decision the paper's experiment varies.
	EnterSend blocks.SendPortKind
	// EnterBuf is the FIFO size of the enter connectors (default 2).
	EnterBuf int
}

func (c Config) withDefaults() Config {
	if c.CarsPerSide == 0 {
		c.CarsPerSide = 1
	}
	if c.N == 0 {
		c.N = 1
	}
	if c.EnterSend == 0 {
		c.EnterSend = blocks.SynBlockingSend
	}
	if c.EnterBuf == 0 {
		c.EnterBuf = 2
	}
	return c
}

// String summarizes the configuration.
func (c Config) String() string {
	c = c.withDefaults()
	return fmt.Sprintf("%s cars=%d n=%d enter=%s", c.Variant, c.CarsPerSide, c.N, c.EnterSend)
}

// Build composes the bridge system: components, connectors, and ports.
func Build(cfg Config, cache *blocks.Cache) (*blocks.Builder, error) {
	cfg = cfg.withDefaults()
	var src string
	switch cfg.Variant {
	case ExactlyN:
		src = CarSource + exactlyNControllers
	case AtMostN:
		src = CarSource + atMostNControllers
	default:
		return nil, fmt.Errorf("bridge: unknown variant %d", cfg.Variant)
	}
	b, err := blocks.NewBuilder(src, cache)
	if err != nil {
		return nil, err
	}

	recvKind := blocks.BlockingRecv
	if cfg.Variant == AtMostN {
		// The Fig. 14 controllers poll, so every controller-side receive
		// port must be nonblocking.
		recvKind = blocks.NonblockingRecv
	}
	enterSpec := blocks.ConnectorSpec{
		Send: cfg.EnterSend, Channel: blocks.FIFOQueue, Size: cfg.EnterBuf, Recv: recvKind,
	}
	exitSpec := blocks.ConnectorSpec{
		Send: blocks.AsynBlockingSend, Channel: blocks.SingleSlot, Recv: recvKind,
	}

	blueEnter, err := b.NewConnector("BlueEnter", enterSpec)
	if err != nil {
		return nil, err
	}
	redEnter, err := b.NewConnector("RedEnter", enterSpec)
	if err != nil {
		return nil, err
	}
	// Blue cars exit at the red end and notify the red controller, and
	// vice versa (the paper's RedExit / BlueExit connectors).
	redExit, err := b.NewConnector("RedExit", exitSpec)
	if err != nil {
		return nil, err
	}
	blueExit, err := b.NewConnector("BlueExit", exitSpec)
	if err != nil {
		return nil, err
	}

	spawnCars := func(color int64, enter, exit *blocks.Connector, label string) error {
		for i := 0; i < cfg.CarsPerSide; i++ {
			e, err := enter.AddSender(fmt.Sprintf("%sCar%d", label, i))
			if err != nil {
				return err
			}
			x, err := exit.AddSender(fmt.Sprintf("%sCar%dExit", label, i))
			if err != nil {
				return err
			}
			if _, err := b.Spawn("Car",
				model.Chan(e.Sig), model.Chan(e.Dat),
				model.Chan(x.Sig), model.Chan(x.Dat),
				model.Int(color)); err != nil {
				return err
			}
		}
		return nil
	}
	if err := spawnCars(0, blueEnter, redExit, "Blue"); err != nil {
		return nil, err
	}
	if err := spawnCars(1, redEnter, blueExit, "Red"); err != nil {
		return nil, err
	}

	blueEnterRecv, err := blueEnter.AddReceiver("BlueCtl")
	if err != nil {
		return nil, err
	}
	blueExitRecv, err := blueExit.AddReceiver("BlueCtlExit")
	if err != nil {
		return nil, err
	}
	redEnterRecv, err := redEnter.AddReceiver("RedCtl")
	if err != nil {
		return nil, err
	}
	redExitRecv, err := redExit.AddReceiver("RedCtlExit")
	if err != nil {
		return nil, err
	}

	switch cfg.Variant {
	case ExactlyN:
		if _, err := b.Spawn("TurnController",
			model.Chan(blueEnterRecv.Sig), model.Chan(blueEnterRecv.Dat),
			model.Chan(blueExitRecv.Sig), model.Chan(blueExitRecv.Dat),
			model.Int(int64(cfg.N)), model.Int(1)); err != nil {
			return nil, err
		}
		if _, err := b.Spawn("TurnController",
			model.Chan(redEnterRecv.Sig), model.Chan(redEnterRecv.Dat),
			model.Chan(redExitRecv.Sig), model.Chan(redExitRecv.Dat),
			model.Int(int64(cfg.N)), model.Int(0)); err != nil {
			return nil, err
		}
	case AtMostN:
		yieldSpec := blocks.ConnectorSpec{
			Send: blocks.SynBlockingSend, Channel: blocks.SingleSlot, Recv: blocks.NonblockingRecv,
		}
		blueToRed, err := b.NewConnector("BlueToRed", yieldSpec)
		if err != nil {
			return nil, err
		}
		redToBlue, err := b.NewConnector("RedToBlue", yieldSpec)
		if err != nil {
			return nil, err
		}
		blueYieldOut, err := blueToRed.AddSender("BlueCtlYield")
		if err != nil {
			return nil, err
		}
		blueYieldIn, err := redToBlue.AddReceiver("BlueCtlListen")
		if err != nil {
			return nil, err
		}
		redYieldOut, err := redToBlue.AddSender("RedCtlYield")
		if err != nil {
			return nil, err
		}
		redYieldIn, err := blueToRed.AddReceiver("RedCtlListen")
		if err != nil {
			return nil, err
		}
		if _, err := b.Spawn("YieldController",
			model.Chan(blueEnterRecv.Sig), model.Chan(blueEnterRecv.Dat),
			model.Chan(blueExitRecv.Sig), model.Chan(blueExitRecv.Dat),
			model.Chan(blueYieldIn.Sig), model.Chan(blueYieldIn.Dat),
			model.Chan(blueYieldOut.Sig), model.Chan(blueYieldOut.Dat),
			model.Int(int64(cfg.N)), model.Int(1)); err != nil {
			return nil, err
		}
		if _, err := b.Spawn("YieldController",
			model.Chan(redEnterRecv.Sig), model.Chan(redEnterRecv.Dat),
			model.Chan(redExitRecv.Sig), model.Chan(redExitRecv.Dat),
			model.Chan(redYieldIn.Sig), model.Chan(redYieldIn.Dat),
			model.Chan(redYieldOut.Sig), model.Chan(redYieldOut.Dat),
			model.Int(int64(cfg.N)), model.Int(0)); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// SafetyInvariant is the bridge-safety property: cars traveling in
// opposite directions are never on the bridge simultaneously.
func SafetyInvariant(b *blocks.Builder) (checker.Invariant, error) {
	return checker.InvariantFromSource(b.Program(), "bridge-safety", "!(blueOn > 0 && redOn > 0)")
}

// Verify builds the configured bridge and checks the safety invariant.
func Verify(cfg Config, cache *blocks.Cache, opts checker.Options) (*checker.Result, error) {
	b, err := Build(cfg, cache)
	if err != nil {
		return nil, err
	}
	inv, err := SafetyInvariant(b)
	if err != nil {
		return nil, err
	}
	opts.Invariants = append(opts.Invariants, inv)
	return checker.New(b.System(), opts).CheckSafety(), nil
}
