package bridge

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"pnp/internal/blocks"
	"pnp/internal/pnprt"
)

// SimulationConfig configures an executable bridge run: the same design
// as the models, with cars and controllers as goroutines over runtime
// connectors.
type SimulationConfig struct {
	CarsPerSide int
	N           int // per-turn quota
	Crossings   int // crossings per car
	EnterSend   blocks.SendPortKind
}

func (c SimulationConfig) withDefaults() SimulationConfig {
	if c.CarsPerSide == 0 {
		c.CarsPerSide = 2
	}
	if c.N == 0 {
		c.N = 1
	}
	if c.Crossings == 0 {
		c.Crossings = 10
	}
	if c.EnterSend == 0 {
		c.EnterSend = blocks.SynBlockingSend
	}
	return c
}

// SimulationResult reports what the monitored bridge observed.
type SimulationResult struct {
	Crossings  int // completed crossings
	Collisions int // moments with cars of both colors on the bridge
	MaxOn      int // peak cars on the bridge at once
}

// bridgeMonitor is the shared physical bridge: cars enter and leave, and
// it records any moment with both colors present.
type bridgeMonitor struct {
	mu         sync.Mutex
	blueOn     int
	redOn      int
	collisions int
	maxOn      int
	crossings  int
}

func (m *bridgeMonitor) enter(color int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if color == 0 {
		m.blueOn++
	} else {
		m.redOn++
	}
	if m.blueOn > 0 && m.redOn > 0 {
		m.collisions++
	}
	if on := m.blueOn + m.redOn; on > m.maxOn {
		m.maxOn = on
	}
}

func (m *bridgeMonitor) leave(color int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if color == 0 {
		m.blueOn--
	} else {
		m.redOn--
	}
	m.crossings++
}

// Simulate runs the exactly-N bridge on the goroutine runtime: real cars,
// real controllers, real connectors. With synchronous enter sends the
// result reports zero collisions; with asynchronous ones collisions can
// (and under load do) occur — the executable twin of experiment E8/E9.
//
// CarsPerSide*Crossings should be divisible by N so the final admission
// batch fills; otherwise the run only ends when ctx expires.
func Simulate(ctx context.Context, cfg SimulationConfig) (*SimulationResult, error) {
	cfg = cfg.withDefaults()
	enterSpec := blocks.ConnectorSpec{
		Send: cfg.EnterSend, Channel: blocks.FIFOQueue, Size: 2, Recv: blocks.BlockingRecv,
	}
	exitSpec := blocks.ConnectorSpec{
		Send: blocks.AsynBlockingSend, Channel: blocks.SingleSlot, Recv: blocks.BlockingRecv,
	}

	type side struct {
		enter *pnprt.Connector
		exit  *pnprt.Connector // where this side's cars REPORT exits (far end)
	}
	blueEnter, err := pnprt.NewConnector("BlueEnter", enterSpec)
	if err != nil {
		return nil, err
	}
	redEnter, err := pnprt.NewConnector("RedEnter", enterSpec)
	if err != nil {
		return nil, err
	}
	redExit, err := pnprt.NewConnector("RedExit", exitSpec)
	if err != nil {
		return nil, err
	}
	blueExit, err := pnprt.NewConnector("BlueExit", exitSpec)
	if err != nil {
		return nil, err
	}
	blue := side{enter: blueEnter, exit: redExit}
	red := side{enter: redEnter, exit: blueExit}

	monitor := &bridgeMonitor{}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var carWG sync.WaitGroup
	type carPorts struct {
		enter pnprt.Sender
		exit  pnprt.Sender
		color int
	}
	var cars []carPorts
	for color, s := range []side{blue, red} {
		for i := 0; i < cfg.CarsPerSide; i++ {
			e, err := s.enter.NewSender()
			if err != nil {
				return nil, err
			}
			x, err := s.exit.NewSender()
			if err != nil {
				return nil, err
			}
			cars = append(cars, carPorts{enter: e, exit: x, color: color})
		}
	}

	type ctlPorts struct {
		enter pnprt.Receiver
		exit  pnprt.Receiver
	}
	blueEnterRecv, err := blueEnter.NewReceiver()
	if err != nil {
		return nil, err
	}
	blueExitRecv, err := blueExit.NewReceiver()
	if err != nil {
		return nil, err
	}
	redEnterRecv, err := redEnter.NewReceiver()
	if err != nil {
		return nil, err
	}
	redExitRecv, err := redExit.NewReceiver()
	if err != nil {
		return nil, err
	}
	ctls := []struct {
		ports        ctlPorts
		startsActive bool
	}{
		{ctlPorts{blueEnterRecv, blueExitRecv}, true},
		{ctlPorts{redEnterRecv, redExitRecv}, false},
	}

	for _, c := range []*pnprt.Connector{blueEnter, redEnter, redExit, blueExit} {
		if err := c.Start(ctx); err != nil {
			return nil, err
		}
		defer c.Stop()
	}

	// Controllers: admit n requests, then wait for n exits, forever.
	var ctlWG sync.WaitGroup
	for _, ctl := range ctls {
		ctl := ctl
		ctlWG.Add(1)
		go func() {
			defer ctlWG.Done()
			if !ctl.startsActive {
				for i := 0; i < cfg.N; i++ {
					if _, _, err := ctl.ports.exit.Receive(ctx, pnprt.RecvRequest{}); err != nil {
						return
					}
				}
			}
			for {
				for i := 0; i < cfg.N; i++ {
					if _, _, err := ctl.ports.enter.Receive(ctx, pnprt.RecvRequest{}); err != nil {
						return
					}
				}
				for i := 0; i < cfg.N; i++ {
					if _, _, err := ctl.ports.exit.Receive(ctx, pnprt.RecvRequest{}); err != nil {
						return
					}
				}
			}
		}()
	}

	// Cars: request entry, cross (monitored), report the exit.
	errCh := make(chan error, len(cars))
	for i, car := range cars {
		car := car
		i := i
		carWG.Add(1)
		go func() {
			defer carWG.Done()
			for k := 0; k < cfg.Crossings; k++ {
				st, err := car.enter.Send(ctx, pnprt.Message{Data: i})
				if err != nil {
					return // cancelled
				}
				if st != pnprt.SendSucc {
					errCh <- fmt.Errorf("car %d: enter status %v", i, st)
					return
				}
				monitor.enter(car.color)
				runtime.Gosched() // time on the bridge: let overlap show
				monitor.leave(car.color)
				if _, err := car.exit.Send(ctx, pnprt.Message{Data: i}); err != nil {
					return
				}
			}
		}()
	}

	carWG.Wait()
	cancel() // release the controllers and ports
	ctlWG.Wait()
	select {
	case err := <-errCh:
		return nil, err
	default:
	}
	monitor.mu.Lock()
	defer monitor.mu.Unlock()
	return &SimulationResult{
		Crossings:  monitor.crossings,
		Collisions: monitor.collisions,
		MaxOn:      monitor.maxOn,
	}, nil
}
