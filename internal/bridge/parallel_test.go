package bridge

import (
	"testing"

	"pnp/internal/blocks"
	"pnp/internal/checker"
)

// The PR4 determinism contract on the paper's experiments: E8 (unsafe
// design) and E9 (fixed design) must produce identical verdicts,
// identical StatesStored, and equal-length (shortest) counterexamples
// at every worker count.

func verifyAtWorkers(t *testing.T, cfg Config, workers int) *checker.Result {
	t.Helper()
	res, err := Verify(cfg, blocks.NewCache(), checker.Options{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestBridgeE8DeterministicAcrossWorkers(t *testing.T) {
	cfg := Config{Variant: ExactlyN, CarsPerSide: 1, N: 1, EnterSend: blocks.AsynBlockingSend}
	var first *checker.Result
	for _, w := range []int{1, 2, 8} {
		res := verifyAtWorkers(t, cfg, w)
		if res.OK || res.Kind != checker.InvariantViolation {
			t.Fatalf("workers=%d: expected invariant violation, got %s", w, res.Summary())
		}
		if res.Trace == nil || res.Trace.Len() == 0 {
			t.Fatalf("workers=%d: no counterexample", w)
		}
		if first == nil {
			first = res
			continue
		}
		if res.Stats.StatesStored != first.Stats.StatesStored {
			t.Errorf("workers=%d: StatesStored %d, want %d", w, res.Stats.StatesStored, first.Stats.StatesStored)
		}
		if res.Trace.Len() != first.Trace.Len() {
			t.Errorf("workers=%d: counterexample length %d, want %d", w, res.Trace.Len(), first.Trace.Len())
		}
	}
	// The parallel engine is breadth-first, so E8's counterexample must
	// be no longer than the sequential BFS one.
	seq, err := Verify(cfg, blocks.NewCache(), checker.Options{BFS: true})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Trace == nil || first.Trace.Len() > seq.Trace.Len() {
		t.Errorf("parallel counterexample length %d exceeds sequential BFS %d",
			first.Trace.Len(), seq.Trace.Len())
	}
}

func TestBridgeE9DeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("three exhaustive E9 searches are too slow for -short")
	}
	cfg := Config{Variant: ExactlyN, CarsPerSide: 1, N: 1, EnterSend: blocks.SynBlockingSend}
	var first *checker.Result
	for _, w := range []int{1, 2, 8} {
		res := verifyAtWorkers(t, cfg, w)
		if !res.OK {
			t.Fatalf("workers=%d: E9 should verify, got %s", w, res.Summary())
		}
		if first == nil {
			first = res
			continue
		}
		if res.Stats.StatesStored != first.Stats.StatesStored ||
			res.Stats.StatesMatched != first.Stats.StatesMatched ||
			res.Stats.Transitions != first.Stats.Transitions ||
			res.Stats.MaxDepth != first.Stats.MaxDepth {
			t.Errorf("workers=%d: stats diverge: %+v vs %+v", w, res.Stats, first.Stats)
		}
	}
}
