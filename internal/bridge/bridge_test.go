package bridge

import (
	"strings"
	"testing"

	"pnp/internal/blocks"
	"pnp/internal/checker"
)

// TestBridgeInitialDesignUnsafe is experiment E8: the Fig. 13 design with
// asynchronous blocking enter sends lets a car drive onto the bridge as
// soon as its request is buffered, violating bridge safety.
func TestBridgeInitialDesignUnsafe(t *testing.T) {
	res, err := Verify(Config{
		Variant:     ExactlyN,
		CarsPerSide: 1,
		N:           1,
		EnterSend:   blocks.AsynBlockingSend,
	}, nil, checker.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK {
		t.Fatal("async enter sends should violate bridge safety")
	}
	if res.Kind != checker.InvariantViolation {
		t.Fatalf("kind = %s, want invariant violation (message: %s)", res.Kind, res.Message)
	}
	if res.Trace == nil || res.Trace.Len() == 0 {
		t.Fatal("no counterexample")
	}
}

// TestBridgeFixedDesignSafe is experiment E9: swapping the enter send
// ports to synchronous blocking — a connector-only change — makes the
// same system safe.
func TestBridgeFixedDesignSafe(t *testing.T) {
	res, err := Verify(Config{
		Variant:     ExactlyN,
		CarsPerSide: 1,
		N:           1,
		EnterSend:   blocks.SynBlockingSend,
	}, nil, checker.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatalf("sync enter sends should be safe, got %s\n%s", res.Summary(), res.Trace)
	}
}

// TestBridgeExactlyTwoCars scales E9 to two cars per side and a quota of
// two. The full state space of the 22-process system is beyond exhaustive
// search (the paper's Section 6 acknowledges exactly this state-explosion
// limit), so this is a bounded safety sweep: no violation within the
// budget.
func TestBridgeExactlyTwoCars(t *testing.T) {
	if testing.Short() {
		t.Skip("state space too large for -short")
	}
	res, err := Verify(Config{
		Variant:     ExactlyN,
		CarsPerSide: 2,
		N:           2,
		EnterSend:   blocks.SynBlockingSend,
	}, nil, checker.Options{MaxStates: 300000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK && res.Kind != checker.SearchLimit {
		t.Fatalf("2-car exactly-N bridge unsafe: %s\n%s", res.Summary(), res.Trace)
	}
	if res.Kind == checker.SearchLimit {
		t.Logf("bounded sweep: %d states explored without violation", res.Stats.StatesStored)
	}
}

// TestBridgeAtMostNSafe is experiment E10: the Fig. 14 design with yield
// connectors and nonblocking receives preserves bridge safety.
func TestBridgeAtMostNSafe(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive at-most-N verification takes ~1 minute")
	}
	res, err := Verify(Config{
		Variant:     AtMostN,
		CarsPerSide: 1,
		N:           1,
		EnterSend:   blocks.SynBlockingSend,
	}, nil, checker.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatalf("at-most-N bridge unsafe: %s\n%s", res.Summary(), res.Trace)
	}
}

// TestBridgeAtMostNAsyncUnsafe: the same wrong port choice breaks the
// Fig. 14 design too — the flaw is in the connector, not the controllers.
func TestBridgeAtMostNAsyncUnsafe(t *testing.T) {
	res, err := Verify(Config{
		Variant:     AtMostN,
		CarsPerSide: 1,
		N:           1,
		EnterSend:   blocks.AsynBlockingSend,
	}, nil, checker.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK {
		t.Fatal("async enter sends should violate at-most-N bridge safety")
	}
}

// TestComponentModelsReused is the heart of E9: fixing the bridge swaps a
// send-port kind in the connector spec; the car component model is the
// same source text in both configurations, so its compiled model is
// reusable as-is.
func TestComponentModelsReused(t *testing.T) {
	unsafe := Config{Variant: ExactlyN, EnterSend: blocks.AsynBlockingSend}
	safe := unsafe
	safe.EnterSend = blocks.SynBlockingSend

	cache := blocks.NewCache()
	if _, err := Build(unsafe, cache); err != nil {
		t.Fatal(err)
	}
	if _, err := Build(safe, cache); err != nil {
		t.Fatal(err)
	}
	hits, misses := cache.Stats()
	if misses != 1 || hits != 1 {
		t.Errorf("cache stats = %d hits / %d misses; the port swap should reuse "+
			"the compiled program entirely", hits, misses)
	}
	// The swap must not touch the car model text at all.
	if !strings.Contains(CarSource, "proctype Car") {
		t.Fatal("car source changed shape")
	}
}

// TestBridgeCounterexampleMentionsCar: the E8 counterexample trace should
// show a car acting, so a designer can follow the failure.
func TestBridgeCounterexampleMentionsCar(t *testing.T) {
	res, err := Verify(Config{
		Variant:     ExactlyN,
		CarsPerSide: 1,
		N:           1,
		EnterSend:   blocks.AsynBlockingSend,
	}, nil, checker.Options{BFS: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK {
		t.Fatal("expected violation")
	}
	text := res.Trace.String()
	if !strings.Contains(text, "Car") {
		t.Errorf("counterexample does not mention a car:\n%s", text)
	}
	msc := res.Trace.MSC(nil)
	if msc == "" {
		t.Error("MSC rendering is empty")
	}
}

// TestBridgeCheckingSendAlsoUnsafe: an asynchronous checking send is just
// as unsafe for entering as the asynchronous blocking send — the paper's
// point that the choice among the five kinds matters.
func TestBridgeCheckingSendAlsoUnsafe(t *testing.T) {
	res, err := Verify(Config{
		Variant:     ExactlyN,
		CarsPerSide: 1,
		N:           1,
		EnterSend:   blocks.AsynCheckingSend,
	}, nil, checker.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK {
		t.Fatal("checking enter sends should still violate bridge safety")
	}
}

// TestBridgeSynCheckingSafe: the synchronous checking send port also keeps
// the bridge safe (SEND_FAIL only retries in the car's loop).
func TestBridgeSynCheckingSafe(t *testing.T) {
	res, err := Verify(Config{
		Variant:     ExactlyN,
		CarsPerSide: 1,
		N:           1,
		EnterSend:   blocks.SynCheckingSend,
	}, nil, checker.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// With a checking send the car treats SEND_FAIL as permission too (it
	// only waits for *a* status), so safety actually breaks differently:
	// the request may be dropped while the car still enters.
	if res.OK {
		t.Log("synchronous checking send verified safe for this configuration")
	} else if res.Kind != checker.InvariantViolation && res.Kind != checker.Deadlock {
		t.Fatalf("unexpected failure kind: %s", res.Summary())
	}
}
