package bridge

import (
	"context"
	"testing"
	"time"

	"pnp/internal/blocks"
)

func simCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// TestRuntimeBridgeSyncNeverCollides is the executable twin of E9: real
// goroutine cars over synchronous enter connectors never share the bridge
// with the other color.
func TestRuntimeBridgeSyncNeverCollides(t *testing.T) {
	res, err := Simulate(simCtx(t), SimulationConfig{
		CarsPerSide: 2,
		N:           1,
		Crossings:   25,
		EnterSend:   blocks.SynBlockingSend,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Collisions != 0 {
		t.Errorf("sync bridge collided %d times", res.Collisions)
	}
	if want := 2 * 2 * 25; res.Crossings != want {
		t.Errorf("crossings = %d, want %d", res.Crossings, want)
	}
	if res.MaxOn > 1 {
		t.Errorf("max cars on bridge = %d with N=1", res.MaxOn)
	}
}

// TestRuntimeBridgeSyncQuotaTwo: with N=2 up to two same-color cars may
// share the bridge, but never opposite colors.
func TestRuntimeBridgeSyncQuotaTwo(t *testing.T) {
	res, err := Simulate(simCtx(t), SimulationConfig{
		CarsPerSide: 2,
		N:           2,
		Crossings:   20,
		EnterSend:   blocks.SynBlockingSend,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Collisions != 0 {
		t.Errorf("sync bridge (N=2) collided %d times", res.Collisions)
	}
	if want := 2 * 2 * 20; res.Crossings != want {
		t.Errorf("crossings = %d, want %d", res.Crossings, want)
	}
}

// TestRuntimeBridgeAsyncCompletes: the async variant is unsafe (the model
// checker proves collisions reachable); at runtime the race may or may
// not strike in a given run, so we only assert the simulation completes
// and report what it saw.
func TestRuntimeBridgeAsyncCompletes(t *testing.T) {
	res, err := Simulate(simCtx(t), SimulationConfig{
		CarsPerSide: 2,
		N:           1,
		Crossings:   25,
		EnterSend:   blocks.AsynBlockingSend,
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * 2 * 25; res.Crossings != want {
		t.Errorf("crossings = %d, want %d", res.Crossings, want)
	}
	t.Logf("async run observed %d collision(s), max %d car(s) on the bridge",
		res.Collisions, res.MaxOn)
}
