package sweep

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"time"

	"pnp/internal/checker"
	"pnp/internal/obs"
	"pnp/internal/obs/tracing"
	"pnp/internal/verifyd"
)

// Config parameterizes sweep execution.
type Config struct {
	// Server executes the cells; nil runs the sweep on a private
	// in-process server that is drained when Run returns. A shared server
	// (the daemon case) lets concurrent sweeps share its result cache and
	// search-worker budget.
	Server *verifyd.Server

	// Private-server shape, used only when Server is nil.
	Workers      int
	SearchBudget int
	CacheEntries int

	// Options is the base checker configuration for every cell; the
	// spec's MaxStates/Workers/Timeout overlay it. When the sweep runs on
	// a shared server, pass the options that server was configured with
	// so cells hash into the same cache entries as direct submissions.
	Options checker.Options

	// Registry receives the sweep metric families (sweeps_total,
	// sweep_cells_total, sweep_cache_hits_total, sweep_cells_in_flight);
	// nil disables them.
	Registry *obs.Registry

	// Tracer records sweep and cell spans. When nil and Server is set,
	// the server's own recorder is used, so one trace spans the sweep,
	// its cells, and their jobs. For a private server the tracer is also
	// handed down as its Config.Tracer.
	Tracer *tracing.Recorder

	// OnCell, when set, is called with each cell's result as it completes,
	// in cell-index order — the streaming hook behind NDJSON responses
	// and live CLI tables.
	OnCell func(CellResult)
}

// CellResult is one cell's outcome: its coordinates, its verdict, and
// the cost of obtaining it.
type CellResult struct {
	Index     int    `json:"index"`
	Connector string `json:"connector"`
	Send      string `json:"send"`
	Channel   string `json:"channel"`
	Size      int    `json:"size,omitempty"`
	Recv      string `json:"recv"`
	Faults    string `json:"faults,omitempty"`
	Companion bool   `json:"companion,omitempty"`
	Primary   int    `json:"primary"`

	// Verdict classifies the cell: "delivers-all", "may-lose-messages",
	// "deadlock", or another checker violation kind. OK is the report's
	// overall verdict; States is the safety search's stored-state count.
	Verdict string `json:"verdict"`
	OK      bool   `json:"ok"`
	States  int    `json:"states"`
	// Properties carries the full per-property verdicts of the cell's job.
	Properties []verifyd.PropertyVerdict `json:"properties,omitempty"`

	// CacheHits/CacheMisses are the cell's job counters; Deduped marks a
	// cell that reused another cell's job in this sweep (its counters are
	// then zero — the cost was paid once, by the leader).
	CacheHits   int  `json:"cache_hits"`
	CacheMisses int  `json:"cache_misses"`
	Deduped     bool `json:"deduped,omitempty"`

	// ModulesReused/ModulesCompiled are the cell's job module-compilation
	// counters (since PR10): how many per-module artifacts the submission
	// pulled from the artifact store versus compiled fresh.
	ModulesReused   int `json:"modules_reused,omitempty"`
	ModulesCompiled int `json:"modules_compiled,omitempty"`

	// Node names the cluster node that served the cell ("coordinator"
	// for cluster-cache answers); empty on a single-node sweep.
	Node string `json:"node,omitempty"`

	ElapsedMS float64 `json:"elapsed_ms"`
	// Err reports a per-cell submission failure; the sweep continues.
	Err string `json:"err,omitempty"`
}

// Result is the aggregated outcome of one sweep.
type Result struct {
	Name  string       `json:"name"`
	Cells []CellResult `json:"cells"`

	Total  int `json:"total"`
	Passed int `json:"passed"`
	Failed int `json:"failed"`
	// DedupHits counts cells answered by another cell of this sweep;
	// CacheHits/CacheMisses sum the executed jobs' property-cache
	// counters.
	DedupHits   int `json:"dedup_hits"`
	CacheHits   int `json:"cache_hits"`
	CacheMisses int `json:"cache_misses"`
	// ModulesReused/ModulesCompiled sum the executed jobs' module
	// accounting (since PR10) — a warm sweep of near-identical cells
	// shows reuse dominating compilation.
	ModulesReused   int     `json:"modules_reused,omitempty"`
	ModulesCompiled int     `json:"modules_compiled,omitempty"`
	ElapsedMS       float64 `json:"elapsed_ms"`
}

// verdictRank orders verdicts from strongest to weakest guarantee.
func verdictRank(v CellResult) int {
	switch {
	case v.Err != "":
		return 4
	case v.Verdict == "delivers-all":
		return 0
	case v.Verdict == "may-lose-messages":
		return 1
	case v.Verdict == "deadlock":
		return 2
	default:
		if _, ok := checker.ParseViolationKind(v.Verdict); ok {
			return 3
		}
		return 3
	}
}

// Ranked returns the cells ordered best-first: strongest delivery
// guarantee, then fewest stored states (the cheapest design that still
// satisfies the properties), then cell order. Companion cells rank after
// primaries with the same verdict and cost.
func (r *Result) Ranked() []CellResult {
	out := append([]CellResult(nil), r.Cells...)
	sort.SliceStable(out, func(i, j int) bool {
		ri, rj := verdictRank(out[i]), verdictRank(out[j])
		if ri != rj {
			return ri < rj
		}
		if out[i].Companion != out[j].Companion {
			return !out[i].Companion
		}
		if out[i].States != out[j].States {
			return out[i].States < out[j].States
		}
		return out[i].Index < out[j].Index
	})
	return out
}

// Run expands the spec and executes every cell on the configured server,
// deduplicating identical cell sources into single jobs. Cells that fail
// to submit (bad composition) carry their error in the result; Run
// itself fails only on an invalid spec or a canceled context.
func Run(ctx context.Context, spec Spec, cfg Config) (*Result, error) {
	cells, err := spec.Expand()
	if err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}

	tracer := cfg.Tracer
	if tracer == nil && cfg.Server != nil {
		tracer = cfg.Server.Tracer()
	}
	srv := cfg.Server
	if srv == nil {
		srv = verifyd.NewServer(verifyd.Config{
			Workers:      cfg.Workers,
			SearchBudget: cfg.SearchBudget,
			CacheEntries: cfg.CacheEntries,
			Registry:     cfg.Registry,
			Tracer:       tracer,
			Options:      cfg.Options,
		})
		defer func() {
			sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			srv.Shutdown(sctx)
		}()
	}

	// One sweep span roots the trace unless the caller already started
	// one (the sweep service does, so the 202 response can carry the
	// TraceID before any cell runs).
	if tracing.SpanFromContext(ctx) == nil {
		var sspan *tracing.Span
		ctx, sspan = tracer.StartSpan(ctx, "sweep",
			tracing.A("name", spec.Name), tracing.A("cells", strconv.Itoa(len(cells))))
		defer sspan.End()
	}

	mSweeps := cfg.Registry.Counter("sweeps_total")
	mCells := cfg.Registry.Counter("sweep_cells_total")
	mCacheHits := cfg.Registry.Counter("sweep_cache_hits_total")
	mInFlight := cfg.Registry.Gauge("sweep_cells_in_flight")
	mSweeps.Inc()

	opts := cfg.Options
	if spec.MaxStates > 0 {
		opts.MaxStates = spec.MaxStates
	}
	if spec.Workers > 0 {
		opts.Workers = spec.Workers
	}

	// Submit one job per distinct cell source; later cells with the same
	// source become followers of the first (the leader) and reuse its
	// result. The under-lossy companions of an already-lossy-adjacent
	// matrix are the common case: half a sweep can collapse this way.
	type submission struct {
		job  *verifyd.Job
		err  error
		span *tracing.Span // the cell's span, ended when its wait completes
	}
	leaders := make(map[string]int, len(cells)) // source -> leader cell index
	subs := make(map[int]*submission, len(cells))
	for _, c := range cells {
		if _, ok := leaders[c.Source]; ok {
			continue
		}
		leaders[c.Source] = c.Index
		cctx, cspan := tracer.StartSpan(ctx, "cell:"+strconv.Itoa(c.Index),
			tracing.A("connector", c.Connector))
		job, err := srv.SubmitContext(cctx, c.Source, spec.Components, opts, spec.Timeout)
		subs[c.Index] = &submission{job: job, err: err, span: cspan}
		if err == nil {
			mInFlight.Add(1)
		} else {
			cspan.SetAttr("error", err.Error())
			cspan.End()
		}
	}

	res := &Result{Name: spec.Name, Total: len(cells)}
	start := time.Now()
	for _, c := range cells {
		leader := leaders[c.Source]
		sub := subs[leader]
		cr := CellResult{
			Index:     c.Index,
			Connector: c.Connector,
			Send:      c.Spec.Send.Token(),
			Channel:   c.Spec.Channel.Token(),
			Size:      c.Spec.Size,
			Recv:      c.Spec.Recv.Token(),
			Faults:    c.Faults,
			Companion: c.Companion,
			Primary:   c.Primary,
			Deduped:   leader != c.Index,
		}
		switch {
		case sub.err != nil:
			cr.Verdict = "error"
			cr.Err = sub.err.Error()
		default:
			if err := srv.Wait(ctx, sub.job); err != nil {
				sub.span.End()
				return nil, fmt.Errorf("sweep: cell %d: %w", c.Index, err)
			}
			snap := srv.Snapshot(sub.job)
			Classify(&cr, snap.Report)
			if !cr.Deduped {
				cr.CacheHits = snap.CacheHits
				cr.CacheMisses = snap.CacheMisses
				cr.ModulesReused = snap.ModulesReused
				cr.ModulesCompiled = snap.ModulesCompiled
				mInFlight.Add(-1)
				if sub.span != nil {
					sub.span.SetAttr("verdict", cr.Verdict)
					sub.span.SetAttr("job_id", snap.ID)
					sub.span.End()
				}
			} else {
				// Followers record a zero-cost span pointing at the
				// leader's job, so the trace shows where each cell's
				// verdict came from.
				_, fspan := tracer.StartSpan(ctx, "cell:"+strconv.Itoa(c.Index),
					tracing.A("connector", c.Connector),
					tracing.A("deduped", "true"),
					tracing.A("leader", strconv.Itoa(leader)),
					tracing.A("verdict", cr.Verdict))
				fspan.End()
			}
		}
		mCells.Inc()
		// A cell is "served from cache" when it piggybacked on another
		// cell's job, or when its own job never ran a search.
		if cr.Err == "" && (cr.Deduped || cr.CacheMisses == 0) {
			mCacheHits.Inc()
		}
		if cr.Deduped {
			res.DedupHits++
		}
		res.CacheHits += cr.CacheHits
		res.CacheMisses += cr.CacheMisses
		res.ModulesReused += cr.ModulesReused
		res.ModulesCompiled += cr.ModulesCompiled
		if cr.Err == "" && cr.OK {
			res.Passed++
		} else {
			res.Failed++
		}
		res.Cells = append(res.Cells, cr)
		if cfg.OnCell != nil {
			cfg.OnCell(cr)
		}
	}
	res.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)
	return res, nil
}

// Classify reduces a job report to the cell's verdict: a failing safety
// property names the violation ("deadlock" for invalid end states), a
// failing goal means the design can lose messages, and a clean report
// delivers all. States is the safety search's cost — the number the
// matrix experiment compares across cells. Exported so the cluster
// coordinator classifies remotely executed cells by the same rule.
func Classify(cr *CellResult, rep *verifyd.Report) {
	if rep == nil {
		cr.Verdict = "error"
		cr.Err = "job finished without a report"
		return
	}
	cr.OK = rep.OK
	cr.Properties = rep.Properties
	cr.Verdict = "delivers-all"
	var goalFailed bool
	for i := range rep.Properties {
		p := &rep.Properties[i]
		cr.ElapsedMS += p.ElapsedMS
		switch p.Kind {
		case "invariant":
			cr.States = p.States
			if !p.OK {
				if p.Verdict == checker.Deadlock.String() {
					cr.Verdict = "deadlock"
				} else {
					cr.Verdict = p.Verdict
				}
			}
		case "goal":
			if !p.OK {
				goalFailed = true
			}
		}
	}
	if cr.Verdict == "delivers-all" && goalFailed {
		cr.Verdict = "may-lose-messages"
	}
}
