package sweep

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"pnp/internal/blocks"
	"pnp/internal/checker"
	"pnp/internal/model"
	"pnp/internal/obs"
	"pnp/internal/verifyd"
)

// pingPML is a minimal one-shot producer/consumer for fast cells.
const pingPML = `
byte got;
proctype Producer(chan esig; chan edat; byte n) {
	byte i;
	mtype st;
	do
	:: i < n ->
	   edat!i + 1,0,0,0,1;
	   esig?st,_;
	   i = i + 1
	:: else -> break
	od
}
proctype Consumer(chan rsig; chan rdat; byte n) {
	mtype st;
	byte d, sid, sd;
	bit sel, rem;
	do
	:: got < n ->
	   rdat!0,0,0,0,1;
	   rsig?st,_;
	   rdat?d,sid,sd,sel,rem;
	   if
	   :: st == RECV_SUCC -> got = got + 1
	   :: else
	   fi
	:: else -> break
	od
}
`

func pingSpec(msgs int) Spec {
	base := fmt.Sprintf(`system ping {
    components "ping.pml"

    connector pipe {
        send    syn-blocking
        channel fifo(1)
        receive blocking
    }

    instance p = Producer(send pipe, %d)
    instance c = Consumer(recv pipe, %d)

    invariant safety "got >= 0"
    goal delivered "got == %d"
}
`, msgs, msgs, msgs)
	return Spec{
		Name:       "ping",
		Base:       base,
		Components: map[string]string{"ping.pml": pingPML},
		Connector:  "pipe",
	}
}

func TestExpandMatrixShape(t *testing.T) {
	cells, err := Matrix(2, 1).Expand()
	if err != nil {
		t.Fatal(err)
	}
	// 5 sends x 5 channels x 2 recvs primaries, plus an under-lossy
	// companion for each of the 40 non-lossy primaries.
	if len(cells) != 90 {
		t.Fatalf("Expand: got %d cells, want 90", len(cells))
	}
	primaries, companions := 0, 0
	for _, c := range cells {
		if c.Companion {
			companions++
			if c.Spec.Channel != blocks.LossyBuffer {
				t.Fatalf("companion cell %d has channel %v", c.Index, c.Spec.Channel)
			}
			prim := cells[c.Primary]
			if prim.Companion {
				t.Fatalf("companion cell %d points at companion %d", c.Index, c.Primary)
			}
			if prim.Spec.Send != c.Spec.Send || prim.Spec.Recv != c.Spec.Recv {
				t.Fatalf("companion cell %d does not match primary %d endpoints", c.Index, c.Primary)
			}
		} else {
			primaries++
			if c.Primary != c.Index {
				t.Fatalf("primary cell %d has Primary=%d", c.Index, c.Primary)
			}
		}
		if !strings.Contains(c.Source, c.Spec.Send.Token()) {
			t.Fatalf("cell %d source does not mention its send kind %s", c.Index, c.Spec.Send.Token())
		}
	}
	if primaries != 50 || companions != 40 {
		t.Fatalf("got %d primaries, %d companions; want 50, 40", primaries, companions)
	}
	// Every companion's source must coincide with the lossy primary of
	// the same send/recv/size — that is what the engine dedupes on.
	bySource := map[string]int{}
	for _, c := range cells {
		if !c.Companion {
			bySource[c.Source]++
		}
	}
	for _, c := range cells {
		if c.Companion {
			if bySource[c.Source] == 0 {
				t.Fatalf("companion cell %d has a source no primary shares", c.Index)
			}
		}
	}
}

func TestExpandPinsBaseDimensions(t *testing.T) {
	spec := pingSpec(1)
	spec.Channels = []ChannelVariant{{Kind: blocks.FIFOQueue, Size: 2}, {Kind: blocks.SingleSlot}}
	cells, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("got %d cells, want 2", len(cells))
	}
	for _, c := range cells {
		if c.Spec.Send != blocks.SynBlockingSend || c.Spec.Recv != blocks.BlockingRecv {
			t.Fatalf("cell %d did not pin base endpoints: %s", c.Index, c.Connector)
		}
	}
	if cells[0].Spec.Size != 2 || cells[1].Spec.Size != 0 {
		t.Fatalf("channel sizes not honored: %d, %d", cells[0].Spec.Size, cells[1].Spec.Size)
	}
}

func TestExpandErrors(t *testing.T) {
	if _, err := (Spec{Base: "system x {\n}"}).Expand(); err == nil {
		t.Fatal("no connectors: want error")
	}
	spec := pingSpec(1)
	spec.Connector = "nosuch"
	if _, err := spec.Expand(); err == nil {
		t.Fatal("unknown connector: want error")
	}
	spec = pingSpec(1)
	spec.Channels = []ChannelVariant{{Kind: blocks.FIFOQueue, Size: blocks.MaxBufSize + 1}}
	if _, err := spec.Expand(); err == nil {
		t.Fatal("oversized channel: want error")
	}
}

// TestRunDedupCounters is the sweep-dedup acceptance test: N identical
// cells must run the checker once and count N-1 engine-level cache hits.
func TestRunDedupCounters(t *testing.T) {
	spec := pingSpec(1)
	// Three identical channel variants -> three cells with one source.
	spec.Channels = []ChannelVariant{
		{Kind: blocks.FIFOQueue, Size: 1},
		{Kind: blocks.FIFOQueue, Size: 1},
		{Kind: blocks.FIFOQueue, Size: 1},
	}
	reg := obs.NewRegistry()
	res, err := Run(context.Background(), spec, Config{Workers: 2, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != 3 || len(res.Cells) != 3 {
		t.Fatalf("got %d cells, want 3", res.Total)
	}
	if res.DedupHits != 2 {
		t.Fatalf("DedupHits = %d, want 2", res.DedupHits)
	}
	// One job ran, covering two properties; nothing was in the result
	// cache beforehand.
	if res.CacheMisses != 2 || res.CacheHits != 0 {
		t.Fatalf("job counters: hits=%d misses=%d, want 0/2", res.CacheHits, res.CacheMisses)
	}
	lead, follow := 0, 0
	for _, c := range res.Cells {
		if c.Deduped {
			follow++
			if c.Verdict != res.Cells[0].Verdict || c.States != res.Cells[0].States {
				t.Fatalf("deduped cell %d diverges from leader: %+v", c.Index, c)
			}
		} else {
			lead++
		}
	}
	if lead != 1 || follow != 2 {
		t.Fatalf("got %d leaders, %d followers; want 1, 2", lead, follow)
	}
	if got := reg.Counter("sweep_cells_total").Value(); got != 3 {
		t.Fatalf("sweep_cells_total = %v, want 3", got)
	}
	if got := reg.Counter("sweep_cache_hits_total").Value(); got != 2 {
		t.Fatalf("sweep_cache_hits_total = %v, want 2", got)
	}
	if got := reg.Counter("sweeps_total").Value(); got != 1 {
		t.Fatalf("sweeps_total = %v, want 1", got)
	}
	if got := reg.Gauge("sweep_cells_in_flight").Value(); got != 0 {
		t.Fatalf("sweep_cells_in_flight = %v, want 0 after the sweep", got)
	}
}

// TestRunSharedServerCacheReuse: a second sweep on the same server is
// answered entirely from the result cache.
func TestRunSharedServerCacheReuse(t *testing.T) {
	reg := obs.NewRegistry()
	srv := verifyd.NewServer(verifyd.Config{Workers: 2, Registry: reg})
	defer srv.Shutdown(context.Background())

	spec := pingSpec(1)
	spec.Channels = []ChannelVariant{{Kind: blocks.FIFOQueue, Size: 1}, {Kind: blocks.SingleSlot}}

	first, err := Run(context.Background(), spec, Config{Server: srv, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	if first.CacheHits != 0 || first.CacheMisses != 4 {
		t.Fatalf("first sweep counters: hits=%d misses=%d, want 0/4", first.CacheHits, first.CacheMisses)
	}
	second, err := Run(context.Background(), spec, Config{Server: srv, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	if second.CacheMisses != 0 || second.CacheHits != 4 {
		t.Fatalf("second sweep counters: hits=%d misses=%d, want 4/0", second.CacheHits, second.CacheMisses)
	}
	for i, c := range second.Cells {
		if c.Verdict != first.Cells[i].Verdict || c.States != first.Cells[i].States {
			t.Fatalf("cached cell %d diverges: %+v vs %+v", i, c, first.Cells[i])
		}
	}
	// Fully cached cells count as sweep cache hits.
	if got := reg.Counter("sweep_cache_hits_total").Value(); got != 2 {
		t.Fatalf("sweep_cache_hits_total = %v, want 2", got)
	}
}

func TestRunStreamsInCellOrder(t *testing.T) {
	spec := pingSpec(1)
	spec.Recvs = []blocks.RecvPortKind{blocks.BlockingRecv, blocks.NonblockingRecv}
	var order []int
	_, err := Run(context.Background(), spec, Config{Workers: 2, OnCell: func(cr CellResult) {
		order = append(order, cr.Index)
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != 0 || order[1] != 1 {
		t.Fatalf("OnCell order = %v, want [0 1]", order)
	}
}

func TestRunBadCellReportsError(t *testing.T) {
	spec := pingSpec(1)
	// Reference a component the resolver cannot supply.
	spec.Components = map[string]string{}
	res, err := Run(context.Background(), spec, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 1 || res.Cells[0].Err == "" {
		t.Fatalf("want a failed cell with Err, got %+v", res.Cells[0])
	}
}

func TestRunHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	spec := pingSpec(1)
	if _, err := Run(ctx, spec, Config{Workers: 1}); err == nil {
		t.Fatal("canceled context: want error")
	}
}

func TestRanked(t *testing.T) {
	res := &Result{Cells: []CellResult{
		{Index: 0, Verdict: "may-lose-messages", States: 10},
		{Index: 1, Verdict: "delivers-all", States: 20},
		{Index: 2, Verdict: "delivers-all", States: 5},
		{Index: 3, Verdict: "deadlock", States: 1},
		{Index: 4, Verdict: "delivers-all", States: 5, Companion: true},
		{Index: 5, Err: "boom", Verdict: "error"},
	}}
	got := res.Ranked()
	want := []int{2, 1, 4, 0, 3, 5}
	for i, c := range got {
		if c.Index != want[i] {
			t.Fatalf("rank %d = cell %d, want %d (full: %v)", i, c.Index, want[i], got)
		}
	}
}

// TestMatrixParity is the acceptance criterion: the sweep engine's E12
// matrix must reproduce pnpmatrix's direct-composition loop cell for
// cell — identical verdicts, identical under-lossy verdicts, identical
// safety state counts.
func TestMatrixParity(t *testing.T) {
	if testing.Short() {
		t.Skip("full E12 matrix is expensive; run without -short")
	}
	const msgs, bufsize = 2, 1
	res, err := Run(context.Background(), Matrix(msgs, bufsize), Config{
		Options: checker.Options{Workers: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	rows := MatrixRows(res)
	if len(rows) != 50 {
		t.Fatalf("got %d rows, want 50", len(rows))
	}

	// The reference: pnpmatrix's original direct-composition loop.
	cache := blocks.NewCache()
	i := 0
	for _, snd := range []blocks.SendPortKind{
		blocks.AsynNonblockingSend, blocks.AsynBlockingSend, blocks.AsynCheckingSend,
		blocks.SynBlockingSend, blocks.SynCheckingSend,
	} {
		for _, ch := range []blocks.ChannelKind{
			blocks.SingleSlot, blocks.FIFOQueue, blocks.PriorityQueue,
			blocks.DroppingBuffer, blocks.LossyBuffer,
		} {
			for _, rcv := range []blocks.RecvPortKind{blocks.BlockingRecv, blocks.NonblockingRecv} {
				spec := blocks.ConnectorSpec{Send: snd, Channel: ch, Size: bufsize, Recv: rcv}
				if ch == blocks.SingleSlot {
					spec.Size = 0
				}
				verdict, states := referenceCell(t, spec, msgs, cache)
				fspec := spec
				fspec.Channel = blocks.LossyBuffer
				if fspec.Size == 0 {
					fspec.Size = bufsize
				}
				underLossy, _ := referenceCell(t, fspec, msgs, cache)

				row := rows[i]
				if row.Cell.Connector != spec.String() {
					t.Fatalf("row %d is %s, want %s", i, row.Cell.Connector, spec)
				}
				if row.Cell.Verdict != verdict {
					t.Errorf("%s: verdict %q, want %q", spec, row.Cell.Verdict, verdict)
				}
				if row.Cell.States != states {
					t.Errorf("%s: %d states, want %d", spec, row.Cell.States, states)
				}
				if row.UnderLossy != underLossy {
					t.Errorf("%s: under-lossy %q, want %q", spec, row.UnderLossy, underLossy)
				}
				i++
			}
		}
	}
}

// referenceCell is pnpmatrix's evaluate(), inlined as the parity oracle.
func referenceCell(t *testing.T, spec blocks.ConnectorSpec, msgs int, cache *blocks.Cache) (string, int) {
	t.Helper()
	b, err := blocks.NewBuilder(matrixPML, cache)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := b.NewConnector("pipe", spec)
	if err != nil {
		t.Fatal(err)
	}
	snd, err := conn.AddSender("p")
	if err != nil {
		t.Fatal(err)
	}
	rcv, err := conn.AddReceiver("c")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Spawn("Producer", model.Chan(snd.Sig), model.Chan(snd.Dat), model.Int(int64(msgs))); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Spawn("Consumer", model.Chan(rcv.Sig), model.Chan(rcv.Dat), model.Int(int64(msgs))); err != nil {
		t.Fatal(err)
	}
	safety := checker.New(b.System(), checker.Options{Workers: 2}).CheckSafety()
	verdict := "delivers-all"
	switch {
	case !safety.OK && safety.Kind == checker.Deadlock:
		verdict = "deadlock"
	case !safety.OK:
		verdict = safety.Kind.String()
	default:
		target, err := b.Program().CompileGlobalExpr(fmt.Sprintf("got == %d", msgs))
		if err != nil {
			t.Fatal(err)
		}
		inev := checker.New(b.System(), checker.Options{Workers: 2}).CheckEventuallyReachable(target)
		if !inev.OK {
			verdict = "may-lose-messages"
		}
	}
	return verdict, safety.Stats.StatesStored
}

func TestRunTimeoutVerdict(t *testing.T) {
	spec := pingSpec(3)
	spec.Timeout = time.Nanosecond
	res, err := Run(context.Background(), spec, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// A timed-out search reports the canceled violation kind, not a
	// delivery verdict — and must not be a cache hit.
	if res.Cells[0].Verdict != checker.Canceled.String() {
		t.Fatalf("verdict = %q, want %q", res.Cells[0].Verdict, checker.Canceled)
	}
}
