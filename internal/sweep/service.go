package sweep

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"pnp/internal/adl"
	"pnp/internal/blocks"
	"pnp/internal/checker"
	"pnp/internal/obs"
	"pnp/internal/obs/tracing"
	"pnp/internal/verifyd"
)

// retainSweeps bounds how many completed sweeps stay queryable; older
// ones are evicted FIFO (running sweeps are never evicted).
const retainSweeps = 64

// WireSpec is the JSON form of a sweep submission: the dimensions are
// ADL tokens ("syn-blocking", "fifo(2)", "blocking") so clients never
// depend on internal enum values. Preset names a built-in spec
// ("matrix") and makes every other field except Msgs/BufSize optional.
type WireSpec struct {
	Name       string            `json:"name,omitempty"`
	Base       string            `json:"base,omitempty"`
	Components map[string]string `json:"components,omitempty"`
	Connector  string            `json:"connector,omitempty"`

	Sends    []string `json:"sends,omitempty"`
	Channels []string `json:"channels,omitempty"`
	Recvs    []string `json:"recvs,omitempty"`
	// FaultPlans varies the design's faults block; each entry is the
	// block's inner text ("" = none).
	FaultPlans []string `json:"fault_plans,omitempty"`

	UnderLossy bool `json:"under_lossy,omitempty"`
	LossySize  int  `json:"lossy_size,omitempty"`

	MaxStates int `json:"max_states,omitempty"`
	Workers   int `json:"workers,omitempty"`
	TimeoutMS int `json:"timeout_ms,omitempty"`

	// Preset selects a built-in spec ("matrix"); Msgs and BufSize
	// parameterize it.
	Preset  string `json:"preset,omitempty"`
	Msgs    int    `json:"msgs,omitempty"`
	BufSize int    `json:"buf_size,omitempty"`
}

// Compile resolves the wire form to an executable Spec.
func (ws WireSpec) Compile() (Spec, error) {
	var spec Spec
	switch ws.Preset {
	case "":
		spec = Spec{
			Name:       ws.Name,
			Base:       ws.Base,
			Components: ws.Components,
			Connector:  ws.Connector,
			FaultPlans: ws.FaultPlans,
			UnderLossy: ws.UnderLossy,
			LossySize:  ws.LossySize,
		}
		for _, tok := range ws.Sends {
			k, ok := adl.ParseSendKind(tok)
			if !ok {
				return Spec{}, fmt.Errorf("unknown send kind %q", tok)
			}
			spec.Sends = append(spec.Sends, k)
		}
		for _, tok := range ws.Channels {
			kind, size, err := adl.ParseChannel(tok)
			if err != nil {
				return Spec{}, err
			}
			spec.Channels = append(spec.Channels, ChannelVariant{Kind: kind, Size: size})
		}
		for _, tok := range ws.Recvs {
			k, ok := adl.ParseRecvKind(tok)
			if !ok {
				return Spec{}, fmt.Errorf("unknown receive kind %q", tok)
			}
			spec.Recvs = append(spec.Recvs, k)
		}
	case "matrix":
		msgs := ws.Msgs
		if msgs <= 0 {
			msgs = 3
		}
		bufsize := ws.BufSize
		if bufsize <= 0 {
			bufsize = 1
		}
		spec = Matrix(msgs, bufsize)
		if ws.Name != "" {
			spec.Name = ws.Name
		}
	default:
		return Spec{}, fmt.Errorf("unknown preset %q", ws.Preset)
	}
	spec.MaxStates = ws.MaxStates
	spec.Workers = ws.Workers
	spec.Timeout = time.Duration(ws.TimeoutMS) * time.Millisecond
	return spec, nil
}

// Status is the externally visible state of one sweep.
type Status struct {
	ID      string    `json:"id"`
	Name    string    `json:"name"`
	State   string    `json:"state"` // "running" or "done"
	Started time.Time `json:"started"`
	Total   int       `json:"total_cells"`
	Done    int       `json:"done_cells"`
	// TraceID is the hex trace the sweep's spans record into (empty when
	// the server runs without a Tracer); GET /v1/sweeps/{id}/trace
	// streams them.
	TraceID string `json:"trace_id,omitempty"`
	// Result is present once State is "done"; Err reports a sweep that
	// failed outright (its cells are then absent).
	Result *Result `json:"result,omitempty"`
	Err    string  `json:"err,omitempty"`
}

// sweepJob is one running or completed sweep.
type sweepJob struct {
	id      string
	name    string
	started time.Time
	total   int
	traceID string

	mu     sync.Mutex
	cells  []CellResult
	result *Result
	err    string
	done   bool
	notify chan struct{} // closed and replaced on every update
}

func (sj *sweepJob) status(withResult bool) Status {
	sj.mu.Lock()
	defer sj.mu.Unlock()
	st := Status{
		ID: sj.id, Name: sj.name, State: "running", Started: sj.started,
		Total: sj.total, Done: len(sj.cells), TraceID: sj.traceID, Err: sj.err,
	}
	if sj.done {
		st.State = "done"
		if withResult {
			st.Result = sj.result
		}
	}
	return st
}

// Service serves the sweep routes of the v1 API on top of a verification
// server. One POST fans out into a job per distinct cell; all sweeps
// share the server's result cache and search budget.
type Service struct {
	srv  *verifyd.Server
	opts checker.Options
	reg  *obs.Registry

	mu     sync.Mutex
	sweeps map[string]*sweepJob
	order  []string // completed-sweep eviction order
	nextID int
	wg     sync.WaitGroup
}

// NewService builds a sweep service over srv. opts is the base checker
// configuration for sweep cells — pass the options srv was configured
// with, so sweep cells share cache entries with direct job submissions.
func NewService(srv *verifyd.Server, opts checker.Options, reg *obs.Registry) *Service {
	return &Service{srv: srv, opts: opts, reg: reg, sweeps: make(map[string]*sweepJob)}
}

// Wait blocks until every accepted sweep has finished. Call after the
// verification server has drained.
func (sv *Service) Wait() { sv.wg.Wait() }

// Handler returns the sweep routes mounted over base (the verification
// server's handler), forming the complete v1 surface:
//
//	POST /v1/sweeps             submit a sweep (WireSpec) -> 202 + status
//	GET  /v1/sweeps             list sweeps
//	GET  /v1/sweeps/{id}        sweep status; result included when done
//	GET  /v1/sweeps/{id}/stream NDJSON: {"cell":...} per cell, then {"sweep":...}
//	GET  /v1/sweeps/{id}/trace  the sweep's spans as NDJSON (404 w/o tracing)
//
// A submission carrying a W3C traceparent header joins the caller's
// trace.
func (sv *Service) Handler(base http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sweeps", sv.handleSubmit)
	mux.HandleFunc("GET /v1/sweeps", sv.handleList)
	mux.HandleFunc("GET /v1/sweeps/{id}", sv.handleSweep)
	mux.HandleFunc("GET /v1/sweeps/{id}/stream", sv.handleStream)
	mux.HandleFunc("GET /v1/sweeps/{id}/trace", sv.handleTrace)
	mux.Handle("/", base)
	return mux
}

// Run executes a compiled spec synchronously on the service's server,
// sharing its cache, budget, and metrics. The Go-API twin of POST
// /v1/sweeps for in-process embedders (pnp.Sweep with a service).
func (sv *Service) Run(ctx context.Context, spec Spec) (*Result, error) {
	return Run(ctx, spec, Config{Server: sv.srv, Options: sv.opts, Registry: sv.reg})
}

// Start validates and launches a sweep in the background, returning its
// initial status. ctx is used only for trace parenting (a span or
// extracted traceparent joins the sweep to the caller's trace); the
// background run is never canceled by it.
func (sv *Service) Start(ctx context.Context, ws WireSpec) (Status, error) {
	spec, err := ws.Compile()
	if err != nil {
		return Status{}, err
	}
	cells, err := spec.Expand()
	if err != nil {
		return Status{}, err
	}
	// Compose the first cell now so bad designs fail the submission, not
	// the background run: Expand only parses the architecture, while
	// composition resolves components and endpoints.
	if _, err := adl.Load(cells[0].Source, func(path string) (string, error) {
		if text, ok := spec.Components[path]; ok {
			return text, nil
		}
		return "", fmt.Errorf("unknown component %q", path)
	}, blocks.NewCache()); err != nil {
		return Status{}, err
	}

	// The sweep span starts here, not in the engine, so the 202 response
	// already carries the TraceID a client needs to follow the trace.
	_, sspan := sv.srv.Tracer().StartSpan(ctx, "sweep",
		tracing.A("name", spec.Name), tracing.A("cells", fmt.Sprintf("%d", len(cells))))

	sv.mu.Lock()
	sv.nextID++
	sj := &sweepJob{
		id:      fmt.Sprintf("sweep-%d", sv.nextID),
		name:    spec.Name,
		started: time.Now(),
		total:   len(cells),
		notify:  make(chan struct{}),
	}
	if sspan != nil {
		sj.traceID = sspan.TraceID().String()
		sspan.SetAttr("sweep_id", sj.id)
	}
	sv.sweeps[sj.id] = sj
	sv.mu.Unlock()
	sv.srv.Logger().Info("sweep started", "sweep_id", sj.id, "name", spec.Name,
		"cells", len(cells), "trace_id", sj.traceID)

	sv.wg.Add(1)
	go func() {
		defer sv.wg.Done()
		// A fresh context carrying only the sweep span: the run must
		// outlive the submitting HTTP request.
		runCtx := context.Background()
		if sspan != nil {
			runCtx = tracing.ContextWithSpan(runCtx, sspan)
		}
		res, err := Run(runCtx, spec, Config{
			Server:   sv.srv,
			Options:  sv.opts,
			Registry: sv.reg,
			OnCell: func(cr CellResult) {
				sj.mu.Lock()
				sj.cells = append(sj.cells, cr)
				close(sj.notify)
				sj.notify = make(chan struct{})
				sj.mu.Unlock()
			},
		})
		sj.mu.Lock()
		if err != nil {
			sj.err = err.Error()
		} else {
			sj.result = res
		}
		sj.done = true
		close(sj.notify)
		sj.notify = make(chan struct{})
		sj.mu.Unlock()
		if sspan != nil {
			if err != nil {
				sspan.SetAttr("error", err.Error())
			} else {
				sspan.SetAttr("passed", fmt.Sprintf("%d", res.Passed))
				sspan.SetAttr("failed", fmt.Sprintf("%d", res.Failed))
			}
			sspan.End()
		}
		if err != nil {
			sv.srv.Logger().Warn("sweep failed", "sweep_id", sj.id, "trace_id", sj.traceID, "err", err)
		} else {
			sv.srv.Logger().Info("sweep done", "sweep_id", sj.id, "trace_id", sj.traceID,
				"passed", res.Passed, "failed", res.Failed, "dedup_hits", res.DedupHits)
		}
		sv.retire(sj.id)
	}()
	return sj.status(false), nil
}

// retire records a completed sweep and evicts the oldest beyond the
// retention bound.
func (sv *Service) retire(id string) {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	sv.order = append(sv.order, id)
	for len(sv.order) > retainSweeps {
		delete(sv.sweeps, sv.order[0])
		sv.order = sv.order[1:]
	}
}

func (sv *Service) lookup(id string) (*sweepJob, bool) {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	sj, ok := sv.sweeps[id]
	return sj, ok
}

func (sv *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var ws WireSpec
	body := http.MaxBytesReader(w, r.Body, 1<<20)
	if err := json.NewDecoder(body).Decode(&ws); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			verifyd.WriteError(w, http.StatusRequestEntityTooLarge, verifyd.CodeTooLarge, "body exceeds 1MiB")
			return
		}
		verifyd.WriteError(w, http.StatusBadRequest, verifyd.CodeInvalidArgument, "bad sweep spec: "+err.Error())
		return
	}
	// Trace parenting from the request's traceparent over a background
	// context: the sweep must not inherit the request's cancellation.
	tctx := tracing.ContextWithRemote(context.Background(), tracing.Extract(r))
	st, err := sv.Start(tctx, ws)
	if err != nil {
		verifyd.WriteADLError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

// handleTrace streams the sweep's recorded spans — sweep, cells, their
// jobs and checker phases — as NDJSON. Spans may still be arriving while
// the sweep runs. 404 when the server runs without a Tracer.
func (sv *Service) handleTrace(w http.ResponseWriter, r *http.Request) {
	sj, ok := sv.lookup(r.PathValue("id"))
	if !ok {
		verifyd.WriteError(w, http.StatusNotFound, verifyd.CodeNotFound, "no such sweep")
		return
	}
	tracer := sv.srv.Tracer()
	if tracer == nil || sj.traceID == "" {
		verifyd.WriteError(w, http.StatusNotFound, verifyd.CodeNotFound, "tracing disabled")
		return
	}
	w.Header().Set("Content-Type", tracing.NDJSONContentType)
	tracing.WriteNDJSON(w, tracer.TraceHex(sj.traceID))
}

func (sv *Service) handleList(w http.ResponseWriter, r *http.Request) {
	sv.mu.Lock()
	jobs := make([]*sweepJob, 0, len(sv.sweeps))
	for _, sj := range sv.sweeps {
		jobs = append(jobs, sj)
	}
	sv.mu.Unlock()
	out := struct {
		Sweeps []Status `json:"sweeps"`
	}{Sweeps: make([]Status, 0, len(jobs))}
	for _, sj := range jobs {
		out.Sweeps = append(out.Sweeps, sj.status(false))
	}
	// Listing order is creation order ("sweep-N" is monotonic).
	for i := 1; i < len(out.Sweeps); i++ {
		for j := i; j > 0 && out.Sweeps[j-1].Started.After(out.Sweeps[j].Started); j-- {
			out.Sweeps[j-1], out.Sweeps[j] = out.Sweeps[j], out.Sweeps[j-1]
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (sv *Service) handleSweep(w http.ResponseWriter, r *http.Request) {
	sj, ok := sv.lookup(r.PathValue("id"))
	if !ok {
		verifyd.WriteError(w, http.StatusNotFound, verifyd.CodeNotFound, "no such sweep")
		return
	}
	writeJSON(w, http.StatusOK, sj.status(true))
}

// streamLine is one NDJSON line of GET /v1/sweeps/{id}/stream: cell
// lines as results arrive, then exactly one sweep line.
type streamLine struct {
	Cell  *CellResult `json:"cell,omitempty"`
	Sweep *Status     `json:"sweep,omitempty"`
}

func (sv *Service) handleStream(w http.ResponseWriter, r *http.Request) {
	sj, ok := sv.lookup(r.PathValue("id"))
	if !ok {
		verifyd.WriteError(w, http.StatusNotFound, verifyd.CodeNotFound, "no such sweep")
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	seen := 0
	for {
		sj.mu.Lock()
		pending := append([]CellResult(nil), sj.cells[seen:]...)
		done := sj.done
		notify := sj.notify
		sj.mu.Unlock()
		for i := range pending {
			enc.Encode(streamLine{Cell: &pending[i]})
			seen++
		}
		if done {
			st := sj.status(true)
			enc.Encode(streamLine{Sweep: &st})
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
		select {
		case <-notify:
		case <-r.Context().Done():
			return
		}
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
