package sweep

import (
	"fmt"

	"pnp/internal/blocks"
)

// matrixPML is the producer/consumer pair of the E12 matrix experiment.
// The consumer counts deliveries in a global so message loss is
// observable as unreachability of got == n.
const matrixPML = `
byte got;
proctype Producer(chan esig; chan edat; byte n) {
	byte i;
	mtype st;
	do
	:: i < n ->
	   edat!i + 1,0,0,0,1;
	   esig?st,_;
	   i = i + 1
	:: else -> break
	od
}
proctype Consumer(chan rsig; chan rdat; byte n) {
	mtype st;
	byte d, sid, sd;
	bit sel, rem;
	do
	:: got < n ->
	   rdat!0,0,0,0,1;
	   rsig?st,_;
	   rdat?d,sid,sd,sel,rem;
	   if
	   :: st == RECV_SUCC -> got = got + 1
	   :: else
	   fi
	:: else -> break
	od
}
`

// matrixBase is the E12 base design. The connector block is a
// placeholder: every cell rewrites it. The trivially true invariant
// exists to request the safety search (deadlock detection) as a named,
// cacheable property; the goal is the paper's delivery guarantee
// AG EF (got == n).
const matrixBase = `system matrix {
    components "matrix.pml"

    connector pipe {
        send    syn-blocking
        channel fifo(1)
        receive blocking
    }

    instance p = Producer(send pipe, %d)
    instance c = Consumer(recv pipe, %d)

    invariant safety "got >= 0"
    goal delivered "got == %d"
}
`

// Matrix is the E12 design-space sweep as a preset: every send-port kind
// x channel kind x receive-port kind composed into the producer/consumer
// system, each cell paired with its under-lossy companion. It is the
// sweep-engine form of cmd/pnpmatrix's hand-rolled loop; both commands
// now expand exactly this spec.
func Matrix(msgs, bufsize int) Spec {
	return Spec{
		Name:       "matrix",
		Base:       fmt.Sprintf(matrixBase, msgs, msgs, msgs),
		Components: map[string]string{"matrix.pml": matrixPML},
		Connector:  "pipe",
		Sends: []blocks.SendPortKind{
			blocks.AsynNonblockingSend, blocks.AsynBlockingSend, blocks.AsynCheckingSend,
			blocks.SynBlockingSend, blocks.SynCheckingSend,
		},
		Channels: []ChannelVariant{
			{Kind: blocks.SingleSlot},
			{Kind: blocks.FIFOQueue, Size: bufsize},
			{Kind: blocks.PriorityQueue, Size: bufsize},
			{Kind: blocks.DroppingBuffer, Size: bufsize},
			{Kind: blocks.LossyBuffer, Size: bufsize},
		},
		Recvs:      []blocks.RecvPortKind{blocks.BlockingRecv, blocks.NonblockingRecv},
		UnderLossy: true,
		LossySize:  bufsize,
	}
}

// MatrixRow pairs a primary cell with its under-lossy companion's
// verdict — one row of the E12 table.
type MatrixRow struct {
	Cell       CellResult
	UnderLossy string
}

// MatrixRows folds a sweep result back into E12 table rows: primary
// cells in matrix order, each with its companion's verdict (a lossy
// primary is its own companion). Results from arbitrary sweeps work too;
// cells without a companion repeat their own verdict.
func MatrixRows(res *Result) []MatrixRow {
	companion := make(map[int]string)
	for _, c := range res.Cells {
		if c.Companion {
			companion[c.Primary] = c.Verdict
		}
	}
	var rows []MatrixRow
	for _, c := range res.Cells {
		if c.Companion {
			continue
		}
		under, ok := companion[c.Index]
		if !ok {
			under = c.Verdict
		}
		rows = append(rows, MatrixRow{Cell: c, UnderLossy: under})
	}
	return rows
}
