// Package sweep is the design-space exploration engine of the
// Plug-and-Play toolchain. The paper's evaluation is exactly this
// workload: compose every candidate send-port x channel x receive-port
// connector into the same base design and re-verify, reusing the
// component and block-library models each time. A Spec names a base ADL
// design and the block sets to vary; Expand turns it into a job matrix
// of ordinary ADL documents (one per cell); Run executes the matrix on a
// verification server — an in-process one for local sweeps, or a shared
// daemon where one HTTP request fans out into hundreds of verification
// jobs that share the result cache and the search-worker budget.
//
// Identical cells are deduplicated before submission, and repeated
// compositions across sweeps are answered from the server's
// content-addressed result cache, so the marginal cost of a design
// variant is the part of its state space no earlier variant explored.
package sweep

import (
	"fmt"
	"time"

	"pnp/internal/adl"
	"pnp/internal/blocks"
)

// ChannelVariant is one channel choice of a sweep dimension.
type ChannelVariant struct {
	Kind blocks.ChannelKind
	Size int // buffer size for sized kinds (default 1); ignored for single-slot
}

// Spec describes a design-space sweep: a base ADL design, the connector
// to vary, and the block sets forming the variant matrix. Dimensions
// left empty keep the base design's choice, so a Spec varying only
// channels is three lines.
type Spec struct {
	// Name labels the sweep in results and service listings.
	Name string
	// Base is the base design's ADL source. The varied connector must
	// open its block on the declaration line (`connector pipe {`).
	Base string
	// Components maps component paths referenced by Base to inline pml
	// sources, exactly as a job submission would.
	Components map[string]string
	// Connector names the connector to vary; empty selects the base
	// design's sole connector (an error if it has several).
	Connector string

	// The variant dimensions. Empty dimensions pin the base design's
	// declared block for that position.
	Sends    []blocks.SendPortKind
	Channels []ChannelVariant
	Recvs    []blocks.RecvPortKind
	// FaultPlans optionally varies the design's fault plan: each entry is
	// the inner text of a `faults { ... }` block ("" = no plan). Nil
	// keeps the base design's faults block untouched.
	FaultPlans []string

	// UnderLossy adds, for every cell whose channel is not already lossy,
	// a companion cell with the channel swapped for the lossy adversary —
	// the matrix experiment's fault column. Companion cells that coincide
	// with primary cells deduplicate into the same job.
	UnderLossy bool
	// LossySize is the companion's buffer size when the primary channel
	// is unsized (default 1).
	LossySize int

	// Per-cell search-shape overrides (zero values keep the executing
	// server's defaults).
	MaxStates int
	Workers   int
	Timeout   time.Duration
}

// Cell is one expanded point of the variant matrix: a complete ADL
// document plus the coordinates it was generated from.
type Cell struct {
	Index int `json:"index"`
	// Spec is the varied connector's composition at this cell.
	Spec blocks.ConnectorSpec `json:"-"`
	// Connector renders Spec ("SynBlSendPort--FifoChannel(1)--BlRecvPort").
	Connector string `json:"connector"`
	// Faults is the cell's fault-plan text ("" = none/base).
	Faults string `json:"faults,omitempty"`
	// Companion marks an under-lossy companion; Primary is the index of
	// the cell it shadows (its own index for primary cells).
	Companion bool `json:"companion,omitempty"`
	Primary   int  `json:"primary"`
	// Source is the cell's generated ADL document.
	Source string `json:"-"`
}

// Expand turns the spec into its job matrix: the cartesian product of
// the populated dimensions in sends-major order (send, then channel,
// then receive, then fault plan), followed by any under-lossy companion
// cells. The base design is parsed but not composed, so expansion needs
// no component sources.
func (s Spec) Expand() ([]Cell, error) {
	conns, err := adl.Connectors(s.Base)
	if err != nil {
		return nil, fmt.Errorf("sweep: base design: %w", err)
	}
	if len(conns) == 0 {
		return nil, fmt.Errorf("sweep: base design declares no connectors")
	}
	var base *adl.ConnectorDecl
	name := s.Connector
	if name == "" {
		if len(conns) > 1 {
			return nil, fmt.Errorf("sweep: base design has %d connectors; name one in Spec.Connector", len(conns))
		}
		base = &conns[0]
		name = base.Name
	} else {
		for i := range conns {
			if conns[i].Name == name {
				base = &conns[i]
			}
		}
		if base == nil {
			return nil, fmt.Errorf("sweep: base design has no connector %q", name)
		}
	}

	sends := s.Sends
	if len(sends) == 0 {
		sends = []blocks.SendPortKind{base.Spec.Send}
	}
	channels := s.Channels
	if len(channels) == 0 {
		channels = []ChannelVariant{{Kind: base.Spec.Channel, Size: base.Spec.Size}}
	}
	recvs := s.Recvs
	if len(recvs) == 0 {
		recvs = []blocks.RecvPortKind{base.Spec.Recv}
	}
	plans := s.FaultPlans
	rewritePlans := plans != nil
	if len(plans) == 0 {
		plans = []string{""}
	}
	lossySize := s.LossySize
	if lossySize <= 0 {
		lossySize = 1
	}

	var cells []Cell
	add := func(cs blocks.ConnectorSpec, plan string, companion bool, primary int) error {
		src, err := adl.RewriteConnector(s.Base, name, cs)
		if err != nil {
			return fmt.Errorf("sweep: cell %s: %w", cs, err)
		}
		if rewritePlans {
			if src, err = adl.ReplaceFaults(src, plan); err != nil {
				return fmt.Errorf("sweep: cell %s: %w", cs, err)
			}
		}
		c := Cell{
			Index:     len(cells),
			Spec:      cs,
			Connector: cs.String(),
			Faults:    plan,
			Companion: companion,
			Primary:   primary,
			Source:    src,
		}
		if !companion {
			c.Primary = c.Index
		}
		cells = append(cells, c)
		return nil
	}

	for _, snd := range sends {
		for _, ch := range channels {
			for _, rcv := range recvs {
				for _, plan := range plans {
					cs := blocks.ConnectorSpec{Send: snd, Channel: ch.Kind, Size: ch.Size, Recv: rcv}
					if cs.Channel.Sized() && cs.Size == 0 {
						cs.Size = 1
					}
					if !cs.Channel.Sized() {
						cs.Size = 0
					}
					if err := cs.Validate(); err != nil {
						return nil, fmt.Errorf("sweep: %w", err)
					}
					if err := add(cs, plan, false, 0); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	if s.UnderLossy {
		for i, prim := range append([]Cell(nil), cells...) {
			if prim.Spec.Channel == blocks.LossyBuffer {
				continue
			}
			ls := prim.Spec
			ls.Channel = blocks.LossyBuffer
			if ls.Size == 0 {
				ls.Size = lossySize
			}
			if err := add(ls, prim.Faults, true, i); err != nil {
				return nil, err
			}
		}
	}
	if len(cells) == 0 {
		return nil, fmt.Errorf("sweep: empty variant matrix")
	}
	return cells, nil
}
