package sweep

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"pnp/internal/adl"
	"pnp/internal/obs/tracing"
	"pnp/internal/verifyd"
)

func newTracedService(t *testing.T) (*tracing.Recorder, *httptest.Server) {
	t.Helper()
	rec := tracing.NewRecorder(1024)
	srv := verifyd.NewServer(verifyd.Config{Workers: 2, Tracer: rec})
	sv := NewService(srv, srv.Options(), nil)
	hs := httptest.NewServer(sv.Handler(srv.Handler()))
	t.Cleanup(func() {
		hs.Close()
		srv.Shutdown(context.Background())
		sv.Wait()
	})
	return rec, hs
}

// TestSweepTrace runs a sweep against a traced service and verifies the
// span hierarchy nests sweep → cell → job → run → property → checker
// phase under one TraceID, and that GET /v1/sweeps/{id}/trace streams
// the same spans.
func TestSweepTrace(t *testing.T) {
	rec, hs := newTracedService(t)
	st := postSweep(t, hs, pingWire(1))
	if st.TraceID == "" {
		t.Fatal("202 status carries no trace_id")
	}
	final := waitSweep(t, hs, st.ID)
	if final.Result == nil || final.Err != "" {
		t.Fatalf("final status: %+v", final)
	}
	if final.TraceID != st.TraceID {
		t.Fatalf("TraceID changed: %q -> %q", st.TraceID, final.TraceID)
	}

	spans := rec.TraceHex(st.TraceID)
	byID := map[string]tracing.SpanData{}
	var sweepSpan tracing.SpanData
	var cellSpans, jobSpans int
	for _, d := range spans {
		byID[d.SpanID] = d
		switch {
		case d.Name == "sweep":
			sweepSpan = d
		case strings.HasPrefix(d.Name, "cell:"):
			cellSpans++
		case d.Name == "job":
			jobSpans++
		}
	}
	if sweepSpan.SpanID == "" || sweepSpan.Parent != "" {
		t.Fatalf("sweep span missing or not the root: %+v", sweepSpan)
	}
	if cellSpans != 2 || jobSpans != 2 {
		t.Fatalf("cells=%d jobs=%d, want 2 each", cellSpans, jobSpans)
	}
	for _, d := range spans {
		switch {
		case strings.HasPrefix(d.Name, "cell:"):
			if d.Parent != sweepSpan.SpanID {
				t.Errorf("%s parent = %q, want sweep", d.Name, d.Parent)
			}
		case d.Name == "job":
			if !strings.HasPrefix(byID[d.Parent].Name, "cell:") {
				t.Errorf("job parent %q is not a cell span", byID[d.Parent].Name)
			}
		}
	}

	// The trace endpoint serves the same spans as NDJSON.
	resp, err := http.Get(hs.URL + "/v1/sweeps/" + st.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace endpoint status = %d", resp.StatusCode)
	}
	got, err := tracing.ReadNDJSON(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(spans) {
		t.Fatalf("endpoint spans = %d, ring spans = %d", len(got), len(spans))
	}
}

// TestSweepTraceDedup: deduplicated cells record follower spans naming
// their leader instead of spawning duplicate jobs.
func TestSweepTraceDedup(t *testing.T) {
	rec := tracing.NewRecorder(1024)
	spec := pingSpec(1)
	// Two identical channel variants collapse to one job.
	kind, size, err := adl.ParseChannel("fifo(1)")
	if err != nil {
		t.Fatal(err)
	}
	spec.Channels = []ChannelVariant{{Kind: kind, Size: size}, {Kind: kind, Size: size}}
	res, runErr := Run(context.Background(), spec, Config{Tracer: rec})
	if runErr != nil {
		t.Fatal(runErr)
	}
	if res.DedupHits != 1 {
		t.Fatalf("DedupHits = %d, want 1", res.DedupHits)
	}
	var followers int
	for _, d := range rec.Spans() {
		if strings.HasPrefix(d.Name, "cell:") {
			for _, a := range d.Attrs {
				if a.Key == "deduped" && a.Value == "true" {
					followers++
				}
			}
		}
	}
	if followers != 1 {
		t.Fatalf("follower spans = %d, want 1", followers)
	}
}

// TestSweepTraceDisabled: an untraced service reports no trace_id and
// 404s the trace endpoint.
func TestSweepTraceDisabled(t *testing.T) {
	_, hs, _ := newTestService(t)
	st := postSweep(t, hs, pingWire(1))
	if st.TraceID != "" {
		t.Fatalf("untraced sweep has trace_id %q", st.TraceID)
	}
	waitSweep(t, hs, st.ID)
	resp, err := http.Get(hs.URL + "/v1/sweeps/" + st.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("trace endpoint status = %d, want 404", resp.StatusCode)
	}
}
