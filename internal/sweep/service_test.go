package sweep

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pnp/internal/obs"
	"pnp/internal/verifyd"
)

func newTestService(t *testing.T) (*Service, *httptest.Server, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	srv := verifyd.NewServer(verifyd.Config{Workers: 2, Registry: reg})
	sv := NewService(srv, srv.Options(), reg)
	hs := httptest.NewServer(sv.Handler(srv.Handler()))
	t.Cleanup(func() {
		hs.Close()
		srv.Shutdown(context.Background())
		sv.Wait()
	})
	return sv, hs, reg
}

func postSweep(t *testing.T, hs *httptest.Server, ws WireSpec) Status {
	t.Helper()
	body, _ := json.Marshal(ws)
	resp, err := http.Post(hs.URL+"/v1/sweeps", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/sweeps: status %d", resp.StatusCode)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func waitSweep(t *testing.T, hs *httptest.Server, id string) Status {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(hs.URL + "/v1/sweeps/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st Status
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State == "done" {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("sweep did not finish in time")
	return Status{}
}

func pingWire(msgs int) WireSpec {
	spec := pingSpec(msgs)
	return WireSpec{
		Name:       spec.Name,
		Base:       spec.Base,
		Components: spec.Components,
		Connector:  "pipe",
		Channels:   []string{"fifo(1)", "single-slot"},
	}
}

func TestServiceSweepLifecycle(t *testing.T) {
	_, hs, _ := newTestService(t)
	st := postSweep(t, hs, pingWire(1))
	if st.ID == "" || st.Total != 2 || st.State != "running" {
		t.Fatalf("submit status: %+v", st)
	}
	final := waitSweep(t, hs, st.ID)
	if final.Result == nil || final.Err != "" {
		t.Fatalf("final status: %+v", final)
	}
	if final.Result.Total != 2 || len(final.Result.Cells) != 2 {
		t.Fatalf("result: %+v", final.Result)
	}
	if final.Done != 2 {
		t.Fatalf("done_cells = %d, want 2", final.Done)
	}

	// The list endpoint shows it without the (large) result.
	resp, err := http.Get(hs.URL + "/v1/sweeps")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list struct {
		Sweeps []Status `json:"sweeps"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Sweeps) != 1 || list.Sweeps[0].ID != st.ID || list.Sweeps[0].Result != nil {
		t.Fatalf("list: %+v", list)
	}
}

func TestServiceSweepPreset(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix preset is expensive; run without -short")
	}
	_, hs, reg := newTestService(t)
	st := postSweep(t, hs, WireSpec{Preset: "matrix", Msgs: 1, BufSize: 1})
	if st.Total != 90 {
		t.Fatalf("matrix preset total = %d, want 90", st.Total)
	}
	final := waitSweep(t, hs, st.ID)
	if final.Result == nil {
		t.Fatalf("no result: %+v", final)
	}
	if final.Result.DedupHits != 40 {
		t.Fatalf("DedupHits = %d, want 40 (under-lossy companions)", final.Result.DedupHits)
	}
	if got := reg.Counter("sweep_cache_hits_total").Value(); got < 40 {
		t.Fatalf("sweep_cache_hits_total = %d, want >= 40", got)
	}
}

func TestServiceStream(t *testing.T) {
	_, hs, _ := newTestService(t)
	st := postSweep(t, hs, pingWire(1))

	resp, err := http.Get(hs.URL + "/v1/sweeps/" + st.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	var cells []CellResult
	var finalSt *Status
	for sc.Scan() {
		var line streamLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		switch {
		case line.Cell != nil:
			if finalSt != nil {
				t.Fatal("cell line after the sweep line")
			}
			cells = append(cells, *line.Cell)
		case line.Sweep != nil:
			finalSt = line.Sweep
		default:
			t.Fatalf("empty NDJSON line %q", sc.Text())
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("streamed %d cells, want 2", len(cells))
	}
	for i, c := range cells {
		if c.Index != i {
			t.Fatalf("cell %d has index %d", i, c.Index)
		}
	}
	if finalSt == nil || finalSt.State != "done" || finalSt.Result == nil {
		t.Fatalf("final stream line: %+v", finalSt)
	}
}

func TestServiceErrorEnvelopes(t *testing.T) {
	_, hs, _ := newTestService(t)
	check := func(method, path, body string, wantStatus int, wantCode string) {
		t.Helper()
		req, _ := http.NewRequest(method, hs.URL+path, strings.NewReader(body))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != wantStatus {
			t.Fatalf("%s %s: status %d, want %d", method, path, resp.StatusCode, wantStatus)
		}
		var eb verifyd.ErrorBody
		if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
			t.Fatalf("%s %s: bad envelope: %v", method, path, err)
		}
		if eb.Error.Code != wantCode || eb.Error.Message == "" {
			t.Fatalf("%s %s: envelope %+v, want code %q", method, path, eb, wantCode)
		}
	}
	check("POST", "/v1/sweeps", "{not json", http.StatusBadRequest, verifyd.CodeInvalidArgument)
	check("POST", "/v1/sweeps", `{"preset":"nosuch"}`, http.StatusBadRequest, verifyd.CodeInvalidArgument)
	check("POST", "/v1/sweeps", `{"base":"system x {\n}"}`, http.StatusBadRequest, verifyd.CodeInvalidArgument)
	check("GET", "/v1/sweeps/nope", "", http.StatusNotFound, verifyd.CodeNotFound)
	check("GET", "/v1/sweeps/nope/stream", "", http.StatusNotFound, verifyd.CodeNotFound)
	// Unknown routes fall through to the base handler's enveloped 404.
	check("GET", "/v1/nope", "", http.StatusNotFound, verifyd.CodeNotFound)
	// A spec whose first cell fails composition is rejected at submit.
	bad := pingWire(1)
	bad.Components = map[string]string{}
	body, _ := json.Marshal(bad)
	check("POST", "/v1/sweeps", string(body), http.StatusBadRequest, verifyd.CodeInvalidArgument)
}

func TestWireSpecCompileErrors(t *testing.T) {
	for _, ws := range []WireSpec{
		{Sends: []string{"warp-drive"}},
		{Channels: []string{"fifo("}},
		{Recvs: []string{"psychic"}},
		{Preset: "nosuch"},
	} {
		if _, err := ws.Compile(); err == nil {
			t.Fatalf("Compile(%+v): want error", ws)
		}
	}
	ws := WireSpec{Preset: "matrix", Msgs: 2, BufSize: 1, Name: "mine", TimeoutMS: 500}
	spec, err := ws.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "mine" || spec.Timeout != 500*time.Millisecond || len(spec.Sends) != 5 {
		t.Fatalf("compiled preset: %+v", spec)
	}
	if !strings.Contains(spec.Base, fmt.Sprintf("got == %d", 2)) {
		t.Fatalf("preset base does not encode msgs: %s", spec.Base)
	}
}
