package sweep

import (
	"context"
	"testing"

	"pnp/internal/blocks"
	"pnp/internal/verifyd"
)

func benchSpec() Spec {
	spec := pingSpec(2)
	spec.Channels = []ChannelVariant{
		{Kind: blocks.SingleSlot},
		{Kind: blocks.FIFOQueue, Size: 1},
		{Kind: blocks.FIFOQueue, Size: 2},
		{Kind: blocks.DroppingBuffer, Size: 1},
	}
	spec.Recvs = []blocks.RecvPortKind{blocks.BlockingRecv, blocks.NonblockingRecv}
	return spec
}

// BenchmarkSweepInProcess measures a cold 8-cell sweep on a private
// server: expansion, composition, and all searches, no cache reuse.
func BenchmarkSweepInProcess(b *testing.B) {
	spec := benchSpec()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := Run(context.Background(), spec, Config{Workers: 2})
		if err != nil {
			b.Fatal(err)
		}
		if res.Total != 8 {
			b.Fatalf("total = %d", res.Total)
		}
	}
}

// BenchmarkSweepCacheReuse measures the same sweep re-run against a
// shared warm server — the iterate-on-one-port workflow, where every
// cell is answered from the content-addressed result cache.
func BenchmarkSweepCacheReuse(b *testing.B) {
	spec := benchSpec()
	srv := verifyd.NewServer(verifyd.Config{Workers: 2})
	defer srv.Shutdown(context.Background())
	if _, err := Run(context.Background(), spec, Config{Server: srv}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Run(context.Background(), spec, Config{Server: srv})
		if err != nil {
			b.Fatal(err)
		}
		if res.CacheMisses != 0 {
			b.Fatalf("cache misses on warm server: %d", res.CacheMisses)
		}
	}
}

// BenchmarkExpandMatrix isolates spec expansion (parse + rewrite per
// cell) from verification.
func BenchmarkExpandMatrix(b *testing.B) {
	spec := Matrix(3, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cells, err := spec.Expand()
		if err != nil {
			b.Fatal(err)
		}
		if len(cells) != 90 {
			b.Fatalf("cells = %d", len(cells))
		}
	}
}
