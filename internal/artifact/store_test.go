package artifact

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"pnp/internal/model"
)

func mkArtifact(kind, name, source string, deps ...model.ModuleFingerprint) *Artifact {
	return &Artifact{
		Ref: Ref{
			Hash: model.FingerprintModule(kind, deps, source),
			Kind: kind,
			Name: name,
			Deps: deps,
		},
		Source: source,
	}
}

func TestStoreHitMissAccounting(t *testing.T) {
	s, err := NewStore(8, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	a := mkArtifact(KindComponent, "c.pml", "proctype C() { skip }")
	if _, ok := s.Get(a.Hash); ok {
		t.Fatal("empty store cannot hit")
	}
	s.Put(a)
	got, ok := s.Get(a.Hash)
	if !ok || got.Source != a.Source {
		t.Fatalf("Get after Put = (%v, %v)", got, ok)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit, 1 miss, 1 entry", st)
	}
}

// TestStoreLRUEviction fills the store past its bound and checks the
// least recently used artifact is the one dropped.
func TestStoreLRUEviction(t *testing.T) {
	s, err := NewStore(2, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	a := mkArtifact(KindComponent, "a", "src a")
	b := mkArtifact(KindComponent, "b", "src b")
	c := mkArtifact(KindComponent, "c", "src c")
	s.Put(a)
	s.Put(b)
	s.Get(a.Hash) // a is now most recently used; b is the LRU
	s.Put(c)      // evicts b
	if _, ok := s.Get(b.Hash); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := s.Get(a.Hash); !ok {
		t.Fatal("a was recently used and must survive")
	}
	if st := s.Stats(); st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats = %+v, want 1 eviction at 2 entries", st)
	}
}

// TestStoreDiskRoundTrip exercises the disk tier: an artifact put by one
// store is visible (payload-less, counted as a hit) to a second store
// over the same directory — the restart path.
func TestStoreDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s1, err := NewStore(8, dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	dep := mkArtifact(KindLibrary, "library", "lib src")
	a := mkArtifact(KindProgram, "prog", "prog src", dep.Hash)
	a.Payload = "live payload"
	s1.Put(a)

	s2, err := NewStore(8, dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := s2.Get(a.Hash)
	if !ok {
		t.Fatal("disk tier must serve the envelope after a restart")
	}
	if got.Payload != nil {
		t.Fatal("payloads are process-local and must not survive disk")
	}
	if got.Source != a.Source || got.Kind != KindProgram || len(got.Deps) != 1 || got.Deps[0] != dep.Hash {
		t.Fatalf("envelope round-trip mangled the artifact: %+v", got)
	}
	if st := s2.Stats(); st.Hits != 1 || st.Misses != 0 {
		t.Fatalf("disk fallthrough must count as a hit: %+v", st)
	}

	// Reattaching restores the live payload for the next caller.
	s2.Attach(a.Hash, 42)
	got, _ = s2.Get(a.Hash)
	if got.Payload != 42 {
		t.Fatalf("Attach lost the payload: %v", got.Payload)
	}
}

// TestStoreRejectsCorruptEnvelope hand-edits a disk envelope; the load
// must verify content against the fingerprint and refuse it.
func TestStoreRejectsCorruptEnvelope(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStore(1, dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	a := mkArtifact(KindComponent, "a", "honest source")
	s.Put(a)
	// Evict the memory copy so the next Get goes to disk.
	s.Put(mkArtifact(KindComponent, "b", "filler"))

	path := filepath.Join(dir, a.Hash.String()+".json")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var env map[string]any
	if err := json.Unmarshal(b, &env); err != nil {
		t.Fatal(err)
	}
	env["source"] = "tampered source"
	b, _ = json.Marshal(env)
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(a.Hash); ok {
		t.Fatal("a tampered envelope must not be trusted")
	}
}

// TestStorePeek checks the wire form and that peeking is accounting-free.
func TestStorePeek(t *testing.T) {
	s, err := NewStore(8, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	a := mkArtifact(KindConnector, "Wire", "send=syn-blocking;channel=fifo(2);recv=blocking")
	s.Put(a)
	raw, ok := s.Peek(a.Hash)
	if !ok {
		t.Fatal("Peek must find a stored artifact")
	}
	var env struct {
		Hash   string `json:"hash"`
		Kind   string `json:"kind"`
		Name   string `json:"name"`
		Source string `json:"source"`
	}
	if err := json.Unmarshal(raw, &env); err != nil {
		t.Fatalf("Peek body is not JSON: %v", err)
	}
	if env.Hash != a.Hash.String() || env.Kind != KindConnector || env.Source != a.Source {
		t.Fatalf("Peek envelope = %+v", env)
	}
	if _, ok := s.Peek(model.FingerprintModule(KindConnector, nil, "absent")); ok {
		t.Fatal("Peek of an absent hash must miss")
	}
	if st := s.Stats(); st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("Peek must not touch hit/miss accounting: %+v", st)
	}
}

// TestStoreConcurrent hammers one store from many goroutines; run with
// -race this is the locking test.
func TestStoreConcurrent(t *testing.T) {
	s, err := NewStore(16, t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				a := mkArtifact(KindComponent, "c", fmt.Sprintf("source %d", i%20))
				s.Put(a)
				s.Get(a.Hash)
				s.Attach(a.Hash, g)
				s.Peek(a.Hash)
				s.Stats()
			}
		}(g)
	}
	wg.Wait()
	if s.Len() == 0 {
		t.Fatal("store emptied itself")
	}
}

func TestParseHash(t *testing.T) {
	h := model.FingerprintModule(KindLibrary, nil, "x")
	got, err := ParseHash(h.String())
	if err != nil || got != h {
		t.Fatalf("ParseHash round-trip = (%v, %v)", got, err)
	}
	for _, bad := range []string{"", "zz", "../../etc/passwd", h.String()[:10], h.String() + "00"} {
		if _, err := ParseHash(bad); err == nil {
			t.Errorf("ParseHash(%q) must fail", bad)
		}
	}
}
