package artifact

import (
	"container/list"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"pnp/internal/model"
	"pnp/internal/obs"
)

// Store is a bounded, content-addressed LRU of compiled module
// artifacts, safe for concurrent use. With a disk directory attached,
// every Put also writes a canonical-source envelope file, and a memory
// miss falls through to disk — so module identity (and the decision of
// what to recompile) survives eviction and restarts even though live
// payloads do not.
type Store struct {
	mu      sync.Mutex
	max     int
	ll      *list.List // front = most recently used
	entries map[model.ModuleFingerprint]*list.Element
	dir     string // "" = memory only

	hits, misses, evictions int64

	mHits, mMisses, mEvictions *obs.Counter
	mEntries                   *obs.Gauge
}

type storeEntry struct {
	art *Artifact
}

// Stats is a point-in-time snapshot of store effectiveness.
type Stats struct {
	Entries   int   `json:"entries"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

// NewStore creates a store bounded to maxEntries artifacts (<= 0
// selects the default of 1024). dir, when non-empty, is created and
// used as the disk tier; a nil registry is fine.
func NewStore(maxEntries int, dir string, reg *obs.Registry) (*Store, error) {
	if maxEntries <= 0 {
		maxEntries = 1024
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("artifact: %w", err)
		}
	}
	return &Store{
		max:        maxEntries,
		ll:         list.New(),
		entries:    make(map[model.ModuleFingerprint]*list.Element),
		dir:        dir,
		mHits:      reg.Counter("artifact_store_hits_total"),
		mMisses:    reg.Counter("artifact_store_misses_total"),
		mEvictions: reg.Counter("artifact_store_evictions_total"),
		mEntries:   reg.Gauge("artifact_store_entries"),
	}, nil
}

// envelope is the disk and wire form of one artifact: everything but
// the live payload. Deterministic compilation makes the canonical
// source a complete serialization of the compiled module.
type envelope struct {
	Hash   string   `json:"hash"`
	Kind   string   `json:"kind"`
	Name   string   `json:"name,omitempty"`
	Deps   []string `json:"deps,omitempty"`
	Source string   `json:"source"`
}

// Get looks an artifact up by fingerprint, marking it most recently
// used on a memory hit. On a memory miss with a disk tier attached, the
// envelope is loaded back into the LRU (payload nil) and counts as a
// hit — the module's identity and source were reused even though its
// payload needs reattaching.
func (s *Store) Get(h model.ModuleFingerprint) (*Artifact, bool) {
	s.mu.Lock()
	if el, ok := s.entries[h]; ok {
		s.hits++
		s.mHits.Inc()
		s.ll.MoveToFront(el)
		art := el.Value.(*storeEntry).art
		s.mu.Unlock()
		return art, true
	}
	s.mu.Unlock()
	if art := s.diskLoad(h); art != nil {
		s.mu.Lock()
		s.hits++
		s.mHits.Inc()
		s.insertLocked(art)
		s.mu.Unlock()
		return art, true
	}
	s.mu.Lock()
	s.misses++
	s.mMisses.Inc()
	s.mu.Unlock()
	return nil, false
}

// Put stores an artifact, evicting the least recently used entry past
// the bound and mirroring the envelope to disk when a tier is attached.
// Storing an existing fingerprint refreshes its payload and recency.
func (s *Store) Put(art *Artifact) {
	s.mu.Lock()
	if el, ok := s.entries[art.Hash]; ok {
		el.Value.(*storeEntry).art = art
		s.ll.MoveToFront(el)
		s.mu.Unlock()
		return
	}
	s.insertLocked(art)
	s.mu.Unlock()
	s.diskWrite(art)
}

// Attach reattaches a live payload to an already-stored artifact — the
// step after a disk or wire hit hands back an envelope and the caller
// recompiles its canonical source. A no-op for unknown fingerprints.
func (s *Store) Attach(h model.ModuleFingerprint, payload any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[h]; ok {
		el.Value.(*storeEntry).art.Payload = payload
		s.ll.MoveToFront(el)
	}
}

// insertLocked adds a new entry, evicting LRU past the bound. Eviction
// drops only the in-memory copy; the disk envelope, if any, stays.
func (s *Store) insertLocked(art *Artifact) {
	if el, ok := s.entries[art.Hash]; ok {
		el.Value.(*storeEntry).art = art
		s.ll.MoveToFront(el)
		return
	}
	if s.ll.Len() >= s.max {
		oldest := s.ll.Back()
		s.ll.Remove(oldest)
		delete(s.entries, oldest.Value.(*storeEntry).art.Hash)
		s.evictions++
		s.mEvictions.Inc()
	}
	s.entries[art.Hash] = s.ll.PushFront(&storeEntry{art: art})
	s.mEntries.Set(int64(s.ll.Len()))
}

// Peek answers a wire lookup: the artifact's envelope JSON, from memory
// or disk, without touching hit/miss accounting — mirroring how result
// cache peeks are free reads for the peer, not local cache traffic.
func (s *Store) Peek(h model.ModuleFingerprint) ([]byte, bool) {
	s.mu.Lock()
	el, ok := s.entries[h]
	var art *Artifact
	if ok {
		art = el.Value.(*storeEntry).art
	}
	s.mu.Unlock()
	if art == nil {
		if art = s.diskLoad(h); art == nil {
			return nil, false
		}
	}
	b, err := json.MarshalIndent(envelopeOf(art), "", "  ")
	if err != nil {
		return nil, false
	}
	return b, true
}

func envelopeOf(art *Artifact) envelope {
	env := envelope{Hash: art.Hash.String(), Kind: art.Kind, Name: art.Name, Source: art.Source}
	for _, d := range art.Deps {
		env.Deps = append(env.Deps, d.String())
	}
	return env
}

// path places one envelope file. Fingerprints are hex, so the file name
// needs no escaping.
func (s *Store) path(h model.ModuleFingerprint) string {
	return filepath.Join(s.dir, h.String()+".json")
}

// diskWrite mirrors an artifact's envelope to the disk tier
// (best-effort: the store is a cache, and a failed write only costs a
// future recompile). The write is atomic via rename so a crash never
// leaves a torn envelope.
func (s *Store) diskWrite(art *Artifact) {
	if s.dir == "" {
		return
	}
	b, err := json.Marshal(envelopeOf(art))
	if err != nil {
		return
	}
	tmp := s.path(art.Hash) + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return
	}
	if err := os.Rename(tmp, s.path(art.Hash)); err != nil {
		os.Remove(tmp)
	}
}

// diskLoad reads one envelope back as a payload-less artifact. The
// envelope's content is verified against the fingerprint it claims —
// a corrupted or hand-edited file is ignored, never trusted.
func (s *Store) diskLoad(h model.ModuleFingerprint) *Artifact {
	if s.dir == "" {
		return nil
	}
	b, err := os.ReadFile(s.path(h))
	if err != nil {
		return nil
	}
	var env envelope
	if err := json.Unmarshal(b, &env); err != nil {
		return nil
	}
	art := &Artifact{
		Ref:    Ref{Hash: h, Kind: env.Kind, Name: env.Name},
		Source: env.Source,
	}
	for _, ds := range env.Deps {
		d, err := model.ParseModuleFingerprint(ds)
		if err != nil {
			return nil
		}
		art.Deps = append(art.Deps, d)
	}
	if model.FingerprintModule(art.Kind, art.Deps, art.Source) != h {
		return nil
	}
	return art
}

// Len reports the number of in-memory artifacts.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ll.Len()
}

// Stats snapshots the store counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Entries:   s.ll.Len(),
		Hits:      s.hits,
		Misses:    s.misses,
		Evictions: s.evictions,
	}
}

// ParseHash decodes the {hash} path element of the v1 artifacts route,
// rejecting anything that is not exactly one lowercase-hex fingerprint.
func ParseHash(s string) (model.ModuleFingerprint, error) {
	if strings.ContainsAny(s, "/\\") {
		return model.ModuleFingerprint{}, fmt.Errorf("artifact: bad hash %q", s)
	}
	return model.ParseModuleFingerprint(s)
}
