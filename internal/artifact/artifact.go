// Package artifact is the content-addressed store for compiled model
// modules. The model compiler (internal/adl over internal/blocks) emits
// one artifact per module — the block library, each component file, the
// linked program, each connector block composition — addressed by
// model.ModuleFingerprint, and a design resolves to a DAG of module
// refs instead of one monolithic source blob. The store keeps a bounded
// in-memory LRU of live artifacts (the compiled payloads), optionally
// mirrored to disk as canonical-source envelopes under a data
// directory, and serves wire peeks so a cluster coordinator can ask any
// node "do you already hold this module?" the same way it peeks result
// caches.
//
// Payloads are process-local (a *pml.Compiled is full of pointers); the
// durable and wire representation of an artifact is its canonical
// source, which is a faithful address of the compiled form because
// compilation is deterministic — the same property ModelHash relies on.
// A disk or wire hit therefore saves the *decision* work (what to
// rebuild) and shares the module's identity; reattaching a live payload
// after a cold load is one deterministic compile of exactly that
// module.
package artifact

import (
	"pnp/internal/model"
)

// Module kinds, in the order a design's DAG lists them.
const (
	KindLibrary   = "library"   // the block catalog pml source
	KindComponent = "component" // one resolved component file
	KindProgram   = "program"   // the linked pml program (library + components)
	KindConnector = "connector" // one connector block composition against a program
)

// Ref names one module in a design's DAG: its content address, kind,
// display name, and the addresses it was compiled against.
type Ref struct {
	Hash model.ModuleFingerprint
	Kind string
	Name string
	Deps []model.ModuleFingerprint
}

// Artifact is one stored module: its ref, the canonical source the
// fingerprint covers, and (in memory only) the live compiled payload.
// Source is the durable representation; Payload is whatever the
// compiling layer attached — *pml.Compiled for program modules, the
// validated connector spec for connector modules — and is nil after a
// disk load until a caller reattaches it.
type Artifact struct {
	Ref
	Source  string
	Payload any
}

// Info is the wire- and job-document form of one module ref: what the
// v1 API reports per job under "modules" and what GET
// /v1/artifacts/{hash} wraps. Reused records whether composition found
// the module already in the store (true) or had to compile it (false).
type Info struct {
	Hash   string   `json:"hash"`
	Kind   string   `json:"kind"`
	Name   string   `json:"name,omitempty"`
	Deps   []string `json:"deps,omitempty"`
	Reused bool     `json:"reused,omitempty"`
}

// Info renders the ref in wire form (Reused left for the caller).
func (r Ref) Info() Info {
	in := Info{Hash: r.Hash.String(), Kind: r.Kind, Name: r.Name}
	for _, d := range r.Deps {
		in.Deps = append(in.Deps, d.String())
	}
	return in
}
