package pml

import (
	"fmt"
	"strings"
)

// ParseExpr parses a standalone pml expression, as used for invariants and
// LTL atomic propositions.
func ParseExpr(src string) (Expr, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	if !p.at(EOF) {
		return nil, p.errf("unexpected %s after expression", p.describe(p.cur()))
	}
	return e, nil
}

// ResolveGlobalExpr resolves an expression against the program's global
// scope only (global variables, global channels, mtype constants). It is
// used for state properties: invariants and LTL atomic propositions, which
// may not reference process-local state.
func (c *Compiled) ResolveGlobalExpr(e Expr) (RExpr, error) {
	gc := newGlobalContext(c)
	for i, v := range c.GlobalVars {
		gc.varIdx[v.Name] = i
	}
	for i, ch := range c.GlobalChans {
		gc.chanIdx[ch.Name] = i
	}
	return gc.resolveExpr(e, nil)
}

// CompileGlobalExpr parses and resolves a global-scope expression.
func (c *Compiled) CompileGlobalExpr(src string) (RExpr, error) {
	e, err := ParseExpr(src)
	if err != nil {
		return nil, err
	}
	return c.ResolveGlobalExpr(e)
}

// CompileError reports a semantic error found while compiling a program.
type CompileError struct {
	Pos Pos
	Msg string
}

// Error implements the error interface.
func (e *CompileError) Error() string {
	return fmt.Sprintf("pml: %s: %s", e.Pos, e.Msg)
}

// CompileSource parses and compiles pml source in one step.
func CompileSource(src string) (*Compiled, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return CompileProgram(prog)
}

// CompileProgram resolves names and lowers every proctype body to an
// explicit transition graph.
func CompileProgram(prog *Program) (*Compiled, error) {
	c := &Compiled{
		byName:   make(map[string]*Proc, len(prog.Procs)),
		mtypeVal: make(map[string]int64, len(prog.Mtypes)),
	}
	seen := make(map[string]Pos)
	declare := func(name string, p Pos) error {
		if prev, dup := seen[name]; dup {
			return &CompileError{Pos: p, Msg: fmt.Sprintf("%q already declared at %s", name, prev)}
		}
		seen[name] = p
		return nil
	}

	c.Mtypes = append(c.Mtypes, prog.Mtypes...)
	for i, m := range prog.Mtypes {
		if err := declare(m, Pos{}); err != nil {
			return nil, err
		}
		c.mtypeVal[m] = int64(i + 1)
	}

	gc := newGlobalContext(c)
	for _, cd := range prog.Chans {
		if err := declare(cd.Name, cd.Pos); err != nil {
			return nil, err
		}
		gc.chanIdx[cd.Name] = len(c.GlobalChans)
		c.GlobalChans = append(c.GlobalChans, ChanInfo{Name: cd.Name, Cap: cd.Cap, Fields: cd.Fields})
	}
	for _, vd := range prog.Globals {
		if err := declare(vd.Name, vd.Pos); err != nil {
			return nil, err
		}
		if vd.ArrayLen > 0 {
			gc.varIdx[vd.Name] = len(c.GlobalVars)
			gc.arrLen[vd.Name] = vd.ArrayLen
			for i := 0; i < vd.ArrayLen; i++ {
				c.GlobalVars = append(c.GlobalVars, VarInfo{
					Name: fmt.Sprintf("%s[%d]", vd.Name, i), Type: vd.Type,
				})
			}
			continue
		}
		info := VarInfo{Name: vd.Name, Type: vd.Type}
		if vd.Init != nil {
			re, err := gc.resolveExpr(vd.Init, nil)
			if err != nil {
				return nil, err
			}
			v, ok := ConstEval(re)
			if !ok || !isConstExpr(re) {
				return nil, &CompileError{Pos: vd.Pos, Msg: "global initializer must be constant"}
			}
			info.Init = vd.Type.Truncate(v)
		}
		gc.varIdx[vd.Name] = len(c.GlobalVars)
		c.GlobalVars = append(c.GlobalVars, info)
	}

	for _, pd := range prog.Procs {
		if err := declare(pd.Name, pd.Pos); err != nil {
			return nil, err
		}
		proc, err := gc.compileProc(pd)
		if err != nil {
			return nil, err
		}
		c.Procs = append(c.Procs, proc)
		c.byName[proc.Name] = proc
	}
	return c, nil
}

// globalContext resolves names visible everywhere.
type globalContext struct {
	c       *Compiled
	varIdx  map[string]int
	arrLen  map[string]int // array name -> declared length
	chanIdx map[string]int
}

func newGlobalContext(c *Compiled) *globalContext {
	return &globalContext{
		c:       c,
		varIdx:  make(map[string]int),
		arrLen:  make(map[string]int),
		chanIdx: make(map[string]int),
	}
}

// procContext resolves proctype-local names and accumulates the graph.
type procContext struct {
	gc       *globalContext
	proc     *Proc
	intIdx   map[string]int
	arrLen   map[string]int
	chanSlot map[string]int
	labels   map[string]int
	gotos    []gotoFixup
	breaks   []int
	atomic   int
}

type gotoFixup struct {
	label string
	node  int
	edge  int
	pos   Pos
}

func (gc *globalContext) compileProc(pd *ProcDecl) (*Proc, error) {
	pc := &procContext{
		gc:       gc,
		proc:     &Proc{Name: pd.Name, Active: pd.Active},
		intIdx:   make(map[string]int),
		arrLen:   make(map[string]int),
		chanSlot: make(map[string]int),
		labels:   make(map[string]int),
	}
	for _, prm := range pd.Params {
		if _, dup := pc.intIdx[prm.Name]; dup {
			return nil, &CompileError{Pos: prm.Pos, Msg: fmt.Sprintf("duplicate parameter %q", prm.Name)}
		}
		if _, dup := pc.chanSlot[prm.Name]; dup {
			return nil, &CompileError{Pos: prm.Pos, Msg: fmt.Sprintf("duplicate parameter %q", prm.Name)}
		}
		if prm.Type == TypeChan {
			pc.proc.Params = append(pc.proc.Params, ParamInfo{
				Name: prm.Name, IsChan: true, Slot: len(pc.proc.ChanSlots), Type: TypeChan,
			})
			pc.chanSlot[prm.Name] = len(pc.proc.ChanSlots)
			pc.proc.ChanSlots = append(pc.proc.ChanSlots, ChanSlotInfo{Name: prm.Name, IsParam: true})
		} else {
			pc.proc.Params = append(pc.proc.Params, ParamInfo{
				Name: prm.Name, IsChan: false, Slot: len(pc.proc.IntVars), Type: prm.Type,
			})
			pc.intIdx[prm.Name] = len(pc.proc.IntVars)
			pc.proc.IntVars = append(pc.proc.IntVars, VarInfo{Name: prm.Name, Type: prm.Type})
		}
	}

	entry := pc.newNode()
	exit := pc.newNode()
	pc.proc.Entry = entry
	if err := pc.compileBlock(pd.Body, entry, exit); err != nil {
		return nil, err
	}
	pc.proc.Nodes[exit].Final = true

	for _, fx := range pc.gotos {
		dst, ok := pc.labels[fx.label]
		if !ok {
			return nil, &CompileError{Pos: fx.pos, Msg: fmt.Sprintf("undefined label %q", fx.label)}
		}
		pc.proc.Nodes[fx.node].Edges[fx.edge].Dst = dst
	}

	if err := pc.proc.finish(); err != nil {
		return nil, err
	}
	return pc.proc, nil
}

func (pc *procContext) newNode() int {
	pc.proc.Nodes = append(pc.proc.Nodes, Node{Atomic: pc.atomic > 0})
	return len(pc.proc.Nodes) - 1
}

func (pc *procContext) addEdge(from int, e Edge) {
	pc.proc.Nodes[from].Edges = append(pc.proc.Nodes[from].Edges, e)
}

func (pc *procContext) eps(from, to int) {
	pc.addEdge(from, Edge{Kind: EdgeEps, Dst: to})
}

func (pc *procContext) compileBlock(b *Block, from, to int) error {
	if len(b.Stmts) == 0 {
		pc.eps(from, to)
		return nil
	}
	cur := from
	for i, s := range b.Stmts {
		tgt := to
		if i < len(b.Stmts)-1 {
			tgt = pc.newNode()
		}
		if err := pc.compileStmt(s, cur, tgt); err != nil {
			return err
		}
		cur = tgt
	}
	return nil
}

func (pc *procContext) compileStmt(s Stmt, from, to int) error {
	switch st := s.(type) {
	case *Block:
		return pc.compileBlock(st, from, to)
	case *DeclStmt:
		return pc.declStmt(st, from, to)
	case *ChanDeclStmt:
		return pc.chanDeclStmt(st, from, to)
	case *AssignStmt:
		return pc.assignStmt(st, from, to)
	case *SendStmt:
		return pc.sendStmt(st, from, to)
	case *RecvStmt:
		return pc.recvStmt(st, from, to)
	case *IfStmt:
		for _, opt := range st.Options {
			if err := pc.compileBlock(opt, from, to); err != nil {
				return err
			}
		}
		return nil
	case *DoStmt:
		h := pc.newNode()
		pc.eps(from, h)
		pc.breaks = append(pc.breaks, to)
		for _, opt := range st.Options {
			if err := pc.compileBlock(opt, h, h); err != nil {
				return err
			}
		}
		pc.breaks = pc.breaks[:len(pc.breaks)-1]
		return nil
	case *AtomicStmt:
		pc.atomic++
		err := pc.compileBlock(st.Body, from, to)
		pc.atomic--
		return err
	case *BreakStmt:
		if len(pc.breaks) == 0 {
			return &CompileError{Pos: st.Pos, Msg: "break outside of do loop"}
		}
		pc.eps(from, pc.breaks[len(pc.breaks)-1])
		return nil
	case *SkipStmt:
		pc.addEdge(from, Edge{Kind: EdgeSkip, Dst: to, Pos: st.Pos, Label: "skip"})
		return nil
	case *PrintfStmt:
		pc.addEdge(from, Edge{Kind: EdgeSkip, Dst: to, Pos: st.Pos, Label: "printf " + st.Format})
		return nil
	case *ElseStmt:
		pc.addEdge(from, Edge{Kind: EdgeElse, Dst: to, Pos: st.Pos, Label: "else"})
		return nil
	case *GotoStmt:
		pc.addEdge(from, Edge{Kind: EdgeEps, Dst: -1, Pos: st.Pos})
		pc.gotos = append(pc.gotos, gotoFixup{
			label: st.Label,
			node:  from,
			edge:  len(pc.proc.Nodes[from].Edges) - 1,
			pos:   st.Pos,
		})
		return nil
	case *LabeledStmt:
		if _, dup := pc.labels[st.Label]; dup {
			return &CompileError{Pos: st.Pos, Msg: fmt.Sprintf("duplicate label %q", st.Label)}
		}
		pc.labels[st.Label] = from
		pc.proc.Nodes[from].Labels = append(pc.proc.Nodes[from].Labels, st.Label)
		if strings.HasPrefix(st.Label, "end") {
			pc.proc.Nodes[from].EndLabel = true
		}
		return pc.compileStmt(st.Stmt, from, to)
	case *AssertStmt:
		cond, err := pc.resolveExpr(st.Cond)
		if err != nil {
			return err
		}
		pc.addEdge(from, Edge{Kind: EdgeAssert, Dst: to, Pos: st.Pos, Cond: cond, Label: "assert"})
		return nil
	case *ExprStmt:
		cond, err := pc.resolveExpr(st.X)
		if err != nil {
			return err
		}
		pc.addEdge(from, Edge{Kind: EdgeGuard, Dst: to, Pos: st.Pos, Cond: cond, Label: "guard"})
		return nil
	default:
		return &CompileError{Msg: fmt.Sprintf("unsupported statement %T", s)}
	}
}

func (pc *procContext) declStmt(st *DeclStmt, from, to int) error {
	vd := st.Var
	if err := pc.checkFresh(vd.Name, vd.Pos); err != nil {
		return err
	}
	if vd.ArrayLen > 0 {
		pc.intIdx[vd.Name] = len(pc.proc.IntVars)
		pc.arrLen[vd.Name] = vd.ArrayLen
		for i := 0; i < vd.ArrayLen; i++ {
			pc.proc.IntVars = append(pc.proc.IntVars, VarInfo{
				Name: fmt.Sprintf("%s[%d]", vd.Name, i), Type: vd.Type,
			})
		}
		pc.eps(from, to)
		return nil
	}
	slot := len(pc.proc.IntVars)
	info := VarInfo{Name: vd.Name, Type: vd.Type}
	var initEdge *Edge
	if vd.Init != nil {
		re, err := pc.resolveExpr(vd.Init)
		if err != nil {
			return err
		}
		if isConstExpr(re) {
			v, _ := ConstEval(re)
			info.Init = vd.Type.Truncate(v)
		} else {
			initEdge = &Edge{
				Kind: EdgeAssign, Dst: to, Pos: vd.Pos,
				Var: VarRef{Idx: slot, Type: vd.Type, Name: vd.Name},
				RHS: re, Label: vd.Name + " = <init>",
			}
		}
	}
	pc.intIdx[vd.Name] = slot
	pc.proc.IntVars = append(pc.proc.IntVars, info)
	if initEdge != nil {
		pc.addEdge(from, *initEdge)
	} else {
		pc.eps(from, to)
	}
	return nil
}

func (pc *procContext) chanDeclStmt(st *ChanDeclStmt, from, to int) error {
	cd := st.Decl
	if err := pc.checkFresh(cd.Name, cd.Pos); err != nil {
		return err
	}
	pc.chanSlot[cd.Name] = len(pc.proc.ChanSlots)
	pc.proc.ChanSlots = append(pc.proc.ChanSlots, ChanSlotInfo{
		Name: cd.Name,
		Decl: ChanInfo{Name: cd.Name, Cap: cd.Cap, Fields: cd.Fields},
	})
	pc.eps(from, to)
	return nil
}

func (pc *procContext) checkFresh(name string, pos Pos) error {
	if _, dup := pc.intIdx[name]; dup {
		return &CompileError{Pos: pos, Msg: fmt.Sprintf("%q already declared in proctype %s", name, pc.proc.Name)}
	}
	if _, dup := pc.chanSlot[name]; dup {
		return &CompileError{Pos: pos, Msg: fmt.Sprintf("%q already declared in proctype %s", name, pc.proc.Name)}
	}
	return nil
}

func (pc *procContext) assignStmt(st *AssignStmt, from, to int) error {
	rhs, err := pc.resolveExpr(st.RHS)
	if err != nil {
		return err
	}
	if st.Idx != nil {
		base, n, err := pc.gc.resolveArray(st.Name, st.Pos, pc)
		if err != nil {
			return err
		}
		idx, err := pc.resolveExpr(st.Idx)
		if err != nil {
			return err
		}
		pc.addEdge(from, Edge{
			Kind: EdgeAssign, Dst: to, Pos: st.Pos,
			Var: base, VarIdx: idx, VarLen: n, RHS: rhs,
			Label: st.Name + "[...] = ...",
		})
		return nil
	}
	ref, err := pc.resolveVar(st.Name, st.Pos)
	if err != nil {
		return err
	}
	pc.addEdge(from, Edge{
		Kind: EdgeAssign, Dst: to, Pos: st.Pos,
		Var: ref, RHS: rhs, Label: st.Name + " = ...",
	})
	return nil
}

func (pc *procContext) sendStmt(st *SendStmt, from, to int) error {
	ch, fields, err := pc.resolveChan(st.Ch, st.Pos)
	if err != nil {
		return err
	}
	if fields != nil && len(st.Args) != len(fields) {
		return &CompileError{Pos: st.Pos, Msg: fmt.Sprintf(
			"channel %s carries %d fields, send has %d", st.Ch, len(fields), len(st.Args))}
	}
	args := make([]RExpr, 0, len(st.Args))
	for _, a := range st.Args {
		re, err := pc.resolveExpr(a)
		if err != nil {
			return err
		}
		args = append(args, re)
	}
	op := "!"
	if st.Sorted {
		op = "!!"
	}
	pc.addEdge(from, Edge{
		Kind: EdgeSend, Dst: to, Pos: st.Pos,
		Ch: ch, Sorted: st.Sorted, SendArgs: args, Label: st.Ch + op,
	})
	return nil
}

func (pc *procContext) recvStmt(st *RecvStmt, from, to int) error {
	ch, fields, err := pc.resolveChan(st.Ch, st.Pos)
	if err != nil {
		return err
	}
	if fields != nil && len(st.Args) != len(fields) {
		return &CompileError{Pos: st.Pos, Msg: fmt.Sprintf(
			"channel %s carries %d fields, receive has %d", st.Ch, len(fields), len(st.Args))}
	}
	args := make([]RRecvArg, 0, len(st.Args))
	for _, a := range st.Args {
		ra, err := pc.resolveRecvArg(a)
		if err != nil {
			return err
		}
		args = append(args, ra)
	}
	op := "?"
	if st.Random {
		op = "??"
	}
	pc.addEdge(from, Edge{
		Kind: EdgeRecv, Dst: to, Pos: st.Pos,
		Ch: ch, Random: st.Random, RecvArgs: args, Label: st.Ch + op,
	})
	return nil
}

func (pc *procContext) resolveRecvArg(a RecvArg) (RRecvArg, error) {
	switch a.Kind {
	case ArgWild:
		return RRecvArg{Kind: RArgWild}, nil
	case ArgMatch:
		x, err := pc.resolveExpr(a.X)
		if err != nil {
			return RRecvArg{}, err
		}
		return RRecvArg{Kind: RArgMatch, X: x}, nil
	default: // ArgIdent
		if slot, ok := pc.intIdx[a.Name]; ok {
			return RRecvArg{Kind: RArgBind, Var: VarRef{
				Idx: slot, Type: pc.proc.IntVars[slot].Type, Name: a.Name,
			}}, nil
		}
		if idx, ok := pc.gc.varIdx[a.Name]; ok {
			return RRecvArg{Kind: RArgBind, Var: VarRef{
				Global: true, Idx: idx, Type: pc.gc.c.GlobalVars[idx].Type, Name: a.Name,
			}}, nil
		}
		if v, ok := pc.gc.c.mtypeVal[a.Name]; ok {
			return RRecvArg{Kind: RArgMatch, X: &RConst{V: v}}, nil
		}
		return RRecvArg{}, &CompileError{Pos: a.Pos, Msg: fmt.Sprintf("undefined name %q in receive", a.Name)}
	}
}

// resolveVar resolves an assignment target or receive binding.
func (pc *procContext) resolveVar(name string, pos Pos) (VarRef, error) {
	if slot, ok := pc.intIdx[name]; ok {
		if _, isArr := pc.arrLen[name]; isArr {
			return VarRef{}, &CompileError{Pos: pos, Msg: fmt.Sprintf("array %q used without index", name)}
		}
		return VarRef{Idx: slot, Type: pc.proc.IntVars[slot].Type, Name: name}, nil
	}
	if idx, ok := pc.gc.varIdx[name]; ok {
		if _, isArr := pc.gc.arrLen[name]; isArr {
			return VarRef{}, &CompileError{Pos: pos, Msg: fmt.Sprintf("array %q used without index", name)}
		}
		return VarRef{Global: true, Idx: idx, Type: pc.gc.c.GlobalVars[idx].Type, Name: name}, nil
	}
	return VarRef{}, &CompileError{Pos: pos, Msg: fmt.Sprintf("undefined variable %q", name)}
}

// resolveArray resolves an array base reference and its length. pc may be
// nil in global scope.
func (gc *globalContext) resolveArray(name string, pos Pos, pc *procContext) (VarRef, int, error) {
	if pc != nil {
		if slot, ok := pc.intIdx[name]; ok {
			n, isArr := pc.arrLen[name]
			if !isArr {
				return VarRef{}, 0, &CompileError{Pos: pos, Msg: fmt.Sprintf("%q is not an array", name)}
			}
			return VarRef{Idx: slot, Type: pc.proc.IntVars[slot].Type, Name: name}, n, nil
		}
	}
	if idx, ok := gc.varIdx[name]; ok {
		n, isArr := gc.arrLen[name]
		if !isArr {
			return VarRef{}, 0, &CompileError{Pos: pos, Msg: fmt.Sprintf("%q is not an array", name)}
		}
		return VarRef{Global: true, Idx: idx, Type: gc.c.GlobalVars[idx].Type, Name: name}, n, nil
	}
	return VarRef{}, 0, &CompileError{Pos: pos, Msg: fmt.Sprintf("undefined array %q", name)}
}

// resolveChan resolves a channel name. The returned field list is nil when
// the channel is a parameter (its shape is known only at instantiation).
func (pc *procContext) resolveChan(name string, pos Pos) (ChanRef, []Type, error) {
	if slot, ok := pc.chanSlot[name]; ok {
		info := pc.proc.ChanSlots[slot]
		if info.IsParam {
			return ChanRef{Idx: slot, Name: name}, nil, nil
		}
		return ChanRef{Idx: slot, Name: name}, info.Decl.Fields, nil
	}
	if idx, ok := pc.gc.chanIdx[name]; ok {
		return ChanRef{Global: true, Idx: idx, Name: name}, pc.gc.c.GlobalChans[idx].Fields, nil
	}
	return ChanRef{}, nil, &CompileError{Pos: pos, Msg: fmt.Sprintf("undefined channel %q", name)}
}

func (pc *procContext) resolveExpr(e Expr) (RExpr, error) {
	return pc.gc.resolveExpr(e, pc)
}

// resolveExpr resolves an expression. pc may be nil when resolving in
// global scope (initializers).
func (gc *globalContext) resolveExpr(e Expr, pc *procContext) (RExpr, error) {
	switch x := e.(type) {
	case *Num:
		return &RConst{V: x.Val}, nil
	case *PidExpr:
		if pc == nil {
			return nil, &CompileError{Pos: x.Pos, Msg: "_pid outside proctype"}
		}
		return &RPid{}, nil
	case *TimeoutExpr:
		if pc == nil {
			return nil, &CompileError{Pos: x.Pos, Msg: "timeout outside proctype"}
		}
		return &RTimeout{}, nil
	case *Index:
		base, n, err := gc.resolveArray(x.Name, x.Pos, pc)
		if err != nil {
			return nil, err
		}
		idx, err := gc.resolveExpr(x.Idx, pc)
		if err != nil {
			return nil, err
		}
		return &RIndex{Base: base, Len: n, Idx: idx}, nil
	case *Ident:
		if pc != nil {
			if slot, ok := pc.intIdx[x.Name]; ok {
				if _, isArr := pc.arrLen[x.Name]; isArr {
					return nil, &CompileError{Pos: x.Pos, Msg: fmt.Sprintf("array %q used without index", x.Name)}
				}
				return &RVar{Ref: VarRef{Idx: slot, Type: pc.proc.IntVars[slot].Type, Name: x.Name}}, nil
			}
			if _, ok := pc.chanSlot[x.Name]; ok {
				return nil, &CompileError{Pos: x.Pos, Msg: fmt.Sprintf("channel %q used as value", x.Name)}
			}
		}
		if idx, ok := gc.varIdx[x.Name]; ok {
			if _, isArr := gc.arrLen[x.Name]; isArr {
				return nil, &CompileError{Pos: x.Pos, Msg: fmt.Sprintf("array %q used without index", x.Name)}
			}
			return &RVar{Ref: VarRef{Global: true, Idx: idx, Type: gc.c.GlobalVars[idx].Type, Name: x.Name}}, nil
		}
		if v, ok := gc.c.mtypeVal[x.Name]; ok {
			return &RConst{V: v}, nil
		}
		if _, ok := gc.chanIdx[x.Name]; ok {
			return nil, &CompileError{Pos: x.Pos, Msg: fmt.Sprintf("channel %q used as value", x.Name)}
		}
		return nil, &CompileError{Pos: x.Pos, Msg: fmt.Sprintf("undefined name %q", x.Name)}
	case *Unary:
		in, err := gc.resolveExpr(x.X, pc)
		if err != nil {
			return nil, err
		}
		return &RUnary{Op: x.Op, X: in}, nil
	case *Binary:
		a, err := gc.resolveExpr(x.X, pc)
		if err != nil {
			return nil, err
		}
		b, err := gc.resolveExpr(x.Y, pc)
		if err != nil {
			return nil, err
		}
		return &RBinary{Op: x.Op, X: a, Y: b}, nil
	case *ChanPred:
		if pc != nil {
			ref, _, err := pc.resolveChan(x.Ch, x.Pos)
			if err != nil {
				return nil, err
			}
			return &RChanPred{Op: x.Op, Ch: ref}, nil
		}
		idx, ok := gc.chanIdx[x.Ch]
		if !ok {
			return nil, &CompileError{Pos: x.Pos, Msg: fmt.Sprintf("undefined channel %q", x.Ch)}
		}
		return &RChanPred{Op: x.Op, Ch: ChanRef{Global: true, Idx: idx, Name: x.Ch}}, nil
	default:
		return nil, &CompileError{Msg: fmt.Sprintf("unsupported expression %T", e)}
	}
}

// finish removes epsilon edges (first merging pure-forwarding nodes, then
// replacing remaining epsilon edges by their closure of real edges) and
// computes the Local flag of every surviving edge.
func (p *Proc) finish() error {
	p.mergeForwarders()
	if err := p.closeEpsilons(); err != nil {
		return err
	}
	for ni := range p.Nodes {
		for ei := range p.Nodes[ni].Edges {
			p.Nodes[ni].Edges[ei].computeLocal()
		}
	}
	return nil
}

// mergeForwarders collapses nodes whose only edge is a single epsilon to a
// node with the same atomicity, unioning end-state flags, which keeps
// do-loop heads and labeled locations as single control states (as Spin's
// control-flow graph does).
func (p *Proc) mergeForwarders() {
	alias := make([]int, len(p.Nodes))
	for i := range alias {
		alias[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		if alias[i] != i {
			alias[i] = find(alias[i])
		}
		return alias[i]
	}
	changed := true
	for changed {
		changed = false
		for i := range p.Nodes {
			if find(i) != i {
				continue
			}
			n := &p.Nodes[i]
			if len(n.Edges) != 1 || n.Edges[0].Kind != EdgeEps {
				continue
			}
			j := find(n.Edges[0].Dst)
			if j == i || p.Nodes[j].Atomic != n.Atomic {
				continue
			}
			// Union flags into the survivor.
			p.Nodes[j].EndLabel = p.Nodes[j].EndLabel || n.EndLabel
			p.Nodes[j].Final = p.Nodes[j].Final || n.Final
			p.Nodes[j].Labels = append(p.Nodes[j].Labels, n.Labels...)
			alias[i] = j
			changed = true
		}
	}
	for i := range p.Nodes {
		for e := range p.Nodes[i].Edges {
			p.Nodes[i].Edges[e].Dst = find(p.Nodes[i].Edges[e].Dst)
		}
	}
	p.Entry = find(p.Entry)
}

// closeEpsilons replaces each node's epsilon edges with the set of real
// edges reachable through epsilon paths. Epsilon cycles (such as a goto
// loop with no executable statement) are compile errors.
func (p *Proc) closeEpsilons() error {
	for i := range p.Nodes {
		hasEps := false
		for _, e := range p.Nodes[i].Edges {
			if e.Kind == EdgeEps {
				hasEps = true
				break
			}
		}
		if !hasEps {
			continue
		}
		var out []Edge
		onPath := make(map[int]bool)
		var walk func(node int) error
		walk = func(node int) error {
			if onPath[node] {
				return &CompileError{Msg: fmt.Sprintf(
					"proctype %s: control cycle with no executable statement", p.Name)}
			}
			onPath[node] = true
			defer delete(onPath, node)
			for _, e := range p.Nodes[node].Edges {
				if e.Kind == EdgeEps {
					if err := walk(e.Dst); err != nil {
						return err
					}
					continue
				}
				out = append(out, e)
			}
			return nil
		}
		if err := walk(i); err != nil {
			return err
		}
		p.Nodes[i].Edges = out
	}
	return nil
}
