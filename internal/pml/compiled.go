package pml

import (
	"errors"
	"fmt"
)

// Compiled is a fully resolved, lowered pml program: every proctype body
// has been compiled to an explicit transition graph whose edges are atomic
// actions, ready for state-space exploration.
type Compiled struct {
	Mtypes      []string   // value of Mtypes[i] is int64(i+1)
	GlobalVars  []VarInfo  // declaration order
	GlobalChans []ChanInfo // declaration order
	Procs       []*Proc    // declaration order
	byName      map[string]*Proc
	mtypeVal    map[string]int64
}

// Proc returns the compiled proctype with the given name, or nil.
func (c *Compiled) Proc(name string) *Proc { return c.byName[name] }

// MtypeValue returns the value of an mtype constant, or (0, false).
func (c *Compiled) MtypeValue(name string) (int64, bool) {
	v, ok := c.mtypeVal[name]
	return v, ok
}

// MtypeName returns the declared name for an mtype value, or its decimal
// form when the value does not correspond to a constant.
func (c *Compiled) MtypeName(v int64) string {
	i := int(v) - 1
	if i >= 0 && i < len(c.Mtypes) {
		return c.Mtypes[i]
	}
	return fmt.Sprintf("%d", v)
}

// VarInfo describes an integer-family variable slot.
type VarInfo struct {
	Name string
	Type Type
	Init int64
}

// ChanInfo describes a channel: capacity 0 is rendezvous.
type ChanInfo struct {
	Name   string
	Cap    int
	Fields []Type
}

// ChanSlotInfo describes one channel slot of a proctype: either a channel
// parameter (bound at instantiation) or a local channel declaration (a
// fresh channel is created per instance).
type ChanSlotInfo struct {
	Name    string
	IsParam bool
	Decl    ChanInfo // valid when !IsParam
}

// ParamInfo maps a proctype parameter position to its slot.
type ParamInfo struct {
	Name   string
	IsChan bool
	Slot   int // index into IntVars or ChanSlots
	Type   Type
}

// Proc is a compiled proctype.
type Proc struct {
	Name      string
	Active    int
	Params    []ParamInfo
	IntVars   []VarInfo      // int-family slots: params first, then locals
	ChanSlots []ChanSlotInfo // chan slots: params first, then local decls
	// InitEdges lists local declarations whose initializer is not a
	// compile-time constant; they are compiled as assignment edges inline
	// in the body, so nothing extra is needed here. Constant initializers
	// are recorded in IntVars[i].Init.
	Entry int
	Nodes []Node
}

// Node is a control location of a compiled proctype.
type Node struct {
	Edges    []Edge
	Atomic   bool     // inside an atomic/d_step region
	EndLabel bool     // carries an end* label: valid end state
	Final    bool     // body exit: valid end state
	Labels   []string // all labels attached here (diagnostics)
}

// EdgeKind classifies the atomic action an edge performs.
type EdgeKind int

// Edge kinds. EdgeEps exists only during compilation and never survives in
// a Compiled program.
const (
	EdgeGuard EdgeKind = iota + 1
	EdgeElse
	EdgeAssign
	EdgeSend
	EdgeRecv
	EdgeAssert
	EdgeSkip
	EdgeEps
)

// VarRef is a resolved reference to a variable slot.
type VarRef struct {
	Global bool
	Idx    int
	Type   Type
	Name   string
}

// ChanRef is a resolved reference to a channel: either a global channel
// index or a proctype-local channel slot.
type ChanRef struct {
	Global bool
	Idx    int
	Name   string
}

// RRecvArgKind classifies a resolved receive argument.
type RRecvArgKind int

// Resolved receive argument kinds.
const (
	RArgBind RRecvArgKind = iota + 1
	RArgWild
	RArgMatch
)

// RRecvArg is a resolved receive argument.
type RRecvArg struct {
	Kind RRecvArgKind
	Var  VarRef // RArgBind
	X    RExpr  // RArgMatch
}

// Edge is one atomic action of the transition graph.
type Edge struct {
	Kind     EdgeKind
	Dst      int
	Pos      Pos
	Label    string // human-readable action, for counterexample traces
	Cond     RExpr  // EdgeGuard, EdgeAssert
	Var      VarRef // EdgeAssign target (element 0 for array targets)
	VarIdx   RExpr  // EdgeAssign: index expression for array targets (nil for scalars)
	VarLen   int    // EdgeAssign: declared array length for bounds checking
	RHS      RExpr  // EdgeAssign
	Ch       ChanRef
	Sorted   bool // EdgeSend: !!
	Random   bool // EdgeRecv: ??
	SendArgs []RExpr
	RecvArgs []RRecvArg
	// Local marks an invisible process-private action: a skip, or a guard
	// or assignment that touches only process-local variables. Local
	// edges are independent of every other process and never affect
	// global properties, which the checker's partial-order reduction
	// exploits.
	Local bool
}

// exprIsLocal reports whether e reads only process-local state.
func exprIsLocal(e RExpr) bool {
	switch x := e.(type) {
	case *RConst, *RPid:
		return true
	case *RVar:
		return !x.Ref.Global
	case *RUnary:
		return exprIsLocal(x.X)
	case *RBinary:
		return exprIsLocal(x.X) && exprIsLocal(x.Y)
	case *RIndex:
		return !x.Base.Global && exprIsLocal(x.Idx)
	default: // RChanPred reads shared channel state; timeout is global
		return false
	}
}

// computeLocal decides the Local flag for a finished edge.
func (e *Edge) computeLocal() {
	switch e.Kind {
	case EdgeSkip:
		e.Local = true
	case EdgeGuard:
		e.Local = exprIsLocal(e.Cond)
	case EdgeAssign:
		e.Local = !e.Var.Global && exprIsLocal(e.RHS) &&
			(e.VarIdx == nil || exprIsLocal(e.VarIdx))
	default:
		e.Local = false
	}
}

// RExpr is a resolved, evaluable expression.
type RExpr interface{ rexpr() }

// RConst is a constant.
type RConst struct{ V int64 }

// RVar reads a variable slot.
type RVar struct{ Ref VarRef }

// RIndex reads an array element: Base.Idx is the slot of element 0 and
// Len the declared length. An out-of-range index is a runtime violation.
type RIndex struct {
	Base VarRef
	Len  int
	Idx  RExpr
}

// RPid is the executing instance's pid.
type RPid struct{}

// RTimeout is Spin's timeout builtin: true when the whole system has no
// other executable transition (supplied by the evaluation environment).
type RTimeout struct{}

// RUnary applies a unary operator.
type RUnary struct {
	Op UnaryOp
	X  RExpr
}

// RBinary applies a binary operator.
type RBinary struct {
	Op   BinaryOp
	X, Y RExpr
}

// RChanPred queries channel fill state.
type RChanPred struct {
	Op ChanPredOp
	Ch ChanRef
}

func (*RConst) rexpr()    {}
func (*RVar) rexpr()      {}
func (*RIndex) rexpr()    {}
func (*RPid) rexpr()      {}
func (*RTimeout) rexpr()  {}
func (*RUnary) rexpr()    {}
func (*RBinary) rexpr()   {}
func (*RChanPred) rexpr() {}

// EvalEnv supplies the dynamic context needed to evaluate an RExpr: the
// global store, the executing process's local store and pid, and channel
// fill levels. internal/model implements it.
type EvalEnv interface {
	Global(idx int) int64
	Local(idx int) int64
	Pid() int64
	ChanLen(ref ChanRef) int
	ChanCap(ref ChanRef) int
	// Timeout reports whether the system-wide timeout condition holds:
	// no process has any other executable transition.
	Timeout() bool
}

// ErrDivByZero is returned by Eval for division or modulus by zero.
var ErrDivByZero = errors.New("pml: division by zero")

// ErrIndexOutOfRange is returned by Eval for an array access outside the
// declared bounds.
var ErrIndexOutOfRange = errors.New("pml: array index out of range")

// Eval evaluates a resolved expression in the given environment.
func Eval(e RExpr, env EvalEnv) (int64, error) {
	switch x := e.(type) {
	case *RConst:
		return x.V, nil
	case *RVar:
		if x.Ref.Global {
			return env.Global(x.Ref.Idx), nil
		}
		return env.Local(x.Ref.Idx), nil
	case *RIndex:
		i, err := Eval(x.Idx, env)
		if err != nil {
			return 0, err
		}
		if i < 0 || i >= int64(x.Len) {
			return 0, ErrIndexOutOfRange
		}
		slot := x.Base.Idx + int(i)
		if x.Base.Global {
			return env.Global(slot), nil
		}
		return env.Local(slot), nil
	case *RPid:
		return env.Pid(), nil
	case *RTimeout:
		return b2i(env.Timeout()), nil
	case *RUnary:
		v, err := Eval(x.X, env)
		if err != nil {
			return 0, err
		}
		switch x.Op {
		case OpNeg:
			return -v, nil
		default: // OpNot
			if v == 0 {
				return 1, nil
			}
			return 0, nil
		}
	case *RBinary:
		return evalBinary(x, env)
	case *RChanPred:
		n := int64(env.ChanLen(x.Ch))
		c := int64(env.ChanCap(x.Ch))
		switch x.Op {
		case PredLen:
			return n, nil
		case PredFull:
			return b2i(n >= c), nil
		case PredEmpty:
			return b2i(n == 0), nil
		case PredNfull:
			return b2i(n < c), nil
		default: // PredNempty
			return b2i(n > 0), nil
		}
	default:
		return 0, fmt.Errorf("pml: unknown expression node %T", e)
	}
}

func evalBinary(x *RBinary, env EvalEnv) (int64, error) {
	a, err := Eval(x.X, env)
	if err != nil {
		return 0, err
	}
	// Short-circuit logical operators, matching Spin.
	switch x.Op {
	case OpAnd:
		if a == 0 {
			return 0, nil
		}
		b, err := Eval(x.Y, env)
		if err != nil {
			return 0, err
		}
		return b2i(b != 0), nil
	case OpOr:
		if a != 0 {
			return 1, nil
		}
		b, err := Eval(x.Y, env)
		if err != nil {
			return 0, err
		}
		return b2i(b != 0), nil
	}
	b, err := Eval(x.Y, env)
	if err != nil {
		return 0, err
	}
	switch x.Op {
	case OpAdd:
		return a + b, nil
	case OpSub:
		return a - b, nil
	case OpMul:
		return a * b, nil
	case OpDiv:
		if b == 0 {
			return 0, ErrDivByZero
		}
		return a / b, nil
	case OpMod:
		if b == 0 {
			return 0, ErrDivByZero
		}
		return a % b, nil
	case OpEq:
		return b2i(a == b), nil
	case OpNeq:
		return b2i(a != b), nil
	case OpLt:
		return b2i(a < b), nil
	case OpLe:
		return b2i(a <= b), nil
	case OpGt:
		return b2i(a > b), nil
	default: // OpGe
		return b2i(a >= b), nil
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// ConstEval evaluates an expression that must be compile-time constant
// (numeric literals, mtype constants, arithmetic over them).
func ConstEval(e RExpr) (int64, bool) {
	v, err := Eval(e, constEnv{})
	if err != nil {
		return 0, false
	}
	return v, true
}

type constEnv struct{}

func (constEnv) Global(int) int64    { return 0 }
func (constEnv) Local(int) int64     { return 0 }
func (constEnv) Pid() int64          { return 0 }
func (constEnv) ChanLen(ChanRef) int { return 0 }
func (constEnv) ChanCap(ChanRef) int { return 0 }
func (constEnv) Timeout() bool       { return false }

// isConstExpr reports whether e contains no variable, pid, or channel
// references, i.e. Eval over the zero environment yields its true value.
func isConstExpr(e RExpr) bool {
	switch x := e.(type) {
	case *RConst:
		return true
	case *RUnary:
		return isConstExpr(x.X)
	case *RBinary:
		return isConstExpr(x.X) && isConstExpr(x.Y)
	default:
		return false
	}
}
