package pml

import (
	"fmt"
	"strconv"
)

type parser struct {
	toks []Token
	pos  int
}

// Parse lexes and parses a pml compilation unit.
func Parse(src string) (*Program, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.program()
}

func (p *parser) cur() Token  { return p.toks[p.pos] }
func (p *parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(k Kind) bool { return p.cur().Kind == k }

func (p *parser) accept(k Kind) bool {
	if p.at(k) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(k Kind) (Token, error) {
	if !p.at(k) {
		return Token{}, p.errf("expected %s, found %s", k, p.describe(p.cur()))
	}
	return p.next(), nil
}

func (p *parser) describe(t Token) string {
	if t.Kind == IDENT || t.Kind == NUMBER {
		return strconv.Quote(t.Text)
	}
	return t.Kind.String()
}

func (p *parser) errf(format string, args ...any) error {
	return &SyntaxError{Pos: p.cur().Pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) program() (*Program, error) {
	prog := &Program{}
	for !p.at(EOF) {
		switch p.cur().Kind {
		case KwMtype:
			if err := p.mtypeDecl(prog); err != nil {
				return nil, err
			}
		case KwChan:
			cd, err := p.chanDecl()
			if err != nil {
				return nil, err
			}
			prog.Chans = append(prog.Chans, cd)
		case KwBit, KwBool, KwByte, KwShort, KwInt:
			vds, err := p.varDecl()
			if err != nil {
				return nil, err
			}
			prog.Globals = append(prog.Globals, vds...)
		case KwActive, KwProctype:
			pd, err := p.proctype()
			if err != nil {
				return nil, err
			}
			prog.Procs = append(prog.Procs, pd)
		case SEMI:
			p.next()
		default:
			return nil, p.errf("expected declaration, found %s", p.describe(p.cur()))
		}
	}
	return prog, nil
}

func (p *parser) mtypeDecl(prog *Program) error {
	p.next() // mtype
	// Accept both `mtype = { ... }` and `mtype { ... }`.
	p.accept(ASSIGN)
	if _, err := p.expect(LBRACE); err != nil {
		return err
	}
	for {
		t, err := p.expect(IDENT)
		if err != nil {
			return err
		}
		prog.Mtypes = append(prog.Mtypes, t.Text)
		if !p.accept(COMMA) {
			break
		}
	}
	if _, err := p.expect(RBRACE); err != nil {
		return err
	}
	p.accept(SEMI)
	return nil
}

func (p *parser) chanDecl() (ChanDecl, error) {
	pos := p.cur().Pos
	p.next() // chan
	name, err := p.expect(IDENT)
	if err != nil {
		return ChanDecl{}, err
	}
	if _, err := p.expect(ASSIGN); err != nil {
		return ChanDecl{}, err
	}
	if _, err := p.expect(LBRACK); err != nil {
		return ChanDecl{}, err
	}
	capTok, err := p.expect(NUMBER)
	if err != nil {
		return ChanDecl{}, err
	}
	capN, err := strconv.Atoi(capTok.Text)
	if err != nil || capN < 0 {
		return ChanDecl{}, &SyntaxError{Pos: capTok.Pos, Msg: "invalid channel capacity"}
	}
	if _, err := p.expect(RBRACK); err != nil {
		return ChanDecl{}, err
	}
	if _, err := p.expect(KwOf); err != nil {
		return ChanDecl{}, err
	}
	if _, err := p.expect(LBRACE); err != nil {
		return ChanDecl{}, err
	}
	var fields []Type
	for {
		t, err := p.typeName()
		if err != nil {
			return ChanDecl{}, err
		}
		if t == TypeChan {
			return ChanDecl{}, p.errf("chan-typed channel fields are not in the subset")
		}
		fields = append(fields, t)
		if !p.accept(COMMA) {
			break
		}
	}
	if _, err := p.expect(RBRACE); err != nil {
		return ChanDecl{}, err
	}
	p.accept(SEMI)
	return ChanDecl{Name: name.Text, Cap: capN, Fields: fields, Pos: pos}, nil
}

func (p *parser) typeName() (Type, error) {
	switch p.cur().Kind {
	case KwBit:
		p.next()
		return TypeBit, nil
	case KwBool:
		p.next()
		return TypeBool, nil
	case KwByte:
		p.next()
		return TypeByte, nil
	case KwShort:
		p.next()
		return TypeShort, nil
	case KwInt:
		p.next()
		return TypeInt, nil
	case KwMtype:
		p.next()
		return TypeMtype, nil
	case KwChan:
		p.next()
		return TypeChan, nil
	default:
		return 0, p.errf("expected type name, found %s", p.describe(p.cur()))
	}
}

func (p *parser) varDecl() ([]VarDecl, error) {
	t, err := p.typeName()
	if err != nil {
		return nil, err
	}
	var out []VarDecl
	for {
		pos := p.cur().Pos
		name, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		vd := VarDecl{Name: name.Text, Type: t, Pos: pos}
		if p.accept(LBRACK) {
			n, err := p.expect(NUMBER)
			if err != nil {
				return nil, err
			}
			v, convErr := strconv.Atoi(n.Text)
			if convErr != nil || v < 1 {
				return nil, &SyntaxError{Pos: n.Pos, Msg: "invalid array length"}
			}
			vd.ArrayLen = v
			if _, err := p.expect(RBRACK); err != nil {
				return nil, err
			}
		}
		if p.accept(ASSIGN) {
			if vd.ArrayLen > 0 {
				return nil, &SyntaxError{Pos: pos, Msg: "array initializers are not in the subset"}
			}
			vd.Init, err = p.expr()
			if err != nil {
				return nil, err
			}
		}
		out = append(out, vd)
		if !p.accept(COMMA) {
			break
		}
	}
	p.accept(SEMI)
	return out, nil
}

func (p *parser) proctype() (*ProcDecl, error) {
	pos := p.cur().Pos
	active := 0
	if p.accept(KwActive) {
		active = 1
		if p.accept(LBRACK) {
			n, err := p.expect(NUMBER)
			if err != nil {
				return nil, err
			}
			v, convErr := strconv.Atoi(n.Text)
			if convErr != nil || v < 1 {
				return nil, &SyntaxError{Pos: n.Pos, Msg: "invalid active instance count"}
			}
			active = v
			if _, err := p.expect(RBRACK); err != nil {
				return nil, err
			}
		}
	}
	if _, err := p.expect(KwProctype); err != nil {
		return nil, err
	}
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	var params []VarDecl
	if !p.at(RPAREN) {
		for {
			t, err := p.typeName()
			if err != nil {
				return nil, err
			}
			for {
				pn, err := p.expect(IDENT)
				if err != nil {
					return nil, err
				}
				params = append(params, VarDecl{Name: pn.Text, Type: t, Pos: pn.Pos})
				if !p.accept(COMMA) {
					break
				}
			}
			if !p.accept(SEMI) {
				break
			}
		}
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	body, err := p.braceBlock()
	if err != nil {
		return nil, err
	}
	return &ProcDecl{Name: name.Text, Active: active, Params: params, Body: body, Pos: pos}, nil
}

func (p *parser) braceBlock() (*Block, error) {
	if _, err := p.expect(LBRACE); err != nil {
		return nil, err
	}
	b, err := p.stmtSeq(RBRACE)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RBRACE); err != nil {
		return nil, err
	}
	return b, nil
}

// stmtSeq parses statements until one of the terminator kinds (which it
// does not consume). Statement separators `;` and `->` are interchangeable
// and redundant separators are tolerated.
func (p *parser) stmtSeq(terms ...Kind) (*Block, error) {
	isTerm := func(k Kind) bool {
		if k == DCOLON {
			return true
		}
		for _, t := range terms {
			if k == t {
				return true
			}
		}
		return false
	}
	b := &Block{}
	for {
		for p.accept(SEMI) || p.accept(ARROW) {
		}
		if isTerm(p.cur().Kind) || p.at(EOF) {
			return b, nil
		}
		s, err := p.stmt(terms)
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
}

func (p *parser) stmt(terms []Kind) (Stmt, error) {
	pos := p.cur().Pos
	switch p.cur().Kind {
	case KwIf:
		p.next()
		opts, err := p.options(KwFi)
		if err != nil {
			return nil, err
		}
		return &IfStmt{Options: opts, Pos: pos}, nil
	case KwDo:
		p.next()
		opts, err := p.options(KwOd)
		if err != nil {
			return nil, err
		}
		return &DoStmt{Options: opts, Pos: pos}, nil
	case KwAtomic, KwDstep:
		p.next()
		body, err := p.braceBlock()
		if err != nil {
			return nil, err
		}
		return &AtomicStmt{Body: body, Pos: pos}, nil
	case KwFor:
		return p.forStmt(pos)
	case KwBreak:
		p.next()
		return &BreakStmt{Pos: pos}, nil
	case KwSkip:
		p.next()
		return &SkipStmt{Pos: pos}, nil
	case KwElse:
		p.next()
		return &ElseStmt{Pos: pos}, nil
	case KwGoto:
		p.next()
		l, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		return &GotoStmt{Label: l.Text, Pos: pos}, nil
	case KwAssert:
		p.next()
		if _, err := p.expect(LPAREN); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		return &AssertStmt{Cond: cond, Pos: pos}, nil
	case KwPrintf:
		return p.printfStmt(pos)
	case KwChan:
		cd, err := p.chanDecl()
		if err != nil {
			return nil, err
		}
		return &ChanDeclStmt{Decl: cd}, nil
	case KwBit, KwBool, KwByte, KwShort, KwInt, KwMtype:
		// `mtype` here is a local var of type mtype: `mtype x;`.
		vds, err := p.varDecl()
		if err != nil {
			return nil, err
		}
		if len(vds) == 1 {
			return &DeclStmt{Var: vds[0]}, nil
		}
		blk := &Block{}
		for _, vd := range vds {
			blk.Stmts = append(blk.Stmts, &DeclStmt{Var: vd})
		}
		return blk, nil
	case IDENT:
		return p.identStmt(pos)
	default:
		// Expression guard, e.g. `(x > 0)`.
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &ExprStmt{X: x, Pos: pos}, nil
	}
}

// forStmt parses Spin 6's `for (i : lo .. hi) { body }` and desugars it to
//
//	i = lo;
//	do
//	:: i <= hi -> body; i = i + 1
//	:: else -> break
//	od
//
// The loop variable must already be declared; hi is re-evaluated per
// iteration.
func (p *parser) forStmt(pos Pos) (Stmt, error) {
	p.next() // for
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	v, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(COLON); err != nil {
		return nil, err
	}
	lo, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(DOTDOT); err != nil {
		return nil, err
	}
	hi, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	body, err := p.braceBlock()
	if err != nil {
		return nil, err
	}

	loopBody := &Block{Stmts: []Stmt{
		&ExprStmt{X: &Binary{Op: OpLe, X: &Ident{Name: v.Text, Pos: pos}, Y: hi, Pos: pos}, Pos: pos},
		body,
		&AssignStmt{
			Name: v.Text,
			RHS:  &Binary{Op: OpAdd, X: &Ident{Name: v.Text, Pos: pos}, Y: &Num{Val: 1, Pos: pos}, Pos: pos},
			Pos:  pos,
		},
	}}
	exitBody := &Block{Stmts: []Stmt{&ElseStmt{Pos: pos}, &BreakStmt{Pos: pos}}}
	return &Block{Stmts: []Stmt{
		&AssignStmt{Name: v.Text, RHS: lo, Pos: pos},
		&DoStmt{Options: []*Block{loopBody, exitBody}, Pos: pos},
	}}, nil
}

func (p *parser) printfStmt(pos Pos) (Stmt, error) {
	p.next() // printf
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	f, err := p.expect(STRING)
	if err != nil {
		return nil, err
	}
	st := &PrintfStmt{Format: f.Text, Pos: pos}
	for p.accept(COMMA) {
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		st.Args = append(st.Args, x)
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	return st, nil
}

func (p *parser) identStmt(pos Pos) (Stmt, error) {
	name := p.next().Text
	switch p.cur().Kind {
	case COLON:
		p.next()
		inner, err := p.stmt(nil)
		if err != nil {
			return nil, err
		}
		return &LabeledStmt{Label: name, Stmt: inner, Pos: pos}, nil
	case ASSIGN:
		p.next()
		rhs, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &AssignStmt{Name: name, RHS: rhs, Pos: pos}, nil
	case LBRACK:
		// Either an indexed assignment `a[i] = e` or a guard expression
		// beginning with an array access.
		p.next()
		idx, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RBRACK); err != nil {
			return nil, err
		}
		if p.accept(ASSIGN) {
			rhs, err := p.expr()
			if err != nil {
				return nil, err
			}
			return &AssignStmt{Name: name, Idx: idx, RHS: rhs, Pos: pos}, nil
		}
		x, err := p.binExprRHS(&Index{Name: name, Idx: idx, Pos: pos}, 1)
		if err != nil {
			return nil, err
		}
		return &ExprStmt{X: x, Pos: pos}, nil
	case BANG, DBANG:
		sorted := p.next().Kind == DBANG
		args, err := p.exprList()
		if err != nil {
			return nil, err
		}
		return &SendStmt{Ch: name, Sorted: sorted, Args: args, Pos: pos}, nil
	case QUERY, DQUERY:
		random := p.next().Kind == DQUERY
		args, err := p.recvArgs()
		if err != nil {
			return nil, err
		}
		return &RecvStmt{Ch: name, Random: random, Args: args, Pos: pos}, nil
	default:
		// The identifier begins a guard expression, e.g. `x > 0` or
		// `buffer_empty`.
		x, err := p.exprAfterIdent(name, pos)
		if err != nil {
			return nil, err
		}
		return &ExprStmt{X: x, Pos: pos}, nil
	}
}

func (p *parser) exprList() ([]Expr, error) {
	var out []Expr
	for {
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		out = append(out, x)
		if !p.accept(COMMA) {
			break
		}
	}
	return out, nil
}

func (p *parser) recvArgs() ([]RecvArg, error) {
	var out []RecvArg
	for {
		pos := p.cur().Pos
		switch p.cur().Kind {
		case UNDERSCORE:
			p.next()
			out = append(out, RecvArg{Kind: ArgWild, Pos: pos})
		case KwEval:
			p.next()
			if _, err := p.expect(LPAREN); err != nil {
				return nil, err
			}
			x, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(RPAREN); err != nil {
				return nil, err
			}
			out = append(out, RecvArg{Kind: ArgMatch, X: x, Pos: pos})
		case NUMBER, MINUS, KwTrue, KwFalse:
			x, err := p.unary()
			if err != nil {
				return nil, err
			}
			out = append(out, RecvArg{Kind: ArgMatch, X: x, Pos: pos})
		case IDENT:
			t := p.next()
			out = append(out, RecvArg{Kind: ArgIdent, Name: t.Text, Pos: pos})
		default:
			return nil, p.errf("expected receive argument, found %s", p.describe(p.cur()))
		}
		if !p.accept(COMMA) {
			break
		}
	}
	return out, nil
}

// options parses `:: seq :: seq ... end` for if/do statements.
func (p *parser) options(end Kind) ([]*Block, error) {
	var opts []*Block
	if !p.at(DCOLON) {
		return nil, p.errf("expected ::, found %s", p.describe(p.cur()))
	}
	for p.accept(DCOLON) {
		pos := p.cur().Pos
		b, err := p.stmtSeq(end)
		if err != nil {
			return nil, err
		}
		if len(b.Stmts) == 0 {
			return nil, &SyntaxError{Pos: pos, Msg: "empty option in if/do"}
		}
		opts = append(opts, b)
	}
	if _, err := p.expect(end); err != nil {
		return nil, err
	}
	return opts, nil
}

// Expression parsing: precedence climbing.

var binPrec = map[Kind]int{
	OR:  1,
	AND: 2,
	EQ:  3, NEQ: 3,
	LT: 4, LE: 4, GT: 4, GE: 4,
	PLUS: 5, MINUS: 5,
	STAR: 6, SLASH: 6, PERCENT: 6,
}

var binOps = map[Kind]BinaryOp{
	OR: OpOr, AND: OpAnd,
	EQ: OpEq, NEQ: OpNeq,
	LT: OpLt, LE: OpLe, GT: OpGt, GE: OpGe,
	PLUS: OpAdd, MINUS: OpSub,
	STAR: OpMul, SLASH: OpDiv, PERCENT: OpMod,
}

func (p *parser) expr() (Expr, error) {
	return p.binExpr(1)
}

func (p *parser) binExpr(minPrec int) (Expr, error) {
	lhs, err := p.unary()
	if err != nil {
		return nil, err
	}
	return p.binExprRHS(lhs, minPrec)
}

func (p *parser) binExprRHS(lhs Expr, minPrec int) (Expr, error) {
	for {
		k := p.cur().Kind
		prec, ok := binPrec[k]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		pos := p.cur().Pos
		p.next()
		rhs, err := p.binExpr(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &Binary{Op: binOps[k], X: lhs, Y: rhs, Pos: pos}
	}
}

func (p *parser) unary() (Expr, error) {
	pos := p.cur().Pos
	switch p.cur().Kind {
	case MINUS:
		p.next()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: OpNeg, X: x, Pos: pos}, nil
	case BANG:
		p.next()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: OpNot, X: x, Pos: pos}, nil
	default:
		return p.primary()
	}
}

func (p *parser) primary() (Expr, error) {
	pos := p.cur().Pos
	switch p.cur().Kind {
	case NUMBER:
		t := p.next()
		v, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, &SyntaxError{Pos: t.Pos, Msg: "invalid number literal"}
		}
		return &Num{Val: v, Pos: pos}, nil
	case KwTrue:
		p.next()
		return &Num{Val: 1, Pos: pos}, nil
	case KwFalse:
		p.next()
		return &Num{Val: 0, Pos: pos}, nil
	case KwPid:
		p.next()
		return &PidExpr{Pos: pos}, nil
	case KwTimeout:
		p.next()
		return &TimeoutExpr{Pos: pos}, nil
	case LPAREN:
		p.next()
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		return x, nil
	case KwLen, KwFull, KwEmpty, KwNfull, KwNempty:
		op := map[Kind]ChanPredOp{
			KwLen: PredLen, KwFull: PredFull, KwEmpty: PredEmpty,
			KwNfull: PredNfull, KwNempty: PredNempty,
		}[p.next().Kind]
		if _, err := p.expect(LPAREN); err != nil {
			return nil, err
		}
		ch, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		return &ChanPred{Op: op, Ch: ch.Text, Pos: pos}, nil
	case IDENT:
		t := p.next()
		if p.accept(LBRACK) {
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(RBRACK); err != nil {
				return nil, err
			}
			return &Index{Name: t.Text, Idx: idx, Pos: pos}, nil
		}
		return &Ident{Name: t.Text, Pos: pos}, nil
	default:
		return nil, p.errf("expected expression, found %s", p.describe(p.cur()))
	}
}

// exprAfterIdent continues parsing an expression whose first token, an
// identifier, has already been consumed by the statement dispatcher.
func (p *parser) exprAfterIdent(name string, pos Pos) (Expr, error) {
	var lhs Expr = &Ident{Name: name, Pos: pos}
	return p.binExprRHS(lhs, 1)
}
