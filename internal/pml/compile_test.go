package pml

import (
	"strings"
	"testing"
)

func mustCompile(t *testing.T, src string) *Compiled {
	t.Helper()
	c, err := CompileSource(src)
	if err != nil {
		t.Fatalf("CompileSource: %v", err)
	}
	return c
}

// edgeKinds returns the kinds of all edges at a node.
func edgeKinds(n Node) []EdgeKind {
	out := make([]EdgeKind, 0, len(n.Edges))
	for _, e := range n.Edges {
		out = append(out, e.Kind)
	}
	return out
}

func TestCompileNoEpsilonEdgesSurvive(t *testing.T) {
	c := mustCompile(t, `
byte g;
proctype P() {
	byte x;
	do
	:: x < 3 -> x = x + 1
	:: else -> break
	od;
	end: g = 1;
	goto done;
	g = 2;
	done: skip
}`)
	p := c.Proc("P")
	for i, n := range p.Nodes {
		for _, e := range n.Edges {
			if e.Kind == EdgeEps {
				t.Errorf("node %d retains epsilon edge", i)
			}
		}
	}
}

func TestCompileMtypeValues(t *testing.T) {
	c := mustCompile(t, "mtype = { A, B, C };")
	for i, name := range []string{"A", "B", "C"} {
		v, ok := c.MtypeValue(name)
		if !ok || v != int64(i+1) {
			t.Errorf("MtypeValue(%s) = %d, %v", name, v, ok)
		}
	}
	if c.MtypeName(2) != "B" {
		t.Errorf("MtypeName(2) = %q", c.MtypeName(2))
	}
	if c.MtypeName(99) != "99" {
		t.Errorf("MtypeName(99) = %q", c.MtypeName(99))
	}
}

func TestCompileGlobalInit(t *testing.T) {
	c := mustCompile(t, `
mtype = { A, B };
byte x = 3 + 4;
bool f = true;
byte m = B;
`)
	if c.GlobalVars[0].Init != 7 {
		t.Errorf("x init = %d", c.GlobalVars[0].Init)
	}
	if c.GlobalVars[1].Init != 1 {
		t.Errorf("f init = %d", c.GlobalVars[1].Init)
	}
	if c.GlobalVars[2].Init != 2 {
		t.Errorf("m init = %d (want mtype B = 2)", c.GlobalVars[2].Init)
	}
}

func TestCompileGlobalInitMustBeConst(t *testing.T) {
	_, err := CompileSource("byte x = 1; byte y = x;")
	if err == nil || !strings.Contains(err.Error(), "constant") {
		t.Errorf("err = %v, want constant-initializer error", err)
	}
}

func TestCompileLocalConstInitHasNoEdge(t *testing.T) {
	c := mustCompile(t, `proctype P() { bool buffer_empty = 1; skip }`)
	p := c.Proc("P")
	// Entry node should hold the skip edge directly: the const decl
	// compiles to no action.
	entry := p.Nodes[p.Entry]
	if len(entry.Edges) != 1 || entry.Edges[0].Kind != EdgeSkip {
		t.Errorf("entry edges = %v", edgeKinds(entry))
	}
	if len(p.IntVars) != 1 || p.IntVars[0].Init != 1 {
		t.Errorf("IntVars = %+v", p.IntVars)
	}
}

func TestCompileLocalNonConstInitBecomesAssign(t *testing.T) {
	c := mustCompile(t, `byte g; proctype P() { byte x = g + 1; skip }`)
	p := c.Proc("P")
	entry := p.Nodes[p.Entry]
	if len(entry.Edges) != 1 || entry.Edges[0].Kind != EdgeAssign {
		t.Errorf("entry edges = %v, want one assign", edgeKinds(entry))
	}
}

func TestCompileIfMergesOptionFirstActions(t *testing.T) {
	c := mustCompile(t, `
byte x;
proctype P() {
	if
	:: x == 0 -> x = 1
	:: x == 1 -> x = 2
	:: else -> skip
	fi
}`)
	p := c.Proc("P")
	entry := p.Nodes[p.Entry]
	if len(entry.Edges) != 3 {
		t.Fatalf("entry has %d edges, want 3 options", len(entry.Edges))
	}
	kinds := edgeKinds(entry)
	if kinds[0] != EdgeGuard || kinds[1] != EdgeGuard || kinds[2] != EdgeElse {
		t.Errorf("entry edge kinds = %v", kinds)
	}
}

func TestCompileDoLoopBack(t *testing.T) {
	c := mustCompile(t, `
byte x;
proctype P() {
	do
	:: x = x + 1
	:: x > 2 -> break
	od;
	skip
}`)
	p := c.Proc("P")
	entry := p.Nodes[p.Entry]
	if len(entry.Edges) != 2 {
		t.Fatalf("loop head has %d edges, want 2", len(entry.Edges))
	}
	// The assign option must loop straight back to the head.
	var assign *Edge
	for i := range entry.Edges {
		if entry.Edges[i].Kind == EdgeAssign {
			assign = &entry.Edges[i]
		}
	}
	if assign == nil {
		t.Fatal("no assign edge at loop head")
	}
	if assign.Dst != p.Entry {
		t.Errorf("assign dst = %d, want loop head %d", assign.Dst, p.Entry)
	}
	// The guard option leads to a skip, then the final node.
	var guard *Edge
	for i := range entry.Edges {
		if entry.Edges[i].Kind == EdgeGuard {
			guard = &entry.Edges[i]
		}
	}
	after := p.Nodes[guard.Dst]
	if len(after.Edges) != 1 || after.Edges[0].Kind != EdgeSkip {
		t.Fatalf("after-break edges = %v", edgeKinds(after))
	}
	if !p.Nodes[after.Edges[0].Dst].Final {
		t.Errorf("skip does not lead to final node")
	}
}

func TestCompileNestedDoFirstActions(t *testing.T) {
	// A do as the first statement of an if option: the if location must
	// offer the do's first actions, and looping back must not re-offer the
	// sibling if option.
	c := mustCompile(t, `
byte x;
proctype P() {
	if
	:: do
	   :: x = x + 1
	   :: x > 5 -> break
	   od
	:: x = 99
	fi
}`)
	p := c.Proc("P")
	entry := p.Nodes[p.Entry]
	if len(entry.Edges) != 3 {
		t.Fatalf("if location has %d edges, want 3 (2 loop options + sibling)", len(entry.Edges))
	}
	// The inner x=x+1 must loop back to a dedicated loop head offering only
	// the two do options (the sibling x=99 must not be re-offered).
	found := false
	for _, e := range entry.Edges {
		if e.Kind == EdgeAssign && len(p.Nodes[e.Dst].Edges) == 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("no assign edge loops back to a dedicated 2-option loop head")
	}
}

func TestCompileEndLabelOnLoopHead(t *testing.T) {
	c := mustCompile(t, `
chan c = [0] of { byte };
proctype P() {
	byte m;
	end: do
	:: c?m
	od
}`)
	p := c.Proc("P")
	if !p.Nodes[p.Entry].EndLabel {
		t.Errorf("entry (end-labeled do head) lacks EndLabel")
	}
	// The loop-back destination must also be a valid end state.
	recv := p.Nodes[p.Entry].Edges[0]
	if !p.Nodes[recv.Dst].EndLabel {
		t.Errorf("loop-back node lacks EndLabel; deadlock detection would misfire")
	}
}

func TestCompileAtomicNodeFlags(t *testing.T) {
	c := mustCompile(t, `
byte g;
proctype P() {
	g = 1;
	atomic { g = 2; g = 3 };
	g = 4
}`)
	p := c.Proc("P")
	// Walk: entry -(g=1)-> n1 -(g=2)-> n2(atomic) -(g=3)-> n3 -(g=4)-> final.
	n1 := p.Nodes[p.Entry].Edges[0].Dst
	if p.Nodes[n1].Atomic {
		t.Errorf("node before atomic entry is atomic")
	}
	n2 := p.Nodes[n1].Edges[0].Dst
	if !p.Nodes[n2].Atomic {
		t.Errorf("node inside atomic is not atomic")
	}
	n3 := p.Nodes[n2].Edges[0].Dst
	if p.Nodes[n3].Atomic {
		t.Errorf("node after atomic exit is atomic")
	}
}

func TestCompileGotoResolution(t *testing.T) {
	c := mustCompile(t, `
byte x;
proctype P() {
	again: x = x + 1;
	goto again
}`)
	p := c.Proc("P")
	e := p.Nodes[p.Entry].Edges[0]
	if e.Kind != EdgeAssign {
		t.Fatalf("entry edge = %v", e.Kind)
	}
	if e.Dst != p.Entry {
		// goto again should bring control straight back to the labeled node
		mid := p.Nodes[e.Dst]
		if len(mid.Edges) != 1 || mid.Edges[0].Dst != p.Entry {
			t.Errorf("goto does not return to labeled node")
		}
	}
}

func TestCompileErrors(t *testing.T) {
	tests := []struct {
		src     string
		wantSub string
	}{
		{"proctype P() { break }", "break outside of do"},
		{"proctype P() { goto nowhere }", "undefined label"},
		{"proctype P() { x = 1 }", "undefined variable"},
		{"proctype P() { c!1 }", "undefined channel"},
		{"chan c = [1] of {byte}; proctype P() { c!1,2 }", "carries 1 fields"},
		{"chan c = [1] of {byte,byte}; proctype P() { byte x; c?x }", "carries 2 fields"},
		{"byte x; byte x;", "already declared"},
		{"mtype = {A}; byte A;", "already declared"},
		{"proctype P() { byte y; byte y; skip }", "already declared in proctype"},
		{"proctype P(byte a, a) { skip }", "duplicate parameter"},
		{"proctype P() { L: skip; L: skip }", "duplicate label"},
		{"proctype P() { A: goto B; B: goto A }", "no executable statement"},
		{"byte x = 1; proctype P() { x }", ""}, // guard on global: fine
	}
	for _, tt := range tests {
		_, err := CompileSource(tt.src)
		if tt.wantSub == "" {
			if err != nil {
				t.Errorf("CompileSource(%q): unexpected error %v", tt.src, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("CompileSource(%q): expected error %q", tt.src, tt.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), tt.wantSub) {
			t.Errorf("CompileSource(%q) error = %v, want substring %q", tt.src, err, tt.wantSub)
		}
	}
}

func TestCompileRecvArgResolution(t *testing.T) {
	c := mustCompile(t, `
mtype = { OK, FAIL };
chan c = [1] of { mtype, byte };
byte g;
proctype P() {
	byte x;
	c?OK,x;
	c?FAIL,g
}`)
	p := c.Proc("P")
	e := p.Nodes[p.Entry].Edges[0]
	if e.Kind != EdgeRecv {
		t.Fatalf("entry edge = %v", e.Kind)
	}
	if e.RecvArgs[0].Kind != RArgMatch {
		t.Errorf("mtype constant OK should resolve to a match, got %v", e.RecvArgs[0].Kind)
	}
	if e.RecvArgs[1].Kind != RArgBind || e.RecvArgs[1].Var.Global {
		t.Errorf("x should bind locally, got %+v", e.RecvArgs[1])
	}
	e2 := p.Nodes[e.Dst].Edges[0]
	if e2.RecvArgs[1].Kind != RArgBind || !e2.RecvArgs[1].Var.Global {
		t.Errorf("g should bind globally, got %+v", e2.RecvArgs[1])
	}
}

func TestCompileChanParamArityDeferred(t *testing.T) {
	// Arity through a chan parameter cannot be checked at compile time and
	// must not error here (model.Spawn validates it).
	mustCompile(t, `proctype P(chan c) { c!1,2,3 }`)
}

func TestCompileLocalChanSlot(t *testing.T) {
	c := mustCompile(t, `
proctype P(chan a) {
	chan buf = [4] of { byte, byte };
	byte x, y;
	buf!1,2;
	buf?x,y
}`)
	p := c.Proc("P")
	if len(p.ChanSlots) != 2 {
		t.Fatalf("ChanSlots = %+v", p.ChanSlots)
	}
	if !p.ChanSlots[0].IsParam || p.ChanSlots[1].IsParam {
		t.Errorf("slot flags = %+v", p.ChanSlots)
	}
	if p.ChanSlots[1].Decl.Cap != 4 || len(p.ChanSlots[1].Decl.Fields) != 2 {
		t.Errorf("local chan decl = %+v", p.ChanSlots[1].Decl)
	}
}

func TestTypeTruncate(t *testing.T) {
	tests := []struct {
		typ  Type
		in   int64
		want int64
	}{
		{TypeBit, 5, 1},
		{TypeBool, 0, 0},
		{TypeByte, 256, 0},
		{TypeByte, 257, 1},
		{TypeByte, -1, 255},
		{TypeShort, 1 << 16, 0},
		{TypeShort, -1, -1},
		{TypeInt, 1 << 32, 0},
		{TypeMtype, 300, 44},
	}
	for _, tt := range tests {
		if got := tt.typ.Truncate(tt.in); got != tt.want {
			t.Errorf("%v.Truncate(%d) = %d, want %d", tt.typ, tt.in, got, tt.want)
		}
	}
}
