package pml

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) *Program {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return prog
}

func TestParseMtype(t *testing.T) {
	prog := mustParse(t, "mtype = { A, B, C };")
	if len(prog.Mtypes) != 3 || prog.Mtypes[0] != "A" || prog.Mtypes[2] != "C" {
		t.Errorf("Mtypes = %v", prog.Mtypes)
	}
}

func TestParseChanDecl(t *testing.T) {
	prog := mustParse(t, "chan c = [3] of { mtype, byte };")
	if len(prog.Chans) != 1 {
		t.Fatalf("Chans = %v", prog.Chans)
	}
	cd := prog.Chans[0]
	if cd.Name != "c" || cd.Cap != 3 || len(cd.Fields) != 2 ||
		cd.Fields[0] != TypeMtype || cd.Fields[1] != TypeByte {
		t.Errorf("chan decl = %+v", cd)
	}
}

func TestParseGlobals(t *testing.T) {
	prog := mustParse(t, "byte x = 3, y; bool flag = true;")
	if len(prog.Globals) != 3 {
		t.Fatalf("Globals = %+v", prog.Globals)
	}
	if prog.Globals[0].Name != "x" || prog.Globals[0].Init == nil {
		t.Errorf("x = %+v", prog.Globals[0])
	}
	if prog.Globals[1].Name != "y" || prog.Globals[1].Init != nil {
		t.Errorf("y = %+v", prog.Globals[1])
	}
	if prog.Globals[2].Type != TypeBool {
		t.Errorf("flag type = %v", prog.Globals[2].Type)
	}
}

func TestParseProctypeParams(t *testing.T) {
	prog := mustParse(t, `proctype P(chan a, b; byte n) { skip }`)
	if len(prog.Procs) != 1 {
		t.Fatal("no proc")
	}
	p := prog.Procs[0]
	if len(p.Params) != 3 {
		t.Fatalf("params = %+v", p.Params)
	}
	if p.Params[0].Type != TypeChan || p.Params[1].Type != TypeChan || p.Params[2].Type != TypeByte {
		t.Errorf("param types = %+v", p.Params)
	}
}

func TestParseActiveProctype(t *testing.T) {
	prog := mustParse(t, `active [4] proctype W() { skip }`)
	if prog.Procs[0].Active != 4 {
		t.Errorf("Active = %d, want 4", prog.Procs[0].Active)
	}
	prog = mustParse(t, `active proctype V() { skip }`)
	if prog.Procs[0].Active != 1 {
		t.Errorf("Active = %d, want 1", prog.Procs[0].Active)
	}
}

func TestParseSendRecv(t *testing.T) {
	prog := mustParse(t, `
chan c = [1] of { mtype, byte };
proctype P() {
	c!1,2;
	c!!3,4;
	c?x,_;
	c??eval(x),5
}`)
	body := prog.Procs[0].Body.Stmts
	if len(body) != 4 {
		t.Fatalf("body = %d stmts", len(body))
	}
	s0 := body[0].(*SendStmt)
	if s0.Sorted || len(s0.Args) != 2 {
		t.Errorf("plain send = %+v", s0)
	}
	s1 := body[1].(*SendStmt)
	if !s1.Sorted {
		t.Errorf("sorted send = %+v", s1)
	}
	r0 := body[2].(*RecvStmt)
	if r0.Random || len(r0.Args) != 2 || r0.Args[0].Kind != ArgIdent || r0.Args[1].Kind != ArgWild {
		t.Errorf("recv = %+v", r0)
	}
	r1 := body[3].(*RecvStmt)
	if !r1.Random || r1.Args[0].Kind != ArgMatch || r1.Args[1].Kind != ArgMatch {
		t.Errorf("random recv = %+v", r1)
	}
}

func TestParseControlFlow(t *testing.T) {
	prog := mustParse(t, `
proctype P() {
	byte x;
	do
	:: x < 3 -> x = x + 1
	:: else -> break
	od;
	if
	:: x == 3 -> skip
	:: x != 3 -> assert(false)
	fi
}`)
	body := prog.Procs[0].Body.Stmts
	if len(body) != 3 {
		t.Fatalf("body = %d stmts", len(body))
	}
	d := body[1].(*DoStmt)
	if len(d.Options) != 2 {
		t.Fatalf("do options = %d", len(d.Options))
	}
	if _, ok := d.Options[1].Stmts[0].(*ElseStmt); !ok {
		t.Errorf("second option should start with else, got %T", d.Options[1].Stmts[0])
	}
	f := body[2].(*IfStmt)
	if len(f.Options) != 2 {
		t.Fatalf("if options = %d", len(f.Options))
	}
}

func TestParseLabelsAndGoto(t *testing.T) {
	prog := mustParse(t, `
proctype P() {
	start: skip;
	goto start
}`)
	body := prog.Procs[0].Body.Stmts
	l, ok := body[0].(*LabeledStmt)
	if !ok || l.Label != "start" {
		t.Fatalf("labeled stmt = %+v", body[0])
	}
	g, ok := body[1].(*GotoStmt)
	if !ok || g.Label != "start" {
		t.Fatalf("goto = %+v", body[1])
	}
}

func TestParseAtomic(t *testing.T) {
	prog := mustParse(t, `
byte g;
proctype P() {
	atomic { g = 1; g = 2 };
	d_step { g = 3 }
}`)
	body := prog.Procs[0].Body.Stmts
	a, ok := body[0].(*AtomicStmt)
	if !ok || len(a.Body.Stmts) != 2 {
		t.Fatalf("atomic = %+v", body[0])
	}
	if _, ok := body[1].(*AtomicStmt); !ok {
		t.Fatalf("d_step = %T", body[1])
	}
}

func TestParsePrecedence(t *testing.T) {
	prog := mustParse(t, "byte x = 1 + 2 * 3;")
	bin := prog.Globals[0].Init.(*Binary)
	if bin.Op != OpAdd {
		t.Fatalf("top op = %v, want +", bin.Op)
	}
	rhs := bin.Y.(*Binary)
	if rhs.Op != OpMul {
		t.Errorf("rhs op = %v, want *", rhs.Op)
	}
}

func TestParseLogicalPrecedence(t *testing.T) {
	prog := mustParse(t, "bool b = 1 == 2 && 3 < 4 || 0;")
	or := prog.Globals[0].Init.(*Binary)
	if or.Op != OpOr {
		t.Fatalf("top op = %v, want ||", or.Op)
	}
	and := or.X.(*Binary)
	if and.Op != OpAnd {
		t.Fatalf("lhs op = %v, want &&", and.Op)
	}
}

func TestParseChanPreds(t *testing.T) {
	prog := mustParse(t, `
chan c = [2] of { byte };
proctype P() {
	(len(c) < 2);
	full(c);
	nempty(c)
}`)
	body := prog.Procs[0].Body.Stmts
	if len(body) != 3 {
		t.Fatalf("body = %d stmts", len(body))
	}
	g := body[1].(*ExprStmt)
	cp, ok := g.X.(*ChanPred)
	if !ok || cp.Op != PredFull || cp.Ch != "c" {
		t.Errorf("full(c) = %+v", g.X)
	}
}

func TestParseGuardStartingWithIdent(t *testing.T) {
	prog := mustParse(t, `
byte x;
proctype P() {
	x > 2 -> x = 0
}`)
	body := prog.Procs[0].Body.Stmts
	if len(body) != 2 {
		t.Fatalf("body = %d stmts, want guard+assign", len(body))
	}
	g, ok := body[0].(*ExprStmt)
	if !ok {
		t.Fatalf("first stmt = %T", body[0])
	}
	if b, ok := g.X.(*Binary); !ok || b.Op != OpGt {
		t.Errorf("guard = %+v", g.X)
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		src     string
		wantSub string
	}{
		{"proctype P() { if fi }", "expected ::"},
		{"proctype P() { do :: od }", "empty option"},
		{"chan c = [x] of {byte};", "expected number"},
		{"proctype P(", "expected type name"},
		{"banana", "expected declaration"},
		{"active [0] proctype P() { skip }", "invalid active instance count"},
		{"chan c = [1] of {chan};", "chan-typed channel fields"},
	}
	for _, tt := range tests {
		_, err := Parse(tt.src)
		if err == nil {
			t.Errorf("Parse(%q): expected error", tt.src)
			continue
		}
		if !strings.Contains(err.Error(), tt.wantSub) {
			t.Errorf("Parse(%q) error = %v, want substring %q", tt.src, err, tt.wantSub)
		}
	}
}

func TestParseSeparatorsInterchangeable(t *testing.T) {
	a := mustParse(t, "proctype P() { skip; skip; skip }")
	b := mustParse(t, "proctype P() { skip -> skip -> skip }")
	if len(a.Procs[0].Body.Stmts) != len(b.Procs[0].Body.Stmts) {
		t.Errorf("separator styles differ: %d vs %d stmts",
			len(a.Procs[0].Body.Stmts), len(b.Procs[0].Body.Stmts))
	}
}

func TestParsePrintf(t *testing.T) {
	prog := mustParse(t, `proctype P() { printf("x=%d", 1+2) }`)
	pf := prog.Procs[0].Body.Stmts[0].(*PrintfStmt)
	if pf.Format != "x=%d" || len(pf.Args) != 1 {
		t.Errorf("printf = %+v", pf)
	}
}
