// Package pml implements a faithful subset of the Promela modeling
// language: the lexer, parser, static resolver, and a compiler that lowers
// process bodies to explicit transition graphs suitable for state-space
// exploration by internal/model and internal/checker.
//
// The subset covers everything the Plug-and-Play building-block models in
// the paper use: mtype declarations, global and proctype-local channels,
// integer-typed variables, proctype parameters (including channel
// parameters), do/if selection with :: options and else, break, goto and
// labels, atomic sections, assert, skip, send (! and sorted !!), receive
// (? and random ??) with eval()/constant matching and wildcard _, and the
// channel predicates len/full/empty/nfull/nempty.
package pml

import "strconv"

// Kind identifies the lexical class of a token.
type Kind int

// Token kinds. Keyword kinds follow the operator kinds.
const (
	EOF Kind = iota + 1
	IDENT
	NUMBER
	STRING

	LBRACE  // {
	RBRACE  // }
	LPAREN  // (
	RPAREN  // )
	LBRACK  // [
	RBRACK  // ]
	SEMI    // ;
	ARROW   // ->
	COMMA   // ,
	COLON   // :
	DCOLON  // ::
	ASSIGN  // =
	BANG    // !
	DBANG   // !!
	QUERY   // ?
	DQUERY  // ??
	PLUS    // +
	MINUS   // -
	STAR    // *
	SLASH   // /
	PERCENT // %
	EQ      // ==
	NEQ     // !=
	LT      // <
	LE      // <=
	GT      // >
	GE      // >=
	AND     // &&
	OR      // ||
	NOT     // ! in expression position (lexed as BANG; parser disambiguates)
	UNDERSCORE

	KwMtype
	KwChan
	KwOf
	KwProctype
	KwActive
	KwIf
	KwFi
	KwDo
	KwOd
	KwAtomic
	KwDstep
	KwBreak
	KwSkip
	KwElse
	KwGoto
	KwAssert
	KwPrintf
	KwEval
	KwLen
	KwFull
	KwEmpty
	KwNfull
	KwNempty
	KwTrue
	KwFalse
	KwBit
	KwBool
	KwByte
	KwShort
	KwInt
	KwPid
	KwTypedef
	KwInit
	KwRun
	KwTimeout
	KwFor
	DOTDOT // ..
)

var kindNames = map[Kind]string{
	EOF:        "end of file",
	IDENT:      "identifier",
	NUMBER:     "number",
	STRING:     "string",
	LBRACE:     "{",
	RBRACE:     "}",
	LPAREN:     "(",
	RPAREN:     ")",
	LBRACK:     "[",
	RBRACK:     "]",
	SEMI:       ";",
	ARROW:      "->",
	COMMA:      ",",
	COLON:      ":",
	DCOLON:     "::",
	ASSIGN:     "=",
	BANG:       "!",
	DBANG:      "!!",
	QUERY:      "?",
	DQUERY:     "??",
	PLUS:       "+",
	MINUS:      "-",
	STAR:       "*",
	SLASH:      "/",
	PERCENT:    "%",
	EQ:         "==",
	NEQ:        "!=",
	LT:         "<",
	LE:         "<=",
	GT:         ">",
	GE:         ">=",
	AND:        "&&",
	OR:         "||",
	UNDERSCORE: "_",
	KwMtype:    "mtype",
	KwChan:     "chan",
	KwOf:       "of",
	KwProctype: "proctype",
	KwActive:   "active",
	KwIf:       "if",
	KwFi:       "fi",
	KwDo:       "do",
	KwOd:       "od",
	KwAtomic:   "atomic",
	KwDstep:    "d_step",
	KwBreak:    "break",
	KwSkip:     "skip",
	KwElse:     "else",
	KwGoto:     "goto",
	KwAssert:   "assert",
	KwPrintf:   "printf",
	KwEval:     "eval",
	KwLen:      "len",
	KwFull:     "full",
	KwEmpty:    "empty",
	KwNfull:    "nfull",
	KwNempty:   "nempty",
	KwTrue:     "true",
	KwFalse:    "false",
	KwBit:      "bit",
	KwBool:     "bool",
	KwByte:     "byte",
	KwShort:    "short",
	KwInt:      "int",
	KwPid:      "_pid",
	KwTypedef:  "typedef",
	KwInit:     "init",
	KwRun:      "run",
	KwTimeout:  "timeout",
	KwFor:      "for",
	DOTDOT:     "..",
}

// String returns a human-readable name for the token kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return "kind(" + strconv.Itoa(int(k)) + ")"
}

var keywords = map[string]Kind{
	"mtype":    KwMtype,
	"chan":     KwChan,
	"of":       KwOf,
	"proctype": KwProctype,
	"active":   KwActive,
	"if":       KwIf,
	"fi":       KwFi,
	"do":       KwDo,
	"od":       KwOd,
	"atomic":   KwAtomic,
	"d_step":   KwDstep,
	"break":    KwBreak,
	"skip":     KwSkip,
	"else":     KwElse,
	"goto":     KwGoto,
	"assert":   KwAssert,
	"printf":   KwPrintf,
	"eval":     KwEval,
	"len":      KwLen,
	"full":     KwFull,
	"empty":    KwEmpty,
	"nfull":    KwNfull,
	"nempty":   KwNempty,
	"true":     KwTrue,
	"false":    KwFalse,
	"bit":      KwBit,
	"bool":     KwBool,
	"byte":     KwByte,
	"short":    KwShort,
	"int":      KwInt,
	"_pid":     KwPid,
	"typedef":  KwTypedef,
	"init":     KwInit,
	"run":      KwRun,
	"timeout":  KwTimeout,
	"for":      KwFor,
}

// Pos is a source position within a pml compilation unit.
type Pos struct {
	Line int
	Col  int
}

// String renders the position as "line:col".
func (p Pos) String() string {
	return strconv.Itoa(p.Line) + ":" + strconv.Itoa(p.Col)
}

// Token is a single lexeme with its source position.
type Token struct {
	Kind Kind
	Text string // raw text for IDENT, NUMBER, STRING
	Pos  Pos
}
