package pml

import (
	"strings"
	"testing"
)

func kinds(toks []Token) []Kind {
	out := make([]Kind, 0, len(toks))
	for _, t := range toks {
		out = append(out, t.Kind)
	}
	return out
}

func TestLexOperators(t *testing.T) {
	tests := []struct {
		src  string
		want []Kind
	}{
		{"! !! ? ??", []Kind{BANG, DBANG, QUERY, DQUERY, EOF}},
		{"-> - :: :", []Kind{ARROW, MINUS, DCOLON, COLON, EOF}},
		{"= == != < <= > >=", []Kind{ASSIGN, EQ, NEQ, LT, LE, GT, GE, EOF}},
		{"&& ||", []Kind{AND, OR, EOF}},
		{"+ * / %", []Kind{PLUS, STAR, SLASH, PERCENT, EOF}},
		{"{ } ( ) [ ] ; ,", []Kind{LBRACE, RBRACE, LPAREN, RPAREN, LBRACK, RBRACK, SEMI, COMMA, EOF}},
	}
	for _, tt := range tests {
		toks, err := Lex(tt.src)
		if err != nil {
			t.Fatalf("Lex(%q): %v", tt.src, err)
		}
		got := kinds(toks)
		if len(got) != len(tt.want) {
			t.Fatalf("Lex(%q) = %v, want %v", tt.src, got, tt.want)
		}
		for i := range got {
			if got[i] != tt.want[i] {
				t.Errorf("Lex(%q)[%d] = %v, want %v", tt.src, i, got[i], tt.want[i])
			}
		}
	}
}

func TestLexKeywordsAndIdents(t *testing.T) {
	toks, err := Lex("proctype foo _pid _ bar_9 mtype")
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{KwProctype, IDENT, KwPid, UNDERSCORE, IDENT, KwMtype, EOF}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
	if toks[1].Text != "foo" || toks[4].Text != "bar_9" {
		t.Errorf("identifier texts = %q, %q", toks[1].Text, toks[4].Text)
	}
}

func TestLexComments(t *testing.T) {
	toks, err := Lex("a /* block\ncomment */ b // line\nc")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 4 { // a b c EOF
		t.Fatalf("got %d tokens, want 4: %v", len(toks), toks)
	}
	if toks[2].Pos.Line != 3 {
		t.Errorf("token c line = %d, want 3", toks[2].Pos.Line)
	}
}

func TestLexString(t *testing.T) {
	toks, err := Lex(`printf("hello %d")`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[2].Kind != STRING || toks[2].Text != "hello %d" {
		t.Errorf("string token = %+v", toks[2])
	}
}

func TestLexErrors(t *testing.T) {
	tests := []struct {
		src     string
		wantSub string
	}{
		{"/* never closed", "unterminated block comment"},
		{`"never closed`, "unterminated string"},
		{"a & b", "unexpected character"},
		{"a | b", "unexpected character"},
		{"a @ b", "unexpected character"},
	}
	for _, tt := range tests {
		_, err := Lex(tt.src)
		if err == nil {
			t.Errorf("Lex(%q): expected error", tt.src)
			continue
		}
		if !strings.Contains(err.Error(), tt.wantSub) {
			t.Errorf("Lex(%q) error = %v, want substring %q", tt.src, err, tt.wantSub)
		}
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := Lex("ab\n  cd")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos != (Pos{Line: 1, Col: 1}) {
		t.Errorf("first token pos = %v", toks[0].Pos)
	}
	if toks[1].Pos != (Pos{Line: 2, Col: 3}) {
		t.Errorf("second token pos = %v", toks[1].Pos)
	}
}

func TestLexNumbers(t *testing.T) {
	toks, err := Lex("0 42 255")
	if err != nil {
		t.Fatal(err)
	}
	wantTexts := []string{"0", "42", "255"}
	for i, w := range wantTexts {
		if toks[i].Kind != NUMBER || toks[i].Text != w {
			t.Errorf("token %d = %+v, want NUMBER %q", i, toks[i], w)
		}
	}
}
