package pml

import (
	"fmt"
	"unicode"
	"unicode/utf8"
)

// SyntaxError reports a lexical or parse error with its source position.
type SyntaxError struct {
	Pos Pos
	Msg string
}

// Error implements the error interface.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("pml: %s: %s", e.Pos, e.Msg)
}

type lexer struct {
	src  string
	off  int
	line int
	col  int
	toks []Token
}

// Lex tokenizes pml source. It returns the token stream, terminated by an
// EOF token, or a *SyntaxError for malformed input.
func Lex(src string) ([]Token, error) {
	lx := &lexer{src: src, line: 1, col: 1}
	if err := lx.run(); err != nil {
		return nil, err
	}
	return lx.toks, nil
}

func (lx *lexer) errf(p Pos, format string, args ...any) error {
	return &SyntaxError{Pos: p, Msg: fmt.Sprintf(format, args...)}
}

func (lx *lexer) peek() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *lexer) peek2() byte {
	if lx.off+1 >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off+1]
}

func (lx *lexer) advance() byte {
	c := lx.src[lx.off]
	lx.off++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *lexer) pos() Pos { return Pos{Line: lx.line, Col: lx.col} }

func (lx *lexer) emit(k Kind, text string, p Pos) {
	lx.toks = append(lx.toks, Token{Kind: k, Text: text, Pos: p})
}

func (lx *lexer) run() error {
	for lx.off < len(lx.src) {
		p := lx.pos()
		c := lx.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '/' && lx.peek2() == '*':
			if err := lx.blockComment(p); err != nil {
				return err
			}
		case c == '/' && lx.peek2() == '/':
			for lx.off < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		case isIdentStart(c):
			lx.ident(p)
		case c >= '0' && c <= '9':
			lx.number(p)
		case c == '"':
			if err := lx.str(p); err != nil {
				return err
			}
		default:
			if err := lx.operator(p); err != nil {
				return err
			}
		}
	}
	lx.emit(EOF, "", lx.pos())
	return nil
}

func (lx *lexer) blockComment(p Pos) error {
	lx.advance() // '/'
	lx.advance() // '*'
	for lx.off < len(lx.src) {
		if lx.peek() == '*' && lx.peek2() == '/' {
			lx.advance()
			lx.advance()
			return nil
		}
		lx.advance()
	}
	return lx.errf(p, "unterminated block comment")
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentCont(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9'
}

func (lx *lexer) ident(p Pos) {
	start := lx.off
	for lx.off < len(lx.src) && isIdentCont(lx.peek()) {
		lx.advance()
	}
	text := lx.src[start:lx.off]
	if text == "_" {
		lx.emit(UNDERSCORE, text, p)
		return
	}
	if k, ok := keywords[text]; ok {
		lx.emit(k, text, p)
		return
	}
	lx.emit(IDENT, text, p)
}

func (lx *lexer) number(p Pos) {
	start := lx.off
	for lx.off < len(lx.src) && lx.peek() >= '0' && lx.peek() <= '9' {
		lx.advance()
	}
	lx.emit(NUMBER, lx.src[start:lx.off], p)
}

func (lx *lexer) str(p Pos) error {
	lx.advance() // opening quote
	start := lx.off
	for lx.off < len(lx.src) {
		if lx.peek() == '"' {
			text := lx.src[start:lx.off]
			lx.advance()
			lx.emit(STRING, text, p)
			return nil
		}
		if lx.peek() == '\n' {
			break
		}
		lx.advance()
	}
	return lx.errf(p, "unterminated string literal")
}

func (lx *lexer) operator(p Pos) error {
	c := lx.advance()
	two := func(next byte, withKind, aloneKind Kind) {
		if lx.peek() == next {
			lx.advance()
			lx.emit(withKind, "", p)
		} else {
			lx.emit(aloneKind, "", p)
		}
	}
	switch c {
	case '{':
		lx.emit(LBRACE, "", p)
	case '}':
		lx.emit(RBRACE, "", p)
	case '(':
		lx.emit(LPAREN, "", p)
	case ')':
		lx.emit(RPAREN, "", p)
	case '[':
		lx.emit(LBRACK, "", p)
	case ']':
		lx.emit(RBRACK, "", p)
	case ';':
		lx.emit(SEMI, "", p)
	case ',':
		lx.emit(COMMA, "", p)
	case '.':
		if lx.peek() != '.' {
			return lx.errf(p, "unexpected character %q (struct fields are not in the subset)", c)
		}
		lx.advance()
		lx.emit(DOTDOT, "", p)
	case '+':
		lx.emit(PLUS, "", p)
	case '*':
		lx.emit(STAR, "", p)
	case '/':
		lx.emit(SLASH, "", p)
	case '%':
		lx.emit(PERCENT, "", p)
	case '-':
		two('>', ARROW, MINUS)
	case ':':
		two(':', DCOLON, COLON)
	case '=':
		two('=', EQ, ASSIGN)
	case '!':
		switch lx.peek() {
		case '=':
			lx.advance()
			lx.emit(NEQ, "", p)
		case '!':
			lx.advance()
			lx.emit(DBANG, "", p)
		default:
			lx.emit(BANG, "", p)
		}
	case '?':
		two('?', DQUERY, QUERY)
	case '<':
		two('=', LE, LT)
	case '>':
		two('=', GE, GT)
	case '&':
		if lx.peek() != '&' {
			return lx.errf(p, "unexpected character %q (bitwise & is not in the subset)", c)
		}
		lx.advance()
		lx.emit(AND, "", p)
	case '|':
		if lx.peek() != '|' {
			return lx.errf(p, "unexpected character %q (bitwise | is not in the subset)", c)
		}
		lx.advance()
		lx.emit(OR, "", p)
	default:
		r, _ := utf8.DecodeRuneInString(string(c))
		if unicode.IsPrint(r) {
			return lx.errf(p, "unexpected character %q", c)
		}
		return lx.errf(p, "unexpected byte 0x%02x", c)
	}
	return nil
}
