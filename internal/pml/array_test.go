package pml

import (
	"strings"
	"testing"
)

func TestArrayDeclarationAndAccess(t *testing.T) {
	c := mustCompile(t, `
byte board[4];
proctype P() {
	byte row[2];
	board[0] = 1;
	board[1] = board[0] + 1;
	row[1] = board[1]
}`)
	if len(c.GlobalVars) != 4 {
		t.Fatalf("GlobalVars = %d, want 4 slots", len(c.GlobalVars))
	}
	if c.GlobalVars[0].Name != "board[0]" || c.GlobalVars[3].Name != "board[3]" {
		t.Errorf("slot names = %v, %v", c.GlobalVars[0].Name, c.GlobalVars[3].Name)
	}
	p := c.Proc("P")
	if len(p.IntVars) != 2 {
		t.Errorf("local slots = %d, want 2", len(p.IntVars))
	}
}

func TestArrayErrors(t *testing.T) {
	tests := []struct {
		src     string
		wantSub string
	}{
		{"byte a[4]; proctype P() { a = 1 }", "used without index"},
		{"byte a[4]; proctype P() { byte x; x = a }", "used without index"},
		{"byte x; proctype P() { x[0] = 1 }", "is not an array"},
		{"byte a[0];", "invalid array length"},
		{"byte a[2] = 3;", "array initializers"},
	}
	for _, tt := range tests {
		_, err := CompileSource(tt.src)
		if err == nil || !strings.Contains(err.Error(), tt.wantSub) {
			t.Errorf("CompileSource(%q) error = %v, want %q", tt.src, err, tt.wantSub)
		}
	}
}

func TestArrayIndexInGuard(t *testing.T) {
	mustCompile(t, `
byte a[3];
proctype P() {
	a[0] == 0 -> a[1] = 1;
	a[a[1]] = 2
}`)
}

func TestForLoopDesugars(t *testing.T) {
	c := mustCompile(t, `
byte a[4];
byte i;
proctype P() {
	for (i : 0 .. 3) {
		a[i] = i
	}
}`)
	if c.Proc("P") == nil {
		t.Fatal("P missing")
	}
}

func TestForLoopErrors(t *testing.T) {
	tests := []string{
		"proctype P() { byte i; for i : 0 .. 3) { skip } }",
		"proctype P() { byte i; for (i = 0 .. 3) { skip } }",
		"proctype P() { byte i; for (i : 0 3) { skip } }",
		"proctype P() { for (j : 0 .. 3) { skip } }", // undeclared loop var
	}
	for _, src := range tests {
		if _, err := CompileSource(src); err == nil {
			t.Errorf("CompileSource(%q): expected error", src)
		}
	}
}
