package pml

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestQuickTruncateIdempotent(t *testing.T) {
	types := []Type{TypeBit, TypeBool, TypeByte, TypeShort, TypeInt, TypeMtype}
	f := func(v int64, typIdx uint8) bool {
		typ := types[int(typIdx)%len(types)]
		once := typ.Truncate(v)
		return typ.Truncate(once) == once
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickTruncateInRange(t *testing.T) {
	f := func(v int64) bool {
		b := TypeByte.Truncate(v)
		s := TypeShort.Truncate(v)
		bit := TypeBit.Truncate(v)
		return b >= 0 && b <= 255 &&
			s >= -32768 && s <= 32767 &&
			(bit == 0 || bit == 1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// exprString renders an expression back to pml syntax, fully
// parenthesized.
func exprString(e Expr) string {
	switch x := e.(type) {
	case *Num:
		if x.Val < 0 {
			return fmt.Sprintf("(0 - %d)", -x.Val)
		}
		return fmt.Sprintf("%d", x.Val)
	case *Ident:
		return x.Name
	case *Unary:
		op := "-"
		if x.Op == OpNot {
			op = "!"
		}
		return "(" + op + exprString(x.X) + ")"
	case *Binary:
		return "(" + exprString(x.X) + " " + x.Op.String() + " " + exprString(x.Y) + ")"
	case *PidExpr:
		return "_pid"
	case *ChanPred:
		return x.Op.String() + "(" + x.Ch + ")"
	default:
		return "?"
	}
}

// randomExprAST builds a random expression over the globals a, b, c.
func randomExprAST(r *rand.Rand, depth int) Expr {
	if depth <= 0 || r.Intn(3) == 0 {
		switch r.Intn(3) {
		case 0:
			return &Num{Val: int64(r.Intn(21) - 10)}
		default:
			return &Ident{Name: string(rune('a' + r.Intn(3)))}
		}
	}
	switch r.Intn(9) {
	case 0:
		return &Unary{Op: OpNeg, X: randomExprAST(r, depth-1)}
	case 1:
		return &Unary{Op: OpNot, X: randomExprAST(r, depth-1)}
	default:
		ops := []BinaryOp{OpAdd, OpSub, OpMul, OpEq, OpNeq, OpLt, OpLe, OpGt, OpGe, OpAnd, OpOr}
		return &Binary{
			Op: ops[r.Intn(len(ops))],
			X:  randomExprAST(r, depth-1),
			Y:  randomExprAST(r, depth-1),
		}
	}
}

type quickEnv struct{ a, b, c int64 }

func (e quickEnv) Global(i int) int64 { return [3]int64{e.a, e.b, e.c}[i] }
func (quickEnv) Local(int) int64      { return 0 }
func (quickEnv) Pid() int64           { return 0 }
func (quickEnv) ChanLen(ChanRef) int  { return 0 }
func (quickEnv) ChanCap(ChanRef) int  { return 0 }
func (quickEnv) Timeout() bool        { return false }

// TestQuickParseRoundTrip: rendering a random expression and re-parsing
// it yields the same evaluation under random environments — exercising
// parser precedence and associativity.
func TestQuickParseRoundTrip(t *testing.T) {
	prog, err := CompileSource("byte a, b, c;")
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 500; i++ {
		ast := randomExprAST(r, 4)
		src := exprString(ast)
		reparsed, err := ParseExpr(src)
		if err != nil {
			t.Fatalf("ParseExpr(%q): %v", src, err)
		}
		orig, err := prog.ResolveGlobalExpr(ast)
		if err != nil {
			t.Fatalf("resolve original %q: %v", src, err)
		}
		back, err := prog.ResolveGlobalExpr(reparsed)
		if err != nil {
			t.Fatalf("resolve reparsed %q: %v", src, err)
		}
		for j := 0; j < 5; j++ {
			env := quickEnv{int64(r.Intn(11) - 5), int64(r.Intn(11) - 5), int64(r.Intn(11) - 5)}
			v1, err1 := Eval(orig, env)
			v2, err2 := Eval(back, env)
			if (err1 == nil) != (err2 == nil) || (err1 == nil && v1 != v2) {
				t.Fatalf("round trip diverged for %q with %+v: (%v,%v) vs (%v,%v)",
					src, env, v1, err1, v2, err2)
			}
		}
	}
}

// TestQuickLexNeverPanics: the lexer returns tokens or an error for any
// input, never panicking, and every returned token stream ends with EOF.
func TestQuickLexNeverPanics(t *testing.T) {
	f := func(src string) bool {
		toks, err := Lex(src)
		if err != nil {
			return true
		}
		return len(toks) > 0 && toks[len(toks)-1].Kind == EOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestQuickParseNeverPanics: arbitrary identifier soup must produce an
// error or a program, never a panic.
func TestQuickParseNeverPanics(t *testing.T) {
	words := []string{
		"proctype", "if", "fi", "do", "od", "::", ";", "->", "{", "}",
		"(", ")", "byte", "chan", "x", "c", "!", "?", "=", "1", "skip",
		"break", "else", "goto", "atomic", "mtype", "of", "[", "]",
	}
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		n := r.Intn(30)
		var sb strings.Builder
		for j := 0; j < n; j++ {
			sb.WriteString(words[r.Intn(len(words))])
			sb.WriteByte(' ')
		}
		_, _ = Parse(sb.String()) // must not panic
	}
}
