package pml

// Type is the declared type of a variable, parameter, or channel field.
type Type int

// Variable and field types. Integer types wrap on assignment exactly like
// Spin truncates stores, which keeps the reachable data space bounded.
const (
	TypeBit Type = iota + 1
	TypeBool
	TypeByte
	TypeShort
	TypeInt
	TypeMtype
	TypeChan
)

var typeNames = map[Type]string{
	TypeBit:   "bit",
	TypeBool:  "bool",
	TypeByte:  "byte",
	TypeShort: "short",
	TypeInt:   "int",
	TypeMtype: "mtype",
	TypeChan:  "chan",
}

// String returns the pml spelling of the type.
func (t Type) String() string {
	if s, ok := typeNames[t]; ok {
		return s
	}
	return "type(?)"
}

// Truncate wraps v to the value range of the type, mirroring Spin's
// store-truncation semantics.
func (t Type) Truncate(v int64) int64 {
	switch t {
	case TypeBit, TypeBool:
		if v != 0 {
			return 1
		}
		return 0
	case TypeByte, TypeMtype:
		return v & 0xff
	case TypeShort:
		return int64(int16(v))
	case TypeInt:
		return int64(int32(v))
	default:
		return v
	}
}

// Program is a parsed pml compilation unit.
type Program struct {
	Mtypes  []string // declaration order; value of Mtypes[i] is i+1
	Chans   []ChanDecl
	Globals []VarDecl
	Procs   []*ProcDecl
}

// ChanDecl declares a channel: `chan name = [cap] of {t1, t2, ...}`.
type ChanDecl struct {
	Name   string
	Cap    int
	Fields []Type
	Pos    Pos
}

// VarDecl declares an integer-family variable, optionally initialized.
// ArrayLen > 0 declares an array of that length (arrays cannot have
// initializers and cannot be parameters).
type VarDecl struct {
	Name     string
	Type     Type
	ArrayLen int
	Init     Expr // nil means zero
	Pos      Pos
}

// ProcDecl is a proctype definition.
type ProcDecl struct {
	Name   string
	Active int // instance count from `active [n] proctype`; 0 if not active
	Params []VarDecl
	Body   *Block
	Pos    Pos
}

// Stmt is implemented by every pml statement node.
type Stmt interface{ stmt() }

// Block is a statement sequence.
type Block struct {
	Stmts []Stmt
}

// DeclStmt is a local variable declaration.
type DeclStmt struct {
	Var VarDecl
}

// ChanDeclStmt is a local channel declaration. Local channels are hoisted
// to instantiation time: each process instance gets a fresh channel.
type ChanDeclStmt struct {
	Decl ChanDecl
}

// AssignStmt is `name = expr` or `name[idx] = expr`.
type AssignStmt struct {
	Name string
	Idx  Expr // nil for scalar targets
	RHS  Expr
	Pos  Pos
}

// SendStmt is `ch!e1,e2` or sorted-send `ch!!e1,e2`.
type SendStmt struct {
	Ch     string
	Sorted bool
	Args   []Expr
	Pos    Pos
}

// RecvArgKind classifies a receive argument.
type RecvArgKind int

// Receive argument kinds. ArgIdent is disambiguated during resolution into
// a variable binding or an mtype-constant match.
const (
	ArgIdent RecvArgKind = iota + 1 // bare identifier: bind or mtype match
	ArgWild                         // _
	ArgMatch                        // eval(expr) or numeric literal
)

// RecvArg is one argument position of a receive statement.
type RecvArg struct {
	Kind RecvArgKind
	Name string // for ArgIdent
	X    Expr   // for ArgMatch
	Pos  Pos
}

// RecvStmt is `ch?a,b` or random-receive `ch??a,b`.
type RecvStmt struct {
	Ch     string
	Random bool
	Args   []RecvArg
	Pos    Pos
}

// IfStmt is `if :: opt ... fi`.
type IfStmt struct {
	Options []*Block
	Pos     Pos
}

// DoStmt is `do :: opt ... od`.
type DoStmt struct {
	Options []*Block
	Pos     Pos
}

// AtomicStmt is `atomic { ... }` or `d_step { ... }` (treated alike).
type AtomicStmt struct {
	Body *Block
	Pos  Pos
}

// BreakStmt exits the innermost do loop.
type BreakStmt struct{ Pos Pos }

// SkipStmt is the always-executable no-op.
type SkipStmt struct{ Pos Pos }

// ElseStmt is executable only when no sibling option is executable.
type ElseStmt struct{ Pos Pos }

// GotoStmt transfers control to a label.
type GotoStmt struct {
	Label string
	Pos   Pos
}

// LabeledStmt attaches a label to a statement. Labels with the prefix
// "end" mark valid end states for deadlock detection, as in Spin.
type LabeledStmt struct {
	Label string
	Stmt  Stmt
	Pos   Pos
}

// AssertStmt is `assert(expr)`.
type AssertStmt struct {
	Cond Expr
	Pos  Pos
}

// PrintfStmt is parsed for compatibility and compiled to a no-op edge
// carrying the format string (used by trace rendering).
type PrintfStmt struct {
	Format string
	Args   []Expr
	Pos    Pos
}

// ExprStmt is an expression used as a guard statement.
type ExprStmt struct {
	X   Expr
	Pos Pos
}

func (*Block) stmt()        {}
func (*DeclStmt) stmt()     {}
func (*ChanDeclStmt) stmt() {}
func (*AssignStmt) stmt()   {}
func (*SendStmt) stmt()     {}
func (*RecvStmt) stmt()     {}
func (*IfStmt) stmt()       {}
func (*DoStmt) stmt()       {}
func (*AtomicStmt) stmt()   {}
func (*BreakStmt) stmt()    {}
func (*SkipStmt) stmt()     {}
func (*ElseStmt) stmt()     {}
func (*GotoStmt) stmt()     {}
func (*LabeledStmt) stmt()  {}
func (*AssertStmt) stmt()   {}
func (*PrintfStmt) stmt()   {}
func (*ExprStmt) stmt()     {}

// Expr is implemented by every pml expression node.
type Expr interface{ expr() }

// Ident references a variable, parameter, or mtype constant by name.
type Ident struct {
	Name string
	Pos  Pos
}

// Index is an array element access `name[idx]`.
type Index struct {
	Name string
	Idx  Expr
	Pos  Pos
}

// Num is an integer literal (true/false lex to 1/0).
type Num struct {
	Val int64
	Pos Pos
}

// UnaryOp is the operator of a Unary expression.
type UnaryOp int

// Unary operators.
const (
	OpNeg UnaryOp = iota + 1 // -x
	OpNot                    // !x
)

// Unary is a unary expression.
type Unary struct {
	Op  UnaryOp
	X   Expr
	Pos Pos
}

// BinaryOp is the operator of a Binary expression.
type BinaryOp int

// Binary operators.
const (
	OpAdd BinaryOp = iota + 1
	OpSub
	OpMul
	OpDiv
	OpMod
	OpEq
	OpNeq
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
)

var binopNames = map[BinaryOp]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "%",
	OpEq: "==", OpNeq: "!=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpAnd: "&&", OpOr: "||",
}

// String returns the pml spelling of the operator.
func (op BinaryOp) String() string { return binopNames[op] }

// Binary is a binary expression.
type Binary struct {
	Op   BinaryOp
	X, Y Expr
	Pos  Pos
}

// ChanPredOp identifies a channel predicate.
type ChanPredOp int

// Channel predicates.
const (
	PredLen ChanPredOp = iota + 1
	PredFull
	PredEmpty
	PredNfull
	PredNempty
)

var chanPredNames = map[ChanPredOp]string{
	PredLen: "len", PredFull: "full", PredEmpty: "empty",
	PredNfull: "nfull", PredNempty: "nempty",
}

// String returns the pml spelling of the predicate.
func (op ChanPredOp) String() string { return chanPredNames[op] }

// ChanPred is `len(ch)`, `full(ch)`, etc.
type ChanPred struct {
	Op  ChanPredOp
	Ch  string
	Pos Pos
}

// PidExpr is the `_pid` builtin: the instance id of the executing process.
type PidExpr struct{ Pos Pos }

// TimeoutExpr is Spin's `timeout` builtin: true exactly when no process
// in the system has any other executable transition — the standard escape
// hatch for modeling timers and recovery from global blocking.
type TimeoutExpr struct{ Pos Pos }

func (*Ident) expr()       {}
func (*Index) expr()       {}
func (*Num) expr()         {}
func (*Unary) expr()       {}
func (*Binary) expr()      {}
func (*ChanPred) expr()    {}
func (*PidExpr) expr()     {}
func (*TimeoutExpr) expr() {}
