package blocks

import (
	"strings"
	"testing"

	"pnp/internal/checker"
	"pnp/internal/model"
	"pnp/internal/pml"
)

func TestLibraryCompiles(t *testing.T) {
	prog, err := pml.CompileSource(LibrarySource)
	if err != nil {
		t.Fatalf("library does not compile: %v", err)
	}
	want := []string{
		"SynBlSendPort", "SynCheckSendPort", "AsynBlSendPort",
		"AsynCheckSendPort", "AsynNbSendPort",
		"BlRecvPort", "NbRecvPort",
		"SingleSlotChannel", "FifoChannel", "PriorityChannel", "DroppingChannel",
		"LossyChannel",
		"PnPSender", "PnPReceiver",
	}
	for _, name := range want {
		if prog.Proc(name) == nil {
			t.Errorf("library lacks proctype %s", name)
		}
	}
	for _, sig := range []string{"SEND_SUCC", "SEND_FAIL", "IN_OK", "IN_FAIL",
		"OUT_OK", "OUT_FAIL", "RECV_OK", "RECV_SUCC", "RECV_FAIL"} {
		if _, ok := prog.MtypeValue(sig); !ok {
			t.Errorf("library lacks signal %s", sig)
		}
	}
}

func TestConnectorSpecValidate(t *testing.T) {
	good := ConnectorSpec{Send: SynBlockingSend, Channel: FIFOQueue, Size: 5, Recv: BlockingRecv}
	if err := good.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	bad := []ConnectorSpec{
		{Send: 0, Channel: SingleSlot, Recv: BlockingRecv},
		{Send: SynBlockingSend, Channel: 0, Recv: BlockingRecv},
		{Send: SynBlockingSend, Channel: SingleSlot, Recv: 0},
		{Send: SynBlockingSend, Channel: FIFOQueue, Size: 0, Recv: BlockingRecv},
		{Send: SynBlockingSend, Channel: FIFOQueue, Size: 99, Recv: BlockingRecv},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

func TestSpecPlugOperations(t *testing.T) {
	s := ConnectorSpec{Send: AsynBlockingSend, Channel: SingleSlot, Recv: BlockingRecv}
	s2 := s.WithSend(SynBlockingSend)
	if s2.Send != SynBlockingSend || s2.Channel != SingleSlot || s2.Recv != BlockingRecv {
		t.Errorf("WithSend = %+v", s2)
	}
	if s.Send != AsynBlockingSend {
		t.Errorf("WithSend mutated the receiver")
	}
	s3 := s.WithChannel(FIFOQueue, 5).WithRecv(NonblockingRecv)
	if s3.Channel != FIFOQueue || s3.Size != 5 || s3.Recv != NonblockingRecv {
		t.Errorf("chained plugs = %+v", s3)
	}
	if got := s3.String(); !strings.Contains(got, "FifoChannel(5)") {
		t.Errorf("String = %q", got)
	}
}

// buildPipe composes sender -> connector -> receiver with PnP library
// components, sending n messages with the given tag.
func buildPipe(t *testing.T, spec ConnectorSpec, n int) *Builder {
	t.Helper()
	b, err := NewBuilder("", nil)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := b.NewConnector("pipe", spec)
	if err != nil {
		t.Fatal(err)
	}
	snd, err := conn.AddSender("producer")
	if err != nil {
		t.Fatal(err)
	}
	rcv, err := conn.AddReceiver("consumer")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Spawn("PnPSender", model.Chan(snd.Sig), model.Chan(snd.Dat),
		model.Int(int64(n)), model.Int(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Spawn("PnPReceiver", model.Chan(rcv.Sig), model.Chan(rcv.Dat),
		model.Int(int64(n))); err != nil {
		t.Fatal(err)
	}
	return b
}

func TestPipeVerifiesAcrossPortMatrix(t *testing.T) {
	// Every send port x recv port over a single-slot channel moves two
	// messages without deadlock or assertion failure.
	sends := []SendPortKind{AsynNonblockingSend, AsynBlockingSend, AsynCheckingSend,
		SynBlockingSend, SynCheckingSend}
	recvs := []RecvPortKind{BlockingRecv, NonblockingRecv}
	for _, sp := range sends {
		for _, rp := range recvs {
			spec := ConnectorSpec{Send: sp, Channel: SingleSlot, Recv: rp}
			b := buildPipe(t, spec, 2)
			res := checker.New(b.System(), checker.Options{}).CheckSafety()
			// Checking and nonblocking ports surface failure statuses the
			// stock components retry through or ignore; the pipe must never
			// deadlock. (The PnP sender ignores SEND_FAIL, so with checking
			// ports a message can be lost and the receiver then waits
			// forever; that waiting is a live busy retry, not a deadlock.)
			if !res.OK && res.Kind == checker.Deadlock {
				t.Errorf("%s: deadlock:\n%s", spec, res.Trace)
			}
			if !res.OK && res.Kind == checker.Assertion {
				t.Errorf("%s: assertion: %s", spec, res.Message)
			}
		}
	}
}

func TestPipeDeliversAllMessages(t *testing.T) {
	// With blocking ports and a FIFO buffer nothing is lost: the system
	// terminates with every process at a valid end state.
	spec := ConnectorSpec{Send: AsynBlockingSend, Channel: FIFOQueue, Size: 2, Recv: BlockingRecv}
	b := buildPipe(t, spec, 3)
	res := checker.New(b.System(), checker.Options{}).CheckSafety()
	if !res.OK {
		t.Fatalf("pipe failed: %s\n%s", res.Summary(), res.Trace)
	}
}

// orderingWitness explores the system tracking whether an event containing
// `early` can occur on some path before any event containing `late`.
func orderingWitness(t *testing.T, sys *model.System, early, late string, maxStates int) bool {
	t.Helper()
	type node struct {
		st       *model.State
		lateSeen bool
	}
	visited := map[string]bool{}
	start := node{st: sys.InitialState()}
	queue := []node{start}
	visited[start.st.Key()+"|f"] = true
	for len(queue) > 0 {
		if len(visited) > maxStates {
			t.Fatalf("ordering search exceeded %d states", maxStates)
		}
		cur := queue[0]
		queue = queue[1:]
		for _, tr := range sys.Successors(cur.st) {
			if tr.Violation != "" {
				continue
			}
			label := sys.FormatTransition(tr)
			if strings.Contains(label, early) && !cur.lateSeen {
				return true
			}
			next := node{st: tr.Next, lateSeen: cur.lateSeen || strings.Contains(label, late)}
			suffix := "|f"
			if next.lateSeen {
				suffix = "|t"
			}
			key := next.st.Key() + suffix
			if visited[key] {
				continue
			}
			visited[key] = true
			queue = append(queue, next)
		}
	}
	return false
}

// TestFig4AsyncOrdering and TestFig4SyncOrdering reproduce the paper's
// Figure 4 scenarios: with an asynchronous blocking send the component may
// observe SEND_SUCC before the receiver has the message (before RECV_OK);
// with a synchronous blocking send it never does.
func TestFig4AsyncOrdering(t *testing.T) {
	spec := ConnectorSpec{Send: AsynBlockingSend, Channel: SingleSlot, Recv: BlockingRecv}
	b := buildPipe(t, spec, 1)
	if !orderingWitness(t, b.System(), "SEND_SUCC", "RECV_OK", 200000) {
		t.Error("async blocking send: no path delivers SEND_SUCC before RECV_OK")
	}
}

func TestFig4SyncOrdering(t *testing.T) {
	spec := ConnectorSpec{Send: SynBlockingSend, Channel: SingleSlot, Recv: BlockingRecv}
	b := buildPipe(t, spec, 1)
	if orderingWitness(t, b.System(), "SEND_SUCC", "RECV_OK", 200000) {
		t.Error("sync blocking send: SEND_SUCC observed before RECV_OK")
	}
}

func TestCheckingPortReportsSendFail(t *testing.T) {
	// A checking send into a full single-slot buffer with no receiver must
	// surface SEND_FAIL to the component.
	src := `
byte fails;
proctype CheckSender(chan portSig; chan portDat) {
	mtype st;
	portDat!1,0,0,0,1;
	portSig?st,_;
	portDat!2,0,0,0,1;
	portSig?st,_;
	if
	:: st == SEND_FAIL -> fails = 1
	:: else
	fi
}`
	b, err := NewBuilder(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	spec := ConnectorSpec{Send: AsynCheckingSend, Channel: SingleSlot, Recv: BlockingRecv}
	conn, err := b.NewConnector("c", spec)
	if err != nil {
		t.Fatal(err)
	}
	snd, err := conn.AddSender("s")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Spawn("CheckSender", model.Chan(snd.Sig), model.Chan(snd.Dat)); err != nil {
		t.Fatal(err)
	}
	inv, err := checker.InvariantFromSource(b.Program(), "neverFails", "fails == 0")
	if err != nil {
		t.Fatal(err)
	}
	res := checker.New(b.System(), checker.Options{Invariants: []checker.Invariant{inv}}).CheckSafety()
	if res.OK || res.Kind != checker.InvariantViolation {
		t.Fatalf("expected SEND_FAIL witness, got %s", res.Summary())
	}
}

func TestDroppingChannelLosesMessages(t *testing.T) {
	// The sender fires both messages into the buffer before the receiver
	// starts (the receiver is gated on allSent). With a dropping buffer of
	// size 1 the second message is discarded, so got==2 is unreachable;
	// with a FIFO of size 2 both survive and got==2 is reachable.
	src := `
byte got, allSent;
proctype GatedSender(chan portSig; chan portDat) {
	mtype st;
	portDat!1,0,0,0,1;
	portSig?st,_;
	portDat!2,0,0,0,1;
	portSig?st,_;
	allSent = 1
}
proctype GatedReceiver(chan portSig; chan portDat) {
	mtype st;
	byte d, sid, sd;
	bit sel, rem;
	allSent == 1;
	do
	:: got < 2 ->
	   portDat!0,0,0,0,1;
	   portSig?st,_;
	   portDat?d,sid,sd,sel,rem;
	   if
	   :: st == RECV_SUCC -> got = got + 1
	   :: else
	   fi
	:: else -> break
	od
}`
	build := func(ch ChannelKind, size int) *Builder {
		b, err := NewBuilder(src, nil)
		if err != nil {
			t.Fatal(err)
		}
		// Blocking send: the sender cannot set allSent until both messages
		// have actually entered the channel, making the drop deterministic.
		spec := ConnectorSpec{Send: AsynBlockingSend, Channel: ch, Size: size, Recv: BlockingRecv}
		conn, err := b.NewConnector("c", spec)
		if err != nil {
			t.Fatal(err)
		}
		snd, err := conn.AddSender("s")
		if err != nil {
			t.Fatal(err)
		}
		rcv, err := conn.AddReceiver("r")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := b.Spawn("GatedSender", model.Chan(snd.Sig), model.Chan(snd.Dat)); err != nil {
			t.Fatal(err)
		}
		if _, err := b.Spawn("GatedReceiver", model.Chan(rcv.Sig), model.Chan(rcv.Dat)); err != nil {
			t.Fatal(err)
		}
		return b
	}
	reachableGotBoth := func(b *Builder) bool {
		target, err := b.Program().CompileGlobalExpr("got == 2")
		if err != nil {
			t.Fatal(err)
		}
		res := checker.New(b.System(), checker.Options{}).CheckReachable(target)
		return res.OK
	}

	if reachableGotBoth(build(DroppingBuffer, 1)) {
		t.Error("dropping buffer of size 1: got==2 should be unreachable (one message dropped)")
	}
	if !reachableGotBoth(build(FIFOQueue, 2)) {
		t.Error("FIFO of size 2: got==2 should be reachable (nothing dropped)")
	}
}

func TestSelectiveReceiveFromFifo(t *testing.T) {
	src := `
byte sel2, sel1;
byte allSent;
proctype TwoTagSender(chan portSig; chan portDat) {
	mtype st;
	portDat!10,0,1,0,1;
	portSig?st,_;
	portDat!20,0,2,0,1;
	portSig?st,_;
	allSent = 1
}
proctype SelReceiver(chan portSig; chan portDat) {
	mtype st;
	byte d, sid, sd;
	bit sel, rem;
	allSent == 1;
	portDat!0,0,2,1,1;
	portSig?st,_;
	portDat?d,sid,sd,sel,rem;
	sel2 = d;
	portDat!0,0,1,1,1;
	portSig?st,_;
	portDat?d,sid,sd,sel,rem;
	sel1 = d
}`
	b, err := NewBuilder(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	spec := ConnectorSpec{Send: AsynBlockingSend, Channel: FIFOQueue, Size: 2, Recv: BlockingRecv}
	conn, err := b.NewConnector("c", spec)
	if err != nil {
		t.Fatal(err)
	}
	snd, _ := conn.AddSender("s")
	rcv, _ := conn.AddReceiver("r")
	if _, err := b.Spawn("TwoTagSender", model.Chan(snd.Sig), model.Chan(snd.Dat)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Spawn("SelReceiver", model.Chan(rcv.Sig), model.Chan(rcv.Dat)); err != nil {
		t.Fatal(err)
	}
	target, err := b.Program().CompileGlobalExpr("sel2 == 20 && sel1 == 10")
	if err != nil {
		t.Fatal(err)
	}
	res := checker.New(b.System(), checker.Options{}).CheckReachable(target)
	if !res.OK {
		t.Fatalf("selective receive failed: %s", res.Summary())
	}
}

func TestPriorityChannelOrdersDeliveries(t *testing.T) {
	src := `
byte allSent;
byte g1, g2, g3;
proctype PrioSender(chan portSig; chan portDat) {
	mtype st;
	portDat!3,0,3,0,1;
	portSig?st,_;
	portDat!1,0,1,0,1;
	portSig?st,_;
	portDat!2,0,2,0,1;
	portSig?st,_;
	allSent = 1
}
proctype PrioReceiver(chan portSig; chan portDat) {
	mtype st;
	byte d, sid, sd;
	bit sel, rem;
	allSent == 1;
	portDat!0,0,0,0,1;
	portSig?st,_;
	portDat?d,sid,sd,sel,rem;
	g1 = d;
	portDat!0,0,0,0,1;
	portSig?st,_;
	portDat?d,sid,sd,sel,rem;
	g2 = d;
	portDat!0,0,0,0,1;
	portSig?st,_;
	portDat?d,sid,sd,sel,rem;
	g3 = d
}`
	b, err := NewBuilder(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	spec := ConnectorSpec{Send: AsynBlockingSend, Channel: PriorityQueue, Size: 3, Recv: BlockingRecv}
	conn, err := b.NewConnector("c", spec)
	if err != nil {
		t.Fatal(err)
	}
	snd, _ := conn.AddSender("s")
	rcv, _ := conn.AddReceiver("r")
	if _, err := b.Spawn("PrioSender", model.Chan(snd.Sig), model.Chan(snd.Dat)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Spawn("PrioReceiver", model.Chan(rcv.Sig), model.Chan(rcv.Dat)); err != nil {
		t.Fatal(err)
	}
	target, err := b.Program().CompileGlobalExpr("g1 == 1 && g2 == 2 && g3 == 3")
	if err != nil {
		t.Fatal(err)
	}
	res := checker.New(b.System(), checker.Options{}).CheckReachable(target)
	if !res.OK {
		t.Fatalf("priority delivery order wrong: %s", res.Summary())
	}
	// Priority must always be respected: the first delivery is never the
	// lowest-priority message.
	inv, err := checker.InvariantFromSource(b.Program(), "prio", "g1 != 3")
	if err != nil {
		t.Fatal(err)
	}
	res2 := checker.New(b.System(), checker.Options{Invariants: []checker.Invariant{inv}}).CheckSafety()
	if !res2.OK {
		t.Fatalf("priority inverted: %s\n%s", res2.Summary(), res2.Trace)
	}
}

// TestDeliveryEventualityUnderFairness documents the fairness semantics
// of the retry-loop port models precisely: the starvation cycle (send
// port retries IN_FAIL forever while the receive port never forwards) is
// *weakly* fair, because the receive port is only intermittently enabled
// — the channel disables it during each retry round trip. So even under
// weak fairness (Spin's -f would agree) the eventuality fails, and the
// right delivery property is the fairness-independent AG EF goal, which
// holds.
func TestDeliveryEventualityUnderFairness(t *testing.T) {
	src := `
byte got;
proctype CountReceiver(chan portSig; chan portDat) {
	mtype st;
	byte d, sid, sd;
	bit sel, rem;
	do
	:: got < 2 ->
	   portDat!0,0,0,0,1;
	   portSig?st,_;
	   portDat?d,sid,sd,sel,rem;
	   if
	   :: st == RECV_SUCC -> got = got + 1
	   :: else
	   fi
	:: else -> break
	od
}`
	b, err := NewBuilder(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	spec := ConnectorSpec{Send: AsynBlockingSend, Channel: SingleSlot, Recv: BlockingRecv}
	conn, err := b.NewConnector("c", spec)
	if err != nil {
		t.Fatal(err)
	}
	snd, err := conn.AddSender("s")
	if err != nil {
		t.Fatal(err)
	}
	rcv, err := conn.AddReceiver("r")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Spawn("PnPSender", model.Chan(snd.Sig), model.Chan(snd.Dat),
		model.Int(2), model.Int(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Spawn("CountReceiver", model.Chan(rcv.Sig), model.Chan(rcv.Dat)); err != nil {
		t.Fatal(err)
	}
	props, err := checker.PropsFromSource(b.Program(), map[string]string{"gotBoth": "got == 2"})
	if err != nil {
		t.Fatal(err)
	}
	unfair := checker.New(b.System(), checker.Options{}).CheckLTL("<> gotBoth", props)
	if unfair.OK {
		t.Fatal("without fairness <>gotBoth should fail (retry-loop starvation)")
	}
	fair := checker.New(b.System(), checker.Options{WeakFairness: true}).CheckLTL("<> gotBoth", props)
	if fair.OK {
		t.Log("note: weak fairness sufficed here (scheduling resolved the retry race)")
	} else if fair.Kind != checker.AcceptanceCycle {
		t.Fatalf("unexpected failure kind: %s", fair.Summary())
	}
	// The fairness-independent delivery property: completion always stays
	// reachable.
	target, err := b.Program().CompileGlobalExpr("got == 2")
	if err != nil {
		t.Fatal(err)
	}
	goal := checker.New(b.System(), checker.Options{}).CheckEventuallyReachable(target)
	if !goal.OK {
		t.Fatalf("AG EF gotBoth should hold: %s", goal.Summary())
	}
	// And under STRONG fairness the plain eventuality is provable: the
	// receive port is enabled infinitely often in the starvation cycle's
	// SCC, so it must eventually move and delivery completes.
	sf := checker.New(b.System(), checker.Options{}).CheckLTLStrongFair("<> gotBoth", props)
	if !sf.OK {
		t.Fatalf("under strong fairness <>gotBoth should hold: %s\n%s", sf.Summary(), sf.Trace)
	}
}

func TestCacheReuse(t *testing.T) {
	cache := NewCache()
	if _, err := NewBuilder("", cache); err != nil {
		t.Fatal(err)
	}
	if _, err := NewBuilder("", cache); err != nil {
		t.Fatal(err)
	}
	hits, misses := cache.Stats()
	if misses != 1 || hits != 1 {
		t.Errorf("cache stats = %d hits, %d misses; want 1, 1", hits, misses)
	}
	// Different component source compiles fresh.
	if _, err := NewBuilder("proctype X(chan a; chan b) { skip }", cache); err != nil {
		t.Fatal(err)
	}
	_, misses = cache.Stats()
	if misses != 2 {
		t.Errorf("misses = %d, want 2", misses)
	}
}

func TestBuilderRejectsBadComponentSource(t *testing.T) {
	if _, err := NewBuilder("proctype Broken( {", nil); err == nil {
		t.Error("bad component source accepted")
	}
}

func TestMultipleSendersShareChannel(t *testing.T) {
	// Two senders, one receiver over one FIFO connector: all four messages
	// arrive (the receiver counts to 4), no deadlock.
	src := `
byte got;
proctype Counter(chan portSig; chan portDat) {
	mtype st;
	byte d, sid, sd;
	bit sel, rem;
	do
	:: got < 4 ->
	   portDat!0,0,0,0,1;
	   portSig?st,_;
	   portDat?d,sid,sd,sel,rem;
	   if
	   :: st == RECV_SUCC -> got = got + 1
	   :: else
	   fi
	:: else -> break
	od
}`
	b, err := NewBuilder(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	spec := ConnectorSpec{Send: AsynBlockingSend, Channel: FIFOQueue, Size: 2, Recv: BlockingRecv}
	conn, err := b.NewConnector("c", spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"s1", "s2"} {
		ep, err := conn.AddSender(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := b.Spawn("PnPSender", model.Chan(ep.Sig), model.Chan(ep.Dat),
			model.Int(2), model.Int(0)); err != nil {
			t.Fatal(err)
		}
	}
	rcv, err := conn.AddReceiver("r")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Spawn("Counter", model.Chan(rcv.Sig), model.Chan(rcv.Dat)); err != nil {
		t.Fatal(err)
	}
	res := checker.New(b.System(), checker.Options{}).CheckSafety()
	if !res.OK {
		t.Fatalf("two-sender FIFO failed: %s\n%s", res.Summary(), res.Trace)
	}
	target, err := b.Program().CompileGlobalExpr("got == 4")
	if err != nil {
		t.Fatal(err)
	}
	res2 := checker.New(b.System(), checker.Options{}).CheckReachable(target)
	if !res2.OK {
		t.Fatalf("not all messages delivered: %s", res2.Summary())
	}
}
