// Package blocks is the paper's library of pre-defined, reusable connector
// building blocks (its Figure 1 catalog), each with a pre-built formal
// model in pml mirroring the paper's Figures 5-11, plus a composition API
// that wires components, ports, and channels into verifiable systems.
//
// Message shape: the paper's typedefs are flattened into channel tuples.
//
//	SynChan.signal -> chan [0] of { mtype, byte }         (signal, port_pid)
//	SynChan.data   -> chan [0] of { byte, byte, byte, bit, bit }
//	                  (data, sender_id, selectiveData, selective, remove)
//
// Deliberate deviations from the paper's figures, all needed to make the
// models deadlock-free and multi-port safe (documented per DESIGN.md):
//
//   - Channels tag data deliveries with the requesting receive port's pid
//     (instead of the original sender id), so several receive ports can
//     share one channel without stealing each other's deliveries.
//   - Send ports drain stray RECV_OK notifications at their idle points;
//     copy-receives deliver a message repeatedly, so a channel may emit
//     more RECV_OK signals than a sync port waits for.
//   - The FIFO and priority channels hold their buffers in a local pml
//     channel with static capacity 8; the `size` parameter bounds the
//     logical capacity (1..8). A copy-receive on the FIFO moves the
//     delivered message to the back of the buffer.
package blocks

// Signal is the shared signal alphabet of the building-block protocols,
// exactly the mtype of the paper's Figure 6.
const signalMtype = `
mtype = { SEND_SUCC, SEND_FAIL, IN_OK, IN_FAIL, OUT_OK, OUT_FAIL,
          RECV_OK, RECV_SUCC, RECV_FAIL };
`

// sendPorts holds the five send-port models of the Figure 1 catalog.
const sendPorts = `
/* Synchronous blocking send port (paper Fig. 6): confirms to the
 * component only after the message has been stored AND delivered. */
proctype SynBlSendPort(chan compSig; chan compDat; chan chSig; chan chDat) {
	byte d, sid, sd;
	bit sel, rem;
	end: do
	:: chSig?RECV_OK,eval(_pid)
	:: compDat?d,sid,sd,sel,rem;
	   do
	   :: chDat!d,_pid,sd,sel,rem;
	      if
	      :: chSig?IN_OK,eval(_pid) -> break
	      :: chSig?IN_FAIL,eval(_pid)
	      fi
	   :: chSig?RECV_OK,eval(_pid)
	   od;
	   chSig?RECV_OK,eval(_pid);
	   compSig!SEND_SUCC,0
	od
}

/* Synchronous checking send port: like the synchronous blocking port but
 * reports SEND_FAIL instead of retrying when the channel is full. */
proctype SynCheckSendPort(chan compSig; chan compDat; chan chSig; chan chDat) {
	byte d, sid, sd;
	bit sel, rem;
	end: do
	:: chSig?RECV_OK,eval(_pid)
	:: compDat?d,sid,sd,sel,rem;
	   do
	   :: chDat!d,_pid,sd,sel,rem -> break
	   :: chSig?RECV_OK,eval(_pid)
	   od;
	   if
	   :: chSig?IN_OK,eval(_pid) ->
	      chSig?RECV_OK,eval(_pid);
	      compSig!SEND_SUCC,0
	   :: chSig?IN_FAIL,eval(_pid) ->
	      compSig!SEND_FAIL,0
	   fi
	od
}

/* Asynchronous blocking send port: confirms once the message is stored in
 * the channel; retries while the buffer is full. */
proctype AsynBlSendPort(chan compSig; chan compDat; chan chSig; chan chDat) {
	byte d, sid, sd;
	bit sel, rem;
	end: do
	:: chSig?RECV_OK,eval(_pid)
	:: compDat?d,sid,sd,sel,rem;
	   do
	   :: chDat!d,_pid,sd,sel,rem;
	      if
	      :: chSig?IN_OK,eval(_pid) -> break
	      :: chSig?IN_FAIL,eval(_pid)
	      fi
	   :: chSig?RECV_OK,eval(_pid)
	   od;
	   compSig!SEND_SUCC,0
	od
}

/* Asynchronous checking send port: reports IN_FAIL to the component as
 * SEND_FAIL instead of retrying. */
proctype AsynCheckSendPort(chan compSig; chan compDat; chan chSig; chan chDat) {
	byte d, sid, sd;
	bit sel, rem;
	end: do
	:: chSig?RECV_OK,eval(_pid)
	:: compDat?d,sid,sd,sel,rem;
	   do
	   :: chDat!d,_pid,sd,sel,rem -> break
	   :: chSig?RECV_OK,eval(_pid)
	   od;
	   if
	   :: chSig?IN_OK,eval(_pid) -> compSig!SEND_SUCC,0
	   :: chSig?IN_FAIL,eval(_pid) -> compSig!SEND_FAIL,0
	   fi
	od
}

/* Asynchronous nonblocking send port (paper Fig. 7): confirms immediately,
 * then forwards; all channel signals are drained and ignored. */
proctype AsynNbSendPort(chan compSig; chan compDat; chan chSig; chan chDat) {
	byte d, sid, sd;
	bit sel, rem;
	end: do
	:: chSig?_,eval(_pid)
	:: compDat?d,sid,sd,sel,rem;
	   compSig!SEND_SUCC,0;
	   do
	   :: chDat!d,_pid,sd,sel,rem -> break
	   :: chSig?_,eval(_pid)
	   od
	od
}
`

// recvPorts holds the receive-port models.
const recvPorts = `
/* Blocking receive port (paper Fig. 8): retries the request until the
 * channel delivers, then confirms RECV_SUCC followed by the message. */
proctype BlRecvPort(chan compSig; chan compDat; chan chSig; chan chDat) {
	byte qd, qsid, qsd;
	bit qsel, qrem;
	byte d, sid, sd;
	bit sel, rem;
	end: do
	:: compDat?qd,qsid,qsd,qsel,qrem;
	   do
	   :: chDat!qd,_pid,qsd,qsel,qrem;
	      if
	      :: chSig?OUT_OK,eval(_pid) ->
	         chDat?d,eval(_pid),sd,sel,rem;
	         break
	      :: chSig?OUT_FAIL,eval(_pid)
	      fi
	   od;
	   compSig!RECV_SUCC,0;
	   compDat!d,sid,sd,sel,rem
	od
}

/* Nonblocking receive port: reports RECV_FAIL with an empty stub message
 * when the channel has nothing to deliver. */
proctype NbRecvPort(chan compSig; chan compDat; chan chSig; chan chDat) {
	byte qd, qsid, qsd;
	bit qsel, qrem;
	byte d, sid, sd;
	bit sel, rem;
	end: do
	:: compDat?qd,qsid,qsd,qsel,qrem;
	   chDat!qd,_pid,qsd,qsel,qrem;
	   if
	   :: chSig?OUT_OK,eval(_pid) ->
	      chDat?d,eval(_pid),sd,sel,rem;
	      compSig!RECV_SUCC,0;
	      compDat!d,sid,sd,sel,rem
	   :: chSig?OUT_FAIL,eval(_pid) ->
	      compSig!RECV_FAIL,0;
	      compDat!0,0,0,0,0
	   fi
	od
}
`

// channels holds the channel (storage medium) models.
const channelBlocks = `
/* Single-slot buffer channel (paper Fig. 11): holds one message, supports
 * selective and copy/remove receives, notifies IN_FAIL when full and
 * OUT_FAIL when a request cannot be met. */
proctype SingleSlotChannel(chan sndSig; chan sndDat; chan rcvSig; chan rcvDat) {
	byte rqd, rqpid, rqsd;
	bit rqsel, rqrem;
	byte md, msid, msd;
	bit msel, mrem;
	byte bd, bsid, bsd;
	bit bsel, brem;
	bool buffer_empty = 1;
	end: do
	:: rcvDat?rqd,rqpid,rqsd,rqsel,rqrem;
	   if
	   :: (!buffer_empty && !rqsel) || (!buffer_empty && rqsel && bsd == rqsd) ->
	      rcvSig!OUT_OK,rqpid;
	      rcvDat!bd,rqpid,bsd,bsel,brem;
	      sndSig!RECV_OK,bsid;
	      if
	      :: rqrem -> buffer_empty = 1
	      :: else
	      fi
	   :: else ->
	      rcvSig!OUT_FAIL,rqpid
	   fi
	:: sndDat?md,msid,msd,msel,mrem;
	   if
	   :: buffer_empty ->
	      sndSig!IN_OK,msid;
	      bd = md; bsid = msid; bsd = msd; bsel = msel; brem = mrem;
	      buffer_empty = 0
	   :: else ->
	      sndSig!IN_FAIL,msid
	   fi
	od
}

/* FIFO queue channel of logical size 1..8: stores and delivers messages in
 * first-in-first-out order. */
proctype FifoChannel(chan sndSig; chan sndDat; chan rcvSig; chan rcvDat; byte size) {
	chan buf = [8] of { byte, byte, byte, bit, bit };
	byte rqd, rqpid, rqsd;
	bit rqsel, rqrem;
	byte md, msid, msd;
	bit msel, mrem;
	byte bd, bsid, bsd;
	bit bsel, brem;
	end: do
	:: rcvDat?rqd,rqpid,rqsd,rqsel,rqrem;
	   if
	   :: rqsel ->
	      if
	      :: buf??bd,bsid,eval(rqsd),bsel,brem ->
	         rcvSig!OUT_OK,rqpid;
	         rcvDat!bd,rqpid,rqsd,bsel,brem;
	         sndSig!RECV_OK,bsid;
	         if
	         :: !rqrem -> buf!bd,bsid,rqsd,bsel,brem
	         :: else
	         fi
	      :: else ->
	         rcvSig!OUT_FAIL,rqpid
	      fi
	   :: else ->
	      if
	      :: buf?bd,bsid,bsd,bsel,brem ->
	         rcvSig!OUT_OK,rqpid;
	         rcvDat!bd,rqpid,bsd,bsel,brem;
	         sndSig!RECV_OK,bsid;
	         if
	         :: !rqrem -> buf!bd,bsid,bsd,bsel,brem
	         :: else
	         fi
	      :: else ->
	         rcvSig!OUT_FAIL,rqpid
	      fi
	   fi
	:: sndDat?md,msid,msd,msel,mrem;
	   if
	   :: len(buf) < size ->
	      sndSig!IN_OK,msid;
	      buf!md,msid,msd,msel,mrem
	   :: else ->
	      sndSig!IN_FAIL,msid
	   fi
	od
}

/* Priority queue channel of logical size 1..8: the selectiveData field is
 * the priority (lower value = higher priority); delivery takes the highest
 * priority message first. */
proctype PriorityChannel(chan sndSig; chan sndDat; chan rcvSig; chan rcvDat; byte size) {
	chan buf = [8] of { byte, byte, byte, bit, bit };
	byte rqd, rqpid, rqsd;
	bit rqsel, rqrem;
	byte md, msid, msd;
	bit msel, mrem;
	byte bd, bsid, bsd;
	bit bsel, brem;
	end: do
	:: rcvDat?rqd,rqpid,rqsd,rqsel,rqrem;
	   if
	   :: rqsel ->
	      if
	      :: buf??eval(rqsd),bd,bsid,bsel,brem ->
	         rcvSig!OUT_OK,rqpid;
	         rcvDat!bd,rqpid,rqsd,bsel,brem;
	         sndSig!RECV_OK,bsid;
	         if
	         :: !rqrem -> buf!!rqsd,bd,bsid,bsel,brem
	         :: else
	         fi
	      :: else ->
	         rcvSig!OUT_FAIL,rqpid
	      fi
	   :: else ->
	      if
	      :: buf?bsd,bd,bsid,bsel,brem ->
	         rcvSig!OUT_OK,rqpid;
	         rcvDat!bd,rqpid,bsd,bsel,brem;
	         sndSig!RECV_OK,bsid;
	         if
	         :: !rqrem -> buf!!bsd,bd,bsid,bsel,brem
	         :: else
	         fi
	      :: else ->
	         rcvSig!OUT_FAIL,rqpid
	      fi
	   fi
	:: sndDat?md,msid,msd,msel,mrem;
	   if
	   :: len(buf) < size ->
	      sndSig!IN_OK,msid;
	      buf!!msd,md,msid,msel,mrem
	   :: else ->
	      sndSig!IN_FAIL,msid
	   fi
	od
}

/* Dropping buffer channel (paper Sec. 3.3): silently discards messages
 * that arrive while the buffer is full, confirming IN_OK regardless. */
proctype DroppingChannel(chan sndSig; chan sndDat; chan rcvSig; chan rcvDat; byte size) {
	chan buf = [8] of { byte, byte, byte, bit, bit };
	byte rqd, rqpid, rqsd;
	bit rqsel, rqrem;
	byte md, msid, msd;
	bit msel, mrem;
	byte bd, bsid, bsd;
	bit bsel, brem;
	end: do
	:: rcvDat?rqd,rqpid,rqsd,rqsel,rqrem;
	   if
	   :: rqsel ->
	      if
	      :: buf??bd,bsid,eval(rqsd),bsel,brem ->
	         rcvSig!OUT_OK,rqpid;
	         rcvDat!bd,rqpid,rqsd,bsel,brem;
	         sndSig!RECV_OK,bsid;
	         if
	         :: !rqrem -> buf!bd,bsid,rqsd,bsel,brem
	         :: else
	         fi
	      :: else ->
	         rcvSig!OUT_FAIL,rqpid
	      fi
	   :: else ->
	      if
	      :: buf?bd,bsid,bsd,bsel,brem ->
	         rcvSig!OUT_OK,rqpid;
	         rcvDat!bd,rqpid,bsd,bsel,brem;
	         sndSig!RECV_OK,bsid;
	         if
	         :: !rqrem -> buf!bd,bsid,bsd,bsel,brem
	         :: else
	         fi
	      :: else ->
	         rcvSig!OUT_FAIL,rqpid
	      fi
	   fi
	:: sndDat?md,msid,msd,msel,mrem;
	   if
	   :: len(buf) < size ->
	      sndSig!IN_OK,msid;
	      buf!md,msid,msd,msel,mrem
	   :: else ->
	      sndSig!IN_OK,msid
	   fi
	od
}

/* Lossy FIFO channel: an unreliable transmission medium. Every message
 * is acknowledged IN_OK, then nondeterministically delivered faithfully,
 * dropped in transit, or duplicated (when two slots are free) — the
 * fault classes the runtime's fault plans inject. Distinct from
 * DroppingChannel, which loses messages only on buffer overflow. */
proctype LossyChannel(chan sndSig; chan sndDat; chan rcvSig; chan rcvDat; byte size) {
	chan buf = [8] of { byte, byte, byte, bit, bit };
	byte rqd, rqpid, rqsd;
	bit rqsel, rqrem;
	byte md, msid, msd;
	bit msel, mrem;
	byte bd, bsid, bsd;
	bit bsel, brem;
	end: do
	:: rcvDat?rqd,rqpid,rqsd,rqsel,rqrem;
	   if
	   :: rqsel ->
	      if
	      :: buf??bd,bsid,eval(rqsd),bsel,brem ->
	         rcvSig!OUT_OK,rqpid;
	         rcvDat!bd,rqpid,rqsd,bsel,brem;
	         sndSig!RECV_OK,bsid;
	         if
	         :: !rqrem -> buf!bd,bsid,rqsd,bsel,brem
	         :: else
	         fi
	      :: else ->
	         rcvSig!OUT_FAIL,rqpid
	      fi
	   :: else ->
	      if
	      :: buf?bd,bsid,bsd,bsel,brem ->
	         rcvSig!OUT_OK,rqpid;
	         rcvDat!bd,rqpid,bsd,bsel,brem;
	         sndSig!RECV_OK,bsid;
	         if
	         :: !rqrem -> buf!bd,bsid,bsd,bsel,brem
	         :: else
	         fi
	      :: else ->
	         rcvSig!OUT_FAIL,rqpid
	      fi
	   fi
	:: sndDat?md,msid,msd,msel,mrem;
	   sndSig!IN_OK,msid;
	   if
	   :: skip /* lost in transit */
	   :: len(buf) < size ->
	      buf!md,msid,msd,msel,mrem
	   :: len(buf) + 1 < size ->
	      buf!md,msid,msd,msel,mrem;
	      buf!md,msid,msd,msel,mrem /* duplicated in transit */
	   fi
	od
}
`

// componentTemplates holds generic sender/receiver component models using
// the paper's standard interfaces (Figs. 9 and 10). They are the stock
// components used by tests and the semantics-matrix experiment; real
// systems supply their own component models.
const componentTemplates = `
/* A sending component (paper Fig. 9): sends n messages with payloads
 * 1..n and tag, waiting for SendStatus after each. done_senders counts
 * completions for test observability. */
proctype PnPSender(chan portSig; chan portDat; byte n; byte tag) {
	byte i = 0;
	mtype st;
	do
	:: i < n ->
	   portDat!i + 1,0,tag,0,1;
	   portSig?st,_;
	   i = i + 1
	:: else -> break
	od
}

/* A receiving component (paper Fig. 10): issues receive requests until it
 * has accepted n messages; a RECV_FAIL stub is discarded and retried. */
proctype PnPReceiver(chan portSig; chan portDat; byte n) {
	byte i = 0;
	mtype st;
	byte d, sid, sd;
	bit sel, rem;
	do
	:: i < n ->
	   portDat!0,0,0,0,1;
	   portSig?st,_;
	   portDat?d,sid,sd,sel,rem;
	   if
	   :: st == RECV_SUCC -> i = i + 1
	   :: else
	   fi
	:: else -> break
	od
}
`

// LibrarySourcePlain is the paper-literal block library: every protocol
// step is a separate interleaving point, exactly as in the paper's
// Figures 5-11. It exists for fidelity and for the state-explosion
// ablation (experiment E13); real verification runs should use
// LibrarySource, whose models are semantically equivalent but merged.
const LibrarySourcePlain = signalMtype + sendPorts + recvPorts + channelBlocks + componentTemplates

// optChannelBlocks contains the optimized channel models: the paper's
// Section 6 observes that decomposing connectors into port and channel
// processes inflates the state space and proposes optimized models for
// common connectors. Here the channel-internal handling of each request
// (guard evaluation, reply signal, buffer update) runs as an atomic/d_step
// sequence. Ports and channels never touch user globals, so merging their
// private steps preserves every reachable global-state valuation as well
// as all deadlocks (atomicity is released whenever the sequence blocks).
const optChannelBlocks = `
proctype SingleSlotChannel(chan sndSig; chan sndDat; chan rcvSig; chan rcvDat) {
	byte rqd, rqpid, rqsd;
	bit rqsel, rqrem;
	byte md, msid, msd;
	bit msel, mrem;
	byte bd, bsid, bsd;
	bit bsel, brem;
	bool buffer_empty = 1;
	end: do
	:: rcvDat?rqd,rqpid,rqsd,rqsel,rqrem;
	   atomic {
	     if
	     :: (!buffer_empty && !rqsel) || (!buffer_empty && rqsel && bsd == rqsd) ->
	        rcvSig!OUT_OK,rqpid;
	        rcvDat!bd,rqpid,bsd,bsel,brem;
	        sndSig!RECV_OK,bsid;
	        if
	        :: rqrem -> buffer_empty = 1
	        :: else
	        fi
	     :: else ->
	        rcvSig!OUT_FAIL,rqpid
	     fi
	   }
	:: sndDat?md,msid,msd,msel,mrem;
	   atomic {
	     if
	     :: buffer_empty ->
	        sndSig!IN_OK,msid;
	        d_step { bd = md; bsid = msid; bsd = msd; bsel = msel; brem = mrem; buffer_empty = 0 }
	     :: else ->
	        sndSig!IN_FAIL,msid
	     fi
	   }
	od
}

proctype FifoChannel(chan sndSig; chan sndDat; chan rcvSig; chan rcvDat; byte size) {
	chan buf = [8] of { byte, byte, byte, bit, bit };
	byte rqd, rqpid, rqsd;
	bit rqsel, rqrem;
	byte md, msid, msd;
	bit msel, mrem;
	byte bd, bsid, bsd;
	bit bsel, brem;
	end: do
	:: rcvDat?rqd,rqpid,rqsd,rqsel,rqrem;
	   atomic {
	     if
	     :: rqsel ->
	        if
	        :: buf??bd,bsid,eval(rqsd),bsel,brem ->
	           rcvSig!OUT_OK,rqpid;
	           rcvDat!bd,rqpid,rqsd,bsel,brem;
	           sndSig!RECV_OK,bsid;
	           if
	           :: !rqrem -> buf!bd,bsid,rqsd,bsel,brem
	           :: else
	           fi
	        :: else ->
	           rcvSig!OUT_FAIL,rqpid
	        fi
	     :: else ->
	        if
	        :: buf?bd,bsid,bsd,bsel,brem ->
	           rcvSig!OUT_OK,rqpid;
	           rcvDat!bd,rqpid,bsd,bsel,brem;
	           sndSig!RECV_OK,bsid;
	           if
	           :: !rqrem -> buf!bd,bsid,bsd,bsel,brem
	           :: else
	           fi
	        :: else ->
	           rcvSig!OUT_FAIL,rqpid
	        fi
	     fi
	   }
	:: sndDat?md,msid,msd,msel,mrem;
	   atomic {
	     if
	     :: len(buf) < size ->
	        sndSig!IN_OK,msid;
	        buf!md,msid,msd,msel,mrem
	     :: else ->
	        sndSig!IN_FAIL,msid
	     fi
	   }
	od
}

proctype PriorityChannel(chan sndSig; chan sndDat; chan rcvSig; chan rcvDat; byte size) {
	chan buf = [8] of { byte, byte, byte, bit, bit };
	byte rqd, rqpid, rqsd;
	bit rqsel, rqrem;
	byte md, msid, msd;
	bit msel, mrem;
	byte bd, bsid, bsd;
	bit bsel, brem;
	end: do
	:: rcvDat?rqd,rqpid,rqsd,rqsel,rqrem;
	   atomic {
	     if
	     :: rqsel ->
	        if
	        :: buf??eval(rqsd),bd,bsid,bsel,brem ->
	           rcvSig!OUT_OK,rqpid;
	           rcvDat!bd,rqpid,rqsd,bsel,brem;
	           sndSig!RECV_OK,bsid;
	           if
	           :: !rqrem -> buf!!rqsd,bd,bsid,bsel,brem
	           :: else
	           fi
	        :: else ->
	           rcvSig!OUT_FAIL,rqpid
	        fi
	     :: else ->
	        if
	        :: buf?bsd,bd,bsid,bsel,brem ->
	           rcvSig!OUT_OK,rqpid;
	           rcvDat!bd,rqpid,bsd,bsel,brem;
	           sndSig!RECV_OK,bsid;
	           if
	           :: !rqrem -> buf!!bsd,bd,bsid,bsel,brem
	           :: else
	           fi
	        :: else ->
	           rcvSig!OUT_FAIL,rqpid
	        fi
	     fi
	   }
	:: sndDat?md,msid,msd,msel,mrem;
	   atomic {
	     if
	     :: len(buf) < size ->
	        sndSig!IN_OK,msid;
	        buf!!msd,md,msid,msel,mrem
	     :: else ->
	        sndSig!IN_FAIL,msid
	     fi
	   }
	od
}

proctype DroppingChannel(chan sndSig; chan sndDat; chan rcvSig; chan rcvDat; byte size) {
	chan buf = [8] of { byte, byte, byte, bit, bit };
	byte rqd, rqpid, rqsd;
	bit rqsel, rqrem;
	byte md, msid, msd;
	bit msel, mrem;
	byte bd, bsid, bsd;
	bit bsel, brem;
	end: do
	:: rcvDat?rqd,rqpid,rqsd,rqsel,rqrem;
	   atomic {
	     if
	     :: rqsel ->
	        if
	        :: buf??bd,bsid,eval(rqsd),bsel,brem ->
	           rcvSig!OUT_OK,rqpid;
	           rcvDat!bd,rqpid,rqsd,bsel,brem;
	           sndSig!RECV_OK,bsid;
	           if
	           :: !rqrem -> buf!bd,bsid,rqsd,bsel,brem
	           :: else
	           fi
	        :: else ->
	           rcvSig!OUT_FAIL,rqpid
	        fi
	     :: else ->
	        if
	        :: buf?bd,bsid,bsd,bsel,brem ->
	           rcvSig!OUT_OK,rqpid;
	           rcvDat!bd,rqpid,bsd,bsel,brem;
	           sndSig!RECV_OK,bsid;
	           if
	           :: !rqrem -> buf!bd,bsid,bsd,bsel,brem
	           :: else
	           fi
	        :: else ->
	           rcvSig!OUT_FAIL,rqpid
	        fi
	     fi
	   }
	:: sndDat?md,msid,msd,msel,mrem;
	   atomic {
	     if
	     :: len(buf) < size ->
	        sndSig!IN_OK,msid;
	        buf!md,msid,msd,msel,mrem
	     :: else ->
	        sndSig!IN_OK,msid
	     fi
	   }
	od
}

proctype LossyChannel(chan sndSig; chan sndDat; chan rcvSig; chan rcvDat; byte size) {
	chan buf = [8] of { byte, byte, byte, bit, bit };
	byte rqd, rqpid, rqsd;
	bit rqsel, rqrem;
	byte md, msid, msd;
	bit msel, mrem;
	byte bd, bsid, bsd;
	bit bsel, brem;
	end: do
	:: rcvDat?rqd,rqpid,rqsd,rqsel,rqrem;
	   atomic {
	     if
	     :: rqsel ->
	        if
	        :: buf??bd,bsid,eval(rqsd),bsel,brem ->
	           rcvSig!OUT_OK,rqpid;
	           rcvDat!bd,rqpid,rqsd,bsel,brem;
	           sndSig!RECV_OK,bsid;
	           if
	           :: !rqrem -> buf!bd,bsid,rqsd,bsel,brem
	           :: else
	           fi
	        :: else ->
	           rcvSig!OUT_FAIL,rqpid
	        fi
	     :: else ->
	        if
	        :: buf?bd,bsid,bsd,bsel,brem ->
	           rcvSig!OUT_OK,rqpid;
	           rcvDat!bd,rqpid,bsd,bsel,brem;
	           sndSig!RECV_OK,bsid;
	           if
	           :: !rqrem -> buf!bd,bsid,bsd,bsel,brem
	           :: else
	           fi
	        :: else ->
	           rcvSig!OUT_FAIL,rqpid
	        fi
	     fi
	   }
	:: sndDat?md,msid,msd,msel,mrem;
	   atomic {
	     sndSig!IN_OK,msid;
	     if
	     :: skip
	     :: len(buf) < size ->
	        buf!md,msid,msd,msel,mrem
	     :: len(buf) + 1 < size ->
	        buf!md,msid,msd,msel,mrem;
	        buf!md,msid,msd,msel,mrem
	     fi
	   }
	od
}
`

// optPorts contains optimized port models: the component-facing reply
// sequences are merged so that forwarding a message and relaying its
// status do not interleave with unrelated processes.
const optSendPorts = `
proctype SynBlSendPort(chan compSig; chan compDat; chan chSig; chan chDat) {
	byte d, sid, sd;
	bit sel, rem;
	end: do
	:: chSig?RECV_OK,eval(_pid)
	:: compDat?d,sid,sd,sel,rem;
	   atomic {
	     do
	     :: chDat!d,_pid,sd,sel,rem;
	        if
	        :: chSig?IN_OK,eval(_pid) -> break
	        :: chSig?IN_FAIL,eval(_pid)
	        fi
	     :: chSig?RECV_OK,eval(_pid)
	     od;
	     chSig?RECV_OK,eval(_pid);
	     compSig!SEND_SUCC,0
	   }
	od
}

proctype SynCheckSendPort(chan compSig; chan compDat; chan chSig; chan chDat) {
	byte d, sid, sd;
	bit sel, rem;
	end: do
	:: chSig?RECV_OK,eval(_pid)
	:: compDat?d,sid,sd,sel,rem;
	   atomic {
	     do
	     :: chDat!d,_pid,sd,sel,rem -> break
	     :: chSig?RECV_OK,eval(_pid)
	     od;
	     if
	     :: chSig?IN_OK,eval(_pid) ->
	        chSig?RECV_OK,eval(_pid);
	        compSig!SEND_SUCC,0
	     :: chSig?IN_FAIL,eval(_pid) ->
	        compSig!SEND_FAIL,0
	     fi
	   }
	od
}

proctype AsynBlSendPort(chan compSig; chan compDat; chan chSig; chan chDat) {
	byte d, sid, sd;
	bit sel, rem;
	end: do
	:: chSig?RECV_OK,eval(_pid)
	:: compDat?d,sid,sd,sel,rem;
	   atomic {
	     do
	     :: chDat!d,_pid,sd,sel,rem;
	        if
	        :: chSig?IN_OK,eval(_pid) -> break
	        :: chSig?IN_FAIL,eval(_pid)
	        fi
	     :: chSig?RECV_OK,eval(_pid)
	     od;
	     compSig!SEND_SUCC,0
	   }
	od
}

proctype AsynCheckSendPort(chan compSig; chan compDat; chan chSig; chan chDat) {
	byte d, sid, sd;
	bit sel, rem;
	end: do
	:: chSig?RECV_OK,eval(_pid)
	:: compDat?d,sid,sd,sel,rem;
	   atomic {
	     do
	     :: chDat!d,_pid,sd,sel,rem -> break
	     :: chSig?RECV_OK,eval(_pid)
	     od;
	     if
	     :: chSig?IN_OK,eval(_pid) -> compSig!SEND_SUCC,0
	     :: chSig?IN_FAIL,eval(_pid) -> compSig!SEND_FAIL,0
	     fi
	   }
	od
}

proctype AsynNbSendPort(chan compSig; chan compDat; chan chSig; chan chDat) {
	byte d, sid, sd;
	bit sel, rem;
	end: do
	:: chSig?_,eval(_pid)
	:: compDat?d,sid,sd,sel,rem;
	   atomic {
	     compSig!SEND_SUCC,0;
	     do
	     :: chDat!d,_pid,sd,sel,rem -> break
	     :: chSig?_,eval(_pid)
	     od
	   }
	od
}
`

const optRecvPorts = `
proctype BlRecvPort(chan compSig; chan compDat; chan chSig; chan chDat) {
	byte qd, qsid, qsd;
	bit qsel, qrem;
	byte d, sid, sd;
	bit sel, rem;
	end: do
	:: compDat?qd,qsid,qsd,qsel,qrem;
	   atomic {
	     do
	     :: chDat!qd,_pid,qsd,qsel,qrem;
	        if
	        :: chSig?OUT_OK,eval(_pid) ->
	           chDat?d,eval(_pid),sd,sel,rem;
	           break
	        :: chSig?OUT_FAIL,eval(_pid)
	        fi
	     od;
	     compSig!RECV_SUCC,0;
	     compDat!d,sid,sd,sel,rem
	   }
	od
}

proctype NbRecvPort(chan compSig; chan compDat; chan chSig; chan chDat) {
	byte qd, qsid, qsd;
	bit qsel, qrem;
	byte d, sid, sd;
	bit sel, rem;
	end: do
	:: compDat?qd,qsid,qsd,qsel,qrem;
	   atomic {
	     chDat!qd,_pid,qsd,qsel,qrem;
	     if
	     :: chSig?OUT_OK,eval(_pid) ->
	        chDat?d,eval(_pid),sd,sel,rem;
	        compSig!RECV_SUCC,0;
	        compDat!d,sid,sd,sel,rem
	     :: chSig?OUT_FAIL,eval(_pid) ->
	        compSig!RECV_FAIL,0;
	        compDat!0,0,0,0,0
	     fi
	   }
	od
}
`

// LibrarySource is the default building-block library: the same protocols
// as LibrarySourcePlain with channel- and port-internal sequences merged
// into atomic steps (the paper's Section 6 optimization). Verification
// verdicts are identical; state counts are far smaller.
const LibrarySource = signalMtype + optSendPorts + optRecvPorts + optChannelBlocks + componentTemplates
