package blocks

import (
	"fmt"
	"sync"
	"testing"
)

// TestCacheConcurrentCompile hammers one shared Cache from many
// goroutines mixing repeat and distinct sources — the access pattern a
// verification service produces, where every submission compiles its
// component models through the same cache. Run with -race; correctness
// here is "same source yields the same compiled program, and the
// hit/miss accounting adds up".
func TestCacheConcurrentCompile(t *testing.T) {
	cache := NewCache()
	// A handful of distinct component sources, each compiled by several
	// goroutines at once.
	const distinct = 4
	srcs := make([]string, distinct)
	for i := range srcs {
		srcs[i] = fmt.Sprintf("byte x%d;\nproctype P%d() { x%d = %d }\n", i, i, i, i)
	}

	const workers = 16
	const rounds = 25
	progs := make([][]any, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				src := srcs[(w+r)%distinct]
				p, err := cache.Compile(src)
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				progs[w] = append(progs[w], p)
			}
		}(w)
	}
	wg.Wait()

	// Every compile of the same source must have returned the identical
	// *pml.Compiled (memoization, not recompilation).
	canonical := make(map[string]any, distinct)
	for _, src := range srcs {
		p, err := cache.Compile(src)
		if err != nil {
			t.Fatal(err)
		}
		canonical[src] = p
	}
	for w := 0; w < workers; w++ {
		for r, p := range progs[w] {
			if want := canonical[srcs[(w+r)%distinct]]; p != want {
				t.Fatalf("worker %d round %d: got a different compilation of the same source", w, r)
			}
		}
	}

	hits, misses := cache.Stats()
	if misses != distinct {
		t.Errorf("misses = %d, want %d (one compile per distinct source)", misses, distinct)
	}
	if want := workers*rounds + distinct - misses; hits != want {
		t.Errorf("hits = %d, want %d", hits, want)
	}
}

// TestBuilderConcurrentConstruction composes independent builders in
// parallel over one shared cache, the way concurrent service jobs do.
func TestBuilderConcurrentConstruction(t *testing.T) {
	cache := NewCache()
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			b, err := NewBuilder("", cache)
			if err != nil {
				t.Errorf("worker %d: %v", w, err)
				return
			}
			spec := ConnectorSpec{Send: AsynBlockingSend, Channel: FIFOQueue, Size: 2, Recv: BlockingRecv}
			conn, err := b.NewConnector("c", spec)
			if err != nil {
				t.Errorf("worker %d: %v", w, err)
				return
			}
			if _, err := conn.AddSender("s"); err != nil {
				t.Errorf("worker %d: %v", w, err)
			}
			if _, err := conn.AddReceiver("r"); err != nil {
				t.Errorf("worker %d: %v", w, err)
			}
		}(w)
	}
	wg.Wait()
	if hits, misses := cache.Stats(); misses != 1 || hits != workers-1 {
		t.Errorf("hits=%d misses=%d, want one compile shared by all %d builders", hits, misses, workers)
	}
}
