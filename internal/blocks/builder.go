package blocks

import (
	"fmt"
	"sync"

	"pnp/internal/model"
	"pnp/internal/pml"
)

// SendPortKind selects one of the library's send ports (paper Fig. 1).
type SendPortKind int

// Send port kinds.
const (
	AsynNonblockingSend SendPortKind = iota + 1
	AsynBlockingSend
	AsynCheckingSend
	SynBlockingSend
	SynCheckingSend
)

var sendPortProcs = map[SendPortKind]string{
	AsynNonblockingSend: "AsynNbSendPort",
	AsynBlockingSend:    "AsynBlSendPort",
	AsynCheckingSend:    "AsynCheckSendPort",
	SynBlockingSend:     "SynBlSendPort",
	SynCheckingSend:     "SynCheckSendPort",
}

// String returns the proctype name of the port model.
func (k SendPortKind) String() string { return sendPortProcs[k] }

var sendPortTokens = map[SendPortKind]string{
	AsynNonblockingSend: "asyn-nonblocking",
	AsynBlockingSend:    "asyn-blocking",
	AsynCheckingSend:    "asyn-checking",
	SynBlockingSend:     "syn-blocking",
	SynCheckingSend:     "syn-checking",
}

// Token returns the canonical ADL keyword for the kind ("syn-blocking"),
// the spelling the adl package parses and the sweep engine emits when it
// rewrites a connector clause.
func (k SendPortKind) Token() string { return sendPortTokens[k] }

// RecvPortKind selects one of the library's receive ports. Copy/remove and
// selective variants are chosen per-request through the standard interface
// flags, as in the paper.
type RecvPortKind int

// Receive port kinds.
const (
	BlockingRecv RecvPortKind = iota + 1
	NonblockingRecv
)

var recvPortProcs = map[RecvPortKind]string{
	BlockingRecv:    "BlRecvPort",
	NonblockingRecv: "NbRecvPort",
}

// String returns the proctype name of the port model.
func (k RecvPortKind) String() string { return recvPortProcs[k] }

var recvPortTokens = map[RecvPortKind]string{
	BlockingRecv:    "blocking",
	NonblockingRecv: "nonblocking",
}

// Token returns the canonical ADL keyword for the kind ("blocking").
func (k RecvPortKind) Token() string { return recvPortTokens[k] }

// ChannelKind selects one of the library's channels.
type ChannelKind int

// Channel kinds.
const (
	SingleSlot ChannelKind = iota + 1
	FIFOQueue
	PriorityQueue
	DroppingBuffer
	// LossyBuffer is an unreliable FIFO medium: messages are confirmed
	// IN_OK and then nondeterministically delivered, dropped in transit,
	// or duplicated — the formal counterpart of a runtime fault plan.
	// DroppingBuffer, by contrast, loses messages only on overflow.
	LossyBuffer
)

var channelProcs = map[ChannelKind]string{
	SingleSlot:     "SingleSlotChannel",
	FIFOQueue:      "FifoChannel",
	PriorityQueue:  "PriorityChannel",
	DroppingBuffer: "DroppingChannel",
	LossyBuffer:    "LossyChannel",
}

// String returns the proctype name of the channel model.
func (k ChannelKind) String() string { return channelProcs[k] }

var channelTokens = map[ChannelKind]string{
	SingleSlot:     "single-slot",
	FIFOQueue:      "fifo",
	PriorityQueue:  "priority",
	DroppingBuffer: "dropping",
	LossyBuffer:    "lossy",
}

// Token returns the canonical ADL keyword for the kind ("fifo"); sized
// kinds are written with their size, as in "fifo(2)".
func (k ChannelKind) Token() string { return channelTokens[k] }

// sized reports whether the channel kind takes a size parameter.
func (k ChannelKind) sized() bool { return k != SingleSlot }

// Sized reports whether the channel kind takes a size parameter.
func (k ChannelKind) Sized() bool { return k.sized() }

// MaxBufSize is the static capacity of the sized channel models; their
// logical size parameter must be 1..MaxBufSize.
const MaxBufSize = 8

// ConnectorSpec describes a connector as the composition of a send port
// kind, a channel kind (with logical buffer size where applicable), and a
// receive port kind — the paper's plug-and-play triple.
type ConnectorSpec struct {
	Send    SendPortKind
	Channel ChannelKind
	Size    int // logical buffer size for sized channels (default 1)
	Recv    RecvPortKind
}

// WithSend returns a copy of the spec with the send port replaced — the
// paper's "plug" operation.
func (s ConnectorSpec) WithSend(k SendPortKind) ConnectorSpec { s.Send = k; return s }

// WithChannel returns a copy with the channel replaced.
func (s ConnectorSpec) WithChannel(k ChannelKind, size int) ConnectorSpec {
	s.Channel, s.Size = k, size
	return s
}

// WithRecv returns a copy with the receive port replaced.
func (s ConnectorSpec) WithRecv(k RecvPortKind) ConnectorSpec { s.Recv = k; return s }

// Validate checks the spec refers to known blocks and a legal size.
func (s ConnectorSpec) Validate() error {
	if _, ok := sendPortProcs[s.Send]; !ok {
		return fmt.Errorf("blocks: unknown send port kind %d", s.Send)
	}
	if _, ok := recvPortProcs[s.Recv]; !ok {
		return fmt.Errorf("blocks: unknown receive port kind %d", s.Recv)
	}
	if _, ok := channelProcs[s.Channel]; !ok {
		return fmt.Errorf("blocks: unknown channel kind %d", s.Channel)
	}
	if s.Channel.sized() {
		if s.Size < 1 || s.Size > MaxBufSize {
			return fmt.Errorf("blocks: channel size %d out of range 1..%d", s.Size, MaxBufSize)
		}
	}
	return nil
}

// String renders the spec, e.g. "SynBlSendPort--FifoChannel(5)--BlRecvPort".
func (s ConnectorSpec) String() string {
	if s.Channel.sized() {
		return fmt.Sprintf("%s--%s(%d)--%s", s.Send, s.Channel, s.Size, s.Recv)
	}
	return fmt.Sprintf("%s--%s--%s", s.Send, s.Channel, s.Recv)
}

// Token renders the spec in its canonical ADL spelling, e.g.
// "send=syn-blocking;channel=fifo(2);recv=blocking". This is the
// canonical source text of a connector module: two ADL clauses that
// parse to the same spec render the same token, so they share one
// module fingerprint however they were written.
func (s ConnectorSpec) Token() string {
	ch := s.Channel.Token()
	if s.Channel.sized() {
		ch = fmt.Sprintf("%s(%d)", ch, s.Size)
	}
	return fmt.Sprintf("send=%s;channel=%s;recv=%s", s.Send.Token(), ch, s.Recv.Token())
}

// Cache memoizes compiled pml programs by source text, modeling the
// paper's reuse of pre-defined building-block models across verification
// runs. It is safe for concurrent use.
//
// Deprecated: the cache is unbounded and process-local. Services should
// compose through internal/adl's modular load path backed by an
// artifact.Store, which bounds memory, persists across restarts, and
// tracks per-module reuse; Cache remains for in-process callers and the
// experiment harnesses.
type Cache struct {
	mu     sync.Mutex
	m      map[string]*pml.Compiled
	hits   int
	misses int
}

// NewCache creates an empty model cache.
func NewCache() *Cache { return &Cache{m: make(map[string]*pml.Compiled)} }

// Compile returns the compiled form of src, reusing a previous compilation
// when available.
func (c *Cache) Compile(src string) (*pml.Compiled, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if p, ok := c.m[src]; ok {
		c.hits++
		return p, nil
	}
	p, err := pml.CompileSource(src)
	if err != nil {
		return nil, err
	}
	c.m[src] = p
	c.misses++
	return p, nil
}

// Stats reports cache hits and misses.
func (c *Cache) Stats() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

var sigFields = []pml.Type{pml.TypeMtype, pml.TypeByte}
var datFields = []pml.Type{pml.TypeByte, pml.TypeByte, pml.TypeByte, pml.TypeBit, pml.TypeBit}

// Endpoint is a component-side attachment point of a connector: the pair
// of rendezvous channels implementing the paper's standard interface.
type Endpoint struct {
	Sig model.ChanID
	Dat model.ChanID
}

// Builder composes a verifiable system from the block library plus
// user-supplied component models.
type Builder struct {
	prog *pml.Compiled
	sys  *model.System
	src  string
}

// NewBuilder compiles the library together with the user's component
// source (which may be empty) and prepares an empty system. A non-nil
// cache is consulted first, reusing pre-built models.
func NewBuilder(componentSource string, cache *Cache) (*Builder, error) {
	return NewBuilderWithLibrary(LibrarySource, componentSource, cache)
}

// NewBuilderPlain uses the paper-literal (unoptimized) block models; it
// exists for the state-explosion ablation of DESIGN.md experiment E13.
func NewBuilderPlain(componentSource string, cache *Cache) (*Builder, error) {
	return NewBuilderWithLibrary(LibrarySourcePlain, componentSource, cache)
}

// NewBuilderWithLibrary composes an explicit block-library source with the
// user's component source.
func NewBuilderWithLibrary(library, componentSource string, cache *Cache) (*Builder, error) {
	full := library + "\n" + componentSource
	var prog *pml.Compiled
	var err error
	if cache != nil {
		prog, err = cache.Compile(full)
	} else {
		prog, err = pml.CompileSource(full)
	}
	if err != nil {
		return nil, fmt.Errorf("blocks: %w", err)
	}
	return &Builder{prog: prog, sys: model.New(prog), src: full}, nil
}

// NewBuilderFromProgram wraps an already-compiled program — a program
// module artifact out of an artifact store — in a fresh Builder with an
// empty system. src must be the canonical source the program was
// compiled from (the Builder's Source contract); sharing one compiled
// program across builders is safe because composition only spawns
// instances, never mutates the program.
func NewBuilderFromProgram(prog *pml.Compiled, src string) *Builder {
	return &Builder{prog: prog, sys: model.New(prog), src: src}
}

// Program exposes the combined compiled program (for property compilation).
func (b *Builder) Program() *pml.Compiled { return b.prog }

// Source returns the full pml source the program was compiled from
// (library plus components). Because compilation is deterministic, the
// source text is a faithful content address of the compiled program; the
// verification service hashes it as part of its result-cache key.
func (b *Builder) Source() string { return b.src }

// System returns the composed system, ready for the checker.
func (b *Builder) System() *model.System { return b.sys }

// Spawn instantiates a user component (or any proctype) directly.
func (b *Builder) Spawn(proc string, args ...model.Arg) (*model.Instance, error) {
	return b.sys.Spawn(proc, args...)
}

// Connector is an instantiated connector: its channel process is running
// and ports are added per attached component.
type Connector struct {
	b      *Builder
	name   string
	spec   ConnectorSpec
	sndSig model.ChanID
	sndDat model.ChanID
	rcvSig model.ChanID
	rcvDat model.ChanID
}

// NewConnector instantiates a connector from a spec: it creates the four
// internal rendezvous channels and spawns the channel process.
func (b *Builder) NewConnector(name string, spec ConnectorSpec) (*Connector, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	c := &Connector{
		b:      b,
		name:   name,
		spec:   spec,
		sndSig: b.sys.AddChannel(name+".sndSig", 0, sigFields),
		sndDat: b.sys.AddChannel(name+".sndDat", 0, datFields),
		rcvSig: b.sys.AddChannel(name+".rcvSig", 0, sigFields),
		rcvDat: b.sys.AddChannel(name+".rcvDat", 0, datFields),
	}
	args := []model.Arg{
		model.Chan(c.sndSig), model.Chan(c.sndDat),
		model.Chan(c.rcvSig), model.Chan(c.rcvDat),
	}
	if spec.Channel.sized() {
		args = append(args, model.Int(int64(spec.Size)))
	}
	if _, err := b.sys.Spawn(channelProcs[spec.Channel], args...); err != nil {
		return nil, err
	}
	return c, nil
}

// Spec returns the connector's specification.
func (c *Connector) Spec() ConnectorSpec { return c.spec }

// AddSender attaches a sending component endpoint: it creates the
// component-side channels and spawns a send port of the connector's kind.
// The returned endpoint is passed to the component's proctype.
func (c *Connector) AddSender(name string) (Endpoint, error) {
	ep := Endpoint{
		Sig: c.b.sys.AddChannel(c.name+"."+name+".sig", 0, sigFields),
		Dat: c.b.sys.AddChannel(c.name+"."+name+".dat", 0, datFields),
	}
	_, err := c.b.sys.Spawn(sendPortProcs[c.spec.Send],
		model.Chan(ep.Sig), model.Chan(ep.Dat),
		model.Chan(c.sndSig), model.Chan(c.sndDat))
	if err != nil {
		return Endpoint{}, err
	}
	return ep, nil
}

// AddReceiver attaches a receiving component endpoint with a receive port
// of the connector's kind.
func (c *Connector) AddReceiver(name string) (Endpoint, error) {
	ep := Endpoint{
		Sig: c.b.sys.AddChannel(c.name+"."+name+".sig", 0, sigFields),
		Dat: c.b.sys.AddChannel(c.name+"."+name+".dat", 0, datFields),
	}
	_, err := c.b.sys.Spawn(recvPortProcs[c.spec.Recv],
		model.Chan(ep.Sig), model.Chan(ep.Dat),
		model.Chan(c.rcvSig), model.Chan(c.rcvDat))
	if err != nil {
		return Endpoint{}, err
	}
	return ep, nil
}
