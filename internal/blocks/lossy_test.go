package blocks

import (
	"testing"

	"pnp/internal/checker"
	"pnp/internal/model"
)

// lossySrc is a minimal producer/consumer pair for probing the lossy
// channel: the sender pushes n messages through a blocking send port and
// the receiver keeps fetching (blocking receive) until `want` arrived.
const lossySrc = `
byte got;
proctype LossSender(chan portSig; chan portDat; byte n) {
	mtype st;
	byte i;
	do
	:: i < n ->
	   portDat!(i + 1),0,0,0,1;
	   portSig?st,_;
	   i = i + 1
	:: else -> break
	od
}
proctype LossReceiver(chan portSig; chan portDat; byte want) {
	mtype st;
	byte d, sid, sd;
	bit sel, rem;
	do
	:: got < want ->
	   portDat!0,0,0,0,1;
	   portSig?st,_;
	   portDat?d,sid,sd,sel,rem;
	   if
	   :: st == RECV_SUCC -> got = got + 1
	   :: else
	   fi
	:: else -> break
	od
}`

// buildLossy wires LossSender -> spec -> LossReceiver over the given
// library variant (optimized or paper-literal plain).
func buildLossy(t *testing.T, library string, spec ConnectorSpec, send, want int) *Builder {
	t.Helper()
	b, err := NewBuilderWithLibrary(library, lossySrc, nil)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := b.NewConnector("wire", spec)
	if err != nil {
		t.Fatal(err)
	}
	snd, err := conn.AddSender("producer")
	if err != nil {
		t.Fatal(err)
	}
	rcv, err := conn.AddReceiver("consumer")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Spawn("LossSender", model.Chan(snd.Sig), model.Chan(snd.Dat),
		model.Int(int64(send))); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Spawn("LossReceiver", model.Chan(rcv.Sig), model.Chan(rcv.Dat),
		model.Int(int64(want))); err != nil {
		t.Fatal(err)
	}
	return b
}

func libraries() map[string]string {
	return map[string]string{"optimized": LibrarySource, "plain": LibrarySourcePlain}
}

func TestLossyChannelMayLoseInTransit(t *testing.T) {
	// Naive composition over lossy(1): delivery of both messages stays
	// possible (the channel may behave perfectly), but it is not
	// guaranteed — an in-transit drop leaves the receiver blocked with
	// got==2 forever out of reach. The same composition over a reliable
	// FIFO satisfies the delivery goal. This is the generic shape of
	// experiment E12: unreliable media break naive designs.
	for name, lib := range libraries() {
		t.Run(name, func(t *testing.T) {
			lossy := ConnectorSpec{Send: AsynBlockingSend, Channel: LossyBuffer, Size: 1, Recv: BlockingRecv}
			b := buildLossy(t, lib, lossy, 2, 2)
			target, err := b.Program().CompileGlobalExpr("got == 2")
			if err != nil {
				t.Fatal(err)
			}
			if res := checker.New(b.System(), checker.Options{}).CheckReachable(target); !res.OK {
				t.Error("lossy(1): got==2 should remain reachable (channel may not misbehave)")
			}
			b = buildLossy(t, lib, lossy, 2, 2)
			if res := checker.New(b.System(), checker.Options{}).CheckEventuallyReachable(target); res.OK {
				t.Error("lossy(1): delivery goal AG EF got==2 should fail (in-transit loss)")
			}

			fifo := lossy.WithChannel(FIFOQueue, 2)
			b = buildLossy(t, lib, fifo, 2, 2)
			if res := checker.New(b.System(), checker.Options{}).CheckEventuallyReachable(target); !res.OK {
				t.Errorf("fifo(2): delivery goal should hold: %s", res.Summary())
			}
		})
	}
}

func TestLossyChannelMayDuplicate(t *testing.T) {
	// One message sent, lossy buffer with a spare slot: duplication in
	// transit makes a second delivery reachable — got can exceed what was
	// ever sent. A FIFO never manufactures messages. (With size 1 there is
	// no spare slot, so duplication cannot manifest there.)
	for name, lib := range libraries() {
		t.Run(name, func(t *testing.T) {
			lossy := ConnectorSpec{Send: AsynBlockingSend, Channel: LossyBuffer, Size: 2, Recv: BlockingRecv}
			b := buildLossy(t, lib, lossy, 1, 2)
			target, err := b.Program().CompileGlobalExpr("got == 2")
			if err != nil {
				t.Fatal(err)
			}
			if res := checker.New(b.System(), checker.Options{}).CheckReachable(target); !res.OK {
				t.Error("lossy(2): duplication should make got==2 reachable from one send")
			}

			fifo := lossy.WithChannel(FIFOQueue, 2)
			b = buildLossy(t, lib, fifo, 1, 2)
			if res := checker.New(b.System(), checker.Options{}).CheckReachable(target); res.OK {
				t.Error("fifo(2): got==2 must be unreachable from a single send")
			}
		})
	}
}
