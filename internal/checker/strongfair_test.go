package checker

import (
	"strings"
	"testing"
)

// TestStrongFairnessBeatsIntermittentEnabledness: the scenario weak
// fairness cannot handle — a process whose enabledness is toggled by the
// spinner — is resolved by strong fairness.
func TestStrongFairnessBeatsIntermittentEnabledness(t *testing.T) {
	// Worker is enabled only when gate==1; Spinner toggles the gate
	// forever. Weakly fair schedules may run Worker never (it is disabled
	// infinitely often); strongly fair ones must run it.
	src := `
byte gate, done;
active proctype Spinner() {
	end: do
	:: gate = 1 - gate
	od
}
active proctype Worker() {
	gate == 1 -> done = 1
}`
	p := props(t, sysFromSource(t, src).Prog, map[string]string{"finished": "done == 1"})

	weak := New(sysFromSource(t, src), Options{WeakFairness: true}).CheckLTL("<> finished", p)
	if weak.OK {
		t.Fatal("weak fairness should NOT suffice: the worker is only intermittently enabled")
	}
	strong := New(sysFromSource(t, src), Options{}).CheckLTLStrongFair("<> finished", p)
	if !strong.OK {
		t.Fatalf("strong fairness should prove <>finished: %s\n%s", strong.Summary(), strong.Trace)
	}
}

// TestStrongFairnessStillRefutesImpossible: no fairness can conjure a
// state transition that does not exist.
func TestStrongFairnessStillRefutesImpossible(t *testing.T) {
	src := `
byte done, junk;
active proctype Spinner() {
	end: do
	:: junk = 1 - junk
	od
}`
	s := sysFromSource(t, src)
	p := props(t, s.Prog, map[string]string{"finished": "done == 1"})
	res := New(s, Options{}).CheckLTLStrongFair("<> finished", p)
	if res.OK {
		t.Fatal("nothing sets done; <>finished must fail")
	}
	if res.Kind != AcceptanceCycle {
		t.Fatalf("kind = %s", res.Kind)
	}
	if res.Trace == nil || len(res.Trace.Cycle) == 0 {
		t.Fatal("no fair counterexample cycle")
	}
}

// TestStrongFairCounterexampleIsFair: the constructed lasso must move
// every process that is enabled within the cycle's SCC.
func TestStrongFairCounterexampleIsFair(t *testing.T) {
	src := `
byte a, b;
active proctype P() {
	end: do
	:: a = 1 - a
	od
}
active proctype Q() {
	end: do
	:: b = 1 - b
	od
}`
	s := sysFromSource(t, src)
	p := props(t, s.Prog, map[string]string{"never": "a == 2"})
	res := New(s, Options{}).CheckLTLStrongFair("<> never", p)
	if res.OK {
		t.Fatal("<>never must fail")
	}
	text := res.Trace.String()
	if !strings.Contains(text, "P[0]") || !strings.Contains(text, "Q[1]") {
		t.Errorf("fair cycle should include moves of both processes:\n%s", text)
	}
}

// TestStrongFairnessSafetyShaped: prefix violations are unaffected by
// fairness assumptions.
func TestStrongFairnessSafetyShaped(t *testing.T) {
	src := `
byte x;
active proctype P() { x = 1; x = 5 }`
	s := sysFromSource(t, src)
	p := props(t, s.Prog, map[string]string{"small": "x < 2"})
	res := New(s, Options{}).CheckLTLStrongFair("[] small", p)
	if res.OK {
		t.Fatal("[]small should fail")
	}
}

// TestStrongFairnessAssertSurfaces: assertion failures met while building
// the product are reported as safety violations.
func TestStrongFairnessAssertSurfaces(t *testing.T) {
	src := `
byte x;
active proctype P() { x = 1; assert(false) }`
	s := sysFromSource(t, src)
	p := props(t, s.Prog, map[string]string{"q": "x == 0"})
	res := New(s, Options{}).CheckLTLStrongFair("[] (q || !q)", p)
	if res.OK || res.Kind != Assertion {
		t.Fatalf("expected assertion, got %s", res.Summary())
	}
}

// TestStrongFairnessTerminalStutter: terminated runs are strongly fair
// (no process enabled), so a false-at-the-end []<>p still fails.
func TestStrongFairnessTerminalStutter(t *testing.T) {
	src := `
byte x;
active proctype P() { x = 1; x = 0 }`
	s := sysFromSource(t, src)
	p := props(t, s.Prog, map[string]string{"on": "x == 1"})
	res := New(s, Options{}).CheckLTLStrongFair("[] <> on", p)
	if res.OK {
		t.Fatal("[]<>on must fail at the terminal state")
	}
}

// TestStrongFairnessResponseWithNoise: the polling-server response
// property that weak fairness could not prove.
func TestStrongFairnessResponseWithNoise(t *testing.T) {
	src := `
byte req, ack, noise;
active proctype Client() {
	req = 1
}
active proctype Server() {
	end: do
	:: req == 1 && ack == 0 -> ack = 1
	:: noise = 1 - noise
	od
}`
	s := sysFromSource(t, src)
	p := props(t, s.Prog, map[string]string{"requested": "req == 1", "acked": "ack == 1"})
	res := New(s, Options{}).CheckLTLStrongFair("[] (requested -> <> acked)", p)
	// The ack branch and the noise branch belong to the same process, so
	// even strong *process* fairness cannot force the ack branch — this
	// distinguishes process fairness from transition fairness. Assert the
	// verdict is a well-formed acceptance cycle either way.
	if res.OK {
		t.Log("strong process fairness proved the response property")
	} else if res.Kind != AcceptanceCycle {
		t.Fatalf("unexpected kind: %s", res.Summary())
	}
}

// TestStrongFairnessViaOptions: Options.StrongFairness routes CheckLTL to
// the fair-SCC search.
func TestStrongFairnessViaOptions(t *testing.T) {
	src := `
byte gate, done;
active proctype Spinner() {
	end: do
	:: gate = 1 - gate
	od
}
active proctype Worker() {
	gate == 1 -> done = 1
}`
	s := sysFromSource(t, src)
	p := props(t, s.Prog, map[string]string{"finished": "done == 1"})
	res := New(s, Options{StrongFairness: true}).CheckLTL("<> finished", p)
	if !res.OK {
		t.Fatalf("Options.StrongFairness not honored: %s", res.Summary())
	}
}
