package checker

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"pnp/internal/model"
)

// ckptSrc is deep enough (~120 levels) that a search canceled mid-way
// has real work left, and wide enough that every barrier snapshot
// carries a non-trivial frontier.
const ckptSrc = `
byte a; byte b;
active proctype P() { do :: a < 80 -> a = a + 1 :: else -> break od }
active proctype Q() { do :: b < 80 -> b = b + 1 :: else -> break od }`

// snapAt runs a checkpointed search to completion, stealing a copy of
// the snapshot written at the given depth — exactly the file a process
// killed at that barrier would leave behind.
func snapAt(t *testing.T, dir string, depth int) (stolen string) {
	t.Helper()
	stolen = filepath.Join(dir, "stolen.bin")
	s := sysFromSource(t, ckptSrc)
	res := New(s, Options{Workers: 2, Checkpoint: &CheckpointOptions{
		Dir: dir, Key: "steal", Interval: 1,
		OnWrite: func(file string, d, states int) {
			if d == depth {
				data, err := os.ReadFile(file)
				if err != nil {
					t.Fatalf("reading snapshot: %v", err)
				}
				if err := os.WriteFile(stolen, data, 0o644); err != nil {
					t.Fatal(err)
				}
			}
		},
	}}).CheckSafety()
	if !res.OK {
		t.Fatalf("checkpointed search should verify: %s", res.Summary())
	}
	if _, err := os.Stat(stolen); err != nil {
		t.Fatalf("no snapshot captured at depth %d: %v", depth, err)
	}
	return stolen
}

// A search resumed from a mid-run snapshot must produce the same
// verdict and the same stats as an uninterrupted run — including when
// the worker counts before and after the crash differ.
func TestCheckpointResumeMatchesUninterrupted(t *testing.T) {
	full := New(sysFromSource(t, ckptSrc), Options{Workers: 1}).CheckSafety()
	if !full.OK {
		t.Fatalf("baseline should verify: %s", full.Summary())
	}
	stolen := snapAt(t, t.TempDir(), 40)

	for _, w := range []int{1, 8} {
		dir := t.TempDir()
		data, _ := os.ReadFile(stolen)
		if err := os.WriteFile(filepath.Join(dir, CheckpointFileName("k")), data, 0o644); err != nil {
			t.Fatal(err)
		}
		var depths []int
		res := New(sysFromSource(t, ckptSrc), Options{Workers: w, Checkpoint: &CheckpointOptions{
			Dir: dir, Key: "k", Resume: true,
			OnWrite: func(file string, d, states int) { depths = append(depths, d) },
		}}).CheckSafety()
		if !res.OK {
			t.Fatalf("workers=%d: resumed search should verify: %s", w, res.Summary())
		}
		if !statsEqualIgnoringElapsed(res.Stats, full.Stats) {
			t.Errorf("workers=%d: resumed stats %+v, uninterrupted %+v", w, res.Stats, full.Stats)
		}
		// Proof it resumed rather than restarting: the first snapshot of
		// the resumed run is past the stolen one, not at depth 1.
		if len(depths) == 0 || depths[0] <= 40 {
			t.Errorf("workers=%d: first snapshot at %v, want > 40 (did the search restart?)", w, depths)
		}
		// The completed verdict clears the checkpoint.
		if _, err := os.Stat(filepath.Join(dir, CheckpointFileName("k"))); !os.IsNotExist(err) {
			t.Errorf("workers=%d: checkpoint not removed after verdict (err=%v)", w, err)
		}
	}
}

// A violation behind the snapshot point is still found on resume, with
// the same kind and counterexample length as the uninterrupted search.
func TestCheckpointResumeFindsViolation(t *testing.T) {
	src := ckptSrc + `
active proctype R() { (a == 50 && b == 2) -> assert(false) }`
	full := New(sysFromSource(t, src), Options{Workers: 1}).CheckSafety()
	if full.OK || full.Trace == nil {
		t.Fatalf("baseline should find the assertion: %s", full.Summary())
	}

	dir := t.TempDir()
	sys := sysFromSource(t, src)
	var stolen []byte
	res := New(sys, Options{Workers: 2, Checkpoint: &CheckpointOptions{
		Dir: dir, Key: "v", Interval: 1,
		OnWrite: func(file string, d, states int) {
			if d == 20 {
				stolen, _ = os.ReadFile(file)
			}
		},
	}}).CheckSafety()
	if res.OK || len(stolen) == 0 {
		t.Fatalf("expected violation and a depth-20 snapshot: %s", res.Summary())
	}

	rdir := t.TempDir()
	if err := os.WriteFile(filepath.Join(rdir, CheckpointFileName("v")), stolen, 0o644); err != nil {
		t.Fatal(err)
	}
	resumed := New(sysFromSource(t, src), Options{Workers: 8, Checkpoint: &CheckpointOptions{
		Dir: rdir, Key: "v", Resume: true,
	}}).CheckSafety()
	if resumed.OK || resumed.Kind != full.Kind {
		t.Fatalf("resumed: %s, want %s", resumed.Summary(), full.Kind)
	}
	if !statsEqualIgnoringElapsed(resumed.Stats, full.Stats) {
		t.Errorf("resumed stats %+v, uninterrupted %+v", resumed.Stats, full.Stats)
	}
	// The resumed counterexample starts at the checkpoint frontier: its
	// prefix covers only the levels explored after the resume.
	wantLen := full.Trace.Len() - 20
	if resumed.Trace == nil || resumed.Trace.Len() != wantLen {
		t.Errorf("resumed counterexample length %d, want %d (full %d minus 20 checkpointed levels)",
			resumed.Trace.Len(), wantLen, full.Trace.Len())
	}
}

// The real crash path: a canceled search keeps its last snapshot, and a
// fresh checker resumes it to the uninterrupted verdict.
func TestCheckpointCanceledKeepsFileAndResumes(t *testing.T) {
	full := New(sysFromSource(t, ckptSrc), Options{Workers: 1}).CheckSafety()
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	res := New(sysFromSource(t, ckptSrc), Options{Workers: 2, Context: ctx,
		Checkpoint: &CheckpointOptions{
			Dir: dir, Key: "c", Interval: 1,
			OnWrite: func(file string, d, states int) {
				if d == 30 {
					cancel()
				}
			},
		}}).CheckSafety()
	if res.Kind != Canceled {
		t.Fatalf("expected Canceled, got %s", res.Summary())
	}
	file := filepath.Join(dir, CheckpointFileName("c"))
	if _, err := os.Stat(file); err != nil {
		t.Fatalf("canceled search should keep its checkpoint: %v", err)
	}

	resumed := New(sysFromSource(t, ckptSrc), Options{Workers: 2,
		Checkpoint: &CheckpointOptions{Dir: dir, Key: "c", Resume: true}}).CheckSafety()
	if !resumed.OK {
		t.Fatalf("resumed search should verify: %s", resumed.Summary())
	}
	if !statsEqualIgnoringElapsed(resumed.Stats, full.Stats) {
		t.Errorf("resumed stats %+v, uninterrupted %+v", resumed.Stats, full.Stats)
	}
	if _, err := os.Stat(file); !os.IsNotExist(err) {
		t.Errorf("checkpoint not removed after resumed verdict (err=%v)", err)
	}
}

// Reachability checkpoints resume to the same witness length and, for
// unreachable targets, the same exhaustive state count.
func TestCheckpointReachabilityResume(t *testing.T) {
	s := sysFromSource(t, ckptSrc)
	target, err := s.Prog.CompileGlobalExpr("a == 55 && b == 3")
	if err != nil {
		t.Fatal(err)
	}
	full := New(s, Options{Workers: 1}).CheckReachable(target)
	if !full.OK || full.Trace == nil {
		t.Fatalf("baseline witness search failed: %s", full.Summary())
	}

	dir := t.TempDir()
	var stolen []byte
	sys2 := sysFromSource(t, ckptSrc)
	res := New(sys2, Options{Workers: 2, Checkpoint: &CheckpointOptions{
		Dir: dir, Key: "r", Interval: 1,
		OnWrite: func(file string, d, states int) {
			if d == 25 {
				stolen, _ = os.ReadFile(file)
			}
		},
	}}).CheckReachable(target)
	if !res.OK || len(stolen) == 0 {
		t.Fatalf("expected witness and a depth-25 snapshot: %s", res.Summary())
	}

	rdir := t.TempDir()
	if err := os.WriteFile(filepath.Join(rdir, CheckpointFileName("r")), stolen, 0o644); err != nil {
		t.Fatal(err)
	}
	sys3 := sysFromSource(t, ckptSrc)
	target3, _ := sys3.Prog.CompileGlobalExpr("a == 55 && b == 3")
	resumed := New(sys3, Options{Workers: 8, Checkpoint: &CheckpointOptions{
		Dir: rdir, Key: "r", Resume: true,
	}}).CheckReachable(target3)
	if !resumed.OK || resumed.Trace == nil {
		t.Fatalf("resumed witness search failed: %s", resumed.Summary())
	}
	if got, want := resumed.Trace.Len(), full.Trace.Len()-25; got != want {
		t.Errorf("resumed witness length %d, want %d", got, want)
	}
	if resumed.Stats.StatesStored != full.Stats.StatesStored {
		t.Errorf("resumed StatesStored %d, uninterrupted %d",
			resumed.Stats.StatesStored, full.Stats.StatesStored)
	}
}

// A snapshot from a different system (or a corrupt file) must be
// ignored: the search starts fresh and still verifies.
func TestCheckpointForeignOrCorruptSnapshotIgnored(t *testing.T) {
	stolen := snapAt(t, t.TempDir(), 10)
	data, _ := os.ReadFile(stolen)

	t.Run("foreign-model", func(t *testing.T) {
		dir := t.TempDir()
		os.WriteFile(filepath.Join(dir, CheckpointFileName("f")), data, 0o644)
		res := New(sysFromSource(t, parOKSrc), Options{Workers: 2,
			Checkpoint: &CheckpointOptions{Dir: dir, Key: "f", Resume: true}}).CheckSafety()
		want := New(sysFromSource(t, parOKSrc), Options{Workers: 1}).CheckSafety()
		if !res.OK || !statsEqualIgnoringElapsed(res.Stats, want.Stats) {
			t.Errorf("foreign snapshot not ignored: %+v vs fresh %+v", res.Stats, want.Stats)
		}
	})
	t.Run("corrupt", func(t *testing.T) {
		dir := t.TempDir()
		bad := append([]byte(nil), data...)
		bad[len(bad)/2] ^= 0xff // flip a bit mid-file: some section CRC must fail
		os.WriteFile(filepath.Join(dir, CheckpointFileName("c")), bad, 0o644)
		res := New(sysFromSource(t, ckptSrc), Options{Workers: 2,
			Checkpoint: &CheckpointOptions{Dir: dir, Key: "c", Resume: true}}).CheckSafety()
		want := New(sysFromSource(t, ckptSrc), Options{Workers: 1}).CheckSafety()
		if !res.OK || !statsEqualIgnoringElapsed(res.Stats, want.Stats) {
			t.Errorf("corrupt snapshot not ignored: %+v vs fresh %+v", res.Stats, want.Stats)
		}
	})
}

// DecodeKey inverts AppendKey exactly, given the system's state shape.
func TestDecodeKeyRoundTrip(t *testing.T) {
	s := sysFromSource(t, parOKSrc)
	shape := s.InitialState()
	seen := 0
	frontier := []*model.State{shape}
	for depth := 0; depth < 8; depth++ {
		var next []*model.State
		for _, st := range frontier {
			enc := st.AppendKey(nil)
			dec, err := model.DecodeKey(shape, enc)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if dec.Key() != st.Key() {
				t.Fatalf("round trip diverged at depth %d", depth)
			}
			seen++
			for _, tr := range s.Successors(st) {
				if tr.Violation == "" {
					next = append(next, tr.Next)
				}
			}
		}
		frontier = next
	}
	if seen < 10 {
		t.Fatalf("walked only %d states", seen)
	}
	if _, err := model.DecodeKey(shape, []byte{0x01}); err == nil {
		t.Error("truncated encoding should fail to decode")
	}
}
