//go:build !unix

package checker

import "os"

// mapFile on platforms without syscall.Mmap reads the whole file into
// memory; spill then only bounds the live visited structure, not total
// process memory. The unix build maps the file instead.
func mapFile(path string) (data []byte, mapped bool, err error) {
	data, err = os.ReadFile(path)
	return data, false, err
}

func unmapFile([]byte) {}
