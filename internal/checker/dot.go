package checker

import (
	"fmt"
	"io"
	"strings"

	"pnp/internal/model"
)

// WriteDOT renders the reachable state graph (up to maxStates states) in
// Graphviz DOT format — useful for inspecting small systems and for
// documentation. Node labels show the global variables; edge labels show
// the transition. States where an invariant fails are drawn in red, valid
// end states with a double border.
func (c *Checker) WriteDOT(w io.Writer, maxStates int) error {
	if maxStates <= 0 {
		maxStates = 500
	}
	index := map[string]int{}
	var arena []*model.State
	add := func(st *model.State) (int, bool) {
		key := st.Key()
		if i, ok := index[key]; ok {
			return i, false
		}
		index[key] = len(arena)
		arena = append(arena, st)
		return len(arena) - 1, true
	}

	if _, err := fmt.Fprintln(w, "digraph statespace {"); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "  rankdir=LR; node [shape=box, fontname=monospace, fontsize=9];"); err != nil {
		return err
	}

	globals := c.sys.Prog.GlobalVars
	label := func(st *model.State) string {
		var parts []string
		for i, g := range globals {
			parts = append(parts, fmt.Sprintf("%s=%d", g.Name, st.Globals[i]))
		}
		if len(parts) == 0 {
			return "·"
		}
		return strings.Join(parts, "\\n")
	}
	bad := func(st *model.State) bool {
		for _, inv := range c.opts.Invariants {
			v, err := c.sys.EvalGlobal(st, inv.Expr)
			if err != nil || v == 0 {
				return true
			}
		}
		return false
	}

	init := c.sys.InitialState()
	add(init)
	truncated := false
	for head := 0; head < len(arena); head++ {
		st := arena[head]
		attrs := ""
		if bad(st) {
			attrs = ", color=red, fontcolor=red"
		}
		trs := c.sys.Successors(st)
		if len(trs) == 0 {
			attrs += ", peripheries=2"
		}
		if _, err := fmt.Fprintf(w, "  s%d [label=\"%s\"%s];\n", head, label(st), attrs); err != nil {
			return err
		}
		for _, tr := range trs {
			if tr.Violation != "" {
				continue
			}
			to, fresh := add(tr.Next)
			if fresh && len(arena) > maxStates {
				truncated = true
				arena = arena[:maxStates]
				break
			}
			if to < len(arena) {
				el := strings.ReplaceAll(c.sys.FormatTransition(tr), `"`, `'`)
				if _, err := fmt.Fprintf(w, "  s%d -> s%d [label=\"%s\", fontsize=8];\n", head, to, el); err != nil {
					return err
				}
			}
		}
		if truncated {
			break
		}
	}
	if truncated {
		if _, err := fmt.Fprintf(w, "  trunc [label=\"(truncated at %d states)\", shape=plaintext];\n", maxStates); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
