package checker

import (
	"sync"
	"sync/atomic"

	"pnp/internal/obs"
)

// parVisited is the duplicate detector of the parallel engine. seen
// tests-and-sets a state by its canonical encoding enc (the bytes
// State.AppendKey produces) and its 64-bit fingerprint fp (fnv64 of
// enc), reporting whether the state was already present.
// Implementations are safe for concurrent callers; enc is only read
// during the call and may be reused by the caller afterwards.
type parVisited interface {
	seen(fp uint64, enc []byte) bool
	size() int
}

// visitedShards is the stripe count of the parallel visited structures.
// 64 stripes keep the probability of two workers wanting the same lock
// low even at high core counts, for a fixed cost of a few KiB.
const visitedShards = 64

// fnv64 is FNV-1a over b — the same hash State.Fingerprint streams, so
// fnv64(st.AppendKey(nil)) == st.Fingerprint().
func fnv64(b []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(b); i++ {
		h = (h ^ uint64(b[i])) * prime64
	}
	return h
}

// visitedShard is one stripe of shardedSet, padded so neighboring
// stripe locks don't share a cache line.
type visitedShard struct {
	mu sync.Mutex
	m  map[uint64][]string
	_  [40]byte
}

// shardedSet is the exact visited set of the parallel engine: states
// route to one of visitedShards stripes by fingerprint, and each stripe
// buckets full encodings by fingerprint, so a lookup compares the cheap
// uint64 first and the bytes only on a bucket hit. The encoding is
// materialized as a string only when a state is actually inserted.
type shardedSet struct {
	shards [visitedShards]visitedShard
	stored atomic.Int64
	// contention counts TryLock misses — a worker arriving at a stripe
	// another worker holds. Nil (metrics disabled) is a no-op.
	contention *obs.Counter
}

func newShardedSet(contention *obs.Counter) *shardedSet {
	s := &shardedSet{contention: contention}
	for i := range s.shards {
		s.shards[i].m = make(map[uint64][]string, 64)
	}
	return s
}

func (s *shardedSet) seen(fp uint64, enc []byte) bool {
	sh := &s.shards[fp%visitedShards]
	if !sh.mu.TryLock() {
		s.contention.Add(1)
		sh.mu.Lock()
	}
	bucket := sh.m[fp]
	for _, k := range bucket {
		if k == string(enc) { // compiles to a no-alloc comparison
			sh.mu.Unlock()
			return true
		}
	}
	sh.m[fp] = append(bucket, string(enc))
	sh.mu.Unlock()
	s.stored.Add(1)
	return false
}

func (s *shardedSet) size() int { return int(s.stored.Load()) }

// paddedMutex is a mutex padded to its own cache line.
type paddedMutex struct {
	sync.Mutex
	_ [56]byte
}

// parBitstateSet is the bitstate (supertrace) structure of the parallel
// engine. Bit words are shared across stripes and flipped with CAS, but
// the test-and-set decision for one fingerprint is serialized by a
// stripe lock so two workers racing on the same state cannot both claim
// to have stored it. Which of two hash-colliding distinct states is
// counted as stored can still depend on arrival order — bitstate
// coverage is probabilistic in the sequential engine too.
type parBitstateSet struct {
	locks      [visitedShards]paddedMutex
	bits       []uint64
	mask       uint64
	count      atomic.Int64
	contention *obs.Counter
}

func newParBitstateSet(bitsLog2 uint, contention *obs.Counter) *parBitstateSet {
	if bitsLog2 < 10 {
		bitsLog2 = 10
	}
	n := uint64(1) << bitsLog2
	return &parBitstateSet{bits: make([]uint64, n/64), mask: n - 1, contention: contention}
}

func (s *parBitstateSet) seen(fp uint64, enc []byte) bool {
	a, b := bitstateHashes(enc, s.mask)
	lk := &s.locks[fp%visitedShards]
	if !lk.TryLock() {
		s.contention.Add(1)
		lk.Lock()
	}
	hadA := s.setBit(a)
	hadB := s.setBit(b)
	lk.Unlock()
	if hadA && hadB {
		return true
	}
	s.count.Add(1)
	return false
}

// setBit atomically sets bit pos, reporting whether it was already set.
// A CAS loop rather than atomic.Uint64.Or: the module targets go1.22.
func (s *parBitstateSet) setBit(pos uint64) bool {
	word := &s.bits[pos/64]
	bit := uint64(1) << (pos % 64)
	for {
		old := atomic.LoadUint64(word)
		if old&bit != 0 {
			return true
		}
		if atomic.CompareAndSwapUint64(word, old, old|bit) {
			return false
		}
	}
}

func (s *parBitstateSet) size() int { return int(s.count.Load()) }

// newParVisited builds the parallel engine's visited structure,
// mirroring newVisited's exact/bitstate split.
func (c *Checker) newParVisited(contention *obs.Counter) parVisited {
	if c.opts.Bitstate {
		bits := c.opts.BitstateBits
		if bits == 0 {
			bits = 24
		}
		return newParBitstateSet(bits, contention)
	}
	return newShardedSet(contention)
}
