package checker

import (
	"bytes"
	"encoding/binary"
	"sync"
	"sync/atomic"

	"pnp/internal/model"
	"pnp/internal/obs"
)

// parVisited is the duplicate detector of the parallel engine. seen
// tests-and-sets a state by its canonical encoding enc (the bytes
// State.AppendKey produces), its 64-bit fingerprint fp
// (model.Hash64(enc)), and the component section boundaries ends (from
// State.AppendComponentKeys; nil makes implementations that need them
// recompute the split from the system shape). It reports whether the
// state was already present. Implementations are safe for concurrent
// callers; enc and ends are only read during the call and may be reused
// by the caller afterwards.
type parVisited interface {
	seen(fp uint64, enc []byte, ends []int) bool
	size() int
	// bytes estimates the resident memory of the structure: stored
	// entries plus table overhead. It feeds the checker_visited_bytes
	// gauge and the Options.MemLimit spill decision, and is only called
	// at level barriers (no concurrent seen).
	bytes() int64
}

// visitedDrainer is the extra capability the spill tier needs from its
// in-memory set: stream out every stored encoding and then forget them
// (side tables survive a reset so collapse interning keeps paying off).
type visitedDrainer interface {
	parVisited
	// forEachEncoding calls fn with every stored full canonical encoding.
	// fn must not retain enc. Only called at level barriers.
	forEachEncoding(fn func(enc []byte))
	// reset drops all stored entries (size returns 0 afterwards).
	reset()
}

// visitedShards is the stripe count of the parallel visited structures.
// 64 stripes keep the probability of two workers wanting the same lock
// low even at high core counts, for a fixed cost of a few KiB.
const visitedShards = 64

// encTable is an open-addressed hash table of byte strings over an
// append-only arena of [uvarint length][bytes] entries. Each slot packs
// the top 24 bits of the entry's hash (a cheap probe filter) with its
// arena offset + 1 into one uint64, zero marking an empty slot, so slot
// overhead is 8 bytes against the ~48 of the map[uint64][]string it
// replaced — and entries live as one length-prefixed copy in a single
// arena instead of a string header plus heap object each. The arena
// grows by 1/8 steps, not doubling, so bytes() (which reports capacity)
// tracks real residency closely.
//
// The fp passed to every method MUST be model.Hash64 of the entry bytes
// — grow rehashes entries from their bytes alone. Probing starts at the
// hash's low bits and filters on its top bits, so a full byte compare
// happens only on a 24-bit tag match. Not safe for concurrent use;
// callers shard and lock.
type encTable struct {
	slots []uint64 // tag(24) | arena offset+1 (40); 0 = empty
	idxs  []uint32 // per-slot intern index; nil unless insertAt is given one
	n     int
	arena []byte
}

const (
	encTableMinSlots = 64
	encTagShift      = 40
	encOffMask       = 1<<encTagShift - 1
)

// lookup reports whether b is present.
func (t *encTable) lookup(fp uint64, b []byte) bool {
	_, ok := t.find(fp, b)
	return ok
}

// find returns the slot holding b, or the empty slot where it belongs.
func (t *encTable) find(fp uint64, b []byte) (slot uint64, ok bool) {
	if len(t.slots) == 0 {
		return 0, false
	}
	mask := uint64(len(t.slots) - 1)
	tag := fp &^ encOffMask
	i := fp & mask
	for {
		s := t.slots[i]
		if s == 0 {
			return i, false
		}
		if s&^encOffMask == tag && bytes.Equal(t.entryAt(s&encOffMask-1), b) {
			return i, true
		}
		i = (i + 1) & mask
	}
}

// testAndSet inserts b if absent, reporting whether it was present.
func (t *encTable) testAndSet(fp uint64, b []byte) bool {
	t.ensure()
	slot, ok := t.find(fp, b)
	if ok {
		return true
	}
	t.insertAt(slot, fp, b, 0)
	return false
}

func (t *encTable) ensure() {
	if len(t.slots) == 0 {
		t.slots = make([]uint64, encTableMinSlots)
	}
}

func (t *encTable) insertAt(slot, fp uint64, b []byte, idx uint32) {
	t.slots[slot] = fp&^encOffMask | uint64(len(t.arena)) + 1
	if t.idxs != nil {
		t.idxs[slot] = idx
	}
	t.appendEntry(b)
	t.n++
	if t.n*4 >= len(t.slots)*3 {
		t.grow()
	}
}

// appendEntry adds a length-prefixed copy of b to the arena, growing it
// in 1/8 steps so capacity stays within ~12% of the data.
func (t *encTable) appendEntry(b []byte) {
	if need := len(t.arena) + binary.MaxVarintLen64 + len(b); need > cap(t.arena) {
		newCap := cap(t.arena) + cap(t.arena)/8 + 4096
		if newCap < need {
			newCap = need
		}
		grown := make([]byte, len(t.arena), newCap)
		copy(grown, t.arena)
		t.arena = grown
	}
	t.arena = binary.AppendUvarint(t.arena, uint64(len(b)))
	t.arena = append(t.arena, b...)
}

func (t *encTable) entryAt(off uint64) []byte {
	l, w := binary.Uvarint(t.arena[off:])
	start := off + uint64(w)
	return t.arena[start : start+l]
}

func (t *encTable) grow() {
	old, oldIdxs := t.slots, t.idxs
	n := 2 * len(old)
	t.slots = make([]uint64, n)
	if oldIdxs != nil {
		t.idxs = make([]uint32, n)
	}
	mask := uint64(n - 1)
	for i, s := range old {
		if s == 0 {
			continue
		}
		// The slot keeps only a 24-bit tag of the hash; the probe start
		// in the doubled table comes from rehashing the entry bytes.
		j := model.Hash64(t.entryAt(s&encOffMask-1)) & mask
		for t.slots[j] != 0 {
			j = (j + 1) & mask
		}
		t.slots[j] = s
		if oldIdxs != nil {
			t.idxs[j] = oldIdxs[i]
		}
	}
}

// bytes is the resident footprint: arena data plus slot arrays.
func (t *encTable) bytes() int64 {
	return int64(cap(t.arena)) + int64(cap(t.slots))*8 + int64(cap(t.idxs))*4
}

func (t *encTable) forEach(fn func(fp uint64, enc []byte)) {
	for _, s := range t.slots {
		if s != 0 {
			e := t.entryAt(s&encOffMask - 1)
			fn(model.Hash64(e), e)
		}
	}
}

func (t *encTable) reset() {
	t.slots, t.idxs, t.arena, t.n = nil, nil, nil, 0
}

// visitedShard is one stripe of shardedSet / collapseSet: a lock, an
// encTable of entries routed here by fingerprint, and (collapse only) a
// scratch buffer for building index tuples under the lock.
type visitedShard struct {
	mu      sync.Mutex
	t       encTable
	scratch []byte
}

// shardedSet is the exact visited set of the parallel engine: states
// route to one of visitedShards stripes by fingerprint, and each stripe
// keeps full encodings in an open-addressed encTable, so a lookup
// compares the cheap uint64 first and the bytes only on a slot hit.
type shardedSet struct {
	shards [visitedShards]visitedShard
	stored atomic.Int64
	// contention counts TryLock misses — a worker arriving at a stripe
	// another worker holds. Nil (metrics disabled) is a no-op.
	contention *obs.Counter
}

func newShardedSet(contention *obs.Counter) *shardedSet {
	return &shardedSet{contention: contention}
}

func (s *shardedSet) seen(fp uint64, enc []byte, _ []int) bool {
	sh := &s.shards[fp%visitedShards]
	if !sh.mu.TryLock() {
		s.contention.Add(1)
		sh.mu.Lock()
	}
	had := sh.t.testAndSet(fp, enc)
	sh.mu.Unlock()
	if !had {
		s.stored.Add(1)
	}
	return had
}

func (s *shardedSet) size() int { return int(s.stored.Load()) }

func (s *shardedSet) bytes() int64 {
	var b int64
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		b += sh.t.bytes()
		sh.mu.Unlock()
	}
	return b
}

func (s *shardedSet) forEachEncoding(fn func(enc []byte)) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.t.forEach(func(_ uint64, enc []byte) { fn(enc) })
		sh.mu.Unlock()
	}
}

func (s *shardedSet) reset() {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.t.reset()
		sh.mu.Unlock()
	}
	s.stored.Store(0)
}

// collapseTable interns the sub-vectors of one component (one process's
// locals, one channel's contents, or the shared core). Reads take the
// read lock — after warm-up almost every component of a new state is
// already interned — and only a genuinely new sub-vector upgrades to
// the write lock. starts records each entry's arena offset by intern
// index so tuples can be expanded back into full encodings (checkpoint
// streaming, spill).
type collapseTable struct {
	mu     sync.RWMutex
	t      encTable
	starts []uint64
}

func (ct *collapseTable) intern(b []byte) uint32 {
	fp := model.Hash64(b)
	ct.mu.RLock()
	slot, ok := ct.t.find(fp, b)
	if ok {
		idx := ct.t.idxs[slot]
		ct.mu.RUnlock()
		return idx
	}
	ct.mu.RUnlock()
	ct.mu.Lock()
	defer ct.mu.Unlock()
	ct.t.ensure()
	if ct.t.idxs == nil {
		ct.t.idxs = make([]uint32, len(ct.t.slots))
	}
	slot, ok = ct.t.find(fp, b)
	if ok {
		return ct.t.idxs[slot]
	}
	idx := uint32(len(ct.starts))
	ct.starts = append(ct.starts, uint64(len(ct.t.arena)))
	ct.t.insertAt(slot, fp, b, idx)
	return idx
}

func (ct *collapseTable) entry(idx uint32) []byte {
	return ct.t.entryAt(ct.starts[idx])
}

func (ct *collapseTable) bytes() int64 {
	ct.mu.RLock()
	defer ct.mu.RUnlock()
	return ct.t.bytes() + int64(cap(ct.starts))*8
}

// collapseSet is the collapse-compressed visited set (Spin's -DCOLLAPSE
// analogue): each component sub-vector of a state is interned once in a
// per-component side table, and the state itself is stored as a tuple
// of uvarint intern indices, routed to a stripe by the fingerprint of
// the full encoding. Tuple equality is equivalent to encoding equality
// — two states produce the same tuple iff every component matches —
// so membership, verdicts, and StatesStored are identical to the exact
// set even though the physical index assignment varies run to run.
// The trade is CPU for memory: one extra hash+probe per component.
type collapseSet struct {
	comps  []collapseTable // 1 + processes + channels
	shards [visitedShards]visitedShard
	stored atomic.Int64
	// shape re-splits encodings that arrive without section boundaries
	// (checkpoint restore).
	shape      *model.State
	contention *obs.Counter
}

func newCollapseSet(shape *model.State, contention *obs.Counter) *collapseSet {
	return &collapseSet{
		comps:      make([]collapseTable, shape.NumComponents()),
		shape:      shape,
		contention: contention,
	}
}

func (s *collapseSet) seen(fp uint64, enc []byte, ends []int) bool {
	if ends == nil {
		var err error
		ends, err = model.ComponentEnds(s.shape, enc, nil)
		if err != nil {
			// Only reachable with an encoding that AppendKey could not
			// have produced; storing it exactly in shard 0 keeps the
			// set total rather than dropping the state.
			ends = []int{len(enc)}
		}
	}
	sh := &s.shards[fp%visitedShards]
	if !sh.mu.TryLock() {
		s.contention.Add(1)
		sh.mu.Lock()
	}
	tuple := sh.scratch[:0]
	start := 0
	for i, end := range ends {
		tuple = binary.AppendUvarint(tuple, uint64(s.comps[i].intern(enc[start:end])))
		start = end
	}
	sh.scratch = tuple
	// The stripe table keys the tuple by its own hash (the encTable
	// contract); the state fingerprint only routes to a stripe.
	had := sh.t.testAndSet(model.Hash64(tuple), tuple)
	sh.mu.Unlock()
	if !had {
		s.stored.Add(1)
	}
	return had
}

func (s *collapseSet) size() int { return int(s.stored.Load()) }

func (s *collapseSet) bytes() int64 {
	var b int64
	for i := range s.comps {
		b += s.comps[i].bytes()
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		b += sh.t.bytes() + int64(cap(sh.scratch))
		sh.mu.Unlock()
	}
	return b
}

// forEachEncoding expands every stored tuple back into the full
// canonical encoding via the side tables.
func (s *collapseSet) forEachEncoding(fn func(enc []byte)) {
	var buf []byte
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.t.forEach(func(_ uint64, tuple []byte) {
			buf = buf[:0]
			for _, ct := range s.compRefs(tuple) {
				buf = append(buf, ct...)
			}
			fn(buf)
		})
		sh.mu.Unlock()
	}
}

// compRefs decodes a tuple into its component byte slices. A tuple that
// does not decode to the expected component count is an exact-stored
// fallback entry (see seen) and is returned as-is.
func (s *collapseSet) compRefs(tuple []byte) [][]byte {
	refs := make([][]byte, 0, len(s.comps))
	rest := tuple
	for i := range s.comps {
		idx, w := binary.Uvarint(rest)
		if w <= 0 {
			return [][]byte{tuple}
		}
		s.comps[i].mu.RLock()
		ok := idx < uint64(len(s.comps[i].starts))
		var e []byte
		if ok {
			e = s.comps[i].entry(uint32(idx))
		}
		s.comps[i].mu.RUnlock()
		if !ok {
			return [][]byte{tuple}
		}
		refs = append(refs, e)
		rest = rest[w:]
	}
	if len(rest) != 0 {
		return [][]byte{tuple}
	}
	return refs
}

// reset drops the stored tuples but keeps the component side tables:
// after a spill the same sub-vectors keep resolving to the same
// indices, so compression keeps working without re-paying warm-up.
func (s *collapseSet) reset() {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.t.reset()
		sh.mu.Unlock()
	}
	s.stored.Store(0)
}

// paddedMutex is a mutex padded to its own cache line.
type paddedMutex struct {
	sync.Mutex
	_ [56]byte
}

// parBitstateSet is the bitstate (supertrace) structure of the parallel
// engine. Bit words are shared across stripes and flipped with CAS, but
// the test-and-set decision for one fingerprint is serialized by a
// stripe lock so two workers racing on the same state cannot both claim
// to have stored it. Which of two hash-colliding distinct states is
// counted as stored can still depend on arrival order — bitstate
// coverage is probabilistic in the sequential engine too.
type parBitstateSet struct {
	locks      [visitedShards]paddedMutex
	bits       []uint64
	mask       uint64
	count      atomic.Int64
	contention *obs.Counter
}

func newParBitstateSet(bitsLog2 uint, contention *obs.Counter) *parBitstateSet {
	if bitsLog2 < 10 {
		bitsLog2 = 10
	}
	n := uint64(1) << bitsLog2
	return &parBitstateSet{bits: make([]uint64, n/64), mask: n - 1, contention: contention}
}

func (s *parBitstateSet) seen(fp uint64, enc []byte, _ []int) bool {
	a, b := bitstateHashes(enc, s.mask)
	lk := &s.locks[fp%visitedShards]
	if !lk.TryLock() {
		s.contention.Add(1)
		lk.Lock()
	}
	hadA := s.setBit(a)
	hadB := s.setBit(b)
	lk.Unlock()
	if hadA && hadB {
		return true
	}
	s.count.Add(1)
	return false
}

// setBit atomically sets bit pos, reporting whether it was already set.
// A CAS loop rather than atomic.Uint64.Or: the module targets go1.22.
func (s *parBitstateSet) setBit(pos uint64) bool {
	word := &s.bits[pos/64]
	bit := uint64(1) << (pos % 64)
	for {
		old := atomic.LoadUint64(word)
		if old&bit != 0 {
			return true
		}
		if atomic.CompareAndSwapUint64(word, old, old|bit) {
			return false
		}
	}
}

func (s *parBitstateSet) size() int { return int(s.count.Load()) }

func (s *parBitstateSet) bytes() int64 { return int64(len(s.bits)) * 8 }

// VisitedExact and VisitedCollapse name the exact visited-set storage
// modes for Options.Visited.
const (
	VisitedExact    = "exact"
	VisitedCollapse = "collapse"
)

// newParVisited builds the parallel engine's visited structure:
// bitstate when requested, otherwise an exact or collapse-compressed
// set per Options.Visited, wrapped in the disk-spill tier when a memory
// budget is configured.
func (c *Checker) newParVisited(contention, spilled *obs.Counter) parVisited {
	if c.opts.Bitstate {
		bits := c.opts.BitstateBits
		if bits == 0 {
			bits = 24
		}
		return newParBitstateSet(bits, contention)
	}
	var mem visitedDrainer
	if c.opts.Visited == VisitedCollapse {
		mem = newCollapseSet(c.sys.InitialState(), contention)
	} else {
		mem = newShardedSet(contention)
	}
	if c.opts.MemLimit > 0 {
		return newSpillSet(mem, c.opts.MemLimit, c.opts.SpillDir, spilled)
	}
	return mem
}
