package checker

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"pnp/internal/model"
)

// --- encTable ---

func TestEncTableBasics(t *testing.T) {
	var tab encTable
	n := 5000
	for i := 0; i < n; i++ {
		b := encOf(i)
		fp := model.Hash64(b)
		if tab.lookup(fp, b) {
			t.Fatalf("fresh entry %d present", i)
		}
		if tab.testAndSet(fp, b) {
			t.Fatalf("fresh entry %d reported present on insert", i)
		}
		if !tab.testAndSet(fp, b) {
			t.Fatalf("entry %d lost after insert", i)
		}
	}
	if tab.n != n {
		t.Fatalf("n = %d, want %d", tab.n, n)
	}
	got := 0
	tab.forEach(func(fp uint64, enc []byte) {
		if model.Hash64(enc) != fp {
			t.Fatalf("forEach fp mismatch for %q", enc)
		}
		got++
	})
	if got != n {
		t.Fatalf("forEach visited %d entries, want %d", got, n)
	}
	if tab.bytes() <= 0 {
		t.Fatal("bytes not positive")
	}
	tab.reset()
	if tab.n != 0 || tab.lookup(model.Hash64(encOf(1)), encOf(1)) {
		t.Fatal("reset did not clear table")
	}
}

// Distinct entries whose hashes collide on both the probe slot and the
// 24-bit slot tag must coexist: the table compares bytes on a tag
// match, never trusts the hash alone. The colliding pair is mined from
// real Hash64 values so the encTable contract (fp == Hash64(bytes))
// holds.
func TestEncTableFingerprintCollision(t *testing.T) {
	type key struct{ tag, slot uint64 }
	found := map[key]string{}
	var a, b []byte
	for i := 0; ; i++ {
		s := "entry-" + string(rune('a'+i%26)) + fmt.Sprint(i)
		fp := model.Hash64([]byte(s))
		k := key{fp >> encTagShift, fp & (encTableMinSlots - 1)}
		if prev, ok := found[k]; ok {
			a, b = []byte(prev), []byte(s)
			break
		}
		found[k] = s
	}
	var tab encTable
	if tab.testAndSet(model.Hash64(a), a) || tab.testAndSet(model.Hash64(b), b) {
		t.Fatal("fresh entries reported present")
	}
	if !tab.testAndSet(model.Hash64(a), a) || !tab.testAndSet(model.Hash64(b), b) {
		t.Fatal("colliding entries lost")
	}
	if tab.n != 2 {
		t.Fatalf("n = %d, want 2", tab.n)
	}
}

// --- collapse set ---

func TestCollapseSetMatchesExact(t *testing.T) {
	shape, encs, fps, endss := benchComponentStates(3000)
	exact := newShardedSet(nil)
	coll := newCollapseSet(shape, nil)
	for j := range encs {
		if got, want := coll.seen(fps[j], encs[j], endss[j]), exact.seen(fps[j], encs[j], endss[j]); got != want {
			t.Fatalf("state %d: collapse %v, exact %v", j, got, want)
		}
	}
	for j := range encs {
		if !coll.seen(fps[j], encs[j], endss[j]) {
			t.Fatalf("state %d lost from collapse set", j)
		}
	}
	if coll.size() != exact.size() {
		t.Fatalf("sizes diverge: collapse %d, exact %d", coll.size(), exact.size())
	}
	// The whole point: component-structured states store far smaller.
	if cb, eb := coll.bytes(), exact.bytes(); cb >= eb {
		t.Errorf("collapse bytes %d not smaller than exact %d", cb, eb)
	}
}

// Nil ends (the checkpoint-restore path) must intern identically to
// caller-provided ends.
func TestCollapseSetSelfSplit(t *testing.T) {
	shape, encs, fps, endss := benchComponentStates(500)
	a := newCollapseSet(shape, nil)
	b := newCollapseSet(shape, nil)
	for j := range encs {
		a.seen(fps[j], encs[j], endss[j])
		b.seen(fps[j], encs[j], nil)
	}
	if a.size() != b.size() {
		t.Fatalf("sizes diverge: with ends %d, self-split %d", a.size(), b.size())
	}
	for j := range encs {
		if !b.seen(fps[j], encs[j], endss[j]) {
			t.Fatalf("state %d interned with nil ends not found with ends", j)
		}
		if !a.seen(fps[j], encs[j], nil) {
			t.Fatalf("state %d interned with ends not found with nil ends", j)
		}
	}
}

func TestCollapseSetForEachEncodingRoundTrip(t *testing.T) {
	shape, encs, fps, endss := benchComponentStates(400)
	coll := newCollapseSet(shape, nil)
	for j := range encs {
		coll.seen(fps[j], encs[j], endss[j])
	}
	want := map[string]bool{}
	for _, e := range encs {
		want[string(e)] = true
	}
	got := 0
	coll.forEachEncoding(func(enc []byte) {
		if !want[string(enc)] {
			t.Fatalf("forEachEncoding produced unknown encoding %x", enc)
		}
		got++
	})
	if got != len(encs) {
		t.Fatalf("forEachEncoding yielded %d entries, want %d", got, len(encs))
	}
}

func TestCollapseSetConcurrent(t *testing.T) {
	shape, encs, fps, endss := benchComponentStates(2000)
	coll := newCollapseSet(shape, nil)
	const workers = 8
	var wins [workers]int
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for j := range encs {
				if !coll.seen(fps[j], encs[j], endss[j]) {
					wins[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	if coll.size() != len(encs) {
		t.Fatalf("size = %d, want %d", coll.size(), len(encs))
	}
	total := 0
	for _, n := range wins {
		total += n
	}
	if total != len(encs) {
		t.Fatalf("%d first-insert wins, want %d", total, len(encs))
	}
}

// reset keeps the side tables but drops tuples: re-inserting the same
// states must report them fresh and re-reach the same size.
func TestCollapseSetResetKeepsSideTables(t *testing.T) {
	shape, encs, fps, endss := benchComponentStates(300)
	coll := newCollapseSet(shape, nil)
	for j := range encs {
		coll.seen(fps[j], encs[j], endss[j])
	}
	coll.reset()
	if coll.size() != 0 {
		t.Fatalf("size after reset = %d", coll.size())
	}
	for j := range encs {
		if coll.seen(fps[j], encs[j], endss[j]) {
			t.Fatalf("state %d still present after reset", j)
		}
	}
	if coll.size() != len(encs) {
		t.Fatalf("size = %d, want %d", coll.size(), len(encs))
	}
}

// --- verdict / stats parity across storage modes and worker counts ---

// parityOptions builds every storage configuration the tentpole pins:
// exact, collapse, and both under a memory budget small enough to force
// spilling.
func parityOptions(t *testing.T) map[string]Options {
	t.Helper()
	return map[string]Options{
		"exact":          {Visited: VisitedExact},
		"collapse":       {Visited: VisitedCollapse},
		"exact-spill":    {Visited: VisitedExact, MemLimit: 1, SpillDir: t.TempDir()},
		"collapse-spill": {Visited: VisitedCollapse, MemLimit: 1, SpillDir: t.TempDir()},
	}
}

func TestVisitedModesVerdictParity(t *testing.T) {
	cases := []struct {
		name string
		src  string
		kind ViolationKind
	}{
		{"ok", parOKSrc, NoViolation},
		{"assertion", `
byte x;
active proctype P() { x = 1 }
active proctype Q() { x == 1 -> assert(x == 0) }`, Assertion},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sys := sysFromSource(t, tc.src)
			base := New(sys, Options{Workers: 1}).CheckSafety()
			if base.Kind != tc.kind {
				t.Fatalf("baseline verdict %s, want %s", base.Kind, tc.kind)
			}
			for name, opts := range parityOptions(t) {
				for _, workers := range []int{1, 8} {
					o := opts
					o.Workers = workers
					res := New(sysFromSource(t, tc.src), o).CheckSafety()
					if res.Kind != base.Kind || res.OK != base.OK {
						t.Errorf("%s workers=%d: verdict %s, want %s", name, workers, res.Kind, base.Kind)
					}
					if !statsEqualIgnoringElapsed(res.Stats, base.Stats) {
						t.Errorf("%s workers=%d: stats %+v, want %+v", name, workers, res.Stats, base.Stats)
					}
					if res.Trace != nil && base.Trace != nil && len(res.Trace.Prefix) != len(base.Trace.Prefix) {
						t.Errorf("%s workers=%d: counterexample length %d, want %d",
							name, workers, len(res.Trace.Prefix), len(base.Trace.Prefix))
					}
					if opts.MemLimit > 0 && res.Stats.SpilledStates == 0 {
						t.Errorf("%s workers=%d: MemLimit=1 run spilled nothing", name, workers)
					}
					if res.Stats.VisitedBytes <= 0 {
						t.Errorf("%s workers=%d: VisitedBytes = %d, want > 0", name, workers, res.Stats.VisitedBytes)
					}
				}
			}
		})
	}
}

// StatesStored parity on a reachability search, spill included.
func TestVisitedModesReachabilityParity(t *testing.T) {
	sys := sysFromSource(t, parOKSrc)
	target, err := sys.Prog.CompileGlobalExpr("x == 3")
	if err != nil {
		t.Fatal(err)
	}
	base := New(sys, Options{Workers: 1}).CheckReachable(target)
	if !base.OK {
		t.Fatalf("baseline: %s", base.Summary())
	}
	for name, opts := range parityOptions(t) {
		for _, workers := range []int{1, 8} {
			o := opts
			o.Workers = workers
			s := sysFromSource(t, parOKSrc)
			tgt, err := s.Prog.CompileGlobalExpr("x == 3")
			if err != nil {
				t.Fatal(err)
			}
			res := New(s, o).CheckReachable(tgt)
			if !res.OK {
				t.Errorf("%s workers=%d: %s", name, workers, res.Summary())
				continue
			}
			if !statsEqualIgnoringElapsed(res.Stats, base.Stats) {
				t.Errorf("%s workers=%d: stats %+v, want %+v", name, workers, res.Stats, base.Stats)
			}
			if len(res.Trace.Prefix) != len(base.Trace.Prefix) {
				t.Errorf("%s workers=%d: witness length %d, want %d",
					name, workers, len(res.Trace.Prefix), len(base.Trace.Prefix))
			}
		}
	}
}

// Collapse-compressed full searches must round-trip every stored state:
// run a search, then verify every encoding streamed out of the visited
// set decodes to a valid state of the system.
func TestCollapseSearchEncodingsDecode(t *testing.T) {
	sys := sysFromSource(t, parOKSrc)
	c := New(sys, Options{Workers: 2, Visited: VisitedCollapse})
	r := c.newParRunner("test")
	defer r.close()
	levels := r.seedRoot()
	res := &Result{}
	for li := 0; li < len(levels); li++ {
		cur := levels[li]
		if len(cur) == 0 {
			break
		}
		work := func(w *parWorker, i int) {
			node := &cur[i]
			w.trs = c.sys.SuccessorsAppend(node.st, w.arena, w.trs[:0])
			for ti := range w.trs {
				tr := w.trs[ti]
				if tr.Violation != "" {
					continue
				}
				w.scratch, w.ends = tr.Next.AppendComponentKeys(w.scratch[:0], w.ends[:0])
				if r.visited.seen(model.Hash64(w.scratch), w.scratch, w.ends) {
					continue
				}
				r.stored.Add(1)
				w.next = append(w.next, parNode{st: tr.Next, parent: int32(i), in: tr})
			}
		}
		r.runLevel(len(cur), work)
		next, _ := r.collect(res)
		levels = append(levels, next)
	}
	shape := sys.InitialState()
	n := 0
	r.visited.(visitedDrainer).forEachEncoding(func(enc []byte) {
		st, err := model.DecodeKey(shape, enc)
		if err != nil {
			t.Fatalf("stored encoding does not decode: %v", err)
		}
		if !bytes.Equal(st.AppendKey(nil), enc) {
			t.Fatal("stored encoding does not round-trip")
		}
		n++
	})
	if n != r.visited.size() {
		t.Fatalf("streamed %d encodings, size() = %d", n, r.visited.size())
	}
	if n == 0 {
		t.Fatal("no states stored")
	}
}
