package checker

import (
	"strings"
	"testing"

	"pnp/internal/model"
	"pnp/internal/pml"
)

func sysFromSource(t *testing.T, src string) *model.System {
	t.Helper()
	prog, err := pml.CompileSource(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	s := model.New(prog)
	if err := s.SpawnActive(); err != nil {
		t.Fatalf("SpawnActive: %v", err)
	}
	return s
}

func TestVerifiedTermination(t *testing.T) {
	s := sysFromSource(t, `
byte x;
active proctype P() { x = 1; x = 2 }
active proctype Q() { x = 3 }`)
	res := New(s, Options{}).CheckSafety()
	if !res.OK {
		t.Fatalf("expected OK, got %s", res.Summary())
	}
	if res.Stats.StatesStored == 0 || res.Stats.Transitions == 0 {
		t.Errorf("stats look empty: %+v", res.Stats)
	}
}

func TestAssertionViolationFound(t *testing.T) {
	s := sysFromSource(t, `
byte x;
active proctype P() { x = 1 }
active proctype Q() {
	x == 1 -> assert(x == 0)
}`)
	res := New(s, Options{}).CheckSafety()
	if res.OK || res.Kind != Assertion {
		t.Fatalf("expected assertion violation, got %s", res.Summary())
	}
	if res.Trace == nil || res.Trace.Len() == 0 {
		t.Fatal("no counterexample trace")
	}
	if !strings.Contains(res.Trace.String(), "assert") {
		t.Errorf("trace does not mention assert:\n%s", res.Trace)
	}
}

func TestDeadlockDetected(t *testing.T) {
	// Two processes each waiting to receive before sending: classic cycle.
	s := sysFromSource(t, `
chan a = [0] of { byte };
chan b = [0] of { byte };
active proctype P() { byte x; a?x; b!1 }
active proctype Q() { byte y; b?y; a!1 }`)
	res := New(s, Options{}).CheckSafety()
	if res.OK || res.Kind != Deadlock {
		t.Fatalf("expected deadlock, got %s", res.Summary())
	}
	if !strings.Contains(res.Message, "P[0]") || !strings.Contains(res.Message, "Q[1]") {
		t.Errorf("deadlock message should list stuck processes: %q", res.Message)
	}
}

func TestEndLabelSuppressesDeadlock(t *testing.T) {
	// A server blocked at an end-labeled receive loop is a valid end state.
	s := sysFromSource(t, `
chan c = [0] of { byte };
active proctype Server() {
	byte m;
	end: do
	:: c?m
	od
}
active proctype Client() {
	c!1
}`)
	res := New(s, Options{}).CheckSafety()
	if !res.OK {
		t.Fatalf("expected OK (end label), got %s", res.Summary())
	}
}

func TestWithoutEndLabelSameSystemDeadlocks(t *testing.T) {
	s := sysFromSource(t, `
chan c = [0] of { byte };
active proctype Server() {
	byte m;
	do
	:: c?m
	od
}
active proctype Client() {
	c!1
}`)
	res := New(s, Options{}).CheckSafety()
	if res.OK || res.Kind != Deadlock {
		t.Fatalf("expected deadlock without end label, got %s", res.Summary())
	}
}

func TestInvariantViolation(t *testing.T) {
	s := sysFromSource(t, `
byte count;
active proctype P() { count = count + 1; count = count + 1 }`)
	prog := s.Prog
	inv, err := InvariantFromSource(prog, "bounded", "count < 2")
	if err != nil {
		t.Fatal(err)
	}
	res := New(s, Options{Invariants: []Invariant{inv}}).CheckSafety()
	if res.OK || res.Kind != InvariantViolation {
		t.Fatalf("expected invariant violation, got %s", res.Summary())
	}
	if !strings.Contains(res.Message, "bounded") {
		t.Errorf("message = %q", res.Message)
	}
}

func TestInvariantHolds(t *testing.T) {
	s := sysFromSource(t, `
byte count;
active proctype P() { count = count + 1 }`)
	inv, err := InvariantFromSource(s.Prog, "bounded", "count <= 1")
	if err != nil {
		t.Fatal(err)
	}
	res := New(s, Options{Invariants: []Invariant{inv}}).CheckSafety()
	if !res.OK {
		t.Fatalf("expected OK, got %s", res.Summary())
	}
}

func TestPetersonMutualExclusion(t *testing.T) {
	// Peterson's algorithm for two processes: the mutex invariant holds.
	src := `
bool flag0, flag1;
byte turn;
byte incrit;
active proctype P0() {
	do
	:: flag0 = 1;
	   turn = 1;
	   (flag1 == 0 || turn == 0);
	   incrit = incrit + 1;
	   assert(incrit == 1);
	   incrit = incrit - 1;
	   flag0 = 0
	od
}
active proctype P1() {
	do
	:: flag1 = 1;
	   turn = 0;
	   (flag0 == 0 || turn == 1);
	   incrit = incrit + 1;
	   assert(incrit == 1);
	   incrit = incrit - 1;
	   flag1 = 0
	od
}`
	s := sysFromSource(t, src)
	res := New(s, Options{IgnoreDeadlock: true}).CheckSafety()
	if !res.OK {
		t.Fatalf("Peterson should satisfy mutex, got %s\n%s", res.Summary(), res.Trace)
	}
}

func TestBrokenMutexCaught(t *testing.T) {
	// Naive flag-based entry (no turn variable) violates mutual exclusion.
	src := `
byte incrit;
active [2] proctype P() {
	do
	:: incrit = incrit + 1;
	   assert(incrit == 1);
	   incrit = incrit - 1
	od
}`
	s := sysFromSource(t, src)
	res := New(s, Options{IgnoreDeadlock: true}).CheckSafety()
	if res.OK || res.Kind != Assertion {
		t.Fatalf("expected mutex violation, got %s", res.Summary())
	}
}

func TestBFSShortestCounterexample(t *testing.T) {
	// The bug is reachable in 2 steps, but DFS may wander first.
	src := `
byte x;
active proctype P() {
	do
	:: x < 100 -> x = x + 1
	:: x = 99
	od
}
active proctype Watch() {
	x == 99 -> assert(false)
}`
	s1 := sysFromSource(t, src)
	dfs := New(s1, Options{IgnoreDeadlock: true}).CheckSafety()
	s2 := sysFromSource(t, src)
	bfs := New(s2, Options{IgnoreDeadlock: true, BFS: true}).CheckSafety()
	if dfs.OK || bfs.OK {
		t.Fatalf("both searches should find the bug: dfs=%v bfs=%v", dfs.OK, bfs.OK)
	}
	if bfs.Trace.Len() > dfs.Trace.Len() {
		t.Errorf("BFS trace (%d) longer than DFS trace (%d)", bfs.Trace.Len(), dfs.Trace.Len())
	}
	if bfs.Trace.Len() != 3 { // x=99; guard; assert
		t.Errorf("BFS trace length = %d, want 3:\n%s", bfs.Trace.Len(), bfs.Trace)
	}
}

func TestMaxStatesLimit(t *testing.T) {
	s := sysFromSource(t, `
byte x, y;
active proctype P() {
	do
	:: x = x + 1
	:: y = y + 1
	od
}`)
	res := New(s, Options{MaxStates: 100, IgnoreDeadlock: true}).CheckSafety()
	if res.OK || res.Kind != SearchLimit || !res.Stats.Truncated {
		t.Fatalf("expected truncated search, got %s", res.Summary())
	}
}

func TestBitstateFindsViolation(t *testing.T) {
	s := sysFromSource(t, `
byte x;
active proctype P() {
	x = 1;
	assert(x == 0)
}`)
	res := New(s, Options{Bitstate: true, BitstateBits: 16}).CheckSafety()
	if res.OK || res.Kind != Assertion {
		t.Fatalf("bitstate search missed the violation: %s", res.Summary())
	}
}

func TestBitstateExploresCleanSystem(t *testing.T) {
	s := sysFromSource(t, `
byte x;
active proctype P() { x = 1; x = 2; x = 3 }`)
	res := New(s, Options{Bitstate: true}).CheckSafety()
	if !res.OK {
		t.Fatalf("got %s", res.Summary())
	}
}

func TestRuntimeErrorSurfaces(t *testing.T) {
	s := sysFromSource(t, `
byte x, y;
active proctype P() { y = 1 / x }`)
	res := New(s, Options{}).CheckSafety()
	if res.OK || res.Kind != RuntimeError {
		t.Fatalf("expected runtime error, got %s", res.Summary())
	}
}

func TestCheckReachable(t *testing.T) {
	s := sysFromSource(t, `
byte x;
active proctype P() {
	if
	:: x = 1
	:: x = 2
	fi
}`)
	two, err := s.Prog.CompileGlobalExpr("x == 2")
	if err != nil {
		t.Fatal(err)
	}
	res := New(s, Options{}).CheckReachable(two)
	if !res.OK {
		t.Fatalf("x==2 should be reachable: %s", res.Summary())
	}
	if res.Trace == nil || len(res.Trace.Prefix) != 1 {
		t.Errorf("witness should be one step, got %v", res.Trace)
	}
	three, err := s.Prog.CompileGlobalExpr("x == 3")
	if err != nil {
		t.Fatal(err)
	}
	if res := New(s, Options{}).CheckReachable(three); res.OK {
		t.Error("x==3 should be unreachable")
	}
}

func TestCheckEventuallyReachable(t *testing.T) {
	// From every state, can x still become 2? Not after taking the x=1
	// branch, which locks x at 1.
	s := sysFromSource(t, `
byte x;
active proctype P() {
	if
	:: x = 1
	:: x = 2
	fi
}`)
	two, err := s.Prog.CompileGlobalExpr("x == 2")
	if err != nil {
		t.Fatal(err)
	}
	res := New(s, Options{}).CheckEventuallyReachable(two)
	if res.OK {
		t.Fatal("AG EF (x==2) should fail: the x=1 branch makes it unreachable")
	}
	if res.Trace == nil {
		t.Error("no trace to the dead-end state")
	}

	// A system that always retains the ability to reach x==2.
	s2 := sysFromSource(t, `
byte x;
active proctype P() {
	do
	:: x = 1
	:: x = 2
	od
}`)
	two2, err := s2.Prog.CompileGlobalExpr("x == 2")
	if err != nil {
		t.Fatal(err)
	}
	if res := New(s2, Options{IgnoreDeadlock: true}).CheckEventuallyReachable(two2); !res.OK {
		t.Fatalf("AG EF (x==2) should hold in the loop system: %s", res.Summary())
	}
}

func TestReportUnreached(t *testing.T) {
	// The x==99 branch can never fire: x stays below 3.
	s := sysFromSource(t, `
byte x;
active proctype P() {
	do
	:: x < 2 -> x = x + 1
	:: x == 99 -> x = 0
	:: x == 2 -> break
	od
}`)
	res := New(s, Options{ReportUnreached: true}).CheckSafety()
	if !res.OK {
		t.Fatalf("got %s", res.Summary())
	}
	found := false
	for _, u := range res.Unreached {
		if strings.Contains(u, "P:") {
			found = true
		}
	}
	if !found {
		t.Errorf("dead branch not reported; unreached = %v", res.Unreached)
	}

	// A fully exercised proctype reports nothing.
	s2 := sysFromSource(t, `
byte y;
active proctype Q() { y = 1; y = 2 }`)
	res2 := New(s2, Options{ReportUnreached: true}).CheckSafety()
	if !res2.OK || len(res2.Unreached) != 0 {
		t.Errorf("unexpected unreached report: %v", res2.Unreached)
	}
}

func TestDFSAndBFSAgreeOnStateCount(t *testing.T) {
	src := `
byte x;
chan c = [2] of { byte };
active proctype P() { c!1; c!2; x = 1 }
active proctype Q() { byte v; c?v; c?v }`
	s1 := sysFromSource(t, src)
	dfs := New(s1, Options{}).CheckSafety()
	s2 := sysFromSource(t, src)
	bfs := New(s2, Options{BFS: true}).CheckSafety()
	if !dfs.OK || !bfs.OK {
		t.Fatalf("dfs=%s bfs=%s", dfs.Summary(), bfs.Summary())
	}
	if dfs.Stats.StatesStored != bfs.Stats.StatesStored {
		t.Errorf("state counts differ: DFS %d, BFS %d",
			dfs.Stats.StatesStored, bfs.Stats.StatesStored)
	}
}
