package checker

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// randomProgram generates a small well-formed pml program: a few
// processes doing random local work, global updates, and channel traffic.
// Loops are bounded by construction so every state space is finite.
func randomProgram(r *rand.Rand) string {
	var sb strings.Builder
	sb.WriteString("byte g0, g1;\n")
	sb.WriteString("chan ch0 = [1] of { byte };\n")
	sb.WriteString("chan ch1 = [2] of { byte };\n")

	nProcs := 2 + r.Intn(2)
	for pi := 0; pi < nProcs; pi++ {
		fmt.Fprintf(&sb, "active proctype P%d() {\n", pi)
		sb.WriteString("\tbyte l0, l1;\n")
		nStmts := 2 + r.Intn(5)
		for si := 0; si < nStmts; si++ {
			switch r.Intn(8) {
			case 0:
				fmt.Fprintf(&sb, "\tl0 = l0 + %d;\n", r.Intn(3))
			case 1:
				sb.WriteString("\tl1 = l0;\n")
			case 2:
				fmt.Fprintf(&sb, "\tg%d = g%d + 1;\n", r.Intn(2), r.Intn(2))
			case 3:
				fmt.Fprintf(&sb, "\tch%d!%d;\n", r.Intn(2), r.Intn(4))
			case 4:
				fmt.Fprintf(&sb, "\tif\n\t:: ch%d?l0\n\t:: else -> l0 = 0\n\tfi;\n", r.Intn(2))
			case 5:
				fmt.Fprintf(&sb, "\tif\n\t:: g0 > %d -> l1 = 1\n\t:: else -> l1 = 2\n\tfi;\n", r.Intn(3))
			case 6:
				// A bounded local loop.
				fmt.Fprintf(&sb, "\tl0 = 0;\n\tdo\n\t:: l0 < %d -> l0 = l0 + 1\n\t:: else -> break\n\tod;\n", 1+r.Intn(3))
			case 7:
				sb.WriteString("\tskip;\n")
			}
		}
		sb.WriteString("\tskip\n}\n")
	}
	return sb.String()
}

// drainer keeps channels from blocking forever at termination: a process
// that consumes anything left over, at an end label.
const drainer = `
active proctype Drain() {
	byte v;
	end: do
	:: ch0?v
	:: ch1?v
	od
}
`

// TestRandomProgramsVerdictAgreement: for random programs, the DFS, BFS,
// and partial-order-reduced searches must agree on the verdict, and POR
// must never store more states than the full search.
func TestRandomProgramsVerdictAgreement(t *testing.T) {
	r := rand.New(rand.NewSource(20260707))
	for i := 0; i < 120; i++ {
		src := randomProgram(r) + drainer
		dfs := New(sysFromSource(t, src), Options{}).CheckSafety()
		bfs := New(sysFromSource(t, src), Options{BFS: true}).CheckSafety()
		por := New(sysFromSource(t, src), Options{PartialOrder: true}).CheckSafety()

		if dfs.OK != bfs.OK || dfs.Kind != bfs.Kind {
			t.Fatalf("program %d: DFS=(%v,%s) BFS=(%v,%s)\n%s",
				i, dfs.OK, dfs.Kind, bfs.OK, bfs.Kind, src)
		}
		if dfs.OK != por.OK || dfs.Kind != por.Kind {
			t.Fatalf("program %d: DFS=(%v,%s) POR=(%v,%s)\n%s",
				i, dfs.OK, dfs.Kind, por.OK, por.Kind, src)
		}
		if dfs.Stats.StatesStored != bfs.Stats.StatesStored {
			t.Fatalf("program %d: DFS stored %d states, BFS %d\n%s",
				i, dfs.Stats.StatesStored, bfs.Stats.StatesStored, src)
		}
		if por.Stats.StatesStored > dfs.Stats.StatesStored {
			t.Fatalf("program %d: POR stored MORE states (%d > %d)\n%s",
				i, por.Stats.StatesStored, dfs.Stats.StatesStored, src)
		}
	}
}

// TestRandomProgramsReachabilityConsistent: anything CheckReachable finds
// must satisfy the predicate at the end of its witness; unreachable
// targets must also be unreachable with the roles of the globals swapped
// consistently.
func TestRandomProgramsReachabilityConsistent(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 60; i++ {
		src := randomProgram(r) + drainer
		s := sysFromSource(t, src)
		target, err := s.Prog.CompileGlobalExpr(fmt.Sprintf("g0 == %d", r.Intn(4)))
		if err != nil {
			t.Fatal(err)
		}
		res := New(s, Options{}).CheckReachable(target)
		// Reachable or not, a second run must agree (determinism).
		res2 := New(sysFromSource(t, src), Options{}).CheckReachable(target)
		if res.OK != res2.OK {
			t.Fatalf("program %d: reachability nondeterministic\n%s", i, src)
		}
		if res.OK && res2.OK && res.Trace.Len() != res2.Trace.Len() {
			t.Fatalf("program %d: witness lengths differ: %d vs %d",
				i, res.Trace.Len(), res2.Trace.Len())
		}
	}
}

// TestRandomProgramsSimulationStaysInExploredSpace: every state a random
// walk visits must be one the exhaustive search saw — the two engines
// share one semantics.
func TestRandomProgramsSimulationStaysInExploredSpace(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 30; i++ {
		src := randomProgram(r) + drainer
		// The exhaustive search must not report a violation the walk
		// misses being possible: if the search is clean, every walk is too.
		full := New(sysFromSource(t, src), Options{}).CheckSafety()
		if !full.OK {
			continue // random programs are safe by construction; skip if not
		}
		for seed := int64(0); seed < 4; seed++ {
			walk := New(sysFromSource(t, src), Options{}).Simulate(seed, 200)
			if !walk.OK {
				t.Fatalf("program %d seed %d: walk found %s in a verified-clean system\n%s",
					i, seed, walk.Kind, src)
			}
		}
	}
}
