package checker

import (
	"fmt"
	"strconv"
	"time"

	"pnp/internal/ltl"
	"pnp/internal/model"
	"pnp/internal/pml"
	"pnp/internal/trace"
)

// PropsFromSource compiles a map of atomic-proposition names to pml
// global-scope expressions.
func PropsFromSource(prog *pml.Compiled, defs map[string]string) (map[string]pml.RExpr, error) {
	out := make(map[string]pml.RExpr, len(defs))
	for name, src := range defs {
		e, err := prog.CompileGlobalExpr(src)
		if err != nil {
			return nil, fmt.Errorf("checker: proposition %s: %w", name, err)
		}
		out[name] = e
	}
	return out, nil
}

// CheckLTL verifies the system against an LTL formula (Spin syntax). The
// named atomic propositions must all be defined in props as global-state
// predicates. Finite runs are stutter-extended: a deadlocked or terminated
// state repeats forever.
func (c *Checker) CheckLTL(formula string, props map[string]pml.RExpr) *Result {
	f, err := ltl.Parse(formula)
	if err != nil {
		return &Result{Kind: RuntimeError, Message: err.Error()}
	}
	return c.CheckLTLFormula(f, props)
}

// product node and successor types for the nested DFS. copy is the
// weak-fairness counter of the Choueka construction (always 0 when
// fairness is off).
type pnode struct {
	st   *model.State
	q    int
	copy int
}

type psucc struct {
	to        int
	tr        model.Transition
	stutter   bool
	violation string
}

const (
	flagBlue uint8 = 1 << iota
	flagRed
	flagOnStack
)

// CheckLTLFormula is CheckLTL for a pre-parsed formula. With
// Options.StrongFairness it dispatches to the fair-SCC search.
func (c *Checker) CheckLTLFormula(f *ltl.Formula, props map[string]pml.RExpr) *Result {
	if c.opts.StrongFairness {
		var res *Result
		withPhaseLabel("liveness-strongfair", func() { res = c.CheckLTLFormulaStrongFair(f, props) })
		return res
	}
	var res *Result
	withPhaseLabel("liveness-ndfs", func() { res = c.checkLTLNestedDFS(f, props) })
	return res
}

func (c *Checker) checkLTLNestedDFS(f *ltl.Formula, props map[string]pml.RExpr) *Result {
	start := time.Now()
	res := &Result{OK: true}
	defer func() { res.Stats.Elapsed = time.Since(start) }()
	m := c.newMeter("liveness-ndfs")
	defer func() { m.finish(&res.Stats, res.Stats.MaxDepth) }()
	cc := c.newCanceler()

	aut, err := ltl.Translate(ltl.Not(f))
	if err != nil {
		res.Kind = RuntimeError
		res.Message = err.Error()
		res.OK = false
		return res
	}
	atomExprs := make([]pml.RExpr, len(aut.Atoms))
	for i, name := range aut.Atoms {
		e, ok := props[name]
		if !ok {
			res.Kind = RuntimeError
			res.OK = false
			res.Message = fmt.Sprintf("undefined atomic proposition %q", name)
			return res
		}
		atomExprs[i] = e
	}

	// valuation evaluates the automaton's atoms on a system state.
	valuation := func(st *model.State) (func(int) bool, string) {
		vals := make([]bool, len(atomExprs))
		for i, e := range atomExprs {
			v, err := c.sys.EvalGlobal(st, e)
			if err != nil {
				return nil, err.Error()
			}
			vals[i] = v != 0
		}
		return func(i int) bool { return vals[i] }, ""
	}

	// Weak fairness (Choueka construction): the product runs in copies
	// 0..nProcs+1. Copy 0 waits for an accepting automaton state; copy i
	// (1..nProcs) is passed when process i-1 takes the step or is disabled
	// in the source state; copy nProcs+1 is the accepting layer and resets
	// to 0. An accepting cycle then gives every continuously enabled
	// process infinitely many steps.
	nProcs := c.sys.NumInstances()
	acceptCopy := 0
	if c.opts.WeakFairness {
		acceptCopy = nProcs + 1
	}
	accepting := func(nd pnode) bool {
		if c.opts.WeakFairness {
			return nd.copy == acceptCopy
		}
		return aut.States[nd.q].Accepting
	}

	var arena []pnode
	index := map[string]int{}
	var flags []uint8
	intern := func(st *model.State, key string, q, copy int) int {
		k := key + "#" + strconv.Itoa(q) + "#" + strconv.Itoa(copy)
		if i, ok := index[k]; ok {
			res.Stats.StatesMatched++
			return i
		}
		index[k] = len(arena)
		arena = append(arena, pnode{st: st, q: q, copy: copy})
		flags = append(flags, 0)
		res.Stats.StatesStored++
		m.tick(&res.Stats, res.Stats.MaxDepth)
		return len(arena) - 1
	}

	// nextCopy advances the fairness counter for a step out of nd whose
	// acting processes are in moved (nil for a stutter step), into
	// automaton state q2. enabled reports per-process enabledness in the
	// source system state.
	nextCopy := func(nd pnode, q2 int, moved map[int]bool, enabled func(int) bool) int {
		if !c.opts.WeakFairness {
			return 0
		}
		cp := nd.copy
		if cp == acceptCopy {
			cp = 0
		}
		if cp == 0 && aut.States[q2].Accepting {
			cp = 1
		}
		for cp >= 1 && cp <= nProcs {
			p := cp - 1
			if moved[p] || !enabled(p) {
				cp++
				continue
			}
			break
		}
		return cp
	}

	// successors expands one product node: system step (or stutter at
	// quiescence) followed by an automaton step on the *new* state's labels.
	successors := func(i int) ([]psucc, string) {
		nd := arena[i]
		trs := c.sys.Successors(nd.st)
		res.Stats.Transitions += len(trs)
		var out []psucc

		var enabledCache []int8
		enabled := func(p int) bool {
			if enabledCache == nil {
				enabledCache = make([]int8, nProcs)
			}
			if enabledCache[p] == 0 {
				if c.sys.ProcEnabled(nd.st, p) {
					enabledCache[p] = 1
				} else {
					enabledCache[p] = -1
				}
			}
			return enabledCache[p] == 1
		}

		step := func(next *model.State, key string, tr model.Transition, moved map[int]bool, stutter bool) string {
			val, verr := valuation(next)
			if verr != "" {
				return verr
			}
			for _, at := range aut.States[nd.q].Trans {
				if at.Sat(val) {
					cp := nextCopy(nd, at.Dst, moved, enabled)
					out = append(out, psucc{to: intern(next, key, at.Dst, cp), tr: tr, stutter: stutter})
				}
			}
			return ""
		}
		if len(trs) == 0 {
			if verr := step(nd.st, nd.st.Key(), model.Transition{}, nil, true); verr != "" {
				return nil, verr
			}
			return out, ""
		}
		for _, tr := range trs {
			if tr.Violation != "" {
				out = append(out, psucc{to: -1, tr: tr, violation: tr.Violation})
				continue
			}
			moved := map[int]bool{tr.Proc: true}
			if tr.Partner >= 0 {
				moved[tr.Partner] = true
			}
			if verr := step(tr.Next, tr.Next.Key(), tr, moved, false); verr != "" {
				return nil, verr
			}
		}
		return out, ""
	}

	succEvent := func(s psucc) trace.Event {
		if s.stutter {
			return trace.Event{Action: "(stutter)"}
		}
		return eventOf(c.sys, s.tr)
	}

	// Initial product nodes.
	init := c.sys.InitialState()
	val0, verr := valuation(init)
	if verr != "" {
		res.OK = false
		res.Kind = RuntimeError
		res.Message = verr
		return res
	}
	var roots []int
	initKey := init.Key()
	for _, at := range aut.InitTrans {
		if at.Sat(val0) {
			cp := 0
			if c.opts.WeakFairness && aut.States[at.Dst].Accepting {
				cp = 1
			}
			roots = append(roots, intern(init, initKey, at.Dst, cp))
		}
	}

	type frame struct {
		node int
		in   psucc
		succ []psucc
		idx  int
	}
	var stack []frame

	prefixEvents := func() []trace.Event {
		var out []trace.Event
		for i := 1; i < len(stack); i++ {
			out = append(out, succEvent(stack[i].in))
		}
		return out
	}

	failSafety := func(s psucc) *Result {
		res.OK = false
		res.Kind = violationKind(s.violation)
		res.Message = s.violation
		tr := &trace.Trace{Prefix: prefixEvents(), Final: s.violation}
		tr.Prefix = append(tr.Prefix, succEvent(s))
		res.Trace = tr
		return res
	}

	// redSearch looks for a path from seed back to seed or to any node on
	// the blue stack; it returns the cycle events on success.
	redSearch := func(seed int) ([]trace.Event, string) {
		type rframe struct {
			node int
			in   psucc
			succ []psucc
			idx  int
		}
		seedSucc, verr := successors(seed)
		if verr != "" {
			return nil, verr
		}
		rstack := []rframe{{node: seed, succ: seedSucc}}
		for len(rstack) > 0 {
			if cc.hit() {
				return nil, ""
			}
			top := &rstack[len(rstack)-1]
			if top.idx >= len(top.succ) {
				rstack = rstack[:len(rstack)-1]
				continue
			}
			s := top.succ[top.idx]
			top.idx++
			if s.violation != "" {
				continue // safety violations are reported by the blue search
			}
			if s.to == seed || flags[s.to]&flagOnStack != 0 {
				// Cycle found: red path plus (if needed) the blue-stack
				// segment from the hit node back to the seed.
				var cyc []trace.Event
				for i := 1; i < len(rstack); i++ {
					cyc = append(cyc, succEvent(rstack[i].in))
				}
				cyc = append(cyc, succEvent(s))
				if s.to != seed {
					hit := -1
					for i, fr := range stack {
						if fr.node == s.to {
							hit = i
							break
						}
					}
					for i := hit + 1; i < len(stack); i++ {
						cyc = append(cyc, succEvent(stack[i].in))
					}
				}
				return cyc, ""
			}
			if flags[s.to]&flagRed != 0 {
				continue
			}
			flags[s.to] |= flagRed
			ss, verr := successors(s.to)
			if verr != "" {
				return nil, verr
			}
			rstack = append(rstack, rframe{node: s.to, in: s, succ: ss})
		}
		return nil, ""
	}

	reportCycle := func(cyc []trace.Event) *Result {
		res.OK = false
		res.Kind = AcceptanceCycle
		res.Message = fmt.Sprintf("LTL property violated: %s", f)
		res.Trace = &trace.Trace{Prefix: prefixEvents(), Cycle: cyc, Final: res.Message}
		return res
	}

	for _, root := range roots {
		if flags[root]&flagBlue != 0 {
			continue
		}
		flags[root] |= flagBlue | flagOnStack
		rootSucc, verr := successors(root)
		if verr != "" {
			res.OK = false
			res.Kind = RuntimeError
			res.Message = verr
			return res
		}
		stack = append(stack[:0], frame{node: root, succ: rootSucc})
		for len(stack) > 0 {
			if cc.hit() {
				return cc.cancelResult(res)
			}
			if len(stack) > res.Stats.MaxDepth {
				res.Stats.MaxDepth = len(stack)
			}
			top := &stack[len(stack)-1]
			if top.idx >= len(top.succ) {
				// Postorder: run the red search from accepting nodes.
				if accepting(arena[top.node]) {
					flags[top.node] |= flagRed
					cyc, verr := redSearch(top.node)
					if verr != "" {
						res.OK = false
						res.Kind = RuntimeError
						res.Message = verr
						return res
					}
					if cyc != nil {
						return reportCycle(cyc)
					}
				}
				flags[top.node] &^= flagOnStack
				stack = stack[:len(stack)-1]
				continue
			}
			s := top.succ[top.idx]
			top.idx++
			if s.violation != "" {
				return failSafety(s)
			}
			if flags[s.to]&flagBlue != 0 {
				continue
			}
			if c.opts.MaxStates > 0 && res.Stats.StatesStored > c.opts.MaxStates {
				res.Stats.Truncated = true
				res.OK = false
				res.Kind = SearchLimit
				res.Message = fmt.Sprintf("state limit %d exceeded", c.opts.MaxStates)
				return res
			}
			flags[s.to] |= flagBlue | flagOnStack
			ss, verr := successors(s.to)
			if verr != "" {
				res.OK = false
				res.Kind = RuntimeError
				res.Message = verr
				return res
			}
			stack = append(stack, frame{node: s.to, in: s, succ: ss})
		}
	}
	return res
}
