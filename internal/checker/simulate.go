package checker

import (
	"fmt"
	"math/rand"
	"time"

	"pnp/internal/trace"
)

// Simulate performs a seeded random walk of up to maxSteps transitions —
// Spin's simulation mode. It stops early at an assertion violation,
// runtime error, invariant violation, or quiescence (reporting deadlock
// when the final state is not a valid end state). The walk so far is
// returned as the result's trace.
func (c *Checker) Simulate(seed int64, maxSteps int) *Result {
	start := time.Now()
	r := rand.New(rand.NewSource(seed))
	res := &Result{OK: true, Trace: &trace.Trace{}}
	defer func() { res.Stats.Elapsed = time.Since(start) }()

	st := c.sys.InitialState()
	for step := 0; step < maxSteps; step++ {
		trs := c.sys.Successors(st)
		res.Stats.Transitions += len(trs)
		// stateProblem checks invariants always and deadlock when the
		// state is quiescent.
		if kind, msg := c.stateProblem(st, len(trs)); kind != NoViolation {
			res.OK = false
			res.Kind = kind
			res.Message = msg
			res.Trace.Final = msg
			return res
		}
		if len(trs) == 0 {
			res.Trace.Final = fmt.Sprintf("all processes at valid end states after %d steps", step)
			return res
		}
		tr := trs[r.Intn(len(trs))]
		res.Trace.Prefix = append(res.Trace.Prefix, eventOf(c.sys, tr))
		if tr.Violation != "" {
			res.OK = false
			res.Kind = violationKind(tr.Violation)
			res.Message = tr.Violation
			res.Trace.Final = tr.Violation
			return res
		}
		st = tr.Next
		res.Stats.StatesStored++
		res.Stats.MaxDepth = step + 1
	}
	res.Trace.Final = fmt.Sprintf("walk truncated after %d steps", maxSteps)
	return res
}
