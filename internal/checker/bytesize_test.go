package checker

import "testing"

func TestParseByteSize(t *testing.T) {
	cases := map[string]int64{
		"":       0,
		"123":    123,
		"64KB":   64_000,
		"512mb":  512_000_000,
		"2GB":    2_000_000_000,
		"1TiB":   1 << 40,
		"64KiB":  64 << 10,
		"512MiB": 512 << 20,
		"2GiB":   2 << 30,
		"1.5GiB": 3 << 29,
		"100 MB": 100_000_000,
		"7B":     7,
		"3k":     3 << 10,
		"3m":     3 << 20,
	}
	for in, want := range cases {
		got, err := ParseByteSize(in)
		if err != nil {
			t.Errorf("ParseByteSize(%q): %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("ParseByteSize(%q) = %d, want %d", in, got, want)
		}
	}
	for _, in := range []string{"nope", "12XB", "-5MB", "GB"} {
		if v, err := ParseByteSize(in); err == nil {
			t.Errorf("ParseByteSize(%q) = %d, want error", in, v)
		}
	}
}
