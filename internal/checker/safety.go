package checker

import (
	"fmt"
	"strings"
	"time"

	"pnp/internal/model"
	"pnp/internal/pml"
	"pnp/internal/trace"
)

// CheckSafety explores the reachable state space and reports the first
// assertion violation, runtime error, invariant violation, or invalid end
// state (deadlock). With Options.BFS the counterexample is shortest.
func (c *Checker) CheckSafety() *Result {
	var res *Result
	if c.parallelEligible() {
		withPhaseLabel("safety-par-bfs", func() { res = c.checkSafetyPar() })
	} else if c.opts.BFS {
		withPhaseLabel("safety-bfs", func() { res = c.checkSafetyBFS() })
	} else {
		phase := "safety-dfs"
		if c.opts.PartialOrder {
			phase = "safety-dfs-por"
		}
		withPhaseLabel(phase, func() { res = c.checkSafetyDFS() })
	}
	return res
}

// stateProblem checks invariants and deadlock for a state; it returns a
// non-nil partial result on violation.
func (c *Checker) stateProblem(st *model.State, numSucc int) (ViolationKind, string) {
	for _, inv := range c.opts.Invariants {
		v, err := c.sys.EvalGlobal(st, inv.Expr)
		if err != nil {
			return RuntimeError, fmt.Sprintf("invariant %s: %s", inv.Name, err)
		}
		if v == 0 {
			return InvariantViolation, fmt.Sprintf("invariant %s violated", inv.Name)
		}
	}
	if numSucc == 0 && !c.opts.IgnoreDeadlock {
		var stuck []string
		for i := range c.sys.Instances() {
			if !c.sys.AtEndState(st, i) {
				stuck = append(stuck, c.sys.ProcName(i))
			}
		}
		if len(stuck) > 0 {
			return Deadlock, "processes blocked outside valid end states: " + strings.Join(stuck, ", ")
		}
	}
	return NoViolation, ""
}

// collectUnreached lists edges of every instantiated proctype that were
// never executed.
func (c *Checker) collectUnreached(executed map[*pml.Edge]bool) []string {
	seenProc := map[string]bool{}
	var out []string
	for _, inst := range c.sys.Instances() {
		p := inst.Proc
		if seenProc[p.Name] {
			continue
		}
		seenProc[p.Name] = true
		for ni := range p.Nodes {
			for ei := range p.Nodes[ni].Edges {
				e := &p.Nodes[ni].Edges[ei]
				if !executed[e] {
					out = append(out, fmt.Sprintf("%s: %s at %s", p.Name, e.Label, e.Pos))
				}
			}
		}
	}
	return out
}

func violationKind(msg string) ViolationKind {
	if msg == "assertion violated" {
		return Assertion
	}
	return RuntimeError
}

type dfsFrame struct {
	st  *model.State
	key string
	in  model.Transition // transition that produced this frame; Edge==nil at root
	trs []model.Transition
	idx int
}

func (c *Checker) checkSafetyDFS() *Result {
	start := time.Now()
	visited := c.newVisited()
	res := &Result{OK: true}
	defer func() { res.Stats.Elapsed = time.Since(start) }()
	phase := "safety-dfs"
	if c.opts.PartialOrder {
		phase = "safety-dfs-por"
	}
	m := c.newMeter(phase)
	defer func() { m.finish(&res.Stats, res.Stats.MaxDepth) }()
	cc := c.newCanceler()

	var executed map[*pml.Edge]bool
	if c.opts.ReportUnreached && !c.opts.PartialOrder {
		executed = make(map[*pml.Edge]bool)
	}
	mark := func(trs []model.Transition) {
		if executed == nil {
			return
		}
		for _, tr := range trs {
			if tr.Violation != "" {
				continue
			}
			executed[tr.Edge] = true
			if tr.PartnerEdge != nil {
				executed[tr.PartnerEdge] = true
			}
		}
	}

	// onStack supports the partial-order reduction's cycle proviso: an
	// ample set whose successor closes a cycle on the DFS stack could
	// postpone other processes forever, so such states expand fully.
	onStack := map[string]bool{}
	succsOf := func(st *model.State) []model.Transition {
		if c.opts.PartialOrder {
			if trs, ok := c.sys.AmpleSuccessors(st); ok {
				closes := false
				for _, tr := range trs {
					if tr.Violation == "" && onStack[tr.Next.Key()] {
						closes = true
						break
					}
				}
				if !closes {
					res.Stats.Reduced++
					return trs
				}
			}
		}
		return c.sys.Successors(st)
	}

	pathEvents := func(stack []dfsFrame, extra *model.Transition) *trace.Trace {
		t := &trace.Trace{}
		for i := 1; i < len(stack); i++ {
			t.Prefix = append(t.Prefix, eventOf(c.sys, stack[i].in))
		}
		if extra != nil {
			t.Prefix = append(t.Prefix, eventOf(c.sys, *extra))
		}
		return t
	}

	fail := func(stack []dfsFrame, extra *model.Transition, kind ViolationKind, msg string) *Result {
		res.OK = false
		res.Kind = kind
		res.Message = msg
		res.Trace = pathEvents(stack, extra)
		res.Trace.Final = msg
		return res
	}

	init := c.sys.InitialState()
	initKey := init.Key()
	visited.seen(initKey)
	onStack[initKey] = true
	res.Stats.StatesStored = 1

	initTrs := succsOf(init)
	mark(initTrs)
	res.Stats.Transitions += len(initTrs)
	stack := []dfsFrame{{st: init, key: initKey, trs: initTrs}}
	if kind, msg := c.stateProblem(init, len(initTrs)); kind != NoViolation {
		return fail(stack, nil, kind, msg)
	}

	for len(stack) > 0 {
		if cc.hit() {
			return cc.cancelResult(res)
		}
		if len(stack) > res.Stats.MaxDepth {
			res.Stats.MaxDepth = len(stack)
		}
		top := &stack[len(stack)-1]
		if top.idx >= len(top.trs) {
			delete(onStack, top.key)
			stack = stack[:len(stack)-1]
			continue
		}
		tr := top.trs[top.idx]
		top.idx++

		if tr.Violation != "" {
			return fail(stack, &tr, violationKind(tr.Violation), tr.Violation)
		}
		key := tr.Next.Key()
		if visited.seen(key) {
			res.Stats.StatesMatched++
			continue
		}
		res.Stats.StatesStored++
		m.tick(&res.Stats, len(stack))
		if c.opts.MaxStates > 0 && res.Stats.StatesStored > c.opts.MaxStates {
			res.Stats.Truncated = true
			res.OK = false
			res.Kind = SearchLimit
			res.Message = fmt.Sprintf("state limit %d exceeded", c.opts.MaxStates)
			return res
		}
		if c.opts.MaxDepth > 0 && len(stack) >= c.opts.MaxDepth {
			res.Stats.Truncated = true
			continue
		}
		onStack[key] = true
		succ := succsOf(tr.Next)
		mark(succ)
		res.Stats.Transitions += len(succ)
		stack = append(stack, dfsFrame{st: tr.Next, key: key, in: tr, trs: succ})
		if kind, msg := c.stateProblem(tr.Next, len(succ)); kind != NoViolation {
			return fail(stack, nil, kind, msg)
		}
	}
	if res.Stats.Truncated {
		res.OK = false
		res.Kind = SearchLimit
		res.Message = fmt.Sprintf("depth limit %d reached; search incomplete", c.opts.MaxDepth)
	}
	if executed != nil && !res.Stats.Truncated {
		res.Unreached = c.collectUnreached(executed)
	}
	return res
}

// CheckReachable searches breadth-first for a state satisfying target.
// Result.OK reports that the target IS reachable, with the shortest
// witness in Result.Trace. Assertion violations and deadlocks encountered
// along the way are not reported; only reachability is decided.
func (c *Checker) CheckReachable(target pml.RExpr) *Result {
	var res *Result
	if c.parallelEligible() {
		withPhaseLabel("reachability-par", func() { res = c.checkReachablePar(target) })
	} else {
		withPhaseLabel("reachability", func() { res = c.checkReachable(target) })
	}
	return res
}

func (c *Checker) checkReachable(target pml.RExpr) *Result {
	start := time.Now()
	visited := c.newVisited()
	res := &Result{}
	defer func() { res.Stats.Elapsed = time.Since(start) }()
	m := c.newMeter("reachability")
	defer func() { m.finish(&res.Stats, res.Stats.MaxDepth) }()
	cc := c.newCanceler()

	sat := func(st *model.State) (bool, string) {
		v, err := c.sys.EvalGlobal(st, target)
		if err != nil {
			return false, err.Error()
		}
		return v != 0, ""
	}

	init := c.sys.InitialState()
	visited.seen(init.Key())
	res.Stats.StatesStored = 1
	arena := []bfsNode{{st: init, parent: -1}}

	buildTrace := func(i int) *trace.Trace {
		var rev []trace.Event
		for j := i; j > 0; j = arena[j].parent {
			rev = append(rev, eventOf(c.sys, arena[j].in))
		}
		t := &trace.Trace{Final: "target state reached"}
		for k := len(rev) - 1; k >= 0; k-- {
			t.Prefix = append(t.Prefix, rev[k])
		}
		return t
	}

	for head := 0; head < len(arena); head++ {
		if cc.hit() {
			return cc.cancelResult(res)
		}
		ok, errMsg := sat(arena[head].st)
		if errMsg != "" {
			res.Kind = RuntimeError
			res.Message = errMsg
			return res
		}
		if ok {
			res.OK = true
			res.Trace = buildTrace(head)
			return res
		}
		trs := c.sys.Successors(arena[head].st)
		res.Stats.Transitions += len(trs)
		for _, tr := range trs {
			if tr.Violation != "" {
				continue
			}
			key := tr.Next.Key()
			if visited.seen(key) {
				res.Stats.StatesMatched++
				continue
			}
			res.Stats.StatesStored++
			m.tick(&res.Stats, res.Stats.MaxDepth)
			if c.opts.MaxStates > 0 && res.Stats.StatesStored > c.opts.MaxStates {
				res.Stats.Truncated = true
				res.Kind = SearchLimit
				res.Message = fmt.Sprintf("state limit %d exceeded", c.opts.MaxStates)
				return res
			}
			arena = append(arena, bfsNode{st: tr.Next, parent: head, in: tr})
		}
	}
	res.Kind = NoViolation
	res.Message = "target state is unreachable"
	return res
}

// CheckEventuallyReachable decides AG EF target: from every reachable
// state, a state satisfying target remains reachable. Result.OK reports
// the property holds; on failure, Result.Trace leads to a state from
// which the target has become unreachable (e.g. a message was
// irrecoverably lost). This is the fairness-independent way to check
// "nothing is ever permanently lost".
func (c *Checker) CheckEventuallyReachable(target pml.RExpr) *Result {
	var res *Result
	withPhaseLabel("ag-ef", func() { res = c.checkEventuallyReachable(target) })
	return res
}

func (c *Checker) checkEventuallyReachable(target pml.RExpr) *Result {
	start := time.Now()
	res := &Result{}
	defer func() { res.Stats.Elapsed = time.Since(start) }()
	m := c.newMeter("ag-ef")
	defer func() { m.finish(&res.Stats, res.Stats.MaxDepth) }()
	cc := c.newCanceler()

	// Forward pass: build the full reachable graph. add enforces
	// MaxStates the way the other searches do — count the state, tick
	// the meter, then flag the overrun — so the search stops within one
	// state of the limit instead of finishing the whole expansion.
	index := map[string]int{}
	var arena []bfsNode
	var succs [][]int
	limitHit := false
	add := func(st *model.State, parent int, in model.Transition) int {
		key := st.Key()
		if i, ok := index[key]; ok {
			res.Stats.StatesMatched++
			return i
		}
		index[key] = len(arena)
		arena = append(arena, bfsNode{st: st, parent: parent, in: in})
		succs = append(succs, nil)
		res.Stats.StatesStored++
		m.tick(&res.Stats, 0)
		if c.opts.MaxStates > 0 && res.Stats.StatesStored > c.opts.MaxStates {
			limitHit = true
		}
		return len(arena) - 1
	}
	limitResult := func() *Result {
		res.Stats.Truncated = true
		res.Kind = SearchLimit
		res.Message = fmt.Sprintf("state limit %d exceeded", c.opts.MaxStates)
		return res
	}
	add(c.sys.InitialState(), -1, model.Transition{})
	if limitHit {
		return limitResult()
	}
	for head := 0; head < len(arena); head++ {
		if cc.hit() {
			return cc.cancelResult(res)
		}
		trs := c.sys.Successors(arena[head].st)
		res.Stats.Transitions += len(trs)
		for _, tr := range trs {
			if tr.Violation != "" {
				continue
			}
			succs[head] = append(succs[head], add(tr.Next, head, tr))
			if limitHit {
				return limitResult()
			}
		}
	}

	// Backward pass: states from which a target state is reachable.
	good := make([]bool, len(arena))
	preds := make([][]int, len(arena))
	var queue []int
	for i := range arena {
		v, err := c.sys.EvalGlobal(arena[i].st, target)
		if err != nil {
			res.Kind = RuntimeError
			res.Message = err.Error()
			return res
		}
		if v != 0 {
			good[i] = true
			queue = append(queue, i)
		}
		for _, j := range succs[i] {
			preds[j] = append(preds[j], i)
		}
	}
	for len(queue) > 0 {
		i := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, p := range preds[i] {
			if !good[p] {
				good[p] = true
				queue = append(queue, p)
			}
		}
	}
	for i := range arena {
		if good[i] {
			continue
		}
		// Found a reachable state from which the target is unreachable.
		res.Kind = InvariantViolation
		res.Message = "target became unreachable"
		var rev []trace.Event
		for j := i; j > 0; j = arena[j].parent {
			rev = append(rev, eventOf(c.sys, arena[j].in))
		}
		t := &trace.Trace{Final: res.Message}
		for k := len(rev) - 1; k >= 0; k-- {
			t.Prefix = append(t.Prefix, rev[k])
		}
		res.Trace = t
		return res
	}
	res.OK = true
	return res
}

type bfsNode struct {
	st     *model.State
	parent int
	depth  int32
	in     model.Transition
}

func (c *Checker) checkSafetyBFS() *Result {
	start := time.Now()
	visited := c.newVisited()
	res := &Result{OK: true}
	defer func() { res.Stats.Elapsed = time.Since(start) }()
	m := c.newMeter("safety-bfs")
	defer func() { m.finish(&res.Stats, res.Stats.MaxDepth) }()
	cc := c.newCanceler()

	buildTrace := func(arena []bfsNode, i int, extra *model.Transition) *trace.Trace {
		var rev []trace.Event
		for j := i; j > 0; j = arena[j].parent {
			rev = append(rev, eventOf(c.sys, arena[j].in))
		}
		t := &trace.Trace{}
		for k := len(rev) - 1; k >= 0; k-- {
			t.Prefix = append(t.Prefix, rev[k])
		}
		if extra != nil {
			t.Prefix = append(t.Prefix, eventOf(c.sys, *extra))
		}
		return t
	}

	fail := func(arena []bfsNode, i int, extra *model.Transition, kind ViolationKind, msg string) *Result {
		res.OK = false
		res.Kind = kind
		res.Message = msg
		res.Trace = buildTrace(arena, i, extra)
		res.Trace.Final = msg
		return res
	}

	init := c.sys.InitialState()
	visited.seen(init.Key())
	res.Stats.StatesStored = 1
	arena := []bfsNode{{st: init, parent: -1}}

	for head := 0; head < len(arena); head++ {
		if cc.hit() {
			return cc.cancelResult(res)
		}
		st := arena[head].st
		trs := c.sys.Successors(st)
		res.Stats.Transitions += len(trs)
		if d := int(arena[head].depth); d > res.Stats.MaxDepth {
			res.Stats.MaxDepth = d
		}
		if kind, msg := c.stateProblem(st, len(trs)); kind != NoViolation {
			return fail(arena, head, nil, kind, msg)
		}
		for _, tr := range trs {
			if tr.Violation != "" {
				return fail(arena, head, &tr, violationKind(tr.Violation), tr.Violation)
			}
			key := tr.Next.Key()
			if visited.seen(key) {
				res.Stats.StatesMatched++
				continue
			}
			res.Stats.StatesStored++
			m.tick(&res.Stats, res.Stats.MaxDepth)
			if c.opts.MaxStates > 0 && res.Stats.StatesStored > c.opts.MaxStates {
				res.Stats.Truncated = true
				res.OK = false
				res.Kind = SearchLimit
				res.Message = fmt.Sprintf("state limit %d exceeded", c.opts.MaxStates)
				return res
			}
			arena = append(arena, bfsNode{st: tr.Next, parent: head, depth: arena[head].depth + 1, in: tr})
		}
	}
	return res
}
