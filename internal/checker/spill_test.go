package checker

import (
	"os"
	"path/filepath"
	"testing"

	"pnp/internal/model"
)

func writeTestSegment(t *testing.T, dir string, encs [][]byte) string {
	t.Helper()
	path := filepath.Join(dir, "seg-000000.seg")
	emit := func(fn func(enc []byte)) {
		for _, e := range encs {
			fn(e)
		}
	}
	if err := writeSpillSegment(path, len(encs), emit); err != nil {
		t.Fatalf("writeSpillSegment: %v", err)
	}
	return path
}

func TestSpillSegmentRoundTrip(t *testing.T) {
	_, encs, fps, _ := benchComponentStates(1500)
	path := writeTestSegment(t, t.TempDir(), encs)
	seg, err := openSpillSegment(path)
	if err != nil {
		t.Fatalf("openSpillSegment: %v", err)
	}
	defer seg.close()
	if seg.count != len(encs) {
		t.Fatalf("count = %d, want %d", seg.count, len(encs))
	}
	for j := range encs {
		if !seg.contains(fps[j], encs[j]) {
			t.Fatalf("entry %d missing from segment", j)
		}
	}
	absent := []byte("never-stored-encoding")
	if seg.contains(model.Hash64(absent), absent) {
		t.Fatal("segment claims to contain an absent entry")
	}
	// Same fingerprint, different bytes: must compare bytes, not hashes.
	if seg.contains(fps[0], append(append([]byte{}, encs[0]...), 0xFF)) {
		t.Fatal("segment matched on fingerprint alone")
	}
	got := 0
	seen := map[string]bool{}
	seg.forEach(func(enc []byte) {
		seen[string(enc)] = true
		got++
	})
	if got != len(encs) || len(seen) != len(encs) {
		t.Fatalf("forEach yielded %d entries (%d distinct), want %d", got, len(seen), len(encs))
	}
}

// Every flavor of corruption must be detected at open — never probed.
func TestSpillSegmentCorruptionDetected(t *testing.T) {
	_, encs, _, _ := benchComponentStates(200)
	dir := t.TempDir()
	path := writeTestSegment(t, dir, encs)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]func([]byte) []byte{
		"magic":     func(b []byte) []byte { b[0] ^= 0xff; return b },
		"header":    func(b []byte) []byte { b[len(spillMagic)+9] ^= 0xff; return b },
		"blob":      func(b []byte) []byte { b[len(b)/2] ^= 0xff; return b },
		"index":     func(b []byte) []byte { b[len(b)-4] ^= 0xff; return b },
		"truncated": func(b []byte) []byte { return b[:len(b)-10] },
		"trailing":  func(b []byte) []byte { return append(b, 0xAA) },
		"empty":     func(b []byte) []byte { return b[:0] },
	}
	for name, mutate := range cases {
		t.Run(name, func(t *testing.T) {
			bad := mutate(append([]byte(nil), data...))
			p := filepath.Join(dir, "bad-"+name+".seg")
			if err := os.WriteFile(p, bad, 0o644); err != nil {
				t.Fatal(err)
			}
			if seg, err := openSpillSegment(p); err == nil {
				seg.close()
				t.Fatal("corrupt segment opened without error")
			}
		})
	}
}

// A spillSet whose segment directory cannot be created degrades to
// in-memory growth: no spill, same membership, no crash.
func TestSpillSetUnwritableDirDegrades(t *testing.T) {
	if os.Geteuid() == 0 {
		t.Skip("running as root: directory permissions are not enforced")
	}
	dir := t.TempDir()
	if err := os.Chmod(dir, 0o500); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(dir, 0o755)
	_, encs, fps, endss := benchComponentStates(500)
	s := newSpillSet(newShardedSet(nil), 1, filepath.Join(dir, "sub"), nil)
	defer s.close()
	for j := range encs {
		if s.seen(fps[j], encs[j], endss[j]) {
			t.Fatalf("fresh state %d reported seen", j)
		}
		s.maybeSpill()
	}
	for j := range encs {
		if !s.seen(fps[j], encs[j], endss[j]) {
			t.Fatalf("state %d lost", j)
		}
	}
	if s.size() != len(encs) {
		t.Fatalf("size = %d, want %d", s.size(), len(encs))
	}
	if s.spilled.Load() != 0 {
		t.Fatalf("spilled %d states into an unwritable dir", s.spilled.Load())
	}
}

// The spill set keeps exact membership across spills, for both exact
// and collapse in-memory tiers.
func TestSpillSetMembershipAcrossSpills(t *testing.T) {
	shape, encs, fps, endss := benchComponentStates(2000)
	mems := map[string]func() visitedDrainer{
		"exact":    func() visitedDrainer { return newShardedSet(nil) },
		"collapse": func() visitedDrainer { return newCollapseSet(shape, nil) },
	}
	for name, mk := range mems {
		t.Run(name, func(t *testing.T) {
			s := newSpillSet(mk(), 1, t.TempDir(), nil)
			defer s.close()
			for j := range encs {
				if s.seen(fps[j], encs[j], endss[j]) {
					t.Fatalf("fresh state %d reported seen", j)
				}
				if j%97 == 0 {
					s.maybeSpill() // MemLimit 1: every barrier spills
				}
			}
			if s.spilled.Load() == 0 {
				t.Fatal("nothing spilled despite 1-byte budget")
			}
			if len(s.segs) == 0 {
				t.Fatal("no segments on disk")
			}
			for j := range encs {
				if !s.seen(fps[j], encs[j], endss[j]) {
					t.Fatalf("state %d lost after spill", j)
				}
			}
			if s.size() != len(encs) {
				t.Fatalf("size = %d, want %d", s.size(), len(encs))
			}
			// Checkpoint streaming covers both tiers.
			streamed := map[string]bool{}
			s.forEachEncoding(func(enc []byte) { streamed[string(enc)] = true })
			if len(streamed) != len(encs) {
				t.Fatalf("forEachEncoding yielded %d distinct entries, want %d", len(streamed), len(encs))
			}
		})
	}
}

// close removes the per-search segment directory.
func TestSpillSetCloseRemovesSegments(t *testing.T) {
	_, encs, fps, endss := benchComponentStates(300)
	parent := t.TempDir()
	s := newSpillSet(newShardedSet(nil), 1, parent, nil)
	for j := range encs {
		s.seen(fps[j], encs[j], endss[j])
	}
	s.maybeSpill()
	if len(s.segs) == 0 {
		t.Fatal("no segment written")
	}
	runDir := s.runDir
	s.close()
	if _, err := os.Stat(runDir); !os.IsNotExist(err) {
		t.Errorf("run dir %s not removed (err=%v)", runDir, err)
	}
	ents, err := os.ReadDir(parent)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Errorf("%d entries left in spill parent", len(ents))
	}
}

// --- checkpoint/resume over collapse and spilled visited sets ---

// ckptStorageOptions applies one storage mode to a base Options value.
func ckptStorageOptions(t *testing.T, o Options, mode string) Options {
	t.Helper()
	switch mode {
	case "collapse":
		o.Visited = VisitedCollapse
	case "spill":
		o.Visited = VisitedExact
		o.MemLimit = 1
		o.SpillDir = t.TempDir()
	case "collapse-spill":
		o.Visited = VisitedCollapse
		o.MemLimit = 1
		o.SpillDir = t.TempDir()
	}
	return o
}

// A snapshot taken over a collapse-compressed or spilled visited set
// must resume — at a different worker count, in any storage mode — to
// the exact verdict and stats of an uninterrupted run.
func TestCheckpointResumeAcrossStorageModes(t *testing.T) {
	full := New(sysFromSource(t, ckptSrc), Options{Workers: 1}).CheckSafety()
	if !full.OK {
		t.Fatalf("baseline should verify: %s", full.Summary())
	}
	for _, snapMode := range []string{"collapse", "spill", "collapse-spill"} {
		t.Run(snapMode, func(t *testing.T) {
			// Steal a mid-run snapshot from a search using snapMode storage.
			dir := t.TempDir()
			var stolen []byte
			opts := ckptStorageOptions(t, Options{Workers: 2, Checkpoint: &CheckpointOptions{
				Dir: dir, Key: "s", Interval: 1,
				OnWrite: func(file string, d, states int) {
					if d == 40 {
						stolen, _ = os.ReadFile(file)
					}
				},
			}}, snapMode)
			res := New(sysFromSource(t, ckptSrc), opts).CheckSafety()
			if !res.OK || len(stolen) == 0 {
				t.Fatalf("snapshot run failed (stolen=%d bytes): %s", len(stolen), res.Summary())
			}
			if snapMode != "collapse" && res.Stats.SpilledStates == 0 {
				t.Fatalf("budgeted snapshot run spilled nothing")
			}

			// Resume it under a different storage mode and worker count:
			// snapshots carry full encodings, so the storage tiers are
			// interchangeable across restarts.
			for _, resumeMode := range []string{"exact", snapMode} {
				rdir := t.TempDir()
				if err := os.WriteFile(filepath.Join(rdir, CheckpointFileName("s")), stolen, 0o644); err != nil {
					t.Fatal(err)
				}
				ropts := ckptStorageOptions(t, Options{Workers: 8, Checkpoint: &CheckpointOptions{
					Dir: rdir, Key: "s", Resume: true,
				}}, resumeMode)
				resumed := New(sysFromSource(t, ckptSrc), ropts).CheckSafety()
				if !resumed.OK {
					t.Fatalf("resume as %s failed: %s", resumeMode, resumed.Summary())
				}
				if !statsEqualIgnoringElapsed(resumed.Stats, full.Stats) {
					t.Errorf("resume as %s: stats %+v, uninterrupted %+v", resumeMode, resumed.Stats, full.Stats)
				}
			}
		})
	}
}

// A violation past the snapshot point is found on resume with the same
// counterexample length, spill active on both sides of the restart.
func TestCheckpointResumeSpilledFindsViolation(t *testing.T) {
	src := ckptSrc + `
active proctype R() { (a == 50 && b == 2) -> assert(false) }`
	full := New(sysFromSource(t, src), Options{Workers: 1}).CheckSafety()
	if full.OK || full.Trace == nil {
		t.Fatalf("baseline should find the assertion: %s", full.Summary())
	}
	dir := t.TempDir()
	var stolen []byte
	opts := ckptStorageOptions(t, Options{Workers: 2, Checkpoint: &CheckpointOptions{
		Dir: dir, Key: "v", Interval: 1,
		OnWrite: func(file string, d, states int) {
			if d == 20 {
				stolen, _ = os.ReadFile(file)
			}
		},
	}}, "collapse-spill")
	res := New(sysFromSource(t, src), opts).CheckSafety()
	if res.OK || len(stolen) == 0 {
		t.Fatalf("expected violation and a depth-20 snapshot: %s", res.Summary())
	}

	rdir := t.TempDir()
	if err := os.WriteFile(filepath.Join(rdir, CheckpointFileName("v")), stolen, 0o644); err != nil {
		t.Fatal(err)
	}
	ropts := ckptStorageOptions(t, Options{Workers: 8, Checkpoint: &CheckpointOptions{
		Dir: rdir, Key: "v", Resume: true,
	}}, "collapse-spill")
	resumed := New(sysFromSource(t, src), ropts).CheckSafety()
	if resumed.OK || resumed.Kind != full.Kind {
		t.Fatalf("resumed: %s, want %s", resumed.Summary(), full.Kind)
	}
	if !statsEqualIgnoringElapsed(resumed.Stats, full.Stats) {
		t.Errorf("resumed stats %+v, uninterrupted %+v", resumed.Stats, full.Stats)
	}
	if wantLen := full.Trace.Len() - 20; resumed.Trace == nil || resumed.Trace.Len() != wantLen {
		t.Errorf("resumed counterexample length %d, want %d", resumed.Trace.Len(), wantLen)
	}
}
