package checker

import (
	"testing"
)

// TestFairnessRescuesEventuality: without fairness, a scheduler may run
// only the spinning process forever, so <>done fails; under weak fairness
// the worker must eventually move.
func TestFairnessRescuesEventuality(t *testing.T) {
	src := `
byte done, junk;
active proctype Spinner() {
	end: do
	:: junk = 1 - junk
	od
}
active proctype Worker() {
	done = 1
}`
	p := props(t, sysFromSource(t, src).Prog, map[string]string{"finished": "done == 1"})

	unfair := New(sysFromSource(t, src), Options{}).CheckLTL("<> finished", p)
	if unfair.OK {
		t.Fatal("without fairness, <>finished should be violated by starving the worker")
	}
	fair := New(sysFromSource(t, src), Options{WeakFairness: true}).CheckLTL("<> finished", p)
	if !fair.OK {
		t.Fatalf("under weak fairness, <>finished should hold: %s\n%s", fair.Summary(), fair.Trace)
	}
}

// TestFairnessDoesNotProveFalseProperties: fairness must not mask real
// violations — a process that never sets done keeps <>done false.
func TestFairnessDoesNotProveFalseProperties(t *testing.T) {
	src := `
byte done, junk;
active proctype Spinner() {
	end: do
	:: junk = 1 - junk
	od
}`
	s := sysFromSource(t, src)
	p := props(t, s.Prog, map[string]string{"finished": "done == 1"})
	res := New(s, Options{WeakFairness: true}).CheckLTL("<> finished", p)
	if res.OK {
		t.Fatal("<>finished cannot hold: nothing ever sets done")
	}
	if res.Kind != AcceptanceCycle {
		t.Fatalf("kind = %s", res.Kind)
	}
}

// TestFairnessRespondsToRequests: the classic response property over a
// polling server that needs fairness to be scheduled.
func TestFairnessRespondsToRequests(t *testing.T) {
	src := `
byte req, ack, noise;
active proctype Client() {
	req = 1
}
active proctype Server() {
	end: do
	:: req == 1 && ack == 0 -> ack = 1
	:: noise = 1 - noise
	od
}`
	s := sysFromSource(t, src)
	p := props(t, s.Prog, map[string]string{"requested": "req == 1", "acked": "ack == 1"})
	unfair := New(sysFromSource(t, src), Options{}).CheckLTL("[] (requested -> <> acked)", p)
	if unfair.OK {
		t.Fatal("without fairness the response property should fail (server noise loop)")
	}
	// Weak fairness is NOT enough here: the server process as a whole
	// stays active through its noise branch, so the ack branch may starve
	// — weak fairness is per process, not per transition. Document the
	// semantics by asserting the (correct) negative verdict.
	fair := New(s, Options{WeakFairness: true}).CheckLTL("[] (requested -> <> acked)", p)
	if fair.OK {
		t.Log("note: weak fairness proved the response property; transition-level scheduling resolved it")
	} else if fair.Kind != AcceptanceCycle {
		t.Fatalf("unexpected kind: %s", fair.Summary())
	}
}

// TestFairnessTerminalStutterStillFair: a fully terminated system
// stutters forever; all processes are disabled, so the stutter run is
// weakly fair and []<>p correctly fails when p is false at the end.
func TestFairnessTerminalStutterStillFair(t *testing.T) {
	src := `
byte x;
active proctype P() { x = 1; x = 0 }`
	s := sysFromSource(t, src)
	p := props(t, s.Prog, map[string]string{"on": "x == 1"})
	res := New(s, Options{WeakFairness: true}).CheckLTL("[] <> on", p)
	if res.OK {
		t.Fatal("[]<>on must fail: the terminal state has x==0 forever and is fair")
	}
}

// TestFairnessAgreesOnSafetyShapedLTL: fairness must not change verdicts
// for properties violated by finite prefixes.
func TestFairnessAgreesOnSafetyShapedLTL(t *testing.T) {
	src := `
byte x;
active proctype P() { x = 1; x = 5 }`
	p := props(t, sysFromSource(t, src).Prog, map[string]string{"small": "x < 2"})
	unfair := New(sysFromSource(t, src), Options{}).CheckLTL("[] small", p)
	fair := New(sysFromSource(t, src), Options{WeakFairness: true}).CheckLTL("[] small", p)
	if unfair.OK != fair.OK {
		t.Fatalf("fairness changed a prefix-violation verdict: unfair=%v fair=%v", unfair.OK, fair.OK)
	}
	if unfair.OK {
		t.Fatal("[]small should fail")
	}
}

// TestFairnessStateBlowupBounded: the Choueka construction multiplies the
// product by at most nProcs+2.
func TestFairnessStateBlowupBounded(t *testing.T) {
	src := `
byte a, b;
active proctype P() { do :: a = 1 - a od }
active proctype Q() { do :: b = 1 - b od }`
	p := props(t, sysFromSource(t, src).Prog, map[string]string{"zero": "a == 0"})
	base := New(sysFromSource(t, src), Options{IgnoreDeadlock: true}).CheckLTL("[] <> zero", p)
	fair := New(sysFromSource(t, src), Options{IgnoreDeadlock: true, WeakFairness: true}).CheckLTL("[] <> zero", p)
	n := 2 // processes
	if fair.Stats.StatesStored > base.Stats.StatesStored*(n+2) {
		t.Errorf("fair product %d states > %d * (n+2)", fair.Stats.StatesStored, base.Stats.StatesStored)
	}
}
