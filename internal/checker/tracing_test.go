package checker

import (
	"context"
	"strconv"
	"testing"
	"time"

	"pnp/internal/obs/tracing"
)

// TestProgressCadenceWorkers checks snapshot cadence and final-snapshot
// delivery under the sequential and parallel engines: with a
// zero-interval meter every level emits a snapshot, the final snapshot
// arrives exactly once and carries the search's true totals, and the
// parallel snapshots surface the frontier size.
func TestProgressCadenceWorkers(t *testing.T) {
	for _, workers := range []int{1, 8} {
		t.Run("workers="+strconv.Itoa(workers), func(t *testing.T) {
			s := sysFromSource(t, progressSource)
			var snaps []Progress
			res := New(s, Options{
				IgnoreDeadlock:   true,
				Workers:          workers,
				Progress:         func(p Progress) { snaps = append(snaps, p) },
				ProgressInterval: time.Nanosecond,
			}).CheckSafety()
			if !res.OK {
				t.Fatalf("expected OK: %s", res.Summary())
			}
			if len(snaps) < 2 {
				t.Fatalf("want periodic + final snapshots, got %d", len(snaps))
			}
			finals := 0
			for _, p := range snaps {
				if p.Final {
					finals++
				}
				if p.Phase != "safety-par-bfs" {
					t.Fatalf("phase = %q, want safety-par-bfs", p.Phase)
				}
			}
			if finals != 1 || !snaps[len(snaps)-1].Final {
				t.Fatalf("final snapshots = %d (last.Final=%t), want exactly one, last",
					finals, snaps[len(snaps)-1].Final)
			}
			last := snaps[len(snaps)-1]
			if last.StatesStored != res.Stats.StatesStored {
				t.Errorf("final states = %d, want %d", last.StatesStored, res.Stats.StatesStored)
			}
			if last.Frontier <= 0 {
				t.Errorf("parallel snapshots should carry a frontier size, got %d", last.Frontier)
			}
			prev := 0
			for _, p := range snaps {
				if p.StatesStored < prev {
					t.Errorf("states stored not monotone: %d after %d", p.StatesStored, prev)
				}
				prev = p.StatesStored
			}
		})
	}
}

// TestCheckerPhaseSpan checks that a Tracer-configured search records
// one phase span parented to the span in Options.Context, with
// per-level events carrying the frontier size.
func TestCheckerPhaseSpan(t *testing.T) {
	rec := tracing.NewRecorder(64)
	ctx, job := rec.StartSpan(context.Background(), "job")
	s := sysFromSource(t, progressSource)
	res := New(s, Options{
		IgnoreDeadlock: true,
		Workers:        4,
		Context:        ctx,
		Tracer:         rec,
	}).CheckSafety()
	if !res.OK {
		t.Fatalf("expected OK: %s", res.Summary())
	}
	job.End()

	spans := rec.Trace(job.TraceID())
	if len(spans) != 2 {
		t.Fatalf("trace has %d spans, want job + phase", len(spans))
	}
	phase := spans[1]
	if phase.Name != "checker:safety-par-bfs" {
		t.Fatalf("phase span name = %q", phase.Name)
	}
	if phase.Parent != job.SpanID().String() {
		t.Fatalf("phase parent = %q, want job span %s", phase.Parent, job.SpanID())
	}
	if len(phase.Events) == 0 {
		t.Fatal("phase span has no level events")
	}
	for _, e := range phase.Events {
		if e.Name != "level" {
			t.Fatalf("unexpected event %q", e.Name)
		}
		var hasFrontier bool
		for _, a := range e.Attrs {
			if a.Key == "frontier" {
				hasFrontier = true
			}
		}
		if !hasFrontier {
			t.Fatalf("level event missing frontier attr: %+v", e)
		}
	}
	var stored string
	for _, a := range phase.Attrs {
		if a.Key == "states_stored" {
			stored = a.Value
		}
	}
	if stored != strconv.Itoa(res.Stats.StatesStored) {
		t.Fatalf("states_stored attr = %q, want %d", stored, res.Stats.StatesStored)
	}
}

// TestCheckerSpanWithoutContext: a Tracer alone (no Options.Context)
// still records a root phase span.
func TestCheckerSpanWithoutContext(t *testing.T) {
	rec := tracing.NewRecorder(16)
	s := sysFromSource(t, progressSource)
	res := New(s, Options{IgnoreDeadlock: true, Tracer: rec}).CheckSafety()
	if !res.OK {
		t.Fatalf("expected OK: %s", res.Summary())
	}
	spans := rec.Spans()
	if len(spans) != 1 || spans[0].Name != "checker:safety-dfs" || spans[0].Parent != "" {
		t.Fatalf("spans = %+v, want one root checker:safety-dfs span", spans)
	}
}
