package checker

import (
	"strings"
	"testing"

	"pnp/internal/model"
	"pnp/internal/pml"
)

// Classic concurrency protocols as end-to-end validation of the whole
// pml -> model -> checker stack.

// diningSource models N philosophers with fork array f[N]: f[i] == 1 means
// fork i is taken. grabFirst selects each philosopher's first fork.
const diningSymmetric = `
byte f[3];
byte eating;
active [3] proctype Phil() {
	byte left, right;
	left = _pid;
	right = _pid + 1;
	if
	:: right == 3 -> right = 0
	:: else
	fi;
	do
	:: atomic { f[left] == 0 -> f[left] = 1 };
	   atomic { f[right] == 0 -> f[right] = 1 };
	   eating = eating + 1;
	   eating = eating - 1;
	   f[right] = 0;
	   f[left] = 0
	od
}`

// diningAsymmetric breaks the symmetry: the last philosopher picks up the
// right fork first, which removes the circular wait.
const diningAsymmetric = `
byte f[3];
byte eating;
active [3] proctype Phil() {
	byte first, second, tmp;
	first = _pid;
	second = _pid + 1;
	if
	:: second == 3 -> second = 0
	:: else
	fi;
	if
	:: _pid == 2 -> tmp = first; first = second; second = tmp
	:: else
	fi;
	do
	:: atomic { f[first] == 0 -> f[first] = 1 };
	   atomic { f[second] == 0 -> f[second] = 1 };
	   eating = eating + 1;
	   eating = eating - 1;
	   f[second] = 0;
	   f[first] = 0
	od
}`

func TestDiningPhilosophersDeadlock(t *testing.T) {
	s := sysFromSource(t, diningSymmetric)
	res := New(s, Options{}).CheckSafety()
	if res.OK || res.Kind != Deadlock {
		t.Fatalf("symmetric philosophers should deadlock, got %s", res.Summary())
	}
	// The counterexample must show all three first-fork grabs.
	text := res.Trace.String()
	for _, p := range []string{"Phil[0]", "Phil[1]", "Phil[2]"} {
		if !strings.Contains(text, p) {
			t.Errorf("counterexample missing %s:\n%s", p, text)
		}
	}
}

func TestDiningPhilosophersAsymmetricFix(t *testing.T) {
	s := sysFromSource(t, diningAsymmetric)
	res := New(s, Options{}).CheckSafety()
	if !res.OK {
		t.Fatalf("asymmetric philosophers should be deadlock-free: %s\n%s", res.Summary(), res.Trace)
	}
}

func TestDiningMutualExclusionOnForks(t *testing.T) {
	// At most 3 forks exist, so at most 1 philosopher eats with 3 forks...
	// more precisely: eating <= 1 with 3 forks and 2 forks per meal is
	// false (floor(3/2)=1), so check eating <= 1.
	s := sysFromSource(t, diningAsymmetric)
	inv, err := InvariantFromSource(s.Prog, "max-eaters", "eating <= 1")
	if err != nil {
		t.Fatal(err)
	}
	res := New(s, Options{Invariants: []Invariant{inv}}).CheckSafety()
	if !res.OK {
		t.Fatalf("eating <= 1 should hold with 3 forks: %s", res.Summary())
	}
}

// changRoberts is leader election on a unidirectional ring: each node
// forwards the maximum id it has seen; a node that receives its own id is
// the leader. ids are a permutation stored in an array.
const changRoberts = `
byte leader;
byte elected;
chan ring0 = [1] of { byte };
chan ring1 = [1] of { byte };
chan ring2 = [1] of { byte };

proctype Node(chan in; chan out; byte myid) {
	byte v;
	out!myid;
	end: do
	:: in?v ->
	   if
	   :: v > myid -> out!v
	   :: v == myid ->
	      leader = myid;
	      elected = elected + 1
	   :: else
	   fi
	od
}`

func TestChangRobertsLeaderElection(t *testing.T) {
	prog, err := pml.CompileSource(changRoberts)
	if err != nil {
		t.Fatal(err)
	}
	s := model.New(prog)
	r0, _ := s.ChannelByName("ring0")
	r1, _ := s.ChannelByName("ring1")
	r2, _ := s.ChannelByName("ring2")
	// Ring: node A -> ring0 -> node B -> ring1 -> node C -> ring2 -> node A.
	// ids 5, 9, 2: node with id 9 must win.
	if _, err := s.Spawn("Node", model.Chan(r2), model.Chan(r0), model.Int(5)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Spawn("Node", model.Chan(r0), model.Chan(r1), model.Int(9)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Spawn("Node", model.Chan(r1), model.Chan(r2), model.Int(2)); err != nil {
		t.Fatal(err)
	}

	// Safety: never a wrong leader, never more than one election.
	inv1, err := InvariantFromSource(prog, "right-leader", "leader == 0 || leader == 9")
	if err != nil {
		t.Fatal(err)
	}
	inv2, err := InvariantFromSource(prog, "one-election", "elected <= 1")
	if err != nil {
		t.Fatal(err)
	}
	res := New(s, Options{Invariants: []Invariant{inv1, inv2}}).CheckSafety()
	if !res.OK {
		t.Fatalf("election safety failed: %s\n%s", res.Summary(), res.Trace)
	}
	// Progress: the election always completes (AG EF elected).
	target, err := prog.CompileGlobalExpr("elected == 1 && leader == 9")
	if err != nil {
		t.Fatal(err)
	}
	goal := New(s, Options{}).CheckEventuallyReachable(target)
	if !goal.OK {
		t.Fatalf("election never completes: %s", goal.Summary())
	}
}
