package checker

// StorageOptions groups the visited-set storage knobs — how states are
// stored, never which states exist. Every combination computes the same
// verdict; these trade memory for time. This nested form is the
// canonical spelling (since PR10); the identically named flat fields on
// Options remain as deprecated aliases and the two are merged by
// Normalized, with a non-zero flat field overriding its nested
// counterpart so legacy overlay code keeps working.
type StorageOptions struct {
	// Visited selects the parallel engine's exact storage: VisitedExact
	// ("" or "exact") or VisitedCollapse ("collapse").
	Visited string
	// MemLimit caps visited-set resident bytes; over budget, entries
	// spill to segment files under SpillDir. 0 disables spilling.
	MemLimit int64
	// SpillDir is the parent directory for spill segments (empty = the
	// system temp directory).
	SpillDir string
	// Bitstate replaces the exact visited set with a double-hash
	// bitstate table of 2^BitstateBits bits.
	Bitstate     bool
	BitstateBits uint
}

// DurabilityOptions is the canonical nested spelling of the
// checkpoint/resume knobs (since PR10). It is the same type as
// CheckpointOptions, so existing constructors work for either field.
type DurabilityOptions = CheckpointOptions

// Normalized merges the nested option groups with their deprecated flat
// aliases and returns the canonical form: nested values propagate to
// the flat fields (so engine code reading either spelling agrees), and
// an explicitly set flat field overrides its nested counterpart.
// checker.New and verifyd's OptionsKey both normalize first, which is
// what makes old and new spellings hash — and verify — identically.
func (o Options) Normalized() Options {
	st := o.Storage
	if o.Visited != "" {
		st.Visited = o.Visited
	}
	if o.MemLimit != 0 {
		st.MemLimit = o.MemLimit
	}
	if o.SpillDir != "" {
		st.SpillDir = o.SpillDir
	}
	if o.Bitstate {
		st.Bitstate = true
	}
	if o.BitstateBits != 0 {
		st.BitstateBits = o.BitstateBits
	}
	o.Storage = st
	o.Visited = st.Visited
	o.MemLimit = st.MemLimit
	o.SpillDir = st.SpillDir
	o.Bitstate = st.Bitstate
	o.BitstateBits = st.BitstateBits

	// The legacy Checkpoint pointer wins when both are set: callers that
	// derive per-property checkpoint keys clone-and-reassign it, and
	// that edit must not be shadowed by a stale Durability alias.
	if o.Checkpoint != nil {
		o.Durability = o.Checkpoint
	} else if o.Durability != nil {
		o.Checkpoint = o.Durability
	}
	return o
}
