package checker

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"pnp/internal/model"
	"pnp/internal/obs"
)

// CheckpointOptions makes the parallel BFS engines crash-safe. The
// level barrier is the natural snapshot point: after a level completes,
// the frontier plus the visited set fully determine the remainder of
// the search, independent of worker count. A snapshot therefore resumes
// to the exact verdict — and the exact StatesStored — an uninterrupted
// run would produce.
//
// Checkpointing applies only where the level barrier exists: the
// parallel safety and reachability engines (Options.Workers >= 1,
// exact visited set). Sequential DFS, liveness search, AG-EF goals, and
// bitstate runs ignore it silently — the search still completes, it is
// just not resumable.
type CheckpointOptions struct {
	// Dir is the directory checkpoint files live in (created on demand).
	Dir string
	// Key names this search's checkpoint file within Dir; callers use a
	// content hash of the submission (plus the property name when one
	// submission carries several searchable properties). Empty disables
	// checkpointing.
	Key string
	// Interval is the number of completed levels between snapshots
	// (default 1: every barrier). Larger intervals trade re-exploration
	// after a crash for less write bandwidth on deep searches.
	Interval int
	// Resume loads the last complete snapshot for Key before exploring.
	// A missing, foreign, or corrupt snapshot is ignored and the search
	// starts fresh — resume is always safe to request.
	Resume bool
	// OnWrite, when non-nil, is called after each durable snapshot with
	// the file path, the depth of the saved frontier, and the states
	// stored so far. verifyd journals checkpoint references through it.
	OnWrite func(file string, depth, states int)
}

// Checkpoint file layout: an 8-byte magic, then CRC-framed sections —
// [u32 payload length][u32 CRC-32 (IEEE) of payload][payload] — where
// the payload's first byte tags the section: 'H' JSON header, 'V' a
// batch of visited-set encodings, 'F' a batch of frontier encodings.
// State batches are concatenated [uvarint length][canonical encoding]
// entries. Files are written to a temp name, fsynced, and renamed, so a
// file that exists is complete; CRCs guard against bit rot, not tears.
const ckptMagic = "PNPCKPT1"

const (
	ckptSectionHeader   = 'H'
	ckptSectionVisited  = 'V'
	ckptSectionFrontier = 'F'
)

// ckptHeader is the 'H' section: identity (phase + model fingerprint,
// so a stale file from another design or property kind is never
// resumed), the saved depth, the section counts, and the cumulative
// stats of the search up to the barrier.
type ckptHeader struct {
	Phase       string `json:"phase"`
	Model       string `json:"model"`
	Depth       int    `json:"depth"`
	Visited     int    `json:"visited"`
	Frontier    int    `json:"frontier"`
	Stored      int    `json:"stored"`
	Matched     int    `json:"matched"`
	Transitions int    `json:"transitions"`
	MaxDepth    int    `json:"max_depth"`
}

// CheckpointFileName maps a checkpoint key to its file name within the
// checkpoint directory. Exported so verifyd's GET /v1/checkpoints/{key}
// endpoint and the checker agree on the mapping. Characters outside
// [A-Za-z0-9._-] are replaced, so a key can never escape the directory.
func CheckpointFileName(key string) string {
	b := []byte(key)
	for i, c := range b {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			b[i] = '_'
		}
	}
	return string(b) + ".ckpt"
}

// checkpointer drives snapshots for one parallel search. A nil
// checkpointer (disabled, wrong engine, bitstate) is a no-op on every
// method.
type checkpointer struct {
	c       *Checker
	opts    CheckpointOptions
	phase   string
	file    string
	modelID string
	since   int
	failed  bool

	cBytes *obs.Counter
}

// newCheckpointer arms checkpointing for one parallel search, or
// returns nil when it does not apply (no options, no key, or a bitstate
// visited set — its bit table has no exact streamable entries).
func (c *Checker) newCheckpointer(phase string, r *parRunner) *checkpointer {
	o := c.opts.Checkpoint
	if o == nil || o.Dir == "" || o.Key == "" {
		return nil
	}
	if _, ok := r.visited.(visitedDrainer); !ok {
		return nil
	}
	ck := &checkpointer{c: c, opts: *o, phase: phase, modelID: modelFingerprint(c.sys)}
	ck.file = filepath.Join(o.Dir, CheckpointFileName(o.Key))
	if ck.opts.Interval < 1 {
		ck.opts.Interval = 1
	}
	if reg := c.opts.Metrics; reg != nil {
		ck.cBytes = reg.Counter("checkpoint_bytes_written_total")
	}
	return ck
}

// modelFingerprint identifies the system a snapshot belongs to (FNV-1a
// over the model's structural fingerprint, hex).
func modelFingerprint(sys *model.System) string {
	var w model.Hash64Writer
	sys.WriteFingerprint(&w)
	return fmt.Sprintf("%016x", w.Sum64())
}

// maybeSnapshot writes a snapshot of the search at a completed level
// barrier if the interval has elapsed. frontier is the next level
// (depth = its distance from the root); an empty frontier means the
// search is about to terminate, so nothing is written. A write failure
// disables further snapshots but never fails the search.
func (ck *checkpointer) maybeSnapshot(depth int, frontier []parNode, r *parRunner, st *Stats) {
	if ck == nil || ck.failed || len(frontier) == 0 {
		return
	}
	ck.since++
	if ck.since < ck.opts.Interval {
		return
	}
	ck.since = 0
	n, err := ck.snapshot(depth, frontier, r, st)
	if err != nil {
		ck.failed = true
		return
	}
	ck.cBytes.Add(n)
	if ck.opts.OnWrite != nil {
		ck.opts.OnWrite(ck.file, depth, st.StatesStored)
	}
}

// snapshot streams the visited set (shard by shard under each shard's
// lock for the in-memory tiers, segment by segment for spilled entries)
// and the frontier to file.tmp, fsyncs, and renames. Returns the bytes
// written.
func (ck *checkpointer) snapshot(depth int, frontier []parNode, r *parRunner, st *Stats) (int64, error) {
	set := r.visited.(visitedDrainer)
	if err := os.MkdirAll(ck.opts.Dir, 0o755); err != nil {
		return 0, err
	}
	tmp := ck.file + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return 0, err
	}
	defer os.Remove(tmp)

	w := &ckptWriter{f: f}
	w.raw([]byte(ckptMagic))
	hdr := ckptHeader{
		Phase: ck.phase, Model: ck.modelID, Depth: depth,
		Visited: set.size(), Frontier: len(frontier),
		Stored: st.StatesStored, Matched: st.StatesMatched,
		Transitions: st.Transitions, MaxDepth: st.MaxDepth,
	}
	hb, err := json.Marshal(hdr)
	if err != nil {
		f.Close()
		return 0, err
	}
	w.section(ckptSectionHeader, hb)
	var batch bytes.Buffer
	const visitedBatch = 1 << 20
	batch.WriteByte(ckptSectionVisited)
	set.forEachEncoding(func(enc []byte) {
		appendEntry(&batch, enc)
		if batch.Len() >= visitedBatch {
			w.framed(batch.Bytes())
			batch.Reset()
			batch.WriteByte(ckptSectionVisited)
		}
	})
	if batch.Len() > 1 {
		w.framed(batch.Bytes())
	}
	const frontierBatch = 1 << 16
	for off := 0; off < len(frontier); off += frontierBatch {
		end := min(off+frontierBatch, len(frontier))
		batch.Reset()
		batch.WriteByte(ckptSectionFrontier)
		for i := off; i < end; i++ {
			appendEntry(&batch, frontier[i].st.Key())
		}
		w.framed(batch.Bytes())
	}
	if w.err != nil {
		f.Close()
		return 0, w.err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return 0, err
	}
	if err := f.Close(); err != nil {
		return 0, err
	}
	if err := os.Rename(tmp, ck.file); err != nil {
		return 0, err
	}
	syncDir(ck.opts.Dir)
	return w.n, nil
}

// appendEntry appends one uvarint-length-prefixed state encoding.
func appendEntry[T ~string | ~[]byte](b *bytes.Buffer, enc T) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(enc)))
	b.Write(tmp[:n])
	b.Write([]byte(enc))
}

// syncDir fsyncs a directory so a rename survives power loss; errors
// are ignored (not all filesystems support it).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// ckptWriter frames sections and tracks bytes written / first error.
type ckptWriter struct {
	f   *os.File
	n   int64
	err error
}

func (w *ckptWriter) raw(b []byte) {
	if w.err != nil {
		return
	}
	_, w.err = w.f.Write(b)
	w.n += int64(len(b))
}

func (w *ckptWriter) section(tag byte, payload []byte) {
	w.framed(append([]byte{tag}, payload...))
}

func (w *ckptWriter) framed(payload []byte) {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	w.raw(hdr[:])
	w.raw(payload)
}

// restore loads the last complete snapshot into the runner and returns
// the resumed frontier level and its depth. ok is false — and the
// search starts fresh — when resume is off, the file is missing, or
// anything about it fails validation.
func (ck *checkpointer) restore(r *parRunner, res *Result) (levels [][]parNode, depth int, ok bool) {
	if ck == nil || !ck.opts.Resume {
		return nil, 0, false
	}
	snap, err := readCheckpoint(ck.file)
	if err != nil {
		return nil, 0, false
	}
	if snap.header.Phase != ck.phase || snap.header.Model != ck.modelID {
		return nil, 0, false
	}
	shape := ck.c.sys.InitialState()
	front := make([]parNode, 0, len(snap.frontier))
	for _, enc := range snap.frontier {
		st, err := model.DecodeKey(shape, []byte(enc))
		if err != nil {
			return nil, 0, false
		}
		front = append(front, parNode{st: st, parent: -1})
	}
	if len(front) != snap.header.Frontier || len(snap.visited) != snap.header.Visited {
		return nil, 0, false
	}
	for _, enc := range snap.visited {
		// nil ends: the collapse set re-splits the encoding itself.
		r.visited.seen(model.Hash64([]byte(enc)), []byte(enc), nil)
	}
	r.stored.Store(int64(snap.header.Stored))
	res.Stats.StatesStored = snap.header.Stored
	res.Stats.StatesMatched = snap.header.Matched
	res.Stats.Transitions = snap.header.Transitions
	res.Stats.MaxDepth = snap.header.MaxDepth
	return [][]parNode{front}, snap.header.Depth, true
}

// finish removes the checkpoint once the search produced a real
// verdict. A Canceled search keeps its file — that is the crash/resume
// path — as does a crash (finish never runs).
func (ck *checkpointer) finish(res *Result) {
	if ck == nil || res.Kind == Canceled {
		return
	}
	os.Remove(ck.file)
}

// ckptSnapshot is a parsed checkpoint file.
type ckptSnapshot struct {
	header   ckptHeader
	visited  []string
	frontier []string
}

// readCheckpoint parses and validates a checkpoint file.
func readCheckpoint(file string) (*ckptSnapshot, error) {
	data, err := os.ReadFile(file)
	if err != nil {
		return nil, err
	}
	if len(data) < len(ckptMagic) || string(data[:len(ckptMagic)]) != ckptMagic {
		return nil, fmt.Errorf("checker: %s: bad checkpoint magic", file)
	}
	data = data[len(ckptMagic):]
	snap := &ckptSnapshot{}
	sawHeader := false
	for len(data) > 0 {
		if len(data) < 8 {
			return nil, fmt.Errorf("checker: %s: truncated section frame", file)
		}
		n := binary.LittleEndian.Uint32(data[0:4])
		sum := binary.LittleEndian.Uint32(data[4:8])
		data = data[8:]
		if uint32(len(data)) < n || n == 0 {
			return nil, fmt.Errorf("checker: %s: truncated section payload", file)
		}
		payload := data[:n]
		data = data[n:]
		if crc32.ChecksumIEEE(payload) != sum {
			return nil, fmt.Errorf("checker: %s: section CRC mismatch", file)
		}
		tag, body := payload[0], payload[1:]
		switch tag {
		case ckptSectionHeader:
			if err := json.Unmarshal(body, &snap.header); err != nil {
				return nil, fmt.Errorf("checker: %s: bad header: %w", file, err)
			}
			sawHeader = true
		case ckptSectionVisited:
			snap.visited, err = readEntries(body, snap.visited)
		case ckptSectionFrontier:
			snap.frontier, err = readEntries(body, snap.frontier)
		default:
			return nil, fmt.Errorf("checker: %s: unknown section %q", file, tag)
		}
		if err != nil {
			return nil, fmt.Errorf("checker: %s: %w", file, err)
		}
	}
	if !sawHeader {
		return nil, fmt.Errorf("checker: %s: missing header section", file)
	}
	return snap, nil
}

// readEntries parses concatenated length-prefixed state encodings.
func readEntries(body []byte, into []string) ([]string, error) {
	for len(body) > 0 {
		n, w := binary.Uvarint(body)
		if w <= 0 || n > uint64(len(body)-w) {
			return nil, io.ErrUnexpectedEOF
		}
		into = append(into, string(body[w:w+int(n)]))
		body = body[w+int(n):]
	}
	return into, nil
}
