package checker

import (
	"strings"
	"testing"

	"pnp/internal/pml"
)

func props(t *testing.T, prog *pml.Compiled, defs map[string]string) map[string]pml.RExpr {
	t.Helper()
	p, err := PropsFromSource(prog, defs)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestLTLEventuallyHolds(t *testing.T) {
	s := sysFromSource(t, `
byte x;
active proctype P() { x = 1; x = 2 }`)
	p := props(t, s.Prog, map[string]string{"done": "x == 2"})
	res := New(s, Options{}).CheckLTL("<> done", p)
	if !res.OK {
		t.Fatalf("expected <>done to hold, got %s\n%s", res.Summary(), res.Trace)
	}
}

func TestLTLEventuallyViolated(t *testing.T) {
	// x may never become 2: the loop can keep choosing the first branch.
	s := sysFromSource(t, `
byte x;
active proctype P() {
	do
	:: x = 0
	:: x = 2
	od
}`)
	p := props(t, s.Prog, map[string]string{"done": "x == 2"})
	res := New(s, Options{}).CheckLTL("<> done", p)
	if res.OK || res.Kind != AcceptanceCycle {
		t.Fatalf("expected acceptance cycle, got %s", res.Summary())
	}
	if res.Trace == nil || len(res.Trace.Cycle) == 0 {
		t.Fatal("no cycle in counterexample")
	}
}

func TestLTLAlwaysHolds(t *testing.T) {
	s := sysFromSource(t, `
byte x;
active proctype P() {
	do
	:: x = 1
	:: x = 0
	od
}`)
	p := props(t, s.Prog, map[string]string{"small": "x < 2"})
	res := New(s, Options{}).CheckLTL("[] small", p)
	if !res.OK {
		t.Fatalf("expected []small to hold, got %s", res.Summary())
	}
}

func TestLTLAlwaysViolated(t *testing.T) {
	s := sysFromSource(t, `
byte x;
active proctype P() { x = 1; x = 5 }`)
	p := props(t, s.Prog, map[string]string{"small": "x < 2"})
	res := New(s, Options{}).CheckLTL("[] small", p)
	if res.OK {
		t.Fatalf("expected violation, got %s", res.Summary())
	}
	if res.Kind != AcceptanceCycle {
		t.Fatalf("kind = %s", res.Kind)
	}
}

func TestLTLStutterExtensionAtTermination(t *testing.T) {
	// A terminating run stutters forever in its final state, so []<>p
	// fails if p is false at the end, even though the run is finite.
	s := sysFromSource(t, `
byte x;
active proctype P() { x = 1; x = 0 }`)
	p := props(t, s.Prog, map[string]string{"on": "x == 1"})
	res := New(s, Options{}).CheckLTL("[] <> on", p)
	if res.OK {
		t.Fatal("[]<>on should fail: the final state has x==0 forever")
	}
	res2 := New(sysFromSource(t, `
byte x;
active proctype P() { x = 0; x = 1 }`), Options{}).CheckLTL("<> [] on", p)
	if !res2.OK {
		t.Fatalf("<>[]on should hold via stuttering at the end: %s", res2.Summary())
	}
}

func TestLTLResponseProperty(t *testing.T) {
	// Every request is eventually acknowledged.
	src := `
byte req, ack;
chan c = [1] of { byte };
active proctype Client() {
	do
	:: req = 1; c!1;
	   ack == 1 -> req = 0; ack = 0
	od
}
active proctype Server() {
	byte m;
	end: do
	:: c?m -> ack = 1
	od
}`
	s := sysFromSource(t, src)
	p := props(t, s.Prog, map[string]string{"requested": "req == 1", "acked": "ack == 1"})
	res := New(s, Options{}).CheckLTL("[] (requested -> <> acked)", p)
	if !res.OK {
		t.Fatalf("response property should hold: %s\n%s", res.Summary(), res.Trace)
	}
}

func TestLTLResponseViolatedWhenServerMayDrop(t *testing.T) {
	// The server may nondeterministically ignore a request forever.
	src := `
byte req, ack;
chan c = [1] of { byte };
active proctype Client() {
	req = 1;
	c!1
}
active proctype Server() {
	byte m;
	end: do
	:: c?m
	:: c?m -> ack = 1
	od
}`
	s := sysFromSource(t, src)
	p := props(t, s.Prog, map[string]string{"requested": "req == 1", "acked": "ack == 1"})
	res := New(s, Options{}).CheckLTL("[] (requested -> <> acked)", p)
	if res.OK || res.Kind != AcceptanceCycle {
		t.Fatalf("expected response violation, got %s", res.Summary())
	}
}

func TestLTLUndefinedProposition(t *testing.T) {
	s := sysFromSource(t, `byte x; active proctype P() { x = 1 }`)
	res := New(s, Options{}).CheckLTL("<> nosuch", map[string]pml.RExpr{})
	if res.OK || res.Kind != RuntimeError {
		t.Fatalf("expected runtime error, got %s", res.Summary())
	}
	if !strings.Contains(res.Message, "nosuch") {
		t.Errorf("message = %q", res.Message)
	}
}

func TestLTLParseErrorSurfaces(t *testing.T) {
	s := sysFromSource(t, `byte x; active proctype P() { x = 1 }`)
	res := New(s, Options{}).CheckLTL("<> (", map[string]pml.RExpr{})
	if res.OK || res.Kind != RuntimeError {
		t.Fatalf("expected parse error, got %s", res.Summary())
	}
}

func TestLTLAssertionFoundDuringLivenessSearch(t *testing.T) {
	s := sysFromSource(t, `
byte x;
active proctype P() { x = 1; assert(false) }`)
	p := props(t, s.Prog, map[string]string{"q": "x == 0"})
	res := New(s, Options{}).CheckLTL("[] (q || !q)", p)
	if res.OK || res.Kind != Assertion {
		t.Fatalf("expected assertion surfaced, got %s", res.Summary())
	}
}

func TestLTLNextOperator(t *testing.T) {
	s := sysFromSource(t, `
byte x;
active proctype P() { x = 1; x = 2; x = 3 }`)
	p := props(t, s.Prog, map[string]string{"one": "x == 1", "zero": "x == 0"})
	res := New(s, Options{}).CheckLTL("zero && X one", p)
	if !res.OK {
		t.Fatalf("zero && X one should hold on the single path: %s", res.Summary())
	}
	res2 := New(sysFromSource(t, `
byte x;
active proctype P() { x = 1; x = 2; x = 3 }`), Options{}).CheckLTL("X X zero", p)
	if res2.OK {
		t.Fatal("X X zero should fail (x==2 at step 2)")
	}
}
