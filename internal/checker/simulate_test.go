package checker

import (
	"strings"
	"testing"
)

func TestSimulateCleanTermination(t *testing.T) {
	s := sysFromSource(t, `
byte x;
active proctype P() { x = 1; x = 2 }`)
	res := New(s, Options{}).Simulate(1, 100)
	if !res.OK {
		t.Fatalf("clean walk failed: %s", res.Summary())
	}
	if !strings.Contains(res.Trace.Final, "valid end states") {
		t.Errorf("final = %q", res.Trace.Final)
	}
	if len(res.Trace.Prefix) != 2 {
		t.Errorf("walk length = %d, want 2", len(res.Trace.Prefix))
	}
}

func TestSimulateFindsAssertOnPath(t *testing.T) {
	// Deterministic program: every walk hits the assert.
	s := sysFromSource(t, `
byte x;
active proctype P() { x = 1; assert(x == 0) }`)
	res := New(s, Options{}).Simulate(7, 100)
	if res.OK || res.Kind != Assertion {
		t.Fatalf("expected assertion on walk, got %s", res.Summary())
	}
}

func TestSimulateDetectsDeadlock(t *testing.T) {
	s := sysFromSource(t, `
chan a = [0] of { byte };
active proctype P() { byte x; a?x }`)
	res := New(s, Options{}).Simulate(3, 100)
	if res.OK || res.Kind != Deadlock {
		t.Fatalf("expected deadlock, got %s", res.Summary())
	}
}

func TestSimulateDeterministicPerSeed(t *testing.T) {
	src := `
byte x;
active proctype P() {
	do
	:: x < 20 -> x = x + 1
	:: x < 20 -> x = x + 2
	:: x >= 20 -> break
	od
}`
	a := New(sysFromSource(t, src), Options{}).Simulate(42, 50)
	b := New(sysFromSource(t, src), Options{}).Simulate(42, 50)
	if a.Trace.String() != b.Trace.String() {
		t.Error("same seed produced different walks")
	}
	c := New(sysFromSource(t, src), Options{}).Simulate(43, 50)
	if a.Trace.String() == c.Trace.String() {
		t.Log("different seeds produced identical walks (possible but unlikely)")
	}
}

func TestSimulateChecksInvariants(t *testing.T) {
	s := sysFromSource(t, `
byte x;
active proctype P() { x = 1; x = 2; x = 3 }`)
	inv, err := InvariantFromSource(s.Prog, "small", "x < 3")
	if err != nil {
		t.Fatal(err)
	}
	res := New(s, Options{Invariants: []Invariant{inv}}).Simulate(1, 100)
	if res.OK || res.Kind != InvariantViolation {
		t.Fatalf("expected invariant violation on walk, got %s", res.Summary())
	}
}

func TestSimulateTruncates(t *testing.T) {
	s := sysFromSource(t, `
byte x;
active proctype P() {
	do
	:: x = 1 - x
	od
}`)
	res := New(s, Options{}).Simulate(1, 25)
	if !res.OK {
		t.Fatalf("walk failed: %s", res.Summary())
	}
	if len(res.Trace.Prefix) != 25 || !strings.Contains(res.Trace.Final, "truncated") {
		t.Errorf("walk = %d events, final %q", len(res.Trace.Prefix), res.Trace.Final)
	}
}
