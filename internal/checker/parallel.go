package checker

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pnp/internal/model"
	"pnp/internal/obs"
	"pnp/internal/pml"
	"pnp/internal/trace"
)

// The parallel engine explores breadth-first one level at a time: all
// frontier nodes of depth d are expanded (by Options.Workers goroutines
// pulling from a shared index) before any node of depth d+1 is looked
// at. The barrier is what makes the search worker-count-independent:
// the set of states at depth d+1 is exactly successors(level d) minus
// the visited set after level d, no matter how workers interleave, so
// verdicts, StatesStored, and counterexample lengths match at every
// worker count. Violations found while expanding a level are collected
// and adjudicated deterministically at the barrier (see bestProblem)
// instead of racing to report first.

// parallelEligible reports whether the options route to the parallel
// engine: Workers >= 1 and nothing that requires the sequential DFS.
// Partial-order reduction depends on DFS-stack cycle detection and
// ReportUnreached on observing every expansion, so both fall back.
func (c *Checker) parallelEligible() bool {
	return c.opts.Workers >= 1 && !c.opts.PartialOrder && !c.opts.ReportUnreached
}

// parNode is one frontier entry. parent indexes the previous level's
// slice (-1 at the root); in is the transition that produced the node.
type parNode struct {
	st     *model.State
	parent int32
	in     model.Transition
}

// parProblem is one violation candidate found while working a level.
// trIdx is the index of the violating transition in its node's
// (deterministic) successor order, or -1 when the node's own state is
// the problem (invariant violation, deadlock, eval error, or — in the
// reachability search — a target hit, kind NoViolation).
type parProblem struct {
	node  int
	trIdx int
	kind  ViolationKind
	msg   string
	tr    model.Transition
}

// parWorker is the per-goroutine scratch: a state arena, a reusable key
// buffer, a reusable transition slice, and local accumulators flushed
// at each level barrier so the hot loop touches no shared counters
// except the visited set and the stored-states total.
type parWorker struct {
	arena    *model.Arena
	scratch  []byte
	ends     []int
	trs      []model.Transition
	next     []parNode
	problems []parProblem
	trans    int
	matched  int
	busy     time.Duration
	cc       *canceler
}

// parRunner holds the cross-worker state of one parallel search.
type parRunner struct {
	c       *Checker
	workers []*parWorker
	visited parVisited
	stored  atomic.Int64 // states stored so far, root included
	stop    atomic.Bool  // cancel or state limit: workers drain promptly
	limit   atomic.Bool
	cancel  atomic.Bool

	gFrontier, gWorkers, gVisitedBytes *obs.Gauge
	cBusy                              *obs.Counter
}

func (c *Checker) newParRunner(phase string) *parRunner {
	w := c.opts.Workers
	if w < 1 {
		w = 1
	}
	r := &parRunner{c: c}
	var contention, spilled *obs.Counter
	if reg := c.opts.Metrics; reg != nil {
		contention = reg.Counter(obs.Labels("checker_visited_shard_contention_total", "phase", phase))
		spilled = reg.Counter(obs.Labels("checker_visited_spilled_states_total", "phase", phase))
		r.cBusy = reg.Counter(obs.Labels("checker_worker_busy_ns_total", "phase", phase))
		r.gFrontier = reg.Gauge(obs.Labels("checker_frontier_states", "phase", phase))
		r.gWorkers = reg.Gauge(obs.Labels("checker_workers", "phase", phase))
		r.gVisitedBytes = reg.Gauge(obs.Labels("checker_visited_bytes", "phase", phase))
	}
	r.gWorkers.Set(int64(w))
	r.visited = c.newParVisited(contention, spilled)
	r.workers = make([]*parWorker, w)
	for i := range r.workers {
		r.workers[i] = &parWorker{arena: &model.Arena{}, cc: c.newCanceler()}
	}
	return r
}

// seedRoot records the initial state in the visited set and returns the
// one-node root level.
func (r *parRunner) seedRoot() [][]parNode {
	init := r.c.sys.InitialState()
	enc, ends := init.AppendComponentKeys(nil, nil)
	r.visited.seen(model.Hash64(enc), enc, ends)
	r.stored.Store(1)
	return [][]parNode{{{st: init, parent: -1}}}
}

// close releases visited-set resources (spill segment mappings and
// files) once the search is over.
func (r *parRunner) close() {
	if s, ok := r.visited.(*spillSet); ok {
		s.close()
	}
}

// abort flags a worker-side stop condition. Cancellation and the state
// limit drain the level early (their stats are best-effort, as in the
// sequential engines); violations do NOT stop the level — it must
// complete so the stored set stays deterministic.
func (r *parRunner) abortCancel() { r.cancel.Store(true); r.stop.Store(true) }
func (r *parRunner) abortLimit()  { r.limit.Store(true); r.stop.Store(true) }

// runLevel drives work(worker, nodeIndex) over every index of cur,
// spreading indices across the workers. With one worker it runs inline,
// goroutine-free.
func (r *parRunner) runLevel(n int, work func(w *parWorker, i int)) {
	var idx atomic.Int64
	loop := func(w *parWorker) {
		t0 := time.Now()
		for !r.stop.Load() {
			i := int(idx.Add(1) - 1)
			if i >= n {
				break
			}
			work(w, i)
		}
		w.busy += time.Since(t0)
	}
	if len(r.workers) == 1 {
		loop(r.workers[0])
		return
	}
	var wg sync.WaitGroup
	for _, w := range r.workers {
		wg.Add(1)
		go func(w *parWorker) {
			defer wg.Done()
			loop(w)
		}(w)
	}
	wg.Wait()
}

// collect flushes every worker's level-local accumulators into the
// result stats and returns the concatenated next frontier and problem
// list. Concatenation order varies between runs; everything downstream
// is order-insensitive (sets and min-adjudication).
func (r *parRunner) collect(res *Result) (next []parNode, problems []parProblem) {
	for _, w := range r.workers {
		res.Stats.Transitions += w.trans
		res.Stats.StatesMatched += w.matched
		w.trans, w.matched = 0, 0
		next = append(next, w.next...)
		w.next = w.next[:0]
		problems = append(problems, w.problems...)
		w.problems = w.problems[:0]
		r.cBusy.Add(w.busy.Nanoseconds())
		w.busy = 0
	}
	res.Stats.StatesStored = int(r.stored.Load())

	// Barrier-granularity memory accounting: record the peak before any
	// spill (that is what the search actually needed resident), let the
	// spill tier flush if the budget is exceeded, then publish the
	// current footprint.
	if b := r.visited.bytes(); b > res.Stats.VisitedBytes {
		res.Stats.VisitedBytes = b
	}
	if s, ok := r.visited.(*spillSet); ok {
		s.maybeSpill()
		res.Stats.SpilledStates = int(s.spilled.Load())
	}
	r.gVisitedBytes.Set(r.visited.bytes())
	return next, problems
}

// limitResult finishes a search that crossed MaxStates. StatesStored is
// clamped to limit+1 — the value the sequential engines report when
// they store the first state past the limit and stop.
func (r *parRunner) limitResult(res *Result) *Result {
	if res.Stats.StatesStored > r.c.opts.MaxStates+1 {
		res.Stats.StatesStored = r.c.opts.MaxStates + 1
	}
	res.Stats.Truncated = true
	res.OK = false
	res.Kind = SearchLimit
	res.Message = fmt.Sprintf("state limit %d exceeded", r.c.opts.MaxStates)
	return res
}

// cancelResult mirrors canceler.cancelResult for the parallel engine.
func (r *parRunner) cancelResult(res *Result) *Result {
	res.OK = false
	res.Kind = Canceled
	res.Stats.Truncated = true
	if err := r.c.opts.Context.Err(); err != nil {
		res.Message = err.Error()
	} else {
		res.Message = "context canceled"
	}
	return res
}

// bestProblem picks the violation to report, deterministically: state
// problems (counterexample length = node depth) before violating
// transitions (length = depth+1), then smallest state key, then
// smallest transition index. The order is a pure function of the level
// set, so every worker count reports the same counterexample.
func bestProblem(cur []parNode, problems []parProblem) *parProblem {
	rank := func(p *parProblem) int {
		if p.trIdx < 0 {
			return 0
		}
		return 1
	}
	var best *parProblem
	var bestKey string
	for i := range problems {
		p := &problems[i]
		k := cur[p.node].st.Key()
		if best == nil ||
			rank(p) < rank(best) ||
			(rank(p) == rank(best) && (k < bestKey || (k == bestKey && p.trIdx < best.trIdx))) {
			best, bestKey = p, k
		}
	}
	return best
}

// parTrace rebuilds the path to levels[depth][node], optionally
// appending one extra (violating) transition.
func (c *Checker) parTrace(levels [][]parNode, depth, node int, extra *model.Transition) *trace.Trace {
	var rev []trace.Event
	for li, ni := depth, node; li > 0; li-- {
		n := &levels[li][ni]
		rev = append(rev, eventOf(c.sys, n.in))
		ni = int(n.parent)
	}
	t := &trace.Trace{}
	for k := len(rev) - 1; k >= 0; k-- {
		t.Prefix = append(t.Prefix, rev[k])
	}
	if extra != nil {
		t.Prefix = append(t.Prefix, eventOf(c.sys, *extra))
	}
	return t
}

// checkSafetyPar is the parallel counterpart of checkSafetyBFS: same
// verdict semantics (assertions, runtime errors, invariants, deadlock),
// shortest counterexamples, level-synchronized exploration.
func (c *Checker) checkSafetyPar() *Result {
	start := time.Now()
	res := &Result{OK: true}
	defer func() { res.Stats.Elapsed = time.Since(start) }()
	m := c.newMeter("safety-par-bfs")
	defer func() { m.finish(&res.Stats, res.Stats.MaxDepth) }()

	r := c.newParRunner("safety-par-bfs")
	defer r.close()
	ck := c.newCheckpointer("safety-par-bfs", r)
	defer func() { ck.finish(res) }()
	// On resume, levels[0] is the checkpointed frontier at depth base;
	// counterexample prefixes then start at that frontier (the path from
	// the root was discarded with the crashed process). Verdicts, stats,
	// and counterexample lengths are unaffected.
	levels, base, resumed := ck.restore(r, res)
	if !resumed {
		levels = r.seedRoot()
		res.Stats.StatesStored = 1
		base = 0
	}

	for li := 0; li < len(levels); li++ {
		depth := base + li
		cur := levels[li]
		if len(cur) == 0 {
			break
		}
		if depth > res.Stats.MaxDepth {
			res.Stats.MaxDepth = depth
		}
		r.gFrontier.Set(int64(len(cur)))

		work := func(w *parWorker, i int) {
			if w.cc.hit() {
				r.abortCancel()
				return
			}
			node := &cur[i]
			w.trs = c.sys.SuccessorsAppend(node.st, w.arena, w.trs[:0])
			w.trans += len(w.trs)
			if kind, msg := c.stateProblem(node.st, len(w.trs)); kind != NoViolation {
				w.problems = append(w.problems, parProblem{node: i, trIdx: -1, kind: kind, msg: msg})
			}
			// Expand fully even after recording a problem: the level's
			// stored set must not depend on which worker saw what first.
			for ti := range w.trs {
				tr := w.trs[ti]
				if tr.Violation != "" {
					w.problems = append(w.problems, parProblem{
						node: i, trIdx: ti, kind: violationKind(tr.Violation),
						msg: tr.Violation, tr: tr,
					})
					continue
				}
				w.scratch, w.ends = tr.Next.AppendComponentKeys(w.scratch[:0], w.ends[:0])
				if r.visited.seen(model.Hash64(w.scratch), w.scratch, w.ends) {
					w.matched++
					w.arena.Recycle(tr.Next)
					continue
				}
				n := r.stored.Add(1)
				if c.opts.MaxStates > 0 && int(n) > c.opts.MaxStates {
					r.abortLimit()
					return
				}
				w.next = append(w.next, parNode{st: tr.Next, parent: int32(i), in: tr})
			}
		}
		prevStored := res.Stats.StatesStored
		r.runLevel(len(cur), work)
		next, problems := r.collect(res)
		m.level(&res.Stats, depth, len(cur), res.Stats.StatesStored-prevStored)

		if r.cancel.Load() {
			return r.cancelResult(res)
		}
		if r.limit.Load() {
			return r.limitResult(res)
		}
		if p := bestProblem(cur, problems); p != nil {
			res.OK = false
			res.Kind = p.kind
			res.Message = p.msg
			var extra *model.Transition
			if p.trIdx >= 0 {
				extra = &p.tr
			}
			res.Trace = c.parTrace(levels, li, p.node, extra)
			res.Trace.Final = p.msg
			return res
		}
		if c.opts.MaxDepth > 0 && depth+1 > c.opts.MaxDepth && len(next) > 0 {
			res.Stats.Truncated = true
			res.OK = false
			res.Kind = SearchLimit
			res.Message = fmt.Sprintf("depth limit %d reached; search incomplete", c.opts.MaxDepth)
			return res
		}
		ck.maybeSnapshot(depth+1, next, r, &res.Stats)
		levels = append(levels, next)
	}
	return res
}

// checkReachablePar is the parallel counterpart of checkReachable. Each
// level is first scanned for target hits — entirely, before any
// expansion — so the witness is shortest and the stored-state count is
// the same at every worker count; only if no frontier state satisfies
// the target is the level expanded.
func (c *Checker) checkReachablePar(target pml.RExpr) *Result {
	start := time.Now()
	res := &Result{}
	defer func() { res.Stats.Elapsed = time.Since(start) }()
	m := c.newMeter("reachability-par")
	defer func() { m.finish(&res.Stats, res.Stats.MaxDepth) }()

	r := c.newParRunner("reachability-par")
	defer r.close()
	ck := c.newCheckpointer("reachability-par", r)
	defer func() { ck.finish(res) }()
	levels, base, resumed := ck.restore(r, res)
	if !resumed {
		levels = r.seedRoot()
		res.Stats.StatesStored = 1
		base = 0
	}

	for li := 0; li < len(levels); li++ {
		depth := base + li
		cur := levels[li]
		if len(cur) == 0 {
			break
		}
		if depth > res.Stats.MaxDepth {
			res.Stats.MaxDepth = depth
		}
		r.gFrontier.Set(int64(len(cur)))

		// Pass 1: scan the whole frontier for the target.
		scan := func(w *parWorker, i int) {
			if w.cc.hit() {
				r.abortCancel()
				return
			}
			v, err := c.sys.EvalGlobal(cur[i].st, target)
			if err != nil {
				w.problems = append(w.problems, parProblem{node: i, trIdx: -1, kind: RuntimeError, msg: err.Error()})
				return
			}
			if v != 0 {
				w.problems = append(w.problems, parProblem{node: i, trIdx: -1, kind: NoViolation})
			}
		}
		r.runLevel(len(cur), scan)
		_, hits := r.collect(res)
		if r.cancel.Load() {
			return r.cancelResult(res)
		}
		// A target hit wins over an evaluation error at the same level:
		// the search is asked for a witness, and both choices are
		// adjudicated by smallest key, independent of worker count.
		var sats, errs []parProblem
		for _, p := range hits {
			if p.kind == NoViolation {
				sats = append(sats, p)
			} else {
				errs = append(errs, p)
			}
		}
		if p := bestProblem(cur, sats); p != nil {
			res.OK = true
			res.Trace = c.parTrace(levels, li, p.node, nil)
			res.Trace.Final = "target state reached"
			return res
		}
		if p := bestProblem(cur, errs); p != nil {
			res.Kind = RuntimeError
			res.Message = p.msg
			return res
		}

		// Pass 2: expand the frontier.
		expand := func(w *parWorker, i int) {
			if w.cc.hit() {
				r.abortCancel()
				return
			}
			node := &cur[i]
			w.trs = c.sys.SuccessorsAppend(node.st, w.arena, w.trs[:0])
			w.trans += len(w.trs)
			for ti := range w.trs {
				tr := w.trs[ti]
				if tr.Violation != "" {
					continue
				}
				w.scratch, w.ends = tr.Next.AppendComponentKeys(w.scratch[:0], w.ends[:0])
				if r.visited.seen(model.Hash64(w.scratch), w.scratch, w.ends) {
					w.matched++
					w.arena.Recycle(tr.Next)
					continue
				}
				n := r.stored.Add(1)
				if c.opts.MaxStates > 0 && int(n) > c.opts.MaxStates {
					r.abortLimit()
					return
				}
				w.next = append(w.next, parNode{st: tr.Next, parent: int32(i), in: tr})
			}
		}
		prevStored := res.Stats.StatesStored
		r.runLevel(len(cur), expand)
		next, _ := r.collect(res)
		m.level(&res.Stats, depth, len(cur), res.Stats.StatesStored-prevStored)
		if r.cancel.Load() {
			return r.cancelResult(res)
		}
		if r.limit.Load() {
			return r.limitResult(res)
		}
		ck.maybeSnapshot(depth+1, next, r, &res.Stats)
		levels = append(levels, next)
	}
	res.Kind = NoViolation
	res.Message = "target state is unreachable"
	return res
}
