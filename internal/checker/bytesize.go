package checker

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseByteSize parses a human-readable byte size for Options.MemLimit:
// a bare number is bytes, the suffixes KB/MB/GB/TB are decimal powers,
// K/KiB/M/MiB/G/GiB/T/TiB are binary powers, and a lone trailing "B" is
// accepted. Matching is case-insensitive and fractions work ("1.5GiB").
// The empty string parses to 0 (no limit).
func ParseByteSize(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, nil
	}
	num := strings.TrimRight(s, "kmgtbiKMGTBI")
	suffix := strings.ToLower(strings.TrimSpace(s[len(num):]))
	mult := float64(1)
	switch suffix {
	case "", "b":
	case "kb":
		mult = 1e3
	case "mb":
		mult = 1e6
	case "gb":
		mult = 1e9
	case "tb":
		mult = 1e12
	case "k", "kib":
		mult = 1 << 10
	case "m", "mib":
		mult = 1 << 20
	case "g", "gib":
		mult = 1 << 30
	case "t", "tib":
		mult = 1 << 40
	default:
		return 0, fmt.Errorf("unknown size suffix %q in %q", suffix, s)
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(num), 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return int64(v * mult), nil
}
