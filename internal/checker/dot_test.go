package checker

import (
	"strings"
	"testing"
)

func TestWriteDOT(t *testing.T) {
	s := sysFromSource(t, `
byte x;
active proctype P() { x = 1; x = 2 }`)
	var sb strings.Builder
	if err := New(s, Options{}).WriteDOT(&sb, 100); err != nil {
		t.Fatal(err)
	}
	dot := sb.String()
	for _, want := range []string{"digraph statespace", "s0", "x=0", "x=2", "->", "}"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
	// The terminal state gets a double border.
	if !strings.Contains(dot, "peripheries=2") {
		t.Errorf("terminal state not marked:\n%s", dot)
	}
}

func TestWriteDOTMarksViolations(t *testing.T) {
	s := sysFromSource(t, `
byte x;
active proctype P() { x = 1; x = 2 }`)
	inv, err := InvariantFromSource(s.Prog, "small", "x < 2")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := New(s, Options{Invariants: []Invariant{inv}}).WriteDOT(&sb, 100); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "color=red") {
		t.Errorf("violating state not highlighted:\n%s", sb.String())
	}
}

func TestWriteDOTTruncates(t *testing.T) {
	s := sysFromSource(t, `
byte x, y;
active proctype P() {
	do
	:: x = x + 1
	:: y = y + 1
	od
}`)
	var sb strings.Builder
	if err := New(s, Options{}).WriteDOT(&sb, 10); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "truncated") {
		t.Errorf("truncation marker missing")
	}
}
