package checker

import (
	"fmt"
	"strconv"
	"time"

	"pnp/internal/ltl"
	"pnp/internal/model"
	"pnp/internal/pml"
	"pnp/internal/trace"
)

// CheckLTLStrongFair verifies an LTL formula under strong process
// fairness: any process enabled infinitely often must move infinitely
// often. Weak fairness (Options.WeakFairness) cannot express this — a
// retry loop that toggles a peer's enabledness starves it under weakly
// fair schedules — so this check uses the classic Streett-style
// SCC decomposition instead of a counter construction: a counterexample
// exists iff some reachable SCC of the product contains an accepting
// state and, for every process enabled somewhere in the SCC, also an
// edge moved by that process; offending processes' enabled-states are
// pruned and the SCC re-decomposed until the answer stabilizes.
//
// The whole product graph is materialized, so this is the most expensive
// verification mode; use it for the liveness properties that need it.
func (c *Checker) CheckLTLStrongFair(formula string, props map[string]pml.RExpr) *Result {
	f, err := ltl.Parse(formula)
	if err != nil {
		return &Result{Kind: RuntimeError, Message: err.Error()}
	}
	return c.CheckLTLFormulaStrongFair(f, props)
}

// product graph node for the strong-fairness search.
type sfNode struct {
	st         *model.State
	q          int
	accepting  bool
	enabled    []bool // per process, in st
	succ       []sfEdge
	parent     int // BFS tree for prefix reconstruction
	parentEdge int
}

type sfEdge struct {
	to    int
	ev    trace.Event
	moved [2]int // acting pids, -1 when unused (stutter: both -1)
}

// sfTask is a node subset awaiting (re-)decomposition into SCCs.
type sfTask struct{ members []int }

// CheckLTLFormulaStrongFair is CheckLTLStrongFair for a parsed formula.
func (c *Checker) CheckLTLFormulaStrongFair(f *ltl.Formula, props map[string]pml.RExpr) *Result {
	start := time.Now()
	res := &Result{OK: true}
	defer func() { res.Stats.Elapsed = time.Since(start) }()
	m := c.newMeter("liveness-strongfair")
	defer func() { m.finish(&res.Stats, res.Stats.MaxDepth) }()
	cc := c.newCanceler()

	aut, err := ltl.Translate(ltl.Not(f))
	if err != nil {
		res.OK = false
		res.Kind = RuntimeError
		res.Message = err.Error()
		return res
	}
	atomExprs := make([]pml.RExpr, len(aut.Atoms))
	for i, name := range aut.Atoms {
		e, ok := props[name]
		if !ok {
			res.OK = false
			res.Kind = RuntimeError
			res.Message = fmt.Sprintf("undefined atomic proposition %q", name)
			return res
		}
		atomExprs[i] = e
	}
	nProcs := c.sys.NumInstances()

	valuation := func(st *model.State) (func(int) bool, error) {
		vals := make([]bool, len(atomExprs))
		for i, e := range atomExprs {
			v, err := c.sys.EvalGlobal(st, e)
			if err != nil {
				return nil, err
			}
			vals[i] = v != 0
		}
		return func(i int) bool { return vals[i] }, nil
	}

	// Materialize the reachable product graph (BFS).
	var nodes []*sfNode
	index := map[string]int{}
	intern := func(st *model.State, key string, q int) int {
		k := key + "#" + strconv.Itoa(q)
		if i, ok := index[k]; ok {
			res.Stats.StatesMatched++
			return i
		}
		index[k] = len(nodes)
		en := make([]bool, nProcs)
		for p := 0; p < nProcs; p++ {
			en[p] = c.sys.ProcEnabled(st, p)
		}
		nodes = append(nodes, &sfNode{
			st: st, q: q, accepting: aut.States[q].Accepting,
			enabled: en, parent: -1, parentEdge: -1,
		})
		res.Stats.StatesStored++
		m.tick(&res.Stats, res.Stats.MaxDepth)
		return len(nodes) - 1
	}

	fail := func(kind ViolationKind, msg string) *Result {
		res.OK = false
		res.Kind = kind
		res.Message = msg
		return res
	}

	init := c.sys.InitialState()
	val0, verr := valuation(init)
	if verr != nil {
		return fail(RuntimeError, verr.Error())
	}
	initKey := init.Key()
	var roots []int
	for _, at := range aut.InitTrans {
		if at.Sat(val0) {
			roots = append(roots, intern(init, initKey, at.Dst))
		}
	}
	for head := 0; head < len(nodes); head++ {
		if cc.hit() {
			return cc.cancelResult(res)
		}
		if c.opts.MaxStates > 0 && len(nodes) > c.opts.MaxStates {
			res.Stats.Truncated = true
			return fail(SearchLimit, fmt.Sprintf("state limit %d exceeded", c.opts.MaxStates))
		}
		nd := nodes[head]
		trs := c.sys.Successors(nd.st)
		res.Stats.Transitions += len(trs)
		expand := func(next *model.State, ev trace.Event, moved [2]int) error {
			val, err := valuation(next)
			if err != nil {
				return err
			}
			key := next.Key()
			for _, at := range aut.States[nd.q].Trans {
				if !at.Sat(val) {
					continue
				}
				to := intern(next, key, at.Dst)
				nd.succ = append(nd.succ, sfEdge{to: to, ev: ev, moved: moved})
				if nodes[to].parent == -1 && to != head && !isRoot(roots, to) {
					nodes[to].parent = head
					nodes[to].parentEdge = len(nd.succ) - 1
				}
			}
			return nil
		}
		if len(trs) == 0 {
			if err := expand(nd.st, trace.Event{Action: "(stutter)"}, [2]int{-1, -1}); err != nil {
				return fail(RuntimeError, err.Error())
			}
			continue
		}
		for _, tr := range trs {
			if tr.Violation != "" {
				// Safety violations surface regardless of fairness.
				t := c.sfPrefix(nodes, head)
				t.Prefix = append(t.Prefix, eventOf(c.sys, tr))
				t.Final = tr.Violation
				res.Trace = t
				return fail(violationKind(tr.Violation), tr.Violation)
			}
			if err := expand(tr.Next, eventOf(c.sys, tr), [2]int{tr.Proc, tr.Partner}); err != nil {
				return fail(RuntimeError, err.Error())
			}
		}
	}

	// Recursive fair-SCC search over shrinking node sets.
	alive := make([]bool, len(nodes))
	all := make([]int, len(nodes))
	for i := range nodes {
		all[i] = i
	}
	stack := []sfTask{{members: all}}
	for len(stack) > 0 {
		if cc.hit() {
			return cc.cancelResult(res)
		}
		t := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, i := range t.members {
			alive[i] = true
		}
		sccs := c.sfSCCs(nodes, t.members, alive)
		for _, scc := range sccs {
			if fairTrace := c.sfCheckSCC(nodes, scc, nProcs, &stack); fairTrace != nil {
				res.OK = false
				res.Kind = AcceptanceCycle
				res.Message = fmt.Sprintf("LTL property violated under strong fairness: %s", f)
				fairTrace.Final = res.Message
				res.Trace = fairTrace
				return res
			}
		}
		for _, i := range t.members {
			alive[i] = false
		}
	}
	return res
}

func isRoot(roots []int, i int) bool {
	for _, r := range roots {
		if r == i {
			return true
		}
	}
	return false
}

// sfPrefix reconstructs the BFS-tree path to node i as trace events.
func (c *Checker) sfPrefix(nodes []*sfNode, i int) *trace.Trace {
	var rev []trace.Event
	for j := i; nodes[j].parent != -1; j = nodes[j].parent {
		p := nodes[j].parent
		rev = append(rev, nodes[p].succ[nodes[j].parentEdge].ev)
	}
	t := &trace.Trace{}
	for k := len(rev) - 1; k >= 0; k-- {
		t.Prefix = append(t.Prefix, rev[k])
	}
	return t
}

// sfSCCs computes the nontrivial SCCs of the subgraph induced by members
// (alive flags must be set for exactly the members). Iterative Tarjan.
func (c *Checker) sfSCCs(nodes []*sfNode, members []int, alive []bool) [][]int {
	idx := make(map[int]int, len(members)) // node -> tarjan index
	low := make(map[int]int, len(members))
	onstack := make(map[int]bool, len(members))
	var st []int
	var out [][]int
	next := 0

	type frame struct {
		v  int
		ei int
	}
	for _, start := range members {
		if _, seen := idx[start]; seen {
			continue
		}
		var callStack []frame
		idx[start] = next
		low[start] = next
		next++
		st = append(st, start)
		onstack[start] = true
		callStack = append(callStack, frame{v: start})
		for len(callStack) > 0 {
			fr := &callStack[len(callStack)-1]
			advanced := false
			for fr.ei < len(nodes[fr.v].succ) {
				e := nodes[fr.v].succ[fr.ei]
				fr.ei++
				if !alive[e.to] {
					continue
				}
				if _, seen := idx[e.to]; !seen {
					idx[e.to] = next
					low[e.to] = next
					next++
					st = append(st, e.to)
					onstack[e.to] = true
					callStack = append(callStack, frame{v: e.to})
					advanced = true
					break
				}
				if onstack[e.to] && idx[e.to] < low[fr.v] {
					low[fr.v] = idx[e.to]
				}
			}
			if advanced {
				continue
			}
			// Post-order for fr.v.
			v := fr.v
			callStack = callStack[:len(callStack)-1]
			if len(callStack) > 0 {
				pv := callStack[len(callStack)-1].v
				if low[v] < low[pv] {
					low[pv] = low[v]
				}
			}
			if low[v] == idx[v] {
				var scc []int
				for {
					w := st[len(st)-1]
					st = st[:len(st)-1]
					onstack[w] = false
					scc = append(scc, w)
					if w == v {
						break
					}
				}
				if c.sfNontrivial(nodes, scc, alive) {
					out = append(out, scc)
				}
			}
		}
	}
	return out
}

// sfNontrivial reports whether the SCC has at least one internal edge.
func (c *Checker) sfNontrivial(nodes []*sfNode, scc []int, alive []bool) bool {
	if len(scc) > 1 {
		return true
	}
	v := scc[0]
	for _, e := range nodes[v].succ {
		if e.to == v && alive[v] {
			return true
		}
	}
	return false
}

// sfCheckSCC decides whether the SCC contains a strongly fair accepting
// cycle; when processes are enabled but never move inside, their
// enabled-states are pruned and the remainder queued for re-decomposition.
// On success it returns the complete counterexample trace.
func (c *Checker) sfCheckSCC(nodes []*sfNode, scc []int, nProcs int, queue *[]sfTask) *trace.Trace {
	inSCC := make(map[int]bool, len(scc))
	for _, i := range scc {
		inSCC[i] = true
	}
	hasAccepting := false
	for _, i := range scc {
		if nodes[i].accepting {
			hasAccepting = true
			break
		}
	}
	enabledIn := make([]bool, nProcs)
	movesIn := make([]bool, nProcs)
	for _, i := range scc {
		for p := 0; p < nProcs; p++ {
			if nodes[i].enabled[p] {
				enabledIn[p] = true
			}
		}
		for _, e := range nodes[i].succ {
			if !inSCC[e.to] {
				continue
			}
			for _, p := range e.moved {
				if p >= 0 {
					movesIn[p] = true
				}
			}
		}
	}
	var bad []int
	for p := 0; p < nProcs; p++ {
		if enabledIn[p] && !movesIn[p] {
			bad = append(bad, p)
		}
	}
	if len(bad) == 0 {
		if !hasAccepting {
			return nil
		}
		return c.sfBuildCounterexample(nodes, scc, inSCC, nProcs, movesIn)
	}
	// Prune states where a starved process is enabled; what remains may
	// still contain a fair cycle.
	var rest []int
	for _, i := range scc {
		ok := true
		for _, p := range bad {
			if nodes[i].enabled[p] {
				ok = false
				break
			}
		}
		if ok {
			rest = append(rest, i)
		}
	}
	if len(rest) > 0 {
		*queue = append(*queue, sfTask{members: rest})
	}
	return nil
}

// sfBuildCounterexample constructs a concrete fair lasso: the BFS prefix
// into the SCC, then a cycle that visits an accepting node and one move
// of every process that is enabled within the SCC.
func (c *Checker) sfBuildCounterexample(nodes []*sfNode, scc []int, inSCC map[int]bool, nProcs int, movesIn []bool) *trace.Trace {
	entry := scc[0]
	// Prefer the node with the shortest BFS prefix (parent chain length).
	depth := func(i int) int {
		d := 0
		for j := i; nodes[j].parent != -1; j = nodes[j].parent {
			d++
		}
		return d
	}
	for _, i := range scc {
		if depth(i) < depth(entry) {
			entry = i
		}
	}
	t := c.sfPrefix(nodes, entry)

	// bfsPath returns the edge events from src to the first node
	// satisfying pred, staying inside the SCC; it also returns the
	// destination. pred(src) may hold with an empty path.
	bfsPath := func(src int, pred func(int) bool) ([]trace.Event, int) {
		if pred(src) {
			return nil, src
		}
		type crumb struct {
			node, prev, edge int
		}
		seen := map[int]crumb{src: {node: src, prev: -1}}
		queue := []int{src}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for ei, e := range nodes[v].succ {
				if !inSCC[e.to] {
					continue
				}
				if _, ok := seen[e.to]; ok {
					continue
				}
				seen[e.to] = crumb{node: e.to, prev: v, edge: ei}
				if pred(e.to) {
					var rev []trace.Event
					for x := e.to; seen[x].prev != -1; x = seen[x].prev {
						cr := seen[x]
						rev = append(rev, nodes[cr.prev].succ[cr.edge].ev)
					}
					out := make([]trace.Event, 0, len(rev))
					for k := len(rev) - 1; k >= 0; k-- {
						out = append(out, rev[k])
					}
					return out, e.to
				}
				queue = append(queue, e.to)
			}
		}
		return nil, src // unreachable within SCC: should not happen
	}

	cur := entry
	var cycle []trace.Event
	// Visit an accepting node.
	seg, nxt := bfsPath(cur, func(i int) bool { return nodes[i].accepting })
	cycle = append(cycle, seg...)
	cur = nxt
	// Visit a move of every process that must move.
	for p := 0; p < nProcs; p++ {
		if !movesIn[p] {
			continue
		}
		p := p
		// Find a node with an in-SCC edge moved by p, then take it.
		hasMove := func(i int) bool {
			for _, e := range nodes[i].succ {
				if !inSCC[e.to] {
					continue
				}
				if e.moved[0] == p || e.moved[1] == p {
					return true
				}
			}
			return false
		}
		seg, nxt = bfsPath(cur, hasMove)
		cycle = append(cycle, seg...)
		cur = nxt
		for _, e := range nodes[cur].succ {
			if inSCC[e.to] && (e.moved[0] == p || e.moved[1] == p) {
				cycle = append(cycle, e.ev)
				cur = e.to
				break
			}
		}
	}
	// Close the loop.
	seg, _ = bfsPath(cur, func(i int) bool { return i == entry })
	cycle = append(cycle, seg...)
	if len(cycle) == 0 {
		// Degenerate self-loop.
		for _, e := range nodes[entry].succ {
			if e.to == entry {
				cycle = append(cycle, e.ev)
				break
			}
		}
	}
	t.Cycle = cycle
	return t
}
