package checker

import (
	"context"
	"testing"
	"time"

	"pnp/internal/model"
	"pnp/internal/pml"
)

// unboundedCounters is a system whose state space is far too large to
// exhaust quickly: three 8-bit counters free-running independently.
const unboundedCounters = `
byte a, b, c;
active proctype A() { do :: a = a + 1 od }
active proctype B() { do :: b = b + 1 od }
active proctype C() { do :: c = c + 1 od }
`

func cancelTestSystem(t *testing.T) *model.System {
	t.Helper()
	prog, err := pml.CompileSource(unboundedCounters)
	if err != nil {
		t.Fatal(err)
	}
	sys := model.New(prog)
	if err := sys.SpawnActive(); err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestContextCancelSafety: an expired context aborts the safety search
// with a Canceled verdict instead of exhausting the 16M-state space.
func TestContextCancelSafety(t *testing.T) {
	sys := cancelTestSystem(t)
	for _, bfs := range []bool{false, true} {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
		res := New(sys, Options{Context: ctx, BFS: bfs, IgnoreDeadlock: true}).CheckSafety()
		cancel()
		if res.OK || res.Kind != Canceled {
			t.Fatalf("bfs=%v: want Canceled verdict, got %s", bfs, res.Summary())
		}
		if !res.Stats.Truncated {
			t.Fatalf("bfs=%v: canceled search must be marked truncated", bfs)
		}
	}
}

// TestContextCancelLTL: cancellation also aborts the liveness product
// search.
func TestContextCancelLTL(t *testing.T) {
	sys := cancelTestSystem(t)
	prog := sys.Prog
	props, err := PropsFromSource(prog, map[string]string{"big": "a > 200"})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	res := New(sys, Options{Context: ctx}).CheckLTL("<> big", props)
	if res.OK || res.Kind != Canceled {
		t.Fatalf("want Canceled verdict, got %s", res.Summary())
	}
}

// TestContextNotCanceled: a live context leaves a small search untouched.
func TestContextNotCanceled(t *testing.T) {
	prog, err := pml.CompileSource(`
byte x;
active proctype P() { do :: x < 3 -> x = x + 1 :: else -> break od }
`)
	if err != nil {
		t.Fatal(err)
	}
	sys := model.New(prog)
	if err := sys.SpawnActive(); err != nil {
		t.Fatal(err)
	}
	res := New(sys, Options{Context: context.Background()}).CheckSafety()
	if !res.OK {
		t.Fatalf("want verified, got %s", res.Summary())
	}
}
