// Package checker is the finite-state verifier of the Plug-and-Play
// toolchain: explicit-state safety search (assertions, deadlocks, global
// invariants) with DFS or BFS, LTL checking via Büchi products and nested
// depth-first search, optional bitstate hashing, and counterexample
// reconstruction as traces.
//
// It plays the role Spin plays in the paper: systems composed from the
// building-block models are explored exhaustively and verdicts come with
// readable counterexamples.
package checker

import (
	"context"
	"fmt"
	"time"

	"pnp/internal/model"
	"pnp/internal/obs"
	"pnp/internal/obs/tracing"
	"pnp/internal/pml"
	"pnp/internal/trace"
)

// ViolationKind classifies a verification failure.
type ViolationKind int

// Violation kinds.
const (
	NoViolation ViolationKind = iota
	Assertion
	Deadlock
	InvariantViolation
	RuntimeError
	AcceptanceCycle
	SearchLimit
	Canceled
)

var violationNames = map[ViolationKind]string{
	NoViolation:        "none",
	Assertion:          "assertion violation",
	Deadlock:           "invalid end state (deadlock)",
	InvariantViolation: "invariant violation",
	RuntimeError:       "runtime error",
	AcceptanceCycle:    "acceptance cycle (liveness violation)",
	SearchLimit:        "search limit reached",
	Canceled:           "search canceled",
}

// String names the violation kind.
func (k ViolationKind) String() string { return violationNames[k] }

// ParseViolationKind resolves a violation-kind name (as produced by
// String, e.g. in a cached PropertyVerdict's verdict field) back to its
// kind. Consumers ranking or grouping verdicts that crossed a JSON
// boundary use it instead of string comparison.
func ParseViolationKind(s string) (ViolationKind, bool) {
	for k, name := range violationNames {
		if name == s {
			return k, true
		}
	}
	return NoViolation, false
}

// Invariant is a named global-state predicate that must hold in every
// reachable state.
type Invariant struct {
	Name string
	Expr pml.RExpr
}

// Options configures a verification run.
type Options struct {
	// MaxStates bounds the number of stored states (0 = unlimited).
	MaxStates int
	// MaxDepth bounds DFS depth (0 = unlimited).
	MaxDepth int
	// BFS searches breadth-first, yielding shortest counterexamples.
	BFS bool
	// Invariants are checked in every reachable state.
	Invariants []Invariant
	// IgnoreDeadlock disables invalid-end-state detection.
	IgnoreDeadlock bool
	// ReportUnreached records which compiled transitions never executed
	// during the safety search and lists them in Result.Unreached.
	// Incompatible with PartialOrder (the reduction legitimately skips
	// transitions).
	ReportUnreached bool
	// PartialOrder enables ample-set partial-order reduction in the DFS
	// safety search: states where some process has only process-private
	// (Local) moves expand only that process, with the cycle proviso
	// guaranteeing soundness. Verdicts are unchanged; state counts drop.
	PartialOrder bool
	// WeakFairness restricts LTL acceptance-cycle search to weakly fair
	// runs (every continuously enabled process eventually moves), via the
	// Choueka copy construction — Spin's -f option. It multiplies the
	// product state space by the number of processes plus two.
	WeakFairness bool
	// StrongFairness restricts LTL acceptance-cycle search to strongly
	// fair runs (every infinitely-often-enabled process moves infinitely
	// often), via fair-SCC decomposition. Takes precedence over
	// WeakFairness; the full product graph is materialized.
	StrongFairness bool
	// Workers selects the parallel safety/reachability engine: N >= 1
	// runs a level-synchronized parallel BFS on N goroutines over a
	// sharded visited set. Verdicts, StatesStored, and counterexample
	// lengths are identical at every worker count (counterexamples stay
	// shortest); which shortest counterexample is reported may vary.
	// 0 — the default — keeps the classic sequential engines; the CLIs
	// and verifyd default to runtime.GOMAXPROCS(0). Parallel exploration
	// is breadth-first and is incompatible with PartialOrder and
	// ReportUnreached (those searches fall back to the sequential DFS);
	// liveness search (LTL, weak/strong fairness) and AG-EF goal checks
	// are always sequential — Workers is a documented no-op there.
	Workers int
	// Storage is the canonical nested spelling of the visited-set
	// storage knobs (since PR10). The flat fields below — Bitstate,
	// BitstateBits, Visited, MemLimit, SpillDir — are deprecated
	// aliases; Normalized merges the two spellings, and checker.New and
	// the verification service's OptionsKey normalize first, so either
	// spelling verifies and cache-hits identically.
	Storage StorageOptions
	// Durability is the canonical nested spelling of Checkpoint (since
	// PR10); see DurabilityOptions.
	Durability *DurabilityOptions
	// Bitstate replaces the exact visited set with a double-hash bitstate
	// table of 2^BitstateBits bits (Spin's -DBITSTATE analogue). The search
	// becomes probabilistic: violations found are real, but coverage may be
	// partial.
	//
	// Deprecated: set Storage.Bitstate / Storage.BitstateBits.
	Bitstate     bool
	BitstateBits uint
	// Visited selects the exact visited-set storage of the parallel
	// engine: VisitedExact ("" or "exact", the default) stores full
	// canonical encodings; VisitedCollapse ("collapse") interns
	// per-process and per-channel sub-vectors in side tables and stores
	// each state as a tuple of indices (Spin's -DCOLLAPSE analogue),
	// cutting bytes/state severalfold at the cost of extra hashing.
	// Membership stays exact either way — verdicts, StatesStored, and
	// counterexamples are identical — so Visited is a speed/memory knob,
	// not a semantic one. Ignored by the sequential engines and by
	// bitstate runs.
	//
	// Deprecated: set Storage.Visited.
	Visited string
	// MemLimit caps the resident bytes of the parallel engine's visited
	// set (entries plus table overhead, the checker_visited_bytes gauge).
	// When a level barrier finds the set over budget, its entries are
	// spilled to fingerprint-indexed segment files under SpillDir and
	// lookups probe the (mmap-backed) segments before the in-memory
	// tier, so the search completes with the exact same verdict and
	// stats instead of exhausting memory. 0 (default) disables spilling.
	//
	// Deprecated: set Storage.MemLimit.
	MemLimit int64
	// SpillDir is the parent directory for spill segments (a unique
	// per-search subdirectory is created on first spill and removed when
	// the search ends). Empty means the system temp directory.
	//
	// Deprecated: set Storage.SpillDir.
	SpillDir string
	// Progress, when non-nil, receives a periodic exploration snapshot
	// every ProgressInterval plus one final snapshot — Spin-style
	// progress lines for long searches.
	Progress func(Progress)
	// ProgressInterval is the minimum time between Progress snapshots
	// (default 1s).
	ProgressInterval time.Duration
	// Metrics, when non-nil, receives checker counters and gauges
	// (states stored/matched, transitions, depth, heap) labeled by
	// exploration phase. Updates happen at snapshot granularity, so the
	// exploration hot path is unaffected.
	Metrics *obs.Registry
	// Context, when non-nil, aborts the search when it is canceled or its
	// deadline passes: the search stops with a Canceled verdict and
	// Stats.Truncated set. The context is polled once per
	// cancelPollEvery iterations, so cancellation latency is bounded but
	// the hot path pays only a counter decrement.
	Context context.Context
	// Tracer, when non-nil, records one span per search phase into the
	// flight recorder, parented to the current span in Context (so a
	// verifyd job's trace nests its checker phases). Parallel BFS engines
	// add one event per level carrying the frontier size; snapshots
	// otherwise drive the span, so the hot path is unaffected. Like
	// Progress and Metrics, Tracer never influences verdicts or cache
	// keys.
	Tracer *tracing.Recorder
	// Checkpoint, when non-nil, makes the parallel BFS engines durable:
	// at level-barrier boundaries the frontier and the sharded visited
	// set are snapshotted to a file under Checkpoint.Dir, and a search
	// restarted with Checkpoint.Resume continues from the last complete
	// snapshot instead of state zero. Like Progress and Metrics it never
	// influences verdicts — a resumed search stores exactly the states an
	// uninterrupted one would. No-op for the sequential engines, liveness
	// search, and bitstate runs (see CheckpointOptions).
	//
	// Deprecated: set Durability. When both are non-nil, Checkpoint
	// wins (see Normalized).
	Checkpoint *CheckpointOptions
}

// Stats summarizes the exploration.
type Stats struct {
	StatesStored  int
	StatesMatched int
	Transitions   int
	MaxDepth      int
	// Reduced counts states expanded with an ample set instead of the
	// full successor set (partial-order reduction).
	Reduced   int
	Truncated bool
	Elapsed   time.Duration
	// VisitedBytes is the peak resident size of the parallel engine's
	// visited set (sampled at level barriers); 0 for sequential and
	// bitstate runs. SpilledStates counts entries moved to disk segments
	// under Options.MemLimit. Both are observability fields: they vary
	// with storage mode and budget while the verdict does not.
	VisitedBytes  int64
	SpilledStates int
}

// Result is the outcome of a verification run.
type Result struct {
	OK      bool
	Kind    ViolationKind
	Message string
	Trace   *trace.Trace
	Stats   Stats
	// Unreached lists transitions never executed during an exhaustive
	// safety search (Spin's "unreached in proctype" report) — possible
	// dead code in the component or block models. Populated only when
	// Options.ReportUnreached is set and the search was not truncated.
	Unreached []string
}

// Summary renders a one-line verdict.
func (r *Result) Summary() string {
	var s string
	if r.OK {
		s = fmt.Sprintf("verified: %d states, %d transitions, depth %d",
			r.Stats.StatesStored, r.Stats.Transitions, r.Stats.MaxDepth)
		if r.Stats.Reduced > 0 {
			s += fmt.Sprintf(", %d reduced", r.Stats.Reduced)
		}
	} else {
		s = fmt.Sprintf("%s: %s (%d states explored)", r.Kind, r.Message, r.Stats.StatesStored)
	}
	if r.Stats.Elapsed > 0 {
		s += fmt.Sprintf(" in %s", fmtElapsed(r.Stats.Elapsed))
	}
	return s
}

// fmtElapsed rounds a duration for display without collapsing sub-ms
// runs to "0s".
func fmtElapsed(d time.Duration) time.Duration {
	if r := d.Round(time.Millisecond); r > 0 {
		return r
	}
	return d.Round(time.Microsecond)
}

// Checker verifies one instantiated system.
type Checker struct {
	sys  *model.System
	opts Options
}

// New creates a Checker for a system with the given options. Options
// are normalized first, so the nested Storage/Durability groups and
// their deprecated flat aliases are interchangeable.
func New(sys *model.System, opts Options) *Checker {
	return &Checker{sys: sys, opts: opts.Normalized()}
}

// InvariantFromSource parses src as a global-scope pml expression and
// wraps it as a named invariant.
func InvariantFromSource(prog *pml.Compiled, name, src string) (Invariant, error) {
	e, err := prog.CompileGlobalExpr(src)
	if err != nil {
		return Invariant{}, fmt.Errorf("checker: invariant %s: %w", name, err)
	}
	return Invariant{Name: name, Expr: e}, nil
}

// eventOf converts a model transition to a trace event.
func eventOf(sys *model.System, tr model.Transition) trace.Event {
	ev := trace.Event{
		Proc:   sys.ProcName(tr.Proc),
		Action: tr.Edge.Label,
		Msg:    sys.FormatMsg(tr),
		Note:   tr.Violation,
	}
	if tr.Ch >= 0 {
		ev.Ch = sys.ChannelName(tr.Ch)
	}
	if tr.Partner >= 0 {
		ev.Partner = sys.ProcName(tr.Partner)
	}
	return ev
}

// visitedSet is the exploration's duplicate detector.
type visitedSet interface {
	// seen tests-and-sets the key, reporting whether it was present.
	seen(key string) bool
	// size returns the number of stored entries (approximate for bitstate).
	size() int
}

type mapSet struct {
	m map[string]struct{}
}

func newMapSet() *mapSet { return &mapSet{m: make(map[string]struct{}, 1024)} }

func (s *mapSet) seen(key string) bool {
	if _, ok := s.m[key]; ok {
		return true
	}
	s.m[key] = struct{}{}
	return false
}

func (s *mapSet) size() int { return len(s.m) }

// bitstateSet is a double-hash Bloom-style bitstate table, the classic
// Spin supertrace structure.
type bitstateSet struct {
	bits  []uint64
	mask  uint64
	count int
}

func newBitstateSet(bitsLog2 uint) *bitstateSet {
	if bitsLog2 < 10 {
		bitsLog2 = 10
	}
	n := uint64(1) << bitsLog2
	return &bitstateSet{bits: make([]uint64, n/64), mask: n - 1}
}

// bitstateHashes is the double-hash pair of the bitstate tables: FNV-1a
// with two different offset bases, shared by the sequential and parallel
// (sharded) implementations so both mark identical bit positions. The
// primary hash is exactly model.Hash64 (h1 of the full encoding equals
// State.Fingerprint); the secondary derives its seeds from the same
// constants rather than restating them.
func bitstateHashes[T ~string | ~[]byte](key T, mask uint64) (uint64, uint64) {
	offset, prime := model.Hash64Seeds()
	h1 := offset
	h2 := prime*31 + 7
	for i := 0; i < len(key); i++ {
		h1 = (h1 ^ uint64(key[i])) * prime
		h2 = (h2 ^ uint64(key[i])) * (prime + 2)
	}
	return h1 & mask, h2 & mask
}

func (s *bitstateSet) seen(key string) bool {
	a, b := bitstateHashes(key, s.mask)
	hadA := s.bits[a/64]&(1<<(a%64)) != 0
	hadB := s.bits[b/64]&(1<<(b%64)) != 0
	if hadA && hadB {
		return true
	}
	s.bits[a/64] |= 1 << (a % 64)
	s.bits[b/64] |= 1 << (b % 64)
	s.count++
	return false
}

func (s *bitstateSet) size() int { return s.count }

func (c *Checker) newVisited() visitedSet {
	if c.opts.Bitstate {
		bits := c.opts.BitstateBits
		if bits == 0 {
			bits = 24
		}
		return newBitstateSet(bits)
	}
	return newMapSet()
}

// cancelPollEvery bounds how often search loops consult the context: once
// per this many calls to canceler.hit.
const cancelPollEvery = 2048

// canceler polls Options.Context from the search hot loops. A nil
// canceler (no context configured) makes hit a constant false.
type canceler struct {
	ctx       context.Context
	countdown int
	done      bool
}

// newCanceler arms a canceler, or returns nil when no context is set.
func (c *Checker) newCanceler() *canceler {
	if c.opts.Context == nil {
		return nil
	}
	return &canceler{ctx: c.opts.Context, countdown: 1}
}

// hit reports whether the search should abort. Once true, always true.
func (cc *canceler) hit() bool {
	if cc == nil {
		return false
	}
	if cc.done {
		return true
	}
	cc.countdown--
	if cc.countdown > 0 {
		return false
	}
	cc.countdown = cancelPollEvery
	if cc.ctx.Err() != nil {
		cc.done = true
	}
	return cc.done
}

// cancelResult fills res with the Canceled verdict for the armed context.
func (cc *canceler) cancelResult(res *Result) *Result {
	res.OK = false
	res.Kind = Canceled
	res.Stats.Truncated = true
	if err := cc.ctx.Err(); err != nil {
		res.Message = err.Error()
	} else {
		res.Message = "context canceled"
	}
	return res
}
